/**
 * @file
 * Ablation A2: coherence block size. Section 2.4 says fine-grain
 * blocks are "typically 32-128 bytes"; this sweeps 32/64/128 bytes on
 * both targets for EM3D and Ocean (bigger blocks amortize transfer
 * overhead but raise false sharing and message size).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Ablation A2: coherence block size (nodes=%d "
                "scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-8s %-7s %14s %14s %9s\n", "app", "block",
                "DirNNB", "Stache", "relative");

    for (const char* app : {"em3d", "ocean"}) {
        for (std::uint32_t bs : {32u, 64u, 128u}) {
            MachineConfig cfg;
            cfg.core.nodes = nodes;
            cfg.core.blockSize = bs;
            RunOutcome dir, stache;
            {
                auto t = buildDirNNB(cfg);
                auto a = makeWorkload(app, DataSet::Small, scale);
                dir = runApp(t, *a);
            }
            {
                auto t = buildTyphoonStache(cfg);
                auto a = makeWorkload(app, DataSet::Small, scale);
                stache = runApp(t, *a);
            }
            if (dir.checksum != stache.checksum) {
                std::printf("CHECKSUM MISMATCH %s bs=%u\n", app, bs);
                return 1;
            }
            std::printf("%-8s %-7u %14llu %14llu %9.3f\n", app, bs,
                        (unsigned long long)dir.cycles,
                        (unsigned long long)stache.cycles,
                        double(stache.cycles) / double(dir.cycles));
            std::fflush(stdout);
        }
    }
    return 0;
}
