/**
 * @file
 * Methodology ablation: the paper's simulations "do not accurately
 * model network and bus contention." This bench turns on a finite
 * ejection port (cycles per inbound packet per node) and measures
 * how much the contention-free assumption flatters each system — a
 * hot home node is the natural victim.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Methodology ablation: ejection-port contention "
                "(EM3D small, nodes=%d scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-12s %14s %14s %9s %14s\n", "eject cyc/pkt",
                "DirNNB", "Stache", "relative", "pkts queued(S)");

    double cs = 0;
    for (Tick eject : {0u, 1u, 2u, 4u, 8u}) {
        MachineConfig cfg;
        cfg.core.nodes = nodes;
        cfg.net.ejectPerPacket = eject;
        RunOutcome dir, stache;
        std::uint64_t queued = 0;
        {
            auto t = buildDirNNB(cfg);
            auto a = makeWorkload("em3d", DataSet::Small, scale);
            dir = runApp(t, *a);
        }
        {
            auto t = buildTyphoonStache(cfg);
            auto a = makeWorkload("em3d", DataSet::Small, scale);
            stache = runApp(t, *a);
            queued = t.m().stats().get("net.eject_queued");
        }
        if (cs == 0)
            cs = dir.checksum;
        if (dir.checksum != stache.checksum || dir.checksum != cs) {
            std::printf("CHECKSUM MISMATCH at eject=%llu\n",
                        (unsigned long long)eject);
            return 1;
        }
        std::printf("%-12llu %14llu %14llu %9.3f %14llu\n",
                    (unsigned long long)eject,
                    (unsigned long long)dir.cycles,
                    (unsigned long long)stache.cycles,
                    double(stache.cycles) / double(dir.cycles),
                    (unsigned long long)queued);
        std::fflush(stdout);
    }
    return 0;
}
