/**
 * @file
 * Ablation A3: the Stache software directory's sharing machinery.
 * Two measurements: (a) invalidation latency as a writer displaces
 * 1..31 readers — the fan-out the six-pointer/bit-vector entry must
 * track; (b) the entry-format transitions (pointer -> bit vector) as
 * the pointer budget shrinks, confirming format changes do not alter
 * protocol results.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "tests/helpers.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    std::printf("Ablation A3: directory sharer fan-out "
                "(Typhoon/Stache, 32 nodes)\n\n");
    std::printf("%-9s %22s %16s\n", "readers", "write latency (cyc)",
                "invals sent");

    for (int readers : {1, 2, 4, 6, 8, 16, 31}) {
        test::StacheRig rig(32);
        Addr a = rig.stache->shmalloc(4096, 0);
        Tick writeLat = 0;
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() >= 1 && cpu.id() <= readers)
                co_await cpu.read<int>(a);
            co_await rig.machine->barrier().wait(cpu);
            if (cpu.id() == 31) {
                const Tick t0 = cpu.localTime();
                co_await cpu.write<int>(a, 1);
                writeLat = cpu.localTime() - t0;
            }
            co_await rig.machine->barrier().wait(cpu);
        });
        rig.machine->run(app);
        std::printf("%-9d %22llu %16llu\n", readers,
                    (unsigned long long)writeLat,
                    (unsigned long long)rig.machine->stats().get(
                        "stache.invals_sent"));
    }

    std::printf("\nPointer-budget sweep (6 readers; entry format "
                "vs. results):\n\n");
    std::printf("%-9s %-10s %16s\n", "pointers", "format",
                "final sharers");
    for (int ptrs : {1, 2, 4, 6}) {
        StacheParams sp;
        sp.dirPointers = ptrs;
        test::StacheRig rig(32, CoreParams{}, TyphoonParams{}, sp);
        Addr a = rig.stache->shmalloc(4096, 0);
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() >= 1 && cpu.id() <= 6)
                co_await cpu.read<int>(a);
            co_await rig.machine->barrier().wait(cpu);
        });
        rig.machine->run(app);
        auto v = rig.stache->inspect(a);
        const bool bitvec = (v.raw >> 61) & 1;
        std::printf("%-9d %-10s %16zu\n", ptrs,
                    bitvec ? "bitvec" : "pointer", v.sharers.size());
        if (v.sharers.size() != 6) {
            std::printf("SHARER COUNT WRONG\n");
            return 1;
        }
    }
    return 0;
}
