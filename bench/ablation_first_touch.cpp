/**
 * @file
 * Ablation A1: DirNNB page placement — round-robin (the paper's
 * default) vs. first-touch (the Stenstrom et al. improvement the
 * paper cites as narrowing the gap). Typhoon/Stache needs no such
 * help: its stache pages replicate data regardless of homes.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Ablation A1: DirNNB round-robin vs first-touch page "
                "placement (nodes=%d scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-8s %14s %14s %14s %18s\n", "app", "DirNNB rr",
                "DirNNB ft", "Stache", "ft speedup (rr/ft)");

    for (const char* app : {"ocean", "em3d", "appbt"}) {
        MachineConfig cfg;
        cfg.core.nodes = nodes;
        RunOutcome rr, ft, stache;
        {
            auto t = buildDirNNB(cfg);
            auto a = makeWorkload(app, DataSet::Small, scale);
            rr = runApp(t, *a);
        }
        {
            MachineConfig c2 = cfg;
            c2.dir.firstTouch = true;
            auto t = buildDirNNB(c2);
            auto a = makeWorkload(app, DataSet::Small, scale);
            ft = runApp(t, *a);
        }
        {
            auto t = buildTyphoonStache(cfg);
            auto a = makeWorkload(app, DataSet::Small, scale);
            stache = runApp(t, *a);
        }
        if (rr.checksum != ft.checksum ||
            rr.checksum != stache.checksum) {
            std::printf("CHECKSUM MISMATCH for %s\n", app);
            return 1;
        }
        std::printf("%-8s %14llu %14llu %14llu %18.3f\n", app,
                    (unsigned long long)rr.cycles,
                    (unsigned long long)ft.cycles,
                    (unsigned long long)stache.cycles,
                    double(rr.cycles) / double(ft.cycles));
        std::fflush(stdout);
    }
    return 0;
}
