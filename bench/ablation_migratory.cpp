/**
 * @file
 * Extension bench: the migratory-sharing custom protocol (a second
 * user-level protocol beside the paper's EM3D update protocol,
 * supporting the same thesis). MP3D's locked read-modify-write cell
 * updates are the textbook migratory pattern: classification +
 * read-promotion eliminates most upgrade round trips.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Migratory protocol vs plain Stache vs DirNNB "
                "(nodes=%d scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-8s %-7s %12s %12s %12s %10s %10s\n", "app", "set",
                "DirNNB", "Stache", "Migratory", "mig/dir",
                "mig/stache");

    for (const char* app : {"mp3d", "ocean", "em3d"}) {
        for (DataSet ds : {DataSet::Small}) {
            MachineConfig cfg;
            cfg.core.nodes = nodes;
            RunOutcome dir, stache, mig;
            std::uint64_t promos = 0;
            {
                auto t = buildDirNNB(cfg);
                auto a = makeWorkload(app, ds, scale);
                dir = runApp(t, *a);
            }
            {
                auto t = buildTyphoonStache(cfg);
                auto a = makeWorkload(app, ds, scale);
                stache = runApp(t, *a);
            }
            {
                auto t = buildTyphoonMigratory(cfg);
                auto a = makeWorkload(app, ds, scale);
                mig = runApp(t, *a);
                promos = t.migratory->promotions();
            }
            if (dir.checksum != stache.checksum ||
                dir.checksum != mig.checksum) {
                std::printf("CHECKSUM MISMATCH for %s\n", app);
                return 1;
            }
            std::printf("%-8s %-7s %12llu %12llu %12llu %10.3f "
                        "%10.3f   (%llu promotions)\n",
                        app, dataSetName(ds),
                        (unsigned long long)dir.cycles,
                        (unsigned long long)stache.cycles,
                        (unsigned long long)mig.cycles,
                        double(mig.cycles) / double(dir.cycles),
                        double(mig.cycles) / double(stache.cycles),
                        (unsigned long long)promos);
            std::fflush(stdout);
        }
    }
    return 0;
}
