/**
 * @file
 * Section 2.2's claim: "transferring bulk data via explicit messages
 * is more efficient than using shared memory." A neighbor exchange —
 * every node hands a buffer to its successor — three ways:
 *
 *  1. shared-memory pull on DirNNB (consumer reads producer's data);
 *  2. shared-memory pull on Typhoon/Stache;
 *  3. Tempest bulk transfer (producer pushes via the NP's transfer
 *     engine, consumer is notified by a completion handler).
 *
 * Tempest imposes no shared-memory overhead on the message-passing
 * version: no tags are consulted, no coherence traffic flows.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "tests/helpers.hh"

using namespace tt;
using namespace tt::bench;

namespace
{

constexpr HandlerId kDone = 0xA00;

/** Shared-memory pull version. */
Tick
runShared(bool stache, int nodes, std::uint32_t kb)
{
    MachineConfig cfg;
    cfg.core.nodes = nodes;
    auto t = stache ? buildTyphoonStache(cfg) : buildDirNNB(cfg);
    const std::size_t bytes = kb * 1024;
    std::vector<Addr> buf(nodes);
    for (int n = 0; n < nodes; ++n)
        buf[n] = t.m().memsys().shmalloc(bytes, n);

    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        // Producer fills its buffer (local), barrier, consumer pulls
        // the predecessor's buffer.
        for (Addr a = 0; a < bytes; a += 8)
            co_await cpu.write<std::uint64_t>(buf[cpu.id()] + a,
                                              cpu.id() + a);
        co_await t.m().barrier().wait(cpu);
        const int prev = (cpu.id() + nodes - 1) % nodes;
        std::uint64_t sum = 0;
        for (Addr a = 0; a < bytes; a += 8)
            sum += co_await cpu.read<std::uint64_t>(buf[prev] + a);
        co_await t.m().barrier().wait(cpu);
    });
    return t.m().run(app).execTime;
}

/** Tempest message-passing version: bulk push + notification. */
Tick
runBulk(int nodes, std::uint32_t kb)
{
    MachineConfig cfg;
    cfg.core.nodes = nodes;
    auto t = buildTyphoonStache(cfg);
    const std::size_t bytes = kb * 1024;
    std::vector<Addr> src(nodes), dst(nodes);
    for (int n = 0; n < nodes; ++n) {
        src[n] = t.m().memsys().shmalloc(bytes, n);
        dst[n] = t.m().memsys().shmalloc(bytes, n);
    }
    std::vector<int> arrived(nodes, 0);
    for (NodeId n = 0; n < nodes; ++n) {
        t.typhoon->tempest(n).registerMsgHandler(
            kDone, [&arrived, n](TempestCtx& ctx, const Message&) {
                ctx.charge(2);
                arrived[n] = 1;
            });
    }

    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        for (Addr a = 0; a < bytes; a += 8)
            co_await cpu.write<std::uint64_t>(src[cpu.id()] + a,
                                              cpu.id() + a);
        // Push to the successor's private landing buffer.
        const int next = (cpu.id() + 1) % cpu.params().nodes;
        t.typhoon->tempest(cpu.id())
            .setupCtx()
            .bulkTransfer(src[cpu.id()], next, dst[next],
                          static_cast<std::uint32_t>(bytes), kDone);
        // Consume locally once the completion handler fires.
        while (!arrived[cpu.id()])
            co_await cpu.compute(50); // poll (section 2.2: polling)
        std::uint64_t sum = 0;
        for (Addr a = 0; a < bytes; a += 8)
            sum += co_await cpu.read<std::uint64_t>(dst[cpu.id()] + a);
        co_await t.m().barrier().wait(cpu);
    });
    return t.m().run(app).execTime;
}

} // namespace

int
main()
{
    const int nodes = envInt("TT_NODES", 16);
    std::printf("Neighbor exchange: shared-memory pull vs Tempest "
                "bulk transfer (%d nodes)\n\n",
                nodes);
    std::printf("%-8s %14s %14s %14s %22s\n", "size", "DirNNB pull",
                "Stache pull", "bulk transfer", "bulk vs best pull");
    for (std::uint32_t kb : {4u, 16u, 64u}) {
        const Tick d = runShared(false, nodes, kb);
        const Tick s = runShared(true, nodes, kb);
        const Tick b = runBulk(nodes, kb);
        std::printf("%5u KB %14llu %14llu %14llu %21.2fx\n", kb,
                    (unsigned long long)d, (unsigned long long)s,
                    (unsigned long long)b,
                    double(std::min(d, s)) / double(b));
        std::fflush(stdout);
    }
    return 0;
}
