/**
 * @file
 * Ablation A4: network latency sensitivity. Section 6 notes the
 * 11-cycle latency "will tend to favor DirNNB by making Typhoon's
 * overhead relatively larger" — as latency grows, the fixed software
 * handler cost is amortized and Typhoon/Stache closes in (and its
 * locality advantage grows).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Ablation A4: network latency sweep, EM3D small "
                "(nodes=%d scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-9s %14s %14s %9s\n", "latency", "DirNNB",
                "Stache", "relative");

    for (Tick lat : {5u, 11u, 25u, 50u, 100u}) {
        MachineConfig cfg;
        cfg.core.nodes = nodes;
        cfg.net.latency = lat;
        RunOutcome dir, stache;
        {
            auto t = buildDirNNB(cfg);
            auto a = makeWorkload("em3d", DataSet::Small, scale);
            dir = runApp(t, *a);
        }
        {
            auto t = buildTyphoonStache(cfg);
            auto a = makeWorkload("em3d", DataSet::Small, scale);
            stache = runApp(t, *a);
        }
        if (dir.checksum != stache.checksum) {
            std::printf("CHECKSUM MISMATCH at latency %llu\n",
                        (unsigned long long)lat);
            return 1;
        }
        std::printf("%-9llu %14llu %14llu %9.3f\n",
                    (unsigned long long)lat,
                    (unsigned long long)dir.cycles,
                    (unsigned long long)stache.cycles,
                    double(stache.cycles) / double(dir.cycles));
        std::fflush(stdout);
    }
    return 0;
}
