/**
 * @file
 * Extension bench: software prefetch over Stache (the section 5.4
 * Busy-tag use case). A reader sweeps a remote-homed array issuing
 * prefetches D blocks ahead; D = 0 is the plain demand-miss chain.
 * Deeper distances overlap more of the protocol latency until NP
 * occupancy and the network pipeline saturate.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "tests/helpers.hh"

using namespace tt;

int
main()
{
    const int blocks = 2048;
    std::printf("Software prefetch distance sweep "
                "(remote sweep of %d blocks, Typhoon/Stache)\n\n",
                blocks);
    std::printf("%-10s %14s %16s %10s\n", "distance", "cycles",
                "cycles/block", "speedup");

    Tick base = 0;
    for (int dist : {0, 1, 2, 4, 8, 16, 32}) {
        test::StacheRig rig(2);
        Addr a = rig.stache->shmalloc(
            static_cast<std::size_t>(blocks) * 32 + 4096, 0);
        Tick cycles = 0;
        rig.run([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 1)
                co_return;
            const Tick t0 = cpu.localTime();
            for (int i = 0; i < blocks; ++i) {
                if (dist > 0 && i + dist < blocks)
                    rig.stache->prefetch(cpu, a + (i + dist) * 32);
                co_await cpu.read<int>(a + i * 32);
                cpu.advance(8); // per-block computation
            }
            cycles = cpu.localTime() - t0;
        });
        if (dist == 0)
            base = cycles;
        std::printf("%-10d %14llu %16.1f %9.2fx\n", dist,
                    (unsigned long long)cycles,
                    double(cycles) / blocks,
                    double(base) / double(cycles));
        std::fflush(stdout);
    }
    return 0;
}
