/**
 * @file
 * Methodology ablation: the WWT-style local-time window (quantum).
 * Sweeps the run-ahead bound from 0 (fully event-ordered, slowest) to
 * 128 cycles and reports both simulated results (which must stay
 * checksum-identical) and the timing perturbation, bounding the
 * technique's accuracy cost.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Methodology ablation: local-time quantum (EM3D "
                "small, Typhoon/Stache, nodes=%d scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-9s %14s %11s %14s\n", "quantum", "sim cycles",
                "vs q=0", "host ms");

    double base = 0;
    double checksum0 = 0;
    for (Tick q : {0u, 8u, 32u, 128u}) {
        MachineConfig cfg;
        cfg.core.nodes = nodes;
        cfg.core.quantum = q;
        auto t = buildTyphoonStache(cfg);
        auto a = makeWorkload("em3d", DataSet::Small, scale);
        const auto t0 = std::chrono::steady_clock::now();
        RunOutcome o = runApp(t, *a);
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (q == 0) {
            base = static_cast<double>(o.cycles);
            checksum0 = o.checksum;
        } else if (o.checksum != checksum0) {
            std::printf("CHECKSUM CHANGED at quantum %llu\n",
                        (unsigned long long)q);
            return 1;
        }
        std::printf("%-9llu %14llu %10.3f%% %14lld\n",
                    (unsigned long long)q,
                    (unsigned long long)o.cycles,
                    100.0 * (static_cast<double>(o.cycles) - base) /
                        base,
                    static_cast<long long>(ms));
        std::fflush(stdout);
    }
    return 0;
}
