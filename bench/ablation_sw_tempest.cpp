/**
 * @file
 * Methodology ablation: what Typhoon's hardware RTLB buys. Section 2
 * mentions a "native" software Tempest for the CM-5 (realized later
 * as Blizzard-S): fine-grain access control by inline checks that
 * executable rewriting inserts before every shared access. This
 * sweeps the per-access check cost (0 = Typhoon hardware) and shows
 * how quickly software checking erodes — and eventually erases —
 * Stache's advantage over DirNNB.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    std::printf("Software fine-grain access control: per-access "
                "check cost sweep (EM3D small, 4K CPU cache, "
                "nodes=%d scale=1/%d)\n\n",
                nodes, scale);
    std::printf("%-11s %14s %14s %9s\n", "check cyc", "DirNNB",
                "SW-Tempest", "relative");

    MachineConfig base;
    base.core.nodes = nodes;
    base.core.cacheSize = 4 * 1024; // the regime where Stache wins

    RunOutcome dir;
    {
        auto t = buildDirNNB(base);
        auto a = makeWorkload("em3d", DataSet::Small, scale);
        dir = runApp(t, *a);
    }

    for (Tick chk : {0u, 1u, 2u, 4u, 8u}) {
        MachineConfig cfg = base;
        cfg.typhoon.swCheckCost = chk;
        auto t = buildTyphoonStache(cfg);
        auto a = makeWorkload("em3d", DataSet::Small, scale);
        const RunOutcome sw = runApp(t, *a);
        if (sw.checksum != dir.checksum) {
            std::printf("CHECKSUM MISMATCH at check=%llu\n",
                        (unsigned long long)chk);
            return 1;
        }
        std::printf("%-11llu %14llu %14llu %9.3f%s\n",
                    (unsigned long long)chk,
                    (unsigned long long)dir.cycles,
                    (unsigned long long)sw.cycles,
                    double(sw.cycles) / double(dir.cycles),
                    chk == 0 ? "   <- Typhoon hardware" : "");
        std::fflush(stdout);
    }
    return 0;
}
