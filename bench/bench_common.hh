/**
 * @file
 * Shared bench plumbing: environment-variable knobs and run helpers.
 *
 *  TT_SCALE   divide problem sizes by this factor (default 4; set 1
 *             for the paper's full Table 3 sizes)
 *  TT_NODES   target machine size (default 32, the paper's)
 *  TT_APPS    comma list filtering which apps run (fig3)
 *  TT_ITERS   override application iteration count (0 = default)
 */

#ifndef TT_BENCH_COMMON_HH
#define TT_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/workloads.hh"
#include "config/builders.hh"

namespace tt::bench
{

inline int
envInt(const char* name, int def)
{
    const char* v = std::getenv(name);
    return v ? std::atoi(v) : def;
}

inline std::vector<std::string>
envList(const char* name, std::vector<std::string> def)
{
    const char* v = std::getenv(name);
    if (!v)
        return def;
    std::vector<std::string> out;
    std::string cur;
    for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

struct RunOutcome
{
    Tick cycles = 0;
    double checksum = 0;
    std::uint64_t workUnits = 0;
};

/** Run @p app on @p target; returns cycles + checksum. */
inline RunOutcome
runApp(TargetMachine& target, BenchApp& app)
{
    const RunResult r = target.run(app);
    return RunOutcome{r.execTime, app.checksum(), app.workUnits()};
}

} // namespace tt::bench

#endif // TT_BENCH_COMMON_HH
