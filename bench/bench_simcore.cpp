/**
 * @file
 * Simulator-throughput benchmark: wall-clocks the fig3 workload grid
 * ({dirnnb, stache} x the five Table 3 applications, small data set)
 * and reports host events/sec, writing a machine-readable JSON
 * report. This measures the *simulator*, not the simulated machine —
 * simulated cycles and checksums ride along so any speedup can be
 * checked against bit-identical results.
 *
 * Environment:
 *   TT_SCALE          problem-size divisor (default 4)
 *   TT_NODES          simulated nodes (default 32)
 *   TT_APPS           comma list of apps (default all five)
 *   TT_BENCH_JSON     output path (default BENCH_simcore.json)
 *   TT_BASELINE_EVSEC reference events/sec to compute speedup
 *   TT_BASELINE_NOTE  how that baseline was measured
 *   TT_ACTOR_NODES    parallel-engine sweep node count (default 64)
 *   TT_ACTOR_HORIZON  parallel-engine sweep horizon (default 200000)
 *   TT_THREADS        comma list of engine worker counts for the
 *                     sweep (default "1,2,4" plus the host core
 *                     count); the serial-queue baseline always runs
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <set>
#include <thread>

#include "bench/bench_common.hh"
#include "config/actor_bench.hh"
#include "config/bench_harness.hh"

using namespace tt;
using namespace tt::bench;

/** Fault mix for the reliable-transport overhead pass. */
constexpr const char* kFaultMix =
    "drop=0.02,dup=0.02,reorder=0.05,seed=1";

int
main()
{
    const int scale = envInt("TT_SCALE", 4);
    const int nodes = envInt("TT_NODES", 32);
    const auto apps = envList(
        "TT_APPS", {"appbt", "barnes", "mp3d", "ocean", "em3d"});
    const char* jsonPath = std::getenv("TT_BENCH_JSON");
    const char* baseline = std::getenv("TT_BASELINE_EVSEC");
    const char* baselineNote = std::getenv("TT_BASELINE_NOTE");

    std::printf("bench_simcore: simulator throughput, nodes=%d "
                "scale=1/%d\n\n",
                nodes, scale);

    BenchReport rep;
    rep.nodes = nodes;
    rep.scale = scale;
    if (baseline)
        rep.baselineEventsPerSec = std::atof(baseline);
    if (baselineNote)
        rep.baselineNote = baselineNote;

    MachineConfig cfg;
    cfg.core.nodes = nodes;

    for (const char* system : {"dirnnb", "stache"}) {
        for (const auto& app : apps) {
            rep.cases.push_back(runBenchCase(
                system, app, DataSet::Small, scale, cfg));
            const BenchCase& c = rep.cases.back();
            std::printf("%-8s %-8s %9.1f ms  %12llu events\n",
                        c.system.c_str(), c.app.c_str(), c.wallMs,
                        static_cast<unsigned long long>(c.events));
            std::fflush(stdout);
        }
    }

    // The same grid with the coherence sanitizer attached, once per
    // checker mode (DESIGN.md §13): `fast` is the default shadow
    // engine whose always-on ≤4x bound the JSON records, `paranoid`
    // the byte-granular oracle for reference. Implicitly this also
    // proves the checker-off hot path above carries only dead
    // branches. Simulated results must not change in either mode.
    for (const auto mode : {ProtocolChecker::Mode::Fast,
                            ProtocolChecker::Mode::Paranoid}) {
        const bool fast = mode == ProtocolChecker::Mode::Fast;
        std::printf("\nchecker-on pass (%s):\n",
                    fast ? "fast" : "paranoid");
        MachineConfig ccfg = cfg;
        ccfg.check.enable = true;
        ccfg.check.mode = mode;
        std::size_t i = 0;
        for (const char* system : {"dirnnb", "stache"}) {
            for (const auto& app : apps) {
                const BenchCase c = runBenchCase(
                    system, app, DataSet::Small, scale, ccfg);
                const BenchCase& base = rep.cases[i++];
                if (c.cycles != base.cycles ||
                    c.checksum != base.checksum) {
                    std::fprintf(stderr,
                                 "checker changed simulated results "
                                 "for %s/%s\n",
                                 system, app.c_str());
                    return 1;
                }
                (fast ? rep.checkerFastEvents
                      : rep.checkerParanoidEvents) += c.events;
                (fast ? rep.checkerFastWallMs
                      : rep.checkerParanoidWallMs) += c.wallMs;
                std::printf("%-8s %-8s %9.1f ms\n", system,
                            app.c_str(), c.wallMs);
                std::fflush(stdout);
            }
        }
    }

    // The same grid again with the flight recorder attached (rings +
    // miss-latency profiler + trace stream to a scratch file): the
    // --trace overhead. Again, simulated results must be bit-identical
    // to the trace-off pass.
    std::printf("\ntrace-on pass:\n");
    {
        MachineConfig tcfg = cfg;
        tcfg.obs.enable = true;
        tcfg.obs.traceFile = "bench_trace_scratch.json";
        std::size_t i = 0;
        for (const char* system : {"dirnnb", "stache"}) {
            for (const auto& app : apps) {
                const BenchCase c = runBenchCase(
                    system, app, DataSet::Small, scale, tcfg);
                const BenchCase& base = rep.cases[i++];
                if (c.cycles != base.cycles ||
                    c.checksum != base.checksum) {
                    std::fprintf(stderr,
                                 "tracing changed simulated results "
                                 "for %s/%s\n",
                                 system, app.c_str());
                    return 1;
                }
                rep.traceOnEvents += c.events;
                rep.traceOnWallMs += c.wallMs;
                std::printf("%-8s %-8s %9.1f ms\n", system,
                            app.c_str(), c.wallMs);
                std::fflush(stdout);
            }
        }
        std::remove("bench_trace_scratch.json");
    }

    // The same grid with the sharing analyzer folding every access
    // (--analyze, DESIGN.md §11): measures the analyzer-on cost.
    // Simulated results must again be bit-identical — the analyzer
    // only observes.
    std::printf("\nanalyze-on pass:\n");
    {
        MachineConfig acfg = cfg;
        acfg.obs.analyze = true;
        std::size_t i = 0;
        for (const char* system : {"dirnnb", "stache"}) {
            for (const auto& app : apps) {
                const BenchCase c = runBenchCase(
                    system, app, DataSet::Small, scale, acfg);
                const BenchCase& base = rep.cases[i++];
                if (c.cycles != base.cycles ||
                    c.checksum != base.checksum) {
                    std::fprintf(stderr,
                                 "analyzer changed simulated results "
                                 "for %s/%s\n",
                                 system, app.c_str());
                    return 1;
                }
                rep.analyzeOnEvents += c.events;
                rep.analyzeOnWallMs += c.wallMs;
                std::printf("%-8s %-8s %9.1f ms\n", system,
                            app.c_str(), c.wallMs);
                std::fflush(stdout);
            }
        }
    }

    // The same grid with the coherence-transaction tracer folding the
    // record stream (--trace-critical, DESIGN.md §14; implies the
    // sharing analyzer). Its slowdown must stay at or below the
    // flight-recorder pass above — the tracer consumes the same
    // stream, just with per-transaction folding on top. Simulated
    // results must be bit-identical to the tracer-off pass.
    std::printf("\ntxn-tracer-on pass:\n");
    {
        MachineConfig xcfg = cfg;
        xcfg.obs.txn = true;
        std::size_t i = 0;
        for (const char* system : {"dirnnb", "stache"}) {
            for (const auto& app : apps) {
                const BenchCase c = runBenchCase(
                    system, app, DataSet::Small, scale, xcfg);
                const BenchCase& base = rep.cases[i++];
                if (c.cycles != base.cycles ||
                    c.checksum != base.checksum) {
                    std::fprintf(stderr,
                                 "txn tracer changed simulated "
                                 "results for %s/%s\n",
                                 system, app.c_str());
                    return 1;
                }
                rep.txnOnEvents += c.events;
                rep.txnOnWallMs += c.wallMs;
                std::printf("%-8s %-8s %9.1f ms\n", system,
                            app.c_str(), c.wallMs);
                std::fflush(stdout);
            }
        }
        if (rep.traceOnWallMs > 0 &&
            rep.txnOnEventsPerSec() < rep.traceOnEventsPerSec()) {
            std::fprintf(stderr,
                         "txn tracer slowdown (%.2fx) exceeds the "
                         "flight-recorder bound (%.2fx)\n",
                         rep.eventsPerSec() / rep.txnOnEventsPerSec(),
                         rep.eventsPerSec() /
                             rep.traceOnEventsPerSec());
            return 1;
        }
    }

    // The same grid over a lossy fabric with the user-level reliable
    // transport repairing it (DESIGN.md §10). Cycle counts
    // legitimately change — retransmission traffic is real simulated
    // work — but application checksums must not: the protocols still
    // compute the right answer over an unreliable network.
    std::printf("\nfaults+transport-on pass:\n");
    {
        MachineConfig fcfg = cfg;
        fcfg.faults = parseFaultSpec(kFaultMix);
        rep.transportFaultSpec = kFaultMix;
        std::size_t i = 0;
        for (const char* system : {"dirnnb", "stache"}) {
            for (const auto& app : apps) {
                const BenchCase c = runBenchCase(
                    system, app, DataSet::Small, scale, fcfg);
                const BenchCase& base = rep.cases[i++];
                if (c.checksum != base.checksum) {
                    std::fprintf(stderr,
                                 "lossy fabric changed application "
                                 "results for %s/%s\n",
                                 system, app.c_str());
                    return 1;
                }
                rep.transportOnEvents += c.events;
                rep.transportOnWallMs += c.wallMs;
                rep.transportOnRetransmits += c.netRetransmits;
                std::printf("%-8s %-8s %9.1f ms\n", system,
                            app.c_str(), c.wallMs);
                std::fflush(stdout);
            }
        }
    }

    // The same grid with self-telemetry attached (--telemetry,
    // DESIGN.md §16): memory probes + sampled host timer + counter
    // refresh. Simulated results must be bit-identical — telemetry
    // only observes — and the slowdown must stay within
    // TT_TELEMETRY_BOUND (default 1.05x): cheap enough to leave on
    // in any measurement run.
    std::printf("\ntelemetry-on pass:\n");
    {
        MachineConfig mcfg = cfg;
        mcfg.obs.telemetry = true;
        std::size_t i = 0;
        for (const char* system : {"dirnnb", "stache"}) {
            for (const auto& app : apps) {
                const BenchCase c = runBenchCase(
                    system, app, DataSet::Small, scale, mcfg);
                const BenchCase& base = rep.cases[i++];
                if (c.cycles != base.cycles ||
                    c.checksum != base.checksum) {
                    std::fprintf(stderr,
                                 "telemetry changed simulated "
                                 "results for %s/%s\n",
                                 system, app.c_str());
                    return 1;
                }
                rep.telemetryOnEvents += c.events;
                rep.telemetryOnWallMs += c.wallMs;
                std::printf("%-8s %-8s %9.1f ms\n", system,
                            app.c_str(), c.wallMs);
                std::fflush(stdout);
            }
        }
        const char* boundEnv = std::getenv("TT_TELEMETRY_BOUND");
        const double bound = boundEnv ? std::atof(boundEnv) : 1.05;
        const double slow =
            rep.eventsPerSec() / rep.telemetryOnEventsPerSec();
        if (slow > bound) {
            std::fprintf(stderr,
                         "telemetry slowdown (%.3fx) exceeds the "
                         "bound (%.2fx)\n",
                         slow, bound);
            return 1;
        }
    }

    // Parallel-engine scaling sweep (DESIGN.md §12): the
    // order-insensitive actor workload through the plain serial queue
    // and the sharded engine at increasing worker counts. The state
    // hash is the determinism cross-check — every run must agree with
    // the serial baseline or the whole bench fails.
    std::printf("\nparallel-engine sweep:\n");
    {
        ActorBenchParams ap;
        ap.nodes = envInt("TT_ACTOR_NODES", 64);
        ap.horizon = envInt("TT_ACTOR_HORIZON", 200'000);
        rep.parallelEngineNodes = ap.nodes;
        rep.parallelEngineLookahead = ap.netLatency;
        rep.hostCores = std::thread::hardware_concurrency();

        std::set<int> counts;
        for (const auto& s :
             envList("TT_THREADS", {"1", "2", "4"}))
            counts.insert(std::atoi(s.c_str()));
        if (rep.hostCores > 0)
            counts.insert(static_cast<int>(rep.hostCores));
        counts.erase(0); // 0 is the implicit serial-queue baseline

        auto runPoint = [&](int threads) {
            ActorBenchParams p = ap;
            p.threads = threads;
            const ActorBenchResult r = runActorBench(p);
            ParallelEngineEntry e;
            e.threads = threads;
            e.events = r.events;
            e.wallMs = r.wallMs;
            e.stateHash = r.stateHash;
            e.parallelWindows = r.parallelWindows;
            rep.parallelEngine.push_back(e);
            std::printf("  threads=%d%s %12llu events %9.1f ms  "
                        "hash %016llx\n",
                        threads,
                        threads == 0 ? " (serial queue)" : "",
                        static_cast<unsigned long long>(r.events),
                        r.wallMs,
                        static_cast<unsigned long long>(r.stateHash));
            std::fflush(stdout);
            return r.stateHash;
        };

        const std::uint64_t want = runPoint(0);
        for (int t : counts) {
            if (runPoint(t) != want) {
                std::fprintf(stderr,
                             "parallel engine diverged from the "
                             "serial queue at threads=%d\n",
                             t);
                return 1;
            }
        }
    }

    // Per-subsystem resident-memory sweep (DESIGN.md §16): em3d/small
    // on both systems at increasing node counts, with the telemetry
    // probes recording where the bytes live. This is a capacity
    // check, not a throughput one — the JSON records peak bytes by
    // subsystem and bytes per simulated node so footprint regressions
    // show up in bench_diff like throughput ones do.
    std::printf("\nmem-footprint sweep:\n");
    {
        for (const auto& ns :
             envList("TT_FOOTPRINT_NODES", {"32", "128", "256"})) {
            const int n = std::atoi(ns.c_str());
            for (const char* system : {"dirnnb", "stache"}) {
                MachineConfig scfg;
                scfg.core.nodes = n;
                scfg.obs.telemetry = true;
                BenchTelemetry bt;
                runBenchCase(system, "em3d", DataSet::Small, scale,
                             scfg, &bt);
                BenchReport::MemFootprintEntry e;
                e.system = system;
                e.nodes = n;
                e.totalPeakBytes = bt.totalPeakBytes;
                e.peakBytesPerNode = bt.peakBytesPerNode;
                e.subsystems = bt.subsystems;
                rep.memFootprint.push_back(e);
                std::printf("  %-8s nodes=%-4d peak %12llu bytes "
                            "(%.0f B/node)\n",
                            system, n,
                            static_cast<unsigned long long>(
                                bt.totalPeakBytes),
                            bt.peakBytesPerNode);
                std::fflush(stdout);
            }
        }
    }

    std::printf("\n");
    rep.printTable(std::cout);

    const std::string out = jsonPath ? jsonPath : "BENCH_simcore.json";
    if (!rep.writeJsonFile(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
