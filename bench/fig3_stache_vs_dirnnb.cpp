/**
 * @file
 * Figure 3: execution time of Typhoon/Stache relative to DirNNB for
 * the five applications, across {small data set x 4K/16K/64K/256K CPU
 * cache} and {large data set x 256K cache} — plus the custom-protocol
 * EM3D bar the paper overlays. Bars below 1.0 mean Typhoon/Stache is
 * faster. Checksums are cross-verified between the targets on every
 * cell.
 *
 * Environment: TT_SCALE (default 8; 1 = full Table 3 sizes),
 * TT_NODES (default 32), TT_APPS (comma list).
 */

#include <cstdio>

#include "apps/em3d.hh"
#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

namespace
{

struct Cell
{
    DataSet ds;
    std::uint64_t cache;
    const char* label;
};

const Cell kCells[] = {
    {DataSet::Small, 4 * 1024, "small/4K"},
    {DataSet::Small, 16 * 1024, "small/16K"},
    {DataSet::Small, 64 * 1024, "small/64K"},
    {DataSet::Small, 256 * 1024, "small/256K"},
    {DataSet::Large, 256 * 1024, "large/256K"},
};

} // namespace

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);
    const auto apps = envList(
        "TT_APPS", {"appbt", "barnes", "mp3d", "ocean", "em3d"});

    std::printf("Figure 3: Typhoon/Stache execution time relative to "
                "DirNNB (lower is better for Typhoon)\n");
    std::printf("nodes=%d scale=1/%d (TT_SCALE=1 for paper sizes)\n\n",
                nodes, scale);
    std::printf("%-8s %-11s %14s %14s %9s\n", "app", "config",
                "DirNNB cycles", "Stache cycles", "relative");

    for (const auto& appName : apps) {
        for (const Cell& cell : kCells) {
            MachineConfig cfg;
            cfg.core.nodes = nodes;
            cfg.core.cacheSize = cell.cache;

            RunOutcome dir, stache;
            {
                auto t = buildDirNNB(cfg);
                auto a = makeWorkload(appName, cell.ds, scale);
                dir = runApp(t, *a);
            }
            {
                auto t = buildTyphoonStache(cfg);
                auto a = makeWorkload(appName, cell.ds, scale);
                stache = runApp(t, *a);
            }
            if (dir.checksum != stache.checksum) {
                std::printf("CHECKSUM MISMATCH for %s %s: %.17g vs "
                            "%.17g\n",
                            appName.c_str(), cell.label, dir.checksum,
                            stache.checksum);
                return 1;
            }
            std::printf("%-8s %-11s %14llu %14llu %9.3f\n",
                        appName.c_str(), cell.label,
                        static_cast<unsigned long long>(dir.cycles),
                        static_cast<unsigned long long>(stache.cycles),
                        static_cast<double>(stache.cycles) /
                            static_cast<double>(dir.cycles));
            std::fflush(stdout);
        }
    }

    // The EM3D custom-protocol bars (the paper overlays them on
    // Figure 3 for the em3d columns).
    bool wantEm3d = false;
    for (const auto& a : apps)
        wantEm3d |= a == "em3d";
    if (wantEm3d) {
        std::printf("\nEM3D with the custom update protocol "
                    "(Typhoon/Update vs DirNNB):\n");
        for (const Cell& cell : kCells) {
            MachineConfig cfg;
            cfg.core.nodes = nodes;
            cfg.core.cacheSize = cell.cache;

            Em3dApp::Params p = em3dParams(cell.ds, 0.2, scale);
            RunOutcome dir, upd;
            {
                auto t = buildDirNNB(cfg);
                Em3dApp a(p);
                dir = runApp(t, a);
            }
            {
                auto t = buildTyphoonEm3dUpdate(cfg);
                Em3dApp a(p, Em3dApp::Mode::Update, t.em3d);
                upd = runApp(t, a);
            }
            if (dir.checksum != upd.checksum) {
                std::printf("CHECKSUM MISMATCH (update) %s\n",
                            cell.label);
                return 1;
            }
            std::printf("%-8s %-11s %14llu %14llu %9.3f\n",
                        "em3d-upd", cell.label,
                        static_cast<unsigned long long>(dir.cycles),
                        static_cast<unsigned long long>(upd.cycles),
                        static_cast<double>(upd.cycles) /
                            static_cast<double>(dir.cycles));
            std::fflush(stdout);
        }
    }
    return 0;
}
