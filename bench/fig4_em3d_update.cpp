/**
 * @file
 * Figure 4: EM3D cycles per edge as the fraction of non-local edges
 * sweeps 0..50%, for DirNNB, Typhoon/Stache, and Typhoon with the
 * custom update protocol, on the large data set (192,000 nodes,
 * degree 15). The paper's shape: the update protocol is lowest and
 * nearly flat; at 50% remote edges it beats DirNNB by ~35%.
 *
 * Environment: TT_SCALE (default 8 for a quick run; 1 = paper size),
 * TT_NODES (default 32).
 */

#include <cstdio>

#include "apps/em3d.hh"
#include "bench/bench_common.hh"

using namespace tt;
using namespace tt::bench;

int
main()
{
    const int scale = envInt("TT_SCALE", 8);
    const int nodes = envInt("TT_NODES", 32);

    std::printf("Figure 4: EM3D update-protocol performance, large "
                "data set\n");
    std::printf("nodes=%d scale=1/%d\n\n", nodes, scale);
    std::printf("%-10s %12s %16s %16s\n", "%% remote", "DirNNB",
                "Typhoon/Stache", "Typhoon/Update");
    std::printf("%-10s %12s %16s %16s   (cycles per edge)\n", "", "",
                "", "");

    for (int pct = 0; pct <= 50; pct += 10) {
        const double frac = pct / 100.0;
        Em3dApp::Params p = em3dParams(DataSet::Large, frac, scale);

        auto cyclesPerEdge = [&](RunOutcome o) {
            // Per-processor work: each node computes its share of the
            // edges each iteration.
            return static_cast<double>(o.cycles) * nodes /
                   static_cast<double>(o.workUnits);
        };

        MachineConfig cfg;
        cfg.core.nodes = nodes;
        cfg.core.cacheSize = 256 * 1024;

        RunOutcome dir, stache, upd;
        {
            auto t = buildDirNNB(cfg);
            Em3dApp a(p);
            dir = runApp(t, a);
        }
        {
            auto t = buildTyphoonStache(cfg);
            Em3dApp a(p);
            stache = runApp(t, a);
        }
        {
            auto t = buildTyphoonEm3dUpdate(cfg);
            Em3dApp a(p, Em3dApp::Mode::Update, t.em3d);
            upd = runApp(t, a);
        }
        if (dir.checksum != stache.checksum ||
            dir.checksum != upd.checksum) {
            std::printf("CHECKSUM MISMATCH at %d%% remote\n", pct);
            return 1;
        }
        std::printf("%-10d %12.1f %16.1f %16.1f\n", pct,
                    cyclesPerEdge(dir), cyclesPerEdge(stache),
                    cyclesPerEdge(upd));
        std::fflush(stdout);
    }
    return 0;
}
