/**
 * @file
 * Host-performance micro-benchmarks of the simulator's mechanisms:
 * event-queue throughput, network delivery, coroutine task overhead,
 * cache/TLB model probes, active-message round trips, and whole
 * protocol transactions. These bound how fast full-application
 * simulations can run.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"
#include "tests/helpers.hh"

using namespace tt;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            eq.scheduleIn(i, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CoroutineTaskChain(benchmark::State& state)
{
    struct Fn
    {
        static Task<int>
        leaf()
        {
            co_return 1;
        }
        static Task<int>
        chain(int depth)
        {
            if (depth == 0)
                co_return co_await leaf();
            co_return co_await chain(depth - 1);
        }
    };
    for (auto _ : state) {
        int out = 0;
        spawnDetached(
            [](int& o) -> Task<void> {
                o = co_await Fn::chain(64);
            }(out),
            [](std::exception_ptr) {});
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_CoroutineTaskChain);

void
BM_CacheModelProbeFill(benchmark::State& state)
{
    CacheModel c(256 * 1024, 4, 32, 1);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.probeRead(a));
        c.fill(a, LineState::Shared);
        a = (a + 4096 + 32) & 0xFFFFFF;
    }
}
BENCHMARK(BM_CacheModelProbeFill);

void
BM_NetworkMessageDelivery(benchmark::State& state)
{
    EventQueue eq;
    StatSet stats;
    Network net(eq, 2, NetworkParams{}, stats);
    std::uint64_t delivered = 0;
    net.setReceiver(0, [&](Message&&) { ++delivered; });
    net.setReceiver(1, [&](Message&&) { ++delivered; });
    for (auto _ : state) {
        Message m;
        m.src = 0;
        m.dst = 1;
        m.handler = 1;
        m.data.assign(32, 0);
        net.send(std::move(m), eq.now());
        eq.run();
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NetworkMessageDelivery);

void
BM_StacheRemoteMissTransaction(benchmark::State& state)
{
    // Full protocol transaction: fault -> GetRO -> DataRO -> resume.
    test::StacheRig rig(2);
    const std::size_t blocks = 1 << 14;
    Addr a = rig.stache->shmalloc(blocks * 32, 0);
    std::size_t i = 0;
    for (auto _ : state) {
        state.PauseTiming();
        const std::size_t begin = i;
        state.ResumeTiming();
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 1)
                co_return;
            for (std::size_t k = 0; k < 512; ++k)
                co_await cpu.read<int>(
                    a + ((begin + k) % blocks) * 32);
        });
        rig.machine->run(app);
        i += 512;
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_StacheRemoteMissTransaction);

void
BM_DirNNBRemoteMissTransaction(benchmark::State& state)
{
    test::DirRig rig(2);
    const std::size_t blocks = 1 << 14;
    Addr a = rig.mem->shmalloc(blocks * 32, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        state.PauseTiming();
        const std::size_t begin = i;
        state.ResumeTiming();
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 0)
                co_return;
            for (std::size_t k = 0; k < 512; ++k)
                co_await cpu.read<int>(
                    a + ((begin + k) % blocks) * 32);
        });
        rig.machine->run(app);
        i += 512;
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DirNNBRemoteMissTransaction);

void
BM_WholeAppTinyEm3d(benchmark::State& state)
{
    for (auto _ : state) {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        auto t = buildTyphoonStache(cfg);
        auto a = makeWorkload("em3d", DataSet::Tiny);
        const RunResult r = t.run(*a);
        benchmark::DoNotOptimize(r.execTime);
    }
}
BENCHMARK(BM_WholeAppTinyEm3d);

} // namespace

BENCHMARK_MAIN();
