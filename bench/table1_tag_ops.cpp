/**
 * @file
 * Table 1: the nine operations on tagged memory blocks, with their
 * simulated Typhoon costs — plus the section 6 miss-path audit ("the
 * NP executes only 14 instructions to request a missing block, 30
 * instructions for the remote node to respond with the data, and 20
 * instructions when the data arrives"), measured on real Stache
 * handler activations. Google-benchmark micro-benchmarks of the host
 * simulator's tag-operation throughput follow.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.hh"
#include "stache/stache.hh"
#include "tests/helpers.hh"

using namespace tt;

namespace
{

/** Measure the charged cost of each Table 1 primitive. */
void
printTable1()
{
    test::StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);

    NpCtx ctx(*rig.mem, 0, 0, /*setup=*/false);
    auto cost = [&](auto&& fn) {
        const Tick before = ctx.charged();
        fn();
        return ctx.charged() - before;
    };

    std::uint8_t buf[32] = {};
    const Tick tReadTag = cost([&] { ctx.readTag(a); });
    const Tick tSetRW = cost([&] { ctx.setRW(a); });
    const Tick tSetRO = cost([&] { ctx.setRO(a); });
    const Tick tInval = cost([&] { ctx.invalidate(a); });
    const Tick tForceR = cost([&] { ctx.forceRead(a, buf, 32); });
    const Tick tForceW = cost([&] { ctx.forceWrite(a, buf, 32); });
    ctx.setRW(a);

    std::printf("Table 1: operations on tagged memory blocks "
                "(simulated Typhoon cost, NP cycles)\n\n");
    std::printf("  %-12s %-52s %s\n", "operation", "description",
                "cost");
    std::printf("  %-12s %-52s %s\n", "read", //
                "load with tag check (hit: +0; local miss: +29; fault:"
                " handler path)",
                "-");
    std::printf("  %-12s %-52s %s\n", "write",
                "store with tag check (same charging as read)", "-");
    std::printf("  %-12s %-52s %llu\n", "force-read",
                "load without tag check (32B via BXB)",
                (unsigned long long)tForceR);
    std::printf("  %-12s %-52s %llu\n", "force-write",
                "store without tag check (32B via BXB)",
                (unsigned long long)tForceW);
    std::printf("  %-12s %-52s %llu\n", "read-tag",
                "return value of tag (RTLB memory-mapped)",
                (unsigned long long)tReadTag);
    std::printf("  %-12s %-52s %llu\n", "set-RW",
                "set tag to ReadWrite", (unsigned long long)tSetRW);
    std::printf("  %-12s %-52s %llu\n", "set-RO",
                "set tag to ReadOnly (+CPU copy downgrade)",
                (unsigned long long)tSetRO);
    std::printf("  %-12s %-52s %llu\n", "invalidate",
                "set tag Invalid + invalidate local CPU copies",
                (unsigned long long)tInval);
    std::printf("  %-12s %-52s %llu\n", "resume",
                "resume suspended thread (unmask bus request)",
                (unsigned long long)rig.tp.resumeCost);
}

/** The 14/30/20 miss-path audit on live Stache handlers. */
void
printMissPathAudit()
{
    TyphoonParams tp;
    tp.perHandlerStats = true;
    test::StacheRig rig(2, CoreParams{}, tp);
    Addr a = rig.stache->shmalloc(256 * 4096, 0);

    // Warm-up: map the pages and warm the NP TLBs / D-cache (the
    // paper's instruction counts are warm fast-path numbers), then
    // measure a fresh stream of block faults on the warm pages.
    test::FnApp warm([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        for (int i = 0; i < 8; ++i)
            co_await cpu.read<int>(a + i * 4096);
    });
    rig.machine->run(warm);
    rig.machine->stats().reset();

    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        for (int blk = 1; blk < 64; ++blk)
            for (int i = 0; i < 8; ++i)
                co_await cpu.read<int>(a + i * 4096 + blk * 32);
    });
    rig.machine->run(app);

    auto& st = rig.machine->stats();
    std::printf("\nMiss-path NP instruction audit (paper section 6: "
                "14 request / 30 respond / 20 arrival)\n\n");
    std::printf("  %-34s %6.1f cycles (paper: 14 instructions)\n",
                "request handler (BAF -> GetRO)",
                st.average("np.handler.baf").mean());
    std::printf("  %-34s %6.1f cycles (paper: 30 instructions)\n",
                "home handler (GetRO -> DataRO)",
                st.average("np.handler." +
                           std::to_string(Stache::kGetRO))
                    .mean());
    std::printf("  %-34s %6.1f cycles (paper: 20 instructions)\n",
                "arrival handler (DataRO -> resume)",
                st.average("np.handler." +
                           std::to_string(Stache::kDataRO))
                    .mean());
}

// ---- host-simulator micro-benchmarks --------------------------------

void
BM_TagOpReadTag(benchmark::State& state)
{
    test::StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    NpCtx ctx(*rig.mem, 0, 0, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(ctx.readTag(a));
}
BENCHMARK(BM_TagOpReadTag);

void
BM_TagOpSetInvalidate(benchmark::State& state)
{
    test::StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    NpCtx ctx(*rig.mem, 0, 0, true);
    for (auto _ : state) {
        ctx.invalidate(a);
        ctx.setRW(a);
    }
}
BENCHMARK(BM_TagOpSetInvalidate);

void
BM_ForceWrite32(benchmark::State& state)
{
    test::StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    NpCtx ctx(*rig.mem, 0, 0, true);
    std::uint8_t buf[32] = {1, 2, 3};
    for (auto _ : state)
        ctx.forceWrite(a, buf, 32);
}
BENCHMARK(BM_ForceWrite32);

} // namespace

int
main(int argc, char** argv)
{
    printTable1();
    printMissPathAudit();
    std::printf("\nHost micro-benchmarks of the simulated ops:\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
