/**
 * @file
 * Table 2: the simulation parameters of both targets — printed from
 * the live configuration, then *validated*: each headline latency is
 * re-measured on the simulated machine (local miss, TLB miss, remote
 * miss composition, network latency, barrier) and compared against
 * the configured value.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "tests/helpers.hh"

using namespace tt;

namespace
{

void
validate()
{
    std::printf("\nMeasured validation (simulated):\n");

    // Local miss and TLB miss on DirNNB.
    {
        test::DirRig rig(2);
        Addr a = rig.mem->shmalloc(4096, 0);
        Tick first = 0, second = 0;
        rig.run([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 0)
                co_return;
            Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a);
            first = cpu.localTime() - t0; // 1 + TLB 25 + miss 29
            t0 = cpu.localTime();
            co_await cpu.read<int>(a + 32);
            second = cpu.localTime() - t0; // 1 + miss 29
        });
        std::printf("  %-44s %3llu cycles (expect 29+25+1)\n",
                    "cold local read (miss + TLB miss + 1 instr)",
                    (unsigned long long)first);
        std::printf("  %-44s %3llu cycles (expect 29+1)\n",
                    "warm-TLB local miss",
                    (unsigned long long)second);
    }

    // Remote clean read miss composition on DirNNB.
    {
        test::DirRig rig(2);
        Addr a = rig.mem->shmalloc(4096, 1);
        Tick remote = 0;
        rig.run([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 0)
                co_return;
            const Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a);
            remote = cpu.localTime() - t0;
        });
        std::printf("  %-44s %3llu cycles (expect 1+25+23+12+32+12+"
                    "34 = 139)\n",
                    "DirNNB remote clean read miss",
                    (unsigned long long)remote);
    }

    // The same miss on Typhoon/Stache (the +-30%% comparison point).
    {
        test::StacheRig rig(2);
        Addr a = rig.stache->shmalloc(4096, 0);
        Tick remote = 0;
        rig.run([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 1)
                co_return;
            const Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a);
            remote = cpu.localTime() - t0; // page fault + block fetch
            // Second block on the now-mapped page: the pure
            // block-fault path.
            const Tick t1 = cpu.localTime();
            co_await cpu.read<int>(a + 64);
            std::printf("  %-44s %3llu cycles\n",
                        "Typhoon/Stache remote block fetch (warm page)",
                        (unsigned long long)(cpu.localTime() - t1));
        });
        std::printf("  %-44s %3llu cycles (includes page fault)\n",
                    "Typhoon/Stache first touch of remote page",
                    (unsigned long long)remote);
    }

    // Barrier latency.
    {
        test::DirRig rig(4);
        Tick t = 0;
        rig.run([&](Cpu& cpu) -> Task<void> {
            co_await cpu.compute(100);
            co_await rig.machine->barrier().wait(cpu);
            t = cpu.localTime();
        });
        std::printf("  %-44s %3llu cycles after max arrival "
                    "(expect 11)\n",
                    "barrier release",
                    (unsigned long long)(t - 100));
    }
}

void
BM_SimulatedLocalMissThroughput(benchmark::State& state)
{
    // Host cost of simulating a stream of local misses (DirNNB).
    test::DirRig rig(1);
    Addr a = rig.mem->shmalloc(1 << 20, 0);
    std::size_t i = 0;
    for (auto _ : state) {
        state.PauseTiming();
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            for (int k = 0; k < 1024; ++k)
                co_await cpu.read<int>(a + ((i + k) * 32) % (1 << 20));
        });
        state.ResumeTiming();
        rig.machine->run(app);
        i += 1024;
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatedLocalMissThroughput);

} // namespace

int
main(int argc, char** argv)
{
    MachineConfig cfg;
    printTable2(std::cout, cfg);
    validate();
    std::printf("\nHost micro-benchmark:\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
