/**
 * @file
 * Table 3: the application data sets, plus each workload's measured
 * shared-memory footprint and work-unit count as instantiated by this
 * reproduction (tiny variants included for reference).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace tt;

int
main()
{
    std::printf("Table 3: application data sets\n\n");
    std::printf("  %-10s %-28s %-28s\n", "app", "small data set",
                "large data set");
    for (const auto& w : workloadTable())
        std::printf("  %-10s %-28s %-28s\n", w.app.c_str(),
                    w.smallDesc.c_str(), w.largeDesc.c_str());

    std::printf("\nInstantiated footprints (shared pages allocated on"
                " a 4-node machine, tiny + small):\n\n");
    std::printf("  %-10s %-7s %12s %14s\n", "app", "set",
                "shared KB", "work units");
    for (const auto& w : workloadTable()) {
        for (DataSet ds : {DataSet::Tiny, DataSet::Small}) {
            MachineConfig cfg;
            cfg.core.nodes = 4;
            auto t = buildTyphoonStache(cfg);
            auto a = makeWorkload(w.app, ds);
            a->setup(t.m());
            std::uint64_t pages = 0;
            for (int n = 0; n < 4; ++n)
                pages += t.typhoon->physOf(n).allocatedPages();
            std::printf("  %-10s %-7s %12llu %14llu\n", w.app.c_str(),
                        dataSetName(ds),
                        (unsigned long long)(pages * 4),
                        (unsigned long long)a->workUnits());
        }
    }
    return 0;
}
