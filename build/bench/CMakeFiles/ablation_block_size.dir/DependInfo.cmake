
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_block_size.cpp" "bench/CMakeFiles/ablation_block_size.dir/ablation_block_size.cpp.o" "gcc" "bench/CMakeFiles/ablation_block_size.dir/ablation_block_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/tt_config.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/custom/CMakeFiles/tt_custom.dir/DependInfo.cmake"
  "/root/repo/build/src/stache/CMakeFiles/tt_stache.dir/DependInfo.cmake"
  "/root/repo/build/src/typhoon/CMakeFiles/tt_typhoon.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/tt_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
