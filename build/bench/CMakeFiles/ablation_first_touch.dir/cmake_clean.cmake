file(REMOVE_RECURSE
  "CMakeFiles/ablation_first_touch.dir/ablation_first_touch.cpp.o"
  "CMakeFiles/ablation_first_touch.dir/ablation_first_touch.cpp.o.d"
  "ablation_first_touch"
  "ablation_first_touch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_first_touch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
