# Empty dependencies file for ablation_first_touch.
# This may be replaced when dependencies are built.
