file(REMOVE_RECURSE
  "CMakeFiles/ablation_msg_vs_shm.dir/ablation_msg_vs_shm.cpp.o"
  "CMakeFiles/ablation_msg_vs_shm.dir/ablation_msg_vs_shm.cpp.o.d"
  "ablation_msg_vs_shm"
  "ablation_msg_vs_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_msg_vs_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
