# Empty compiler generated dependencies file for ablation_msg_vs_shm.
# This may be replaced when dependencies are built.
