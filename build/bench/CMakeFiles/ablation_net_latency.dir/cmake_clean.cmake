file(REMOVE_RECURSE
  "CMakeFiles/ablation_net_latency.dir/ablation_net_latency.cpp.o"
  "CMakeFiles/ablation_net_latency.dir/ablation_net_latency.cpp.o.d"
  "ablation_net_latency"
  "ablation_net_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_net_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
