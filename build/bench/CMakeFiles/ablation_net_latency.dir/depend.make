# Empty dependencies file for ablation_net_latency.
# This may be replaced when dependencies are built.
