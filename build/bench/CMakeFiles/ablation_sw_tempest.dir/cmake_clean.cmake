file(REMOVE_RECURSE
  "CMakeFiles/ablation_sw_tempest.dir/ablation_sw_tempest.cpp.o"
  "CMakeFiles/ablation_sw_tempest.dir/ablation_sw_tempest.cpp.o.d"
  "ablation_sw_tempest"
  "ablation_sw_tempest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sw_tempest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
