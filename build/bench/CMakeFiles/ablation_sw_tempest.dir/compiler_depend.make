# Empty compiler generated dependencies file for ablation_sw_tempest.
# This may be replaced when dependencies are built.
