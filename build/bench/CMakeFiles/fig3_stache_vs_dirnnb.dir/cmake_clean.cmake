file(REMOVE_RECURSE
  "CMakeFiles/fig3_stache_vs_dirnnb.dir/fig3_stache_vs_dirnnb.cpp.o"
  "CMakeFiles/fig3_stache_vs_dirnnb.dir/fig3_stache_vs_dirnnb.cpp.o.d"
  "fig3_stache_vs_dirnnb"
  "fig3_stache_vs_dirnnb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stache_vs_dirnnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
