# Empty dependencies file for fig3_stache_vs_dirnnb.
# This may be replaced when dependencies are built.
