file(REMOVE_RECURSE
  "CMakeFiles/fig4_em3d_update.dir/fig4_em3d_update.cpp.o"
  "CMakeFiles/fig4_em3d_update.dir/fig4_em3d_update.cpp.o.d"
  "fig4_em3d_update"
  "fig4_em3d_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_em3d_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
