file(REMOVE_RECURSE
  "CMakeFiles/micro_mechanisms.dir/micro_mechanisms.cpp.o"
  "CMakeFiles/micro_mechanisms.dir/micro_mechanisms.cpp.o.d"
  "micro_mechanisms"
  "micro_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
