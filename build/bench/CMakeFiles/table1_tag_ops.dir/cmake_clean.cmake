file(REMOVE_RECURSE
  "CMakeFiles/table1_tag_ops.dir/table1_tag_ops.cpp.o"
  "CMakeFiles/table1_tag_ops.dir/table1_tag_ops.cpp.o.d"
  "table1_tag_ops"
  "table1_tag_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tag_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
