# Empty compiler generated dependencies file for table1_tag_ops.
# This may be replaced when dependencies are built.
