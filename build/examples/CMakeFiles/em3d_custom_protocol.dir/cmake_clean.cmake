file(REMOVE_RECURSE
  "CMakeFiles/em3d_custom_protocol.dir/em3d_custom_protocol.cpp.o"
  "CMakeFiles/em3d_custom_protocol.dir/em3d_custom_protocol.cpp.o.d"
  "em3d_custom_protocol"
  "em3d_custom_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em3d_custom_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
