# Empty compiler generated dependencies file for em3d_custom_protocol.
# This may be replaced when dependencies are built.
