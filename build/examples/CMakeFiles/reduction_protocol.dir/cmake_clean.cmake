file(REMOVE_RECURSE
  "CMakeFiles/reduction_protocol.dir/reduction_protocol.cpp.o"
  "CMakeFiles/reduction_protocol.dir/reduction_protocol.cpp.o.d"
  "reduction_protocol"
  "reduction_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
