# Empty compiler generated dependencies file for reduction_protocol.
# This may be replaced when dependencies are built.
