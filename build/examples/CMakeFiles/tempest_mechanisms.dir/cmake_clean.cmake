file(REMOVE_RECURSE
  "CMakeFiles/tempest_mechanisms.dir/tempest_mechanisms.cpp.o"
  "CMakeFiles/tempest_mechanisms.dir/tempest_mechanisms.cpp.o.d"
  "tempest_mechanisms"
  "tempest_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
