# Empty dependencies file for tempest_mechanisms.
# This may be replaced when dependencies are built.
