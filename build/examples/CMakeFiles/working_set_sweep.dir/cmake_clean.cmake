file(REMOVE_RECURSE
  "CMakeFiles/working_set_sweep.dir/working_set_sweep.cpp.o"
  "CMakeFiles/working_set_sweep.dir/working_set_sweep.cpp.o.d"
  "working_set_sweep"
  "working_set_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_set_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
