# Empty dependencies file for working_set_sweep.
# This may be replaced when dependencies are built.
