# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tempest_mechanisms "/root/repo/build/examples/tempest_mechanisms")
set_tests_properties(example_tempest_mechanisms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_em3d_custom "/root/repo/build/examples/em3d_custom_protocol" "30")
set_tests_properties(example_em3d_custom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_working_set "/root/repo/build/examples/working_set_sweep")
set_tests_properties(example_working_set PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reduction "/root/repo/build/examples/reduction_protocol")
set_tests_properties(example_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
