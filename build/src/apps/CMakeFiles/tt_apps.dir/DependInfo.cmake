
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/appbt.cc" "src/apps/CMakeFiles/tt_apps.dir/appbt.cc.o" "gcc" "src/apps/CMakeFiles/tt_apps.dir/appbt.cc.o.d"
  "/root/repo/src/apps/barnes.cc" "src/apps/CMakeFiles/tt_apps.dir/barnes.cc.o" "gcc" "src/apps/CMakeFiles/tt_apps.dir/barnes.cc.o.d"
  "/root/repo/src/apps/em3d.cc" "src/apps/CMakeFiles/tt_apps.dir/em3d.cc.o" "gcc" "src/apps/CMakeFiles/tt_apps.dir/em3d.cc.o.d"
  "/root/repo/src/apps/mp3d.cc" "src/apps/CMakeFiles/tt_apps.dir/mp3d.cc.o" "gcc" "src/apps/CMakeFiles/tt_apps.dir/mp3d.cc.o.d"
  "/root/repo/src/apps/ocean.cc" "src/apps/CMakeFiles/tt_apps.dir/ocean.cc.o" "gcc" "src/apps/CMakeFiles/tt_apps.dir/ocean.cc.o.d"
  "/root/repo/src/apps/workloads.cc" "src/apps/CMakeFiles/tt_apps.dir/workloads.cc.o" "gcc" "src/apps/CMakeFiles/tt_apps.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/custom/CMakeFiles/tt_custom.dir/DependInfo.cmake"
  "/root/repo/build/src/stache/CMakeFiles/tt_stache.dir/DependInfo.cmake"
  "/root/repo/build/src/typhoon/CMakeFiles/tt_typhoon.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
