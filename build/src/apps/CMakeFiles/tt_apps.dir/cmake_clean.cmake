file(REMOVE_RECURSE
  "CMakeFiles/tt_apps.dir/appbt.cc.o"
  "CMakeFiles/tt_apps.dir/appbt.cc.o.d"
  "CMakeFiles/tt_apps.dir/barnes.cc.o"
  "CMakeFiles/tt_apps.dir/barnes.cc.o.d"
  "CMakeFiles/tt_apps.dir/em3d.cc.o"
  "CMakeFiles/tt_apps.dir/em3d.cc.o.d"
  "CMakeFiles/tt_apps.dir/mp3d.cc.o"
  "CMakeFiles/tt_apps.dir/mp3d.cc.o.d"
  "CMakeFiles/tt_apps.dir/ocean.cc.o"
  "CMakeFiles/tt_apps.dir/ocean.cc.o.d"
  "CMakeFiles/tt_apps.dir/workloads.cc.o"
  "CMakeFiles/tt_apps.dir/workloads.cc.o.d"
  "libtt_apps.a"
  "libtt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
