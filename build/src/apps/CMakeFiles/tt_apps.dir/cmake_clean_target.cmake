file(REMOVE_RECURSE
  "libtt_apps.a"
)
