# Empty compiler generated dependencies file for tt_apps.
# This may be replaced when dependencies are built.
