file(REMOVE_RECURSE
  "CMakeFiles/tt_config.dir/builders.cc.o"
  "CMakeFiles/tt_config.dir/builders.cc.o.d"
  "libtt_config.a"
  "libtt_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
