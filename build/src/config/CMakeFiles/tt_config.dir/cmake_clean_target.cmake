file(REMOVE_RECURSE
  "libtt_config.a"
)
