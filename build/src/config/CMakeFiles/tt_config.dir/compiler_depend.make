# Empty compiler generated dependencies file for tt_config.
# This may be replaced when dependencies are built.
