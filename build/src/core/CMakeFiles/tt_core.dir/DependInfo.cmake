
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/machine.cc" "src/core/CMakeFiles/tt_core.dir/machine.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/machine.cc.o.d"
  "/root/repo/src/core/tempest.cc" "src/core/CMakeFiles/tt_core.dir/tempest.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/tempest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
