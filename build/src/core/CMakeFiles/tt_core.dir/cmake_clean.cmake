file(REMOVE_RECURSE
  "CMakeFiles/tt_core.dir/machine.cc.o"
  "CMakeFiles/tt_core.dir/machine.cc.o.d"
  "CMakeFiles/tt_core.dir/tempest.cc.o"
  "CMakeFiles/tt_core.dir/tempest.cc.o.d"
  "libtt_core.a"
  "libtt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
