# Empty dependencies file for tt_core.
# This may be replaced when dependencies are built.
