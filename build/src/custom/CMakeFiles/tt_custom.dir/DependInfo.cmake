
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/custom/em3d_protocol.cc" "src/custom/CMakeFiles/tt_custom.dir/em3d_protocol.cc.o" "gcc" "src/custom/CMakeFiles/tt_custom.dir/em3d_protocol.cc.o.d"
  "/root/repo/src/custom/migratory.cc" "src/custom/CMakeFiles/tt_custom.dir/migratory.cc.o" "gcc" "src/custom/CMakeFiles/tt_custom.dir/migratory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stache/CMakeFiles/tt_stache.dir/DependInfo.cmake"
  "/root/repo/build/src/typhoon/CMakeFiles/tt_typhoon.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
