file(REMOVE_RECURSE
  "CMakeFiles/tt_custom.dir/em3d_protocol.cc.o"
  "CMakeFiles/tt_custom.dir/em3d_protocol.cc.o.d"
  "CMakeFiles/tt_custom.dir/migratory.cc.o"
  "CMakeFiles/tt_custom.dir/migratory.cc.o.d"
  "libtt_custom.a"
  "libtt_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
