file(REMOVE_RECURSE
  "libtt_custom.a"
)
