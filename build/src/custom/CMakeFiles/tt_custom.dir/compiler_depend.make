# Empty compiler generated dependencies file for tt_custom.
# This may be replaced when dependencies are built.
