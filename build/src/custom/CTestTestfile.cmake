# CMake generated Testfile for 
# Source directory: /root/repo/src/custom
# Build directory: /root/repo/build/src/custom
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
