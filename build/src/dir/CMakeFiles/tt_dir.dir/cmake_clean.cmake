file(REMOVE_RECURSE
  "CMakeFiles/tt_dir.dir/dir_mem_system.cc.o"
  "CMakeFiles/tt_dir.dir/dir_mem_system.cc.o.d"
  "libtt_dir.a"
  "libtt_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
