file(REMOVE_RECURSE
  "libtt_dir.a"
)
