# Empty dependencies file for tt_dir.
# This may be replaced when dependencies are built.
