file(REMOVE_RECURSE
  "CMakeFiles/tt_mem.dir/cache_model.cc.o"
  "CMakeFiles/tt_mem.dir/cache_model.cc.o.d"
  "libtt_mem.a"
  "libtt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
