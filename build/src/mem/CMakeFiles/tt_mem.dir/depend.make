# Empty dependencies file for tt_mem.
# This may be replaced when dependencies are built.
