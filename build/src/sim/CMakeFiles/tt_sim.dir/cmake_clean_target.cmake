file(REMOVE_RECURSE
  "libtt_sim.a"
)
