file(REMOVE_RECURSE
  "CMakeFiles/tt_stache.dir/stache.cc.o"
  "CMakeFiles/tt_stache.dir/stache.cc.o.d"
  "libtt_stache.a"
  "libtt_stache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_stache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
