file(REMOVE_RECURSE
  "libtt_stache.a"
)
