# Empty dependencies file for tt_stache.
# This may be replaced when dependencies are built.
