file(REMOVE_RECURSE
  "CMakeFiles/tt_typhoon.dir/typhoon_mem_system.cc.o"
  "CMakeFiles/tt_typhoon.dir/typhoon_mem_system.cc.o.d"
  "libtt_typhoon.a"
  "libtt_typhoon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_typhoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
