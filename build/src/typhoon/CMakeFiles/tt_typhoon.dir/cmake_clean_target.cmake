file(REMOVE_RECURSE
  "libtt_typhoon.a"
)
