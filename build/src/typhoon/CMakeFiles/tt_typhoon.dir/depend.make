# Empty dependencies file for tt_typhoon.
# This may be replaced when dependencies are built.
