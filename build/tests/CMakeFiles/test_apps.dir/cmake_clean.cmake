file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_app_kernels.cc.o"
  "CMakeFiles/test_apps.dir/apps/test_app_kernels.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/test_apps_integration.cc.o"
  "CMakeFiles/test_apps.dir/apps/test_apps_integration.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/test_apps_param.cc.o"
  "CMakeFiles/test_apps.dir/apps/test_apps_param.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/test_golden.cc.o"
  "CMakeFiles/test_apps.dir/apps/test_golden.cc.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
