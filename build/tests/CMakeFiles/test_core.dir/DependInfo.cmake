
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_cpu_coro.cc" "tests/CMakeFiles/test_core.dir/core/test_cpu_coro.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cpu_coro.cc.o.d"
  "/root/repo/tests/core/test_machine.cc" "tests/CMakeFiles/test_core.dir/core/test_machine.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_machine.cc.o.d"
  "/root/repo/tests/core/test_sync.cc" "tests/CMakeFiles/test_core.dir/core/test_sync.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
