file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_cpu_coro.cc.o"
  "CMakeFiles/test_core.dir/core/test_cpu_coro.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_machine.cc.o"
  "CMakeFiles/test_core.dir/core/test_machine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_sync.cc.o"
  "CMakeFiles/test_core.dir/core/test_sync.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
