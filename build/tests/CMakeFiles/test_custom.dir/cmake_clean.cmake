file(REMOVE_RECURSE
  "CMakeFiles/test_custom.dir/custom/test_em3d_fuzz.cc.o"
  "CMakeFiles/test_custom.dir/custom/test_em3d_fuzz.cc.o.d"
  "CMakeFiles/test_custom.dir/custom/test_em3d_protocol.cc.o"
  "CMakeFiles/test_custom.dir/custom/test_em3d_protocol.cc.o.d"
  "CMakeFiles/test_custom.dir/custom/test_migratory.cc.o"
  "CMakeFiles/test_custom.dir/custom/test_migratory.cc.o.d"
  "test_custom"
  "test_custom.pdb"
  "test_custom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
