file(REMOVE_RECURSE
  "CMakeFiles/test_dir.dir/dir/test_dirnnb.cc.o"
  "CMakeFiles/test_dir.dir/dir/test_dirnnb.cc.o.d"
  "CMakeFiles/test_dir.dir/dir/test_dirnnb_fuzz.cc.o"
  "CMakeFiles/test_dir.dir/dir/test_dirnnb_fuzz.cc.o.d"
  "CMakeFiles/test_dir.dir/dir/test_dirnnb_param.cc.o"
  "CMakeFiles/test_dir.dir/dir/test_dirnnb_param.cc.o.d"
  "test_dir"
  "test_dir.pdb"
  "test_dir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
