
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_addr.cc" "tests/CMakeFiles/test_mem.dir/mem/test_addr.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_addr.cc.o.d"
  "/root/repo/tests/mem/test_cache_model.cc" "tests/CMakeFiles/test_mem.dir/mem/test_cache_model.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_cache_model.cc.o.d"
  "/root/repo/tests/mem/test_page_table.cc" "tests/CMakeFiles/test_mem.dir/mem/test_page_table.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_page_table.cc.o.d"
  "/root/repo/tests/mem/test_phys_mem.cc" "tests/CMakeFiles/test_mem.dir/mem/test_phys_mem.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_phys_mem.cc.o.d"
  "/root/repo/tests/mem/test_tlb_model.cc" "tests/CMakeFiles/test_mem.dir/mem/test_tlb_model.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_tlb_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
