file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_addr.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_addr.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_cache_model.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_cache_model.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_page_table.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_page_table.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_phys_mem.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_phys_mem.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_tlb_model.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_tlb_model.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
