file(REMOVE_RECURSE
  "CMakeFiles/test_stache.dir/stache/test_dir_entry.cc.o"
  "CMakeFiles/test_stache.dir/stache/test_dir_entry.cc.o.d"
  "CMakeFiles/test_stache.dir/stache/test_prefetch.cc.o"
  "CMakeFiles/test_stache.dir/stache/test_prefetch.cc.o.d"
  "CMakeFiles/test_stache.dir/stache/test_stache.cc.o"
  "CMakeFiles/test_stache.dir/stache/test_stache.cc.o.d"
  "CMakeFiles/test_stache.dir/stache/test_stache_fuzz.cc.o"
  "CMakeFiles/test_stache.dir/stache/test_stache_fuzz.cc.o.d"
  "CMakeFiles/test_stache.dir/stache/test_stache_param.cc.o"
  "CMakeFiles/test_stache.dir/stache/test_stache_param.cc.o.d"
  "test_stache"
  "test_stache.pdb"
  "test_stache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
