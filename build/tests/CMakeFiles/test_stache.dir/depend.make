# Empty dependencies file for test_stache.
# This may be replaced when dependencies are built.
