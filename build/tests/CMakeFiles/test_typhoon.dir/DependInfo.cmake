
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/typhoon/test_bulk_and_edge.cc" "tests/CMakeFiles/test_typhoon.dir/typhoon/test_bulk_and_edge.cc.o" "gcc" "tests/CMakeFiles/test_typhoon.dir/typhoon/test_bulk_and_edge.cc.o.d"
  "/root/repo/tests/typhoon/test_trace.cc" "tests/CMakeFiles/test_typhoon.dir/typhoon/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_typhoon.dir/typhoon/test_trace.cc.o.d"
  "/root/repo/tests/typhoon/test_typhoon.cc" "tests/CMakeFiles/test_typhoon.dir/typhoon/test_typhoon.cc.o" "gcc" "tests/CMakeFiles/test_typhoon.dir/typhoon/test_typhoon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/tt_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/stache/CMakeFiles/tt_stache.dir/DependInfo.cmake"
  "/root/repo/build/src/typhoon/CMakeFiles/tt_typhoon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
