file(REMOVE_RECURSE
  "CMakeFiles/test_typhoon.dir/typhoon/test_bulk_and_edge.cc.o"
  "CMakeFiles/test_typhoon.dir/typhoon/test_bulk_and_edge.cc.o.d"
  "CMakeFiles/test_typhoon.dir/typhoon/test_trace.cc.o"
  "CMakeFiles/test_typhoon.dir/typhoon/test_trace.cc.o.d"
  "CMakeFiles/test_typhoon.dir/typhoon/test_typhoon.cc.o"
  "CMakeFiles/test_typhoon.dir/typhoon/test_typhoon.cc.o.d"
  "test_typhoon"
  "test_typhoon.pdb"
  "test_typhoon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typhoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
