# Empty compiler generated dependencies file for test_typhoon.
# This may be replaced when dependencies are built.
