# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ttsim_list "/root/repo/build/tools/ttsim" "--list")
set_tests_properties(ttsim_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ttsim_stache_em3d "/root/repo/build/tools/ttsim" "--system=stache" "--app=em3d" "--dataset=tiny" "--nodes=8" "--stats")
set_tests_properties(ttsim_stache_em3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ttsim_dirnnb_mp3d "/root/repo/build/tools/ttsim" "--system=dirnnb" "--app=mp3d" "--dataset=tiny" "--nodes=8")
set_tests_properties(ttsim_dirnnb_mp3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ttsim_update_em3d "/root/repo/build/tools/ttsim" "--system=update" "--app=em3d" "--dataset=tiny" "--nodes=8" "--remote=40")
set_tests_properties(ttsim_update_em3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ttsim_migratory_mp3d "/root/repo/build/tools/ttsim" "--system=migratory" "--app=mp3d" "--dataset=tiny" "--nodes=8" "--table2")
set_tests_properties(ttsim_migratory_mp3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
