/**
 * @file
 * The paper's headline demo (sections 4 and 6): EM3D run three ways —
 * hardware DirNNB, transparent Typhoon/Stache, and Typhoon with the
 * user-level delayed-update protocol — printing execution time,
 * message counts, and the checksum proving all three computed the
 * same physics.
 *
 *   $ ./examples/em3d_custom_protocol [remote_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/em3d.hh"
#include "apps/workloads.hh"
#include "config/builders.hh"

using namespace tt;

int
main(int argc, char** argv)
{
    const double remote =
        argc > 1 ? std::atof(argv[1]) / 100.0 : 0.30;
    Em3dApp::Params p = em3dParams(DataSet::Tiny, remote);
    p.nNodes = 8192;
    p.degree = 8;
    p.iterations = 4;

    MachineConfig cfg;
    cfg.core.nodes = 16;

    std::printf("EM3D: %d nodes, degree %d, %.0f%% remote edges, "
                "%d iterations, %d processors\n\n",
                p.nNodes, p.degree, 100 * remote, p.iterations,
                cfg.core.nodes);
    std::printf("%-18s %14s %12s %12s %16s\n", "system", "cycles",
                "messages", "rel. time", "checksum");

    double baseline = 0;
    double checksum = 0;

    auto report = [&](const char* name, TargetMachine& t,
                      Em3dApp& app) {
        const RunResult r = t.run(app);
        if (baseline == 0)
            baseline = static_cast<double>(r.execTime);
        if (checksum == 0)
            checksum = app.checksum();
        std::printf("%-18s %14llu %12llu %12.3f %16.6f\n", name,
                    static_cast<unsigned long long>(r.execTime),
                    static_cast<unsigned long long>(
                        t.m().stats().get("net.messages")),
                    static_cast<double>(r.execTime) / baseline,
                    app.checksum());
        if (app.checksum() != checksum) {
            std::printf("CHECKSUM MISMATCH\n");
            std::exit(1);
        }
    };

    {
        auto t = buildDirNNB(cfg);
        Em3dApp app(p);
        report("DirNNB", t, app);
    }
    {
        auto t = buildTyphoonStache(cfg);
        Em3dApp app(p);
        report("Typhoon/Stache", t, app);
    }
    {
        auto t = buildTyphoonEm3dUpdate(cfg);
        Em3dApp app(p, Em3dApp::Mode::Update, t.em3d);
        report("Typhoon/Update", t, app);
        std::printf("\nupdate protocol: %llu copies registered, "
                    "%llu updates pushed, 0 invalidations\n",
                    static_cast<unsigned long long>(t.m().stats().get(
                        "em3d.copies_registered")),
                    static_cast<unsigned long long>(
                        t.m().stats().get("em3d.updates_sent")));
    }
    return 0;
}
