/**
 * @file
 * Quickstart: build a 4-node Typhoon machine running Stache
 * transparent shared memory, write a small SPMD program against the
 * shared-memory API (coroutines awaiting loads/stores), and run it.
 *
 *   $ ./examples/quickstart
 *
 * The program allocates a shared vector, has every node fill its
 * partition, and reduces the sum on node 0 — all coherence handled by
 * user-level Stache handlers on the simulated NPs.
 */

#include <cstdio>

#include "config/builders.hh"
#include "core/shared.hh"

using namespace tt;

namespace
{

class QuickstartApp : public App
{
  public:
    static constexpr int kElems = 4096;

    std::string name() const override { return "quickstart"; }

    void
    setup(Machine& m) override
    {
        _machine = &m;
        _data = GArray<double>(m.memsys(), kElems);
        _result = GArray<double>(m.memsys(), 1);
    }

    Task<void>
    body(Cpu& cpu) override
    {
        Machine& m = *_machine;
        const int P = m.nodes();
        const int chunk = kElems / P;
        const int lo = cpu.id() * chunk;

        // Phase 1: every node writes its slice.
        for (int i = lo; i < lo + chunk; ++i) {
            co_await _data.put(cpu, i, 0.5 * i);
            cpu.advance(2);
        }
        co_await m.barrier().wait(cpu);

        // Phase 2: node 0 reduces — Stache fetches remote blocks on
        // demand and caches them in local memory.
        if (cpu.id() == 0) {
            double sum = 0;
            for (int i = 0; i < kElems; ++i)
                sum += co_await _data.get(cpu, i);
            co_await _result.put(cpu, 0, sum);
        }
        co_await m.barrier().wait(cpu);
    }

    void
    finish(Machine& m) override
    {
        _sum = _result.peek(m.memsys(), 0);
    }

    double sum() const { return _sum; }

  private:
    Machine* _machine = nullptr;
    GArray<double> _data, _result;
    double _sum = 0;
};

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.core.nodes = 4;

    TargetMachine target = buildTyphoonStache(cfg);
    QuickstartApp app;
    const RunResult r = target.run(app);

    const double expect =
        0.5 * (QuickstartApp::kElems - 1.0) * QuickstartApp::kElems /
        2.0;
    std::printf("machine: %s, %d nodes\n",
                target.m().memsys().name().c_str(), cfg.core.nodes);
    std::printf("sum = %.1f (expected %.1f)\n", app.sum(), expect);
    std::printf("execution time: %llu cycles over %llu events\n",
                static_cast<unsigned long long>(r.execTime),
                static_cast<unsigned long long>(r.events));
    auto& st = target.m().stats();
    std::printf("stache: %llu page faults, %llu block fetches, "
                "%llu NP instructions\n",
                static_cast<unsigned long long>(
                    st.get("stache.page_faults")),
                static_cast<unsigned long long>(st.get("stache.get_ro")),
                static_cast<unsigned long long>(
                    st.get("np.instructions")));
    return app.sum() == expect ? 0 : 1;
}
