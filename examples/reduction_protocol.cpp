/**
 * @file
 * A third user-level protocol sketch, small enough to read in one
 * sitting: message-combining reduction. Instead of spinning on a
 * shared counter (which ping-pongs its cache block through every
 * node), each node sends its partial sum as an active message to a
 * combining handler on the root's NP; the root's handler folds the
 * values as they arrive and releases all waiters with a broadcast
 * when the last one lands.
 *
 * The same job is also run over plain shared memory (a lock-guarded
 * accumulator) for comparison — the paper's point in miniature:
 * encoding the *operation* in a message beats shuttling the *datum*.
 *
 *   $ ./examples/reduction_protocol
 */

#include <cstdio>
#include <vector>

#include "config/builders.hh"
#include "core/shared.hh"
#include "core/sync.hh"

using namespace tt;

namespace
{

constexpr HandlerId kPartial = 0xB00;
constexpr HandlerId kResult = 0xB01;

struct Combiner
{
    double sum = 0;
    int arrived = 0;
    std::vector<double> result; // per-node landing slot (host-side)
};

Tick
runMessageReduction(int nodes, int rounds, double* out)
{
    MachineConfig cfg;
    cfg.core.nodes = nodes;
    auto t = buildTyphoonStache(cfg);
    Combiner comb;
    comb.result.assign(nodes, 0);

    // Root NP handler: fold partials; on the last one, broadcast.
    t.typhoon->tempest(0).registerMsgHandler(
        kPartial, [&, nodes](TempestCtx& ctx, const Message& m) {
            double v;
            static_assert(sizeof(v) == 8);
            std::memcpy(&v, m.data.data(), 8);
            ctx.charge(6); // fold + count
            comb.sum += v;
            if (++comb.arrived < nodes)
                return;
            for (NodeId n = 0; n < nodes; ++n) {
                ctx.send(n, kResult, {}, &comb.sum, 8,
                         VNet::Response);
            }
            comb.sum = 0;
            comb.arrived = 0;
        });
    for (NodeId n = 0; n < nodes; ++n) {
        t.typhoon->tempest(n).registerMsgHandler(
            kResult, [&comb](TempestCtx& ctx, const Message& m) {
                ctx.charge(2);
                std::memcpy(&comb.result[ctx.nodeId()],
                            m.data.data(), 8);
            });
    }

    struct RApp : App
    {
        TargetMachine& t;
        Combiner& comb;
        int rounds;
        double* out;
        RApp(TargetMachine& t_, Combiner& c, int r, double* o)
            : t(t_), comb(c), rounds(r), out(o)
        {
        }
        std::string name() const override { return "msg-reduce"; }
        Task<void>
        body(Cpu& cpu) override
        {
            for (int r = 0; r < rounds; ++r) {
                const double mine =
                    1.0 + cpu.id() + 1000.0 * r; // this round's value
                comb.result[cpu.id()] = 0;
                co_await t.m().barrier().wait(cpu);
                t.typhoon->cpuSend(
                    cpu, 0, kPartial, {},
                    Message::Data(
                        reinterpret_cast<const std::uint8_t*>(&mine),
                        reinterpret_cast<const std::uint8_t*>(&mine) +
                            8));
                while (comb.result[cpu.id()] == 0)
                    co_await cpu.compute(20); // poll the landing slot
                if (cpu.id() == 0)
                    *out = comb.result[0];
            }
        }
    } app(t, comb, rounds, out);
    return t.m().run(app).execTime;
}

Tick
runSharedReduction(int nodes, int rounds, double* out)
{
    MachineConfig cfg;
    cfg.core.nodes = nodes;
    auto t = buildTyphoonStache(cfg);
    GArray<double> acc(t.m().memsys(), 2); // [0]=sum, padding
    GArray<std::int64_t> count(t.m().memsys(), 8);
    SimLock lock(t.m().eq(), cfg.core.lockLatency);

    struct SApp : App
    {
        TargetMachine& t;
        GArray<double>& acc;
        SimLock& lock;
        int rounds;
        double* out;
        SApp(TargetMachine& t_, GArray<double>& a, SimLock& l, int r,
             double* o)
            : t(t_), acc(a), lock(l), rounds(r), out(o)
        {
        }
        std::string name() const override { return "shm-reduce"; }
        Task<void>
        body(Cpu& cpu) override
        {
            for (int r = 0; r < rounds; ++r) {
                if (cpu.id() == 0)
                    co_await acc.put(cpu, 0, 0.0);
                co_await t.m().barrier().wait(cpu);
                const double mine = 1.0 + cpu.id() + 1000.0 * r;
                co_await lock.acquire(cpu);
                const double cur = co_await acc.get(cpu, 0);
                co_await acc.put(cpu, 0, cur + mine);
                lock.release(cpu);
                co_await t.m().barrier().wait(cpu);
                const double total = co_await acc.get(cpu, 0);
                if (cpu.id() == 0)
                    *out = total;
            }
        }
    } app(t, acc, lock, rounds, out);
    return t.m().run(app).execTime;
}

} // namespace

int
main()
{
    const int nodes = 16, rounds = 8;
    double msgResult = 0, shmResult = 0;
    const Tick msgT = runMessageReduction(nodes, rounds, &msgResult);
    const Tick shmT = runSharedReduction(nodes, rounds, &shmResult);

    const double expect = [&] {
        double s = 0;
        for (int n = 0; n < nodes; ++n)
            s += 1.0 + n + 1000.0 * (rounds - 1);
        return s;
    }();

    std::printf("global reduction, %d nodes x %d rounds\n\n", nodes,
                rounds);
    std::printf("  %-26s %10llu cycles  (result %.1f)\n",
                "message-combining (NP)", (unsigned long long)msgT,
                msgResult);
    std::printf("  %-26s %10llu cycles  (result %.1f)\n",
                "shared memory + lock", (unsigned long long)shmT,
                shmResult);
    std::printf("\nspeedup: %.2fx\n", double(shmT) / double(msgT));

    const bool ok = msgResult == expect && shmResult == expect;
    std::printf("%s\n", ok ? "OK" : "RESULT MISMATCH");
    return ok ? 0 : 1;
}
