/**
 * @file
 * Tour of the four Tempest mechanism families (paper section 2) used
 * directly — no Stache, no protocol library — on a 4-node Typhoon:
 *
 *  1. low-overhead active messages: a token passed around a ring of
 *     NP handlers;
 *  2. bulk node-to-node transfer: scatter a buffer from node 0;
 *  3. user-level virtual memory management: map/tag pages by hand;
 *  4. fine-grain access control: a write-fault handler implementing
 *     a one-shot "copy-on-first-write" policy.
 *
 * This is the paper's central claim in miniature: user-level code
 * composes the primitives into whatever memory semantics it wants.
 */

#include <cstdio>
#include <vector>

#include "config/builders.hh"
#include "typhoon/typhoon_mem_system.hh"

using namespace tt;

namespace
{

constexpr HandlerId kToken = 0x10;
constexpr HandlerId kScatterDone = 0x11;

/** Minimal protocol: map every shared page everywhere, tag RW. */
class Replicated : public ShmProtocol
{
  public:
    Replicated(TyphoonMemSystem& ms, int nodes, std::uint32_t ps)
        : _ms(ms), _nodes(nodes), _ps(ps)
    {
        ms.setProtocol(this);
    }

    Addr
    shmalloc(std::size_t bytes, NodeId) override
    {
        const std::size_t npages = (bytes + _ps - 1) / _ps;
        const Addr base = _next;
        for (std::size_t i = 0; i < npages; ++i) {
            for (NodeId n = 0; n < _nodes; ++n) {
                TempestCtx& ctx = _ms.tempest(n).setupCtx();
                ctx.mapPage(base + i * _ps, ctx.allocPhysPage(), 0);
                ctx.setPageTags(base + i * _ps,
                                AccessTag::ReadWrite);
            }
        }
        _next = base + npages * _ps;
        return base;
    }

    NodeId homeOf(Addr) const override { return 0; }

    void
    peek(Addr va, void* buf, std::size_t len) override
    {
        _ms.physOf(0).read(_ms.pageTableOf(0).translate(va), buf, len);
    }

    void
    poke(Addr va, const void* buf, std::size_t len) override
    {
        for (NodeId n = 0; n < _nodes; ++n)
            _ms.physOf(n).write(_ms.pageTableOf(n).translate(va), buf,
                                len);
    }

    std::string protocolName() const override { return "replicated"; }

  private:
    TyphoonMemSystem& _ms;
    int _nodes;
    std::uint32_t _ps;
    Addr _next = 0x6000'0000;
};

class MechanismsApp : public App
{
  public:
    MechanismsApp(TyphoonMemSystem& ms, Replicated& proto, int nodes)
        : _ms(ms), _proto(proto), _nodes(nodes)
    {
    }

    std::string name() const override { return "mechanisms"; }

    void
    setup(Machine& m) override
    {
        _machine = &m;
        _ring = _proto.shmalloc(4096, 0);
        _scatter = _proto.shmalloc(4096, 0);

        // Mechanism 1: a token-ring of active-message handlers.
        for (NodeId n = 0; n < _nodes; ++n) {
            _ms.tempest(n).registerMsgHandler(
                kToken, [this, n](TempestCtx& ctx, const Message& m2) {
                    const Word hops = m2.args.at(0);
                    ctx.charge(4);
                    if (hops == 0) {
                        _tokenDone = true;
                        return;
                    }
                    Word args[1] = {hops - 1};
                    ctx.send((n + 1) % _nodes, kToken,
                             std::span<const Word>(args));
                });
            _ms.tempest(n).registerMsgHandler(
                kScatterDone,
                [this](TempestCtx& ctx, const Message&) {
                    ctx.charge(1);
                    ++_scatterDone;
                });
        }

        // Mechanism 4: copy-on-first-write via a write-fault handler.
        // Node 1's copy of the page starts ReadOnly; the first store
        // triggers a user handler that "versions" the page then
        // grants write access.
        _cow = _proto.shmalloc(4096, 0);
        _ms.tempest(1).setupCtx().setPageTags(_cow,
                                              AccessTag::ReadOnly);
        _ms.tempest(1).registerFaultHandler(
            0, MemOp::Write,
            [this](TempestCtx& ctx, const BlockFault& f) {
                ++_cowFaults;
                ctx.charge(20); // pretend to snapshot the block
                ctx.setRW(f.va);
                ctx.resume();
            });
    }

    Task<void>
    body(Cpu& cpu) override
    {
        Machine& m = *_machine;
        if (cpu.id() == 0) {
            // 1. Launch the token around the ring, 2 laps.
            _ms.cpuSend(cpu, 1 % _nodes, kToken,
                        {static_cast<Word>(2 * _nodes)});

            // 2. Bulk-scatter 1 KB to every other node.
            std::vector<std::uint8_t> img(1024);
            for (std::size_t i = 0; i < img.size(); ++i)
                img[i] = static_cast<std::uint8_t>(i);
            _ms.physOf(0).write(
                _ms.pageTableOf(0).translate(_scatter), img.data(),
                img.size());
            TempestCtx& ctx = _ms.tempest(0).setupCtx();
            for (NodeId n = 1; n < _nodes; ++n)
                ctx.bulkTransfer(_scatter, n, _scatter, 1024,
                                 kScatterDone);
        }
        if (cpu.id() == 1) {
            // 4. Trip the copy-on-write handler.
            co_await cpu.write<int>(_cow + 128, 7);
            co_await cpu.write<int>(_cow + 132, 8); // same block: no fault
        }
        // Let the machinery drain, then rendezvous.
        co_await cpu.compute(20000);
        co_await m.barrier().wait(cpu);
    }

    bool tokenDone() const { return _tokenDone; }
    int scatterDone() const { return _scatterDone; }
    int cowFaults() const { return _cowFaults; }

  private:
    TyphoonMemSystem& _ms;
    Replicated& _proto;
    int _nodes;
    Machine* _machine = nullptr;
    Addr _ring = 0, _scatter = 0, _cow = 0;
    bool _tokenDone = false;
    int _scatterDone = 0;
    int _cowFaults = 0;
};

} // namespace

int
main()
{
    const int nodes = 4;
    CoreParams cp;
    cp.nodes = nodes;
    Machine machine(cp);
    Network net(machine.eq(), nodes, NetworkParams{}, machine.stats());
    TyphoonMemSystem typhoon(machine, net, TyphoonParams{});
    Replicated proto(typhoon, nodes, cp.pageSize);
    machine.setMemSystem(&typhoon);

    MechanismsApp app(typhoon, proto, nodes);
    machine.run(app);

    std::printf("active messages : token completed 2 laps: %s\n",
                app.tokenDone() ? "yes" : "NO");
    std::printf("bulk transfer   : %d scatter completions "
                "(expected %d), %llu packets\n",
                app.scatterDone(), nodes - 1,
                static_cast<unsigned long long>(
                    machine.stats().get("np.bulk_packets")));
    std::printf("fine-grain tags : %d copy-on-write fault(s) "
                "(expected 1)\n",
                app.cowFaults());
    std::printf("VM management   : %zu pages mapped per node\n",
                typhoon.pageTableOf(0).mappedPages());

    const bool ok = app.tokenDone() && app.scatterDone() == nodes - 1 &&
                    app.cowFaults() == 1;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
