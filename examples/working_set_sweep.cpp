/**
 * @file
 * The Stache "level-three cache" effect (section 3): sweep a shared
 * working set past the CPU cache size and watch the two systems
 * diverge — DirNNB turns every capacity miss into a remote miss,
 * Stache satisfies them from local memory after the first touch.
 *
 *   $ ./examples/working_set_sweep
 */

#include <cstdio>

#include "config/builders.hh"

using namespace tt;

namespace
{

/** One reader repeatedly sweeps a remote-homed array. */
class SweepApp : public App
{
  public:
    SweepApp(std::size_t bytes, int sweeps)
        : _bytes(bytes), _sweeps(sweeps)
    {
    }

    std::string name() const override { return "sweep"; }

    void
    setup(Machine& m) override
    {
        _machine = &m;
        _base = m.memsys().shmalloc(_bytes, /*home=*/0);
    }

    Task<void>
    body(Cpu& cpu) override
    {
        if (cpu.id() == 1) {
            for (int s = 0; s < _sweeps; ++s)
                for (Addr a = 0; a < _bytes; a += 32)
                    co_await cpu.read<std::uint32_t>(_base + a);
            _readerCycles = cpu.localTime();
        }
        co_await _machine->barrier().wait(cpu);
    }

    Tick readerCycles() const { return _readerCycles; }

  private:
    Machine* _machine = nullptr;
    std::size_t _bytes;
    int _sweeps;
    Addr _base = 0;
    Tick _readerCycles = 0;
};

Tick
run(bool stache, std::size_t kb)
{
    MachineConfig cfg;
    cfg.core.nodes = 2;
    cfg.core.cacheSize = 64 * 1024;
    auto t = stache ? buildTyphoonStache(cfg) : buildDirNNB(cfg);
    SweepApp app(kb * 1024, 4);
    t.run(app);
    return app.readerCycles();
}

} // namespace

int
main()
{
    std::printf("Working-set sweep: 4 passes over a remote-homed "
                "array, 64 KB CPU cache\n\n");
    std::printf("%-12s %14s %16s %10s\n", "working set",
                "DirNNB cycles", "Stache cycles", "ratio");
    for (std::size_t kb : {16, 32, 64, 128, 256, 512}) {
        const Tick d = run(false, kb);
        const Tick s = run(true, kb);
        std::printf("%8zu KB  %14llu %16llu %10.3f%s\n", kb,
                    static_cast<unsigned long long>(d),
                    static_cast<unsigned long long>(s),
                    static_cast<double>(s) / static_cast<double>(d),
                    kb > 64 ? "   <- exceeds CPU cache" : "");
    }
    std::printf("\nPast the cache size, DirNNB re-fetches remotely "
                "every sweep while Stache hits its local pages.\n");
    return 0;
}
