/**
 * @file
 * Shared plumbing for the benchmark applications: a common base with
 * checksum/work accounting, block-partitioned index ranges, and a
 * chunked shared array whose per-owner chunks can be placed
 * explicitly (used identically by both targets so layouts match).
 */

#ifndef TT_APPS_APP_UTILS_HH
#define TT_APPS_APP_UTILS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "core/memsys.hh"
#include "sim/logging.hh"

namespace tt
{

/**
 * Benchmark application base: every app reports a numeric checksum
 * (identical across memory systems for the same workload — the
 * end-to-end coherence check) and a work-unit count for
 * per-unit-cost metrics (e.g. EM3D cycles/edge).
 */
class BenchApp : public App
{
  public:
    virtual double checksum() const = 0;
    virtual std::uint64_t workUnits() const = 0;
};

/** [begin, end) of block-partitioned index range for @p pid. */
struct IndexRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

inline IndexRange
blockRange(std::size_t count, int nproc, int pid)
{
    const std::size_t base = count / nproc;
    const std::size_t extra = count % nproc;
    const std::size_t lo =
        pid * base + std::min<std::size_t>(pid, extra);
    return IndexRange{lo, lo + base + (static_cast<std::size_t>(pid) <
                                               extra
                                           ? 1
                                           : 0)};
}

/** Owner of index @p i under blockRange partitioning. */
inline int
ownerOf(std::size_t i, std::size_t count, int nproc)
{
    const std::size_t base = count / nproc;
    const std::size_t extra = count % nproc;
    const std::size_t cut = extra * (base + 1);
    if (i < cut)
        return static_cast<int>(i / (base + 1));
    return static_cast<int>(extra + (i - cut) / base);
}

/**
 * A shared array of T split into one page-aligned chunk per owner.
 * Both memory systems allocate through the same interface, so the
 * layout (and therefore the reference stream) is identical; only the
 * page-home policy differs.
 */
template <typename T>
class ChunkedArray
{
  public:
    ChunkedArray() = default;

    /**
     * Allocate @p count elements partitioned across @p nproc owners.
     * @p alloc is invoked once per chunk as alloc(bytes, owner) and
     * returns the chunk base (so callers can route to shmalloc with
     * kNoNode homes, owner-pinned homes, or a custom allocator).
     */
    template <typename AllocFn>
    ChunkedArray(std::size_t count, int nproc, AllocFn&& alloc)
        : _count(count), _nproc(nproc)
    {
        _bases.resize(nproc);
        _starts.resize(nproc + 1);
        for (int p = 0; p < nproc; ++p) {
            const IndexRange r = blockRange(count, nproc, p);
            _starts[p] = r.begin;
            _bases[p] =
                r.size() ? alloc(r.size() * sizeof(T), p) : 0;
        }
        _starts[_nproc] = count;
    }

    std::size_t size() const { return _count; }

    Addr
    addrOf(std::size_t i) const
    {
        tt_assert(i < _count, "ChunkedArray index out of range: ", i);
        const int p = ownerOf(i, _count, _nproc);
        return _bases[p] + (i - _starts[p]) * sizeof(T);
    }

    Cpu::ReadAwaitable<T>
    get(Cpu& cpu, std::size_t i) const
    {
        return cpu.read<T>(addrOf(i));
    }

    Cpu::WriteAwaitable<T>
    put(Cpu& cpu, std::size_t i, T v) const
    {
        return cpu.write<T>(addrOf(i), v);
    }

    void
    poke(MemorySystem& ms, std::size_t i, const T& v) const
    {
        ms.poke(addrOf(i), &v, sizeof(T));
    }

    T
    peek(MemorySystem& ms, std::size_t i) const
    {
        T v;
        ms.peek(addrOf(i), &v, sizeof(T));
        return v;
    }

  private:
    std::size_t _count = 0;
    int _nproc = 1;
    std::vector<Addr> _bases;
    std::vector<std::size_t> _starts;
};

} // namespace tt

#endif // TT_APPS_APP_UTILS_HH
