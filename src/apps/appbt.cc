#include "apps/appbt.hh"

namespace tt
{

void
AppbtApp::setup(Machine& m)
{
    _machine = &m;
    MemorySystem& ms = m.memsys();
    const std::size_t cells =
        static_cast<std::size_t>(_p.n) * _p.n * _p.n;
    _u = ms.shmalloc(cells * 5 * 8);
    _rhs = ms.shmalloc(cells * 5 * 8);
    for (int z = 0; z < _p.n; ++z) {
        for (int y = 0; y < _p.n; ++y) {
            for (int x = 0; x < _p.n; ++x) {
                for (int k = 0; k < 5; ++k) {
                    const double v =
                        1.0 + 0.01 * ((x * 7 + y * 5 + z * 3 + k) % 37);
                    ms.poke(at(_u, x, y, z, k), &v, 8);
                }
            }
        }
    }
}

Task<void>
AppbtApp::body(Cpu& cpu)
{
    const int P = _machine->nodes();
    const int n = _p.n;
    // z-slab partitioning.
    const IndexRange zr = blockRange(n, P, cpu.id());
    const int z0 = static_cast<int>(zr.begin);
    const int z1 = static_cast<int>(zr.end);

    auto readU = [&](int x, int y, int z,
                     int k) -> Cpu::ReadAwaitable<double> {
        return cpu.read<double>(at(_u, x, y, z, k));
    };

    for (int it = 0; it < _p.iterations; ++it) {
        // --- RHS: 7-point stencil over 5-vectors -------------------
        for (int z = z0; z < z1; ++z) {
            for (int y = 0; y < n; ++y) {
                for (int x = 0; x < n; ++x) {
                    for (int k = 0; k < 5; ++k) {
                        double acc =
                            -6.0 * co_await readU(x, y, z, k);
                        if (x > 0)
                            acc += co_await readU(x - 1, y, z, k);
                        if (x < n - 1)
                            acc += co_await readU(x + 1, y, z, k);
                        if (y > 0)
                            acc += co_await readU(x, y - 1, z, k);
                        if (y < n - 1)
                            acc += co_await readU(x, y + 1, z, k);
                        if (z > 0)
                            acc += co_await readU(x, y, z - 1, k);
                        if (z < n - 1)
                            acc += co_await readU(x, y, z + 1, k);
                        co_await cpu.write<double>(
                            at(_rhs, x, y, z, k), 0.05 * acc);
                        cpu.advance(8);
                    }
                    cpu.advance(60); // 5x5 block assembly FLOPs
                }
            }
        }
        co_await _machine->barrier().wait(cpu);

        // --- x and y line solves: local to the slab ----------------
        for (int pass = 0; pass < 2; ++pass) {
            for (int z = z0; z < z1; ++z) {
                for (int a = 0; a < n; ++a) {
                    for (int b = 1; b < n; ++b) {
                        const int x = pass == 0 ? b : a;
                        const int y = pass == 0 ? a : b;
                        const int px = pass == 0 ? x - 1 : x;
                        const int py = pass == 0 ? y : y - 1;
                        for (int k = 0; k < 5; ++k) {
                            const double prev =
                                co_await cpu.read<double>(
                                    at(_rhs, px, py, z, k));
                            const double cur =
                                co_await cpu.read<double>(
                                    at(_rhs, x, y, z, k));
                            co_await cpu.write<double>(
                                at(_rhs, x, y, z, k),
                                cur - 0.4 * prev);
                            cpu.advance(4);
                        }
                        cpu.advance(80); // 5x5 block solve FLOPs
                    }
                }
            }
            co_await _machine->barrier().wait(cpu);
        }

        // --- z line solve: pipelined across slabs ------------------
        // Forward elimination, ascending z across processors.
        for (int stage = 0; stage < P; ++stage) {
            if (stage == cpu.id()) {
                for (int z = std::max(z0, 1); z < z1; ++z) {
                    for (int y = 0; y < n; ++y) {
                        for (int x = 0; x < n; ++x) {
                            for (int k = 0; k < 5; ++k) {
                                const double below =
                                    co_await cpu.read<double>(
                                        at(_rhs, x, y, z - 1, k));
                                const double cur =
                                    co_await cpu.read<double>(
                                        at(_rhs, x, y, z, k));
                                co_await cpu.write<double>(
                                    at(_rhs, x, y, z, k),
                                    cur - 0.4 * below);
                                cpu.advance(4);
                            }
                            cpu.advance(80);
                        }
                    }
                }
            }
            co_await _machine->barrier().wait(cpu);
        }
        // Back substitution, descending z, updates the solution.
        for (int stage = P - 1; stage >= 0; --stage) {
            if (stage == cpu.id()) {
                for (int z = z1 - 1; z >= z0; --z) {
                    for (int y = 0; y < n; ++y) {
                        for (int x = 0; x < n; ++x) {
                            for (int k = 0; k < 5; ++k) {
                                double above = 0;
                                if (z < n - 1)
                                    above = co_await cpu.read<double>(
                                        at(_u, x, y, z + 1, k));
                                const double r =
                                    co_await cpu.read<double>(
                                        at(_rhs, x, y, z, k));
                                const double u0 =
                                    co_await cpu.read<double>(
                                        at(_u, x, y, z, k));
                                co_await cpu.write<double>(
                                    at(_u, x, y, z, k),
                                    0.9 * u0 + r - 0.3 * above);
                                cpu.advance(6);
                            }
                            cpu.advance(80);
                        }
                    }
                }
            }
            co_await _machine->barrier().wait(cpu);
        }
    }
}

void
AppbtApp::finish(Machine& m)
{
    MemorySystem& ms = m.memsys();
    double sum = 0;
    for (int z = 0; z < _p.n; ++z) {
        for (int y = 0; y < _p.n; ++y) {
            for (int x = 0; x < _p.n; ++x) {
                for (int k = 0; k < 5; ++k) {
                    double v;
                    ms.peek(at(_u, x, y, z, k), &v, 8);
                    sum += v;
                }
            }
        }
    }
    _checksum = sum;
}

} // namespace tt
