/**
 * @file
 * Appbt: the NAS BT kernel — multiple independent systems of
 * non-diagonally-dominant block-tridiagonal equations with 5x5
 * blocks, solved by ADI sweeps over a 3-D grid. Our kernel keeps the
 * computation/communication structure: a 7-point-stencil RHS phase
 * over 5-vectors, local x/y line solves, and pipelined z-line solves
 * across the z-slab partitioning (forward elimination up, back
 * substitution down), barriers between phases.
 */

#ifndef TT_APPS_APPBT_HH
#define TT_APPS_APPBT_HH

#include "apps/app_utils.hh"

namespace tt
{

class AppbtApp : public BenchApp
{
  public:
    struct Params
    {
        int n = 12; ///< grid dimension (12^3 small, 24^3 large)
        int iterations = 2;
        std::uint64_t seed = 0xB7ULL;
    };

    explicit AppbtApp(Params p) : _p(p) {}

    std::string name() const override { return "appbt"; }
    void setup(Machine& m) override;
    Task<void> body(Cpu& cpu) override;
    void finish(Machine& m) override;
    double checksum() const override { return _checksum; }

    /** Result extraction: component k of the solution at (x,y,z). */
    double
    solutionAt(MemorySystem& ms, int x, int y, int z, int k) const
    {
        double v;
        ms.peek(at(_u, x, y, z, k), &v, 8);
        return v;
    }

    /** Cell updates performed. */
    std::uint64_t
    workUnits() const override
    {
        return static_cast<std::uint64_t>(_p.n) * _p.n * _p.n *
               _p.iterations;
    }

  private:
    /** Address of component k of cell (x,y,z) in array base. */
    Addr
    at(Addr base, int x, int y, int z, int k) const
    {
        const Addr idx =
            ((static_cast<Addr>(z) * _p.n + y) * _p.n + x) * 5 + k;
        return base + idx * 8;
    }

    Params _p;
    Addr _u = 0;   ///< solution 5-vectors
    Addr _rhs = 0; ///< right-hand-side 5-vectors
    Machine* _machine = nullptr;
    double _checksum = 0;
};

} // namespace tt

#endif // TT_APPS_APPBT_HH
