#include "apps/barnes.hh"

#include <cmath>

#include "sim/random.hh"

namespace tt
{

void
BarnesApp::setup(Machine& m)
{
    _machine = &m;
    MemorySystem& ms = m.memsys();
    const int P = m.nodes();
    const int n = _p.nbodies;

    auto alloc = [&](std::size_t bytes, int) -> Addr {
        return ms.shmalloc(bytes, kNoNode);
    };
    for (auto* arr : {&_px, &_py, &_pz, &_vx, &_vy, &_vz, &_mass,
                      &_ax, &_ay, &_az})
        *arr = ChunkedArray<double>(n, P, alloc);

    _maxCells = static_cast<std::size_t>(2 * n) + 64;
    _cellData = ms.shmalloc(_maxCells * 5 * 8);
    _cellChild = ms.shmalloc(_maxCells * 8 * 4);

    // Plummer-ish deterministic initial conditions.
    Rng rng(_p.seed);
    for (int i = 0; i < n; ++i) {
        const double r = 0.1 + 2.0 * rng.uniform();
        const double phi = 6.2831853 * rng.uniform();
        const double cz = 2.0 * rng.uniform() - 1.0;
        const double sz = std::sqrt(1.0 - cz * cz);
        _px.poke(ms, i, r * sz * std::cos(phi));
        _py.poke(ms, i, r * sz * std::sin(phi));
        _pz.poke(ms, i, r * cz);
        _vx.poke(ms, i, 0.1 * (rng.uniform() - 0.5));
        _vy.poke(ms, i, 0.1 * (rng.uniform() - 0.5));
        _vz.poke(ms, i, 0.1 * (rng.uniform() - 0.5));
        _mass.poke(ms, i, 1.0 / n);
    }
}

/**
 * Build the octree from current body positions (host-side structure;
 * the resulting arrays are written into shared memory with real,
 * charged stores by processor 0 inside body()).
 */
void
BarnesApp::buildTreeHost(MemorySystem& ms)
{
    const int n = _p.nbodies;
    std::vector<double> px(n), py(n), pz(n), mass(n);
    for (int i = 0; i < n; ++i) {
        px[i] = _px.peek(ms, i);
        py[i] = _py.peek(ms, i);
        pz[i] = _pz.peek(ms, i);
        mass[i] = _mass.peek(ms, i);
    }

    double lo = px[0], hi = px[0];
    for (int i = 0; i < n; ++i) {
        for (double v : {px[i], py[i], pz[i]}) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    const double root_size = (hi - lo) * 1.0001 + 1e-9;

    _hostTree.clear();
    _hostTree.push_back(HostCell{
        (lo + hi) / 2, (lo + hi) / 2, (lo + hi) / 2, 0, root_size,
        {-1, -1, -1, -1, -1, -1, -1, -1}});
    // Geometric centers during insertion; converted to mass centroids
    // afterwards.
    std::vector<std::array<double, 3>> center{{{(lo + hi) / 2,
                                                (lo + hi) / 2,
                                                (lo + hi) / 2}}};

    auto octant = [&](int cell, int b) {
        return (px[b] > center[cell][0] ? 1 : 0) |
               (py[b] > center[cell][1] ? 2 : 0) |
               (pz[b] > center[cell][2] ? 4 : 0);
    };

    for (int b = 0; b < n; ++b) {
        int cell = 0;
        for (;;) {
            const int oct = octant(cell, b);
            const std::int32_t ch = _hostTree[cell].child[oct];
            if (ch == -1) {
                _hostTree[cell].child[oct] = encodeBody(b);
                break;
            }
            if (ch < -1) {
                // Occupied by a body: split into a subcell.
                const int other = decodeBody(ch);
                const double s = _hostTree[cell].size / 2;
                HostCell sub{};
                sub.size = s;
                sub.mass = 0;
                std::array<double, 3> c = center[cell];
                c[0] += (oct & 1) ? s / 2 : -s / 2;
                c[1] += (oct & 2) ? s / 2 : -s / 2;
                c[2] += (oct & 4) ? s / 2 : -s / 2;
                for (auto& x : sub.child)
                    x = -1;
                const int idx = static_cast<int>(_hostTree.size());
                tt_assert(static_cast<std::size_t>(idx) < _maxCells,
                          "octree overflow");
                _hostTree.push_back(sub);
                center.push_back(c);
                _hostTree[cell].child[oct] =
                    static_cast<std::int32_t>(idx);
                // Degenerate coincident points: nudge via depth cap.
                if (s < 1e-12) {
                    _hostTree[idx].child[0] = encodeBody(other);
                    _hostTree[idx].child[1] = encodeBody(b);
                    break;
                }
                const int o2 = octant(idx, other);
                _hostTree[idx].child[o2] = encodeBody(other);
                cell = idx;
                continue; // retry inserting b into the new subcell
            }
            cell = ch;
        }
    }

    // Bottom-up center-of-mass accumulation (post-order via indices:
    // children always have larger indices than parents).
    for (int c = static_cast<int>(_hostTree.size()) - 1; c >= 0; --c) {
        double m = 0, cx = 0, cy = 0, cz = 0;
        for (std::int32_t ch : _hostTree[c].child) {
            if (ch == -1)
                continue;
            double wm, wx, wy, wz;
            if (ch < -1) {
                const int b = decodeBody(ch);
                wm = mass[b];
                wx = px[b];
                wy = py[b];
                wz = pz[b];
            } else {
                wm = _hostTree[ch].mass;
                wx = _hostTree[ch].cx;
                wy = _hostTree[ch].cy;
                wz = _hostTree[ch].cz;
            }
            m += wm;
            cx += wm * wx;
            cy += wm * wy;
            cz += wm * wz;
        }
        _hostTree[c].mass = m;
        if (m > 0) {
            _hostTree[c].cx = cx / m;
            _hostTree[c].cy = cy / m;
            _hostTree[c].cz = cz / m;
        }
    }
    _nCells = static_cast<int>(_hostTree.size());
}

Task<void>
BarnesApp::body(Cpu& cpu)
{
    Machine& m = *_machine;
    MemorySystem& ms = m.memsys();
    const int P = m.nodes();
    const IndexRange mine = blockRange(_p.nbodies, P, cpu.id());

    for (int it = 0; it < _p.iterations; ++it) {
        // --- tree phase: proc 0 publishes the octree ----------------
        if (cpu.id() == 0) {
            buildTreeHost(ms);
            for (int c = 0; c < _nCells; ++c) {
                const HostCell& hc = _hostTree[c];
                const Addr d = _cellData + static_cast<Addr>(c) * 40;
                co_await cpu.write<double>(d + 0, hc.cx);
                co_await cpu.write<double>(d + 8, hc.cy);
                co_await cpu.write<double>(d + 16, hc.cz);
                co_await cpu.write<double>(d + 24, hc.mass);
                co_await cpu.write<double>(d + 32, hc.size);
                const Addr k = _cellChild + static_cast<Addr>(c) * 32;
                for (int o = 0; o < 8; ++o)
                    co_await cpu.write<std::int32_t>(o * 4 + k,
                                                     hc.child[o]);
                cpu.advance(12);
            }
        }
        co_await m.barrier().wait(cpu);

        // --- force phase: concurrent read-shared tree walks ---------
        for (std::size_t b = mine.begin; b < mine.end; ++b) {
            const double bx = co_await _px.get(cpu, b);
            const double by = co_await _py.get(cpu, b);
            const double bz = co_await _pz.get(cpu, b);
            double fx = 0, fy = 0, fz = 0;

            std::vector<std::int32_t> stack{0};
            while (!stack.empty()) {
                const std::int32_t nodeId = stack.back();
                stack.pop_back();

                double cx, cy, cz, cmass;
                bool open = false;
                if (nodeId < -1) {
                    const int ob = decodeBody(nodeId);
                    if (static_cast<std::size_t>(ob) == b)
                        continue;
                    cx = co_await _px.get(cpu, ob);
                    cy = co_await _py.get(cpu, ob);
                    cz = co_await _pz.get(cpu, ob);
                    cmass = co_await _mass.get(cpu, ob);
                } else {
                    const Addr d =
                        _cellData + static_cast<Addr>(nodeId) * 40;
                    cx = co_await cpu.read<double>(d + 0);
                    cy = co_await cpu.read<double>(d + 8);
                    cz = co_await cpu.read<double>(d + 16);
                    cmass = co_await cpu.read<double>(d + 24);
                    const double size =
                        co_await cpu.read<double>(d + 32);
                    const double dx = cx - bx, dy = cy - by,
                                 dz = cz - bz;
                    const double dist2 =
                        dx * dx + dy * dy + dz * dz + 1e-9;
                    open = size * size >
                           _p.theta * _p.theta * dist2;
                    cpu.advance(12);
                }
                if (open) {
                    const Addr k = _cellChild +
                                   static_cast<Addr>(nodeId) * 32;
                    for (int o = 0; o < 8; ++o) {
                        const std::int32_t ch =
                            co_await cpu.read<std::int32_t>(k + o * 4);
                        if (ch != -1)
                            stack.push_back(ch);
                    }
                    cpu.advance(8);
                    continue;
                }
                // Accumulate the interaction.
                const double dx = cx - bx, dy = cy - by, dz = cz - bz;
                const double dist2 = dx * dx + dy * dy + dz * dz + 1e-4;
                const double inv = 1.0 / std::sqrt(dist2);
                const double f = cmass * inv * inv * inv;
                fx += f * dx;
                fy += f * dy;
                fz += f * dz;
                cpu.advance(18); // ~the paper's per-interaction FLOPs
            }
            co_await _ax.put(cpu, b, fx);
            co_await _ay.put(cpu, b, fy);
            co_await _az.put(cpu, b, fz);
        }
        co_await m.barrier().wait(cpu);

        // --- update phase: leapfrog on own bodies --------------------
        for (std::size_t b = mine.begin; b < mine.end; ++b) {
            const double ax = co_await _ax.get(cpu, b);
            const double ay = co_await _ay.get(cpu, b);
            const double az = co_await _az.get(cpu, b);
            double vx = co_await _vx.get(cpu, b);
            double vy = co_await _vy.get(cpu, b);
            double vz = co_await _vz.get(cpu, b);
            vx += ax * _p.dt;
            vy += ay * _p.dt;
            vz += az * _p.dt;
            co_await _vx.put(cpu, b, vx);
            co_await _vy.put(cpu, b, vy);
            co_await _vz.put(cpu, b, vz);
            const double nx = co_await _px.get(cpu, b) + vx * _p.dt;
            const double ny = co_await _py.get(cpu, b) + vy * _p.dt;
            const double nz = co_await _pz.get(cpu, b) + vz * _p.dt;
            co_await _px.put(cpu, b, nx);
            co_await _py.put(cpu, b, ny);
            co_await _pz.put(cpu, b, nz);
            cpu.advance(20);
        }
        co_await m.barrier().wait(cpu);
    }
}

void
BarnesApp::finish(Machine& m)
{
    MemorySystem& ms = m.memsys();
    double sum = 0;
    for (int i = 0; i < _p.nbodies; ++i) {
        sum += _px.peek(ms, i) + _py.peek(ms, i) + _pz.peek(ms, i) +
               0.1 * (_vx.peek(ms, i) + _vy.peek(ms, i) +
                      _vz.peek(ms, i));
    }
    _checksum = sum;
}

} // namespace tt
