/**
 * @file
 * Barnes: gravitational N-body simulation with the Barnes-Hut
 * O(N log N) algorithm (SPLASH). Bodies live in shared arrays
 * partitioned across processors; each iteration an octree of mass
 * centroids is written into shared arrays by processor 0 (the
 * structure itself is computed host-side — a documented substitution
 * for SPLASH's parallel tree build, which is a small fraction of
 * runtime), then all processors compute forces on their bodies by
 * concurrently traversing the shared tree (the dominant, read-shared
 * phase) and integrate their own bodies.
 */

#ifndef TT_APPS_BARNES_HH
#define TT_APPS_BARNES_HH

#include <vector>

#include "apps/app_utils.hh"

namespace tt
{

class BarnesApp : public BenchApp
{
  public:
    struct Params
    {
        int nbodies = 2048;
        int iterations = 2;
        double theta = 0.8; ///< opening criterion
        double dt = 0.02;
        std::uint64_t seed = 0xBA12ULL;
    };

    explicit BarnesApp(Params p) : _p(p) {}

    std::string name() const override { return "barnes"; }
    void setup(Machine& m) override;
    Task<void> body(Cpu& cpu) override;
    void finish(Machine& m) override;
    double checksum() const override { return _checksum; }

    /** Result extraction: body @p i position and velocity. */
    struct BodyState
    {
        double px, py, pz, vx, vy, vz;
    };

    BodyState
    bodyState(MemorySystem& ms, int i) const
    {
        return BodyState{_px.peek(ms, i), _py.peek(ms, i),
                         _pz.peek(ms, i), _vx.peek(ms, i),
                         _vy.peek(ms, i), _vz.peek(ms, i)};
    }

    /** Body-force computations performed. */
    std::uint64_t
    workUnits() const override
    {
        return static_cast<std::uint64_t>(_p.nbodies) * _p.iterations;
    }

  private:
    struct HostCell
    {
        double cx, cy, cz; ///< center of mass
        double mass;
        double size;
        std::int32_t child[8]; ///< cell index, ~(body index), or -1
    };

    /**
     * Child-slot encoding: -1 = empty; >= 0 = cell index; <= -2 =
     * body, encoded as ~(body+1) so body 0 does not collide with the
     * empty sentinel.
     */
    static std::int32_t encodeBody(int b) { return ~(b + 1); }
    static int decodeBody(std::int32_t c) { return ~c - 1; }

    void buildTreeHost(MemorySystem& ms);

    Params _p;
    Machine* _machine = nullptr;

    // Shared body state (block-partitioned, one array per component).
    ChunkedArray<double> _px, _py, _pz, _vx, _vy, _vz, _mass;
    ChunkedArray<double> _ax, _ay, _az;

    // Shared tree arrays (written by proc 0 each iteration).
    std::size_t _maxCells = 0;
    Addr _cellData = 0;  ///< 5 doubles per cell: com xyz, mass, size
    Addr _cellChild = 0; ///< 8 x int32 per cell
    int _nCells = 0;     ///< host-side count for the current tree

    std::vector<HostCell> _hostTree;
    double _checksum = 0;
};

} // namespace tt

#endif // TT_APPS_BARNES_HH
