#include "apps/em3d.hh"

#include "sim/random.hh"

namespace tt
{

void
Em3dApp::setup(Machine& m)
{
    _machine = &m;
    MemorySystem& ms = m.memsys();
    const int P = m.nodes();
    _nE = _p.nNodes / 2;
    _nH = _p.nNodes - _nE;

    auto alloc = [&](std::size_t bytes, int owner) -> Addr {
        if (_mode == Mode::Update) {
            // Graph values live on custom home pages at their owner.
            return _proto->allocCustom(
                bytes, owner,
                /*kind set per array by the caller below*/
                _allocKind);
        }
        // Transparent: default round-robin page placement, exactly as
        // the paper's unmodified shared-memory programs.
        (void)owner;
        return ms.shmalloc(bytes, kNoNode);
    };

    _allocKind = Em3dUpdateProtocol::kE;
    _eVal = ChunkedArray<double>(_nE, P, alloc);
    _allocKind = Em3dUpdateProtocol::kH;
    _hVal = ChunkedArray<double>(_nH, P, alloc);

    // Weights: shared, read-only after setup. Under the update
    // protocol they still go through plain Stache (they are never
    // written, so transparent caching is already optimal).
    auto allocW = [&](std::size_t bytes, int) -> Addr {
        return ms.shmalloc(bytes, kNoNode);
    };
    _eW = ChunkedArray<double>(
        static_cast<std::size_t>(_nE) * _p.degree, P, allocW);
    _hW = ChunkedArray<double>(
        static_cast<std::size_t>(_nH) * _p.degree, P, allocW);

    // Build the bipartite graph: each E node has `degree` H-node
    // neighbors (and vice versa); a neighbor is remote with
    // probability remoteFrac, drawn from a uniformly random other
    // processor's range — the Figure 4 knob.
    Rng rng(_p.seed);
    auto build = [&](int n_src, int n_dst,
                     std::vector<std::uint32_t>& adj,
                     const ChunkedArray<double>& w) {
        adj.resize(static_cast<std::size_t>(n_src) * _p.degree);
        for (int i = 0; i < n_src; ++i) {
            const int owner = ownerOf(i, n_src, P);
            for (int d = 0; d < _p.degree; ++d) {
                int dst_owner = owner;
                if (P > 1 && rng.uniform() < _p.remoteFrac) {
                    dst_owner = static_cast<int>(rng.below(P - 1));
                    if (dst_owner >= owner)
                        ++dst_owner;
                }
                const IndexRange r = blockRange(n_dst, P, dst_owner);
                tt_assert(r.size() > 0, "empty neighbor range");
                adj[i * _p.degree + d] = static_cast<std::uint32_t>(
                    r.begin + rng.below(r.size()));
                w.poke(ms, i * _p.degree + d,
                       0.05 + 0.9 * rng.uniform() / _p.degree);
            }
        }
    };
    build(_nE, _nH, _eAdj, _eW);
    build(_nH, _nE, _hAdj, _hW);

    for (int i = 0; i < _nE; ++i)
        _eVal.poke(ms, i, 1.0 + 0.001 * (i % 997));
    for (int i = 0; i < _nH; ++i)
        _hVal.poke(ms, i, 2.0 - 0.001 * (i % 991));
}

Task<void>
Em3dApp::halfStep(Cpu& cpu, bool e_phase)
{
    const int P = _machine->nodes();
    const int nSrc = e_phase ? _nE : _nH;
    const ChunkedArray<double>& src = e_phase ? _eVal : _hVal;
    const ChunkedArray<double>& nbr = e_phase ? _hVal : _eVal;
    const std::vector<std::uint32_t>& adj = e_phase ? _eAdj : _hAdj;
    const ChunkedArray<double>& w = e_phase ? _eW : _hW;

    const IndexRange r = blockRange(nSrc, P, cpu.id());
    for (std::size_t i = r.begin; i < r.end; ++i) {
        double sum = 0;
        for (int d = 0; d < _p.degree; ++d) {
            const std::size_t e = i * _p.degree + d;
            const double nv = co_await nbr.get(cpu, adj[e]);
            const double we = co_await w.get(cpu, e);
            sum += we * nv;
            cpu.advance(3); // index arithmetic, multiply-add
        }
        const double v = co_await src.get(cpu, i);
        co_await src.put(cpu, i, v - sum);
        cpu.advance(3); // subtract, store bookkeeping, loop
    }

    if (_mode == Mode::Update) {
        co_await _proto->endStep(
            cpu, e_phase ? Em3dUpdateProtocol::kE
                         : Em3dUpdateProtocol::kH);
    }
    co_await _machine->barrier().wait(cpu);
}

Task<void>
Em3dApp::body(Cpu& cpu)
{
    for (int it = _startIt; it < _p.iterations; ++it) {
        if (!(_skipE && it == _startIt))
            co_await halfStep(cpu, /*e_phase=*/true);
        co_await halfStep(cpu, /*e_phase=*/false);
    }
}

void
Em3dApp::finish(Machine& m)
{
    MemorySystem& ms = m.memsys();
    double sum = 0;
    for (int i = 0; i < _nE; ++i)
        sum += _eVal.peek(ms, i);
    for (int i = 0; i < _nH; ++i)
        sum += _hVal.peek(ms, i);
    _checksum = sum;
}

} // namespace tt
