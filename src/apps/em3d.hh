/**
 * @file
 * EM3D: electromagnetic wave propagation on a bipartite graph (paper
 * section 4, Program 1). E-node values are recomputed from neighbor
 * H-node values, then vice versa, owners-compute, one barrier per
 * half-step. Runs in three modes:
 *
 *  - Transparent: plain shared-memory program (DirNNB or Stache);
 *  - Update: the custom delayed-update protocol (Typhoon only) —
 *    endStep() replaces invalidation traffic with pushed values.
 *
 * The graph (adjacency + weights) is private per-process data, as in
 * the Split-C original where each processor holds its own node and
 * edge lists; only the value arrays are shared.
 */

#ifndef TT_APPS_EM3D_HH
#define TT_APPS_EM3D_HH

#include <memory>
#include <vector>

#include "apps/app_utils.hh"
#include "custom/em3d_protocol.hh"

namespace tt
{

class Em3dApp : public BenchApp
{
  public:
    struct Params
    {
        int nNodes = 64000;      ///< total graph nodes (E + H)
        int degree = 10;         ///< edges per node
        double remoteFrac = 0.2; ///< fraction of edges to remote nodes
        int iterations = 4;
        std::uint64_t seed = 0xE3DULL;
    };

    enum class Mode { Transparent, Update };

    explicit Em3dApp(Params p, Mode mode = Mode::Transparent,
                     Em3dUpdateProtocol* proto = nullptr)
        : _p(p), _mode(mode), _proto(proto)
    {
        tt_assert(mode == Mode::Transparent || proto,
                  "update mode needs the custom protocol");
    }

    std::string
    name() const override
    {
        return _mode == Mode::Update ? "em3d-update" : "em3d";
    }

    void setup(Machine& m) override;
    Task<void> body(Cpu& cpu) override;
    void finish(Machine& m) override;

    // Epoch restart (checkpoint/restore + crash recovery): the body
    // is a loop of two barrier episodes per iteration, so any episode
    // count maps onto (iteration, half-step) exactly.
    bool supportsEpochRestart() const override { return true; }
    void
    setStartEpoch(std::uint64_t episodes) override
    {
        _startIt = static_cast<int>(episodes / 2);
        _skipE = (episodes % 2) != 0;
    }

    double checksum() const override { return _checksum; }

    /** Result extraction: value of E node / H node @p i. */
    double
    eValueAt(MemorySystem& ms, int i) const
    {
        return _eVal.peek(ms, i);
    }

    double
    hValueAt(MemorySystem& ms, int i) const
    {
        return _hVal.peek(ms, i);
    }

    int numE() const { return _nE; }
    int numH() const { return _nH; }

    /** Edge computations performed (for cycles/edge, Figure 4). */
    std::uint64_t
    workUnits() const override
    {
        return static_cast<std::uint64_t>(_p.nNodes) * _p.degree *
               _p.iterations;
    }

  private:
    Task<void> halfStep(Cpu& cpu, bool e_phase);

    Params _p;
    Mode _mode;
    Em3dUpdateProtocol* _proto;
    Em3dUpdateProtocol::Kind _allocKind = Em3dUpdateProtocol::kE;

    int _nE = 0, _nH = 0;
    ChunkedArray<double> _eVal, _hVal;
    // Edge weights live in the shared heap, as in Program 1's e_node
    // structs (read-only after setup: pure capacity traffic).
    ChunkedArray<double> _eW, _hW; // node x degree
    // Adjacency is private per-process structure (the per-processor
    // node/edge lists of the Split-C original).
    std::vector<std::uint32_t> _eAdj, _hAdj; // node x degree
    Machine* _machine = nullptr;
    double _checksum = 0;

    // Restart position (setStartEpoch): first iteration to run, and
    // whether its E half-step already completed before the snapshot.
    int _startIt = 0;
    bool _skipE = false;
};

} // namespace tt

#endif // TT_APPS_EM3D_HH
