#include "apps/mp3d.hh"

#include "sim/random.hh"

namespace tt
{

void
Mp3dApp::setup(Machine& m)
{
    _machine = &m;
    MemorySystem& ms = m.memsys();
    const int P = m.nodes();
    const int cells = _p.cellDim * _p.cellDim * _p.cellDim;

    auto alloc = [&](std::size_t bytes, int) -> Addr {
        return ms.shmalloc(bytes, kNoNode);
    };
    for (auto* arr : {&_mx, &_my, &_mz, &_mvx, &_mvy, &_mvz})
        *arr = ChunkedArray<I64>(_p.nmol, P, alloc);
    for (int par = 0; par < 2; ++par) {
        _cCount[par] = ChunkedArray<I64>(cells, P, alloc);
        _cVx[par] = ChunkedArray<I64>(cells, P, alloc);
        _cVy[par] = ChunkedArray<I64>(cells, P, alloc);
        _cVz[par] = ChunkedArray<I64>(cells, P, alloc);
    }

    _cellLocks.clear();
    for (int c = 0; c < cells; ++c) {
        _cellLocks.push_back(std::make_unique<SimLock>(
            m.eq(), m.params().lockLatency));
    }

    Rng rng(_p.seed);
    for (int i = 0; i < _p.nmol; ++i) {
        _mx.poke(ms, i, static_cast<I64>(rng.below(kSpace)));
        _my.poke(ms, i, static_cast<I64>(rng.below(kSpace)));
        _mz.poke(ms, i, static_cast<I64>(rng.below(kSpace)));
        _mvx.poke(ms, i, rng.range(-4096, 4096));
        _mvy.poke(ms, i, rng.range(-4096, 4096));
        _mvz.poke(ms, i, rng.range(-4096, 4096) + 8192); // streamwise
    }
}

Task<void>
Mp3dApp::body(Cpu& cpu)
{
    Machine& m = *_machine;
    const int P = m.nodes();
    const int cells = _p.cellDim * _p.cellDim * _p.cellDim;
    const IndexRange mine = blockRange(_p.nmol, P, cpu.id());
    const IndexRange myCells = blockRange(cells, P, cpu.id());

    for (int it = 0; it < _p.iterations; ++it) {
        const int cur = it & 1;
        const int prev = cur ^ 1;

        // Clear this step's accumulators (cell-partitioned).
        for (std::size_t c = myCells.begin; c < myCells.end; ++c) {
            co_await _cCount[cur].put(cpu, c, 0);
            co_await _cVx[cur].put(cpu, c, 0);
            co_await _cVy[cur].put(cpu, c, 0);
            co_await _cVz[cur].put(cpu, c, 0);
            cpu.advance(4);
        }
        co_await m.barrier().wait(cpu);

        // Move phase: each molecule collides against the previous
        // step's field, moves, and accumulates into its new cell.
        for (std::size_t i = mine.begin; i < mine.end; ++i) {
            I64 x = co_await _mx.get(cpu, i);
            I64 y = co_await _my.get(cpu, i);
            I64 z = co_await _mz.get(cpu, i);
            I64 vx = co_await _mvx.get(cpu, i);
            I64 vy = co_await _mvy.get(cpu, i);
            I64 vz = co_await _mvz.get(cpu, i);

            // Collision: mix with the previous-step mean cell
            // velocity (deterministic, integer).
            const int c0 = cellOf(x, y, z);
            const I64 cnt = co_await _cCount[prev].get(cpu, c0);
            if (cnt > 1) {
                const I64 ux = co_await _cVx[prev].get(cpu, c0) / cnt;
                const I64 uy = co_await _cVy[prev].get(cpu, c0) / cnt;
                const I64 uz = co_await _cVz[prev].get(cpu, c0) / cnt;
                vx = (3 * vx + ux) / 4;
                vy = (3 * vy + uy) / 4;
                vz = (3 * vz + uz) / 4;
                cpu.advance(24);
            }

            // Move with reflecting walls (specular), periodic in z.
            auto reflect = [&](I64& pos, I64& vel) {
                pos += vel;
                if (pos < 0) {
                    pos = -pos;
                    vel = -vel;
                } else if (pos >= kSpace) {
                    pos = 2 * (kSpace - 1) - pos;
                    vel = -vel;
                }
            };
            reflect(x, vx);
            reflect(y, vy);
            z = (z + vz) & (kSpace - 1);
            cpu.advance(16);

            co_await _mx.put(cpu, i, x);
            co_await _my.put(cpu, i, y);
            co_await _mz.put(cpu, i, z);
            co_await _mvx.put(cpu, i, vx);
            co_await _mvy.put(cpu, i, vy);
            co_await _mvz.put(cpu, i, vz);

            // Accumulate into the (shared, contended) cell state.
            const int c1 = cellOf(x, y, z);
            SimLock& lk = *_cellLocks[c1];
            co_await lk.acquire(cpu);
            const I64 n = co_await _cCount[cur].get(cpu, c1);
            co_await _cCount[cur].put(cpu, c1, n + 1);
            const I64 sx = co_await _cVx[cur].get(cpu, c1);
            co_await _cVx[cur].put(cpu, c1, sx + vx);
            const I64 sy = co_await _cVy[cur].get(cpu, c1);
            co_await _cVy[cur].put(cpu, c1, sy + vy);
            const I64 sz = co_await _cVz[cur].get(cpu, c1);
            co_await _cVz[cur].put(cpu, c1, sz + vz);
            lk.release(cpu);
            cpu.advance(8);
        }
        co_await m.barrier().wait(cpu);
    }
}

void
Mp3dApp::finish(Machine& m)
{
    MemorySystem& ms = m.memsys();
    I64 acc = 0;
    for (int i = 0; i < _p.nmol; ++i) {
        acc += _mx.peek(ms, i) + _my.peek(ms, i) + _mz.peek(ms, i);
        acc += _mvx.peek(ms, i) + _mvy.peek(ms, i) + _mvz.peek(ms, i);
    }
    _checksum = static_cast<double>(acc);
}

} // namespace tt
