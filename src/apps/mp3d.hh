/**
 * @file
 * MP3D: rarefied hypersonic flow simulation (SPLASH) — the
 * notoriously communication-bound benchmark of this era. Molecules
 * (owner-partitioned) fly through a shared 3-D space-cell lattice;
 * every move updates the molecule's current cell's occupancy and
 * momentum accumulators, producing heavy, irregular write sharing of
 * the cell array. Collisions exchange momentum with the cell's
 * previous-step field. State is fixed-point (int64) so accumulation
 * commutes exactly and results are bit-identical across targets.
 */

#ifndef TT_APPS_MP3D_HH
#define TT_APPS_MP3D_HH

#include <memory>
#include <vector>

#include "apps/app_utils.hh"
#include "core/sync.hh"

namespace tt
{

class Mp3dApp : public BenchApp
{
  public:
    using I64 = std::int64_t;

    struct Params
    {
        int nmol = 10000;
        int cellDim = 8;    ///< space lattice is cellDim^3 cells
        int iterations = 3;
        std::uint64_t seed = 0x3D3DULL;
    };

    explicit Mp3dApp(Params p) : _p(p) {}

    std::string name() const override { return "mp3d"; }
    void setup(Machine& m) override;
    Task<void> body(Cpu& cpu) override;
    void finish(Machine& m) override;
    double checksum() const override { return _checksum; }

    /** Result extraction: position/velocity of molecule @p i. */
    struct Molecule
    {
        I64 x, y, z, vx, vy, vz;
    };

    Molecule
    molecule(MemorySystem& ms, int i) const
    {
        return Molecule{_mx.peek(ms, i),  _my.peek(ms, i),
                        _mz.peek(ms, i),  _mvx.peek(ms, i),
                        _mvy.peek(ms, i), _mvz.peek(ms, i)};
    }

    static I64 spaceSpan() { return kSpace; }

    /** Molecule moves performed. */
    std::uint64_t
    workUnits() const override
    {
        return static_cast<std::uint64_t>(_p.nmol) * _p.iterations;
    }

  private:
    static constexpr I64 kSpace = 1 << 20; ///< fixed-point lattice span

    int
    cellOf(I64 x, I64 y, I64 z) const
    {
        const int d = _p.cellDim;
        auto clamp = [&](I64 v) {
            const I64 c = (v * d) / kSpace;
            return static_cast<int>(std::min<I64>(d - 1,
                                                  std::max<I64>(0, c)));
        };
        return (clamp(z) * d + clamp(y)) * d + clamp(x);
    }

    Params _p;
    Machine* _machine = nullptr;

    // Molecule state (owner-partitioned).
    ChunkedArray<I64> _mx, _my, _mz, _mvx, _mvy, _mvz;
    // Double-buffered cell accumulators: [parity][cell].
    ChunkedArray<I64> _cCount[2], _cVx[2], _cVy[2], _cVz[2];
    // One lock per cell (modeled synchronization primitive).
    std::vector<std::unique_ptr<SimLock>> _cellLocks;

    double _checksum = 0;
};

} // namespace tt

#endif // TT_APPS_MP3D_HH
