#include "apps/ocean.hh"

#include <cmath>

#include "sim/random.hh"

namespace tt
{

void
OceanApp::setup(Machine& m)
{
    _machine = &m;
    MemorySystem& ms = m.memsys();
    const int dim = _p.n + 2;
    _grid = ms.shmalloc(static_cast<std::size_t>(dim) * dim * 8);

    // Boundary conditions and a smooth deterministic interior field.
    for (int r = 0; r < dim; ++r) {
        for (int c = 0; c < dim; ++c) {
            double v;
            const bool boundary =
                r == 0 || c == 0 || r == dim - 1 || c == dim - 1;
            if (boundary)
                v = std::sin(0.1 * r) + std::cos(0.07 * c);
            else
                v = 0.01 * ((r * 31 + c * 17) % 64);
            ms.poke(at(r, c), &v, 8);
        }
    }
}

Task<void>
OceanApp::body(Cpu& cpu)
{
    const int P = _machine->nodes();
    // Interior rows 1..n block-partitioned across processors.
    const IndexRange rows = blockRange(_p.n, P, cpu.id());
    const int r0 = static_cast<int>(rows.begin) + 1;
    const int r1 = static_cast<int>(rows.end) + 1;

    for (int it = 0; it < _p.iterations; ++it) {
        for (int color = 0; color < 2; ++color) {
            for (int r = r0; r < r1; ++r) {
                for (int c = 1 + (r + color) % 2; c <= _p.n; c += 2) {
                    const double up =
                        co_await cpu.read<double>(at(r - 1, c));
                    const double down =
                        co_await cpu.read<double>(at(r + 1, c));
                    const double left =
                        co_await cpu.read<double>(at(r, c - 1));
                    const double right =
                        co_await cpu.read<double>(at(r, c + 1));
                    const double v = 0.25 * (up + down + left + right);
                    co_await cpu.write<double>(at(r, c), v);
                    cpu.advance(6); // 3 adds, multiply, index math
                }
            }
            co_await _machine->barrier().wait(cpu);
        }
    }
}

void
OceanApp::finish(Machine& m)
{
    MemorySystem& ms = m.memsys();
    double sum = 0;
    const int dim = _p.n + 2;
    for (int r = 0; r < dim; ++r) {
        for (int c = 0; c < dim; ++c) {
            double v;
            ms.peek(at(r, c), &v, 8);
            sum += v;
        }
    }
    _checksum = sum;
}

} // namespace tt
