/**
 * @file
 * Ocean: hydrodynamic simulation of a 2-D cross-section of a cuboidal
 * ocean basin (SPLASH). The kernel is the red-black Gauss-Seidel
 * relaxation that dominates the SPLASH code: an (n+2)^2 grid with
 * fixed boundaries, row-partitioned, neighbor rows shared at
 * partition boundaries, one barrier per color per sweep.
 */

#ifndef TT_APPS_OCEAN_HH
#define TT_APPS_OCEAN_HH

#include "apps/app_utils.hh"

namespace tt
{

class OceanApp : public BenchApp
{
  public:
    struct Params
    {
        int n = 98;         ///< interior grid dimension (Table 3)
        int iterations = 4; ///< red-black sweeps
        std::uint64_t seed = 0x0CEAULL;
    };

    explicit OceanApp(Params p) : _p(p) {}

    std::string name() const override { return "ocean"; }
    void setup(Machine& m) override;
    Task<void> body(Cpu& cpu) override;
    void finish(Machine& m) override;
    double checksum() const override { return _checksum; }

    /** Result extraction: grid point (r, c), 0 <= r,c <= n+1. */
    double
    gridAt(MemorySystem& ms, int r, int c) const
    {
        double v;
        ms.peek(at(r, c), &v, 8);
        return v;
    }

    /** Interior point relaxations performed. */
    std::uint64_t
    workUnits() const override
    {
        return static_cast<std::uint64_t>(_p.n) * _p.n * _p.iterations;
    }

  private:
    Addr at(int r, int c) const
    {
        return _grid + (static_cast<Addr>(r) * (_p.n + 2) + c) * 8;
    }

    Params _p;
    Addr _grid = 0;
    Machine* _machine = nullptr;
    double _checksum = 0;
};

} // namespace tt

#endif // TT_APPS_OCEAN_HH
