#include "apps/workloads.hh"

#include "sim/logging.hh"

namespace tt
{

const char*
dataSetName(DataSet d)
{
    switch (d) {
      case DataSet::Tiny:
        return "tiny";
      case DataSet::Small:
        return "small";
      case DataSet::Large:
        return "large";
    }
    return "?";
}

std::vector<WorkloadInfo>
workloadTable()
{
    return {
        {"appbt", "12x12x12", "24x24x24"},
        {"barnes", "2048 bodies", "8192 bodies"},
        {"mp3d", "10,000 mols", "50,000 mols"},
        {"ocean", "98x98 grid", "386x386 grid"},
        {"em3d", "64,000 nodes, degree 10",
         "192,000 nodes, degree 15"},
    };
}

Em3dApp::Params
em3dParams(DataSet ds, double remote_frac, int scale)
{
    Em3dApp::Params p;
    switch (ds) {
      case DataSet::Tiny:
        p.nNodes = 2048;
        p.degree = 4;
        break;
      case DataSet::Small:
        p.nNodes = 64000 / scale;
        p.degree = 10;
        break;
      case DataSet::Large:
        p.nNodes = 192000 / scale;
        p.degree = 15;
        break;
    }
    p.remoteFrac = remote_frac;
    p.iterations = 4;
    return p;
}

std::unique_ptr<BenchApp>
makeWorkload(const std::string& app, DataSet ds, int scale)
{
    const bool small = ds == DataSet::Small;
    const bool tiny = ds == DataSet::Tiny;
    if (app == "appbt") {
        AppbtApp::Params p;
        p.n = tiny ? 6 : (small ? 12 : 24);
        if (scale > 1 && !tiny)
            p.n = std::max(6, p.n / scale);
        p.iterations = 2;
        return std::make_unique<AppbtApp>(p);
    }
    if (app == "barnes") {
        BarnesApp::Params p;
        p.nbodies = tiny ? 256 : (small ? 2048 : 8192) / scale;
        p.iterations = 2;
        return std::make_unique<BarnesApp>(p);
    }
    if (app == "mp3d") {
        Mp3dApp::Params p;
        p.nmol = tiny ? 512 : (small ? 10000 : 50000) / scale;
        p.cellDim = tiny ? 4 : (small ? 8 : 14);
        p.iterations = 3;
        return std::make_unique<Mp3dApp>(p);
    }
    if (app == "ocean") {
        OceanApp::Params p;
        p.n = tiny ? 18 : (small ? 98 : 386);
        if (scale > 1 && !tiny)
            p.n = std::max(18, p.n / scale);
        p.iterations = 4;
        return std::make_unique<OceanApp>(p);
    }
    if (app == "em3d") {
        return std::make_unique<Em3dApp>(
            em3dParams(tiny ? DataSet::Tiny
                            : (small ? DataSet::Small : DataSet::Large),
                       0.2, scale));
    }
    tt_fatal("unknown workload: ", app);
}

} // namespace tt
