/**
 * @file
 * The application data sets of Table 3, plus reduced "tiny" variants
 * used by integration tests and quick bench runs. The small data sets
 * are scaled for a 4 KB cache and fit entirely in the larger caches,
 * exactly as in the paper's methodology (section 6).
 */

#ifndef TT_APPS_WORKLOADS_HH
#define TT_APPS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "apps/app_utils.hh"
#include "apps/appbt.hh"
#include "apps/barnes.hh"
#include "apps/em3d.hh"
#include "apps/mp3d.hh"
#include "apps/ocean.hh"

namespace tt
{

enum class DataSet { Tiny, Small, Large };

const char* dataSetName(DataSet d);

/** Table 3 entry. */
struct WorkloadInfo
{
    std::string app;
    std::string smallDesc;
    std::string largeDesc;
};

/** The five applications of Table 3, in paper order. */
std::vector<WorkloadInfo> workloadTable();

/**
 * Instantiate an application with its Table 3 data set. @p scale
 * divides the problem size (benches use it for quick runs); 1 = the
 * paper's sizes.
 */
std::unique_ptr<BenchApp> makeWorkload(const std::string& app,
                                       DataSet ds, int scale = 1);

/** EM3D with an explicit remote-edge fraction (Figure 4 sweeps). */
Em3dApp::Params em3dParams(DataSet ds, double remote_frac,
                           int scale = 1);

} // namespace tt

#endif // TT_APPS_WORKLOADS_HH
