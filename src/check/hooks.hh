/**
 * @file
 * CheckHooks — the observation interface between the memory systems
 * and the opt-in coherence sanitizer (src/check/protocol_checker.hh).
 *
 * Every instrumented subsystem (TyphoonMemSystem, Stache,
 * DirMemSystem, Network) holds a `CheckHooks* _checker = nullptr`
 * and guards each notification with `if (_checker)`.  When no checker
 * is attached the hooks cost one never-taken branch on a pointer that
 * lives in an already-hot cache line — bench_simcore verifies the
 * disabled-path cost stays within noise (see BENCH_simcore.json
 * "checker" entry and DESIGN.md §8).
 *
 * This header is deliberately dependency-light (opaque AccessTag
 * declaration, no protocol headers) so that src/net can include it
 * without acquiring a link-time dependency on the checker library.
 */

#ifndef TT_CHECK_HOOKS_HH
#define TT_CHECK_HOOKS_HH

#include <cstdint>

#include "net/message.hh"
#include "sim/types.hh"

namespace tt
{

enum class AccessTag : std::uint8_t; // full definition in core/tempest.hh

/**
 * Abstract observer for coherence-relevant state changes.
 *
 * Hook-point contract (see DESIGN.md §8 for the full catalog):
 *  - onTagChange / onPageTags: fired *after* the tag store mutates.
 *  - onPageMap / onPageUnmap: fired after the page table mutates.
 *  - onAccess: fired at the point an ordinary CPU access *completes*
 *    (data already transferred into/out of `bytes`).
 *  - onBackdoorWrite: host-side poke() that bypasses coherence; the
 *    shadow memory must follow it.
 *  - onBlockEvent: directory-side transition that does not move a tag
 *    (sharer-set edits, transient open/close, writeback application).
 *    `what` must be a string literal — it is stored, not copied.
 *  - onMsgSend: fired by Network::send before the message departs.
 *  - onMsgDeliver: fired when a protocol *handler begins executing*
 *    the message (Typhoon npPump dispatch / DirMemSystem::onMessage
 *    entry) — not at network delivery, because Typhoon queues
 *    messages at the NP between delivery and dispatch.
 *  - onEventEnd: fired after a protocol handler (or access
 *    completion) finishes; the checker validates all blocks touched
 *    since the previous onEventEnd.  Invariants are *not* evaluated
 *    mid-handler: handlers legitimately pass through transient states
 *    (e.g. Stache's dataless-upgrade grant sets the directory
 *    exclusive before invalidating the home tag).
 */
class CheckHooks
{
  public:
    virtual ~CheckHooks() = default;

    virtual void onTagChange(NodeId n, Addr blk, AccessTag t) = 0;
    virtual void onPageTags(NodeId n, Addr pageVa, AccessTag t) = 0;
    virtual void onPageMap(NodeId n, Addr pageVa, std::uint8_t mode) = 0;
    virtual void onPageUnmap(NodeId n, Addr pageVa) = 0;
    virtual void onAccess(NodeId n, Addr va, unsigned size, bool isWrite,
                          const void* bytes) = 0;
    virtual void onBackdoorWrite(Addr va, const void* bytes,
                                 std::size_t len) = 0;
    virtual void onBlockEvent(NodeId n, Addr blk, const char* what) = 0;
    virtual void onMsgSend(const Message& m) = 0;
    virtual void onMsgDeliver(const Message& m) = 0;
    virtual void onEventEnd() = 0;
};

} // namespace tt

#endif // TT_CHECK_HOOKS_HH
