#include "check/protocol_checker.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "core/machine.hh"
#include "dir/dir_mem_system.hh"
#include "mem/addr.hh"
#include "mem/cache_model.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "stache/stache.hh"
#include "typhoon/typhoon_mem_system.hh"

namespace tt
{

// The packed copy word stores the mirror tag as a direct cast of
// AccessTag; both enums must stay numerically aligned.
static_assert(static_cast<int>(AccessTag::Invalid) == 0 &&
                  static_cast<int>(AccessTag::ReadOnly) == 1 &&
                  static_cast<int>(AccessTag::ReadWrite) == 2 &&
                  static_cast<int>(AccessTag::Busy) == 3,
              "AccessTag numbering must match ProtocolChecker::Copy");

namespace
{

const char*
tagTrace(AccessTag t)
{
    switch (t) {
    case AccessTag::Invalid: return "tag:Invalid";
    case AccessTag::ReadOnly: return "tag:ReadOnly";
    case AccessTag::ReadWrite: return "tag:ReadWrite";
    case AccessTag::Busy: return "tag:Busy";
    }
    return "tag:?";
}

NodeId
lowestBit(std::uint64_t bits)
{
    return static_cast<NodeId>(__builtin_ctzll(bits));
}

} // namespace

ProtocolChecker::ProtocolChecker(Machine& m, Mode mode)
    : _m(m),
      _mode(mode),
      _nodes(m.params().nodes),
      _blockSize(m.params().blockSize),
      _pageSize(m.params().pageSize),
      _blkShift(log2i(m.params().blockSize)),
      _statAudits(&m.stats().counter("obs.check.audits")),
      _statLazyCmps(&m.stats().counter("obs.check.lazy_cmps")),
      _statEpochWraps(&m.stats().counter("obs.check.epoch_wraps"))
{
    tt_assert(_nodes > 0 && _nodes < 0xffff,
              "checker copy-word writer field needs nodes in [1, 65534]"
              ", got ",
              _nodes);
    _trace.reserve(kTraceCap);
    if (_mode == Mode::Fast) {
        _copy.resize(static_cast<std::size_t>(_nodes));
        _epoch.assign(static_cast<std::size_t>(_nodes), 0);
    }
}

void
ProtocolChecker::attachTyphoon(TyphoonMemSystem& ms, Stache& protocol)
{
    tt_assert(!_tms && !_dms,
              "checker already attached to a memory system; one "
              "ProtocolChecker instance validates exactly one target");
    _tms = &ms;
    _stache = &protocol;
}

void
ProtocolChecker::attachDirnnb(DirMemSystem& ms)
{
    tt_assert(!_tms && !_dms,
              "checker already attached to a memory system; one "
              "ProtocolChecker instance validates exactly one target");
    _dms = &ms;
}

// --------------------------------------------------------------------
// Bookkeeping
// --------------------------------------------------------------------

void
ProtocolChecker::trace(NodeId n, Addr blk, const char* what)
{
    TraceRec rec{_m.eq().now(), n, blk, what};
    if (_trace.size() < kTraceCap) {
        _trace.push_back(rec);
    } else {
        _trace[_traceHead] = rec;
        _traceHead = (_traceHead + 1) % kTraceCap;
    }
}

void
ProtocolChecker::markDirty(Addr blk)
{
    if (_dirtySet.insert(blk).second)
        _dirty.push_back(blk);
}

void
ProtocolChecker::markPageDirty(Addr pageVa)
{
    const Addr base = alignDown(pageVa, _pageSize);
    for (Addr b = base; b < base + _pageSize; b += _blockSize) {
        _seenBlocks.insert(b);
        markDirty(b);
    }
}

bool
ProtocolChecker::inflight(Addr blk) const
{
    auto it = _inflightByBlk.find(blk);
    return it != _inflightByBlk.end() && it->second > 0;
}

void
ProtocolChecker::report_(const char* invariant, Addr blk, NodeId node,
                         std::string detail)
{
    std::string key = std::string(invariant) + ":" + std::to_string(blk);
    if (!_violationKeys.insert(std::move(key)).second)
        return;
    if (_violations.size() >= kMaxViolations)
        return;
    _violations.push_back(
        Violation{invariant, blk, node, _m.eq().now(), std::move(detail)});
}

// --------------------------------------------------------------------
// Shadow memory (two-level table, both modes)
// --------------------------------------------------------------------

void
ProtocolChecker::shadowWrite(Addr va, const void* bytes, std::size_t len)
{
    const auto* src = static_cast<const std::uint8_t*>(bytes);
    while (len) {
        shadow::DataLeaf& leaf =
            _data.getWritable(va >> shadow::DataLeaf::kBytesLog2);
        const std::uint64_t off = va & (shadow::DataLeaf::kBytes - 1);
        const std::size_t n = std::min<std::size_t>(
            len, shadow::DataLeaf::kBytes - off);
        std::memcpy(leaf.data.data() + off, src, n);
        for (std::size_t i = 0; i < n; ++i)
            leaf.setValid(off + i);
        va += n;
        src += n;
        len -= n;
    }
}

bool
ProtocolChecker::shadowCheck(NodeId n, Addr va, const void* bytes,
                             std::size_t len)
{
    const auto* got = static_cast<const std::uint8_t*>(bytes);
    for (std::size_t i = 0; i < len; ++i) {
        const Addr a = va + i;
        const shadow::DataLeaf& leaf =
            _data.get(a >> shadow::DataLeaf::kBytesLog2);
        const std::uint64_t off = a & (shadow::DataLeaf::kBytes - 1);
        if (!leaf.validAt(off))
            continue;
        if (got[i] != leaf.data[off]) {
            std::ostringstream os;
            os << "read at node " << n << " va 0x" << std::hex << va
               << std::dec << " byte " << i << " returned "
               << int(got[i]) << ", last coherent write was "
               << int(leaf.data[off]);
            report_("value", blockAlign(va, _blockSize), n, os.str());
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------------
// Hooks
// --------------------------------------------------------------------

void
ProtocolChecker::onTagChange(NodeId n, Addr blk, AccessTag t)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    if (_mode == Mode::Fast) {
        fastTag(n, blk, static_cast<Copy>(t), tagTrace(t));
        return;
    }
    _seenBlocks.insert(blk);
    trace(n, blk, tagTrace(t));
    markDirty(blk);
}

void
ProtocolChecker::onPageTags(NodeId n, Addr pageVa, AccessTag t)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    trace(n, alignDown(pageVa, _pageSize), tagTrace(t));
    if (_mode == Mode::Fast) {
        const Addr base = alignDown(pageVa, _pageSize);
        for (Addr b = base; b < base + _pageSize; b += _blockSize)
            fastTag(n, b, static_cast<Copy>(t), nullptr);
        return;
    }
    markPageDirty(pageVa);
}

void
ProtocolChecker::onPageMap(NodeId n, Addr pageVa, std::uint8_t mode)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    // Custom-protocol pages (mode >= 3, e.g. EM3D delayed update) keep
    // consumer copies stale by design: exempt from coherence checking.
    const Addr base = alignDown(pageVa, _pageSize);
    if (mode >= 3) {
        _exemptVpns.insert(pageVa / _pageSize);
        if (_mode == Mode::Fast)
            for (Addr b = base; b < base + _pageSize; b += _blockSize)
                metaRef(b >> _blkShift).flags |=
                    shadow::BlockMeta::kExempt;
    }
    trace(n, base, "page-map");
    if (_mode == Mode::Fast) {
        // A fresh mapping starts all-Invalid at this node.
        for (Addr b = base; b < base + _pageSize; b += _blockSize)
            fastTag(n, b, Copy::None, nullptr);
        return;
    }
    markPageDirty(pageVa);
}

void
ProtocolChecker::onPageUnmap(NodeId n, Addr pageVa)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    const Addr base = alignDown(pageVa, _pageSize);
    trace(n, base, "page-unmap");
    if (_mode == Mode::Fast) {
        for (Addr b = base; b < base + _pageSize; b += _blockSize)
            fastTag(n, b, Copy::None, nullptr);
        return;
    }
    markPageDirty(pageVa);
}

void
ProtocolChecker::onAccess(NodeId n, Addr va, unsigned size, bool isWrite,
                          const void* bytes)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    if (_mode == Mode::Fast) {
        fastAccess(n, va, size, isWrite, bytes);
        return;
    }
    const Addr blk = blockAlign(va, _blockSize);
    if (exempt(blk))
        return;
    if (_tms) {
        // Table 1 semantics: the completing access must be backed by a
        // sufficient tag, live at completion time.
        const Copy c = copyState(n, blk);
        const bool ok = isWrite ? c == Copy::Excl
                                : (c == Copy::Excl || c == Copy::Shared);
        if (!ok) {
            std::ostringstream os;
            os << (isWrite ? "write" : "read") << " at node " << n
               << " va 0x" << std::hex << va << std::dec
               << " completed without a sufficient access tag";
            report_("table1-tag", blk, n, os.str());
        }
    }
    if (isWrite) {
        _seenBlocks.insert(blk);
        trace(n, blk, "write");
        markDirty(blk);
        shadowWrite(va, bytes, size);
    } else {
        shadowCheck(n, va, bytes, size);
    }
}

void
ProtocolChecker::onBackdoorWrite(Addr va, const void* bytes,
                                 std::size_t len)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    shadowWrite(va, bytes, len);
    if (_mode == Mode::Fast) {
        // Restamp every covered block so previously validated words
        // go stale and the next read re-verifies against the shadow.
        const Addr first = blockAlign(va, _blockSize);
        for (Addr b = first; b < va + len; b += _blockSize)
            fastBumpStamp(metaRef(b >> _blkShift));
    }
}

void
ProtocolChecker::onBlockEvent(NodeId n, Addr blk, const char* what)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    if (_mode == Mode::Fast) {
        shadow::BlockMeta& m = metaRef(blk >> _blkShift);
        m.flags |= shadow::BlockMeta::kSeen;
        trace(n, blk, what);
        fastBumpStamp(m);
        fastMarkDirty(blk, m);
        return;
    }
    _seenBlocks.insert(blk);
    trace(n, blk, what);
    markDirty(blk);
}

void
ProtocolChecker::onMsgSend(const Message& m)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    ++_inflightTotal;
    if (m.args.size() < 2)
        return;
    const Addr blk = blockAlign(m.addrArg(0), _blockSize);
    ++_inflightByBlk[blk];
    if (_mode == Mode::Fast) {
        const shadow::BlockMeta& bm = metaOf(blk >> _blkShift);
        if (bm.flags & shadow::BlockMeta::kSeen) {
            trace(m.src, blk, "msg-send");
            fastMarkDirty(blk, metaRef(blk >> _blkShift));
        }
        return;
    }
    if (_seenBlocks.count(blk)) {
        trace(m.src, blk, "msg-send");
        markDirty(blk);
    }
}

void
ProtocolChecker::onMsgDeliver(const Message& m)
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    --_inflightTotal;
    if (m.args.size() < 2)
        return;
    const Addr blk = blockAlign(m.addrArg(0), _blockSize);
    auto it = _inflightByBlk.find(blk);
    if (it != _inflightByBlk.end() && --it->second == 0)
        _inflightByBlk.erase(it);
    if (_mode == Mode::Fast) {
        shadow::BlockMeta& bm = metaRef(blk >> _blkShift);
        if (bm.flags & shadow::BlockMeta::kSeen) {
            trace(m.dst, blk, "msg-deliver");
            // The handler about to run may move block data around
            // without a coherent write; invalidate read-freshness.
            fastBumpStamp(bm);
            fastMarkDirty(blk, bm);
        }
        return;
    }
    if (_seenBlocks.count(blk)) {
        trace(m.dst, blk, "msg-deliver");
        markDirty(blk);
    }
}

void
ProtocolChecker::onEventEnd()
{
    TelemScope ts(_telem, HostTimer::Cat::Checker);
    ++_eventsChecked;
    if (_mode == Mode::Fast) {
        if (!_lazyCmp.empty()) {
            for (const auto& [n, blk] : _lazyCmp) {
                if (!(metaOf(blk >> _blkShift).flags &
                      shadow::BlockMeta::kExempt)) {
                    _statLazyCmps->inc();
                    fastCompareBlock(n, blk);
                }
            }
            _lazyCmp.clear();
        }
        for (Addr blk : _dirty) {
            shadow::BlockMeta& m = metaRef(blk >> _blkShift);
            m.flags &= static_cast<std::uint8_t>(
                ~shadow::BlockMeta::kDirty);
            if (m.flags & shadow::BlockMeta::kExempt)
                continue;
            _statAudits->inc();
            fastCheckBlock(blk, m);
        }
        _dirty.clear();
        return;
    }
    for (Addr blk : _dirty) {
        _statAudits->inc();
        checkBlock(blk);
    }
    _dirty.clear();
    _dirtySet.clear();
}

// --------------------------------------------------------------------
// Fast engine (DESIGN.md §13)
// --------------------------------------------------------------------

void
ProtocolChecker::fastMarkDirty(Addr blk, shadow::BlockMeta& m)
{
    if (!(m.flags & shadow::BlockMeta::kDirty)) {
        m.flags |= shadow::BlockMeta::kDirty;
        _dirty.push_back(blk);
    }
}

void
ProtocolChecker::fastBumpStamp(shadow::BlockMeta& m)
{
    ++_auxEpoch;
    if (shadow::epochWrapped(_auxEpoch))
        clearAllValidated();
    m.stamp = shadow::packStamp(shadow::kAuxWriter, _auxEpoch);
}

void
ProtocolChecker::clearAllValidated()
{
    _statEpochWraps->inc();
    for (auto& t : _copy)
        shadow::clearValidated(t);
}

void
ProtocolChecker::fastTag(NodeId n, Addr blk, Copy c, const char* what)
{
    const std::uint64_t bi = blk >> _blkShift;
    const std::uint64_t old = copyWord(n, bi);
    const Copy oc = static_cast<Copy>(shadow::tagOf(old));
    if (oc == Copy::None && c == Copy::None && !shadow::validated(old))
        return; // untouched slot stays untouched (page-granular sweeps)

    // Any copy-state transition invalidates the node's read freshness
    // (the underlying bytes may be about to change hands).
    copyWordRef(n, bi) = (old & shadow::kStampMask) |
                         static_cast<std::uint64_t>(c);

    shadow::BlockMeta& m = metaRef(bi);
    m.flags |= shadow::BlockMeta::kSeen;
    if (oc != c) {
        const std::uint64_t bit = n < 64 ? (1ull << n) : 0;
        switch (oc) {
        case Copy::Shared:
            --m.sharedCnt;
            m.sharedBits &= ~bit;
            break;
        case Copy::Excl:
            --m.exclCnt;
            m.exclBits &= ~bit;
            break;
        default: break;
        }
        switch (c) {
        case Copy::Shared:
            ++m.sharedCnt;
            m.sharedBits |= bit;
            break;
        case Copy::Excl:
            ++m.exclCnt;
            m.exclBits |= bit;
            break;
        default: break;
        }
    }
    if (what)
        trace(n, blk, what);
    fastMarkDirty(blk, m);

    if (_tms) {
        // Laziness rule: byte-granular value comparison happens on
        // copy-state transitions, not per access.  A grant may have
        // delivered stale bytes; a writable copy being taken away is
        // the last moment its bytes are authoritative.
        const bool grant = (oc == Copy::None || oc == Copy::Busy) &&
                           (c == Copy::Shared || c == Copy::Excl);
        const bool rwExit = oc == Copy::Excl && c != Copy::Excl;
        if (grant || rwExit)
            _lazyCmp.emplace_back(n, blk);
    }
}

void
ProtocolChecker::fastAccess(NodeId n, Addr va, unsigned size,
                            bool isWrite, const void* bytes)
{
    const Addr blk = blockAlign(va, _blockSize);
    const std::uint64_t bi = blk >> _blkShift;
    const shadow::BlockMeta& bm = metaOf(bi);
    if (bm.flags & shadow::BlockMeta::kExempt)
        return;
    if (_tms) {
        // Table 1 semantics, via the mirror (mirror == reality: every
        // tag-store mutation fires onTagChange before the access
        // completes).
        const unsigned c = shadow::tagOf(copyWord(n, bi));
        const bool ok =
            isWrite ? c == static_cast<unsigned>(Copy::Excl)
                    : (c == static_cast<unsigned>(Copy::Excl) ||
                       c == static_cast<unsigned>(Copy::Shared));
        if (!ok) {
            std::ostringstream os;
            os << (isWrite ? "write" : "read") << " at node " << n
               << " va 0x" << std::hex << va << std::dec
               << " completed without a sufficient access tag";
            report_("table1-tag", blk, n, os.str());
        }
    }
    if (!isWrite) {
        const std::uint64_t w = copyWord(n, bi);
        if (shadow::validated(w) && shadow::stampOf(w) == bm.stamp)
            return; // O(1): this node's view is provably fresh
        fastValidateBlock(n, blk, bm.stamp, va, bytes, size);
        return;
    }

    std::uint64_t& epoch = _epoch[static_cast<std::size_t>(n)];
    ++epoch;
    if (shadow::epochWrapped(epoch))
        clearAllValidated();
    const std::uint64_t stamp =
        shadow::packStamp(static_cast<std::uint32_t>(n) + 1, epoch);
    shadow::BlockMeta& m = metaRef(bi);
    std::uint64_t& w = copyWordRef(n, bi);
    // The writer stays validated across its own write iff it was
    // validated at the previous stamp: memory and shadow receive the
    // same bytes, so a verified view stays verified.
    const bool carry =
        shadow::validated(w) && shadow::stampOf(w) == m.stamp;
    m.stamp = stamp;
    w = (w & shadow::kTagMask) | stamp |
        (carry ? shadow::kValidatedMask : 0);
    m.flags |= shadow::BlockMeta::kSeen;
    fastMarkDirty(blk, m);
    trace(n, blk, "write");
    shadowWrite(va, bytes, size);
}

int
ProtocolChecker::blockVsShadow(NodeId n, Addr blk)
{
    std::uint8_t buf[256];
    if (!_tms || _blockSize > sizeof(buf) ||
        !readNodeBlock(n, blk, buf))
        return -1;
    const shadow::DataLeaf& leaf =
        _data.get(blk >> shadow::DataLeaf::kBytesLog2);
    const std::uint64_t off = blk & (shadow::DataLeaf::kBytes - 1);
    for (std::uint32_t i = 0; i < _blockSize; ++i) {
        if (!leaf.validAt(off + i))
            continue;
        if (buf[i] != leaf.data[off + i]) {
            std::ostringstream os;
            os << "copy at node " << n << " block 0x" << std::hex << blk
               << std::dec << " byte " << i << " holds " << int(buf[i])
               << ", last coherent write was " << int(leaf.data[off + i]);
            report_("value", blk, n, os.str());
            return 1;
        }
    }
    return 0;
}

void
ProtocolChecker::fastValidateBlock(NodeId n, Addr blk,
                                   std::uint64_t stamp, Addr va,
                                   const void* bytes, unsigned size)
{
    // Prefer whole-block verification (Typhoon: the node's memory is
    // directly readable) so the validated bit means "this node's
    // entire view matches the shadow", not just the sampled bytes.
    const int r = blockVsShadow(n, blk);
    if (r == 1)
        return; // mismatch reported; do not validate
    if (r < 0 && shadowCheck(n, va, bytes, size))
        return; // fallback compared the access bytes only
    std::uint64_t& w = copyWordRef(n, blk >> _blkShift);
    w = (w & ~shadow::kStampMask) | stamp | shadow::kValidatedMask;
}

void
ProtocolChecker::fastCompareBlock(NodeId n, Addr blk)
{
    blockVsShadow(n, blk);
}

void
ProtocolChecker::fastCheckBlock(Addr blk, shadow::BlockMeta& m)
{
    // SWMR in O(1): mirror population counts. The reality rescan only
    // runs to name the offending nodes in the report.
    if (m.exclCnt >= 2 || (m.exclCnt == 1 && m.sharedCnt >= 1))
        checkSwmr(blk);
    if (_tms)
        fastStacheAudit(blk, m);
    else
        fastDirnnbAudit(blk, m);
}

void
ProtocolChecker::fastStacheAudit(Addr blk, const shadow::BlockMeta& m)
{
    const Stache::BlockPeek p = _stache->peekEntry(blk);
    if (p.busy || inflight(blk))
        return;
    if (!p.entry || _nodes > 64) {
        checkStacheAgreement(blk);
        return;
    }
    const NodeId home = _stache->homeOf(blk);
    const std::uint64_t hb = 1ull << home;
    bool clean = false;
    switch (p.state) {
    case StacheDirEntry::State::Idle:
        clean = m.exclBits == hb && m.sharedBits == 0;
        break;
    case StacheDirEntry::State::Shared: {
        clean = (m.sharedBits & hb) != 0 && m.exclBits == 0;
        std::uint64_t rest = m.sharedBits & ~hb;
        while (clean && rest) {
            const NodeId n = lowestBit(rest);
            rest &= rest - 1;
            if (!p.entry->contains(n, *p.aux))
                clean = false;
        }
        break;
    }
    case StacheDirEntry::State::Excl: {
        if (p.owner < 0 || p.owner >= _nodes)
            break;
        const std::uint64_t bi = blk >> _blkShift;
        const unsigned ht = shadow::tagOf(copyWord(home, bi));
        const unsigned ot = shadow::tagOf(copyWord(p.owner, bi));
        const std::uint64_t ob = 1ull << p.owner;
        clean = ht == static_cast<unsigned>(Copy::None) &&
                (ot == static_cast<unsigned>(Copy::Excl) ||
                 ot == static_cast<unsigned>(Copy::Busy)) &&
                m.sharedBits == 0 && (m.exclBits & ~ob) == 0;
        break;
    }
    }
    if (!clean)
        checkStacheAgreement(blk); // reality rescan names the offender
}

void
ProtocolChecker::fastDirnnbAudit(Addr blk, const shadow::BlockMeta& m)
{
    const DirMemSystem::EntryPeek p = _dms->peekEntry(blk);
    if (p.busy || inflight(blk))
        return;
    if (_nodes > 64) {
        checkDirnnbAgreement(blk);
        return;
    }
    const NodeId home = _dms->homeOf(blk);
    const std::uint64_t hb = 1ull << home;
    bool clean = false;
    switch (p.state) {
    case DirMemSystem::DirState::Idle:
        // Home copies are not directory-tracked; remotes must be gone.
        clean = ((m.sharedBits | m.exclBits) & ~hb) == 0;
        break;
    case DirMemSystem::DirState::Shared: {
        clean = m.exclBits == 0;
        std::uint64_t rest = m.sharedBits & ~hb;
        while (clean && rest) {
            const NodeId n = lowestBit(rest);
            rest &= rest - 1;
            if (!p.sharers || !p.sharers->contains(n))
                clean = false;
        }
        break;
    }
    case DirMemSystem::DirState::Excl: {
        if (p.owner < 0 || p.owner >= _nodes || p.owner == home)
            break;
        const std::uint64_t ob = 1ull << p.owner;
        clean = ((m.sharedBits | m.exclBits) & hb) == 0 &&
                m.exclBits == ob && m.sharedBits == 0;
        break;
    }
    }
    if (!clean)
        checkDirnnbAgreement(blk);
}

// --------------------------------------------------------------------
// Invariants (paranoid engine; also the fast mode's reporting slow
// path — the mirror only decides *whether* to rescan reality)
// --------------------------------------------------------------------

ProtocolChecker::Copy
ProtocolChecker::copyState(NodeId n, Addr blk) const
{
    if (_tms) {
        const PageMapping* m = _tms->pageTableOf(n).lookup(blk);
        if (!m)
            return Copy::None;
        switch (_tms->tagOf(n, blk)) {
        case AccessTag::Invalid: return Copy::None;
        case AccessTag::ReadOnly: return Copy::Shared;
        case AccessTag::ReadWrite: return Copy::Excl;
        case AccessTag::Busy: return Copy::Busy;
        }
        return Copy::None;
    }
    CacheModel& c = _dms->cacheOf(n);
    if (!c.present(blk))
        return Copy::None;
    return c.presentShared(blk) ? Copy::Shared : Copy::Excl;
}

bool
ProtocolChecker::readNodeBlock(NodeId n, Addr blk, std::uint8_t* out) const
{
    const PageMapping* m = _tms->pageTableOf(n).lookup(blk);
    if (!m)
        return false;
    _tms->physOf(n).read(m->ppage + blk % _pageSize, out, _blockSize);
    return true;
}

void
ProtocolChecker::checkBlock(Addr blk)
{
    if (exempt(blk))
        return;
    checkSwmr(blk);
    if (_tms)
        checkStacheAgreement(blk);
    else
        checkDirnnbAgreement(blk);
}

void
ProtocolChecker::checkSwmr(Addr blk)
{
    // Unconditional: holds even mid-transaction.  A block's data may
    // be in flight (nobody holds it), but two writable copies — or a
    // readable copy next to a writer — are never legal.
    NodeId writer = kNoNode;
    for (NodeId n = 0; n < _nodes; ++n) {
        if (copyState(n, blk) != Copy::Excl)
            continue;
        if (writer != kNoNode) {
            std::ostringstream os;
            os << "two writable copies: nodes " << writer << " and "
               << n;
            report_("swmr", blk, n, os.str());
            return;
        }
        writer = n;
    }
    if (writer == kNoNode)
        return;
    for (NodeId n = 0; n < _nodes; ++n) {
        if (n != writer && copyState(n, blk) == Copy::Shared) {
            std::ostringstream os;
            os << "readable copy at node " << n
               << " coexists with writer at node " << writer;
            report_("swmr", blk, n, os.str());
            return;
        }
    }
}

void
ProtocolChecker::checkStacheAgreement(Addr blk)
{
    // Documented slack the protocol is allowed (PROTOCOLS.md): stale
    // sharer pointers after silent clean-copy drops, Busy tags while
    // a block fault is pending, and anything with a live transient or
    // an in-flight message referencing the block.
    const Stache::BlockView v = _stache->inspect(blk);
    if (v.busy || inflight(blk))
        return;
    const NodeId home = _stache->homeOf(blk);
    const auto listed = [&](NodeId n) {
        return std::find(v.sharers.begin(), v.sharers.end(), n) !=
               v.sharers.end();
    };

    switch (v.state) {
    case StacheDirEntry::State::Idle:
        if (copyState(home, blk) != Copy::Excl)
            report_("dir-agreement", blk, home,
                    "directory Idle but home copy is not writable");
        for (NodeId n = 0; n < _nodes; ++n) {
            const Copy c = copyState(n, blk);
            if (n != home && (c == Copy::Shared || c == Copy::Excl)) {
                std::ostringstream os;
                os << "directory Idle but node " << n
                   << " holds a copy";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;

    case StacheDirEntry::State::Shared: {
        if (copyState(home, blk) != Copy::Shared)
            report_("dir-agreement", blk, home,
                    "directory Shared but home copy is not read-only");
        std::uint8_t homeData[256];
        std::uint8_t nodeData[256];
        const bool haveHome =
            _blockSize <= sizeof(homeData) &&
            readNodeBlock(home, blk, homeData);
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home)
                continue;
            const Copy c = copyState(n, blk);
            if (c == Copy::Excl) {
                std::ostringstream os;
                os << "directory Shared but node " << n
                   << " holds a writable copy";
                report_("dir-agreement", blk, n, os.str());
            } else if (c == Copy::Shared) {
                if (!listed(n)) {
                    std::ostringstream os;
                    os << "readable copy at node " << n
                       << " missing from the sharer set";
                    report_("dir-agreement", blk, n, os.str());
                } else if (haveHome &&
                           readNodeBlock(n, blk, nodeData) &&
                           std::memcmp(homeData, nodeData,
                                       _blockSize) != 0) {
                    std::ostringstream os;
                    os << "read-only copy at node " << n
                       << " diverges from the home copy";
                    report_("value", blk, n, os.str());
                }
            }
            // Listed sharers with Invalid/Busy/unmapped copies are the
            // documented stale-pointer case (silent clean drops).
        }
        break;
    }

    case StacheDirEntry::State::Excl: {
        if (copyState(home, blk) != Copy::None)
            report_("dir-agreement", blk, home,
                    "directory Exclusive but the home still holds a copy");
        const Copy oc = copyState(v.owner, blk);
        if (oc != Copy::Excl && oc != Copy::Busy) {
            std::ostringstream os;
            os << "directory owner " << v.owner
               << " does not hold the writable copy";
            report_("dir-agreement", blk, v.owner, os.str());
        }
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home || n == v.owner)
                continue;
            const Copy c = copyState(n, blk);
            if (c == Copy::Shared || c == Copy::Excl) {
                std::ostringstream os;
                os << "directory Exclusive (owner " << v.owner
                   << ") but node " << n << " holds a copy";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;
    }
    }
}

void
ProtocolChecker::checkDirnnbAgreement(Addr blk)
{
    const DirMemSystem::EntryView v = _dms->inspect(blk);
    if (v.busy || inflight(blk))
        return;
    const NodeId home = _dms->homeOf(blk);
    const auto listed = [&](NodeId n) {
        return std::find(v.sharers.begin(), v.sharers.end(), n) !=
               v.sharers.end();
    };

    switch (v.state) {
    case DirMemSystem::DirState::Idle:
        // Home copies are not directory-tracked; remotes must be gone.
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n != home && copyState(n, blk) != Copy::None) {
                std::ostringstream os;
                os << "directory Idle but node " << n
                   << " holds a cache line";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;

    case DirMemSystem::DirState::Shared:
        if (copyState(home, blk) == Copy::Excl)
            report_("dir-agreement", blk, home,
                    "directory Shared but the home line is exclusive");
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home)
                continue;
            const Copy c = copyState(n, blk);
            if (c == Copy::Excl) {
                std::ostringstream os;
                os << "directory Shared but node " << n
                   << " holds an exclusive line";
                report_("dir-agreement", blk, n, os.str());
            } else if (c == Copy::Shared && !listed(n)) {
                std::ostringstream os;
                os << "shared line at node " << n
                   << " missing from the sharer set";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;

    case DirMemSystem::DirState::Excl:
        if (copyState(home, blk) != Copy::None)
            report_("dir-agreement", blk, home,
                    "directory Exclusive but the home still holds a line");
        if (copyState(v.owner, blk) != Copy::Excl) {
            std::ostringstream os;
            os << "directory owner " << v.owner
               << " does not hold the exclusive line";
            report_("dir-agreement", blk, v.owner, os.str());
        }
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home || n == v.owner)
                continue;
            if (copyState(n, blk) != Copy::None) {
                std::ostringstream os;
                os << "directory Exclusive (owner " << v.owner
                   << ") but node " << n << " holds a line";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;
    }
}

// --------------------------------------------------------------------
// End of run
// --------------------------------------------------------------------

void
ProtocolChecker::finalize()
{
    // Flush any state dirtied after the last protocol event.
    onEventEnd();
    --_eventsChecked; // the flush is not an event

    if (_inflightTotal != 0) {
        std::vector<Addr> blks;
        blks.reserve(_inflightByBlk.size());
        for (const auto& [b, c] : _inflightByBlk)
            if (c > 0)
                blks.push_back(b);
        std::sort(blks.begin(), blks.end());
        std::ostringstream os;
        os << _inflightTotal << " message(s) still in flight at end of run";
        if (!blks.empty()) {
            os << "; blocks:" << std::hex;
            for (std::size_t i = 0; i < blks.size() && i < 8; ++i)
                os << " 0x" << blks[i];
        }
        report_("message-conservation", blks.empty() ? 0 : blks[0],
                kNoNode, os.str());
    }

    const bool quiet = _tms ? (_stache->quiescent() && _tms->quiescent())
                            : _dms->quiescent();
    if (!quiet)
        report_("quiescence", 0, kNoNode,
                "open transactions at end of run: a request was never "
                "paired with its response");
}

void
ProtocolChecker::canonicalize()
{
    // Drop every shadow table and every piece of transient
    // bookkeeping. Violations and their dedup keys survive: a crash
    // recovery must not launder an already-detected bug.
    _data = {};
    _meta = {};
    for (ShadowTable<shadow::CopyLeaf>& t : _copy)
        t = {};
    std::fill(_epoch.begin(), _epoch.end(), 0);
    _auxEpoch = 0;
    _lazyCmp.clear();
    _seenBlocks.clear();
    _dirty.clear();
    _dirtySet.clear();
    _inflightByBlk.clear();
    _inflightTotal = 0;
    _trace.clear();
    _traceHead = 0;

    // Custom pages stay mapped across a canonicalize, so no fresh
    // onPageMap will re-announce their exemption: re-mark it here.
    if (_mode == Mode::Fast) {
        for (std::uint64_t vpn : _exemptVpns) {
            const Addr base = static_cast<Addr>(vpn) * _pageSize;
            for (Addr b = base; b < base + _pageSize; b += _blockSize)
                metaRef(b >> _blkShift).flags |=
                    shadow::BlockMeta::kExempt;
        }
    }

    // Canonical ownership picture. On Typhoon targets the memory
    // system leaves every non-exempt shared page ReadWrite at its
    // home — exactly what setup's tag announcements produced — so the
    // mirror shows the home holding each block exclusively. The
    // grants queued here compare against an all-invalid shadow and
    // are therefore silent until the caller's pokes refill it. On
    // DirNNB the caches are empty and the directory idle: the mirror
    // stays empty.
    if (_tms) {
        for (const MemorySystem::SharedRange& r : _tms->sharedAllocs()) {
            for (Addr p = alignDown(r.va, _pageSize);
                 p < r.va + r.bytes; p += _pageSize) {
                if (_exemptVpns.count(p / _pageSize) != 0)
                    continue;
                const NodeId home = _stache->homeOf(p);
                for (Addr b = p; b < p + _pageSize; b += _blockSize) {
                    if (_mode == Mode::Fast)
                        fastTag(home, b, Copy::Excl, nullptr);
                    else
                        _seenBlocks.insert(b);
                }
            }
        }
    }
}

std::size_t
ProtocolChecker::footprintBytes() const
{
    std::size_t b = 0;
    b += _data.leavesMaterialized() * sizeof(shadow::DataLeaf);
    b += _meta.leavesMaterialized() * sizeof(shadow::MetaLeaf);
    for (const auto& t : _copy)
        b += t.leavesMaterialized() * sizeof(shadow::CopyLeaf);
    b += _copy.capacity() * sizeof(ShadowTable<shadow::CopyLeaf>);
    b += _epoch.capacity() * sizeof(std::uint64_t);
    b += _lazyCmp.capacity() * sizeof(std::pair<NodeId, Addr>);
    b += _trace.capacity() * sizeof(TraceRec);
    b += _dirty.capacity() * sizeof(Addr);
    b += _dirtySet.size() * sizeof(Addr);
    b += _seenBlocks.size() * sizeof(Addr);
    b += _exemptVpns.size() * sizeof(std::uint64_t);
    b += _inflightByBlk.size() * (sizeof(Addr) + sizeof(int));
    return b;
}

std::string
ProtocolChecker::report() const
{
    std::ostringstream os;
    if (_violations.empty()) {
        os << "coherence-check: PASS (0 violations, " << _eventsChecked
           << " events checked)\n";
        return os.str();
    }
    os << "coherence-check: FAIL (" << _violations.size()
       << " violation(s), " << _eventsChecked << " events checked)\n";
    os << "  seed: " << _seed << "\n";
    const Violation& v = _violations.front();
    os << "  first: invariant=" << v.invariant << " block=0x" << std::hex
       << v.blk << std::dec << " node=" << v.node << " tick=" << v.tick
       << "\n";
    os << "    " << v.detail << "\n";
    os << "  trace for block 0x" << std::hex << v.blk << std::dec
       << ":\n";
    // Ring in chronological order; keep the last few records that
    // mention the violating block.
    std::vector<const TraceRec*> hits;
    const std::size_t sz = _trace.size();
    for (std::size_t i = 0; i < sz; ++i) {
        const TraceRec& r =
            _trace[(_traceHead + i) % (sz < kTraceCap ? sz : kTraceCap)];
        if (r.blk == v.blk)
            hits.push_back(&r);
    }
    const std::size_t keep = 24;
    const std::size_t start = hits.size() > keep ? hits.size() - keep : 0;
    for (std::size_t i = start; i < hits.size(); ++i)
        os << "    [" << hits[i]->tick << "] node " << hits[i]->node
           << " " << hits[i]->what << "\n";
    for (std::size_t i = 1; i < _violations.size(); ++i) {
        const Violation& w = _violations[i];
        os << "  also: invariant=" << w.invariant << " block=0x"
           << std::hex << w.blk << std::dec << " node=" << w.node
           << " tick=" << w.tick << " — " << w.detail << "\n";
    }
    return os.str();
}

} // namespace tt
