#include "check/protocol_checker.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "core/machine.hh"
#include "dir/dir_mem_system.hh"
#include "mem/addr.hh"
#include "mem/cache_model.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "sim/logging.hh"
#include "stache/stache.hh"
#include "typhoon/typhoon_mem_system.hh"

namespace tt
{

namespace
{

const char*
tagTrace(AccessTag t)
{
    switch (t) {
    case AccessTag::Invalid: return "tag:Invalid";
    case AccessTag::ReadOnly: return "tag:ReadOnly";
    case AccessTag::ReadWrite: return "tag:ReadWrite";
    case AccessTag::Busy: return "tag:Busy";
    }
    return "tag:?";
}

} // namespace

ProtocolChecker::ProtocolChecker(Machine& m)
    : _m(m),
      _nodes(m.params().nodes),
      _blockSize(m.params().blockSize),
      _pageSize(m.params().pageSize)
{
    _trace.reserve(kTraceCap);
}

void
ProtocolChecker::attachTyphoon(TyphoonMemSystem& ms, Stache& protocol)
{
    tt_assert(!_tms && !_dms, "checker already attached");
    _tms = &ms;
    _stache = &protocol;
}

void
ProtocolChecker::attachDirnnb(DirMemSystem& ms)
{
    tt_assert(!_tms && !_dms, "checker already attached");
    _dms = &ms;
}

// --------------------------------------------------------------------
// Bookkeeping
// --------------------------------------------------------------------

void
ProtocolChecker::trace(NodeId n, Addr blk, const char* what)
{
    TraceRec rec{_m.eq().now(), n, blk, what};
    if (_trace.size() < kTraceCap) {
        _trace.push_back(rec);
    } else {
        _trace[_traceHead] = rec;
        _traceHead = (_traceHead + 1) % kTraceCap;
    }
}

void
ProtocolChecker::markDirty(Addr blk)
{
    if (_dirtySet.insert(blk).second)
        _dirty.push_back(blk);
}

void
ProtocolChecker::markPageDirty(Addr pageVa)
{
    const Addr base = alignDown(pageVa, _pageSize);
    for (Addr b = base; b < base + _pageSize; b += _blockSize) {
        _seenBlocks.insert(b);
        markDirty(b);
    }
}

bool
ProtocolChecker::inflight(Addr blk) const
{
    auto it = _inflightByBlk.find(blk);
    return it != _inflightByBlk.end() && it->second > 0;
}

void
ProtocolChecker::report_(const char* invariant, Addr blk, NodeId node,
                         std::string detail)
{
    std::string key = std::string(invariant) + ":" + std::to_string(blk);
    if (!_violationKeys.insert(std::move(key)).second)
        return;
    if (_violations.size() >= kMaxViolations)
        return;
    _violations.push_back(
        Violation{invariant, blk, node, _m.eq().now(), std::move(detail)});
}

// --------------------------------------------------------------------
// Shadow memory
// --------------------------------------------------------------------

ProtocolChecker::ShadowPage&
ProtocolChecker::shadowPage(Addr va)
{
    ShadowPage& p = _shadow[va / _pageSize];
    if (p.data.empty()) {
        p.data.assign(_pageSize, 0);
        p.valid.assign(_pageSize, 0);
    }
    return p;
}

void
ProtocolChecker::shadowWrite(Addr va, const void* bytes, std::size_t len)
{
    const auto* src = static_cast<const std::uint8_t*>(bytes);
    while (len) {
        ShadowPage& p = shadowPage(va);
        const std::size_t off = va % _pageSize;
        const std::size_t n = std::min<std::size_t>(len, _pageSize - off);
        std::memcpy(p.data.data() + off, src, n);
        std::fill_n(p.valid.begin() + static_cast<long>(off), n, 1);
        va += n;
        src += n;
        len -= n;
    }
}

void
ProtocolChecker::shadowCheck(NodeId n, Addr va, const void* bytes,
                             std::size_t len)
{
    auto it = _shadow.find(va / _pageSize);
    if (it == _shadow.end() || it->second.data.empty())
        return;
    const ShadowPage& p = it->second;
    const auto* got = static_cast<const std::uint8_t*>(bytes);
    const std::size_t off = va % _pageSize;
    for (std::size_t i = 0; i < len && off + i < _pageSize; ++i) {
        if (!p.valid[off + i])
            continue;
        if (got[i] != p.data[off + i]) {
            std::ostringstream os;
            os << "read at node " << n << " va 0x" << std::hex << va
               << std::dec << " byte " << i << " returned "
               << int(got[i]) << ", last coherent write was "
               << int(p.data[off + i]);
            report_("value", blockAlign(va, _blockSize), n, os.str());
            return;
        }
    }
}

// --------------------------------------------------------------------
// Hooks
// --------------------------------------------------------------------

void
ProtocolChecker::onTagChange(NodeId n, Addr blk, AccessTag t)
{
    _seenBlocks.insert(blk);
    trace(n, blk, tagTrace(t));
    markDirty(blk);
}

void
ProtocolChecker::onPageTags(NodeId n, Addr pageVa, AccessTag t)
{
    trace(n, alignDown(pageVa, _pageSize), tagTrace(t));
    markPageDirty(pageVa);
}

void
ProtocolChecker::onPageMap(NodeId n, Addr pageVa, std::uint8_t mode)
{
    // Custom-protocol pages (mode >= 3, e.g. EM3D delayed update) keep
    // consumer copies stale by design: exempt from coherence checking.
    if (mode >= 3)
        _exemptVpns.insert(pageVa / _pageSize);
    trace(n, alignDown(pageVa, _pageSize), "page-map");
    markPageDirty(pageVa);
}

void
ProtocolChecker::onPageUnmap(NodeId n, Addr pageVa)
{
    trace(n, alignDown(pageVa, _pageSize), "page-unmap");
    markPageDirty(pageVa);
}

void
ProtocolChecker::onAccess(NodeId n, Addr va, unsigned size, bool isWrite,
                          const void* bytes)
{
    const Addr blk = blockAlign(va, _blockSize);
    if (exempt(blk))
        return;
    if (_tms) {
        // Table 1 semantics: the completing access must be backed by a
        // sufficient tag, live at completion time.
        const Copy c = copyState(n, blk);
        const bool ok = isWrite ? c == Copy::Excl
                                : (c == Copy::Excl || c == Copy::Shared);
        if (!ok) {
            std::ostringstream os;
            os << (isWrite ? "write" : "read") << " at node " << n
               << " va 0x" << std::hex << va << std::dec
               << " completed without a sufficient access tag";
            report_("table1-tag", blk, n, os.str());
        }
    }
    if (isWrite) {
        _seenBlocks.insert(blk);
        trace(n, blk, "write");
        markDirty(blk);
        shadowWrite(va, bytes, size);
    } else {
        shadowCheck(n, va, bytes, size);
    }
}

void
ProtocolChecker::onBackdoorWrite(Addr va, const void* bytes,
                                 std::size_t len)
{
    shadowWrite(va, bytes, len);
}

void
ProtocolChecker::onBlockEvent(NodeId n, Addr blk, const char* what)
{
    _seenBlocks.insert(blk);
    trace(n, blk, what);
    markDirty(blk);
}

void
ProtocolChecker::onMsgSend(const Message& m)
{
    ++_inflightTotal;
    if (m.args.size() >= 2) {
        const Addr blk = blockAlign(m.addrArg(0), _blockSize);
        ++_inflightByBlk[blk];
        if (_seenBlocks.count(blk)) {
            trace(m.src, blk, "msg-send");
            markDirty(blk);
        }
    }
}

void
ProtocolChecker::onMsgDeliver(const Message& m)
{
    --_inflightTotal;
    if (m.args.size() >= 2) {
        const Addr blk = blockAlign(m.addrArg(0), _blockSize);
        auto it = _inflightByBlk.find(blk);
        if (it != _inflightByBlk.end() && --it->second == 0)
            _inflightByBlk.erase(it);
        if (_seenBlocks.count(blk)) {
            trace(m.dst, blk, "msg-deliver");
            markDirty(blk);
        }
    }
}

void
ProtocolChecker::onEventEnd()
{
    ++_eventsChecked;
    for (Addr blk : _dirty)
        checkBlock(blk);
    _dirty.clear();
    _dirtySet.clear();
}

// --------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------

ProtocolChecker::Copy
ProtocolChecker::copyState(NodeId n, Addr blk) const
{
    if (_tms) {
        const PageMapping* m = _tms->pageTableOf(n).lookup(blk);
        if (!m)
            return Copy::None;
        switch (_tms->tagOf(n, blk)) {
        case AccessTag::Invalid: return Copy::None;
        case AccessTag::ReadOnly: return Copy::Shared;
        case AccessTag::ReadWrite: return Copy::Excl;
        case AccessTag::Busy: return Copy::Busy;
        }
        return Copy::None;
    }
    CacheModel& c = _dms->cacheOf(n);
    if (!c.present(blk))
        return Copy::None;
    return c.presentShared(blk) ? Copy::Shared : Copy::Excl;
}

bool
ProtocolChecker::readNodeBlock(NodeId n, Addr blk, std::uint8_t* out) const
{
    const PageMapping* m = _tms->pageTableOf(n).lookup(blk);
    if (!m)
        return false;
    _tms->physOf(n).read(m->ppage + blk % _pageSize, out, _blockSize);
    return true;
}

void
ProtocolChecker::checkBlock(Addr blk)
{
    if (exempt(blk))
        return;
    checkSwmr(blk);
    if (_tms)
        checkStacheAgreement(blk);
    else
        checkDirnnbAgreement(blk);
}

void
ProtocolChecker::checkSwmr(Addr blk)
{
    // Unconditional: holds even mid-transaction.  A block's data may
    // be in flight (nobody holds it), but two writable copies — or a
    // readable copy next to a writer — are never legal.
    NodeId writer = kNoNode;
    for (NodeId n = 0; n < _nodes; ++n) {
        if (copyState(n, blk) != Copy::Excl)
            continue;
        if (writer != kNoNode) {
            std::ostringstream os;
            os << "two writable copies: nodes " << writer << " and "
               << n;
            report_("swmr", blk, n, os.str());
            return;
        }
        writer = n;
    }
    if (writer == kNoNode)
        return;
    for (NodeId n = 0; n < _nodes; ++n) {
        if (n != writer && copyState(n, blk) == Copy::Shared) {
            std::ostringstream os;
            os << "readable copy at node " << n
               << " coexists with writer at node " << writer;
            report_("swmr", blk, n, os.str());
            return;
        }
    }
}

void
ProtocolChecker::checkStacheAgreement(Addr blk)
{
    // Documented slack the protocol is allowed (PROTOCOLS.md): stale
    // sharer pointers after silent clean-copy drops, Busy tags while
    // a block fault is pending, and anything with a live transient or
    // an in-flight message referencing the block.
    const Stache::BlockView v = _stache->inspect(blk);
    if (v.busy || inflight(blk))
        return;
    const NodeId home = _stache->homeOf(blk);
    const auto listed = [&](NodeId n) {
        return std::find(v.sharers.begin(), v.sharers.end(), n) !=
               v.sharers.end();
    };

    switch (v.state) {
    case StacheDirEntry::State::Idle:
        if (copyState(home, blk) != Copy::Excl)
            report_("dir-agreement", blk, home,
                    "directory Idle but home copy is not writable");
        for (NodeId n = 0; n < _nodes; ++n) {
            const Copy c = copyState(n, blk);
            if (n != home && (c == Copy::Shared || c == Copy::Excl)) {
                std::ostringstream os;
                os << "directory Idle but node " << n
                   << " holds a copy";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;

    case StacheDirEntry::State::Shared: {
        if (copyState(home, blk) != Copy::Shared)
            report_("dir-agreement", blk, home,
                    "directory Shared but home copy is not read-only");
        std::uint8_t homeData[256];
        std::uint8_t nodeData[256];
        const bool haveHome =
            _blockSize <= sizeof(homeData) &&
            readNodeBlock(home, blk, homeData);
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home)
                continue;
            const Copy c = copyState(n, blk);
            if (c == Copy::Excl) {
                std::ostringstream os;
                os << "directory Shared but node " << n
                   << " holds a writable copy";
                report_("dir-agreement", blk, n, os.str());
            } else if (c == Copy::Shared) {
                if (!listed(n)) {
                    std::ostringstream os;
                    os << "readable copy at node " << n
                       << " missing from the sharer set";
                    report_("dir-agreement", blk, n, os.str());
                } else if (haveHome &&
                           readNodeBlock(n, blk, nodeData) &&
                           std::memcmp(homeData, nodeData,
                                       _blockSize) != 0) {
                    std::ostringstream os;
                    os << "read-only copy at node " << n
                       << " diverges from the home copy";
                    report_("value", blk, n, os.str());
                }
            }
            // Listed sharers with Invalid/Busy/unmapped copies are the
            // documented stale-pointer case (silent clean drops).
        }
        break;
    }

    case StacheDirEntry::State::Excl: {
        if (copyState(home, blk) != Copy::None)
            report_("dir-agreement", blk, home,
                    "directory Exclusive but the home still holds a copy");
        const Copy oc = copyState(v.owner, blk);
        if (oc != Copy::Excl && oc != Copy::Busy) {
            std::ostringstream os;
            os << "directory owner " << v.owner
               << " does not hold the writable copy";
            report_("dir-agreement", blk, v.owner, os.str());
        }
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home || n == v.owner)
                continue;
            const Copy c = copyState(n, blk);
            if (c == Copy::Shared || c == Copy::Excl) {
                std::ostringstream os;
                os << "directory Exclusive (owner " << v.owner
                   << ") but node " << n << " holds a copy";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;
    }
    }
}

void
ProtocolChecker::checkDirnnbAgreement(Addr blk)
{
    const DirMemSystem::EntryView v = _dms->inspect(blk);
    if (v.busy || inflight(blk))
        return;
    const NodeId home = _dms->homeOf(blk);
    const auto listed = [&](NodeId n) {
        return std::find(v.sharers.begin(), v.sharers.end(), n) !=
               v.sharers.end();
    };

    switch (v.state) {
    case DirMemSystem::DirState::Idle:
        // Home copies are not directory-tracked; remotes must be gone.
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n != home && copyState(n, blk) != Copy::None) {
                std::ostringstream os;
                os << "directory Idle but node " << n
                   << " holds a cache line";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;

    case DirMemSystem::DirState::Shared:
        if (copyState(home, blk) == Copy::Excl)
            report_("dir-agreement", blk, home,
                    "directory Shared but the home line is exclusive");
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home)
                continue;
            const Copy c = copyState(n, blk);
            if (c == Copy::Excl) {
                std::ostringstream os;
                os << "directory Shared but node " << n
                   << " holds an exclusive line";
                report_("dir-agreement", blk, n, os.str());
            } else if (c == Copy::Shared && !listed(n)) {
                std::ostringstream os;
                os << "shared line at node " << n
                   << " missing from the sharer set";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;

    case DirMemSystem::DirState::Excl:
        if (copyState(home, blk) != Copy::None)
            report_("dir-agreement", blk, home,
                    "directory Exclusive but the home still holds a line");
        if (copyState(v.owner, blk) != Copy::Excl) {
            std::ostringstream os;
            os << "directory owner " << v.owner
               << " does not hold the exclusive line";
            report_("dir-agreement", blk, v.owner, os.str());
        }
        for (NodeId n = 0; n < _nodes; ++n) {
            if (n == home || n == v.owner)
                continue;
            if (copyState(n, blk) != Copy::None) {
                std::ostringstream os;
                os << "directory Exclusive (owner " << v.owner
                   << ") but node " << n << " holds a line";
                report_("dir-agreement", blk, n, os.str());
            }
        }
        break;
    }
}

// --------------------------------------------------------------------
// End of run
// --------------------------------------------------------------------

void
ProtocolChecker::finalize()
{
    // Flush any state dirtied after the last protocol event.
    onEventEnd();
    --_eventsChecked; // the flush is not an event

    if (_inflightTotal != 0) {
        std::vector<Addr> blks;
        blks.reserve(_inflightByBlk.size());
        for (const auto& [b, c] : _inflightByBlk)
            if (c > 0)
                blks.push_back(b);
        std::sort(blks.begin(), blks.end());
        std::ostringstream os;
        os << _inflightTotal << " message(s) still in flight at end of run";
        if (!blks.empty()) {
            os << "; blocks:" << std::hex;
            for (std::size_t i = 0; i < blks.size() && i < 8; ++i)
                os << " 0x" << blks[i];
        }
        report_("message-conservation", blks.empty() ? 0 : blks[0],
                kNoNode, os.str());
    }

    const bool quiet = _tms ? (_stache->quiescent() && _tms->quiescent())
                            : _dms->quiescent();
    if (!quiet)
        report_("quiescence", 0, kNoNode,
                "open transactions at end of run: a request was never "
                "paired with its response");
}

std::string
ProtocolChecker::report() const
{
    std::ostringstream os;
    if (_violations.empty()) {
        os << "coherence-check: PASS (0 violations, " << _eventsChecked
           << " events checked)\n";
        return os.str();
    }
    os << "coherence-check: FAIL (" << _violations.size()
       << " violation(s), " << _eventsChecked << " events checked)\n";
    os << "  seed: " << _seed << "\n";
    const Violation& v = _violations.front();
    os << "  first: invariant=" << v.invariant << " block=0x" << std::hex
       << v.blk << std::dec << " node=" << v.node << " tick=" << v.tick
       << "\n";
    os << "    " << v.detail << "\n";
    os << "  trace for block 0x" << std::hex << v.blk << std::dec
       << ":\n";
    // Ring in chronological order; keep the last few records that
    // mention the violating block.
    std::vector<const TraceRec*> hits;
    const std::size_t sz = _trace.size();
    for (std::size_t i = 0; i < sz; ++i) {
        const TraceRec& r =
            _trace[(_traceHead + i) % (sz < kTraceCap ? sz : kTraceCap)];
        if (r.blk == v.blk)
            hits.push_back(&r);
    }
    const std::size_t keep = 24;
    const std::size_t start = hits.size() > keep ? hits.size() - keep : 0;
    for (std::size_t i = start; i < hits.size(); ++i)
        os << "    [" << hits[i]->tick << "] node " << hits[i]->node
           << " " << hits[i]->what << "\n";
    for (std::size_t i = 1; i < _violations.size(); ++i) {
        const Violation& w = _violations[i];
        os << "  also: invariant=" << w.invariant << " block=0x"
           << std::hex << w.blk << std::dec << " node=" << w.node
           << " tick=" << w.tick << " — " << w.detail << "\n";
    }
    return os.str();
}

} // namespace tt
