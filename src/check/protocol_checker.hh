/**
 * @file
 * ProtocolChecker — the coherence sanitizer (DESIGN.md §8, §13).
 *
 * A DRD-style runtime verifier that observes every tag transition,
 * directory update, message send/delivery, and completed CPU access
 * through the CheckHooks interface, and validates global coherence
 * invariants after every protocol event:
 *
 *  - swmr: at most one writable copy of a block system-wide, and no
 *    readable copy coexisting with a writer.
 *  - dir-agreement: the directory entry (Stache home dir / DirNNB
 *    full-map entry) matches the per-node reality (tags or cache
 *    line states).  Documented slack is tolerated: stale sharer
 *    pointers after silent clean-copy drops, Busy tags during a
 *    pending fault, blocks with a live transient or an in-flight
 *    message referencing them.
 *  - table1-tag (Typhoon targets only): no ordinary read/write
 *    completes through an Invalid/Busy tag — reads need
 *    ReadOnly/ReadWrite, writes need ReadWrite, live at completion.
 *  - value: every coherent read returns the bytes of the last
 *    coherent write (shadow memory, byte-granular).
 *  - message-conservation / quiescence (at finalize()): no in-flight
 *    message outlives the run, every request was paired with its
 *    response (no open transients / MSHRs / pending misses).
 *
 * The checker runs in one of two modes (DESIGN.md §13):
 *
 *  - Mode::Fast (`--check`, the default): a Valgrind-grade shadow
 *    engine.  Per-node per-block copy words mirror the tag/cache
 *    state (maintained from the same hooks, so mirror == reality),
 *    SWMR reduces to O(1) population-count checks, directory audits
 *    compare the directory entry against mirror bitmaps, and read
 *    freshness is one packed-word compare — byte-granular value
 *    comparison only happens on a stamp miss or on copy-state
 *    transitions (grant / downgrade / invalidate), never per access.
 *  - Mode::Paranoid (`--check=paranoid`): the original byte-granular
 *    engine — every read value-checked against the shadow, every
 *    audit rescans reality (page tables / cache tag arrays) —
 *    retained as the reference oracle for the differential
 *    no-false-negative suite (tests/check/test_differential.cc).
 *
 * Pages mapped with a custom-protocol mode (mode >= 3, e.g. the EM3D
 * delayed-update protocol whose consumer copies are stale by design)
 * are exempt from swmr/dir-agreement/value checking.
 *
 * The checker is pure observer: it never schedules events, never
 * touches simulated state, and never stops the run (Machine::run
 * panics on a drained queue with unfinished processors, so a checker
 * abort would mask the violation).  Violations are recorded once per
 * (invariant, block) and reported at the end, together with a
 * per-block event trace for the first violation.
 */

#ifndef TT_CHECK_PROTOCOL_CHECKER_HH
#define TT_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/hooks.hh"
#include "check/shadow_map.hh"
#include "core/tempest.hh"
#include "sim/host_timer.hh"
#include "sim/types.hh"

namespace tt
{

class Counter;
class Machine;
class TyphoonMemSystem;
class Stache;
class DirMemSystem;

class ProtocolChecker final : public CheckHooks
{
  public:
    /// Checking engine selection — see the file comment.
    enum class Mode : std::uint8_t { Fast, Paranoid };

    struct Violation
    {
        std::string invariant; ///< "swmr", "dir-agreement", ...
        Addr blk = 0;
        NodeId node = kNoNode;
        Tick tick = 0;
        std::string detail;
    };

    explicit ProtocolChecker(Machine& m, Mode mode = Mode::Fast);

    /// Attach to a Typhoon target (Stache or a Stache subclass).
    void attachTyphoon(TyphoonMemSystem& ms, Stache& protocol);
    /// Attach to the DirNNB all-hardware baseline.
    void attachDirnnb(DirMemSystem& ms);

    /// Record the perturbation seed for the failure report (0 = none).
    void setSeed(std::uint64_t seed) { _seed = seed; }

    Mode mode() const { return _mode; }

    // --- CheckHooks ---------------------------------------------------
    void onTagChange(NodeId n, Addr blk, AccessTag t) override;
    void onPageTags(NodeId n, Addr pageVa, AccessTag t) override;
    void onPageMap(NodeId n, Addr pageVa, std::uint8_t mode) override;
    void onPageUnmap(NodeId n, Addr pageVa) override;
    void onAccess(NodeId n, Addr va, unsigned size, bool isWrite,
                  const void* bytes) override;
    void onBackdoorWrite(Addr va, const void* bytes,
                         std::size_t len) override;
    void onBlockEvent(NodeId n, Addr blk, const char* what) override;
    void onMsgSend(const Message& m) override;
    void onMsgDeliver(const Message& m) override;
    void onEventEnd() override;

    /// End-of-run checks (conservation, quiescence). Call after run().
    void finalize();

    /**
     * Reset the shadow engine to the canonical post-setup view
     * (DESIGN.md §15): shadow data/metadata wiped, in-flight and
     * dirty bookkeeping cleared, custom-page exemptions re-marked
     * (those pages stay mapped across a canonicalize, so no
     * onPageMap re-announces them), and the copy mirror re-seeded
     * with the canonical ownership picture — home holds every
     * non-exempt shared block exclusively on Typhoon targets, no
     * copies anywhere on DirNNB. The caller pokes every shared byte
     * right afterwards, rebuilding the data shadow identically on
     * both sides of a checkpoint/restore or crash-recovery pair.
     * Recorded violations are kept: recovery must not launder them.
     */
    void canonicalize();

    const std::vector<Violation>& violations() const
    {
        return _violations;
    }
    std::uint64_t eventsChecked() const { return _eventsChecked; }

    /**
     * Deterministic human-readable report: PASS line, or seed + first
     * violated invariant + the per-block event trace (the minimized
     * failure report the perturbation harness promises).
     */
    std::string report() const;

    /** Attach the self-telemetry timer (nullptr = off, DESIGN.md §16). */
    void setTelemetry(HostTimer* t) { _telem = t; }

    /**
     * Resident bytes of the shadow engine (telemetry memory probe):
     * materialized shadow leaves (the dominant cost — data shadow plus
     * per-node copy mirrors), the event-trace ring, and the dirty /
     * in-flight bookkeeping. Hash-set footprints are approximated as
     * element-payload bytes; bucket-array overhead is not modeled.
     */
    std::size_t footprintBytes() const;

  private:
    /// Generic per-node summary of a block copy, protocol-agnostic.
    /// Numeric values deliberately match AccessTag so the packed copy
    /// word's 2-bit tag field is a direct cast (asserted in the .cc).
    enum class Copy : std::uint8_t { None, Shared, Excl, Busy };

    struct TraceRec
    {
        Tick tick = 0;
        NodeId node = kNoNode;
        Addr blk = 0;
        const char* what = nullptr;
    };

    void trace(NodeId n, Addr blk, const char* what);
    void markDirty(Addr blk);
    void markPageDirty(Addr pageVa);
    bool exempt(Addr blk) const
    {
        return _exemptVpns.count(blk / _pageSize) != 0;
    }
    bool inflight(Addr blk) const;
    void report_(const char* invariant, Addr blk, NodeId node,
                 std::string detail);

    void shadowWrite(Addr va, const void* bytes, std::size_t len);
    /// Compare bytes against shadow; report a "value" violation on
    /// mismatch. Bytes never coherently written are not checked.
    /// @return true iff a mismatch was reported.
    bool shadowCheck(NodeId n, Addr va, const void* bytes,
                     std::size_t len);

    Copy copyState(NodeId n, Addr blk) const;
    void checkBlock(Addr blk);
    void checkSwmr(Addr blk);
    void checkStacheAgreement(Addr blk);
    void checkDirnnbAgreement(Addr blk);
    /// Read a block's bytes out of node-local memory (Typhoon only);
    /// false if the page is unmapped at that node.
    bool readNodeBlock(NodeId n, Addr blk, std::uint8_t* out) const;

    // --- fast-mode engine (DESIGN.md §13) -----------------------------
    std::uint64_t copyWord(NodeId n, std::uint64_t bi) const
    {
        return _copy[static_cast<std::size_t>(n)]
            .get(bi >> shadow::CopyLeaf::kBlocksLog2)
            .word[bi & ((1ull << shadow::CopyLeaf::kBlocksLog2) - 1)];
    }
    std::uint64_t& copyWordRef(NodeId n, std::uint64_t bi)
    {
        return _copy[static_cast<std::size_t>(n)]
            .getWritable(bi >> shadow::CopyLeaf::kBlocksLog2)
            .word[bi & ((1ull << shadow::CopyLeaf::kBlocksLog2) - 1)];
    }
    const shadow::BlockMeta& metaOf(std::uint64_t bi) const
    {
        return _meta.get(bi >> shadow::MetaLeaf::kBlocksLog2)
            .meta[bi & ((1ull << shadow::MetaLeaf::kBlocksLog2) - 1)];
    }
    shadow::BlockMeta& metaRef(std::uint64_t bi)
    {
        return _meta.getWritable(bi >> shadow::MetaLeaf::kBlocksLog2)
            .meta[bi & ((1ull << shadow::MetaLeaf::kBlocksLog2) - 1)];
    }

    void fastTag(NodeId n, Addr blk, Copy c, const char* what);
    void fastAccess(NodeId n, Addr va, unsigned size, bool isWrite,
                    const void* bytes);
    void fastMarkDirty(Addr blk, shadow::BlockMeta& m);
    /// Mint a fresh stamp from non-write protocol activity so every
    /// validated word for the block goes stale.
    void fastBumpStamp(shadow::BlockMeta& m);
    void clearAllValidated();
    /// Full-block verification of node n's view against the shadow;
    /// validates the node's copy word at `stamp` on success.
    void fastValidateBlock(NodeId n, Addr blk, std::uint64_t stamp,
                           Addr va, const void* bytes, unsigned size);
    /// Lazy transition compare (grant / leaving-ReadWrite).
    void fastCompareBlock(NodeId n, Addr blk);
    /// Compare node n's actual block bytes against the shadow's valid
    /// bytes. -1: block unreadable (unmapped / oversized / DirNNB);
    /// 0: match; 1: mismatch (a "value" violation was reported).
    int blockVsShadow(NodeId n, Addr blk);
    void fastCheckBlock(Addr blk, shadow::BlockMeta& m);
    void fastStacheAudit(Addr blk, const shadow::BlockMeta& m);
    void fastDirnnbAudit(Addr blk, const shadow::BlockMeta& m);

    Machine& _m;
    Mode _mode;
    TyphoonMemSystem* _tms = nullptr;
    Stache* _stache = nullptr;
    DirMemSystem* _dms = nullptr;

    int _nodes = 0;
    std::uint32_t _blockSize = 0;
    std::uint32_t _pageSize = 0;
    unsigned _blkShift = 0;
    std::uint64_t _seed = 0;

    // Byte-granular data shadow (both modes).
    ShadowTable<shadow::DataLeaf> _data;
    // Fast mode: per-block metadata + per-node copy-word mirrors.
    ShadowTable<shadow::MetaLeaf> _meta;
    std::vector<ShadowTable<shadow::CopyLeaf>> _copy;
    std::vector<std::uint64_t> _epoch; ///< per-node write counters
    std::uint64_t _auxEpoch = 0; ///< stamps for non-write activity
    std::vector<std::pair<NodeId, Addr>> _lazyCmp;

    // Activity counters surfaced in --stats-json (obs.check.*): how
    // hard the shadow engine actually worked this run.
    Counter* _statAudits = nullptr;     ///< block audits performed
    Counter* _statLazyCmps = nullptr;   ///< lazy transition compares
    Counter* _statEpochWraps = nullptr; ///< epoch wraps (mass wipes)

    std::unordered_set<std::uint64_t> _exemptVpns;

    // Blocks ever touched by a tag/directory event: the universe the
    // checker validates. Message address args outside this set are
    // ignored (they may not be block addresses at all).  Fast mode
    // tracks the same facts in BlockMeta::flags instead.
    std::unordered_set<Addr> _seenBlocks;

    std::vector<Addr> _dirty; // blocks touched since last onEventEnd
    std::unordered_set<Addr> _dirtySet; // paranoid mode only

    std::unordered_map<Addr, int> _inflightByBlk;
    long _inflightTotal = 0;

    std::vector<TraceRec> _trace; // ring
    std::size_t _traceHead = 0;
    static constexpr std::size_t kTraceCap = 8192;

    std::vector<Violation> _violations;
    std::unordered_set<std::string> _violationKeys;
    static constexpr std::size_t kMaxViolations = 64;

    HostTimer* _telem = nullptr; ///< self-telemetry timer, opt-in

    std::uint64_t _eventsChecked = 0;
};

} // namespace tt

#endif // TT_CHECK_PROTOCOL_CHECKER_HH
