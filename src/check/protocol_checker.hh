/**
 * @file
 * ProtocolChecker — the coherence sanitizer (DESIGN.md §8).
 *
 * A DRD-style runtime verifier that observes every tag transition,
 * directory update, message send/delivery, and completed CPU access
 * through the CheckHooks interface, and validates global coherence
 * invariants after every protocol event:
 *
 *  - swmr: at most one writable copy of a block system-wide, and no
 *    readable copy coexisting with a writer.
 *  - dir-agreement: the directory entry (Stache home dir / DirNNB
 *    full-map entry) matches the per-node reality (tags or cache
 *    line states).  Documented slack is tolerated: stale sharer
 *    pointers after silent clean-copy drops, Busy tags during a
 *    pending fault, blocks with a live transient or an in-flight
 *    message referencing them.
 *  - table1-tag (Typhoon targets only): no ordinary read/write
 *    completes through an Invalid/Busy tag — reads need
 *    ReadOnly/ReadWrite, writes need ReadWrite, live at completion.
 *  - value: every coherent read returns the bytes of the last
 *    coherent write (shadow memory, byte-granular).
 *  - message-conservation / quiescence (at finalize()): no in-flight
 *    message outlives the run, every request was paired with its
 *    response (no open transients / MSHRs / pending misses).
 *
 * Pages mapped with a custom-protocol mode (mode >= 3, e.g. the EM3D
 * delayed-update protocol whose consumer copies are stale by design)
 * are exempt from swmr/dir-agreement/value checking.
 *
 * The checker is pure observer: it never schedules events, never
 * touches simulated state, and never stops the run (Machine::run
 * panics on a drained queue with unfinished processors, so a checker
 * abort would mask the violation).  Violations are recorded once per
 * (invariant, block) and reported at the end, together with a
 * per-block event trace for the first violation.
 */

#ifndef TT_CHECK_PROTOCOL_CHECKER_HH
#define TT_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/hooks.hh"
#include "core/tempest.hh"
#include "sim/types.hh"

namespace tt
{

class Machine;
class TyphoonMemSystem;
class Stache;
class DirMemSystem;

class ProtocolChecker final : public CheckHooks
{
  public:
    struct Violation
    {
        std::string invariant; ///< "swmr", "dir-agreement", ...
        Addr blk = 0;
        NodeId node = kNoNode;
        Tick tick = 0;
        std::string detail;
    };

    explicit ProtocolChecker(Machine& m);

    /// Attach to a Typhoon target (Stache or a Stache subclass).
    void attachTyphoon(TyphoonMemSystem& ms, Stache& protocol);
    /// Attach to the DirNNB all-hardware baseline.
    void attachDirnnb(DirMemSystem& ms);

    /// Record the perturbation seed for the failure report (0 = none).
    void setSeed(std::uint64_t seed) { _seed = seed; }

    // --- CheckHooks ---------------------------------------------------
    void onTagChange(NodeId n, Addr blk, AccessTag t) override;
    void onPageTags(NodeId n, Addr pageVa, AccessTag t) override;
    void onPageMap(NodeId n, Addr pageVa, std::uint8_t mode) override;
    void onPageUnmap(NodeId n, Addr pageVa) override;
    void onAccess(NodeId n, Addr va, unsigned size, bool isWrite,
                  const void* bytes) override;
    void onBackdoorWrite(Addr va, const void* bytes,
                         std::size_t len) override;
    void onBlockEvent(NodeId n, Addr blk, const char* what) override;
    void onMsgSend(const Message& m) override;
    void onMsgDeliver(const Message& m) override;
    void onEventEnd() override;

    /// End-of-run checks (conservation, quiescence). Call after run().
    void finalize();

    const std::vector<Violation>& violations() const
    {
        return _violations;
    }
    std::uint64_t eventsChecked() const { return _eventsChecked; }

    /**
     * Deterministic human-readable report: PASS line, or seed + first
     * violated invariant + the per-block event trace (the minimized
     * failure report the perturbation harness promises).
     */
    std::string report() const;

  private:
    /// Generic per-node summary of a block copy, protocol-agnostic.
    enum class Copy : std::uint8_t { None, Shared, Excl, Busy };

    struct ShadowPage
    {
        std::vector<std::uint8_t> data;
        std::vector<std::uint8_t> valid; // byte-granular
    };

    struct TraceRec
    {
        Tick tick = 0;
        NodeId node = kNoNode;
        Addr blk = 0;
        const char* what = nullptr;
    };

    void trace(NodeId n, Addr blk, const char* what);
    void markDirty(Addr blk);
    void markPageDirty(Addr pageVa);
    bool exempt(Addr blk) const
    {
        return _exemptVpns.count(blk / _pageSize) != 0;
    }
    bool inflight(Addr blk) const;
    void report_(const char* invariant, Addr blk, NodeId node,
                 std::string detail);

    ShadowPage& shadowPage(Addr va);
    void shadowWrite(Addr va, const void* bytes, std::size_t len);
    /// Compare bytes against shadow; report a "value" violation on
    /// mismatch. Bytes never coherently written are not checked.
    void shadowCheck(NodeId n, Addr va, const void* bytes,
                     std::size_t len);

    Copy copyState(NodeId n, Addr blk) const;
    void checkBlock(Addr blk);
    void checkSwmr(Addr blk);
    void checkStacheAgreement(Addr blk);
    void checkDirnnbAgreement(Addr blk);
    /// Read a block's bytes out of node-local memory (Typhoon only);
    /// false if the page is unmapped at that node.
    bool readNodeBlock(NodeId n, Addr blk, std::uint8_t* out) const;

    Machine& _m;
    TyphoonMemSystem* _tms = nullptr;
    Stache* _stache = nullptr;
    DirMemSystem* _dms = nullptr;

    int _nodes = 0;
    std::uint32_t _blockSize = 0;
    std::uint32_t _pageSize = 0;
    std::uint64_t _seed = 0;

    std::unordered_map<std::uint64_t, ShadowPage> _shadow; // by vpn
    std::unordered_set<std::uint64_t> _exemptVpns;

    // Blocks ever touched by a tag/directory event: the universe the
    // checker validates. Message address args outside this set are
    // ignored (they may not be block addresses at all).
    std::unordered_set<Addr> _seenBlocks;

    std::vector<Addr> _dirty; // blocks touched since last onEventEnd
    std::unordered_set<Addr> _dirtySet;

    std::unordered_map<Addr, int> _inflightByBlk;
    long _inflightTotal = 0;

    std::vector<TraceRec> _trace; // ring
    std::size_t _traceHead = 0;
    static constexpr std::size_t kTraceCap = 8192;

    std::vector<Violation> _violations;
    std::unordered_set<std::string> _violationKeys;
    static constexpr std::size_t kMaxViolations = 64;

    std::uint64_t _eventsChecked = 0;
};

} // namespace tt

#endif // TT_CHECK_PROTOCOL_CHECKER_HH
