/**
 * @file
 * ShadowTable — a Valgrind-style two-level shadow map (DESIGN.md §13).
 *
 * The address space is carved into fixed-size leaves; a primary table
 * of chunks (each chunk holding a small array of leaf pointers) maps a
 * key to its leaf.  Keys below the primary window index a flat vector
 * grown on demand; keys above it (message address arguments are not
 * guaranteed to be block addresses at all) fall into an auxiliary hash
 * map, exactly like memcheck's aux-primary split for the >32-bit
 * address space.
 *
 * Every slot that has never been written aliases one shared
 * *distinguished* leaf — the default-constructed, all-"no-access"
 * state — so an untouched gigabyte costs nothing and reads of
 * untouched state are a couple of pointer chases.  getWritable()
 * materializes a private copy of the distinguished leaf on first
 * write (copy-on-write).
 *
 * The packed per-(node,block) copy word and the per-block metadata
 * record used by the fast checker mode live here too, next to the
 * container they populate, so the epoch/stamp encoding can be unit
 * tested without a simulator (tests/check/test_shadow_map.cc).
 */

#ifndef TT_CHECK_SHADOW_MAP_HH
#define TT_CHECK_SHADOW_MAP_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * Two-level copy-on-write shadow map.
 *
 * @tparam Leaf         default-constructible payload; the
 *                      default-constructed instance is the
 *                      distinguished "no state" leaf.
 * @tparam kChunkBits   log2 of leaves per chunk.
 * @tparam kPrimaryBits log2 of the chunk count covered by the flat
 *                      primary vector; chunks beyond it live in the
 *                      auxiliary hash map.
 */
template <typename Leaf, unsigned kChunkBits = 6,
          unsigned kPrimaryBits = 20>
class ShadowTable
{
  public:
    /// Read-only lookup. Never materializes; untouched keys alias the
    /// shared distinguished leaf.
    const Leaf& get(std::uint64_t key) const
    {
        const Chunk* ch = findChunk(key >> kChunkBits);
        if (!ch)
            return _distinguished;
        const Leaf* l = ch->slot[key & kSlotMask].get();
        return l ? *l : _distinguished;
    }

    /// Mutable lookup: copy-on-write materializes the leaf (as a copy
    /// of the distinguished leaf) on first touch.
    Leaf& getWritable(std::uint64_t key)
    {
        Chunk& ch = chunkFor(key >> kChunkBits);
        std::unique_ptr<Leaf>& slot = ch.slot[key & kSlotMask];
        if (!slot) {
            slot = std::make_unique<Leaf>(_distinguished);
            ++_materialized;
        }
        return *slot;
    }

    /// True iff the key's leaf has been materialized (i.e. get() would
    /// not return the distinguished leaf).
    bool materialized(std::uint64_t key) const
    {
        const Chunk* ch = findChunk(key >> kChunkBits);
        return ch && ch->slot[key & kSlotMask] != nullptr;
    }

    const Leaf& distinguished() const { return _distinguished; }
    std::size_t leavesMaterialized() const { return _materialized; }

    /// Visit every materialized leaf (mutable) — used for the rare
    /// epoch-generation clear walk.
    template <typename F> void forEachLeaf(F&& f)
    {
        for (auto& ch : _primary)
            if (ch)
                for (auto& l : ch->slot)
                    if (l)
                        f(*l);
        for (auto& [k, ch] : _aux) {
            (void)k;
            for (auto& l : ch->slot)
                if (l)
                    f(*l);
        }
    }

  private:
    static constexpr std::uint64_t kSlotMask = (1ull << kChunkBits) - 1;
    static constexpr std::uint64_t kPrimaryChunks = 1ull << kPrimaryBits;

    struct Chunk
    {
        std::array<std::unique_ptr<Leaf>, 1ull << kChunkBits> slot;
    };

    const Chunk* findChunk(std::uint64_t c) const
    {
        if (c < _primary.size())
            return _primary[c].get();
        if (c < kPrimaryChunks)
            return nullptr;
        auto it = _aux.find(c);
        return it == _aux.end() ? nullptr : it->second.get();
    }

    Chunk& chunkFor(std::uint64_t c)
    {
        if (c < kPrimaryChunks) {
            if (c >= _primary.size())
                _primary.resize(c + 1);
            if (!_primary[c])
                _primary[c] = std::make_unique<Chunk>();
            return *_primary[c];
        }
        std::unique_ptr<Chunk>& p = _aux[c];
        if (!p)
            p = std::make_unique<Chunk>();
        return *p;
    }

    std::vector<std::unique_ptr<Chunk>> _primary;
    std::unordered_map<std::uint64_t, std::unique_ptr<Chunk>> _aux;
    Leaf _distinguished{};
    std::size_t _materialized = 0;
};

namespace shadow
{

/**
 * Per-(node, block) packed copy word, 64 bits:
 *
 *   [1:0]   tag        mirror of the node's copy state
 *                      (0 none, 1 shared, 2 exclusive, 3 busy —
 *                      numerically identical to AccessTag)
 *   [2]     validated  this node's view of the block's bytes was
 *                      verified against the shadow at `stamp`
 *   [31:16] writer+1   last-writer node of the validated stamp
 *   [47:32] epoch16    low 16 bits of the writer's epoch counter
 *   [63:48] gen16      next 16 bits of the writer's epoch counter
 *
 * A read is provably fresh — and skips all byte work — iff its node's
 * word is `validated` and its stamp equals the block's current stamp
 * (one 64-bit compare).  Any write bumps the writer's epoch and
 * restamps the block, so every stale word mismatches.  The 16-bit
 * epoch field wraps every 65536 writes; the gen16 field disambiguates
 * the next 2^16 wraps, and when a node's epoch crosses a 32-bit
 * boundary the checker clears every validated bit (clearValidated),
 * so a stamp can never falsely match across a full wrap.
 */
constexpr std::uint64_t kTagMask = 0x3;
constexpr std::uint64_t kValidatedMask = 0x4;
constexpr std::uint64_t kStampMask = 0xffff'ffff'ffff'0000ull;

/// Sentinel "writer" for stamps minted by non-write protocol activity
/// (backdoor pokes, handler dispatch, directory transitions).
constexpr std::uint32_t kAuxWriter = 0xffff;

inline std::uint64_t
packStamp(std::uint32_t writerPlus1, std::uint64_t epoch)
{
    return (static_cast<std::uint64_t>(writerPlus1 & 0xffff) << 16) |
           ((epoch & 0xffff) << 32) | (((epoch >> 16) & 0xffff) << 48);
}

inline std::uint64_t stampOf(std::uint64_t word)
{
    return word & kStampMask;
}

inline unsigned tagOf(std::uint64_t word)
{
    return static_cast<unsigned>(word & kTagMask);
}

inline bool validated(std::uint64_t word)
{
    return (word & kValidatedMask) != 0;
}

/// True when `epoch` (just incremented) crossed a 32-bit boundary:
/// the caller must clearValidated() on every copy table before any
/// stamp minted from it is compared.
inline bool epochWrapped(std::uint64_t epoch)
{
    return (epoch & 0xffff'ffffull) == 0;
}

/// Byte-granular data shadow: 4 KiB of address space per leaf plus a
/// written-bit per byte (bytes never coherently written are never
/// value-checked).
struct DataLeaf
{
    static constexpr unsigned kBytesLog2 = 12;
    static constexpr std::uint64_t kBytes = 1ull << kBytesLog2;
    std::array<std::uint8_t, kBytes> data{};
    std::array<std::uint64_t, kBytes / 64> valid{};

    bool validAt(std::uint64_t off) const
    {
        return (valid[off >> 6] >> (off & 63)) & 1;
    }
    void setValid(std::uint64_t off) { valid[off >> 6] |= 1ull << (off & 63); }
};

/// Per-node copy words for 512 consecutive blocks.
struct CopyLeaf
{
    static constexpr unsigned kBlocksLog2 = 9;
    std::array<std::uint64_t, 1ull << kBlocksLog2> word{};
};

/**
 * Per-block global metadata: the block's current stamp, mirror
 * sharer/writer population (counts always; bitmaps when the machine
 * has at most 64 nodes), and the flag bits the fast checker uses
 * instead of the paranoid mode's hash sets.
 */
struct BlockMeta
{
    std::uint64_t sharedBits = 0; ///< nodes < 64 holding a shared copy
    std::uint64_t exclBits = 0;   ///< nodes < 64 holding a writable copy
    std::uint64_t stamp = 0;      ///< current (writer, epoch) stamp
    std::uint16_t sharedCnt = 0;
    std::uint16_t exclCnt = 0;
    std::uint8_t flags = 0;

    static constexpr std::uint8_t kSeen = 1;   ///< in the checked universe
    static constexpr std::uint8_t kDirty = 2;  ///< touched since last audit
    static constexpr std::uint8_t kExempt = 4; ///< custom-protocol page
};

struct MetaLeaf
{
    static constexpr unsigned kBlocksLog2 = 7;
    std::array<BlockMeta, 1ull << kBlocksLog2> meta{};
};

/// Clear every validated bit in a per-node copy table (epoch
/// generation rollover — see the copy-word comment above).
inline void
clearValidated(ShadowTable<CopyLeaf>& t)
{
    t.forEachLeaf([](CopyLeaf& l) {
        for (std::uint64_t& w : l.word)
            w &= ~kValidatedMask;
    });
}

} // namespace shadow

} // namespace tt

#endif // TT_CHECK_SHADOW_MAP_HH
