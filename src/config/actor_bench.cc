#include "config/actor_bench.hh"

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hh"
#include "obs/recorder.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/parallel_engine.hh"
#include "sim/stats.hh"

namespace tt
{

namespace
{

constexpr HandlerId kActorHandler = 0xAC70'0001u;

/** splitmix64 finalizer — the per-event "CPU work" primitive. */
inline std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e37'79b9'7f4a'7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
    return x ^ (x >> 31);
}

struct Actor
{
    std::uint64_t state = 0;
    /**
     * XOR-accumulated arrival payloads, folded into state at the next
     * self event. XOR commutes, so same-tick arrival order can never
     * leak into the result — the property that makes the workload an
     * exact serial-vs-parallel equivalence oracle.
     */
    std::uint64_t inbox = 0;
};

} // namespace

ActorBenchResult
runActorBench(const ActorBenchParams& p)
{
    tt_assert(p.nodes > 1, "actor bench needs at least two nodes");
    tt_assert(p.netLatency % 2 == 1,
              "actor bench needs an odd net latency (self events run "
              "on even ticks, arrivals must stay on odd ticks)");
    tt_assert(p.horizon % 2 == 0, "horizon must be even");

    EventQueue eq;
    StatSet stats;
    NetworkParams np;
    np.latency = p.netLatency;
    np.injectPerPacket = 0; // departures stay on the (even) send tick
    Network net(eq, p.nodes, np, stats);

    std::unique_ptr<ParallelEngine> engine;
    if (p.threads > 0) {
        engine = std::make_unique<ParallelEngine>(
            eq, p.nodes, p.netLatency, p.threads);
        net.setEngine(engine.get());
    }

    std::unique_ptr<FlightRecorder> rec;
    if (p.record) {
        rec = std::make_unique<FlightRecorder>(p.nodes);
        if (engine)
            rec->enableSharded();
        rec->nameHandler(kActorHandler, "actor.msg");
        net.setRecorder(rec.get());
    }

    std::vector<Actor> actors(p.nodes);
    for (int n = 0; n < p.nodes; ++n)
        actors[n].state =
            mix(p.seed ^ (static_cast<std::uint64_t>(n) + 1));

    for (int n = 0; n < p.nodes; ++n) {
        net.setReceiver(
            n,
            [&actors](Message&& m) {
                const std::uint64_t pay =
                    static_cast<std::uint64_t>(m.args[0]) |
                    (static_cast<std::uint64_t>(m.args[1]) << 32);
                actors[m.dst].inbox ^=
                    mix(pay ^ static_cast<std::uint64_t>(m.src));
            },
            /*parallelSafe=*/engine != nullptr);
    }

    // Self-scheduling actor loop. In engine mode every event lives on
    // its node's lane; in serial mode everything goes through the
    // plain queue — identical simulated behavior either way.
    std::function<void(int, Tick)> selfEvent;
    auto scheduleSelf = [&](int n, Tick t) {
        auto cb = [&selfEvent, n, t] { selfEvent(n, t); };
        if (engine)
            engine->scheduleLane(n, t, std::move(cb));
        else
            eq.schedule(t, std::move(cb));
    };
    selfEvent = [&](int n, Tick t) {
        Actor& a = actors[n];
        a.state ^= a.inbox; // fold arrivals received so far
        for (int k = 0; k < p.workRounds; ++k)
            a.state = mix(a.state);
        if ((a.state & 3) == 0) {
            const std::uint64_t pay = mix(a.state ^ t);
            const int dst = static_cast<int>(
                (static_cast<std::uint64_t>(n) + 1 +
                 (a.state >> 8) % (p.nodes - 1)) %
                p.nodes);
            Message m;
            m.src = n;
            m.dst = dst;
            m.vnet = VNet::Request;
            m.handler = kActorHandler;
            m.args.push_back(
                static_cast<Word>(pay & 0xffff'ffffULL));
            m.args.push_back(static_cast<Word>(pay >> 32));
            net.send(std::move(m), t);
        }
        const Tick next = t + 2 + 2 * ((a.state >> 16) & 3);
        if (next <= p.horizon)
            scheduleSelf(n, next);
    };

    // Staggered even start ticks so lanes never begin in lockstep.
    for (int n = 0; n < p.nodes; ++n)
        scheduleSelf(n, 2 * (n % 8));

    const auto t0 = std::chrono::steady_clock::now();
    if (engine)
        engine->run();
    else
        eq.run();
    const auto t1 = std::chrono::steady_clock::now();

    ActorBenchResult r;
    r.events = engine ? engine->executed() : eq.executed();
    r.messages = stats.counter("net.messages").value();
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL;
    for (const Actor& a : actors) {
        h = mix(h ^ a.state);
        h = mix(h ^ a.inbox);
    }
    r.stateHash = h;
    if (rec)
        r.ringRecords = rec->recordCount();
    if (engine)
        r.parallelWindows = engine->parallelWindows();
    return r;
}

} // namespace tt
