/**
 * @file
 * Order-insensitive actor workload for benchmarking and cross-checking
 * the parallel engine (DESIGN.md §12).
 *
 * Each simulated node runs a self-scheduling actor: a private-state
 * event every other (even) tick that mixes the node's PRNG state and
 * occasionally fires a one-packet message at another node; arrivals
 * land on odd ticks (fixed network latency 11, no injection occupancy)
 * and fold the payload into the destination's inbox with XOR — a
 * commutative operation. Self events and arrivals therefore never
 * share a tick, and same-tick arrival order cannot affect any node's
 * state, so the workload's final state hash is identical whether it is
 * run through the plain serial EventQueue or through the ParallelEngine
 * at any thread count. That makes it both the apples-to-apples
 * events/sec benchmark (BENCH_simcore.json "parallel_engine") and the
 * serial-vs-parallel equivalence oracle the tests assert.
 */

#ifndef TT_CONFIG_ACTOR_BENCH_HH
#define TT_CONFIG_ACTOR_BENCH_HH

#include <cstdint>

#include "sim/types.hh"

namespace tt
{

struct ActorBenchParams
{
    int nodes = 64;
    /**
     * 0 = plain serial EventQueue (no engine at all — the baseline);
     * N >= 1 = ParallelEngine with N workers.
     */
    int threads = 0;
    Tick horizon = 100'000;  ///< last tick actors schedule work at
    Tick netLatency = 11;    ///< odd, so arrivals stay off even ticks
    int workRounds = 24;     ///< PRNG mixing rounds per event (CPU cost)
    std::uint64_t seed = 0x5eedULL;
    bool record = false;     ///< attach a sharded FlightRecorder
};

struct ActorBenchResult
{
    std::uint64_t events = 0;   ///< total events executed
    std::uint64_t messages = 0; ///< net.messages after the run
    std::uint64_t stateHash = 0;
    double wallMs = 0;          ///< run() wall-clock (setup excluded)
    std::uint64_t ringRecords = 0; ///< recorder records (record mode)
    std::uint64_t parallelWindows = 0; ///< 0 in serial-queue mode
};

/** Run the workload once with the given engine configuration. */
ActorBenchResult runActorBench(const ActorBenchParams& p);

} // namespace tt

#endif // TT_CONFIG_ACTOR_BENCH_HH
