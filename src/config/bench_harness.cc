#include "config/bench_harness.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tt
{

double
BenchReport::parallelEngineSpeedup() const
{
    double serial = 0, best = 0;
    for (const auto& e : parallelEngine) {
        if (e.threads == 0)
            serial = e.eventsPerSec();
        else
            best = std::max(best, e.eventsPerSec());
    }
    return serial > 0 && best > 0 ? best / serial : 0;
}

std::uint64_t
BenchReport::totalEvents() const
{
    std::uint64_t n = 0;
    for (const auto& c : cases)
        n += c.events;
    return n;
}

double
BenchReport::totalWallMs() const
{
    double ms = 0;
    for (const auto& c : cases)
        ms += c.wallMs;
    return ms;
}

double
BenchReport::eventsPerSec() const
{
    const double ms = totalWallMs();
    return ms > 0 ? totalEvents() / (ms / 1000.0) : 0;
}

double
BenchReport::checkerFastEventsPerSec() const
{
    return checkerFastWallMs > 0
               ? checkerFastEvents / (checkerFastWallMs / 1000.0)
               : 0;
}

double
BenchReport::checkerParanoidEventsPerSec() const
{
    return checkerParanoidWallMs > 0
               ? checkerParanoidEvents / (checkerParanoidWallMs / 1000.0)
               : 0;
}

double
BenchReport::traceOnEventsPerSec() const
{
    return traceOnWallMs > 0 ? traceOnEvents / (traceOnWallMs / 1000.0)
                             : 0;
}

double
BenchReport::analyzeOnEventsPerSec() const
{
    return analyzeOnWallMs > 0
               ? analyzeOnEvents / (analyzeOnWallMs / 1000.0)
               : 0;
}

double
BenchReport::txnOnEventsPerSec() const
{
    return txnOnWallMs > 0 ? txnOnEvents / (txnOnWallMs / 1000.0) : 0;
}

double
BenchReport::transportOnEventsPerSec() const
{
    return transportOnWallMs > 0
               ? transportOnEvents / (transportOnWallMs / 1000.0)
               : 0;
}

double
BenchReport::telemetryOnEventsPerSec() const
{
    return telemetryOnWallMs > 0
               ? telemetryOnEvents / (telemetryOnWallMs / 1000.0)
               : 0;
}

void
BenchReport::printTable(std::ostream& os) const
{
    char line[256];
    std::snprintf(line, sizeof line, "%-10s %-8s %-7s %14s %12s %9s\n",
                  "system", "app", "dataset", "cycles", "events",
                  "wall ms");
    os << line;
    for (const auto& c : cases) {
        std::snprintf(line, sizeof line,
                      "%-10s %-8s %-7s %14llu %12llu %9.1f\n",
                      c.system.c_str(), c.app.c_str(),
                      c.dataset.c_str(),
                      static_cast<unsigned long long>(c.cycles),
                      static_cast<unsigned long long>(c.events),
                      c.wallMs);
        os << line;
    }
    std::snprintf(line, sizeof line,
                  "total: %llu events in %.1f ms = %.0f events/sec\n",
                  static_cast<unsigned long long>(totalEvents()),
                  totalWallMs(), eventsPerSec());
    os << line;
    if (baselineEventsPerSec > 0) {
        std::snprintf(line, sizeof line,
                      "baseline: %.0f events/sec -> speedup %.2fx\n",
                      baselineEventsPerSec,
                      eventsPerSec() / baselineEventsPerSec);
        os << line;
    }
    if (checkerFastWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "checker on (fast): %.0f events/sec (%.2fx "
                      "slower than checker off)\n",
                      checkerFastEventsPerSec(),
                      eventsPerSec() / checkerFastEventsPerSec());
        os << line;
    }
    if (checkerParanoidWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "checker on (paranoid): %.0f events/sec (%.2fx "
                      "slower than checker off)\n",
                      checkerParanoidEventsPerSec(),
                      eventsPerSec() / checkerParanoidEventsPerSec());
        os << line;
    }
    if (traceOnWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "trace on: %.0f events/sec (%.2fx slower "
                      "than trace off)\n",
                      traceOnEventsPerSec(),
                      eventsPerSec() / traceOnEventsPerSec());
        os << line;
    }
    if (analyzeOnWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "analyze on: %.0f events/sec (%.2fx slower "
                      "than analyze off)\n",
                      analyzeOnEventsPerSec(),
                      eventsPerSec() / analyzeOnEventsPerSec());
        os << line;
    }
    if (txnOnWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "txn tracer on: %.0f events/sec (%.2fx slower "
                      "than tracer off)\n",
                      txnOnEventsPerSec(),
                      eventsPerSec() / txnOnEventsPerSec());
        os << line;
    }
    if (transportOnWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "faults+transport on: %.0f events/sec (%.2fx "
                      "slower than faults off, %llu retransmits)\n",
                      transportOnEventsPerSec(),
                      eventsPerSec() / transportOnEventsPerSec(),
                      static_cast<unsigned long long>(
                          transportOnRetransmits));
        os << line;
    }
    if (telemetryOnWallMs > 0) {
        std::snprintf(line, sizeof line,
                      "telemetry on: %.0f events/sec (%.2fx slower "
                      "than telemetry off)\n",
                      telemetryOnEventsPerSec(),
                      eventsPerSec() / telemetryOnEventsPerSec());
        os << line;
    }
    if (!memFootprint.empty()) {
        os << "memory footprint (em3d/small, telemetry probes):\n";
        for (const auto& e : memFootprint) {
            std::snprintf(line, sizeof line,
                          "  %-8s nodes=%-4d peak %12llu bytes "
                          "(%.0f B/node)\n",
                          e.system.c_str(), e.nodes,
                          static_cast<unsigned long long>(
                              e.totalPeakBytes),
                          e.peakBytesPerNode);
            os << line;
        }
    }
    if (!parallelEngine.empty()) {
        std::snprintf(line, sizeof line,
                      "parallel engine (actor workload, %d nodes, "
                      "lookahead %llu, host cores %u):\n",
                      parallelEngineNodes,
                      static_cast<unsigned long long>(
                          parallelEngineLookahead),
                      hostCores);
        os << line;
        for (const auto& e : parallelEngine) {
            std::snprintf(
                line, sizeof line,
                "  threads=%d%s %12llu events %9.1f ms = %.0f "
                "events/sec (hash %016llx)\n",
                e.threads, e.threads == 0 ? " (serial queue)" : "",
                static_cast<unsigned long long>(e.events), e.wallMs,
                e.eventsPerSec(),
                static_cast<unsigned long long>(e.stateHash));
            os << line;
        }
        if (parallelEngineSpeedup() > 0) {
            std::snprintf(line, sizeof line,
                          "  best engine vs serial queue: %.2fx\n",
                          parallelEngineSpeedup());
            os << line;
        }
    }
}

namespace
{

void
jsonEscape(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            os << '\\';
        os << ch;
    }
    os << '"';
}

void
jsonNumber(std::ostream& os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

} // namespace

void
BenchReport::writeJson(std::ostream& os) const
{
    os << "{\n";
    os << "  \"nodes\": " << nodes << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const BenchCase& c = cases[i];
        os << "    {\"system\": ";
        jsonEscape(os, c.system);
        os << ", \"app\": ";
        jsonEscape(os, c.app);
        os << ", \"dataset\": ";
        jsonEscape(os, c.dataset);
        os << ", \"threads\": " << c.threads;
        os << ", \"cycles\": " << c.cycles;
        os << ", \"events\": " << c.events;
        os << ", \"wall_ms\": ";
        jsonNumber(os, c.wallMs);
        os << ", \"checksum\": ";
        jsonNumber(os, c.checksum);
        os << ", \"net_messages\": " << c.netMessages;
        os << ", \"net_words\": " << c.netWords;
        os << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"total_events\": " << totalEvents() << ",\n";
    os << "  \"total_wall_ms\": ";
    jsonNumber(os, totalWallMs());
    os << ",\n  \"events_per_sec\": ";
    jsonNumber(os, eventsPerSec());
    if (baselineEventsPerSec > 0) {
        os << ",\n  \"baseline_events_per_sec\": ";
        jsonNumber(os, baselineEventsPerSec);
        os << ",\n  \"speedup\": ";
        jsonNumber(os, eventsPerSec() / baselineEventsPerSec);
        os << ",\n  \"baseline_note\": ";
        jsonEscape(os, baselineNote);
    }
    if (checkerFastWallMs > 0 || checkerParanoidWallMs > 0) {
        os << ",\n  \"checker_overhead_v2\": {";
        bool first = true;
        if (checkerFastWallMs > 0) {
            os << "\n    \"fast\": {\"events\": " << checkerFastEvents
               << ", \"wall_ms\": ";
            jsonNumber(os, checkerFastWallMs);
            os << ", \"events_per_sec_check_on\": ";
            jsonNumber(os, checkerFastEventsPerSec());
            os << ", \"slowdown_vs_check_off\": ";
            jsonNumber(os, eventsPerSec() / checkerFastEventsPerSec());
            os << "}";
            first = false;
        }
        if (checkerParanoidWallMs > 0) {
            os << (first ? "" : ",") << "\n    \"paranoid\": {\"events\": "
               << checkerParanoidEvents << ", \"wall_ms\": ";
            jsonNumber(os, checkerParanoidWallMs);
            os << ", \"events_per_sec_check_on\": ";
            jsonNumber(os, checkerParanoidEventsPerSec());
            os << ", \"slowdown_vs_check_off\": ";
            jsonNumber(os,
                       eventsPerSec() / checkerParanoidEventsPerSec());
            os << "}";
        }
        os << "\n  }";
    }
    if (traceOnWallMs > 0) {
        os << ",\n  \"trace_overhead\": {\"events\": " << traceOnEvents
           << ", \"wall_ms\": ";
        jsonNumber(os, traceOnWallMs);
        os << ", \"events_per_sec_trace_on\": ";
        jsonNumber(os, traceOnEventsPerSec());
        os << ", \"slowdown_vs_trace_off\": ";
        jsonNumber(os, eventsPerSec() / traceOnEventsPerSec());
        os << "}";
    }
    if (analyzeOnWallMs > 0) {
        os << ",\n  \"analyze_overhead\": {\"events\": "
           << analyzeOnEvents << ", \"wall_ms\": ";
        jsonNumber(os, analyzeOnWallMs);
        os << ", \"events_per_sec_analyze_on\": ";
        jsonNumber(os, analyzeOnEventsPerSec());
        os << ", \"slowdown_vs_analyze_off\": ";
        jsonNumber(os, eventsPerSec() / analyzeOnEventsPerSec());
        os << "}";
    }
    if (txnOnWallMs > 0) {
        os << ",\n  \"txn_trace_overhead\": {\"events\": "
           << txnOnEvents << ", \"wall_ms\": ";
        jsonNumber(os, txnOnWallMs);
        os << ", \"events_per_sec_txn_on\": ";
        jsonNumber(os, txnOnEventsPerSec());
        os << ", \"slowdown_vs_txn_off\": ";
        jsonNumber(os, eventsPerSec() / txnOnEventsPerSec());
        os << "}";
    }
    if (transportOnWallMs > 0) {
        os << ",\n  \"reliable_transport_overhead\": {\"faults\": ";
        jsonEscape(os, transportFaultSpec);
        os << ", \"events\": " << transportOnEvents
           << ", \"wall_ms\": ";
        jsonNumber(os, transportOnWallMs);
        os << ", \"events_per_sec_faults_on\": ";
        jsonNumber(os, transportOnEventsPerSec());
        os << ", \"slowdown_vs_faults_off\": ";
        jsonNumber(os, eventsPerSec() / transportOnEventsPerSec());
        os << ", \"retransmits\": " << transportOnRetransmits << "}";
    }
    if (telemetryOnWallMs > 0) {
        os << ",\n  \"telemetry_overhead\": {\"events\": "
           << telemetryOnEvents << ", \"wall_ms\": ";
        jsonNumber(os, telemetryOnWallMs);
        os << ", \"events_per_sec_telemetry_on\": ";
        jsonNumber(os, telemetryOnEventsPerSec());
        os << ", \"slowdown_vs_telemetry_off\": ";
        jsonNumber(os, eventsPerSec() / telemetryOnEventsPerSec());
        os << "}";
    }
    if (!memFootprint.empty()) {
        os << ",\n  \"mem_footprint\": {\"app\": \"em3d\", "
              "\"dataset\": \"small\", \"host_cores\": "
           << hostCores << ", \"entries\": [\n";
        for (std::size_t i = 0; i < memFootprint.size(); ++i) {
            const MemFootprintEntry& e = memFootprint[i];
            os << "    {\"system\": ";
            jsonEscape(os, e.system);
            os << ", \"nodes\": " << e.nodes
               << ", \"total_peak_bytes\": " << e.totalPeakBytes
               << ", \"peak_bytes_per_node\": ";
            jsonNumber(os, e.peakBytesPerNode);
            os << ", \"subsystems\": {";
            for (std::size_t j = 0; j < e.subsystems.size(); ++j) {
                os << (j ? ", " : "");
                jsonEscape(os, e.subsystems[j].name);
                os << ": " << e.subsystems[j].peakBytes;
            }
            os << "}}" << (i + 1 < memFootprint.size() ? "," : "")
               << "\n";
        }
        os << "  ]}";
    }
    if (!parallelEngine.empty()) {
        char hex[32];
        os << ",\n  \"parallel_engine\": {\"nodes\": "
           << parallelEngineNodes
           << ", \"lookahead\": " << parallelEngineLookahead
           << ", \"host_cores\": " << hostCores
           << ", \"entries\": [\n";
        for (std::size_t i = 0; i < parallelEngine.size(); ++i) {
            const ParallelEngineEntry& e = parallelEngine[i];
            std::snprintf(hex, sizeof hex, "%016llx",
                          static_cast<unsigned long long>(e.stateHash));
            os << "    {\"threads\": " << e.threads
               << ", \"events\": " << e.events << ", \"wall_ms\": ";
            jsonNumber(os, e.wallMs);
            os << ", \"events_per_sec\": ";
            jsonNumber(os, e.eventsPerSec());
            os << ", \"parallel_windows\": " << e.parallelWindows
               << ", \"state_hash\": \"" << hex << "\"}"
               << (i + 1 < parallelEngine.size() ? "," : "") << "\n";
        }
        os << "  ]";
        if (parallelEngineSpeedup() > 0) {
            os << ", \"best_speedup_vs_serial\": ";
            jsonNumber(os, parallelEngineSpeedup());
        }
        os << "}";
    }
    os << "\n}\n";
}

bool
BenchReport::writeJsonFile(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f);
    return f.good();
}

BenchCase
runBenchCase(const std::string& system, const std::string& appName,
             DataSet ds, int scale, const MachineConfig& cfg,
             BenchTelemetry* telem)
{
    TargetMachine target;
    std::unique_ptr<BenchApp> app;

    if (system == "dirnnb") {
        target = buildDirNNB(cfg);
    } else if (system == "stache") {
        target = buildTyphoonStache(cfg);
    } else if (system == "migratory") {
        target = buildTyphoonMigratory(cfg);
    } else if (system == "update") {
        tt_assert(appName == "em3d",
                  "system 'update' supports only em3d");
        target = buildTyphoonEm3dUpdate(cfg);
    } else {
        tt_fatal("unknown bench system: ", system);
    }

    if (system == "update") {
        app = std::make_unique<Em3dApp>(em3dParams(ds, 0.2, scale),
                                        Em3dApp::Mode::Update,
                                        target.em3d);
    } else {
        app = makeWorkload(appName, ds, scale);
    }

    if (target.telemetry)
        target.telemetry->runBegin();
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = target.run(*app);
    const auto t1 = std::chrono::steady_clock::now();
    if (target.telemetry) {
        target.telemetry->runEnd();
        target.telemetry->finalize();
        if (telem) {
            telem->present = true;
            telem->totalPeakBytes = target.telemetry->totalPeakBytes();
            telem->peakBytesPerNode =
                target.telemetry->peakBytesPerNode();
            telem->subsystems = target.telemetry->probeResults();
        }
    }

    BenchCase c;
    c.system = system;
    c.app = appName;
    c.threads = cfg.core.threads;
    c.dataset = dataSetName(ds);
    c.cycles = r.execTime;
    c.events = r.events;
    c.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    c.checksum = app->checksum();
    if (target.obs)
        target.obs->finalize();
    const StatSet& stats = target.machine->stats();
    c.netMessages = stats.get("net.messages");
    c.netWords = stats.get("net.words");
    c.netRetransmits = stats.get("net.retransmits");
    return c;
}

} // namespace tt
