/**
 * @file
 * Wall-clock benchmarking of the simulator itself (not the simulated
 * machine): how many kernel events per second the host executes.
 *
 * Used by bench/bench_simcore.cpp and ttsim --bench-json to produce a
 * machine-readable JSON report, so optimisation work on the
 * simulation core can be tracked against a recorded baseline.
 *
 * Timing methodology: each case builds a fresh target machine, then
 * wall-clocks Machine::run() only (construction and workload setup
 * are excluded). Simulated results (cycles, checksum) are reported
 * alongside so a speedup can never come from simulating less.
 */

#ifndef TT_CONFIG_BENCH_HARNESS_HH
#define TT_CONFIG_BENCH_HARNESS_HH

#include <ostream>
#include <string>
#include <vector>

#include "apps/workloads.hh"
#include "config/builders.hh"

namespace tt
{

/** One timed simulation run. */
struct BenchCase
{
    std::string system;       ///< dirnnb | stache | migratory | update
    std::string app;
    std::string dataset;
    int threads = 1;          ///< parallel-engine workers (1 = serial)
    Tick cycles = 0;          ///< simulated execution time
    std::uint64_t events = 0; ///< kernel events executed
    double wallMs = 0;        ///< host wall-clock for Machine::run()
    double checksum = 0;      ///< application result checksum

    // Pulled straight from the run's StatSet (machine-readable stat
    // handles, not re-parsed dump() text).
    std::uint64_t netMessages = 0;
    std::uint64_t netWords = 0;
    std::uint64_t netRetransmits = 0; ///< 0 unless faults are on
};

/**
 * One parallel-engine scaling point: the actor workload
 * (config/actor_bench.hh) run at a given worker count.
 */
struct ParallelEngineEntry
{
    int threads = 0;            ///< 0 = plain serial EventQueue
    std::uint64_t events = 0;
    double wallMs = 0;
    std::uint64_t stateHash = 0;
    std::uint64_t parallelWindows = 0;

    double eventsPerSec() const
    {
        return wallMs > 0 ? events / (wallMs / 1000.0) : 0;
    }
};

/** An aggregated report over a set of cases. */
struct BenchReport
{
    int nodes = 0;
    int scale = 0;
    std::vector<BenchCase> cases;

    /** If > 0, a reference events/sec to compute speedup against. */
    double baselineEventsPerSec = 0;
    std::string baselineNote;

    /**
     * Coherence-sanitizer overhead (bench_simcore): the same grid
     * re-run with the checker attached, once per mode (DESIGN.md
     * §13). `fast` is the default shadow engine — the one the ≤4x
     * always-on bound applies to; `paranoid` is the byte-granular
     * oracle, recorded for reference. wall_ms == 0 means "not
     * measured" and the JSON omits that half of the
     * `checker_overhead_v2` entry.
     */
    double checkerFastWallMs = 0;
    std::uint64_t checkerFastEvents = 0;
    double checkerParanoidWallMs = 0;
    std::uint64_t checkerParanoidEvents = 0;

    /**
     * Flight-recorder overhead: the same grid re-run with a recorder
     * attached (ring + profiler + trace stream). Same "0 = not
     * measured" convention as the checker entry.
     */
    double traceOnWallMs = 0;
    std::uint64_t traceOnEvents = 0;

    /**
     * Sharing-analyzer overhead: the same grid re-run with the
     * recorder attached and the analyzer folding every access
     * (--analyze, DESIGN.md §11). Same "0 = not measured" convention.
     */
    double analyzeOnWallMs = 0;
    std::uint64_t analyzeOnEvents = 0;

    /**
     * Transaction-tracer overhead: the same grid re-run with the
     * coherence-transaction tracer folding the record stream
     * (--trace-critical, DESIGN.md §14; implies the sharing
     * analyzer). Must stay at or below the flight-recorder
     * (`trace_overhead`) slowdown. Same "0 = not measured"
     * convention.
     */
    double txnOnWallMs = 0;
    std::uint64_t txnOnEvents = 0;

    /**
     * Reliable-transport-over-lossy-fabric overhead: the same grid
     * re-run with a fault mix injected and the user-level transport
     * repairing it (DESIGN.md §10). Unlike the checker/trace passes
     * the simulated cycle counts legitimately differ (retransmission
     * traffic is real); application checksums must still match.
     * Same "0 = not measured" convention.
     */
    double transportOnWallMs = 0;
    std::uint64_t transportOnEvents = 0;
    std::uint64_t transportOnRetransmits = 0;
    std::string transportFaultSpec;

    /**
     * Self-telemetry overhead (--telemetry, DESIGN.md §16): the same
     * grid re-run with the telemetry module attached (memory probes +
     * sampled host timer + counter refresh). The ISSUE bound is
     * ≤1.05x — telemetry must be cheap enough to leave on in any
     * measurement run. Same "0 = not measured" convention.
     */
    double telemetryOnWallMs = 0;
    std::uint64_t telemetryOnEvents = 0;

    /**
     * Per-subsystem resident-memory sweep (DESIGN.md §16): em3d/small
     * at increasing node counts on both systems, with the telemetry
     * memory probes recording peak bytes by subsystem. An empty
     * vector means "not measured" and the JSON omits the section.
     */
    struct MemFootprintEntry
    {
        std::string system;
        int nodes = 0;
        std::uint64_t totalPeakBytes = 0;
        double peakBytesPerNode = 0;
        std::vector<Telemetry::ProbeResult> subsystems;
    };
    std::vector<MemFootprintEntry> memFootprint;

    /**
     * Parallel-engine scaling sweep (DESIGN.md §12): the
     * order-insensitive actor workload run through the plain serial
     * queue (threads == 0) and the ParallelEngine at increasing
     * worker counts. Every entry must report the same stateHash —
     * that is the determinism cross-check, asserted by the sweep
     * before the report is written. An empty vector means "not
     * measured" and the JSON omits the section. hostCores records
     * std::thread::hardware_concurrency() at measurement time so a
     * reader can tell whether the host could physically scale.
     */
    std::vector<ParallelEngineEntry> parallelEngine;
    int parallelEngineNodes = 0;
    Tick parallelEngineLookahead = 0;
    unsigned hostCores = 0;

    /** Best engine entry's ev/s over the serial (threads==0) entry. */
    double parallelEngineSpeedup() const;

    std::uint64_t totalEvents() const;
    double totalWallMs() const;
    double eventsPerSec() const;
    double checkerFastEventsPerSec() const;
    double checkerParanoidEventsPerSec() const;
    double traceOnEventsPerSec() const;
    double analyzeOnEventsPerSec() const;
    double txnOnEventsPerSec() const;
    double transportOnEventsPerSec() const;
    double telemetryOnEventsPerSec() const;

    /** Pretty per-case table for humans. */
    void printTable(std::ostream& os) const;
    /** Machine-readable report (stable key order). */
    void writeJson(std::ostream& os) const;
    /** writeJson to @p path; returns false on I/O failure. */
    bool writeJsonFile(const std::string& path) const;
};

/**
 * Telemetry read-out of one bench run (the TargetMachine is torn down
 * inside runBenchCase, so the probe results are copied out here).
 * present stays false unless cfg.obs.telemetry was set.
 */
struct BenchTelemetry
{
    bool present = false;
    std::uint64_t totalPeakBytes = 0;
    double peakBytesPerNode = 0;
    std::vector<Telemetry::ProbeResult> subsystems;
};

/**
 * Build the named target system, run @p app name on it, and wall-clock
 * the run. Systems follow the ttsim names; "update" requires em3d.
 * When @p telem is non-null and cfg.obs.telemetry is on, the memory
 * probe results are copied into it before the machine is destroyed.
 */
BenchCase runBenchCase(const std::string& system,
                       const std::string& appName, DataSet ds,
                       int scale, const MachineConfig& cfg,
                       BenchTelemetry* telem = nullptr);

} // namespace tt

#endif // TT_CONFIG_BENCH_HARNESS_HH
