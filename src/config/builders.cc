#include "config/builders.hh"

#include <iomanip>

namespace tt
{

namespace
{

/**
 * Wire the sanitizer into a freshly built Typhoon/Stache-family
 * target: one checker observes the memory system, the protocol, and
 * the network. Perturbation of same-tick order is applied to the
 * machine's event queue here so callers only have to pick the queue
 * mode (ReferenceHeap) before building.
 */
void
attachCheckerTyphoon(TargetMachine& t, const CheckConfig& cc)
{
    if (!cc.enable)
        return;
    t.checker = std::make_unique<ProtocolChecker>(*t.machine);
    t.checker->attachTyphoon(*t.typhoon, *t.protocol);
    t.typhoon->setChecker(t.checker.get());
    t.protocol->setChecker(t.checker.get());
    t.network->setChecker(t.checker.get());
    if (cc.perturb) {
        t.checker->setSeed(cc.perturbSeed);
        t.machine->eq().setPerturb(cc.perturbSeed);
    }
}

/**
 * Attach a FlightRecorder to an assembled target. Rings are kept
 * whenever the recorder exists (that is the crash flight recorder,
 * wanted under --check even without --trace); the exporter, profiler,
 * and sampler are each opt-in via ObsConfig.
 */
void
attachObserver(TargetMachine& t, const MachineConfig& cfg)
{
    const ObsConfig& oc = cfg.obs;
    if (!oc.enable && !cfg.check.enable)
        return;
    t.obs = std::make_unique<FlightRecorder>(cfg.core.nodes,
                                             oc.ringCapacity);
    t.network->setRecorder(t.obs.get());
    if (t.typhoon)
        t.typhoon->setRecorder(t.obs.get());
    if (t.dir)
        t.dir->setRecorder(t.obs.get());
    if (t.protocol)
        t.protocol->describeHandlers(*t.obs);
    if (!oc.traceFile.empty())
        t.obs->openTrace(oc.traceFile);
    if (oc.enable && oc.profile)
        t.obs->enableProfiler(t.machine->stats());
    if (oc.samplePeriod > 0)
        t.obs->enableSampler(t.machine->stats(), oc.samplePeriod);
    t.obs->installCrashDump();
}

} // namespace

TargetMachine
buildDirNNB(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    t.dir = std::make_unique<DirMemSystem>(*t.machine, *t.network,
                                           cfg.dir);
    t.machine->setMemSystem(t.dir.get());
    if (cfg.check.enable) {
        t.checker = std::make_unique<ProtocolChecker>(*t.machine);
        t.checker->attachDirnnb(*t.dir);
        t.dir->setChecker(t.checker.get());
        t.network->setChecker(t.checker.get());
        if (cfg.check.perturb) {
            t.checker->setSeed(cfg.check.perturbSeed);
            t.machine->eq().setPerturb(cfg.check.perturbSeed);
        }
    }
    attachObserver(t, cfg);
    return t;
}

TargetMachine
buildTyphoonStache(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    t.typhoon = std::make_unique<TyphoonMemSystem>(
        *t.machine, *t.network, cfg.typhoon);
    t.protocol =
        std::make_unique<Stache>(*t.machine, *t.typhoon, cfg.stache);
    t.machine->setMemSystem(t.typhoon.get());
    attachCheckerTyphoon(t, cfg.check);
    attachObserver(t, cfg);
    return t;
}

TargetMachine
buildTyphoonEm3dUpdate(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    t.typhoon = std::make_unique<TyphoonMemSystem>(
        *t.machine, *t.network, cfg.typhoon);
    auto proto = std::make_unique<Em3dUpdateProtocol>(
        *t.machine, *t.typhoon, cfg.stache);
    t.em3d = proto.get();
    t.protocol = std::move(proto);
    t.machine->setMemSystem(t.typhoon.get());
    attachCheckerTyphoon(t, cfg.check);
    attachObserver(t, cfg);
    return t;
}

TargetMachine
buildTyphoonMigratory(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    t.typhoon = std::make_unique<TyphoonMemSystem>(
        *t.machine, *t.network, cfg.typhoon);
    auto proto = std::make_unique<MigratoryProtocol>(
        *t.machine, *t.typhoon, cfg.stache);
    t.migratory = proto.get();
    t.protocol = std::move(proto);
    t.machine->setMemSystem(t.typhoon.get());
    attachCheckerTyphoon(t, cfg.check);
    attachObserver(t, cfg);
    return t;
}

void
printTable2(std::ostream& os, const MachineConfig& cfg)
{
    auto row = [&](const char* name, auto value, const char* unit) {
        os << "  " << std::left << std::setw(34) << name << value
           << " " << unit << "\n";
    };
    os << "Table 2: simulation parameters\n";
    os << "Common\n";
    row("Nodes", cfg.core.nodes, "");
    row("CPU cache", cfg.core.cacheSize / 1024, "KB, 4-way, random");
    row("Block size", cfg.core.blockSize, "bytes");
    row("CPU TLB", cfg.core.tlbEntries, "ent., fully assoc., FIFO");
    row("Page size", cfg.core.pageSize, "bytes");
    row("Local cache miss", cfg.core.localMissLatency, "cycles");
    row("Local writeback", 0, "cycles (perfect write buffer)");
    row("TLB miss", cfg.core.tlbMissLatency, "cycles");
    row("Network latency", cfg.net.latency, "cycles");
    row("Barrier latency", cfg.core.barrierLatency, "cycles");
    os << "DirNNB only\n";
    row("Remote miss issue", cfg.dir.remoteMissIssue, "cycles");
    row("Remote miss finish", cfg.dir.remoteMissFinish, "cycles");
    row("Replacement (shared/excl)", cfg.dir.replaceShared, "");
    row("  .. exclusive", cfg.dir.replaceExclusive, "cycles");
    row("Remote invalidate", cfg.dir.invProcess, "cycles + repl");
    row("Directory op base", cfg.dir.dirOpBase, "cycles");
    row("  + block received", cfg.dir.dirBlockRecv, "cycles");
    row("  + per message sent", cfg.dir.dirPerMsg, "cycles");
    row("  + block sent", cfg.dir.dirBlockSend, "cycles");
    os << "Typhoon only\n";
    row("NP TLB / RTLB", cfg.typhoon.rtlbEntries,
        "ent., fully assoc., FIFO");
    row("(R)TLB miss", cfg.typhoon.npTlbMissLatency, "cycles");
    row("NP D-cache", cfg.typhoon.npDcacheSize / 1024, "KB, 2-way");
    row("NP dispatch", cfg.typhoon.dispatchCost, "cycles");
    row("BAF detect", cfg.typhoon.bafDetectCost, "cycles");
    row("Resume", cfg.typhoon.resumeCost, "cycles");
    row("Block transfer (BXB)", cfg.typhoon.blockXferCost,
        "cycles / 32B");
}

} // namespace tt
