#include "config/builders.hh"

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "sim/logging.hh"

namespace tt
{

namespace
{

/**
 * Build the sharded parallel engine when the config asks for more
 * than one worker (DESIGN.md §12). The lookahead window is the
 * minimum network latency — the smallest distance any cross-node
 * event can travel, which is what makes a window causally closed.
 */
void
attachEngine(TargetMachine& t, const MachineConfig& cfg)
{
    if (cfg.core.threads <= 1)
        return;
    if (cfg.check.enable) {
        // The sanitizer's shadow state is single-threaded by design
        // (hooks fire from every shard); checked runs use the serial
        // cross-check engine. Results are byte-identical either way.
        tt_warn("--check forces the serial engine (requested ",
                cfg.core.threads, " threads)");
        return;
    }
    if (cfg.recovery.checkpointEpoch > 0 ||
        !cfg.faults.crashes.empty()) {
        // Checkpoint/restart and crash rollback are defined on the
        // serial calendar queue (jumpTo/clearPending have no sharded
        // equivalent); both force the serial engine.
        tt_warn("--checkpoint/crash faults force the serial engine "
                "(requested ",
                cfg.core.threads, " threads)");
        return;
    }
    const ObsConfig& oc = cfg.obs;
    if (!oc.traceFile.empty() || oc.samplePeriod > 0 || oc.analyze ||
        oc.txn || (oc.enable && oc.profile)) {
        // Stream consumers (trace writer, sampler, analyzers,
        // profiler) serialize the whole record stream; like --check
        // they force the serial engine. Results are byte-identical
        // either way (asserted in tests/config/test_threads_identity).
        tt_warn("--trace/--analyze/--trace-critical force the serial "
                "engine (requested ",
                cfg.core.threads, " threads)");
        return;
    }
    t.machine->enableParallel(cfg.core.threads,
                              std::max<Tick>(1, cfg.net.latency));
    t.network->setEngine(t.machine->engine());
}

/**
 * Wire the sanitizer into a freshly built Typhoon/Stache-family
 * target: one checker observes the memory system, the protocol, and
 * the network. Perturbation of same-tick order is applied to the
 * machine's event queue here so callers only have to pick the queue
 * mode (ReferenceHeap) before building.
 */
void
attachCheckerTyphoon(TargetMachine& t, const CheckConfig& cc)
{
    if (!cc.enable)
        return;
    t.checker = std::make_unique<ProtocolChecker>(*t.machine, cc.mode);
    t.checker->attachTyphoon(*t.typhoon, *t.protocol);
    t.typhoon->setChecker(t.checker.get());
    t.protocol->setChecker(t.checker.get());
    t.network->setChecker(t.checker.get());
    if (cc.perturb) {
        t.checker->setSeed(cc.perturbSeed);
        t.machine->eq().setPerturb(cc.perturbSeed);
    }
}

/**
 * Attach a FlightRecorder to an assembled target. Rings are kept
 * whenever the recorder exists (that is the crash flight recorder,
 * wanted under --check even without --trace); the exporter, profiler,
 * and sampler are each opt-in via ObsConfig.
 */
void
attachObserver(TargetMachine& t, const MachineConfig& cfg)
{
    // A recorder also rides along whenever faults are injected, so a
    // watchdog trip or fault-induced panic comes with the crash-ring
    // tail (DESIGN.md §10).
    const ObsConfig& oc = cfg.obs;
    if (!oc.enable && !oc.analyze && !oc.txn && !cfg.check.enable &&
        !cfg.faults.any()) {
        return;
    }
    t.obs = std::make_unique<FlightRecorder>(cfg.core.nodes,
                                             oc.ringCapacity);
    t.network->setRecorder(t.obs.get());
    if (t.typhoon)
        t.typhoon->setRecorder(t.obs.get());
    if (t.dir)
        t.dir->setRecorder(t.obs.get());
    if (t.protocol)
        t.protocol->describeHandlers(*t.obs);
    if (!oc.traceFile.empty())
        t.obs->openTrace(oc.traceFile);
    if (oc.enable && oc.profile)
        t.obs->enableProfiler(t.machine->stats());
    if (oc.samplePeriod > 0)
        t.obs->enableSampler(t.machine->stats(), oc.samplePeriod);
    if (oc.analyze || oc.txn) {
        // --trace-critical implies the sharing analyzer: the
        // critical-path report joins per-transaction latency against
        // its per-block pattern classification (DESIGN.md §14).
        t.obs->enableSharing(cfg.core.blockSize, cfg.core.pageSize);
    }
    if (oc.txn)
        t.obs->enableTxn(t.machine->stats(), cfg.core.blockSize,
                         cfg.core.pageSize);
    t.obs->installCrashDump();
}

/**
 * Arm the robustness stack (DESIGN.md §10) on an assembled target:
 * the seeded fault injector on the network, the reliable transport
 * above it (unless explicitly disabled — the negative control), and
 * the progress watchdog probing the memory system and transport. All
 * three follow the null-pointer opt-in pattern, so a fault-free build
 * is untouched. Must run after attachObserver (the trip dump needs
 * the recorder). The lambdas capture raw pointers into unique_ptr
 * targets, which stay valid across the TargetMachine move.
 */
void
attachRobustness(TargetMachine& t, const MachineConfig& cfg)
{
    if (!cfg.faults.any())
        return;
    StatSet& stats = t.machine->stats();
    t.faults = std::make_unique<SeededFaultModel>(cfg.core.nodes,
                                                  cfg.faults, stats);
    t.network->setFaults(t.faults.get());
    if (cfg.reliable.enable) {
        t.transport = std::make_unique<ReliableTransport>(
            t.machine->eq(), *t.network, cfg.reliable, stats);
        t.network->setTransport(t.transport.get());
    }
    MemorySystem* ms = t.typhoon
                           ? static_cast<MemorySystem*>(t.typhoon.get())
                           : static_cast<MemorySystem*>(t.dir.get());
    if (!cfg.faults.crashes.empty()) {
        // Crash-stop failures need the reliable transport: survivors
        // observe a crash through its dead-link declaration, and the
        // recovery quiesce/ack handshake rides the retried path.
        tt_assert(t.transport,
                  "crash faults require the reliable transport "
                  "(drop --no-reliable)");
        t.recovery = std::make_unique<RecoveryCoordinator>(
            *t.machine, *t.network, *ms, *t.transport, t.faults.get(),
            t.checker.get(), cfg.faults.crashes);
        if (t.typhoon)
            t.recovery->attachTyphoon(*t.typhoon);
        else
            t.recovery->attachDirnnb(*t.dir);
        t.recovery->arm();
    }
    if (cfg.watchdog.enable) {
        ReliableTransport* tr = t.transport.get();
        FlightRecorder* obs = t.obs.get();
        RecoveryCoordinator* rec = t.recovery.get();
        Counter& trips = stats.counter("obs.watchdog.trips");
        t.watchdog = std::make_unique<Watchdog>(
            t.machine->eq(), cfg.watchdog.horizon,
            [ms, tr] {
                Tick oldest = ms->oldestPendingSince();
                if (tr)
                    oldest =
                        std::min(oldest, tr->oldestUnackedSince());
                return oldest;
            },
            [obs, tr, rec, &trips](Tick oldest, Tick now) {
                trips.inc();
                std::cerr << "watchdog: operation open since tick "
                          << oldest << ", now " << now << "\n";
                if (tr) {
                    // Name the stalled work: the oldest unacked
                    // transport entries with their transaction ids,
                    // so a hang report joins directly against the
                    // --trace-critical transaction log.
                    std::cerr << "watchdog: oldest unacked messages:\n";
                    tr->describeOldest(std::cerr);
                }
                if (rec)
                    rec->describeRecovery(std::cerr);
                std::cerr << "watchdog: flight-recorder tail:\n";
                if (obs)
                    obs->dumpTail(std::cerr);
            });
        t.watchdog->arm();
        if (t.recovery)
            t.recovery->setWatchdog(t.watchdog.get());
    }
}

/**
 * Arm the checkpoint manager (ttsim --checkpoint, DESIGN.md §15).
 * Fault-free runs only — it shares the barrier epoch-hook slot with
 * the recovery coordinator, and a checkpoint of a faulted run would
 * bake transient fault state into the file. Must run after
 * attachRobustness so the exclusivity assert sees the coordinator.
 */
void
attachCheckpoint(TargetMachine& t, const MachineConfig& cfg)
{
    if (cfg.recovery.checkpointEpoch == 0)
        return;
    tt_assert(!cfg.faults.any(),
              "--checkpoint requires a fault-free run");
    tt_assert(!t.recovery, "checkpoint and crash recovery both want "
                           "the barrier epoch hook");
    MemorySystem* ms = t.typhoon
                           ? static_cast<MemorySystem*>(t.typhoon.get())
                           : static_cast<MemorySystem*>(t.dir.get());
    t.checkpoint = std::make_unique<CheckpointManager>(
        *t.machine, *t.network, *ms, t.checker.get(),
        t.transport.get(), cfg.recovery.checkpointEpoch,
        cfg.recovery.checkpointFile, cfg.recovery.fingerprint);
    t.checkpoint->arm();
}

/**
 * Attach the self-telemetry subsystem (ttsim --telemetry, DESIGN.md
 * §16): one Telemetry owns the HostTimer every hot-path scope charges
 * into, plus the named memory probes polled at deterministic points.
 * Must run LAST — it probes whichever optional subsystems the earlier
 * attach steps built (checker, transport, recorder, engine). Unlike
 * the stream consumers it does not force the serial engine: per-lane
 * utilization under --threads is half the point.
 */
void
attachTelemetry(TargetMachine& t, const MachineConfig& cfg)
{
    if (!cfg.obs.telemetry)
        return;
    t.telemetry = std::make_unique<Telemetry>(t.machine->stats(),
                                              cfg.core.nodes);
    HostTimer* ht = &t.telemetry->timer();
    t.machine->eq().setTelemetry(ht);
    t.network->setTelemetry(ht);
    if (t.typhoon)
        t.typhoon->setTelemetry(ht);
    if (t.dir)
        t.dir->setTelemetry(ht);
    if (t.checker)
        t.checker->setTelemetry(ht);
    if (t.transport)
        t.transport->setTelemetry(ht);

    // Memory probes: raw pointers into unique_ptr targets stay valid
    // across the TargetMachine move (same pattern as the robustness
    // lambdas above).
    EventQueue* eq = &t.machine->eq();
    t.telemetry->addMemProbe(
        "event_queue", [eq] { return eq->footprintBytes(); });
    Network* net = t.network.get();
    t.telemetry->addMemProbe(
        "network", [net] { return net->footprintBytes(); });
    if (t.typhoon) {
        TyphoonMemSystem* ms = t.typhoon.get();
        t.telemetry->addMemProbe(
            "typhoon", [ms] { return ms->footprintBytes(); });
    }
    if (t.protocol) {
        Stache* p = t.protocol.get();
        t.telemetry->addMemProbe(
            "protocol", [p] { return p->footprintBytes(); });
    }
    if (t.dir) {
        DirMemSystem* ms = t.dir.get();
        t.telemetry->addMemProbe(
            "dirnnb", [ms] { return ms->footprintBytes(); });
    }
    if (t.checker) {
        ProtocolChecker* c = t.checker.get();
        t.telemetry->addMemProbe(
            "checker", [c] { return c->footprintBytes(); });
    }
    if (t.transport) {
        ReliableTransport* tr = t.transport.get();
        t.telemetry->addMemProbe(
            "transport", [tr] { return tr->footprintBytes(); });
    }
    if (t.obs) {
        FlightRecorder* r = t.obs.get();
        t.telemetry->addMemProbe(
            "recorder", [r] { return r->footprintBytes(); });
    }
    if (ParallelEngine* eng = t.machine->engine()) {
        eng->enableTelemetry();
        t.telemetry->setEngine(eng);
    }
    t.telemetry->registerStats();
}

} // namespace

TargetMachine
buildDirNNB(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    attachEngine(t, cfg);
    t.dir = std::make_unique<DirMemSystem>(*t.machine, *t.network,
                                           cfg.dir);
    t.machine->setMemSystem(t.dir.get());
    if (cfg.check.enable) {
        t.checker = std::make_unique<ProtocolChecker>(*t.machine,
                                                      cfg.check.mode);
        t.checker->attachDirnnb(*t.dir);
        t.dir->setChecker(t.checker.get());
        t.network->setChecker(t.checker.get());
        if (cfg.check.perturb) {
            t.checker->setSeed(cfg.check.perturbSeed);
            t.machine->eq().setPerturb(cfg.check.perturbSeed);
        }
    }
    attachObserver(t, cfg);
    attachRobustness(t, cfg);
    attachCheckpoint(t, cfg);
    attachTelemetry(t, cfg);
    return t;
}

TargetMachine
buildTyphoonStache(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    attachEngine(t, cfg);
    t.typhoon = std::make_unique<TyphoonMemSystem>(
        *t.machine, *t.network, cfg.typhoon);
    t.protocol =
        std::make_unique<Stache>(*t.machine, *t.typhoon, cfg.stache);
    t.machine->setMemSystem(t.typhoon.get());
    attachCheckerTyphoon(t, cfg.check);
    attachObserver(t, cfg);
    attachRobustness(t, cfg);
    attachCheckpoint(t, cfg);
    attachTelemetry(t, cfg);
    return t;
}

TargetMachine
buildTyphoonEm3dUpdate(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    attachEngine(t, cfg);
    t.typhoon = std::make_unique<TyphoonMemSystem>(
        *t.machine, *t.network, cfg.typhoon);
    auto proto = std::make_unique<Em3dUpdateProtocol>(
        *t.machine, *t.typhoon, cfg.stache);
    t.em3d = proto.get();
    t.protocol = std::move(proto);
    t.machine->setMemSystem(t.typhoon.get());
    attachCheckerTyphoon(t, cfg.check);
    attachObserver(t, cfg);
    attachRobustness(t, cfg);
    attachCheckpoint(t, cfg);
    attachTelemetry(t, cfg);
    return t;
}

TargetMachine
buildTyphoonMigratory(const MachineConfig& cfg)
{
    TargetMachine t;
    t.machine = std::make_unique<Machine>(cfg.core);
    t.network = std::make_unique<Network>(
        t.machine->eq(), cfg.core.nodes, cfg.net, t.machine->stats());
    attachEngine(t, cfg);
    t.typhoon = std::make_unique<TyphoonMemSystem>(
        *t.machine, *t.network, cfg.typhoon);
    auto proto = std::make_unique<MigratoryProtocol>(
        *t.machine, *t.typhoon, cfg.stache);
    t.migratory = proto.get();
    t.protocol = std::move(proto);
    t.machine->setMemSystem(t.typhoon.get());
    attachCheckerTyphoon(t, cfg.check);
    attachObserver(t, cfg);
    attachRobustness(t, cfg);
    attachCheckpoint(t, cfg);
    attachTelemetry(t, cfg);
    return t;
}

void
printTable2(std::ostream& os, const MachineConfig& cfg)
{
    auto row = [&](const char* name, auto value, const char* unit) {
        os << "  " << std::left << std::setw(34) << name << value
           << " " << unit << "\n";
    };
    os << "Table 2: simulation parameters\n";
    os << "Common\n";
    row("Nodes", cfg.core.nodes, "");
    row("CPU cache", cfg.core.cacheSize / 1024, "KB, 4-way, random");
    row("Block size", cfg.core.blockSize, "bytes");
    row("CPU TLB", cfg.core.tlbEntries, "ent., fully assoc., FIFO");
    row("Page size", cfg.core.pageSize, "bytes");
    row("Local cache miss", cfg.core.localMissLatency, "cycles");
    row("Local writeback", 0, "cycles (perfect write buffer)");
    row("TLB miss", cfg.core.tlbMissLatency, "cycles");
    row("Network latency", cfg.net.latency, "cycles");
    row("Barrier latency", cfg.core.barrierLatency, "cycles");
    os << "DirNNB only\n";
    row("Remote miss issue", cfg.dir.remoteMissIssue, "cycles");
    row("Remote miss finish", cfg.dir.remoteMissFinish, "cycles");
    row("Replacement (shared/excl)", cfg.dir.replaceShared, "");
    row("  .. exclusive", cfg.dir.replaceExclusive, "cycles");
    row("Remote invalidate", cfg.dir.invProcess, "cycles + repl");
    row("Directory op base", cfg.dir.dirOpBase, "cycles");
    row("  + block received", cfg.dir.dirBlockRecv, "cycles");
    row("  + per message sent", cfg.dir.dirPerMsg, "cycles");
    row("  + block sent", cfg.dir.dirBlockSend, "cycles");
    os << "Typhoon only\n";
    row("NP TLB / RTLB", cfg.typhoon.rtlbEntries,
        "ent., fully assoc., FIFO");
    row("(R)TLB miss", cfg.typhoon.npTlbMissLatency, "cycles");
    row("NP D-cache", cfg.typhoon.npDcacheSize / 1024, "KB, 2-way");
    row("NP dispatch", cfg.typhoon.dispatchCost, "cycles");
    row("BAF detect", cfg.typhoon.bafDetectCost, "cycles");
    row("Resume", cfg.typhoon.resumeCost, "cycles");
    row("Block transfer (BXB)", cfg.typhoon.blockXferCost,
        "cycles / 32B");
}

} // namespace tt
