/**
 * @file
 * Machine assembly: one call builds a complete target system —
 * nodes, network, memory system, and protocol — for each of the
 * paper's configurations: the DirNNB baseline, Typhoon/Stache, and
 * Typhoon with the custom EM3D update protocol.
 */

#ifndef TT_CONFIG_BUILDERS_HH
#define TT_CONFIG_BUILDERS_HH

#include <memory>
#include <ostream>

#include "check/protocol_checker.hh"
#include "core/machine.hh"
#include "core/transport.hh"
#include "obs/recorder.hh"
#include "custom/em3d_protocol.hh"
#include "custom/migratory.hh"
#include "dir/dir_mem_system.hh"
#include "net/fault_model.hh"
#include "net/network.hh"
#include "obs/telemetry.hh"
#include "recovery/checkpoint.hh"
#include "recovery/coordinator.hh"
#include "sim/watchdog.hh"
#include "stache/stache.hh"
#include "typhoon/typhoon_mem_system.hh"

namespace tt
{

/**
 * Coherence-sanitizer configuration (ttsim --check / --perturb).
 * When enabled, the builders construct a ProtocolChecker, attach it
 * to every hook point of the assembled machine, and hand ownership
 * to the TargetMachine. Perturbation additionally randomizes
 * same-tick event order (the EventQueue must already be in
 * ReferenceHeap mode — see EventQueue::setPerturb).
 */
struct CheckConfig
{
    bool enable = false;
    /// Fast = Valgrind-style shadow engine (default); Paranoid = the
    /// byte-granular reference oracle (--check=paranoid).
    ProtocolChecker::Mode mode = ProtocolChecker::Mode::Fast;
    bool perturb = false;
    std::uint64_t perturbSeed = 0;
};

/**
 * Flight-recorder configuration (ttsim --trace / DESIGN.md §9).
 * A recorder is attached when tracing or profiling is requested, and
 * also whenever the sanitizer is on (so checker violations and panics
 * come with the crash-ring tail); everything else is opt-in.
 */
struct ObsConfig
{
    bool enable = false;        ///< attach a FlightRecorder at all
    std::size_t ringCapacity = 256; ///< crash-ring records per node
    std::string traceFile;      ///< Perfetto JSON path ("" = no trace)
    Tick samplePeriod = 0;      ///< counter-snapshot period (0 = off)
    bool profile = true;        ///< fold miss-latency histograms
    bool analyze = false;       ///< fold the online sharing analyzer
    /// fold the coherence-transaction tracer (--trace-critical,
    /// DESIGN.md §14); implies the sharing analyzer, whose per-block
    /// classification the critical-path report joins against
    bool txn = false;
    /// simulator self-telemetry (--telemetry, DESIGN.md §16):
    /// per-subsystem memory accounting, host-time attribution, and
    /// parallel-lane utilization. Does NOT force the serial engine.
    bool telemetry = false;
};

/**
 * Progress-watchdog configuration (ttsim --horizon / DESIGN.md §10).
 * Armed only when fault injection is active (a lossless fabric cannot
 * stall an operation, and arming nothing keeps fault-off runs
 * bit-identical). The horizon default comfortably exceeds the
 * transport's worst-case retry window (~45k ticks at the default
 * rto/rtoMax/maxRetries), so only a genuinely wedged run trips.
 */
struct WatchdogConfig
{
    bool enable = true;
    Tick horizon = 100'000; ///< max age of an open operation (ticks)
};

/**
 * Checkpoint/restart configuration (ttsim --checkpoint, DESIGN.md
 * §15). Fault-free, serial-engine runs only; the fingerprint pins the
 * snapshot file to one exact configuration so a restore under a
 * different machine is refused instead of silently diverging.
 */
struct RecoveryConfig
{
    std::uint64_t checkpointEpoch = 0; ///< 0 = no checkpoint
    std::string checkpointFile = "ttsim.ckpt";
    std::uint64_t fingerprint = 0;     ///< configFingerprint(key)
};

/** Everything Table 2 configures, in one bag. */
struct MachineConfig
{
    CoreParams core;
    NetworkParams net;
    DirParams dir;
    TyphoonParams typhoon;
    StacheParams stache;
    CheckConfig check;
    ObsConfig obs;
    FaultParams faults;       ///< unreliable fabric (off by default)
    ReliableParams reliable;  ///< user-level reliable delivery
    WatchdogConfig watchdog;  ///< progress watchdog (faults only)
    RecoveryConfig recovery;  ///< checkpoint/restart (off by default)
};

/** Print the active configuration in the shape of Table 2. */
void printTable2(std::ostream& os, const MachineConfig& cfg);

/** An assembled target machine (move-only). */
struct TargetMachine
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Network> network;

    // Exactly one of the following is populated.
    std::unique_ptr<DirMemSystem> dir;
    std::unique_ptr<TyphoonMemSystem> typhoon;
    std::unique_ptr<Stache> protocol; ///< Stache or Em3dUpdateProtocol

    Em3dUpdateProtocol* em3d = nullptr; ///< set for the update target
    MigratoryProtocol* migratory = nullptr; ///< set for that target

    /** Set iff MachineConfig::check.enable was true at build time. */
    std::unique_ptr<ProtocolChecker> checker;

    /** Set iff obs.enable, check.enable, or faults were on at build. */
    std::unique_ptr<FlightRecorder> obs;

    /** Set iff MachineConfig::faults.any() was true at build time. */
    std::unique_ptr<SeededFaultModel> faults;

    /** Set iff faults were on and reliable.enable was true. */
    std::unique_ptr<ReliableTransport> transport;

    /** Set iff faults were on and watchdog.enable was true. */
    std::unique_ptr<Watchdog> watchdog;

    /** Set iff the fault spec scheduled crash-stop failures. */
    std::unique_ptr<RecoveryCoordinator> recovery;

    /** Set iff recovery.checkpointEpoch was > 0 at build time. */
    std::unique_ptr<CheckpointManager> checkpoint;

    /** Set iff MachineConfig::obs.telemetry was true at build time. */
    std::unique_ptr<Telemetry> telemetry;

    Machine& m() { return *machine; }
    RunResult run(App& app) { return machine->run(app); }
    RunResult run(App& app, const Machine::RestartPlan& plan)
    {
        return machine->run(app, &plan);
    }
};

/** The all-hardware DirNNB baseline. */
TargetMachine buildDirNNB(const MachineConfig& cfg = {});

/** Typhoon running transparent shared memory via Stache. */
TargetMachine buildTyphoonStache(const MachineConfig& cfg = {});

/** Typhoon running Stache plus the custom EM3D update protocol. */
TargetMachine buildTyphoonEm3dUpdate(const MachineConfig& cfg = {});

/** Typhoon running the migratory-sharing custom protocol. */
TargetMachine buildTyphoonMigratory(const MachineConfig& cfg = {});

} // namespace tt

#endif // TT_CONFIG_BUILDERS_HH
