#include "config/campaign.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/recorder.hh"
#include "recovery/coordinator.hh"
#include "sim/logging.hh"
#include "sim/watchdog.hh"

namespace tt
{

std::uint64_t
campaignSeed(std::uint64_t base, int i)
{
    // One SplitMix64 step per index: well-decorrelated seeds derived
    // purely from (base, i), so a campaign replays bit-identically.
    std::uint64_t z =
        base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

TargetMachine
buildSystem(const std::string& system, const MachineConfig& cfg)
{
    if (system == "dirnnb")
        return buildDirNNB(cfg);
    if (system == "stache")
        return buildTyphoonStache(cfg);
    if (system == "migratory")
        return buildTyphoonMigratory(cfg);
    if (system == "update")
        return buildTyphoonEm3dUpdate(cfg);
    tt_fatal("campaign: unknown system '", system, "'");
}

CampaignRun
runOne(const CampaignConfig& cc, const std::string& system,
       std::uint64_t seed, int index)
{
    MachineConfig cfg = cc.base;
    cfg.faults.seed = seed;
    cfg.check.enable = true; // campaigns always sanitize
    cfg.obs.analyze = true;  // ...and always classify sharing
    cfg.obs.txn = true;      // ...and always trace transactions

    CampaignRun run;
    run.system = system;
    run.seed = seed;
    run.index = index;

    TargetMachine target = buildSystem(system, cfg);
    std::unique_ptr<BenchApp> app;
    if (system == "update") {
        app = std::make_unique<Em3dApp>(
            em3dParams(cc.dataset, cc.remoteFrac, cc.scale),
            Em3dApp::Mode::Update, target.em3d);
    } else {
        app = makeWorkload(cc.app, cc.dataset, cc.scale);
    }

    try {
        const RunResult r = target.run(*app);
        run.cycles = r.execTime;
        run.checksum = app->checksum();
        run.outcome = "ok";
    } catch (const UnrecoverableCrash& e) {
        // A crash the coordinator could not absorb (double failure,
        // single-node machine, crash mid-recovery) — ttsim exit 5.
        run.outcome = "unrecoverable";
        run.detail = e.what();
    } catch (const WatchdogTimeout& e) {
        run.outcome = "watchdog";
        run.detail = e.what();
    } catch (const std::logic_error& e) {
        // tt_panic — notably Machine::run's drained-queue protocol
        // deadlock, the expected failure shape when lost messages are
        // never repaired (the --no-reliable negative control).
        run.outcome = "panic";
        run.detail = e.what();
    } catch (const std::exception& e) {
        run.outcome = "error";
        run.detail = e.what();
    }

    if (target.checker) {
        // finalize() runs the quiescence/conservation checks; on an
        // aborted run they would report the in-flight state of the
        // abort itself, so only a completed run is finalized.
        if (run.outcome == "ok")
            target.checker->finalize();
        run.violations = target.checker->violations().size();
        if (run.violations) {
            if (run.outcome == "ok")
                run.outcome = "violation";
            if (run.detail.empty())
                run.detail =
                    target.checker->violations().front().invariant;
        }
    }

    const StatSet& stats = target.machine->stats();
    if (target.faults)
        run.faultsInjected = target.faults->injected();
    run.retransmits = stats.get("net.retransmits");
    run.acks = stats.get("net.acks");
    run.dupDropped = stats.get("net.dup_dropped");
    run.oooDropped = stats.get("net.ooo_dropped");
    run.deadLinks = stats.get("net.dead_links");
    run.watchdogTrips = stats.get("obs.watchdog.trips");
    if (target.recovery) {
        target.recovery->finalizeStats();
        run.crashesInjected = target.recovery->crashesInjected();
        run.recoveries = target.recovery->recoveriesDone();
    }
    if (target.obs && target.obs->sharing()) {
        const SharingAnalyzer::Summary s =
            target.obs->sharing()->summarize();
        for (int p = 0; p < kSharePatterns; ++p) {
            run.patternBlocks[static_cast<std::size_t>(p)] =
                s.blocksByPattern[static_cast<std::size_t>(p)];
        }
        run.falseSharingBlocks = s.falseSharingBlocks;
        run.dominantPattern = sharePatternKey(s.dominant());
    }
    if (target.obs && target.obs->txn()) {
        // Completed transactions have full span data even when the run
        // itself aborted, so the critical-path join is always safe.
        target.obs->finalize();
        TxnTracer& tx = *target.obs->txn();
        const TxnTracer::Summary s = tx.summarize();
        run.txnOpened = s.opened;
        run.txnCompleted = s.completed;
        run.txnRetx = s.retxTxns;
        run.txnWallTicks = s.wallTicks;
        run.txnCatTicks = s.catTicks;
        const int dom = tx.dominantPattern();
        if (dom >= 0)
            run.txnDominantPattern =
                sharePatternKey(static_cast<SharePattern>(dom));
    }
    return run;
}

void
jsonEscape(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            os << '\\';
        else if (ch == '\n') {
            os << "\\n";
            continue;
        }
        os << ch;
    }
    os << '"';
}

} // namespace

CampaignReport
runCampaign(const CampaignConfig& cc)
{
    tt_assert(cc.shardCount >= 1 && cc.shardIndex >= 0 &&
                  cc.shardIndex < cc.shardCount,
              "campaign shard ", cc.shardIndex, "/", cc.shardCount,
              " is malformed");
    CampaignReport rep;
    rep.baseSeed = cc.base.faults.seed;
    rep.runsPerSystem = cc.runs;
    rep.reliable = cc.base.reliable.enable;
    rep.shardIndex = cc.shardIndex;
    rep.shardCount = cc.shardCount;
    rep.runs.reserve(cc.systems.size() *
                     static_cast<std::size_t>(cc.runs));

    for (const std::string& system : cc.systems) {
        for (int i = 0; i < cc.runs; ++i) {
            // Shard filter: seeds derive from the index alone, so the
            // runs a shard executes are exactly the runs the unsharded
            // campaign would have produced at those indices.
            if (i % cc.shardCount != cc.shardIndex)
                continue;
            const std::uint64_t seed =
                campaignSeed(cc.base.faults.seed, i);
            CampaignRun run = runOne(cc, system, seed, i);
            if (cc.progress) {
                std::fprintf(
                    stderr,
                    "campaign: %-10s seed=%016llx %-9s "
                    "faults=%llu retx=%llu viol=%llu\n",
                    system.c_str(),
                    static_cast<unsigned long long>(seed),
                    run.outcome.c_str(),
                    static_cast<unsigned long long>(run.faultsInjected),
                    static_cast<unsigned long long>(run.retransmits),
                    static_cast<unsigned long long>(run.violations));
            }
            rep.runs.push_back(std::move(run));
        }
    }
    return rep;
}

std::uint64_t
CampaignReport::countOutcome(const std::string& outcome) const
{
    std::uint64_t n = 0;
    for (const CampaignRun& r : runs)
        n += r.outcome == outcome;
    return n;
}

void
CampaignReport::writeJson(std::ostream& os) const
{
    os << "{\n";
    os << "  \"fault_spec\": ";
    jsonEscape(os, faultSpec);
    os << ",\n  \"base_seed\": " << baseSeed;
    os << ",\n  \"runs_per_system\": " << runsPerSystem;
    os << ",\n  \"reliable_transport\": "
       << (reliable ? "true" : "false");
    os << ",\n  \"shard\": {\"index\": " << shardIndex
       << ", \"count\": " << shardCount << "}";
    os << ",\n  \"totals\": {";
    os << "\"runs\": " << runs.size();
    os << ", \"ok\": " << countOutcome("ok");
    os << ", \"violation\": " << countOutcome("violation");
    os << ", \"watchdog\": " << countOutcome("watchdog");
    os << ", \"panic\": " << countOutcome("panic");
    os << ", \"error\": " << countOutcome("error");
    os << ", \"unrecoverable\": " << countOutcome("unrecoverable");
    std::uint64_t faults = 0, retx = 0, acks = 0, dups = 0, ooo = 0,
                  dead = 0, trips = 0, crashes = 0, recoveries = 0;
    for (const CampaignRun& r : runs) {
        faults += r.faultsInjected;
        retx += r.retransmits;
        acks += r.acks;
        dups += r.dupDropped;
        ooo += r.oooDropped;
        dead += r.deadLinks;
        trips += r.watchdogTrips;
        crashes += r.crashesInjected;
        recoveries += r.recoveries;
    }
    os << ", \"faults_injected\": " << faults;
    os << ", \"retransmits\": " << retx;
    os << ", \"acks\": " << acks;
    os << ", \"dup_dropped\": " << dups;
    os << ", \"ooo_dropped\": " << ooo;
    os << ", \"dead_links\": " << dead;
    os << ", \"watchdog_trips\": " << trips;
    os << "},\n";

    // Crash-recovery summary (DESIGN.md §15): how many crash-stop
    // failures the sweep injected, how many recoveries completed, and
    // how many runs still finished clean. Present only when the fault
    // mix scheduled crashes, so crash-free reports are unchanged.
    if (crashes || recoveries || countOutcome("unrecoverable")) {
        os << "  \"recovery\": {";
        os << "\"crashes_injected\": " << crashes;
        os << ", \"recoveries\": " << recoveries;
        os << ", \"crashes_survived\": "
           << countOutcome("ok") + countOutcome("violation");
        os << ", \"unrecoverable\": " << countOutcome("unrecoverable");
        os << "},\n";
    }

    // Per-system sharing-pattern mix, aggregated over the system's
    // runs in cc.systems order (the order runs were produced).
    os << "  \"sharing\": [\n";
    std::vector<std::string> order;
    for (const CampaignRun& r : runs) {
        if (std::find(order.begin(), order.end(), r.system) ==
            order.end())
            order.push_back(r.system);
    }
    for (std::size_t si = 0; si < order.size(); ++si) {
        std::array<std::uint64_t, kSharePatterns> mix{};
        std::uint64_t falseBlocks = 0;
        for (const CampaignRun& r : runs) {
            if (r.system != order[si])
                continue;
            for (int p = 0; p < kSharePatterns; ++p)
                mix[static_cast<std::size_t>(p)] +=
                    r.patternBlocks[static_cast<std::size_t>(p)];
            falseBlocks += r.falseSharingBlocks;
        }
        os << "    {\"system\": ";
        jsonEscape(os, order[si]);
        os << ", \"patterns\": {";
        for (int p = 0; p < kSharePatterns; ++p) {
            os << (p ? ", " : "") << "\""
               << sharePatternKey(static_cast<SharePattern>(p))
               << "\": " << mix[static_cast<std::size_t>(p)];
        }
        os << "}, \"false_sharing_blocks\": " << falseBlocks << "}"
           << (si + 1 < order.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    // Per-system coherence-transaction critical-path mix, aggregated
    // the same way (DESIGN.md §14).
    os << "  \"transactions\": [\n";
    for (std::size_t si = 0; si < order.size(); ++si) {
        std::uint64_t opened = 0, completed = 0, retxTxns = 0,
                      wall = 0;
        std::array<std::uint64_t, kTxnCats> cat{};
        for (const CampaignRun& r : runs) {
            if (r.system != order[si])
                continue;
            opened += r.txnOpened;
            completed += r.txnCompleted;
            retxTxns += r.txnRetx;
            wall += r.txnWallTicks;
            for (int c = 0; c < kTxnCats; ++c)
                cat[static_cast<std::size_t>(c)] +=
                    r.txnCatTicks[static_cast<std::size_t>(c)];
        }
        os << "    {\"system\": ";
        jsonEscape(os, order[si]);
        os << ", \"opened\": " << opened
           << ", \"completed\": " << completed
           << ", \"retx_txns\": " << retxTxns
           << ", \"wall_ticks\": " << wall << ", \"breakdown\": {";
        for (int c = 0; c < kTxnCats; ++c) {
            os << (c ? ", " : "") << "\""
               << txnCatName(static_cast<TxnCat>(c))
               << "\": " << cat[static_cast<std::size_t>(c)];
        }
        os << "}}" << (si + 1 < order.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const CampaignRun& r = runs[i];
        char seedHex[32];
        std::snprintf(seedHex, sizeof seedHex, "%016llx",
                      static_cast<unsigned long long>(r.seed));
        os << "    {\"system\": ";
        jsonEscape(os, r.system);
        os << ", \"seed\": \"" << seedHex << '"';
        os << ", \"index\": " << r.index;
        os << ", \"outcome\": ";
        jsonEscape(os, r.outcome);
        os << ", \"cycles\": " << r.cycles;
        os << ", \"faults_injected\": " << r.faultsInjected;
        os << ", \"retransmits\": " << r.retransmits;
        os << ", \"acks\": " << r.acks;
        os << ", \"dup_dropped\": " << r.dupDropped;
        os << ", \"ooo_dropped\": " << r.oooDropped;
        os << ", \"dead_links\": " << r.deadLinks;
        os << ", \"violations\": " << r.violations;
        os << ", \"watchdog_trips\": " << r.watchdogTrips;
        if (r.crashesInjected || r.recoveries) {
            os << ", \"crashes_injected\": " << r.crashesInjected
               << ", \"recoveries\": " << r.recoveries;
        }
        if (!r.dominantPattern.empty()) {
            os << ", \"dominant_pattern\": ";
            jsonEscape(os, r.dominantPattern);
            os << ", \"false_sharing_blocks\": "
               << r.falseSharingBlocks;
        }
        if (r.txnOpened) {
            os << ", \"txn_completed\": " << r.txnCompleted
               << ", \"txn_retx\": " << r.txnRetx
               << ", \"txn_wall_ticks\": " << r.txnWallTicks;
            if (!r.txnDominantPattern.empty()) {
                os << ", \"txn_dominant_pattern\": ";
                jsonEscape(os, r.txnDominantPattern);
            }
        }
        if (!r.detail.empty()) {
            os << ", \"detail\": ";
            jsonEscape(os, r.detail);
        }
        os << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

bool
CampaignReport::writeJsonFile(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f);
    return f.good();
}

} // namespace tt
