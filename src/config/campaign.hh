/**
 * @file
 * Deterministic fault-campaign runner (ttsim --faults --campaign,
 * DESIGN.md §10).
 *
 * A campaign sweeps N derived fault seeds per target system over one
 * fault mix, with the coherence sanitizer enabled, and aggregates the
 * outcomes into a machine-readable JSON report. Everything is
 * deterministic: run seeds are derived from the base fault seed by a
 * SplitMix64 step (never from wall-clock or run order across systems),
 * and the report contains no timestamps, so the same (seed, faults,
 * systems, workload) campaign is byte-identical across invocations.
 *
 * Each run is classified as one of:
 *   ok        — app completed, checker clean, no watchdog trip
 *   violation — app completed but the sanitizer found violations
 *   watchdog  — the progress watchdog tripped (WatchdogTimeout)
 *   panic     — tt_panic fired (e.g. Machine::run's drained-queue
 *               protocol deadlock), caught and recorded
 *   error     — any other exception escaped the run
 *
 * The headline acceptance criterion: with the reliable transport on,
 * a drop+dup+reorder campaign is all-ok; with --no-reliable the same
 * campaign must produce violations/watchdog/panic outcomes (the
 * negative control proving the fault injection has teeth).
 */

#ifndef TT_CONFIG_CAMPAIGN_HH
#define TT_CONFIG_CAMPAIGN_HH

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "obs/sharing.hh"
#include "obs/txn.hh"

namespace tt
{

/** What to sweep (the MachineConfig carries the fault mix itself). */
struct CampaignConfig
{
    MachineConfig base;   ///< base config; faults.seed is the campaign seed
    std::vector<std::string> systems; ///< ttsim system names
    int runs = 50;        ///< derived seeds per system
    std::string app = "em3d";
    DataSet dataset = DataSet::Tiny;
    int scale = 1;
    double remoteFrac = 0.2; ///< EM3D remote-edge fraction
    bool progress = true;    ///< print one line per run to stderr

    /**
     * Campaign sharding (ttsim --campaign-shard=I/N): this invocation
     * runs only the seeds with index % shardCount == shardIndex, so N
     * processes cover a campaign in parallel. Seeds derive from the
     * index (never the shard), so the union of the N shard reports is
     * exactly the unsharded report (asserted in
     * tests/config/test_campaign).
     */
    int shardIndex = 0;
    int shardCount = 1;
};

/** Outcome of one (system, seed) run. */
struct CampaignRun
{
    std::string system;
    std::uint64_t seed = 0;     ///< derived fault seed
    int index = 0;              ///< seed index within the system sweep
    /// ok|violation|watchdog|panic|error|unrecoverable
    std::string outcome;
    Tick cycles = 0;            ///< 0 unless the app completed
    double checksum = 0;        ///< 0 unless the app completed
    std::uint64_t faultsInjected = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acks = 0;
    std::uint64_t dupDropped = 0;
    std::uint64_t oooDropped = 0;
    std::uint64_t deadLinks = 0;
    std::uint64_t violations = 0;
    std::uint64_t watchdogTrips = 0;
    std::string detail;         ///< first violation / panic message

    // Crash-recovery summary (crash@ faults only, DESIGN.md §15).
    std::uint64_t crashesInjected = 0;
    std::uint64_t recoveries = 0;

    // Sharing-analyzer summary (campaigns always analyze).
    std::array<std::uint64_t, kSharePatterns> patternBlocks{};
    std::uint64_t falseSharingBlocks = 0;
    std::string dominantPattern;

    // Transaction-tracer summary (campaigns always trace; completed
    // transactions only — an aborted run keeps its partial view).
    std::uint64_t txnOpened = 0;
    std::uint64_t txnCompleted = 0;
    std::uint64_t txnRetx = 0;       ///< retransmit-affected txns
    std::uint64_t txnWallTicks = 0;
    std::array<std::uint64_t, kTxnCats> txnCatTicks{};
    std::string txnDominantPattern;  ///< pattern with most wall time
};

/** The aggregated campaign result. */
struct CampaignReport
{
    std::string faultSpec;      ///< the --faults spec, verbatim
    std::uint64_t baseSeed = 0;
    int runsPerSystem = 0;
    bool reliable = true;
    int shardIndex = 0;         ///< which shard this report covers
    int shardCount = 1;         ///< 1 = unsharded
    std::vector<CampaignRun> runs;

    std::uint64_t countOutcome(const std::string& outcome) const;
    /** True iff every run completed clean ("ok"). */
    bool allOk() const { return countOutcome("ok") == runs.size(); }

    /** Deterministic JSON (stable order, no wall-clock). */
    void writeJson(std::ostream& os) const;
    bool writeJsonFile(const std::string& path) const;
};

/** Derive the i-th run seed from the campaign base seed (SplitMix64). */
std::uint64_t campaignSeed(std::uint64_t base, int i);

/** Run the whole campaign. Never throws for per-run failures. */
CampaignReport runCampaign(const CampaignConfig& cc);

} // namespace tt

#endif // TT_CONFIG_CAMPAIGN_HH
