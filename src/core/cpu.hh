/**
 * @file
 * The simulated computation processor. Application code runs as
 * coroutines; each Cpu tracks its own local time, which may run a
 * bounded quantum ahead of global event time for purely local work
 * (cache hits, computation) — the WWT-style conservative window.
 * Any globally visible action synchronizes through the event queue.
 */

#ifndef TT_CORE_CPU_HH
#define TT_CORE_CPU_HH

#include <coroutine>
#include <cstring>

#include "core/memsys.hh"
#include "core/params.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

class Cpu
{
  public:
    Cpu(EventQueue& eq, const CoreParams& params, NodeId id,
        StatSet& stats)
        : _eq(eq),
          _params(params),
          _stats(stats),
          _loads(stats.counter("cpu.loads")),
          _stores(stats.counter("cpu.stores")),
          _computeCycles(stats.counter("cpu.compute_cycles")),
          _id(id)
    {
    }

    Cpu(const Cpu&) = delete;
    Cpu& operator=(const Cpu&) = delete;

    NodeId id() const { return _id; }
    EventQueue& eq() { return _eq; }
    StatSet& stats() { return _stats; }
    const CoreParams& params() const { return _params; }

    /** Bind the target memory system (after machine assembly). */
    void bindMemSystem(MemorySystem* ms) { _memsys = ms; }
    MemorySystem& memsys() { return *_memsys; }

    /** This CPU's local time (absolute ticks of its progress). */
    Tick localTime() const { return _localTime; }

    /** Advance local time by @p cycles of local work. */
    void advance(Tick cycles) { _localTime += cycles; }

    /** Pull local time forward to @p t (resume from an event). */
    void syncTo(Tick t)
    {
        if (t > _localTime)
            _localTime = t;
    }

    /** True iff local time has outrun the quantum window. */
    bool
    needYield() const
    {
        return _localTime > _eq.now() + _params.quantum;
    }

    /**
     * Completion upcall from the memory system for a slow-path
     * access; must be invoked from an event at the completion tick.
     */
    void
    completeAccess(MemRequest& req)
    {
        syncTo(_eq.now());
        auto h = req.waiter;
        req.waiter = nullptr;
        tt_assert(h, "completeAccess with no waiter");
        h.resume();
    }

    // ---- awaitables ---------------------------------------------------

    /** co_await cpu.compute(n): n cycles of local computation. */
    struct ComputeAwaitable
    {
        Cpu& cpu;

        bool
        await_ready()
        {
            return !cpu.needYield();
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            cpu.yieldAt(cpu._localTime, h);
        }

        void await_resume() {}
    };

    ComputeAwaitable
    compute(Tick cycles)
    {
        advance(cycles);
        _computeCycles.inc(cycles);
        return ComputeAwaitable{*this};
    }

    /** Untyped access awaitable; the typed wrappers build on it. */
    struct AccessAwaitable
    {
        Cpu& cpu;
        MemRequest req;
        bool slow = false;

        bool
        await_ready()
        {
            // The load/store instruction itself.
            cpu.advance(1);
            req.issueTime = cpu._localTime;
            AccessOutcome out = cpu.memsys().access(&req);
            if (out.inlineDone) {
                cpu.advance(out.cycles);
                return !cpu.needYield();
            }
            slow = true;
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            if (slow)
                req.waiter = h;
            else
                cpu.yieldAt(cpu._localTime, h);
        }

        void await_resume() {}
    };

    /** co_await cpu.read<T>(a): tag-checked load of a T. */
    template <typename T>
    struct ReadAwaitable : AccessAwaitable
    {
        T value{};

        ReadAwaitable(Cpu& c, Addr a)
            : AccessAwaitable{c,
                              MemRequest{&c, a, sizeof(T), MemOp::Read,
                                         &value, 0, nullptr}}
        {
        }

        T await_resume() { return value; }
    };

    /** co_await cpu.write<T>(a, v): tag-checked store of a T. */
    template <typename T>
    struct WriteAwaitable : AccessAwaitable
    {
        T value;

        WriteAwaitable(Cpu& c, Addr a, T v)
            : AccessAwaitable{c,
                              MemRequest{&c, a, sizeof(T), MemOp::Write,
                                         &value, 0, nullptr}},
              value(v)
        {
        }
    };

    template <typename T>
    ReadAwaitable<T>
    read(Addr a)
    {
        _loads.inc();
        return ReadAwaitable<T>(*this, a);
    }

    template <typename T>
    WriteAwaitable<T>
    write(Addr a, T v)
    {
        _stores.inc();
        return WriteAwaitable<T>(*this, a, v);
    }

    /** Force this CPU to rejoin the event queue at its local time. */
    void
    yieldAt(Tick when, std::coroutine_handle<> h)
    {
        _eq.schedule(when < _eq.now() ? _eq.now() : when, [this, h] {
            syncTo(_eq.now());
            h.resume();
        });
    }

  private:
    EventQueue& _eq;
    const CoreParams& _params;
    StatSet& _stats;
    // Per-instruction stat handles, resolved once (references into
    // _stats are stable).
    Counter& _loads;
    Counter& _stores;
    Counter& _computeCycles;
    MemorySystem* _memsys = nullptr;
    NodeId _id;
    Tick _localTime = 0;
};

} // namespace tt

#endif // TT_CORE_CPU_HH
