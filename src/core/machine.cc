#include "core/machine.hh"

#include "sim/logging.hh"

namespace tt
{

Task<void>
Machine::bodyWrap(Cpu& c, int i)
{
    co_await _app->body(c);
    _cpuFinish[i] = c.localTime();
    ++_finished;
}

void
Machine::spawnBodies(Tick when, const std::vector<int>& order)
{
    // One spawn event per CPU, inserted in @p order: same-tick event
    // order is insertion order, so the respawn order fully determines
    // how the bodies interleave at the spawn tick.
    for (int id : order) {
        _eq.schedule(when, [this, id] {
            Cpu* c = _cpus[id].get();
            c->syncTo(_eq.now());
            _bodies[id] = bodyWrap(*c, id);
            _bodies[id].start();
        });
    }
}

void
Machine::respawnBodies(std::uint64_t episodes,
                       const std::vector<int>& order)
{
    tt_assert(_app, "respawnBodies outside run()");
    tt_assert(_eq.pending() == 0,
              "respawnBodies with pending events (clearPending first)");
    _barrier.clearWaiters();
    _barrier.setEpisodes(episodes);
    _bodies.clear(); // cancels every suspended call tree
    _bodies.resize(nodes());
    _cpuFinish.assign(nodes(), kTickMax);
    _finished = 0;
    _app->setStartEpoch(episodes);
    spawnBodies(_eq.now(), order);
}

RunResult
Machine::run(App& app, const RestartPlan* plan)
{
    tt_assert(_memsys, "no memory system installed");
    _app = &app;
    app.setup(*this);
    // The post-shmalloc canonical state exists exactly here; let the
    // memory system record its allocator watermarks (DESIGN.md §15).
    _memsys->setupComplete();

    const int n = nodes();
    _cpuFinish.assign(n, kTickMax);
    _finished = 0;
    _bodies.clear();
    _bodies.resize(n);

    // Scheduling at the current tick (not 0) lets one machine run
    // several apps back-to-back (warm-up + measured runs).
    Tick start = _eq.now();
    std::vector<int> order;
    if (plan) {
        tt_assert(!_engine, "checkpoint restore needs the serial engine");
        tt_assert(app.supportsEpochRestart(),
                  "app '", app.name(), "' cannot restart from an epoch");
        _eq.jumpTo(plan->tick);
        start = plan->tick;
        _barrier.setEpisodes(plan->episodes);
        app.setStartEpoch(plan->episodes);
        if (plan->applyState)
            _eq.schedule(start, [plan] { plan->applyState(); });
        order = plan->order;
    } else {
        order.reserve(n);
        for (int i = 0; i < n; ++i)
            order.push_back(i);
    }
    spawnBodies(start, order);

    // With the parallel engine attached the run is window-driven;
    // application events stay on the global queue either way (they
    // touch cross-node state — see DESIGN.md §12), so the simulated
    // schedule is identical in both modes.
    if (_engine)
        _engine->run();
    else
        _eq.run();

    for (auto& b : _bodies) {
        if (b.valid() && b.error()) {
            std::exception_ptr ep = b.error();
            _bodies.clear();
            _app = nullptr;
            std::rethrow_exception(ep);
        }
    }

    if (_finished != n) {
        for (int i = 0; i < n; ++i) {
            if (_cpuFinish[i] == kTickMax)
                tt_warn("cpu ", i, " never finished (deadlock)");
        }
        tt_panic("event queue drained with ", n - _finished,
                 " unfinished processors — protocol deadlock");
    }

    RunResult result;
    result.cpuFinish = _cpuFinish;
    result.execTime = 0;
    for (Tick t : result.cpuFinish)
        if (t > result.execTime)
            result.execTime = t;
    result.events =
        _engine ? _engine->executed() : _eq.executed();

    _bodies.clear();
    app.finish(*this);
    _app = nullptr;
    return result;
}

} // namespace tt
