#include "core/machine.hh"

#include "sim/logging.hh"

namespace tt
{

RunResult
Machine::run(App& app)
{
    tt_assert(_memsys, "no memory system installed");
    app.setup(*this);

    const int n = nodes();
    RunResult result;
    result.cpuFinish.assign(n, kTickMax);
    int finished = 0;
    std::exception_ptr firstError;

    // Scheduling at the current tick (not 0) lets one machine run
    // several apps back-to-back (warm-up + measured runs).
    for (int i = 0; i < n; ++i) {
        Cpu* c = _cpus[i].get();
        _eq.schedule(_eq.now(), [this, &app, c, i, &result, &finished,
                                 &firstError] {
            spawnDetached(
                app.body(*c),
                [c, i, &result, &finished,
                 &firstError](std::exception_ptr ep) {
                    result.cpuFinish[i] = c->localTime();
                    ++finished;
                    if (ep && !firstError)
                        firstError = ep;
                });
        });
    }

    // With the parallel engine attached the run is window-driven;
    // application events stay on the global queue either way (they
    // touch cross-node state — see DESIGN.md §12), so the simulated
    // schedule is identical in both modes.
    if (_engine)
        _engine->run();
    else
        _eq.run();

    if (firstError)
        std::rethrow_exception(firstError);

    if (finished != n) {
        for (int i = 0; i < n; ++i) {
            if (result.cpuFinish[i] == kTickMax)
                tt_warn("cpu ", i, " never finished (deadlock)");
        }
        tt_panic("event queue drained with ", n - finished,
                 " unfinished processors — protocol deadlock");
    }

    result.execTime = 0;
    for (Tick t : result.cpuFinish)
        if (t > result.execTime)
            result.execTime = t;
    result.events =
        _engine ? _engine->executed() : _eq.executed();

    app.finish(*this);
    return result;
}

} // namespace tt
