/**
 * @file
 * The assembled target machine: N processing nodes over one event
 * queue, a memory system, and the application-run harness.
 */

#ifndef TT_CORE_MACHINE_HH
#define TT_CORE_MACHINE_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cpu.hh"
#include "core/memsys.hh"
#include "core/params.hh"
#include "core/sync.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace tt
{

class Machine;

/**
 * A parallel application. setup() allocates and initializes shared
 * data at zero simulated cost; body() is the per-processor SPMD
 * coroutine; finish() extracts/validates results after the run.
 */
class App
{
  public:
    virtual ~App() = default;
    virtual std::string name() const = 0;
    virtual void setup(Machine& m) { (void)m; }
    virtual Task<void> body(Cpu& cpu) = 0;
    virtual void finish(Machine& m) { (void)m; }

    /**
     * Epoch restart support (checkpoint/restore and crash recovery,
     * DESIGN.md §15). An app that structures body() as a loop of
     * barrier episodes can implement setStartEpoch() so a freshly
     * spawned body resumes from a given episode count; shared data is
     * reconstructed by setup() + a memory-snapshot poke, so the body
     * only needs to skip the already-completed episodes.
     */
    virtual bool supportsEpochRestart() const { return false; }
    virtual void setStartEpoch(std::uint64_t episodes)
    {
        (void)episodes;
    }
};

/** Outcome of Machine::run(). */
struct RunResult
{
    Tick execTime = 0;            ///< max over CPUs of finish time
    std::vector<Tick> cpuFinish;  ///< per-CPU finish times
    std::uint64_t events = 0;     ///< events executed by the kernel
};

class Machine
{
  public:
    explicit Machine(const CoreParams& params)
        : _params(params),
          _rng(params.seed),
          _barrier(_eq, params.nodes, params.barrierLatency)
    {
        _cpus.reserve(params.nodes);
        for (int i = 0; i < params.nodes; ++i) {
            _cpus.push_back(
                std::make_unique<Cpu>(_eq, _params, i, _stats));
        }
    }

    const CoreParams& params() const { return _params; }
    EventQueue& eq() { return _eq; }
    StatSet& stats() { return _stats; }
    Rng& rng() { return _rng; }
    int nodes() const { return _params.nodes; }

    Cpu& cpu(int i) { return *_cpus.at(i); }

    /** The application-level global barrier. */
    Barrier& barrier() { return _barrier; }

    /** Install the memory system (not owned). */
    void
    setMemSystem(MemorySystem* ms)
    {
        _memsys = ms;
        for (auto& c : _cpus)
            c->bindMemSystem(ms);
    }

    MemorySystem& memsys() { return *_memsys; }

    /**
     * Build the sharded parallel engine (DESIGN.md §12): one lane per
     * node, @p threads workers, windows of @p lookahead ticks (the
     * minimum network latency). Call once, before run(). With the
     * engine attached, run() drives it instead of the bare queue;
     * simulated results stay byte-identical to the serial engine.
     */
    void
    enableParallel(int threads, Tick lookahead)
    {
        tt_assert(!_engine, "parallel engine already enabled");
        _engine = std::make_unique<ParallelEngine>(
            _eq, _params.nodes, lookahead, threads);
    }

    /** The parallel engine, or nullptr in serial mode. */
    ParallelEngine* engine() { return _engine.get(); }

    /**
     * Checkpoint-restore plan (src/recovery). When passed to run(),
     * the initial body spawn is replaced by: jump simulated time to
     * @p tick, apply the snapshot state (canonicalize + memory poke +
     * stat restore, packaged in @p applyState), restore the barrier
     * episode count, and spawn bodies — in the recorded barrier
     * arrival @p order, so same-tick event order continues exactly as
     * the checkpointing run's release event would have resumed them.
     */
    struct RestartPlan
    {
        Tick tick = 0;
        std::uint64_t episodes = 0;
        std::vector<int> order;
        std::function<void()> applyState;
    };

    /**
     * Run @p app to completion on all nodes. Throws if any node's
     * coroutine threw, or panics if the event queue drains with
     * unfinished processors (a protocol deadlock). With @p plan the
     * run continues from a checkpoint instead of starting fresh.
     */
    RunResult run(App& app, const RestartPlan* plan = nullptr);

    /**
     * Crash-recovery rollback (src/recovery, DESIGN.md §15): cancel
     * every body coroutine (destroying the owned Task cascades down
     * the suspended call tree), drop parked barrier waiters, restore
     * the episode count, and respawn fresh bodies at the current tick
     * in @p order. Only legal inside run(), from a scheduled event,
     * after EventQueue::clearPending() — no pending event may
     * reference the destroyed frames.
     */
    void respawnBodies(std::uint64_t episodes,
                       const std::vector<int>& order);

    /** The app currently inside run() (nullptr outside). */
    App* runningApp() { return _app; }

    /**
     * True once every body coroutine has completed (only meaningful
     * inside run()). Crash injection consults this: a crash scheduled
     * past the application's end fires during the final event drain
     * and must not roll a finished run back (DESIGN.md §15).
     */
    bool allFinished() const { return _finished == _params.nodes; }

  private:
    /**
     * Wrapper coroutine owning one processor's body: records the
     * finish time and completion count. Owning the wrapper (rather
     * than detaching it) is what makes bodies cancellable.
     */
    Task<void> bodyWrap(Cpu& c, int i);

    /** Schedule one spawn event per CPU at @p when, in @p order. */
    void spawnBodies(Tick when, const std::vector<int>& order);

    CoreParams _params;
    EventQueue _eq;
    StatSet _stats;
    Rng _rng;
    std::vector<std::unique_ptr<Cpu>> _cpus;
    Barrier _barrier;
    MemorySystem* _memsys = nullptr;
    std::unique_ptr<ParallelEngine> _engine;

    // Live only during run().
    App* _app = nullptr;
    std::vector<Task<void>> _bodies;
    std::vector<Tick> _cpuFinish;
    int _finished = 0;
};

} // namespace tt

#endif // TT_CORE_MACHINE_HH
