/**
 * @file
 * The assembled target machine: N processing nodes over one event
 * queue, a memory system, and the application-run harness.
 */

#ifndef TT_CORE_MACHINE_HH
#define TT_CORE_MACHINE_HH

#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "core/cpu.hh"
#include "core/memsys.hh"
#include "core/params.hh"
#include "core/sync.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace tt
{

class Machine;

/**
 * A parallel application. setup() allocates and initializes shared
 * data at zero simulated cost; body() is the per-processor SPMD
 * coroutine; finish() extracts/validates results after the run.
 */
class App
{
  public:
    virtual ~App() = default;
    virtual std::string name() const = 0;
    virtual void setup(Machine& m) { (void)m; }
    virtual Task<void> body(Cpu& cpu) = 0;
    virtual void finish(Machine& m) { (void)m; }
};

/** Outcome of Machine::run(). */
struct RunResult
{
    Tick execTime = 0;            ///< max over CPUs of finish time
    std::vector<Tick> cpuFinish;  ///< per-CPU finish times
    std::uint64_t events = 0;     ///< events executed by the kernel
};

class Machine
{
  public:
    explicit Machine(const CoreParams& params)
        : _params(params),
          _rng(params.seed),
          _barrier(_eq, params.nodes, params.barrierLatency)
    {
        _cpus.reserve(params.nodes);
        for (int i = 0; i < params.nodes; ++i) {
            _cpus.push_back(
                std::make_unique<Cpu>(_eq, _params, i, _stats));
        }
    }

    const CoreParams& params() const { return _params; }
    EventQueue& eq() { return _eq; }
    StatSet& stats() { return _stats; }
    Rng& rng() { return _rng; }
    int nodes() const { return _params.nodes; }

    Cpu& cpu(int i) { return *_cpus.at(i); }

    /** The application-level global barrier. */
    Barrier& barrier() { return _barrier; }

    /** Install the memory system (not owned). */
    void
    setMemSystem(MemorySystem* ms)
    {
        _memsys = ms;
        for (auto& c : _cpus)
            c->bindMemSystem(ms);
    }

    MemorySystem& memsys() { return *_memsys; }

    /**
     * Build the sharded parallel engine (DESIGN.md §12): one lane per
     * node, @p threads workers, windows of @p lookahead ticks (the
     * minimum network latency). Call once, before run(). With the
     * engine attached, run() drives it instead of the bare queue;
     * simulated results stay byte-identical to the serial engine.
     */
    void
    enableParallel(int threads, Tick lookahead)
    {
        tt_assert(!_engine, "parallel engine already enabled");
        _engine = std::make_unique<ParallelEngine>(
            _eq, _params.nodes, lookahead, threads);
    }

    /** The parallel engine, or nullptr in serial mode. */
    ParallelEngine* engine() { return _engine.get(); }

    /**
     * Run @p app to completion on all nodes. Throws if any node's
     * coroutine threw, or panics if the event queue drains with
     * unfinished processors (a protocol deadlock).
     */
    RunResult run(App& app);

  private:
    CoreParams _params;
    EventQueue _eq;
    StatSet _stats;
    Rng _rng;
    std::vector<std::unique_ptr<Cpu>> _cpus;
    Barrier _barrier;
    MemorySystem* _memsys = nullptr;
    std::unique_ptr<ParallelEngine> _engine;
};

} // namespace tt

#endif // TT_CORE_MACHINE_HH
