/**
 * @file
 * The boundary between simulated CPUs and a target memory system.
 * Both targets (the DirNNB hardware-coherence baseline and
 * Typhoon + user-level protocols) implement MemorySystem.
 */

#ifndef TT_CORE_MEMSYS_HH
#define TT_CORE_MEMSYS_HH

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

class Cpu;

/** Kind of a tag-checked processor access. */
enum class MemOp : std::uint8_t { Read, Write };

/**
 * One processor load/store presented to the memory system. The
 * request object lives in the awaiting coroutine's frame and remains
 * valid until the memory system completes it.
 */
struct MemRequest
{
    Cpu* cpu = nullptr;
    Addr vaddr = 0;
    std::uint32_t size = 0;
    MemOp op = MemOp::Read;
    /** Read: filled at completion. Write: source bytes. */
    void* buf = nullptr;
    /** CPU local time when the access issued. */
    Tick issueTime = 0;
    /** Set by the awaitable before suspension on the slow path. */
    std::coroutine_handle<> waiter;
};

/** Immediate outcome of presenting an access. */
struct AccessOutcome
{
    /**
     * True: the access completed synchronously (data transferred);
     * @c cycles is the extra latency beyond the load/store
     * instruction itself. False: the memory system keeps the request
     * pointer and will resume the CPU via Cpu::completeAccess().
     */
    bool inlineDone = false;
    Tick cycles = 0;
};

/**
 * A complete target memory system: timing and data for every
 * tag-checked access, plus shared-segment allocation.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Present a processor access; see AccessOutcome. */
    virtual AccessOutcome access(MemRequest* req) = 0;

    /**
     * Allocate @p bytes of shared memory (page-granular under the
     * hood). @p home pins the pages' home node; kNoNode distributes
     * pages round-robin. Costless (application setup time).
     */
    virtual Addr shmalloc(std::size_t bytes, NodeId home = kNoNode) = 0;

    /** Home node of the page containing @p va. */
    virtual NodeId homeOf(Addr va) const = 0;

    /**
     * Debug/verification backdoors reading or writing the
     * authoritative copy with zero simulated cost. Only meaningful at
     * quiescence (setup, or after all CPUs have synchronized).
     */
    virtual void peek(Addr va, void* buf, std::size_t len) = 0;
    virtual void poke(Addr va, const void* buf, std::size_t len) = 0;

    /**
     * Watchdog probe (DESIGN.md §10): the issue tick of the oldest
     * still-open operation (suspended miss, posted-but-unserviced
     * buffered access), or kTickMax when the system is quiescent.
     * Default: a system with no asynchronous state never stalls.
     */
    virtual Tick oldestPendingSince() const { return kTickMax; }

    /**
     * True iff no protocol transaction is in flight anywhere — the
     * memory-system leg of the checkpoint quiescence gate (DESIGN.md
     * §15). Default: derived from the watchdog probe.
     */
    virtual bool
    quiescent() const
    {
        return oldestPendingSince() == kTickMax;
    }

    /**
     * Called by Machine::run once, right after App::setup returns —
     * the instant the post-shmalloc canonical state exists. Systems
     * supporting canonicalize() record their allocator watermarks
     * here. Default: nothing to record.
     */
    virtual void setupComplete() {}

    /** One shmalloc'd shared segment (checkpoint enumeration). */
    struct SharedRange
    {
        Addr va = 0;
        std::size_t bytes = 0;
    };

    /**
     * Every shared segment ever allocated, in allocation order — the
     * universe a checkpoint snapshots and a restore pokes back
     * (DESIGN.md §15). Default: none (no checkpoint support).
     */
    virtual std::vector<SharedRange> sharedAllocs() const
    {
        return {};
    }

    /**
     * Like peek(), but coherent: reads through the protocol's current
     * owner of each block instead of the home frame, so a snapshot
     * taken while a remote node holds a block dirty still sees the
     * latest coherent bytes. Zero simulated cost, zero state change.
     * Default: peek() (systems whose home copy is always current).
     */
    virtual void
    coherentPeek(Addr va, void* buf, std::size_t len)
    {
        peek(va, buf, len);
    }

    /**
     * Reset all protocol state to the deterministic post-shmalloc
     * canonical form: caches and TLBs flushed, directory entries
     * rebuilt fresh (home owns every block), per-component RNGs
     * reseeded from @p epochSeed, in-flight bookkeeping cleared
     * *without dereferencing* any suspended MemRequest (the frames may
     * already be destroyed by a crash rollback). Memory bytes are NOT
     * touched — the caller pokes snapshot bytes afterwards. Applied
     * identically by the checkpointing run at the snapshot instant and
     * by the restoring run, so both continue from the same state
     * (DESIGN.md §15). Default: unsupported.
     */
    virtual void
    canonicalize(std::uint64_t epochSeed)
    {
        (void)epochSeed;
        tt_panic("memory system '", name(),
                 "' does not support canonicalize");
    }

    virtual std::string name() const = 0;
};

} // namespace tt

#endif // TT_CORE_MEMSYS_HH
