/**
 * @file
 * The boundary between simulated CPUs and a target memory system.
 * Both targets (the DirNNB hardware-coherence baseline and
 * Typhoon + user-level protocols) implement MemorySystem.
 */

#ifndef TT_CORE_MEMSYS_HH
#define TT_CORE_MEMSYS_HH

#include <coroutine>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tt
{

class Cpu;

/** Kind of a tag-checked processor access. */
enum class MemOp : std::uint8_t { Read, Write };

/**
 * One processor load/store presented to the memory system. The
 * request object lives in the awaiting coroutine's frame and remains
 * valid until the memory system completes it.
 */
struct MemRequest
{
    Cpu* cpu = nullptr;
    Addr vaddr = 0;
    std::uint32_t size = 0;
    MemOp op = MemOp::Read;
    /** Read: filled at completion. Write: source bytes. */
    void* buf = nullptr;
    /** CPU local time when the access issued. */
    Tick issueTime = 0;
    /** Set by the awaitable before suspension on the slow path. */
    std::coroutine_handle<> waiter;
};

/** Immediate outcome of presenting an access. */
struct AccessOutcome
{
    /**
     * True: the access completed synchronously (data transferred);
     * @c cycles is the extra latency beyond the load/store
     * instruction itself. False: the memory system keeps the request
     * pointer and will resume the CPU via Cpu::completeAccess().
     */
    bool inlineDone = false;
    Tick cycles = 0;
};

/**
 * A complete target memory system: timing and data for every
 * tag-checked access, plus shared-segment allocation.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Present a processor access; see AccessOutcome. */
    virtual AccessOutcome access(MemRequest* req) = 0;

    /**
     * Allocate @p bytes of shared memory (page-granular under the
     * hood). @p home pins the pages' home node; kNoNode distributes
     * pages round-robin. Costless (application setup time).
     */
    virtual Addr shmalloc(std::size_t bytes, NodeId home = kNoNode) = 0;

    /** Home node of the page containing @p va. */
    virtual NodeId homeOf(Addr va) const = 0;

    /**
     * Debug/verification backdoors reading or writing the
     * authoritative copy with zero simulated cost. Only meaningful at
     * quiescence (setup, or after all CPUs have synchronized).
     */
    virtual void peek(Addr va, void* buf, std::size_t len) = 0;
    virtual void poke(Addr va, const void* buf, std::size_t len) = 0;

    /**
     * Watchdog probe (DESIGN.md §10): the issue tick of the oldest
     * still-open operation (suspended miss, posted-but-unserviced
     * buffered access), or kTickMax when the system is quiescent.
     * Default: a system with no asynchronous state never stalls.
     */
    virtual Tick oldestPendingSince() const { return kTickMax; }

    virtual std::string name() const = 0;
};

} // namespace tt

#endif // TT_CORE_MEMSYS_HH
