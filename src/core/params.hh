/**
 * @file
 * Core machine parameters shared by every target system. The full
 * Table 2 configuration (DirNNB cost model, Typhoon NP model) lives
 * with the respective subsystems; these are the common knobs.
 */

#ifndef TT_CORE_PARAMS_HH
#define TT_CORE_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace tt
{

/** Parameters common to both target systems (Table 2, "Common"). */
struct CoreParams
{
    int nodes = 32;                  ///< target processing nodes
    std::uint32_t blockSize = 32;    ///< coherence block, bytes
    std::uint32_t pageSize = 4096;   ///< VM page, bytes

    std::uint64_t cacheSize = 256 * 1024; ///< CPU cache capacity
    std::uint32_t cacheAssoc = 4;         ///< CPU cache ways
    std::uint32_t tlbEntries = 64;        ///< CPU TLB entries

    Tick localMissLatency = 29;  ///< local cache miss (Table 2)
    Tick tlbMissLatency = 25;    ///< TLB miss (Table 2)
    Tick barrierLatency = 11;    ///< hardware barrier (Table 2)

    /**
     * Modeled cost of an uncontended lock acquire/release pair split
     * across the two operations. Synchronization primitives are
     * outside the paper's Table 2 (section 2 footnote 1); we charge
     * the same fixed cost on both targets so the comparison is
     * unaffected.
     */
    Tick lockLatency = 40;

    /**
     * Local-time run-ahead bound (cycles). A CPU may execute purely
     * local work this far beyond global event time before yielding to
     * the event queue — the WWT-style conservative window. 0 forces a
     * yield on every access (slowest, maximally ordered).
     */
    Tick quantum = 32;

    /**
     * Worker threads for the sharded parallel engine (DESIGN.md §12).
     * 1 (default) keeps the plain serial EventQueue — the cross-check
     * mode; N > 1 builds a ParallelEngine whose simulated results are
     * byte-identical to the serial run at any thread count.
     */
    int threads = 1;

    std::uint64_t seed = 0x7734'1994ULL; ///< master RNG seed
};

} // namespace tt

#endif // TT_CORE_PARAMS_HH
