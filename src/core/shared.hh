/**
 * @file
 * Typed helpers over the shared segment: a GArray<T> wraps a
 * shared-memory allocation and exposes awaitable element accessors,
 * the idiom application kernels use for every shared reference.
 */

#ifndef TT_CORE_SHARED_HH
#define TT_CORE_SHARED_HH

#include <cstddef>

#include "core/cpu.hh"
#include "core/memsys.hh"
#include "sim/logging.hh"

namespace tt
{

/**
 * A shared-memory array of T. Elements must not straddle coherence
 * blocks (satisfied for power-of-two-sized scalar T on aligned
 * allocations, which shmalloc guarantees).
 */
template <typename T>
class GArray
{
  public:
    GArray() = default;

    GArray(MemorySystem& ms, std::size_t count, NodeId home = kNoNode)
        : _base(ms.shmalloc(count * sizeof(T), home)), _count(count)
    {
    }

    /** Wrap an existing allocation. */
    GArray(Addr base, std::size_t count) : _base(base), _count(count) {}

    Addr base() const { return _base; }
    std::size_t size() const { return _count; }
    Addr addrOf(std::size_t i) const { return _base + i * sizeof(T); }

    /** co_await arr.get(cpu, i). */
    Cpu::ReadAwaitable<T>
    get(Cpu& cpu, std::size_t i) const
    {
        tt_assert(i < _count, "GArray read out of range: ", i, " >= ",
                  _count);
        return cpu.read<T>(addrOf(i));
    }

    /** co_await arr.put(cpu, i, v). */
    Cpu::WriteAwaitable<T>
    put(Cpu& cpu, std::size_t i, T v) const
    {
        tt_assert(i < _count, "GArray write out of range: ", i, " >= ",
                  _count);
        return cpu.write<T>(addrOf(i), v);
    }

    /** Zero-cost backdoor initialization (setup time only). */
    void
    pokeAll(MemorySystem& ms, const T* src, std::size_t n) const
    {
        tt_assert(n <= _count, "pokeAll overflow");
        ms.poke(_base, src, n * sizeof(T));
    }

    void
    poke(MemorySystem& ms, std::size_t i, const T& v) const
    {
        ms.poke(addrOf(i), &v, sizeof(T));
    }

    T
    peek(MemorySystem& ms, std::size_t i) const
    {
        T v;
        ms.peek(addrOf(i), &v, sizeof(T));
        return v;
    }

  private:
    Addr _base = 0;
    std::size_t _count = 0;
};

} // namespace tt

#endif // TT_CORE_SHARED_HH
