/**
 * @file
 * Synchronization primitives for simulated applications: a reusable
 * global barrier (Table 2: 11-cycle barrier network, as on the CM-5)
 * and a queued lock with a fixed modeled cost. Both are
 * memory-system-independent so the two targets are charged equally
 * for synchronization, per the paper's methodology.
 */

#ifndef TT_CORE_SYNC_HH
#define TT_CORE_SYNC_HH

#include <coroutine>
#include <deque>
#include <utility>
#include <vector>

#include "core/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tt
{

/**
 * Reusable sense-reversing global barrier across @p nproc CPUs.
 * All participants resume at max(arrival times) + barrier latency.
 */
class Barrier
{
  public:
    Barrier(EventQueue& eq, int nproc, Tick latency)
        : _eq(eq), _nproc(nproc), _latency(latency)
    {
        _waiters.reserve(nproc);
    }

    struct Awaitable
    {
        Barrier& b;
        Cpu& cpu;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            b.arrive(cpu, h);
        }

        void await_resume() {}
    };

    /** co_await barrier.wait(cpu). */
    Awaitable wait(Cpu& cpu) { return Awaitable{*this, cpu}; }

    /** Number of completed barrier episodes. */
    std::uint64_t episodes() const { return _episodes; }

  private:
    void
    arrive(Cpu& cpu, std::coroutine_handle<> h)
    {
        if (cpu.localTime() > _maxArrive)
            _maxArrive = cpu.localTime();
        _waiters.emplace_back(&cpu, h);
        if (static_cast<int>(_waiters.size()) < _nproc)
            return;

        // Last arriver releases everyone.
        const Tick release =
            std::max(_maxArrive, _eq.now()) + _latency;
        auto batch = std::move(_waiters);
        _waiters.clear();
        _maxArrive = 0;
        ++_episodes;
        _eq.schedule(release, [batch = std::move(batch)] {
            for (auto& [cpu, handle] : batch) {
                cpu->syncTo(cpu->eq().now());
                handle.resume();
            }
        });
    }

    EventQueue& _eq;
    int _nproc;
    Tick _latency;
    Tick _maxArrive = 0;
    std::uint64_t _episodes = 0;
    std::vector<std::pair<Cpu*, std::coroutine_handle<>>> _waiters;
};

/**
 * A queued mutual-exclusion lock. Acquire charges half the modeled
 * lock cost; release charges the other half and hands the lock to the
 * next waiter, who resumes no earlier than the releaser's time.
 */
class SimLock
{
  public:
    explicit SimLock(EventQueue& eq, Tick latency)
        : _eq(eq), _halfCost(latency / 2)
    {
    }

    struct Awaitable
    {
        SimLock& lk;
        Cpu& cpu;

        bool
        await_ready()
        {
            cpu.advance(lk._halfCost);
            if (!lk._held) {
                lk._held = true;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            lk._queue.emplace_back(&cpu, h);
        }

        void await_resume() {}
    };

    /** co_await lock.acquire(cpu). Must later call release(cpu). */
    Awaitable acquire(Cpu& cpu) { return Awaitable{*this, cpu}; }

    /** Release; plain call (charges the releasing CPU). */
    void
    release(Cpu& cpu)
    {
        tt_assert(_held, "release of unheld lock");
        cpu.advance(_halfCost);
        if (_queue.empty()) {
            _held = false;
            return;
        }
        auto [next, h] = _queue.front();
        _queue.pop_front();
        // Ownership transfers; the next holder resumes once the
        // release has globally happened.
        const Tick when = std::max(cpu.localTime(), next->localTime());
        _eq.schedule(std::max(when, _eq.now()), [next = next, h = h] {
            next->syncTo(next->eq().now());
            h.resume();
        });
    }

    bool held() const { return _held; }

  private:
    EventQueue& _eq;
    Tick _halfCost;
    bool _held = false;
    std::deque<std::pair<Cpu*, std::coroutine_handle<>>> _queue;
};

} // namespace tt

#endif // TT_CORE_SYNC_HH
