/**
 * @file
 * Synchronization primitives for simulated applications: a reusable
 * global barrier (Table 2: 11-cycle barrier network, as on the CM-5)
 * and a queued lock with a fixed modeled cost. Both are
 * memory-system-independent so the two targets are charged equally
 * for synchronization, per the paper's methodology.
 */

#ifndef TT_CORE_SYNC_HH
#define TT_CORE_SYNC_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "core/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tt
{

/**
 * Reusable sense-reversing global barrier across @p nproc CPUs.
 * All participants resume at max(arrival times) + barrier latency.
 */
class Barrier
{
  public:
    Barrier(EventQueue& eq, int nproc, Tick latency)
        : _eq(eq), _nproc(nproc), _latency(latency)
    {
        _waiters.reserve(nproc);
    }

    struct Awaitable
    {
        Barrier& b;
        Cpu& cpu;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            b.arrive(cpu, h);
        }

        void await_resume() {}
    };

    /** co_await barrier.wait(cpu). */
    Awaitable wait(Cpu& cpu) { return Awaitable{*this, cpu}; }

    /** Number of completed barrier episodes. */
    std::uint64_t episodes() const { return _episodes; }

    /**
     * Hook invoked at every barrier release, inside the release event
     * *before* any waiter resumes: (episode number just completed,
     * release tick, CPU ids in arrival order). The checkpoint manager
     * snapshots here — a release point is the natural quiescent epoch
     * boundary, and the arrival order is recorded so a restored run
     * respawns bodies in exactly the order the original run resumed
     * them (same-tick event order is insertion order).
     */
    using EpochHook = std::function<void(
        std::uint64_t, Tick, const std::vector<int>&)>;

    void setEpochHook(EpochHook h) { _epochHook = std::move(h); }

    /** Restore the episode count (checkpoint restore / rollback). */
    void setEpisodes(std::uint64_t e) { _episodes = e; }

    /**
     * Drop parked waiters without resuming them (crash rollback: the
     * coroutine frames holding those continuations are about to be
     * destroyed, so the handles must never fire).
     */
    void
    clearWaiters()
    {
        _waiters.clear();
        _maxArrive = 0;
    }

  private:
    void
    arrive(Cpu& cpu, std::coroutine_handle<> h)
    {
        if (cpu.localTime() > _maxArrive)
            _maxArrive = cpu.localTime();
        _waiters.emplace_back(&cpu, h);
        if (static_cast<int>(_waiters.size()) < _nproc)
            return;

        // Last arriver releases everyone.
        const Tick release =
            std::max(_maxArrive, _eq.now()) + _latency;
        auto batch = std::move(_waiters);
        _waiters.clear();
        _maxArrive = 0;
        const std::uint64_t ep = ++_episodes;
        _eq.schedule(release, [this, ep, batch = std::move(batch)] {
            if (_epochHook) {
                std::vector<int> order;
                order.reserve(batch.size());
                for (auto& [cpu, handle] : batch)
                    order.push_back(cpu->id());
                _epochHook(ep, _eq.now(), order);
            }
            for (auto& [cpu, handle] : batch) {
                cpu->syncTo(cpu->eq().now());
                handle.resume();
            }
        });
    }

    EventQueue& _eq;
    int _nproc;
    Tick _latency;
    Tick _maxArrive = 0;
    std::uint64_t _episodes = 0;
    std::vector<std::pair<Cpu*, std::coroutine_handle<>>> _waiters;
    EpochHook _epochHook;
};

/**
 * A queued mutual-exclusion lock. Acquire charges half the modeled
 * lock cost; release charges the other half and hands the lock to the
 * next waiter, who resumes no earlier than the releaser's time.
 */
class SimLock
{
  public:
    explicit SimLock(EventQueue& eq, Tick latency)
        : _eq(eq), _halfCost(latency / 2)
    {
    }

    struct Awaitable
    {
        SimLock& lk;
        Cpu& cpu;

        bool
        await_ready()
        {
            cpu.advance(lk._halfCost);
            if (!lk._held) {
                lk._held = true;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            lk._queue.emplace_back(&cpu, h);
        }

        void await_resume() {}
    };

    /** co_await lock.acquire(cpu). Must later call release(cpu). */
    Awaitable acquire(Cpu& cpu) { return Awaitable{*this, cpu}; }

    /** Release; plain call (charges the releasing CPU). */
    void
    release(Cpu& cpu)
    {
        tt_assert(_held, "release of unheld lock");
        cpu.advance(_halfCost);
        if (_queue.empty()) {
            _held = false;
            return;
        }
        auto [next, h] = _queue.front();
        _queue.pop_front();
        // Ownership transfers; the next holder resumes once the
        // release has globally happened.
        const Tick when = std::max(cpu.localTime(), next->localTime());
        _eq.schedule(std::max(when, _eq.now()), [next = next, h = h] {
            next->syncTo(next->eq().now());
            h.resume();
        });
    }

    bool held() const { return _held; }

  private:
    EventQueue& _eq;
    Tick _halfCost;
    bool _held = false;
    std::deque<std::pair<Cpu*, std::coroutine_handle<>>> _queue;
};

} // namespace tt

#endif // TT_CORE_SYNC_HH
