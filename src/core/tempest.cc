#include "core/tempest.hh"

namespace tt
{

const char*
accessTagName(AccessTag t)
{
    switch (t) {
      case AccessTag::Invalid:
        return "Invalid";
      case AccessTag::ReadOnly:
        return "ReadOnly";
      case AccessTag::ReadWrite:
        return "ReadWrite";
      case AccessTag::Busy:
        return "Busy";
    }
    return "?";
}

} // namespace tt
