/**
 * @file
 * The Tempest interface (paper section 2): the user-level mechanisms a
 * program, compiler, or runtime library composes into shared-memory
 * policy. Four mechanism families:
 *
 *  1. low-overhead active messages,
 *  2. bulk node-to-node data transfer,
 *  3. user-level virtual-memory management,
 *  4. fine-grain access control — per-block tags with the nine
 *     operations of Table 1.
 *
 * Protocol libraries (Stache, the EM3D update protocol, user code)
 * program exclusively against these abstractions; Typhoon
 * (src/typhoon) is the hardware implementation.
 */

#ifndef TT_CORE_TEMPEST_HH
#define TT_CORE_TEMPEST_HH

#include <cstdint>
#include <functional>
#include <span>

#include "core/memsys.hh"
#include "net/message.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * Fine-grain access tag of a memory block (section 2.4). Busy has
 * Invalid semantics but lets protocol software distinguish blocks
 * needing special handling, e.g. outstanding prefetches (section 5.4).
 */
enum class AccessTag : std::uint8_t
{
    Invalid = 0,
    ReadOnly = 1,
    ReadWrite = 2,
    Busy = 3,
};

const char* accessTagName(AccessTag t);

/** Description of a block access fault delivered to a user handler. */
struct BlockFault
{
    Addr va = 0;          ///< faulting virtual address
    MemOp op = MemOp::Read;
    AccessTag tag = AccessTag::Invalid; ///< tag that caused the fault
    std::uint8_t mode = 0;              ///< page mode of the page
};

/**
 * Execution context of a user-level handler — on Typhoon, the NP with
 * its caches and TLBs. Provides the Tempest operations together with
 * instruction-cost accounting: every primitive charges its own cost;
 * plain computation in handler code is charged via charge().
 *
 * All addresses are virtual addresses in this node's address space.
 */
class TempestCtx
{
  public:
    virtual ~TempestCtx() = default;

    virtual NodeId nodeId() const = 0;

    /** Charge @p instructions cycles of plain handler computation. */
    virtual void charge(std::uint32_t instructions) = 0;

    /** Cycles charged so far by this handler activation. */
    virtual Tick charged() const = 0;

    // --- Table 1: fine-grain access control ----------------------------
    /** read-tag: current tag of the block containing @p va. */
    virtual AccessTag readTag(Addr va) = 0;
    /** set-RW: tag the block ReadWrite. */
    virtual void setRW(Addr va) = 0;
    /** set-RO: tag the block ReadOnly. */
    virtual void setRO(Addr va) = 0;
    /** set Busy (Invalid semantics, software-visible distinction). */
    virtual void setBusy(Addr va) = 0;
    /**
     * invalidate: tag the block Invalid and invalidate any local
     * CPU-cached copies (section 5.4).
     */
    virtual void invalidate(Addr va) = 0;
    /** force-read: load bypassing the tag check. */
    virtual void forceRead(Addr va, void* buf, std::uint32_t len) = 0;
    /** force-write: store bypassing the tag check. */
    virtual void forceWrite(Addr va, const void* buf,
                            std::uint32_t len) = 0;
    /** resume: restart the suspended computation thread. */
    virtual void resume() = 0;
    /**
     * True iff the computation thread is suspended on an access
     * whose address falls inside the block containing @p block_va.
     * Lets handlers for asynchronously arriving data (prefetch
     * replies) decide whether a resume is due.
     */
    virtual bool threadSuspendedOn(Addr block_va) const = 0;
    /**
     * True iff the local CPU holds the block's line owned-dirty (the
     * NP can observe this on the bus). Heuristic input for adaptive
     * protocols: a clean/absent line after eager writeback loses the
     * information.
     */
    virtual bool cpuCopyDirty(Addr va) = 0;
    /**
     * Bulk tag initialization of every block in the page containing
     * @p va (one RTLB entry write). The page-grain idiom protocol
     * page-fault handlers rely on.
     */
    virtual void setPageTags(Addr va, AccessTag t) = 0;

    // --- messaging ------------------------------------------------------
    /**
     * Send an active message. Charges send-queue store costs (one
     * word per cycle, section 5.1); the message departs at the
     * handler's currently-charged time. Deadlock-free protocols send
     * requests on VNet::Request (low receiver priority) and replies
     * on VNet::Response (section 5.1).
     */
    virtual void send(NodeId dst, HandlerId handler,
                      std::span<const Word> args,
                      const void* data = nullptr,
                      std::uint32_t data_len = 0,
                      VNet vnet = VNet::Request) = 0;

    // --- virtual memory management ---------------------------------------
    virtual PAddr allocPhysPage() = 0;
    virtual void freePhysPage(PAddr pa) = 0;
    virtual void mapPage(Addr va, PAddr pa, std::uint8_t mode) = 0;
    virtual void unmapPage(Addr va) = 0;
    /**
     * Remap the physical page under @p old_va to @p new_va (section
     * 2.3: stache replacement "remaps the page at the new virtual
     * address"). Equivalent to unmap + map of the same frame; tags
     * reset to Invalid.
     */
    virtual void remapPage(Addr old_va, Addr new_va,
                           std::uint8_t mode) = 0;
    /** True iff the page containing @p va is mapped on this node. */
    virtual bool pageMapped(Addr va) const = 0;
    /**
     * Page-level write permission (section 2.3: "a write to a
     * read-only page suspends the current computational thread and
     * invokes a user-level handler"). Pages map writable by default.
     */
    virtual bool pageWritable(Addr va) const = 0;
    virtual void setPageWritable(Addr va, bool writable) = 0;

    /**
     * Per-page uninterpreted user state (the RTLB's 48 bits: by
     * convention a 16-bit home node id plus a pointer-sized handle to
     * an arbitrary user structure, e.g. a Stache directory vector).
     */
    virtual std::uint64_t pageUserWord(Addr va) const = 0;
    virtual void setPageUserWord(Addr va, std::uint64_t w) = 0;

    /**
     * Account one handler data access to a protocol structure through
     * the NP data cache; @p key is any stable address-like value
     * identifying the datum (timing only — the structure itself is a
     * host object).
     */
    virtual void structAccess(std::uint64_t key) = 0;

    // --- bulk transfer ----------------------------------------------------
    /**
     * Start an asynchronous bulk transfer of @p len bytes from local
     * @p src_va to @p dst_va on @p dst (section 2.2 / 5.2). Data is
     * packetized into maximum-size packets carrying 64 data bytes.
     * When the last packet has been written at the destination, the
     * destination NP invokes @p done_handler there (0 = none); the
     * source NP's completion is observable via bulkPending().
     */
    virtual void bulkTransfer(Addr src_va, NodeId dst, Addr dst_va,
                              std::uint32_t len,
                              HandlerId done_handler = 0) = 0;
};

/** User-level handler invoked by an arriving active message. */
using MsgHandler = std::function<void(TempestCtx&, const Message&)>;

/** User-level handler invoked on a block access fault. */
using FaultHandler = std::function<void(TempestCtx&, const BlockFault&)>;

/**
 * User-level handler invoked when the computation thread touches an
 * unmapped shared page (coarse-grain management, section 2.3).
 */
using PageFaultHandler =
    std::function<void(TempestCtx&, Addr va, MemOp op)>;

/**
 * Per-node registration surface of the Tempest interface. A protocol
 * library installs its handlers through this at setup time.
 */
class Tempest
{
  public:
    virtual ~Tempest() = default;

    virtual NodeId nodeId() const = 0;

    virtual void registerMsgHandler(HandlerId id, MsgHandler h) = 0;

    /**
     * Install the block-fault handler for accesses of kind @p op to
     * pages whose mode is @p mode (the Typhoon dispatch selects the
     * handler from page mode + access type + tag; the tag is
     * delivered in the BlockFault).
     */
    virtual void registerFaultHandler(std::uint8_t mode, MemOp op,
                                      FaultHandler h) = 0;

    virtual void registerPageFaultHandler(PageFaultHandler h) = 0;

    /** Direct (zero-cost, setup-time) access to a handler context. */
    virtual TempestCtx& setupCtx() = 0;
};

} // namespace tt

#endif // TT_CORE_TEMPEST_HH
