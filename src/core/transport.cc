#include "core/transport.hh"

#include <algorithm>
#include <ostream>

#include "sim/logging.hh"

namespace tt
{

namespace
{

/**
 * Handler id carried by transport acks. No receiver is ever
 * registered for it — acks are consumed by the transport in
 * Network::deliver — but it makes acks identifiable in flight-recorder
 * traces (cf. kBulkDataHandler in the Typhoon NP).
 */
constexpr HandlerId kAckHandler = 0xFFFF'00ACu;

} // namespace

ReliableTransport::ReliableTransport(EventQueue& eq, Network& net,
                                     ReliableParams p, StatSet& stats)
    : _eq(eq),
      _net(net),
      _p(p),
      _nodes(net.nodes()),
      _chans(static_cast<std::size_t>(_nodes) * _nodes),
      _retransmits(stats.counter("net.retransmits")),
      _acks(stats.counter("net.acks")),
      _dupDropped(stats.counter("net.dup_dropped")),
      _oooDropped(stats.counter("net.ooo_dropped")),
      _deadLinks(stats.counter("net.dead_links"))
{
    tt_assert(_p.rto > 0 && _p.rtoMax >= _p.rto,
              "bad transport rto configuration");
    tt_assert(_p.maxRetries > 0, "transport maxRetries must be > 0");
}

ReliableTransport::Channel&
ReliableTransport::chan(NodeId src, NodeId dst)
{
    return _chans[static_cast<std::size_t>(src) * _nodes + dst];
}

const ReliableTransport::Channel&
ReliableTransport::chan(NodeId src, NodeId dst) const
{
    return _chans[static_cast<std::size_t>(src) * _nodes + dst];
}

Tick
ReliableTransport::oldestUnackedSince() const
{
    // The window deque is send-ordered, so front() is each channel's
    // oldest. Dead channels keep reporting theirs forever: a partition
    // that outlives the retry cap surfaces as a watchdog trip.
    Tick oldest = kTickMax;
    for (const Channel& c : _chans)
        oldest = std::min(
            oldest, c.headSentAt.load(std::memory_order_relaxed));
    return oldest;
}

void
ReliableTransport::describeOldest(std::ostream& os, int maxLines) const
{
    // Stalled channels sorted oldest-head-first; each line names the
    // exact message the channel is waiting to get acked.
    struct Stall
    {
        Tick sentAt;
        NodeId src, dst;
        std::uint32_t seq, txn;
        int retries;
        bool dead;
    };
    std::vector<Stall> stalls;
    for (int s = 0; s < _nodes; ++s) {
        for (int d = 0; d < _nodes; ++d) {
            const Channel& c = chan(s, d);
            if (c.window.empty())
                continue;
            const Channel::Unacked& head = c.window.front();
            stalls.push_back({head.sentAt, s, d, head.msg.seq,
                              head.msg.txn, c.retries, c.dead});
        }
    }
    std::sort(stalls.begin(), stalls.end(),
              [](const Stall& a, const Stall& b) {
                  return a.sentAt < b.sentAt;
              });
    if (stalls.empty()) {
        os << "  transport: all channels idle\n";
        return;
    }
    os << "  transport: " << stalls.size()
       << " channel(s) with unacked messages, oldest first:\n";
    int shown = 0;
    for (const Stall& s : stalls) {
        if (shown++ >= maxLines) {
            os << "    ... " << (stalls.size() - maxLines)
               << " more channel(s)\n";
            break;
        }
        os << "    " << s.src << "->" << s.dst << " seq=" << s.seq
           << " txn=" << s.txn << " sentAt=" << s.sentAt
           << " retries=" << s.retries << (s.dead ? " DEAD" : "")
           << "\n";
    }
}

void
ReliableTransport::reset()
{
    for (Channel& c : _chans) {
        c.window.clear();
        c.headSentAt.store(kTickMax, std::memory_order_relaxed);
        c.nextSeq = 1;
        c.rto = 0;
        c.retries = 0;
        ++c.timerGen; // dismiss any outstanding retransmission timer
        c.dead = false;
        c.expectSeq = 1;
        c.lastAcked = 0;
    }
}

void
ReliableTransport::onSend(Message& m, Tick when)
{
    TelemScope ts(_telem, HostTimer::Cat::Transport);
    Channel& c = chan(m.src, m.dst);
    m.tkind = TKind::Data;
    m.seq = c.nextSeq++;
    // Retain the stamped copy before the network touches it, so the
    // retransmission re-enters the fabric exactly as first sent (the
    // recorder stamps each physical copy's obsId separately).
    const bool wasIdle = c.window.empty();
    c.window.push_back({m, when});
    if (wasIdle)
        c.headSentAt.store(when, std::memory_order_relaxed);
    if (wasIdle && !c.dead) {
        c.rto = _p.rto;
        c.retries = 0;
        armTimer(m.src, m.dst, c);
    }
}

bool
ReliableTransport::onArrive(Message& m)
{
    TelemScope ts(_telem, HostTimer::Cat::Transport);
    // Node-local messages short-circuit the fabric unsequenced.
    if (m.tkind == TKind::None)
        return true;

    if (m.tkind == TKind::Ack) {
        // An ack from B to A acknowledges the A->B data channel.
        handleAck(m.dst, m.src, m.seq);
        return false;
    }

    Channel& c = chan(m.src, m.dst);
    if (m.seq == c.expectSeq) {
        ++c.expectSeq;
        c.lastAcked = m.seq;
        sendAck(m.dst, m.src, m.seq, m.txn);
        return true;
    }
    if (m.seq < c.expectSeq) {
        // Duplicate (fabric dup, or a retransmission whose original
        // arrived). Re-ack so the sender's window can advance even if
        // the first ack was lost.
        _dupDropped.inc();
    } else {
        // Reordered ahead of the expected message; go-back-N has no
        // resequencing buffer, the retransmission will re-supply it in
        // order.
        _oooDropped.inc();
    }
    c.lastAcked = c.expectSeq - 1;
    sendAck(m.dst, m.src, c.expectSeq - 1, m.txn);
    return false;
}

void
ReliableTransport::armTimer(NodeId src, NodeId dst, Channel& c)
{
    const std::uint64_t gen = ++c.timerGen;
    _eq.schedule(_eq.now() + c.rto, [this, src, dst, gen] {
        onTimeout(src, dst, gen);
    });
}

void
ReliableTransport::onTimeout(NodeId src, NodeId dst, std::uint64_t gen)
{
    TelemScope ts(_telem, HostTimer::Cat::Transport);
    Channel& c = chan(src, dst);
    // A superseded generation means the window advanced (or emptied)
    // after this timer was armed; EventQueue has no cancel, so stale
    // timers are dismissed here.
    if (gen != c.timerGen || c.dead || c.window.empty())
        return;

    if (++c.retries > _p.maxRetries) {
        // Retry cap: stop spending fabric bandwidth on a link that is
        // not coming back. The unacked window stays put, so the
        // watchdog probe sees the stall and fails the run fast.
        c.dead = true;
        _deadLinks.inc();
        if (_onDeadLink)
            _onDeadLink(src, dst);
        return;
    }

    _retransmits.inc();
    _net.sendFromTransport(c.window.front().msg, _eq.now());
    c.rto = std::min(c.rto * 2, _p.rtoMax);
    armTimer(src, dst, c);
}

void
ReliableTransport::sendAck(NodeId from, NodeId to, std::uint32_t cumSeq,
                           std::uint32_t txn)
{
    // Acks are real one-word response-network messages, charged like
    // any other traffic — but themselves unreliable: never acked and
    // never retransmitted (a lost ack is repaired by the data-side
    // retransmission it fails to suppress). They inherit the
    // transaction id of the data message they acknowledge so ack
    // traffic stays attributable (DESIGN.md §14).
    Message a;
    a.src = from;
    a.dst = to;
    a.vnet = VNet::Response;
    a.handler = kAckHandler;
    a.tkind = TKind::Ack;
    a.seq = cumSeq;
    a.txn = txn;
    _acks.inc();
    _net.sendFromTransport(std::move(a), _eq.now());
}

void
ReliableTransport::handleAck(NodeId src, NodeId dst,
                             std::uint32_t cumSeq)
{
    Channel& c = chan(src, dst);
    bool advanced = false;
    while (!c.window.empty() && c.window.front().msg.seq <= cumSeq) {
        c.window.pop_front();
        advanced = true;
    }
    if (!advanced)
        return; // stale cumulative ack; nothing new

    c.headSentAt.store(c.window.empty() ? kTickMax
                                        : c.window.front().sentAt,
                       std::memory_order_relaxed);
    c.retries = 0;
    c.rto = _p.rto;
    // A late ack can revive a link declared dead (e.g. a partition
    // healed after the retry cap): resume normal operation.
    c.dead = false;
    if (c.window.empty())
        ++c.timerGen; // cancel the outstanding timer
    else
        armTimer(src, dst, c); // restart the clock for the new head
}

} // namespace tt
