/**
 * @file
 * User-level reliable delivery over the unreliable fabric
 * (DESIGN.md §10).
 *
 * Tempest's premise is that protocol machinery belongs in user-level
 * software; when the fabric loses, duplicates, or reorders packets
 * (src/net/fault_model.hh), reliability is one more protocol layered
 * below the memory-system handlers. ReliableTransport interposes on
 * every remote message via TransportHooks and restores exactly the
 * contract the protocols were written against — lossless, exactly-once,
 * per-(src,dst)-FIFO delivery — so Stache, DirNNB, Migratory, and the
 * EM3D update protocol run unmodified.
 *
 * Design: go-back-N with cumulative acks, one channel per ordered
 * (src,dst) node pair. The sender stamps each outbound protocol
 * message with the channel's next sequence number and retains a copy;
 * the receiver accepts only the expected sequence number (duplicates
 * and out-of-order arrivals are dropped and re-acked), so delivery
 * order is restored without a resequencing buffer. A pending channel
 * retransmits its window head on an exponentially backed-off timeout
 * (rto, doubling to rtoMax) and declares the link dead after
 * maxRetries consecutive timeouts of the same head — which surfaces as
 * a watchdog trip rather than a silent hang.
 *
 * Acks are real one-word VNet::Response messages charged to the
 * network like any other traffic; they are themselves unreliable
 * (never acked, never retransmitted) — a lost ack is repaired by the
 * data-side retransmission it fails to suppress. Sequence numbers ride
 * in unused packet-header space (Message::seq/tkind, like obsId) and
 * are not charged words.
 *
 * The coherence sanitizer's view is unchanged: each logical message is
 * registered once at its original protocol send and once at its single
 * accepted delivery; retransmissions and acks enter the fabric through
 * Network::sendFromTransport, bypassing onMsgSend, and suppressed
 * arrivals never reach the handler dispatch that fires onMsgDeliver.
 */

#ifndef TT_CORE_TRANSPORT_HH
#define TT_CORE_TRANSPORT_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <vector>

#include "net/message.hh"
#include "net/network.hh"
#include "net/transport_hooks.hh"
#include "sim/event_queue.hh"
#include "sim/host_timer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

/** Reliable-transport tuning (ttsim --rto / --retries). */
struct ReliableParams
{
    bool enable = true; ///< false: protocols face the raw lossy fabric
    Tick rto = 128;     ///< initial retransmission timeout (ticks)
    Tick rtoMax = 4096; ///< exponential-backoff ceiling
    int maxRetries = 16; ///< consecutive head timeouts before dead-link
};

class ReliableTransport final : public TransportHooks
{
  public:
    ReliableTransport(EventQueue& eq, Network& net, ReliableParams p,
                      StatSet& stats);

    const ReliableParams& params() const { return _p; }

    /**
     * Watchdog probe: the send tick of the oldest retained-but-unacked
     * message across all channels, or kTickMax when every channel is
     * idle. A dead link keeps reporting its head forever, so a
     * partition that outlives maxRetries becomes a watchdog trip.
     */
    Tick oldestUnackedSince() const;

    /**
     * Watchdog tail dump: one line per stalled channel (oldest first,
     * capped), with the head message's sequence number, transaction id
     * (PR 8 tracing — 0 when --trace-txn is off), original send tick,
     * retry count, and dead-link status. Gives a hung run's post-
     * mortem the exact message the machine is waiting on.
     */
    void describeOldest(std::ostream& os, int maxLines = 8) const;

    /**
     * Fired when a channel hits the retry cap and is declared dead
     * (src, dst of the data channel). The recovery coordinator uses
     * this as its crash-detection signal (DESIGN.md §15); unset, a
     * dead link surfaces only as a watchdog trip. Fired every time a
     * channel dies, including again after a revival.
     */
    using DeadLinkListener = std::function<void(NodeId, NodeId)>;
    void
    setDeadLinkListener(DeadLinkListener f)
    {
        _onDeadLink = std::move(f);
    }

    /**
     * Recovery reset (DESIGN.md §15): every channel returns to its
     * initial state — windows emptied, sequence numbers rewound to 1,
     * timers cancelled, dead flags cleared. Stale acks arriving
     * against a reset channel are no-ops (empty-window early return in
     * handleAck); stale retransmission timers are dismissed by the
     * generation bump.
     */
    void reset();

    // TransportHooks
    void onSend(Message& m, Tick when) override;
    bool onArrive(Message& m) override;

    /** Attach the self-telemetry timer (nullptr = off, DESIGN.md §16). */
    void setTelemetry(HostTimer* t) { _telem = t; }

    /**
     * Resident bytes of the channel table and retransmission windows
     * (telemetry memory probe). The window copies are the transport's
     * real cost driver: nodes^2 channels each retaining unacked
     * messages.
     */
    std::size_t
    footprintBytes() const
    {
        std::size_t b = _chans.capacity() * sizeof(Channel);
        for (const Channel& c : _chans)
            b += c.window.size() * sizeof(Channel::Unacked);
        return b;
    }

  private:
    /** One ordered (src,dst) half-duplex data channel. */
    struct Channel
    {
        /** Sender: retained copies of sent-but-unacked messages. */
        struct Unacked
        {
            Message msg;
            Tick sentAt = 0; ///< original send tick (watchdog probe)
        };
        std::deque<Unacked> window;
        /**
         * Relaxed-atomic snapshot of window.front().sentAt (kTickMax
         * when idle), maintained O(1) at every window mutation so the
         * watchdog probe is a wait-free scan that never touches the
         * deque — safe even if a probe ever runs concurrently with
         * the parallel engine (DESIGN.md §12).
         */
        std::atomic<Tick> headSentAt{kTickMax};
        std::uint32_t nextSeq = 1;  ///< sender: next seq to stamp
        Tick rto = 0;               ///< current backed-off timeout
        int retries = 0;            ///< consecutive head timeouts
        std::uint64_t timerGen = 0; ///< cancels stale timer events
        bool dead = false;          ///< retry cap hit; stop resending

        // Receiver state for the reverse direction lives in the
        // (dst,src)-indexed channel's sender fields, so keep the
        // receive side separate and symmetric here:
        std::uint32_t expectSeq = 1; ///< receiver: next seq to accept
        std::uint32_t lastAcked = 0; ///< receiver: last cum-ack sent
    };

    Channel& chan(NodeId src, NodeId dst);
    const Channel& chan(NodeId src, NodeId dst) const;

    void armTimer(NodeId src, NodeId dst, Channel& c);
    void onTimeout(NodeId src, NodeId dst, std::uint64_t gen);
    void sendAck(NodeId from, NodeId to, std::uint32_t cumSeq,
                 std::uint32_t txn);
    void handleAck(NodeId src, NodeId dst, std::uint32_t cumSeq);

    EventQueue& _eq;
    Network& _net;
    ReliableParams _p;
    int _nodes;
    std::vector<Channel> _chans; ///< dense (src * nodes + dst)

    DeadLinkListener _onDeadLink; ///< recovery crash detection
    HostTimer* _telem = nullptr;  ///< self-telemetry timer, opt-in

    Counter& _retransmits; ///< net.retransmits
    Counter& _acks;        ///< net.acks (ack messages sent)
    Counter& _dupDropped;  ///< net.dup_dropped (seq < expected)
    Counter& _oooDropped;  ///< net.ooo_dropped (seq > expected)
    Counter& _deadLinks;   ///< net.dead_links (retry cap hits)
};

} // namespace tt

#endif // TT_CORE_TRANSPORT_HH
