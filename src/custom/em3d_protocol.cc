#include "custom/em3d_protocol.hh"

#include "mem/addr.hh"
#include "obs/recorder.hh"
#include "sim/logging.hh"

namespace tt
{

Em3dUpdateProtocol::Em3dUpdateProtocol(Machine& m, TyphoonMemSystem& ms,
                                       StacheParams p)
    : Stache(m, ms, p),
      _flushList(m.params().nodes),
      _upd(m.params().nodes),
      _cCustomPageFaults(m.stats().counter("em3d.custom_page_faults")),
      _cCustomGetRo(m.stats().counter("em3d.get_ro")),
      _cCopiesRegistered(m.stats().counter("em3d.copies_registered")),
      _cUpdatesReceived(m.stats().counter("em3d.updates_received")),
      _cUpdatesSent(m.stats().counter("em3d.updates_sent")),
      _cFlushes(m.stats().counter("em3d.flushes"))
{
    for (NodeId i = 0; i < _cp.nodes; ++i) {
        Tempest& t = _ms.tempest(i);

        // Take over the page-fault handler: custom pages map with the
        // custom mode, everything else falls through to Stache.
        t.registerPageFaultHandler(
            [this](TempestCtx& ctx, Addr va, MemOp op) {
                if (_customKind.contains(pageNum(va, _cp.pageSize)))
                    onCustomPageFault(ctx, va, op);
                else
                    onPageFault(ctx, va, op);
            });

        t.registerFaultHandler(kModeCustomStache, MemOp::Read,
                               [this](TempestCtx& ctx,
                                      const BlockFault& f) {
                                   onCustomReadFault(ctx, f);
                               });
        t.registerFaultHandler(
            kModeCustomStache, MemOp::Write,
            [](TempestCtx&, const BlockFault& f) {
                tt_panic("write to a remote EM3D value at ", f.va,
                         " — the update protocol is owner-computes");
            });
        // Custom home pages stay ReadWrite forever; a fault there is
        // a protocol bug.
        for (MemOp op : {MemOp::Read, MemOp::Write}) {
            t.registerFaultHandler(
                kModeCustomHome, op,
                [](TempestCtx&, const BlockFault& f) {
                    tt_panic("fault on a custom home page at ", f.va);
                });
        }

        t.registerMsgHandler(kCGetRO, [this](TempestCtx& ctx,
                                             const Message& m2) {
            onCGet(ctx, m2);
        });
        t.registerMsgHandler(kCData, [this](TempestCtx& ctx,
                                            const Message& m2) {
            onCData(ctx, m2);
        });
        t.registerMsgHandler(kCUpdate, [this](TempestCtx& ctx,
                                              const Message& m2) {
            onCUpdate(ctx, m2);
        });
        t.registerMsgHandler(kCFlush, [this](TempestCtx& ctx,
                                             const Message& m2) {
            onCFlush(ctx, m2);
        });
    }
}

void
Em3dUpdateProtocol::describeHandlers(FlightRecorder& rec) const
{
    Stache::describeHandlers(rec);
    rec.nameHandler(kCGetRO, "em3d.get_ro");
    rec.nameHandler(kCData, "em3d.data");
    rec.nameHandler(kCUpdate, "em3d.update");
    rec.nameHandler(kCFlush, "em3d.flush");
}

Addr
Em3dUpdateProtocol::allocCustom(std::size_t bytes, NodeId home,
                                Kind kind)
{
    tt_assert(home != kNoNode, "custom pages need an explicit home");
    const std::uint32_t ps = _cp.pageSize;
    const std::size_t npages = (bytes + ps - 1) / ps;
    const Addr base = _nextCustomVa;
    for (std::size_t i = 0; i < npages; ++i) {
        const Addr va = base + i * ps;
        _pageHome[pageNum(va, ps)] = home;
        _customKind[pageNum(va, ps)] = kind;
        TempestCtx& ctx = _ms.tempest(home).setupCtx();
        const PAddr pa = ctx.allocPhysPage();
        ctx.mapPage(va, pa, kModeCustomHome);
        ctx.setPageTags(va, AccessTag::ReadWrite);
    }
    _nextCustomVa = base + npages * ps;
    _allocs.push_back({base, bytes});
    return base;
}

void
Em3dUpdateProtocol::onCanonicalize(std::uint64_t epochSeed)
{
    (void)epochSeed;
    const std::uint32_t ps = _cp.pageSize;
    // Unwind the lazily-mapped consumer copies of custom pages: they
    // are pinned (never join the replacement FIFO), so the base-class
    // stache unwind does not see them.
    _customKind.forEach([&](std::uint64_t vpn, int) {
        const Addr va = static_cast<Addr>(vpn) * ps;
        const NodeId home = _pageHome.at(vpn);
        for (int n = 0; n < _cp.nodes; ++n) {
            if (n == home)
                continue;
            const PageMapping* pm = _ms.pageTableOf(n).lookup(va);
            if (!pm)
                continue;
            const PAddr pa = pm->ppage;
            _ms.recUnmapPage(n, va);
            _ms.recFreePhysPage(n, pa);
        }
    });
    // Registration / flush / update-counting state back to its
    // post-setup (empty) form. Any end-step waiter frame was already
    // destroyed by the rollback respawn — drop the handles cold.
    _copies.clear();
    for (auto& perKind : _flushList) {
        perKind[0].clear();
        perKind[1].clear();
    }
    for (NodeUpd& u : _upd)
        u = NodeUpd{};
}

void
Em3dUpdateProtocol::onCustomPageFault(TempestCtx& ctx, Addr va,
                                      MemOp op)
{
    tt_assert(op == MemOp::Read,
              "remote write fault on custom EM3D page at ", va);
    const NodeId self = ctx.nodeId();
    const Addr pageVa = alignDown(va, _cp.pageSize);
    const std::uint64_t vpn = pageNum(va, _cp.pageSize);
    ctx.charge(_p.pageFaultWork);
    _cCustomPageFaults.inc();
    if (ctx.pageMapped(va))
        return; // raced with an NP-side mapping

    _nodes[self].homeCache[vpn] = _pageHome.at(vpn);
    const PAddr pa = ctx.allocPhysPage();
    ctx.mapPage(pageVa, pa, kModeCustomStache);
    // Custom stache pages are pinned: they hold registered copies the
    // home keeps pushing updates into, so they never join the
    // replacement FIFO.
}

void
Em3dUpdateProtocol::onCustomReadFault(TempestCtx& ctx,
                                      const BlockFault& f)
{
    const NodeId self = ctx.nodeId();
    const Addr blk = blockAlign(f.va, _cp.blockSize);
    ctx.charge(_p.faultHandlerWork);
    const std::uint64_t vpn = pageNum(f.va, _cp.pageSize);
    ctx.structAccess(0xE800'0000'0000ULL + vpn * 8);
    const NodeId home = _nodes[self].homeCache.at(vpn);

    ctx.setBusy(blk);
    Word args[2] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32)};
    _cCustomGetRo.inc();
    ctx.send(home, kCGetRO, std::span<const Word>(args), nullptr, 0,
             VNet::Request);
}

void
Em3dUpdateProtocol::onCGet(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    const NodeId self = ctx.nodeId();
    ctx.charge(_p.homeHandlerWork);
    ctx.structAccess(entryKey(blk));

    // Register the copy permanently on the block's copy list.
    CopyList& cl = _copies[blk / _cp.blockSize];
    bool already = false;
    for (NodeId n : cl.consumers)
        already |= n == msg.src;
    tt_assert(!already, "duplicate EM3D copy registration for ", blk);
    if (cl.consumers.empty()) {
        const int kind = _customKind.at(pageNum(blk, _cp.pageSize));
        _flushList[self][kind].push_back(blk);
    }
    cl.consumers.push_back(msg.src);
    _cCopiesRegistered.inc();

    // Reply with the data; the home tag stays ReadWrite.
    std::vector<std::uint8_t> buf(_cp.blockSize);
    readBlockHost(self, blk, buf.data());
    const int kind = _customKind.at(pageNum(blk, _cp.pageSize));
    Word args[3] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32),
                    static_cast<Word>(kind)};
    ctx.send(msg.src, kCData, std::span<const Word>(args), buf.data(),
             _cp.blockSize, VNet::Response);
}

void
Em3dUpdateProtocol::onCData(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    const int kind = static_cast<int>(msg.args.at(2));
    const NodeId self = ctx.nodeId();
    ctx.charge(_p.dataHandlerWork);
    ctx.forceWrite(blk, msg.data.data(),
                   static_cast<std::uint32_t>(msg.data.size()));
    ctx.setRO(blk);
    ++_upd[self].expected[kind];
    if (ctx.threadSuspendedOn(blk))
        ctx.resume();
}

void
Em3dUpdateProtocol::onCUpdate(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    const int kind = static_cast<int>(msg.args.at(2));
    const NodeId self = ctx.nodeId();
    ctx.charge(2);
    // Only the value words travel — no invalidation, no ack.
    ctx.forceWrite(blk, msg.data.data(),
                   static_cast<std::uint32_t>(msg.data.size()));
    ++_upd[self].arrived[kind];
    _cUpdatesReceived.inc();
    maybeRelease(self, static_cast<Kind>(kind));
}

void
Em3dUpdateProtocol::onCFlush(TempestCtx& ctx, const Message& msg)
{
    const NodeId self = ctx.nodeId();
    const int kind = static_cast<int>(msg.args.at(0));
    ctx.charge(4);
    std::vector<std::uint8_t> buf(_cp.blockSize);
    FlightRecorder* obs = _ms.recorder();
    for (Addr blk : _flushList[self][kind]) {
        ctx.structAccess(entryKey(blk));
        readBlockHost(self, blk, buf.data());
        Word args[3] = {static_cast<Word>(blk),
                        static_cast<Word>(blk >> 32),
                        static_cast<Word>(kind)};
        const auto& consumers =
            _copies.at(blk / _cp.blockSize).consumers;
        if (obs && (obs->wantSharing() || obs->wantTxn()) &&
            !consumers.empty()) {
            obs->invalSent(self, blk, self,
                           static_cast<std::uint32_t>(consumers.size()),
                           InvKind::Update, _m.eq().now());
        }
        for (NodeId dst : consumers) {
            ctx.charge(1);
            ctx.send(dst, kCUpdate, std::span<const Word>(args),
                     buf.data(), _cp.blockSize, VNet::Request);
            _cUpdatesSent.inc();
        }
    }
}

void
Em3dUpdateProtocol::maybeRelease(NodeId n, Kind k)
{
    NodeUpd& u = _upd[n];
    if (!u.waiter[k] || u.arrived[k] < u.expected[k])
        return;
    u.arrived[k] -= u.expected[k];
    auto h = u.waiter[k];
    Cpu* cpu = u.waiterCpu[k];
    u.waiter[k] = nullptr;
    u.waiterCpu[k] = nullptr;
    _m.eq().scheduleIn(0, [cpu, h] {
        cpu->syncTo(cpu->eq().now());
        h.resume();
    });
}

Em3dUpdateProtocol::EndStepAwaitable
Em3dUpdateProtocol::endStep(Cpu& cpu, Kind kind)
{
    // The producer's flush runs on its own NP, freeing the CPU
    // (section 5.1: CPU-to-local-NP messages short-circuit the
    // network).
    _ms.cpuSend(cpu, cpu.id(), kCFlush,
                {static_cast<Word>(kind)});
    _cFlushes.inc();
    return EndStepAwaitable{*this, cpu, kind};
}

std::uint32_t
Em3dUpdateProtocol::expectedUpdates(NodeId n, Kind k) const
{
    return _upd.at(n).expected[k];
}

std::size_t
Em3dUpdateProtocol::copyListSize(Addr blk) const
{
    const CopyList* cl = _copies.find(blk / _cp.blockSize);
    return cl ? cl->consumers.size() : 0;
}

} // namespace tt
