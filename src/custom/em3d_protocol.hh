/**
 * @file
 * The custom delayed-update protocol for EM3D (paper section 4) —
 * the paper's showcase of user-level protocol customization.
 *
 * Two new page types are layered over Stache: custom home pages and
 * custom stache pages. Graph values live on custom home pages whose
 * tags stay ReadWrite at the home forever, so owner-compute writes
 * never fault and remote copies go stale *within* a step by design.
 * A consumer's first read faults and registers the copy on the home's
 * per-block copy list (and bumps the consumer's expected-update
 * count); copies are never invalidated. At the end of each half-step
 * the producer's endStep() sends only the modified values — no
 * invalidations, no acknowledgments — and consumers simply count
 * arriving updates until all of their stached blocks are refreshed (a
 * fuzzy barrier in the handlers).
 *
 * Values are grouped per kind (E values vs. H values) because the
 * two half-steps of EM3D flush and await different value sets.
 */

#ifndef TT_CUSTOM_EM3D_PROTOCOL_HH
#define TT_CUSTOM_EM3D_PROTOCOL_HH

#include <array>
#include <coroutine>
#include <optional>
#include <vector>

#include "stache/stache.hh"

namespace tt
{

class Em3dUpdateProtocol : public Stache
{
  public:
    /** Value kinds: the bipartite halves of the EM3D graph. */
    enum Kind : int { kE = 0, kH = 1 };

    /** Page modes for the custom pages. */
    static constexpr std::uint8_t kModeCustomHome = 3;
    static constexpr std::uint8_t kModeCustomStache = 4;

    /** Active-message handler ids of the custom protocol. */
    enum Handlers : HandlerId
    {
        kCGetRO = 0x200, ///< consumer -> home: register + fetch
        kCData,          ///< home -> consumer: data + registration ack
        kCUpdate,        ///< home -> consumer: refreshed block values
        kCFlush,         ///< CPU -> own NP: send updates for a kind
    };

    Em3dUpdateProtocol(Machine& m, TyphoonMemSystem& ms,
                       StacheParams p = {});

    std::string protocolName() const override { return "Em3dUpdate"; }
    void describeHandlers(FlightRecorder& rec) const override;

    /**
     * Allocate value storage on custom home pages at @p home. All
     * blocks start ReadWrite at the home and stay that way.
     */
    Addr allocCustom(std::size_t bytes, NodeId home, Kind kind);

    /**
     * End-of-half-step: flush this node's modified @p kind values to
     * all registered consumers, then wait until all of this node's
     * own stached @p kind blocks have been refreshed (update
     * counting). Callers follow with the machine barrier, which
     * bounds skew to one half-step.
     */
    struct EndStepAwaitable;
    EndStepAwaitable endStep(Cpu& cpu, Kind kind);

    // --- introspection ----------------------------------------------------
    std::uint32_t expectedUpdates(NodeId n, Kind k) const;
    std::size_t copyListSize(Addr blk) const;

  private:
    void onCanonicalize(std::uint64_t epochSeed) override;
    void onCustomPageFault(TempestCtx& ctx, Addr va, MemOp op);
    void onCustomReadFault(TempestCtx& ctx, const BlockFault& f);
    void onCGet(TempestCtx& ctx, const Message& msg);
    void onCData(TempestCtx& ctx, const Message& msg);
    void onCUpdate(TempestCtx& ctx, const Message& msg);
    void onCFlush(TempestCtx& ctx, const Message& msg);
    void maybeRelease(NodeId n, Kind k);

    struct CopyList
    {
        std::vector<NodeId> consumers;
    };

    struct NodeUpd
    {
        std::array<std::uint32_t, 2> expected{{0, 0}};
        std::array<std::uint32_t, 2> arrived{{0, 0}};
        std::array<std::coroutine_handle<>, 2> waiter{};
        std::array<Cpu*, 2> waiterCpu{};
    };

    /** vpn -> kind for custom pages (home and stache sides). */
    DenseMap<int> _customKind;
    /** home blocks with registered copies, per home node and kind. */
    std::vector<std::array<std::vector<Addr>, 2>> _flushList;
    DenseMap<CopyList> _copies; ///< keyed by block number
    std::vector<NodeUpd> _upd;
    Addr _nextCustomVa = 0x7000'0000;

    // Hot-path stat handles, resolved once at construction.
    Counter& _cCustomPageFaults;
    Counter& _cCustomGetRo;
    Counter& _cCopiesRegistered;
    Counter& _cUpdatesReceived;
    Counter& _cUpdatesSent;
    Counter& _cFlushes;

  public:
    /** Awaitable for the update-counting fuzzy barrier. */
    struct EndStepAwaitable
    {
        Em3dUpdateProtocol& proto;
        Cpu& cpu;
        Kind kind;

        bool
        await_ready()
        {
            NodeUpd& u = proto._upd[cpu.id()];
            if (u.arrived[kind] >= u.expected[kind]) {
                u.arrived[kind] -= u.expected[kind];
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            NodeUpd& u = proto._upd[cpu.id()];
            u.waiter[kind] = h;
            u.waiterCpu[kind] = &cpu;
        }

        void await_resume() {}
    };
};

} // namespace tt

#endif // TT_CUSTOM_EM3D_PROTOCOL_HH
