#include "custom/migratory.hh"

namespace tt
{

void
MigratoryProtocol::homeRequest(TempestCtx& ctx, Addr blk,
                               NodeId requester, bool wantRW,
                               bool upgrade)
{
    Pattern& p = _pattern[blk];
    // The pattern bits live in the directory entry's spare state
    // bits (the 64-bit entry has room), so reading them costs the
    // same NP D-cache line the base protocol touches anyway.
    ctx.structAccess(entryKey(blk));
    ctx.charge(3); // classification bookkeeping

    if (wantRW) {
        // An explicit write request: ownership moves (or stays).
        if (p.lastOwner != kNoNode && p.lastOwner != requester) {
            if (++p.migrations >= _threshold)
                p.migratory = true;
        }
        p.lastOwner = requester;
        p.readSinceWrite = false;
        p.promoted = false;
        Stache::homeRequest(ctx, blk, requester, true, upgrade);
        return;
    }

    // Read request.
    if (p.migratory && requester != ctx.nodeId()) {
        // Promote: hand out a writable copy; the follow-up write
        // hits locally. Whether the *previous* owner actually wrote
        // is fed back by onOwnerDataReturned() when its copy is
        // recalled — a clean return demotes the block.
        _cPromotions.inc();
        p.lastOwner = requester;
        p.promoted = true;
        p.readSinceWrite = false;
        Stache::homeRequest(ctx, blk, requester, /*wantRW=*/true,
                            /*upgrade=*/false);
        return;
    }

    if (p.readSinceWrite) {
        // Second read with no intervening write: the block is being
        // read-shared; keep it declassified.
        p.migratory = false;
        p.migrations = 0;
    }
    p.readSinceWrite = true;
    Stache::homeRequest(ctx, blk, requester, false, upgrade);
}

void
MigratoryProtocol::onOwnerDataReturned(Addr blk, NodeId from,
                                       bool modified)
{
    Pattern* pp = _pattern.find(blk);
    if (!pp)
        return;
    Pattern& p = *pp;
    (void)from;
    if (modified)
        return; // genuine migratory use: keep the classification
    if (p.migratory) {
        // A promoted (or explicit) owner returned the block clean:
        // the write never came, so promotion is wasted ping-pong.
        p.migratory = false;
        p.migrations = 0;
        p.promoted = false;
        _cDemotions.inc();
    }
}

std::size_t
MigratoryProtocol::migratoryBlocks() const
{
    std::size_t n = 0;
    _pattern.forEach(
        [&](Addr, const Pattern& p) { n += p.migratory; });
    return n;
}

std::uint64_t
MigratoryProtocol::promotions() const
{
    return _stats.get("migratory.promotions");
}

} // namespace tt
