/**
 * @file
 * A second user-level custom protocol: migratory-sharing
 * optimization, in the Cox/Fowler & Stenström et al. style, built —
 * like Stache itself — purely from Tempest mechanisms. It
 * demonstrates the paper's central thesis from another angle: the
 * *home-side software* classifies each block's sharing pattern at
 * runtime and reshapes the protocol accordingly, something a
 * hard-wired controller cannot do per-application.
 *
 * Detection (per block, at the home): read-modify-write migration
 * looks like GetRW/upgrade requests from alternating nodes, each
 * preceded by that node's read. After `threshold` ownership
 * migrations between distinct nodes — with no intervening run of
 * pure readers — a block is classified migratory, and subsequent
 * read requests are *promoted*: the home hands out a writable copy
 * immediately, so the requester's following write hits locally and
 * the upgrade round trip (request + invalidation + grant) vanishes.
 * Two consecutive reads by different nodes declassify the block
 * (it is being read-shared, where promotion would cause needless
 * ping-ponging).
 */

#ifndef TT_CUSTOM_MIGRATORY_HH
#define TT_CUSTOM_MIGRATORY_HH

#include "stache/stache.hh"

namespace tt
{

class MigratoryProtocol : public Stache
{
  public:
    MigratoryProtocol(Machine& m, TyphoonMemSystem& ms,
                      StacheParams p = {}, int threshold = 2)
        : Stache(m, ms, p),
          _threshold(threshold),
          _cPromotions(m.stats().counter("migratory.promotions")),
          _cDemotions(m.stats().counter("migratory.demotions"))
    {
    }

    std::string protocolName() const override { return "Migratory"; }

    /** Blocks currently classified migratory. */
    std::size_t migratoryBlocks() const;
    /** Promotions performed (reads granted writable copies). */
    std::uint64_t promotions() const;

  protected:
    void homeRequest(TempestCtx& ctx, Addr blk, NodeId requester,
                     bool wantRW, bool upgrade) override;
    void onOwnerDataReturned(Addr blk, NodeId from,
                             bool modified) override;

    /** Canonicalize: the learned classifications reset with the rest
     *  of the directory state (post-setup has no history). */
    void
    onCanonicalize(std::uint64_t epochSeed) override
    {
        (void)epochSeed;
        _pattern.clear();
    }

  private:
    struct Pattern
    {
        NodeId lastOwner = kNoNode;
        int migrations = 0;        ///< distinct-node ownership moves
        bool readSinceWrite = false;
        bool migratory = false;
        bool promoted = false; ///< current owner got RW from a read
    };

    OpenMap<Addr, Pattern> _pattern;
    int _threshold;

    // Hot-path stat handles, resolved once at construction.
    Counter& _cPromotions;
    Counter& _cDemotions;
};

} // namespace tt

#endif // TT_CUSTOM_MIGRATORY_HH
