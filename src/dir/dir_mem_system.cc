#include "dir/dir_mem_system.hh"

#include "core/cpu.hh"
#include "core/tempest.hh"
#include "mem/addr.hh"
#include "sim/logging.hh"

namespace tt
{

DirMemSystem::DirMemSystem(Machine& m, Network& net, DirParams params)
    : _m(m),
      _net(net),
      _p(params),
      _cp(m.params()),
      _stats(m.stats()),
      _store(m.params().pageSize),
      _nextVa(0x1000'0000),
      _cFirstTouch(m.stats().counter("dir.first_touch_assignments")),
      _cTlbMisses(m.stats().counter("dir.tlb_misses")),
      _cCacheHits(m.stats().counter("dir.cache_hits")),
      _cLocalMisses(m.stats().counter("dir.local_misses")),
      _cLocalUpgrades(m.stats().counter("dir.local_upgrades")),
      _cLocalConflictMisses(
          m.stats().counter("dir.local_conflict_misses")),
      _cRemoteMisses(m.stats().counter("dir.remote_misses")),
      _cWritebacks(m.stats().counter("dir.writebacks")),
      _cInvReceived(m.stats().counter("dir.inv_received")),
      _cRecallsReceived(m.stats().counter("dir.recalls_received")),
      _cDeferred(m.stats().counter("dir.deferred_requests")),
      _cOps(m.stats().counter("dir.ops")),
      _cRecallsSent(m.stats().counter("dir.recalls_sent")),
      _cInvSent(m.stats().counter("dir.inv_sent")),
      _cWritebacksReceived(
          m.stats().counter("dir.writebacks_received"))
{
    _nodes.reserve(_cp.nodes);
    _openSince =
        std::make_unique<std::atomic<Tick>[]>(_cp.nodes);
    for (int i = 0; i < _cp.nodes; ++i)
        _openSince[i].store(kTickMax, std::memory_order_relaxed);
    for (int i = 0; i < _cp.nodes; ++i) {
        Node n;
        n.cache = std::make_unique<CacheModel>(
            _cp.cacheSize, _cp.cacheAssoc, _cp.blockSize,
            _cp.seed * 7919 + i);
        n.tlb = std::make_unique<TlbModel>(_cp.tlbEntries);
        _nodes.push_back(std::move(n));
    }
    for (NodeId i = 0; i < _cp.nodes; ++i) {
        _net.setReceiver(i, [this, i](Message&& msg) {
            onMessage(i, std::move(msg));
        });
    }
}

// --------------------------------------------------------------------
// Allocation and backing store
// --------------------------------------------------------------------

Addr
DirMemSystem::shmalloc(std::size_t bytes, NodeId home)
{
    tt_assert(bytes > 0, "shmalloc of zero bytes");
    const std::uint32_t ps = _cp.pageSize;
    const std::size_t npages = (bytes + ps - 1) / ps;
    const Addr base = _nextVa;
    for (std::size_t i = 0; i < npages; ++i) {
        const Addr va = base + i * ps;
        _store.allocPageAt(va);
        if (home != kNoNode) {
            _pageHome[pageNum(va, ps)] = home;
        } else if (!_p.firstTouch) {
            _pageHome[pageNum(va, ps)] = _rrNext;
            _rrNext = (_rrNext + 1) % _cp.nodes;
        }
        // first-touch with no pin: left unassigned until first access
    }
    _nextVa = base + npages * ps;
    _allocs.push_back({base, bytes});
    return base;
}

void
DirMemSystem::canonicalize(std::uint64_t epochSeed)
{
    // Deterministic reset to the post-shmalloc canonical form
    // (DESIGN.md §15). The global store is written eagerly, so no
    // dirty cache data needs flushing home first; dropping every tag
    // and directory entry leaves the home owning every block, which
    // is exactly the state right after allocation.
    const Tick now = _m.eq().now();
    for (int i = 0; i < _cp.nodes; ++i) {
        Node& n = _nodes[i];
        n.cache->flushAll();
        n.cache->reseed(epochSeed * 7919 + i);
        n.tlb->flush();
        n.ctrlFree = now;
        // Pending misses are dropped WITHOUT touching miss.req: after
        // a crash rollback the awaiting coroutine frames are already
        // destroyed and the pointers dangle.
        n.pending.clear();
        _openSince[i].store(kTickMax, std::memory_order_relaxed);
    }
    _dir.clear();
    _faultInvalidates = 0;
    _faultDowngrades = 0;
}

NodeId
DirMemSystem::homeOf(Addr va) const
{
    const NodeId* h = _pageHome.find(pageNum(va, _cp.pageSize));
    return h ? *h : kNoNode;
}

NodeId
DirMemSystem::resolveHome(Addr va, NodeId toucher)
{
    auto [h, inserted] =
        _pageHome.findOrInsert(pageNum(va, _cp.pageSize));
    if (inserted) {
        h = toucher;
        _cFirstTouch.inc();
    }
    return h;
}

void
DirMemSystem::peek(Addr va, void* buf, std::size_t len)
{
    _store.read(va, buf, len);
}

void
DirMemSystem::poke(Addr va, const void* buf, std::size_t len)
{
    _store.write(va, buf, len);
    if (_checker)
        _checker->onBackdoorWrite(va, buf, len);
}

void
DirMemSystem::transfer(MemRequest* req)
{
    if (req->op == MemOp::Read)
        _store.read(req->vaddr, req->buf, req->size);
    else
        _store.write(req->vaddr, req->buf, req->size);
}

// --------------------------------------------------------------------
// Directory access helpers
// --------------------------------------------------------------------

DirMemSystem::DirEntry&
DirMemSystem::entry(Addr blk)
{
    auto [e, inserted] = _dir.findOrInsert(blk / _cp.blockSize);
    if (inserted)
        e.sharers = NodeSet(_cp.nodes);
    return e;
}

const DirMemSystem::DirEntry*
DirMemSystem::findEntry(Addr blk) const
{
    return _dir.find(blk / _cp.blockSize);
}

DirMemSystem::EntryView
DirMemSystem::inspect(Addr va) const
{
    EntryView v;
    const DirEntry* e = findEntry(blockAlign(va, _cp.blockSize));
    if (!e)
        return v;
    v.state = e->state;
    v.sharers = e->sharers.members();
    v.owner = e->owner;
    v.busy = e->mshr != nullptr;
    return v;
}

void
DirMemSystem::setChecker(CheckHooks* c)
{
    _checker = c;
    // Mirror every cache line-state mutation into the checker's copy
    // tables; the central CacheModel hook covers fills, victim
    // evictions, invalidations, downgrades, upgrades and flushes, so
    // the mirror cannot drift from reality via a missed call site.
    for (NodeId n = 0; n < static_cast<NodeId>(_nodes.size()); ++n) {
        if (!c) {
            _nodes[n].cache->setStateListener(nullptr);
            continue;
        }
        _nodes[n].cache->setStateListener(
            [c, n](Addr blk, LineState st) {
                AccessTag t = AccessTag::Invalid;
                if (st == LineState::Shared)
                    t = AccessTag::ReadOnly;
                else if (st == LineState::Owned)
                    t = AccessTag::ReadWrite;
                c->onTagChange(n, blk, t);
            });
    }
}

DirMemSystem::EntryPeek
DirMemSystem::peekEntry(Addr blk) const
{
    EntryPeek p;
    const DirEntry* e = findEntry(blockAlign(blk, _cp.blockSize));
    if (!e)
        return p;
    p.state = e->state;
    p.owner = e->owner;
    p.busy = e->mshr != nullptr;
    p.sharers = &e->sharers;
    return p;
}

bool
DirMemSystem::quiescent() const
{
    bool busy = false;
    _dir.forEach([&](std::uint64_t, const DirEntry& e) {
        busy |= e.mshr != nullptr;
    });
    if (busy)
        return false;
    for (const auto& n : _nodes)
        if (!n.pending.empty())
            return false;
    return true;
}

Tick
DirMemSystem::oldestPendingSince() const
{
    // Watchdog probe: every remote miss parks a PendingMiss at the
    // requesting node until the grant arrives, so the oldest pending
    // issue time bounds how long any transaction has been open.
    // Wait-free scan over the per-node relaxed-atomic snapshots (kept
    // current by noteOpenSince at every pending-map mutation) instead
    // of walking the maps themselves.
    Tick oldest = kTickMax;
    for (int i = 0; i < _cp.nodes; ++i)
        oldest = std::min(
            oldest, _openSince[i].load(std::memory_order_relaxed));
    return oldest;
}

Tick
DirMemSystem::ctrlStart(NodeId n, Tick earliest)
{
    Tick& free = _nodes[n].ctrlFree;
    const Tick start = std::max(earliest, free);
    return start;
}

// --------------------------------------------------------------------
// Processor access path
// --------------------------------------------------------------------

AccessOutcome
DirMemSystem::access(MemRequest* req)
{
    const NodeId self = req->cpu->id();
    Node& n = _nodes[self];
    const Addr va = req->vaddr;
    tt_assert(withinOneBlock(va, req->size, _cp.blockSize),
              "access crosses a block boundary at ", va);

    Tick cost = 0;
    if (!n.tlb->access(pageNum(va, _cp.pageSize))) {
        cost += _cp.tlbMissLatency;
        _cTlbMisses.inc();
    }

    // Cache hit fast paths.
    if (req->op == MemOp::Read) {
        if (n.cache->probeRead(va)) {
            _cCacheHits.inc();
            transfer(req);
            if (_checker)
                _checker->onAccess(self, va, req->size, false,
                                   req->buf);
            if (_obs && _obs->wantSharing())
                _obs->blockAccess(self, va, req->size, false,
                                  req->issueTime + cost);
            return {true, cost};
        }
    } else {
        if (n.cache->probeWrite(va)) {
            _cCacheHits.inc();
            transfer(req);
            if (_checker)
                _checker->onAccess(self, va, req->size, true,
                                   req->buf);
            if (_obs && _obs->wantSharing())
                _obs->blockAccess(self, va, req->size, true,
                                  req->issueTime + cost);
            return {true, cost};
        }
    }

    const Addr blk = blockAlign(va, _cp.blockSize);
    const NodeId home = resolveHome(va, self);
    const bool upgrade =
        req->op == MemOp::Write && n.cache->presentShared(va);

    if (home == self) {
        // Local miss: satisfiable inline unless the block conflicts
        // with remote copies or an in-flight transaction.
        DirEntry* e = const_cast<DirEntry*>(findEntry(blk));
        const bool busy = e && e->mshr;
        const DirState st = e ? e->state : DirState::Idle;
        if (!busy) {
            if (req->op == MemOp::Read && st != DirState::Excl) {
                const LineState fillState = st == DirState::Idle
                                                ? LineState::Owned
                                                : LineState::Shared;
                CacheResult fres = n.cache->fill(va, fillState);
                handleVictim(self, fres,
                             req->issueTime + cost +
                                 _cp.localMissLatency);
                transfer(req);
                _cLocalMisses.inc();
                if (_checker) {
                    _checker->onBlockEvent(self, blk, "local-fill");
                    _checker->onAccess(self, va, req->size, false,
                                       req->buf);
                    _checker->onEventEnd();
                }
                if (_obs && _obs->wantSharing()) {
                    _obs->blockAccess(self, va, req->size, false,
                                      req->issueTime + cost +
                                          _cp.localMissLatency);
                }
                return {true, cost + _cp.localMissLatency};
            }
            if (req->op == MemOp::Write && st == DirState::Idle) {
                if (upgrade) {
                    // Stale Shared line with no remote copies left.
                    n.cache->upgrade(va, true);
                    transfer(req);
                    _cLocalUpgrades.inc();
                    if (_checker) {
                        _checker->onBlockEvent(self, blk,
                                               "local-upgrade");
                        _checker->onAccess(self, va, req->size, true,
                                           req->buf);
                        _checker->onEventEnd();
                    }
                    if (_obs && _obs->wantSharing()) {
                        _obs->blockAccess(self, va, req->size, true,
                                          req->issueTime + cost);
                    }
                    return {true, cost};
                }
                CacheResult fres = n.cache->fill(va, LineState::Owned);
                n.cache->probeWrite(va); // mark dirty
                handleVictim(self, fres,
                             req->issueTime + cost +
                                 _cp.localMissLatency);
                transfer(req);
                _cLocalMisses.inc();
                if (_checker) {
                    _checker->onBlockEvent(self, blk, "local-fill");
                    _checker->onAccess(self, va, req->size, true,
                                       req->buf);
                    _checker->onEventEnd();
                }
                if (_obs && _obs->wantSharing()) {
                    _obs->blockAccess(self, va, req->size, true,
                                      req->issueTime + cost +
                                          _cp.localMissLatency);
                }
                return {true, cost + _cp.localMissLatency};
            }
        }
        // Local access with remote conflict: enter the home state
        // machine without network hops.
        tt_assert(!n.pending.count(blk),
                  "duplicate outstanding miss at node ", self);
        n.pending[blk] = PendingMiss{req, upgrade};
        noteOpenSince(self);
        _cLocalConflictMisses.inc();
        if (_obs)
            _obs->missStart(self, blk, req->op == MemOp::Write,
                            req->issueTime + cost);
        homeRequest(self, blk, self, req->op, upgrade,
                    req->issueTime + cost);
        if (_checker)
            _checker->onEventEnd();
        return {false, 0};
    }

    // Remote miss: issue a request message after the launch overhead.
    tt_assert(!n.pending.count(blk),
              "duplicate outstanding miss at node ", self);
    n.pending[blk] = PendingMiss{req, upgrade};
    noteOpenSince(self);
    _cRemoteMisses.inc();
    if (_obs)
        _obs->missStart(self, blk, req->op == MemOp::Write,
                        req->issueTime + cost);
    const MsgKind kind = req->op == MemOp::Read
                             ? kReadReq
                             : (upgrade ? kUpgradeReq : kWriteReq);
    sendMsg(self, home, VNet::Request, kind, blk,
            req->issueTime + cost + _p.remoteMissIssue);
    return {false, 0};
}

/**
 * Deal with a line evicted by a fill: exclusive victims notify their
 * home (writeback); shared victims evict silently. The local-miss
 * path charges no replacement time (Table 2: perfect write buffer).
 */
void
DirMemSystem::handleVictim(NodeId node, const CacheResult& fres,
                           Tick when)
{
    if (!fres.victimValid || !fres.victimOwned)
        return;
    const NodeId vhome = homeOf(fres.victimAddr);
    tt_assert(vhome != kNoNode, "victim block with no home");
    _cWritebacks.inc();
    if (vhome == node) {
        // Home evicting its own exclusively-held line: the directory
        // entry is Idle (home copies are not tracked); nothing to do.
        return;
    }
    sendMsg(node, vhome, VNet::Request, kWriteBack, fres.victimAddr,
            when, 0, /*carryBlock=*/true);
}

// --------------------------------------------------------------------
// Messaging
// --------------------------------------------------------------------

void
DirMemSystem::sendMsg(NodeId src, NodeId dst, VNet vnet, MsgKind kind,
                      Addr blk, Tick when, Word extra, bool carryBlock)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.vnet = vnet;
    m.handler = kind;
    m.pushAddr(blk);
    m.args.push_back(extra);
    if (carryBlock)
        m.data.assign(_cp.blockSize, 0);
    _net.send(std::move(m), when);
}

std::size_t
DirMemSystem::footprintBytes() const
{
    std::size_t b = _dir.footprintBytes();
    _dir.forEach([&](std::uint64_t, const DirEntry& e) {
        if (e.mshr) {
            b += sizeof(Mshr);
            b += e.mshr->deferred.size() * sizeof(Deferred);
        }
    });
    b += _pageHome.footprintBytes();
    b += _store.footprintBytes();
    b += _nodes.capacity() * sizeof(Node);
    for (const Node& n : _nodes) {
        b += n.cache->footprintBytes();
        b += n.tlb->footprintBytes();
        b += n.pending.size() * (sizeof(Addr) + sizeof(PendingMiss));
    }
    b += _allocs.capacity() * sizeof(SharedRange);
    return b;
}

void
DirMemSystem::onMessage(NodeId self, Message&& msg)
{
    TelemScope ts(_telem, HostTimer::Cat::Handler);
    const Addr blk = msg.addrArg(0);
    const Word extra = msg.args.at(2);
    const Tick now = _m.eq().now();
    Node& n = _nodes[self];

    if (_checker)
        _checker->onMsgDeliver(msg);
    if (_obs) {
        _obs->msgDeliver(self, msg, now);
        // Handler-activation transaction context: messages sent while
        // this message is handled inherit its txn (DESIGN.md §14).
        _obs->beginAct(self, msg.txn);
    }

    switch (msg.handler) {
      case kReadReq:
        homeRequest(self, blk, msg.src, MemOp::Read, false, now);
        break;
      case kWriteReq:
        homeRequest(self, blk, msg.src, MemOp::Write, false, now);
        break;
      case kUpgradeReq:
        homeRequest(self, blk, msg.src, MemOp::Write, true, now);
        break;

      case kInv: {
        // Invalidate our (possibly absent: silent eviction) copy.
        // faultSkipInvalidate is test-only fault injection: ack
        // without invalidating, so the sanitizer must catch the
        // stale copy (test_mutations.cc).
        const Tick start = ctrlStart(self, now);
        bool dirty = false;
        const bool skipInv =
            _p.faultSkipInvalidate ||
            (_p.faultSkipInvalidateNth != 0 &&
             ++_faultInvalidates == _p.faultSkipInvalidateNth);
        const LineState prior = skipInv
                                    ? LineState::Invalid
                                    : n.cache->invalidate(blk, &dirty);
        Tick cost = _p.invProcess;
        if (prior == LineState::Owned)
            cost += _p.replaceExclusive;
        n.ctrlFree = start + cost;
        _cInvReceived.inc();
        sendMsg(self, msg.src, VNet::Response, kInvAck, blk,
                start + cost);
        break;
      }

      case kInvAck: {
        DirEntry& e = entry(blk);
        tt_assert(e.mshr && e.mshr->acksLeft > 0,
                  "stray InvAck at node ", self);
        if (--e.mshr->acksLeft == 0) {
            const Tick start = ctrlStart(self, now);
            const Tick cost =
                _p.dirPerMsg +
                (e.mshr->upgrade ? 0 : _p.dirBlockSend);
            n.ctrlFree = start + cost;
            grant(self, blk, start + cost);
        } else {
            n.ctrlFree = ctrlStart(self, now) + 1;
        }
        break;
      }

      case kRecall: {
        const bool toInvalid = extra != 0;
        const Tick start = ctrlStart(self, now);
        Tick cost = _p.invProcess;
        bool present;
        if (toInvalid) {
            bool dirty = false;
            present =
                n.cache->invalidate(blk, &dirty) == LineState::Owned;
            cost += _p.replaceExclusive;
        } else if (_p.faultSkipDowngradeNth != 0 &&
                   ++_faultDowngrades == _p.faultSkipDowngradeNth) {
            // Seeded mutation: answer the recall but keep the line
            // Owned (tests/check/test_differential.cc).
            present = n.cache->present(blk) &&
                      !n.cache->presentShared(blk);
        } else {
            present = n.cache->downgrade(blk);
        }
        n.ctrlFree = start + cost;
        _cRecallsReceived.inc();
        sendMsg(self, msg.src, VNet::Response,
                present ? kRecallData : kRecallNack, blk, start + cost,
                0, present);
        break;
      }

      case kRecallData: {
        DirEntry& e = entry(blk);
        tt_assert(e.mshr && e.mshr->awaitingRecall,
                  "unexpected RecallData at ", self);
        e.mshr->awaitingRecall = false;
        if (e.mshr->op == MemOp::Read)
            e.mshr->keepSharer = msg.src;
        const Tick start = ctrlStart(self, now);
        const Tick cost =
            _p.dirBlockRecv + _p.dirPerMsg + _p.dirBlockSend;
        n.ctrlFree = start + cost;
        grant(self, blk, start + cost);
        break;
      }

      case kRecallNack: {
        // The owner wrote the line back before our recall arrived;
        // per-pair FIFO guarantees the writeback was processed first.
        DirEntry& e = entry(blk);
        tt_assert(e.mshr && e.mshr->awaitingRecall,
                  "unexpected RecallNack at ", self);
        tt_assert(e.mshr->sawWb,
                  "RecallNack without preceding writeback at ", self);
        e.mshr->awaitingRecall = false;
        const Tick start = ctrlStart(self, now);
        const Tick cost = _p.dirPerMsg + _p.dirBlockSend;
        n.ctrlFree = start + cost;
        grant(self, blk, start + cost);
        break;
      }

      case kWriteBack:
        applyWriteback(self, blk, msg.src, now);
        break;

      case kData: {
        const bool writeGrant = extra == 2;
        completeAtRequester(self, blk, true, writeGrant, now);
        break;
      }
      case kGrantUp:
        completeAtRequester(self, blk, false, true, now);
        break;

      default:
        // Recovery coordinator traffic (DESIGN.md §15) rides the same
        // checked, reliable path as protocol messages; its handler ids
        // sit far above the hardware protocol's. The messages carry a
        // dummy addr + extra arg so the decode above stays in bounds.
        if (_extra) {
            _extra(self, std::move(msg));
            break;
        }
        tt_panic("unknown DirNNB message kind ", msg.handler);
    }

    if (_obs) {
        // The controller-occupancy charge for this message is whatever
        // the handler pushed ctrlFree past its dispatch time.
        _obs->handlerDone(self, ActKind::Msg, msg.handler, msg.obsId,
                          now,
                          n.ctrlFree > now ? n.ctrlFree - now : 0);
        _obs->endAct(self);
    }
    if (_checker)
        _checker->onEventEnd();
}

// --------------------------------------------------------------------
// Home-side state machine
// --------------------------------------------------------------------

void
DirMemSystem::homeRequest(NodeId home, Addr blk, NodeId requester,
                          MemOp op, bool upgrade, Tick when)
{
    DirEntry& e = entry(blk);
    if (e.mshr) {
        // Capture the requester's transaction context so the replay
        // (which runs from the event queue, outside any handler
        // activation) can re-enter it.
        e.mshr->deferred.push_back(Deferred{
            requester, op, upgrade, _obs ? _obs->txnFor(home) : 0});
        _cDeferred.inc();
        return;
    }
    const Tick start = ctrlStart(home, when);
    homeProcess(home, blk, requester, op, upgrade, start);
}

void
DirMemSystem::homeProcess(NodeId home, Addr blk, NodeId requester,
                          MemOp op, bool upgrade, Tick start)
{
    Node& hn = _nodes[home];
    DirEntry& e = entry(blk);
    tt_assert(!e.mshr, "homeProcess on busy entry");
    _cOps.inc();

    auto mshr = std::make_unique<Mshr>();
    mshr->op = op;
    mshr->requester = requester;
    // An upgrade is grantable without data only if the requester is
    // still a sharer; otherwise it lost its line to an invalidation
    // racing with the request and needs the full block.
    mshr->upgrade = upgrade && e.sharers.contains(requester);
    e.mshr = std::move(mshr);
    if (_checker)
        _checker->onBlockEvent(home, blk, "dir:open");

    if (op == MemOp::Read) {
        if (e.state != DirState::Excl) {
            const Tick cost =
                _p.dirOpBase + _p.dirPerMsg + _p.dirBlockSend;
            hn.ctrlFree = start + cost;
            grant(home, blk, start + cost);
        } else {
            tt_assert(e.owner != requester,
                      "owner re-requesting its own block");
            e.mshr->awaitingRecall = true;
            e.mshr->recallTarget = e.owner;
            const Tick cost = _p.dirOpBase + _p.dirPerMsg;
            hn.ctrlFree = start + cost;
            _cRecallsSent.inc();
            if (_obs && (_obs->wantSharing() || _obs->wantTxn())) {
                _obs->invalSent(home, blk, requester, 1,
                                InvKind::Downgrade, start + cost);
            }
            sendMsg(home, e.owner, VNet::Request, kRecall, blk,
                    start + cost, /*toInvalid=*/0);
        }
        return;
    }

    // Write / upgrade.
    switch (e.state) {
      case DirState::Idle: {
        const Tick cost = _p.dirOpBase + _p.dirPerMsg +
                          (e.mshr->upgrade ? 0 : _p.dirBlockSend);
        hn.ctrlFree = start + cost;
        grant(home, blk, start + cost);
        break;
      }
      case DirState::Shared: {
        auto targets = e.sharers.members();
        std::erase(targets, requester);
        if (targets.empty()) {
            const Tick cost = _p.dirOpBase + _p.dirPerMsg +
                              (e.mshr->upgrade ? 0 : _p.dirBlockSend);
            hn.ctrlFree = start + cost;
            grant(home, blk, start + cost);
            break;
        }
        e.mshr->acksLeft = static_cast<int>(targets.size());
        const Tick cost =
            _p.dirOpBase +
            _p.dirPerMsg * static_cast<Tick>(targets.size());
        hn.ctrlFree = start + cost;
        _cInvSent.inc(targets.size());
        if (_obs && (_obs->wantSharing() || _obs->wantTxn())) {
            _obs->invalSent(home, blk, requester,
                            static_cast<std::uint32_t>(targets.size()),
                            InvKind::Inval, start + cost);
        }
        for (NodeId t : targets)
            sendMsg(home, t, VNet::Request, kInv, blk, start + cost);
        break;
      }
      case DirState::Excl: {
        tt_assert(e.owner != requester,
                  "owner re-requesting its own block for write");
        e.mshr->awaitingRecall = true;
        e.mshr->recallTarget = e.owner;
        const Tick cost = _p.dirOpBase + _p.dirPerMsg;
        hn.ctrlFree = start + cost;
        _cRecallsSent.inc();
        if (_obs && (_obs->wantSharing() || _obs->wantTxn())) {
            _obs->invalSent(home, blk, requester, 1, InvKind::Recall,
                            start + cost);
        }
        sendMsg(home, e.owner, VNet::Request, kRecall, blk,
                start + cost, /*toInvalid=*/1);
        break;
      }
    }
}

void
DirMemSystem::grant(NodeId home, Addr blk, Tick when)
{
    DirEntry& e = entry(blk);
    tt_assert(e.mshr, "grant with no transaction");
    Mshr& m = *e.mshr;
    Node& hn = _nodes[home];
    const DirState oldState = e.state;

    // Final directory state.
    if (m.op == MemOp::Read) {
        e.owner = kNoNode;
        e.state = DirState::Shared;
        if (m.keepSharer != kNoNode)
            e.sharers.add(m.keepSharer);
        if (m.requester != home) {
            e.sharers.add(m.requester);
            // The home's own exclusively-cached copy loses ownership.
            hn.cache->downgrade(blk);
        } else if (e.sharers.empty()) {
            e.state = DirState::Idle;
        }
    } else {
        e.sharers.clear();
        if (m.requester == home) {
            e.state = DirState::Idle;
            e.owner = kNoNode;
        } else {
            e.state = DirState::Excl;
            e.owner = m.requester;
            // Any home-cached copy must go.
            hn.cache->invalidate(blk);
        }
    }

    if (_checker)
        _checker->onBlockEvent(home, blk, "dir:grant");
    if (_obs && _obs->wantSharing() && e.state != oldState) {
        _obs->dirTrans(home, blk, static_cast<std::uint8_t>(oldState),
                       static_cast<std::uint8_t>(e.state), when);
    }

    // Deliver the grant.
    if (m.requester == home) {
        completeLocal(home, blk, when);
    } else if (m.upgrade) {
        sendMsg(home, m.requester, VNet::Response, kGrantUp, blk, when);
    } else {
        sendMsg(home, m.requester, VNet::Response, kData, blk, when,
                m.op == MemOp::Read ? 1 : 2, /*carryBlock=*/true);
    }

    // Retire the transaction and replay deferred requests.
    auto deferred = std::move(m.deferred);
    e.mshr.reset();
    for (auto& d : deferred) {
        _m.eq().schedule(std::max(when, _m.eq().now()),
                         [this, home, blk, d] {
                             if (_obs)
                                 _obs->beginAct(home, d.txn);
                             homeRequest(home, blk, d.requester, d.op,
                                         d.upgrade, _m.eq().now());
                             if (_obs)
                                 _obs->endAct(home);
                             if (_checker)
                                 _checker->onEventEnd();
                         });
    }
}

void
DirMemSystem::applyWriteback(NodeId home, Addr blk, NodeId from,
                             Tick when)
{
    DirEntry& e = entry(blk);
    Node& hn = _nodes[home];
    const Tick start = ctrlStart(home, when);
    hn.ctrlFree = start + _p.dirOpBase + _p.dirBlockRecv;
    _cWritebacksReceived.inc();

    if (e.mshr && e.mshr->awaitingRecall &&
        e.mshr->recallTarget == from) {
        // Races with an in-flight recall; the pending RecallNack will
        // complete the transaction.
        e.mshr->sawWb = true;
        e.owner = kNoNode;
        return;
    }
    tt_assert(e.state == DirState::Excl && e.owner == from,
              "stale writeback for block ", blk, " from ", from);
    e.state = DirState::Idle;
    e.owner = kNoNode;
    if (_checker)
        _checker->onBlockEvent(home, blk, "dir:writeback");
    if (_obs && _obs->wantSharing()) {
        _obs->dirTrans(home, blk,
                       static_cast<std::uint8_t>(DirState::Excl),
                       static_cast<std::uint8_t>(DirState::Idle),
                       start);
    }
}

// --------------------------------------------------------------------
// Requester-side completion
// --------------------------------------------------------------------

void
DirMemSystem::completeAtRequester(NodeId node, Addr blk, bool withData,
                                  bool writeGrant, Tick when)
{
    Node& n = _nodes[node];
    auto it = n.pending.find(blk);
    tt_assert(it != n.pending.end(), "grant with no pending miss at ",
              node);
    MemRequest* req = it->second.req;
    n.pending.erase(it);
    noteOpenSince(node);

    const Tick start = ctrlStart(node, when);
    Tick cost = _p.remoteMissFinish;

    if (withData) {
        const LineState st =
            writeGrant ? LineState::Owned : LineState::Shared;
        CacheResult fres = n.cache->fill(req->vaddr, st);
        if (fres.victimValid) {
            cost += fres.victimOwned ? _p.replaceExclusive
                                     : _p.replaceShared;
            handleVictim(node, fres, start + cost);
        }
    } else {
        // Dataless upgrade: the line must still be present Shared.
        tt_assert(n.cache->upgrade(req->vaddr, true),
                  "upgrade grant but line absent at node ", node);
    }
    if (writeGrant)
        n.cache->probeWrite(req->vaddr); // mark dirty

    n.ctrlFree = start + cost;
    const Tick done = start + cost;
    if (_obs) {
        _obs->missEnd(node, req->vaddr, req->op == MemOp::Write, done);
        if (_obs->wantSharing()) {
            _obs->blockAccess(node, req->vaddr, req->size,
                              req->op == MemOp::Write, done);
        }
    }
    _m.eq().schedule(std::max(done, _m.eq().now()), [this, req] {
        transfer(req);
        if (_checker) {
            _checker->onAccess(req->cpu->id(), req->vaddr, req->size,
                               req->op == MemOp::Write, req->buf);
            _checker->onEventEnd();
        }
        req->cpu->completeAccess(*req);
    });
}

void
DirMemSystem::completeLocal(NodeId node, Addr blk, Tick when)
{
    Node& n = _nodes[node];
    auto it = n.pending.find(blk);
    tt_assert(it != n.pending.end(),
              "local grant with no pending miss at ", node);
    MemRequest* req = it->second.req;
    const bool upgrade = it->second.upgrade;
    n.pending.erase(it);
    noteOpenSince(node);

    Tick cost = 0;
    if (upgrade && n.cache->presentShared(req->vaddr)) {
        n.cache->upgrade(req->vaddr, true);
    } else {
        // Fetch from local memory after coherence is resolved. A read
        // fills Owned only if no remote copy survived (e.g. the
        // recalled owner kept a read-only copy -> fill Shared).
        cost += _cp.localMissLatency;
        LineState st = LineState::Owned;
        if (req->op == MemOp::Read) {
            const DirEntry* e = findEntry(blk);
            if (e && e->state == DirState::Shared)
                st = LineState::Shared;
        }
        CacheResult fres = n.cache->fill(req->vaddr, st);
        if (req->op == MemOp::Write)
            n.cache->probeWrite(req->vaddr);
        handleVictim(node, fres, when + cost);
    }
    const Tick done = when + cost;
    if (_obs) {
        _obs->missEnd(node, req->vaddr, req->op == MemOp::Write, done);
        if (_obs->wantSharing()) {
            _obs->blockAccess(node, req->vaddr, req->size,
                              req->op == MemOp::Write, done);
        }
    }
    _m.eq().schedule(std::max(done, _m.eq().now()), [this, req] {
        transfer(req);
        if (_checker) {
            _checker->onAccess(req->cpu->id(), req->vaddr, req->size,
                               req->op == MemOp::Write, req->buf);
            _checker->onEventEnd();
        }
        req->cpu->completeAccess(*req);
    });
}

} // namespace tt
