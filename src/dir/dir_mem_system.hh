/**
 * @file
 * The all-hardware DirNNB cache-coherence baseline (paper section 6).
 *
 * A full-map (Dir_N), no-broadcast (NB) invalidation directory
 * protocol: each 32-byte block has a home node holding its directory
 * entry (Idle / Shared with a sharer bit vector / Exclusive with an
 * owner). Request/response traffic rides the two virtual networks;
 * conflicting requests are serialized at the home via a per-block
 * MSHR with a deferred-request queue. Timing follows the Table 2
 * decomposition exactly (see dir/params.hh).
 *
 * Data lives in a single (logically distributed) global store that
 * writers update eagerly; caches are timing models. Replacements of
 * exclusive lines send writebacks so the directory never holds a
 * stale owner; shared lines evict silently, so invalidations to
 * non-resident lines are acknowledged as no-ops (the classic stale-
 * sharer case).
 */

#ifndef TT_DIR_DIR_MEM_SYSTEM_HH
#define TT_DIR_DIR_MEM_SYSTEM_HH

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/machine.hh"
#include "core/memsys.hh"
#include "dir/node_set.hh"
#include "dir/params.hh"
#include "mem/cache_model.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb_model.hh"
#include "net/network.hh"
#include "sim/dense_map.hh"
#include "sim/host_timer.hh"

namespace tt
{

class DirMemSystem : public MemorySystem
{
  public:
    /** Directory entry state (stable states). */
    enum class DirState : std::uint8_t { Idle, Shared, Excl };

    DirMemSystem(Machine& m, Network& net, DirParams params);

    // --- MemorySystem -------------------------------------------------
    AccessOutcome access(MemRequest* req) override;
    Addr shmalloc(std::size_t bytes, NodeId home = kNoNode) override;
    NodeId homeOf(Addr va) const override;
    void peek(Addr va, void* buf, std::size_t len) override;
    void poke(Addr va, const void* buf, std::size_t len) override;
    Tick oldestPendingSince() const override;
    std::vector<SharedRange> sharedAllocs() const override
    {
        return _allocs;
    }
    // coherentPeek: default (= peek). The DirNNB store is written
    // eagerly by every sanctioned write, so the home copy is always
    // the latest coherent bytes; caches are timing-only.
    void canonicalize(std::uint64_t epochSeed) override;
    std::string name() const override { return "DirNNB"; }

    /**
     * Fallback for message handler ids outside the hardware protocol
     * (the recovery coordinator's quiesce/ack traffic, DESIGN.md §15).
     * Unset, an unknown handler id stays a protocol bug (tt_panic).
     */
    using ExtraHandler = std::function<void(NodeId, Message&&)>;
    void setExtraHandler(ExtraHandler h) { _extra = std::move(h); }

    // --- introspection (tests / benches) -------------------------------
    struct EntryView
    {
        DirState state = DirState::Idle;
        std::vector<NodeId> sharers;
        NodeId owner = kNoNode;
        bool busy = false;
    };

    EntryView inspect(Addr va) const;

    /**
     * Non-allocating directory peek for the fast checker's audit hot
     * path (DESIGN.md §13): like inspect(), but hands out a pointer
     * to the sharer set instead of copying it. The pointer is only
     * valid until the next protocol event.
     */
    struct EntryPeek
    {
        DirState state = DirState::Idle;
        NodeId owner = kNoNode;
        bool busy = false;
        const NodeSet* sharers = nullptr;
    };
    EntryPeek peekEntry(Addr blk) const;

    CacheModel& cacheOf(NodeId n) { return *_nodes.at(n).cache; }
    TlbModel& tlbOf(NodeId n) { return *_nodes.at(n).tlb; }
    /** True iff no transaction is in flight anywhere. */
    bool quiescent() const override;

    /**
     * Attach the coherence sanitizer (nullptr = disabled). Also
     * installs a state listener on every node cache so the checker's
     * copy mirror tracks line states exactly (DESIGN.md §13).
     */
    void setChecker(CheckHooks* c);

    /** Attach the self-telemetry timer (nullptr = off, DESIGN.md §16). */
    void setTelemetry(HostTimer* t) { _telem = t; }

    /**
     * Resident bytes of the protocol state (telemetry memory probe):
     * directory entries (+ live MSHRs), page-home map, global store,
     * and per-node cache/TLB models and pending-miss maps.
     */
    std::size_t footprintBytes() const;

    /** Attach the flight recorder (nullptr = disabled). */
    void
    setRecorder(FlightRecorder* r)
    {
        _obs = r;
        if (!r)
            return;
        r->nameHandler(kReadReq, "dir.read_req");
        r->nameHandler(kWriteReq, "dir.write_req");
        r->nameHandler(kUpgradeReq, "dir.upgrade_req");
        r->nameHandler(kData, "dir.data");
        r->nameHandler(kGrantUp, "dir.grant_up");
        r->nameHandler(kInv, "dir.inv");
        r->nameHandler(kInvAck, "dir.inv_ack");
        r->nameHandler(kRecall, "dir.recall");
        r->nameHandler(kRecallData, "dir.recall_data");
        r->nameHandler(kRecallNack, "dir.recall_nack");
        r->nameHandler(kWriteBack, "dir.writeback");
    }

  private:
    /** Active-message handler ids of the hardware protocol. */
    enum MsgKind : HandlerId
    {
        kReadReq = 1,
        kWriteReq,
        kUpgradeReq,
        kData,     ///< args[2]: 1 = read(Shared) grant, 2 = write(Owned)
        kGrantUp,  ///< dataless upgrade grant
        kInv,      ///< home -> sharer invalidation
        kInvAck,   ///< sharer -> home
        kRecall,   ///< home -> owner; args[2]: 0 = downgrade, 1 = inval
        kRecallData,
        kRecallNack, ///< owner no longer has the line (writeback races)
        kWriteBack,
    };

    struct Deferred
    {
        NodeId requester;
        MemOp op;
        bool upgrade;
        std::uint32_t txn = 0; ///< requester's transaction context
    };

    /** Per-block transaction state at the home. */
    struct Mshr
    {
        MemOp op = MemOp::Read;
        NodeId requester = kNoNode;
        bool upgrade = false;     ///< grant without data
        int acksLeft = 0;         ///< outstanding invalidation acks
        bool awaitingRecall = false;
        NodeId recallTarget = kNoNode;
        bool sawWb = false;       ///< a racing writeback supplied data
        NodeId keepSharer = kNoNode; ///< downgraded owner stays a sharer
        std::deque<Deferred> deferred;
    };

    struct DirEntry
    {
        DirState state = DirState::Idle;
        NodeSet sharers;
        NodeId owner = kNoNode;
        std::unique_ptr<Mshr> mshr;
    };

    struct PendingMiss
    {
        MemRequest* req = nullptr;
        bool upgrade = false;
    };

    struct Node
    {
        std::unique_ptr<CacheModel> cache;
        std::unique_ptr<TlbModel> tlb;
        Tick ctrlFree = 0; ///< controller occupancy
        std::unordered_map<Addr, PendingMiss> pending; // by block addr
    };

    // helpers ------------------------------------------------------------
    DirEntry& entry(Addr blk);
    const DirEntry* findEntry(Addr blk) const;
    NodeId resolveHome(Addr va, NodeId toucher);
    void transfer(MemRequest* req);
    Tick ctrlStart(NodeId n, Tick earliest);

    void onMessage(NodeId self, Message&& msg);
    void sendMsg(NodeId src, NodeId dst, VNet vnet, MsgKind kind,
                 Addr blk, Tick when, Word extra = 0,
                 bool carryBlock = false);

    /** Enter a request into the home-side state machine. */
    void homeRequest(NodeId home, Addr blk, NodeId requester, MemOp op,
                     bool upgrade, Tick when);
    void homeProcess(NodeId home, Addr blk, NodeId requester, MemOp op,
                     bool upgrade, Tick start);
    void grant(NodeId home, Addr blk, Tick when);
    void applyWriteback(NodeId home, Addr blk, NodeId from, Tick when);

    void completeAtRequester(NodeId node, Addr blk, bool withData,
                             bool writeGrant, Tick when);
    void completeLocal(NodeId node, Addr blk, Tick when);
    void handleVictim(NodeId node, const CacheResult& fres, Tick when);

    Machine& _m;
    Network& _net;
    DirParams _p;
    const CoreParams& _cp;
    StatSet& _stats;
    CheckHooks* _checker = nullptr; ///< coherence sanitizer, opt-in
    FlightRecorder* _obs = nullptr; ///< flight recorder, opt-in
    HostTimer* _telem = nullptr;    ///< self-telemetry timer, opt-in

    std::vector<Node> _nodes;

    /**
     * Per-node oldest-pending-miss snapshot for the watchdog probe:
     * min over n.pending of req->issueTime, kTickMax when none.
     * Maintained at the insert/erase sites so oldestPendingSince() is
     * a wait-free relaxed-atomic scan that never walks the pending
     * maps (safe under the parallel engine — DESIGN.md §12).
     */
    std::unique_ptr<std::atomic<Tick>[]> _openSince;

    /** Recompute node @p id's _openSince cell (pending maps are tiny). */
    void
    noteOpenSince(NodeId id)
    {
        Tick t = kTickMax;
        for (const auto& [blk, miss] : _nodes[id].pending)
            t = std::min(t, miss.req->issueTime);
        _openSince[id].store(t, std::memory_order_relaxed);
    }

    // Occurrence counters for the Nth-occurrence mutation knobs
    // (DirParams::faultSkip*Nth).
    std::uint32_t _faultInvalidates = 0;
    std::uint32_t _faultDowngrades = 0;

    DenseMap<DirEntry> _dir;      ///< keyed by block number (blk/B)
    DenseMap<NodeId> _pageHome;   ///< vpn -> home
    PhysMem _store; // va-keyed global memory
    Addr _nextVa;
    NodeId _rrNext = 0;
    std::vector<SharedRange> _allocs; ///< shmalloc log (checkpointing)
    ExtraHandler _extra; ///< recovery-message fallback, opt-in

    // Hot-path stat handles, resolved once at construction (StatSet
    // hands out stable references).
    Counter& _cFirstTouch;
    Counter& _cTlbMisses;
    Counter& _cCacheHits;
    Counter& _cLocalMisses;
    Counter& _cLocalUpgrades;
    Counter& _cLocalConflictMisses;
    Counter& _cRemoteMisses;
    Counter& _cWritebacks;
    Counter& _cInvReceived;
    Counter& _cRecallsReceived;
    Counter& _cDeferred;
    Counter& _cOps;
    Counter& _cRecallsSent;
    Counter& _cInvSent;
    Counter& _cWritebacksReceived;
};

} // namespace tt

#endif // TT_DIR_DIR_MEM_SYSTEM_HH
