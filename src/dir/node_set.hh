/**
 * @file
 * A dynamic bitset of node ids — the full-map sharer vector of a
 * DirNNB directory entry.
 */

#ifndef TT_DIR_NODE_SET_HH
#define TT_DIR_NODE_SET_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

class NodeSet
{
  public:
    NodeSet() = default;
    explicit NodeSet(int nodes) : _nodes(nodes), _bits((nodes + 63) / 64)
    {
    }

    void
    add(NodeId n)
    {
        check(n);
        _bits[n >> 6] |= 1ull << (n & 63);
    }

    void
    remove(NodeId n)
    {
        check(n);
        _bits[n >> 6] &= ~(1ull << (n & 63));
    }

    bool
    contains(NodeId n) const
    {
        check(n);
        return (_bits[n >> 6] >> (n & 63)) & 1;
    }

    void
    clear()
    {
        for (auto& w : _bits)
            w = 0;
    }

    bool
    empty() const
    {
        for (auto w : _bits)
            if (w)
                return false;
        return true;
    }

    int
    count() const
    {
        int c = 0;
        for (auto w : _bits)
            c += __builtin_popcountll(w);
        return c;
    }

    /** Enumerate members into a vector (ascending). */
    std::vector<NodeId>
    members() const
    {
        std::vector<NodeId> out;
        for (std::size_t w = 0; w < _bits.size(); ++w) {
            std::uint64_t bits = _bits[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                out.push_back(static_cast<NodeId>(w * 64 + b));
                bits &= bits - 1;
            }
        }
        return out;
    }

  private:
    void
    check(NodeId n) const
    {
        tt_assert(n >= 0 && n < _nodes, "node id out of range: ", n);
    }

    int _nodes = 0;
    std::vector<std::uint64_t> _bits;
};

} // namespace tt

#endif // TT_DIR_NODE_SET_HH
