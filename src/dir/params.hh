/**
 * @file
 * DirNNB cost model (Table 2, "DirNNB Only"). The remote miss cost is
 * composed from its parts: issue overhead at the requester, optional
 * replacement cost, network hops, the home directory operation, and
 * the completion cost at the requester:
 *
 *   remote miss = 23 + (5|16 if replacement) + network/directory + 34
 *   directory op = 16 + 11 if block received + 5 per message sent
 *                  + 11 if block sent
 *   remote invalidate = 8 + (5|16 if replacement)
 */

#ifndef TT_DIR_PARAMS_HH
#define TT_DIR_PARAMS_HH

#include "sim/types.hh"

namespace tt
{

struct DirParams
{
    Tick remoteMissIssue = 23;   ///< requester-side launch overhead
    Tick remoteMissFinish = 34;  ///< requester-side completion
    Tick replaceShared = 5;      ///< evicting a shared (clean) line
    Tick replaceExclusive = 16;  ///< evicting an exclusive line
    Tick invProcess = 8;         ///< remote invalidate, base
    Tick dirOpBase = 16;         ///< directory operation, base
    Tick dirBlockRecv = 11;      ///< +if a block arrives at the dir
    Tick dirPerMsg = 5;          ///< +per message the dir sends
    Tick dirBlockSend = 11;      ///< +if the dir sends a block

    /**
     * Page placement policy for kNoNode allocations: false =
     * round-robin (IVY-style fixed distributed manager, the paper's
     * configuration); true = first-touch (the Stenstrom et al.
     * improvement the paper discusses) — ablation A1.
     */
    bool firstTouch = false;

    /**
     * Test-only fault injection (tests/check/test_mutations.cc):
     * acknowledge kInv messages without actually invalidating the
     * local line, leaving a stale shared copy behind. Proves the
     * coherence sanitizer fires; never set outside tests.
     */
    bool faultSkipInvalidate = false;

    /**
     * Seeded-mutation fault injection for the differential
     * no-false-negative suite (tests/check/test_differential.cc):
     * each counter breaks exactly the Nth occurrence (1-based) of its
     * protocol action; 0 = never. Never set outside tests.
     */
    std::uint32_t faultSkipInvalidateNth = 0; ///< skip Nth invalidate
    std::uint32_t faultSkipDowngradeNth = 0;  ///< skip Nth downgrade
};

} // namespace tt

#endif // TT_DIR_PARAMS_HH
