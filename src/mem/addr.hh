/**
 * @file
 * Address manipulation helpers. Block and page sizes are runtime
 * configuration (the paper's fine-grain blocks are "typically 32-128
 * bytes"; pages are 4 KB), so helpers take the size explicitly.
 */

#ifndef TT_MEM_ADDR_HH
#define TT_MEM_ADDR_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/** True iff @p v is a nonzero power of two. */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Block-frame address (block-aligned) of @p a. */
constexpr Addr
blockAlign(Addr a, std::uint32_t block_size)
{
    return alignDown(a, block_size);
}

/** Page number of @p a. */
constexpr std::uint64_t
pageNum(Addr a, std::uint32_t page_size)
{
    return a / page_size;
}

/** Byte offset of @p a within its page. */
constexpr std::uint64_t
pageOffset(Addr a, std::uint32_t page_size)
{
    return a & (page_size - 1);
}

/** Index of the block containing @p a within its page. */
constexpr std::uint32_t
blockInPage(Addr a, std::uint32_t page_size, std::uint32_t block_size)
{
    return static_cast<std::uint32_t>(pageOffset(a, page_size) /
                                      block_size);
}

/** True iff [a, a+len) stays within one block. */
constexpr bool
withinOneBlock(Addr a, std::uint32_t len, std::uint32_t block_size)
{
    return blockAlign(a, block_size) ==
           blockAlign(a + len - 1, block_size);
}

} // namespace tt

#endif // TT_MEM_ADDR_HH
