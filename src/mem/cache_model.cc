#include "mem/cache_model.hh"

#include "sim/logging.hh"

namespace tt
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t assoc,
                       std::uint32_t block_size, std::uint64_t seed)
    : _sizeBytes(size_bytes),
      _assoc(assoc),
      _blockSize(block_size),
      _rng(seed)
{
    tt_assert(isPow2(size_bytes) && isPow2(block_size),
              "cache size/block size must be powers of two");
    tt_assert(assoc > 0, "associativity must be positive");
    const std::uint64_t lines = size_bytes / block_size;
    tt_assert(lines % assoc == 0, "lines not divisible by assoc");
    _numSets = static_cast<std::uint32_t>(lines / assoc);
    tt_assert(isPow2(_numSets), "number of sets must be a power of two");
    _lines.resize(lines);
}

std::uint32_t
CacheModel::setIndex(Addr a) const
{
    return static_cast<std::uint32_t>((a / _blockSize) & (_numSets - 1));
}

CacheModel::Line*
CacheModel::find(Addr a)
{
    const Addr blk = blockAlign(a, _blockSize);
    Line* set = &_lines[static_cast<std::size_t>(setIndex(a)) * _assoc];
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].state != LineState::Invalid && set[w].tag == blk)
            return &set[w];
    }
    return nullptr;
}

const CacheModel::Line*
CacheModel::find(Addr a) const
{
    return const_cast<CacheModel*>(this)->find(a);
}

bool
CacheModel::probeRead(Addr a) const
{
    return find(a) != nullptr;
}

bool
CacheModel::probeWrite(Addr a)
{
    Line* l = find(a);
    if (l && l->state == LineState::Owned) {
        l->dirty = true;
        return true;
    }
    return false;
}

bool
CacheModel::presentShared(Addr a) const
{
    const Line* l = find(a);
    return l && l->state == LineState::Shared;
}

bool
CacheModel::present(Addr a) const
{
    return find(a) != nullptr;
}

bool
CacheModel::probeDirty(Addr a) const
{
    const Line* l = find(a);
    return l && l->state == LineState::Owned && l->dirty;
}

CacheResult
CacheModel::fill(Addr a, LineState state)
{
    tt_assert(state != LineState::Invalid, "cannot fill Invalid");
    CacheResult res;
    if (Line* l = find(a)) {
        const LineState prior = l->state;
        l->state = state;
        if (state == LineState::Shared)
            l->dirty = false;
        res.hit = true;
        if (prior != state)
            notify(l->tag, state);
        return res;
    }

    const Addr blk = blockAlign(a, _blockSize);
    Line* set = &_lines[static_cast<std::size_t>(setIndex(a)) * _assoc];

    // Prefer an invalid way; otherwise evict a random way.
    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].state == LineState::Invalid) {
            victim = &set[w];
            break;
        }
    }
    if (!victim) {
        victim = &set[_rng.below(_assoc)];
        res.victimValid = true;
        res.victimAddr = victim->tag;
        res.victimOwned = victim->state == LineState::Owned;
        res.victimDirty = victim->dirty;
        notify(victim->tag, LineState::Invalid);
    }

    victim->tag = blk;
    victim->state = state;
    victim->dirty = false;
    notify(blk, state);
    return res;
}

LineState
CacheModel::invalidate(Addr a, bool* was_dirty)
{
    Line* l = find(a);
    if (!l) {
        if (was_dirty)
            *was_dirty = false;
        return LineState::Invalid;
    }
    const LineState prior = l->state;
    if (was_dirty)
        *was_dirty = l->dirty;
    l->state = LineState::Invalid;
    l->dirty = false;
    notify(blockAlign(a, _blockSize), LineState::Invalid);
    return prior;
}

bool
CacheModel::downgrade(Addr a, bool* was_dirty)
{
    Line* l = find(a);
    if (!l || l->state != LineState::Owned) {
        if (was_dirty)
            *was_dirty = false;
        return false;
    }
    if (was_dirty)
        *was_dirty = l->dirty;
    l->state = LineState::Shared;
    l->dirty = false;
    notify(blockAlign(a, _blockSize), LineState::Shared);
    return true;
}

bool
CacheModel::upgrade(Addr a, bool dirty)
{
    Line* l = find(a);
    if (!l)
        return false;
    const LineState prior = l->state;
    l->state = LineState::Owned;
    l->dirty = dirty;
    if (prior != LineState::Owned)
        notify(blockAlign(a, _blockSize), LineState::Owned);
    return true;
}

void
CacheModel::flushAll()
{
    for (auto& l : _lines) {
        if (l.state != LineState::Invalid)
            notify(l.tag, LineState::Invalid);
        l.state = LineState::Invalid;
        l.dirty = false;
    }
}

std::size_t
CacheModel::validLines() const
{
    std::size_t n = 0;
    for (const auto& l : _lines)
        if (l.state != LineState::Invalid)
            ++n;
    return n;
}

} // namespace tt
