/**
 * @file
 * Timing model of a processor data cache: set-associative, random
 * replacement (Table 2: "4-way assoc., random repl.", 32-byte blocks).
 *
 * The model tracks tags and line states only; block data always lives
 * in the owning node's simulated memory. Line states are a MOESI-lite
 * trio sufficient for both target systems:
 *  - Shared: clean, readable; a store must go to the bus (upgrade).
 *  - Owned:  exclusive and writable; may be dirty.
 * A store that hits a Shared line is an "upgrade" bus transaction that
 * the coherence machinery (DirNNB directory or Typhoon NP snooping)
 * must authorize.
 */

#ifndef TT_MEM_CACHE_MODEL_HH
#define TT_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mem/addr.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace tt
{

/** State of one cache line. */
enum class LineState : std::uint8_t { Invalid, Shared, Owned };

/** Result of a cache lookup or fill. */
struct CacheResult
{
    bool hit = false;
    /** Fill only: a valid line was evicted. */
    bool victimValid = false;
    /** Fill only: block address of the evicted line. */
    Addr victimAddr = 0;
    /** Fill only: evicted line was Owned (exclusive). */
    bool victimOwned = false;
    /** Fill only: evicted line was dirty (needs writeback). */
    bool victimDirty = false;
};

/**
 * Set-associative cache tag array with random replacement.
 */
class CacheModel
{
  public:
    /**
     * @param size_bytes   total capacity (power of two)
     * @param assoc        ways per set
     * @param block_size   line size in bytes (power of two)
     * @param seed         replacement RNG seed
     */
    CacheModel(std::uint64_t size_bytes, std::uint32_t assoc,
               std::uint32_t block_size, std::uint64_t seed);

    /** Read lookup: hits on Shared or Owned. Does not fill. */
    bool probeRead(Addr a) const;

    /** Write lookup: hits only on Owned lines; marks them dirty. */
    bool probeWrite(Addr a);

    /** True iff the line is present in state Shared (not Owned). */
    bool presentShared(Addr a) const;

    /** True iff the line is present at all. */
    bool present(Addr a) const;

    /** True iff the line is present, Owned, and dirty. */
    bool probeDirty(Addr a) const;

    /**
     * Install a line in @p state, evicting a random victim if the set
     * is full. Re-filling a present line just updates its state.
     */
    CacheResult fill(Addr a, LineState state);

    /**
     * Remove a line if present.
     * @return the prior state (Invalid if absent); sets @p was_dirty.
     */
    LineState invalidate(Addr a, bool* was_dirty = nullptr);

    /**
     * Downgrade an Owned line to Shared (remote read of a modified
     * block). @return true iff the line was present and Owned.
     */
    bool downgrade(Addr a, bool* was_dirty = nullptr);

    /** Upgrade a Shared line to Owned (after a sanctioned bus upgrade). */
    bool upgrade(Addr a, bool dirty);

    /** Drop every line (e.g. page remap under Stache replacement). */
    void flushAll();

    /**
     * Reseed the replacement RNG (checkpoint canonicalize, DESIGN.md
     * §15). Both sides of a checkpoint apply the same epoch-derived
     * seed, so post-restore victim choices match the original run's.
     */
    void reseed(std::uint64_t seed) { _rng = Rng(seed); }

    std::uint32_t blockSize() const { return _blockSize; }
    std::uint64_t sizeBytes() const { return _sizeBytes; }
    std::uint32_t assoc() const { return _assoc; }
    std::uint32_t numSets() const { return _numSets; }

    /** Count of currently valid lines (for tests). */
    std::size_t validLines() const;

    /** Resident bytes of the tag array (telemetry memory probes). */
    std::size_t
    footprintBytes() const
    {
        return _lines.capacity() * sizeof(Line);
    }

    /**
     * Observer of line-state changes, fired after every mutation with
     * the block address and the line's new state (Invalid on eviction
     * or invalidation). One central hook covers every mutation path —
     * fill, victim eviction, invalidate, downgrade, upgrade, flushAll
     * — so a mirror (the coherence sanitizer's copy table, DESIGN.md
     * §13) cannot drift from reality via a missed call site. Unset
     * (the default) costs one branch per mutation.
     */
    using StateListener = std::function<void(Addr, LineState)>;
    void setStateListener(StateListener f) { _listener = std::move(f); }

  private:
    void
    notify(Addr blk, LineState st)
    {
        if (_listener)
            _listener(blk, st);
    }

    struct Line
    {
        Addr tag = 0; // full block address, simplifies victim reporting
        LineState state = LineState::Invalid;
        bool dirty = false;
    };

    std::uint32_t setIndex(Addr a) const;
    Line* find(Addr a);
    const Line* find(Addr a) const;

    std::uint64_t _sizeBytes;
    std::uint32_t _assoc;
    std::uint32_t _blockSize;
    std::uint32_t _numSets;
    std::vector<Line> _lines; // numSets x assoc
    Rng _rng;
    StateListener _listener;
};

} // namespace tt

#endif // TT_MEM_CACHE_MODEL_HH
