/**
 * @file
 * Per-node page table mapping virtual pages of the shared segment to
 * local physical pages. User-level code (Stache, custom protocols)
 * manipulates these mappings through the Tempest VM-management calls;
 * the paper's model is a conventional flat paged address space whose
 * shared-heap mappings are owned by user software (section 2.3).
 */

#ifndef TT_MEM_PAGE_TABLE_HH
#define TT_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * One virtual-page mapping. @c mode is the Typhoon RTLB "page mode": a
 * small user-defined value that selects which set of fault handlers
 * covers the page (e.g. Stache home page vs. stache page vs. custom
 * EM3D pages).
 */
struct PageMapping
{
    PAddr ppage = 0;       ///< physical page base address
    std::uint8_t mode = 0; ///< user-level page mode (4 bits in Typhoon)
    bool writable = true;  ///< page-level write permission
};

/**
 * Forward (VA -> PA) page table for one node, with a reverse view
 * (PA -> VA) used by the NP's reverse TLB to recover virtual page
 * numbers from snooped bus addresses.
 */
class PageTable
{
  public:
    explicit PageTable(std::uint32_t page_size) : _pageSize(page_size)
    {
        tt_assert(isPow2(page_size), "page size must be a power of two");
    }

    std::uint32_t pageSize() const { return _pageSize; }

    /** Map virtual page of @p va to physical page of @p pa. */
    void
    map(Addr va, PAddr pa, std::uint8_t mode, bool writable = true)
    {
        const std::uint64_t vpn = pageNum(va, _pageSize);
        const std::uint64_t ppn = pageNum(pa, _pageSize);
        tt_assert(!_fwd.count(vpn), "double-mapping vpn ", vpn);
        tt_assert(!_rev.count(ppn), "physical page mapped twice: ", ppn);
        _fwd[vpn] = PageMapping{ppn * _pageSize, mode, writable};
        _rev[ppn] = vpn * _pageSize;
    }

    /** Remove the mapping covering @p va. */
    void
    unmap(Addr va)
    {
        const std::uint64_t vpn = pageNum(va, _pageSize);
        auto it = _fwd.find(vpn);
        tt_assert(it != _fwd.end(), "unmapping unmapped vpn ", vpn);
        _rev.erase(pageNum(it->second.ppage, _pageSize));
        _fwd.erase(it);
    }

    /** Lookup the mapping covering @p va; nullptr if unmapped. */
    const PageMapping*
    lookup(Addr va) const
    {
        auto it = _fwd.find(pageNum(va, _pageSize));
        return it == _fwd.end() ? nullptr : &it->second;
    }

    /** Translate @p va to a physical address; panics if unmapped. */
    PAddr
    translate(Addr va) const
    {
        const PageMapping* m = lookup(va);
        tt_assert(m, "translate of unmapped va ", va);
        return m->ppage + pageOffset(va, _pageSize);
    }

    /**
     * Reverse-translate a physical address to its virtual address;
     * @return false if the physical page is not mapped.
     */
    bool
    reverse(PAddr pa, Addr* va_out) const
    {
        auto it = _rev.find(pageNum(pa, _pageSize));
        if (it == _rev.end())
            return false;
        *va_out = it->second + pageOffset(pa, _pageSize);
        return true;
    }

    /** Update the page mode of an existing mapping. */
    void
    setMode(Addr va, std::uint8_t mode)
    {
        auto it = _fwd.find(pageNum(va, _pageSize));
        tt_assert(it != _fwd.end(), "setMode on unmapped va ", va);
        it->second.mode = mode;
    }

    std::size_t mappedPages() const { return _fwd.size(); }

    /**
     * Resident bytes (telemetry memory probes): element payloads of
     * the forward and reverse maps (bucket overhead not modeled).
     */
    std::size_t
    footprintBytes() const
    {
        return _fwd.size() *
                   (sizeof(std::uint64_t) + sizeof(PageMapping)) +
               _rev.size() * (sizeof(std::uint64_t) + sizeof(Addr));
    }

  private:
    std::uint32_t _pageSize;
    std::unordered_map<std::uint64_t, PageMapping> _fwd; // vpn -> mapping
    std::unordered_map<std::uint64_t, Addr> _rev;        // ppn -> va base
};

} // namespace tt

#endif // TT_MEM_PAGE_TABLE_HH
