/**
 * @file
 * Simulated physical memory: sparse paged byte storage plus a physical
 * page allocator. Each Typhoon node owns one PhysMem; the DirNNB
 * baseline uses a single PhysMem as its (logically distributed) global
 * store.
 */

#ifndef TT_MEM_PHYS_MEM_HH
#define TT_MEM_PHYS_MEM_HH

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * Byte-addressable memory with page-granular backing and a simple
 * bump-plus-freelist page allocator.
 *
 * Page lookup is on the path of every simulated load and store, so
 * pages live in a dense vector indexed by (ppn - base ppn) rather
 * than a hash map. Both allocation patterns in the tree are
 * contiguous bump sequences (Typhoon node memories from ppn 1,
 * DirNNB's address-keyed global store from its segment base), so the
 * vector stays dense in practice; a stray low allocation merely
 * re-bases it.
 */
class PhysMem
{
  public:
    explicit PhysMem(std::uint32_t page_size) : _pageSize(page_size)
    {
        tt_assert(isPow2(page_size), "page size must be a power of two");
    }

    std::uint32_t pageSize() const { return _pageSize; }

    /**
     * Allocate a fresh, zeroed physical page.
     * @return its base physical address.
     */
    PAddr
    allocPage()
    {
        std::uint64_t ppn;
        if (!_freeList.empty()) {
            ppn = _freeList.back();
            _freeList.pop_back();
        } else {
            ppn = _nextPpn++;
        }
        backPage(ppn);
        return ppn * _pageSize;
    }

    /**
     * Allocate a zeroed page at a caller-chosen base address. Used by
     * address-keyed stores (e.g. the DirNNB global memory, keyed by
     * virtual address); do not mix with the bump allocator on the
     * same instance unless the address ranges are disjoint.
     */
    void
    allocPageAt(PAddr base)
    {
        const std::uint64_t ppn = base / _pageSize;
        tt_assert(!slot(ppn), "page already allocated at ", base);
        backPage(ppn);
    }

    /** Release a page previously returned by allocPage(). */
    void
    freePage(PAddr base)
    {
        const std::uint64_t ppn = base / _pageSize;
        std::uint8_t* page = slot(ppn);
        tt_assert(page, "freeing unallocated page ", base);
        _pages[ppn - _basePpn].reset();
        --_allocated;
        _freeList.push_back(ppn);
    }

    /** True iff the page containing @p pa is allocated. */
    bool pageAllocated(PAddr pa) const { return slot(pa / _pageSize); }

    /** Copy @p len bytes at physical address @p pa into @p buf. */
    void
    read(PAddr pa, void* buf, std::size_t len) const
    {
        const std::uint8_t* src = locate(pa, len);
        std::memcpy(buf, src, len);
    }

    /** Copy @p len bytes from @p buf to physical address @p pa. */
    void
    write(PAddr pa, const void* buf, std::size_t len)
    {
        std::uint8_t* dst =
            const_cast<std::uint8_t*>(locate(pa, len));
        std::memcpy(dst, buf, len);
    }

    /** Typed convenience accessors (must not cross a page boundary). */
    template <typename T>
    T
    readT(PAddr pa) const
    {
        T v;
        read(pa, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(PAddr pa, const T& v)
    {
        write(pa, &v, sizeof(T));
    }

    /** Number of currently allocated pages. */
    std::size_t allocatedPages() const { return _allocated; }

    /** Bump-allocator watermark: the ppn the next fresh page gets. */
    std::uint64_t nextPpn() const { return _nextPpn; }

    /**
     * Resident bytes (telemetry memory probes): allocated page
     * backing plus the slot vector and free list.
     */
    std::size_t
    footprintBytes() const
    {
        return _allocated * std::size_t{_pageSize} +
               _pages.capacity() *
                   sizeof(std::unique_ptr<std::uint8_t[]>) +
               _freeList.capacity() * sizeof(std::uint64_t);
    }

    /**
     * Rewind the bump allocator to a recorded watermark and discard
     * the free list, so the next allocations replay the exact ppn
     * sequence a fresh instance would produce (DESIGN.md §15). Every
     * page at or above the watermark must already have been freed;
     * their empty slots are trimmed so the dense vector's extent also
     * matches a never-allocated-past-the-watermark instance.
     */
    void
    canonicalizeAllocator(std::uint64_t nextPpn)
    {
        tt_assert(nextPpn >= 1 && nextPpn <= _nextPpn,
                  "allocator watermark moved backwards");
        for (std::uint64_t ppn = nextPpn; ppn < _nextPpn; ++ppn) {
            const std::uint64_t idx = ppn - _basePpn;
            tt_assert(idx >= _pages.size() || !_pages[idx],
                      "canonicalizeAllocator: page ", ppn,
                      " above the watermark is still allocated");
        }
        _freeList.clear();
        _nextPpn = nextPpn;
        while (!_pages.empty() && !_pages.back() &&
               _basePpn + _pages.size() > nextPpn)
            _pages.pop_back();
    }

  private:
    /** Backing store for @p ppn, or nullptr if unallocated. */
    std::uint8_t*
    slot(std::uint64_t ppn) const
    {
        const std::uint64_t idx = ppn - _basePpn;
        return idx < _pages.size() ? _pages[idx].get() : nullptr;
    }

    void
    backPage(std::uint64_t ppn)
    {
        if (_pages.empty()) {
            _basePpn = ppn;
        } else if (ppn < _basePpn) {
            // Re-base: shift existing pages up to make room below.
            const std::uint64_t shift = _basePpn - ppn;
            _pages.resize(_pages.size() + shift);
            std::move_backward(_pages.begin(), _pages.end() - shift,
                               _pages.end());
            _basePpn = ppn;
        }
        const std::uint64_t idx = ppn - _basePpn;
        if (idx >= _pages.size())
            _pages.resize(idx + 1);
        _pages[idx] = std::make_unique<std::uint8_t[]>(_pageSize);
        std::memset(_pages[idx].get(), 0, _pageSize);
        ++_allocated;
    }

    const std::uint8_t*
    locate(PAddr pa, std::size_t len) const
    {
        const std::uint64_t off = pa & (_pageSize - 1);
        tt_assert(off + len <= _pageSize,
                  "physical access crosses page boundary at ", pa);
        const std::uint8_t* page = slot(pa / _pageSize);
        tt_assert(page, "access to unallocated page: pa=", pa);
        return page + off;
    }

    std::uint32_t _pageSize;
    std::uint64_t _nextPpn = 1; // keep paddr 0 unused as a null-ish value
    std::uint64_t _basePpn = 0;
    std::size_t _allocated = 0;
    std::vector<std::uint64_t> _freeList;
    std::vector<std::unique_ptr<std::uint8_t[]>> _pages;
};

} // namespace tt

#endif // TT_MEM_PHYS_MEM_HH
