/**
 * @file
 * Simulated physical memory: sparse paged byte storage plus a physical
 * page allocator. Each Typhoon node owns one PhysMem; the DirNNB
 * baseline uses a single PhysMem as its (logically distributed) global
 * store.
 */

#ifndef TT_MEM_PHYS_MEM_HH
#define TT_MEM_PHYS_MEM_HH

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * Sparse byte-addressable memory with page-granular backing and a
 * simple bump-plus-freelist page allocator.
 */
class PhysMem
{
  public:
    explicit PhysMem(std::uint32_t page_size) : _pageSize(page_size)
    {
        tt_assert(isPow2(page_size), "page size must be a power of two");
    }

    std::uint32_t pageSize() const { return _pageSize; }

    /**
     * Allocate a fresh, zeroed physical page.
     * @return its base physical address.
     */
    PAddr
    allocPage()
    {
        std::uint64_t ppn;
        if (!_freeList.empty()) {
            ppn = _freeList.back();
            _freeList.pop_back();
        } else {
            ppn = _nextPpn++;
        }
        auto& page = _pages[ppn];
        page = std::make_unique<std::uint8_t[]>(_pageSize);
        std::memset(page.get(), 0, _pageSize);
        return ppn * _pageSize;
    }

    /**
     * Allocate a zeroed page at a caller-chosen base address. Used by
     * address-keyed stores (e.g. the DirNNB global memory, keyed by
     * virtual address); do not mix with the bump allocator on the
     * same instance unless the address ranges are disjoint.
     */
    void
    allocPageAt(PAddr base)
    {
        const std::uint64_t ppn = base / _pageSize;
        tt_assert(!_pages.count(ppn), "page already allocated at ",
                  base);
        auto& page = _pages[ppn];
        page = std::make_unique<std::uint8_t[]>(_pageSize);
        std::memset(page.get(), 0, _pageSize);
    }

    /** Release a page previously returned by allocPage(). */
    void
    freePage(PAddr base)
    {
        const std::uint64_t ppn = base / _pageSize;
        auto it = _pages.find(ppn);
        tt_assert(it != _pages.end(), "freeing unallocated page ", base);
        _pages.erase(it);
        _freeList.push_back(ppn);
    }

    /** True iff the page containing @p pa is allocated. */
    bool
    pageAllocated(PAddr pa) const
    {
        return _pages.count(pa / _pageSize) != 0;
    }

    /** Copy @p len bytes at physical address @p pa into @p buf. */
    void
    read(PAddr pa, void* buf, std::size_t len) const
    {
        const std::uint8_t* src = locate(pa, len);
        std::memcpy(buf, src, len);
    }

    /** Copy @p len bytes from @p buf to physical address @p pa. */
    void
    write(PAddr pa, const void* buf, std::size_t len)
    {
        std::uint8_t* dst =
            const_cast<std::uint8_t*>(locate(pa, len));
        std::memcpy(dst, buf, len);
    }

    /** Typed convenience accessors (must not cross a page boundary). */
    template <typename T>
    T
    readT(PAddr pa) const
    {
        T v;
        read(pa, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(PAddr pa, const T& v)
    {
        write(pa, &v, sizeof(T));
    }

    /** Number of currently allocated pages. */
    std::size_t allocatedPages() const { return _pages.size(); }

  private:
    const std::uint8_t*
    locate(PAddr pa, std::size_t len) const
    {
        const std::uint64_t ppn = pa / _pageSize;
        const std::uint64_t off = pa & (_pageSize - 1);
        tt_assert(off + len <= _pageSize,
                  "physical access crosses page boundary at ", pa);
        auto it = _pages.find(ppn);
        tt_assert(it != _pages.end(), "access to unallocated page: pa=",
                  pa);
        return it->second.get() + off;
    }

    std::uint32_t _pageSize;
    std::uint64_t _nextPpn = 1; // keep paddr 0 unused as a null-ish value
    std::vector<std::uint64_t> _freeList;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        _pages;
};

} // namespace tt

#endif // TT_MEM_PHYS_MEM_HH
