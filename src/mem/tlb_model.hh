/**
 * @file
 * Timing model of a fully-associative TLB with FIFO replacement
 * (Table 2: "64 ent., fully assoc., FIFO repl.", 25-cycle miss).
 * Used for the primary CPU TLB, the NP TLB, and — with per-page tag
 * payloads layered on top — as the basis of the NP's reverse TLB.
 */

#ifndef TT_MEM_TLB_MODEL_HH
#define TT_MEM_TLB_MODEL_HH

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * Fully-associative FIFO-replacement TLB timing model over abstract
 * page numbers (virtual or physical, caller's choice).
 */
class TlbModel
{
  public:
    explicit TlbModel(std::uint32_t entries) : _entries(entries)
    {
        tt_assert(entries > 0, "TLB needs at least one entry");
    }

    /**
     * Access page @p pn, inserting it on a miss (FIFO eviction).
     * @return true on hit.
     */
    bool
    access(std::uint64_t pn)
    {
        if (_present.count(pn))
            return true;
        insert(pn);
        return false;
    }

    /** True iff @p pn is resident, without touching state. */
    bool probe(std::uint64_t pn) const { return _present.count(pn) != 0; }

    /** Remove @p pn (page unmapped or remapped). */
    void
    invalidate(std::uint64_t pn)
    {
        if (_present.erase(pn)) {
            for (auto it = _fifo.begin(); it != _fifo.end(); ++it) {
                if (*it == pn) {
                    _fifo.erase(it);
                    break;
                }
            }
        }
    }

    /** Drop everything (context switch / full shootdown). */
    void
    flush()
    {
        _present.clear();
        _fifo.clear();
    }

    std::uint32_t entries() const { return _entries; }
    std::size_t resident() const { return _present.size(); }

    /**
     * Resident bytes (telemetry memory probes): FIFO plus the hash
     * set's element payloads (bucket overhead not modeled).
     */
    std::size_t
    footprintBytes() const
    {
        return _fifo.size() * sizeof(std::uint64_t) +
               _present.size() * sizeof(std::uint64_t);
    }

  private:
    void
    insert(std::uint64_t pn)
    {
        if (_fifo.size() >= _entries) {
            _present.erase(_fifo.front());
            _fifo.pop_front();
        }
        _fifo.push_back(pn);
        _present.insert(pn);
    }

    std::uint32_t _entries;
    std::deque<std::uint64_t> _fifo;
    std::unordered_set<std::uint64_t> _present;
};

} // namespace tt

#endif // TT_MEM_TLB_MODEL_HH
