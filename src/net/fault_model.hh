/**
 * @file
 * Unreliable-network fault model (DESIGN.md §10).
 *
 * Tempest and Typhoon assume a lossless, per-link-FIFO fabric; a real
 * user-level DSM pushes reliability into the user-level transport.
 * FaultModel is the seam where the fabric stops being trustworthy: a
 * Network optionally holds a `FaultModel* _faults = nullptr` (the same
 * null-pointer/untaken-branch pattern as CheckHooks and
 * FlightRecorder, so the fault-off hot path and all seed outputs stay
 * bit-identical) and asks it for a verdict on every remote message.
 *
 * SeededFaultModel is the production implementation: per-message drop,
 * duplication, bounded reordering, transient link partitions, node
 * pause/resume, and permanent link cuts, all drawn from one private
 * Rng so a (seed, FaultParams) pair replays bit-identically.
 */

#ifndef TT_NET_FAULT_MODEL_HH
#define TT_NET_FAULT_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "net/message.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

/** Configuration of the seeded fault injector (ttsim --faults=SPEC). */
struct FaultParams
{
    double drop = 0;    ///< per-message loss probability
    double dup = 0;     ///< per-message duplication probability
    double reorder = 0; ///< per-message extra-delay probability
    /** Max extra delay (ticks) for a reordered or duplicated copy. */
    Tick reorderMax = 16;
    /** Probability a message opens a transient partition on its link. */
    double partition = 0;
    Tick partitionMax = 400; ///< max partition window length (ticks)
    /** Probability a message opens a pause window on its endpoints. */
    double pause = 0;
    Tick pauseMax = 300; ///< max node-pause window length (ticks)
    /** Permanently cut (one-way) links: every message on one is lost. */
    std::vector<std::pair<NodeId, NodeId>> cuts;
    /**
     * Crash-stop node failures (`crash@TICK:NODE`, DESIGN.md §15):
     * at TICK the node's caches, in-flight handlers, and transport
     * sessions vanish; survivors observe it through dead-link
     * declaration and the recovery coordinator rolls the machine back
     * to the last checkpoint. Injected by the recovery subsystem, not
     * by the per-message verdict path.
     */
    std::vector<std::pair<Tick, NodeId>> crashes;
    std::uint64_t seed = 0; ///< RNG seed; replay needs (seed, params)

    bool
    any() const
    {
        return drop > 0 || dup > 0 || reorder > 0 || partition > 0 ||
               pause > 0 || !cuts.empty() || !crashes.empty();
    }
};

/**
 * Abstract fault verdict source. Network::send consults it once per
 * remote message, after computing the lossless arrival time; tests
 * install bespoke models to force exact fault sequences.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    struct Verdict
    {
        bool drop = false;   ///< message never arrives
        Tick arrive = 0;     ///< (possibly delayed) arrival tick
        Tick dupArrive = 0;  ///< nonzero: deliver a second copy then
    };

    /**
     * Judge a remote message departing at @p when that would arrive at
     * @p arrive on the lossless fabric. Never called for node-local
     * messages (they short-circuit the fabric).
     */
    virtual Verdict onMessage(const Message& m, Tick when,
                              Tick arrive) = 0;
};

/** The deterministic, seeded production fault injector. */
class SeededFaultModel final : public FaultModel
{
  public:
    SeededFaultModel(int nodes, FaultParams params, StatSet& stats)
        : _p(std::move(params)),
          _nodes(nodes),
          _rng(_p.seed),
          _partUntil(static_cast<std::size_t>(nodes) * nodes, 0),
          _pauseUntil(nodes, 0),
          _cut(static_cast<std::size_t>(nodes) * nodes, 0),
          _drops(stats.counter("net.faults.drops")),
          _dups(stats.counter("net.faults.dups")),
          _reorders(stats.counter("net.faults.reorders")),
          _partitions(stats.counter("net.faults.partitions")),
          _partDrops(stats.counter("net.faults.partition_drops")),
          _pauses(stats.counter("net.faults.pauses")),
          _pauseDelays(stats.counter("net.faults.pause_delays"))
    {
        for (const auto& [a, b] : _p.cuts) {
            tt_assert(a >= 0 && a < nodes && b >= 0 && b < nodes,
                      "fault cut names bad link ", a, "-", b);
            _cut[link(a, b)] = 1;
        }
    }

    const FaultParams& params() const { return _p; }

    /**
     * Canonicalize transient state (checkpoint/rollback, DESIGN.md
     * §15): reseed the verdict RNG from the epoch-derived seed and
     * heal open partition/pause windows. Permanent cuts and the
     * configured crash schedule are construction facts and stay.
     */
    void
    resetTransient(std::uint64_t epochSeed)
    {
        _rng = Rng(epochSeed);
        std::fill(_partUntil.begin(), _partUntil.end(), 0);
        std::fill(_pauseUntil.begin(), _pauseUntil.end(), 0);
    }

    /** Total faults injected so far (campaign reporting). */
    std::uint64_t
    injected() const
    {
        return _drops.value() + _dups.value() + _reorders.value() +
               _partDrops.value() + _pauseDelays.value();
    }

    Verdict
    onMessage(const Message& m, Tick when, Tick arrive) override
    {
        Verdict v;
        v.arrive = arrive;

        if (_cut[link(m.src, m.dst)]) {
            v.drop = true;
            _partDrops.inc();
            return v;
        }

        // Node pause/resume: the endpoint's network interface stalls
        // for a window; traffic in either direction waits it out
        // (local compute continues — only the NI is paused).
        if (_p.pause > 0 && _rng.chance(_p.pause)) {
            Tick& until = _pauseUntil[m.dst];
            until = std::max(until, when) + 1 +
                    static_cast<Tick>(_rng.below(_p.pauseMax));
            _pauses.inc();
        }
        const Tick stall =
            std::max(_pauseUntil[m.src], _pauseUntil[m.dst]);
        if (stall > v.arrive) {
            v.arrive = stall;
            _pauseDelays.inc();
        }

        // Transient link partition: opened lazily by a send, eats
        // every message on the link until it heals.
        Tick& part = _partUntil[link(m.src, m.dst)];
        if (_p.partition > 0 && when >= part &&
            _rng.chance(_p.partition)) {
            part = when + 1 +
                   static_cast<Tick>(_rng.below(_p.partitionMax));
            _partitions.inc();
        }
        if (when < part) {
            v.drop = true;
            _partDrops.inc();
            return v;
        }

        if (_p.drop > 0 && _rng.chance(_p.drop)) {
            v.drop = true;
            _drops.inc();
            return v;
        }
        if (_p.dup > 0 && _rng.chance(_p.dup)) {
            v.dupArrive = v.arrive + 1 +
                          static_cast<Tick>(_rng.below(_p.reorderMax));
            _dups.inc();
        }
        if (_p.reorder > 0 && _rng.chance(_p.reorder)) {
            // Deliberately NOT FIFO-clamped (unlike perturbation
            // jitter): breaking channel order is the fault being
            // modeled; the reliable transport must restore it.
            v.arrive += 1 + static_cast<Tick>(_rng.below(_p.reorderMax));
            _reorders.inc();
        }
        return v;
    }

  private:
    std::size_t
    link(NodeId s, NodeId d) const
    {
        return static_cast<std::size_t>(s) * _nodes + d;
    }

    FaultParams _p;
    int _nodes;
    Rng _rng;
    std::vector<Tick> _partUntil;  ///< per-link partition end
    std::vector<Tick> _pauseUntil; ///< per-node NI stall end
    std::vector<std::uint8_t> _cut;

    Counter& _drops;
    Counter& _dups;
    Counter& _reorders;
    Counter& _partitions;
    Counter& _partDrops;
    Counter& _pauses;
    Counter& _pauseDelays;
};

/**
 * Parse a ttsim --faults=SPEC string into FaultParams. Keys:
 *   drop=P | dup=P | reorder=P[:MAX] | partition=P[:MAXLEN]
 *   | pause=P[:MAXLEN] | cut=A-B | crash@TICK:NODE | seed=N
 * separated by commas; cut= may repeat and cuts both directions;
 * crash@ may repeat to schedule several crash-stop failures.
 * Unknown keys are a usage error (tt_fatal).
 */
inline FaultParams
parseFaultSpec(const std::string& spec)
{
    FaultParams p;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        // crash@TICK:NODE — the one key using @, not = (a crash is a
        // point event, not a rate).
        if (item.rfind("crash@", 0) == 0) {
            const std::string v = item.substr(6);
            const std::size_t colon = v.find(':');
            if (colon == std::string::npos || colon == 0)
                tt_fatal("--faults: crash wants crash@TICK:NODE, got '",
                         item, "'");
            const Tick t = static_cast<Tick>(
                std::strtoull(v.c_str(), nullptr, 0));
            const NodeId n =
                static_cast<NodeId>(std::atoi(v.c_str() + colon + 1));
            if (t == 0)
                tt_fatal("--faults: crash tick must be > 0");
            p.crashes.emplace_back(t, n);
            continue;
        }
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            tt_fatal("--faults: expected key=value, got '", item, "'");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        auto prob = [&](const std::string& v) {
            const double d = std::strtod(v.c_str(), nullptr);
            if (d < 0 || d > 1)
                tt_fatal("--faults: ", key, "=", v,
                         " is not a probability in [0,1]");
            return d;
        };
        // P[:N] — probability with an optional tick bound.
        auto split = [&](Tick* bound) {
            const std::size_t colon = val.find(':');
            if (colon == std::string::npos)
                return prob(val);
            *bound = static_cast<Tick>(
                std::strtoull(val.c_str() + colon + 1, nullptr, 0));
            if (*bound == 0)
                tt_fatal("--faults: ", key, " bound must be > 0");
            return prob(val.substr(0, colon));
        };
        if (key == "drop") {
            p.drop = prob(val);
        } else if (key == "dup") {
            p.dup = prob(val);
        } else if (key == "reorder") {
            p.reorder = split(&p.reorderMax);
        } else if (key == "partition") {
            p.partition = split(&p.partitionMax);
        } else if (key == "pause") {
            p.pause = split(&p.pauseMax);
        } else if (key == "cut") {
            const std::size_t dash = val.find('-');
            if (dash == std::string::npos)
                tt_fatal("--faults: cut wants A-B, got '", val, "'");
            const NodeId a = std::atoi(val.c_str());
            const NodeId b = std::atoi(val.c_str() + dash + 1);
            p.cuts.emplace_back(a, b);
            p.cuts.emplace_back(b, a);
        } else if (key == "seed") {
            p.seed = std::strtoull(val.c_str(), nullptr, 0);
        } else {
            tt_fatal(
                "--faults: unknown key '", key,
                "' (drop|dup|reorder|partition|pause|cut|crash@|seed)");
        }
    }
    if (!p.any())
        tt_fatal("--faults: spec '", spec, "' injects nothing");
    return p;
}

} // namespace tt

#endif // TT_NET_FAULT_MODEL_HH
