/**
 * @file
 * Network message type. Tempest messages are active messages: the
 * first word names the receive handler; the rest are arguments,
 * optionally followed by a block-data payload. Typhoon's network
 * (CM-5-derived, section 5) carries packets of at most twenty 32-bit
 * words on two independent virtual networks used for deadlock-free
 * request/response protocols.
 */

#ifndef TT_NET_MESSAGE_HH
#define TT_NET_MESSAGE_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/logging.hh"
#include "sim/small_vec.hh"
#include "sim/types.hh"

namespace tt
{

/** Handler identifier: the "handler PC" of an active message. */
using HandlerId = std::uint32_t;

/** The two virtual networks (section 5.1: deadlock avoidance). */
enum class VNet : std::uint8_t
{
    Request = 0,  ///< lower scheduling priority at the receiver
    Response = 1, ///< higher scheduling priority
};

/** Maximum words per packet (paper: twenty 32-bit words). */
constexpr std::uint32_t kMaxPacketWords = 20;

/**
 * Reliable-transport classification of a message (DESIGN.md §10).
 * None: the fabric is assumed lossless and the message carries no
 * transport state (every message when no transport is attached, and
 * node-local messages always). Data: a protocol message stamped with
 * a per-(src,dst)-channel sequence number. Ack: a transport-generated
 * cumulative acknowledgment, consumed by the receiving transport and
 * never delivered to a protocol handler.
 */
enum class TKind : std::uint8_t
{
    None = 0,
    Data = 1,
    Ack = 2,
};

/**
 * An active message. Word accounting: 1 word for the handler id,
 * plus args.size() words, plus ceil(data.size()/4) words of payload.
 * Messages wider than one packet are legal and are charged as
 * multiple packets by the network (used by 64/128-byte-block
 * configurations and by bulk transfer).
 *
 * Payloads live inline in the Message (SmallVec): protocol messages
 * carry at most four argument words and one 32-byte block, so the
 * common case allocates nothing; 64/128-byte blocks and bulk-transfer
 * chunks spill to the heap transparently.
 */
struct Message
{
    /** Inline capacities sized for the widest protocol message. */
    using Args = SmallVec<Word, 8>;
    using Data = SmallVec<std::uint8_t, 32>;

    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    VNet vnet = VNet::Request;
    HandlerId handler = 0;
    /**
     * Causal trace id stamped by Network::send when a FlightRecorder
     * is attached (0 otherwise); links the send record to the deliver
     * and handler records at the destination. Not a protocol field —
     * it is not charged any network words.
     */
    std::uint32_t obsId = 0;
    /**
     * Reliable-transport header (DESIGN.md §10): per-channel sequence
     * number for Data messages, cumulative ack number for Ack
     * messages. Like obsId these ride in otherwise-unused packet
     * header space (a protocol message never fills its 20-word
     * packet), so they are not charged network words; the acks
     * themselves are real one-word messages and are charged.
     */
    std::uint32_t seq = 0;
    /**
     * Coherence-transaction id (DESIGN.md §14): stamped by
     * Network::send from the recorder's per-node transaction context
     * when transaction tracing is on (0 otherwise). Retransmissions
     * inherit it through the transport's retained window copy and
     * acks copy it from the message they acknowledge, so every
     * derived message links back to its originating miss. Like obsId
     * and seq it rides in unused packet-header space and is not
     * charged network words.
     */
    std::uint32_t txn = 0;
    TKind tkind = TKind::None;
    Args args;
    Data data;

    /** Total size in network words. */
    std::uint32_t
    sizeWords() const
    {
        return 1 + static_cast<std::uint32_t>(args.size()) +
               static_cast<std::uint32_t>((data.size() + 3) / 4);
    }

    /** Number of packets this message occupies on a link. */
    std::uint32_t
    packets() const
    {
        return (sizeWords() + kMaxPacketWords - 1) / kMaxPacketWords;
    }

    /** Convenience: push a 64-bit value as two words. */
    void
    pushAddr(std::uint64_t v)
    {
        args.push_back(static_cast<Word>(v));
        args.push_back(static_cast<Word>(v >> 32));
    }

    /** Convenience: read a 64-bit value from args[i], args[i+1]. */
    std::uint64_t
    addrArg(std::size_t i) const
    {
        tt_assert(i + 1 < args.size(), "addrArg out of range");
        return static_cast<std::uint64_t>(args[i]) |
               (static_cast<std::uint64_t>(args[i + 1]) << 32);
    }
};

} // namespace tt

#endif // TT_NET_MESSAGE_HH
