/**
 * @file
 * Point-to-point interconnect model. Per Table 2 the network is a
 * fixed-latency fabric (11 cycles); an optional per-packet injection
 * occupancy serializes a node's outbound traffic, and multi-packet
 * messages pay one injection slot per packet. Contention inside the
 * fabric is not modeled, matching the paper's methodology.
 */

#ifndef TT_NET_NETWORK_HH
#define TT_NET_NETWORK_HH

#include <functional>
#include <vector>

#include "check/hooks.hh"
#include "net/fault_model.hh"
#include "net/message.hh"
#include "net/transport_hooks.hh"
#include "obs/recorder.hh"
#include "sim/event_queue.hh"
#include "sim/host_timer.hh"
#include "sim/parallel_engine.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

/** Network configuration. */
struct NetworkParams
{
    Tick latency = 11;          ///< end-to-end packet latency (Table 2)
    Tick injectPerPacket = 1;   ///< outbound serialization per packet
    /**
     * Optional inbound (ejection-port) serialization per packet. The
     * paper's methodology does not model contention; 0 (default)
     * reproduces that. Nonzero values model a finite ejection
     * bandwidth at each node — see bench/ablation_contention.
     */
    Tick ejectPerPacket = 0;
    /**
     * Schedule-perturbation jitter (ttsim --perturb / DESIGN.md §8):
     * each remote message's latency is stretched by a deterministic
     * pseudo-random 0..jitterMax cycles, clamped so that per-(src,dst)
     * delivery order stays FIFO (the protocols rely on channel
     * ordering). 0 (default) disables jitter entirely.
     */
    Tick jitterMax = 0;
    std::uint64_t jitterSeed = 0; ///< RNG seed for the jitter stream
};

/**
 * The interconnect. Each node registers one receiver (its NP or its
 * hardware directory controller); send() delivers the message to the
 * destination's receiver at send-time + latency, honoring per-node
 * injection serialization.
 */
class Network
{
  public:
    using Receiver = std::function<void(Message&&)>;

    Network(EventQueue& eq, int nodes, NetworkParams params,
            StatSet& stats)
        : _eq(eq),
          _params(params),
          _receivers(nodes),
          _linkFree(nodes, 0),
          _ejectFree(nodes, 0),
          _msgs(stats.counter("net.messages")),
          _packets(stats.counter("net.packets")),
          _words(stats.counter("net.words")),
          _reqMsgs(stats.counter("net.req_messages")),
          _respMsgs(stats.counter("net.resp_messages")),
          _ejectQueued(stats.counter("net.eject_queued"))
    {
        if (_params.jitterMax) {
            _jitter = Rng(_params.jitterSeed);
            _lastArrive.assign(
                static_cast<std::size_t>(nodes) * nodes, 0);
        }
    }

    int nodes() const { return static_cast<int>(_receivers.size()); }
    const NetworkParams& params() const { return _params; }

    /** Attach the coherence sanitizer (nullptr = disabled). */
    void setChecker(CheckHooks* c) { _checker = c; }

    /** Attach the flight recorder (nullptr = disabled). */
    void setRecorder(FlightRecorder* r) { _obs = r; }

    /** Attach the unreliable-fabric fault model (nullptr = lossless). */
    void setFaults(FaultModel* f) { _faults = f; }

    /** Attach the reliable transport (nullptr = raw fabric). */
    void setTransport(TransportHooks* t) { _transport = t; }

    /** Attach the self-telemetry timer (nullptr = off, DESIGN.md §16). */
    void setTelemetry(HostTimer* t) { _telem = t; }

    /**
     * Resident bytes of the fabric's own structures (telemetry memory
     * probe): receiver table, port occupancies, lane shards, jitter
     * clamps, dead-node set.
     */
    std::size_t
    footprintBytes() const
    {
        return _receivers.capacity() * sizeof(Receiver) +
               _linkFree.capacity() * sizeof(Tick) +
               _ejectFree.capacity() * sizeof(Tick) +
               _laneSafe.capacity() +
               _laneStats.capacity() * sizeof(LaneNetStats) +
               _lastArrive.capacity() * sizeof(Tick) +
               _dead.capacity();
    }

    /**
     * Attach the sharded engine (DESIGN.md §12). Delivery to
     * parallel-safe receivers is then routed to the destination
     * node's lane instead of the global queue, and the per-message
     * counters switch to per-source shards folded back into the
     * StatSet by an engine finalizer (sums commute, so the totals are
     * thread-count invariant). nullptr keeps the serial path.
     */
    void
    setEngine(ParallelEngine* e)
    {
        _engine = e;
        if (_engine) {
            tt_assert(_engine->lanes() >= nodes(),
                      "engine has fewer lanes than network nodes");
            _laneSafe.assign(_receivers.size(), 0);
            _laneStats.resize(_receivers.size());
            _engine->addFinalizer([this] { flushLaneStats(); });
        }
    }

    /**
     * Install the message receiver for @p node. A receiver registered
     * @p parallelSafe promises to touch only node-local state (plus
     * the network's own sharded send path), so with an engine attached
     * its deliveries execute on the node's lane. Sharded mode is
     * incompatible with the serializing/observing hooks — transport,
     * faults, checker, jitter, ejection — which all mutate shared
     * state per message.
     */
    void
    setReceiver(NodeId node, Receiver r, bool parallelSafe = false)
    {
        _receivers.at(node) = std::move(r);
        if (parallelSafe && _engine) {
            tt_assert(!_transport && !_faults && !_checker &&
                          !_params.jitterMax && !_params.ejectPerPacket,
                      "parallel-safe receivers are incompatible with "
                      "transport/faults/checker/jitter/ejection");
            tt_assert(!_obs || _obs->sharded(),
                      "flight recorder must be in sharded mode under "
                      "the parallel engine");
            _laneSafe.at(node) = 1;
            _sharded = true;
        }
    }

    // --- crash-stop support (src/recovery, DESIGN.md §15) -------------
    // Gated behind armRecovery() so crash-free runs never touch the
    // dead-node vector (null-opt-in: seed outputs stay bit-identical).

    /** Allocate the dead-node set; required before markDead(). */
    void
    armRecovery()
    {
        _dead.assign(_receivers.size(), 0);
        _recoveryArmed = true;
    }

    /**
     * Crash-stop @p n: from this instant every message from or to the
     * node is dropped at the fabric boundary — its in-flight traffic,
     * handler invocations, and future sends all vanish. (The node's
     * simulated compute between the crash and the rollback is dead
     * work: the recovery coordinator discards it wholesale.)
     */
    void
    markDead(NodeId n)
    {
        tt_assert(_recoveryArmed, "markDead before armRecovery");
        _dead.at(n) = 1;
    }

    /** Rollback complete: the node rejoins the fabric. */
    void
    revive(NodeId n)
    {
        tt_assert(_recoveryArmed, "revive before armRecovery");
        _dead.at(n) = 0;
    }

    bool
    nodeDead(NodeId n) const
    {
        return _recoveryArmed && _dead[static_cast<std::size_t>(n)];
    }

    /**
     * Messages currently in flight (deliver events scheduled but not
     * yet executed). The checkpoint manager requires this to be zero
     * at a snapshot epoch: a peeked block whose latest bytes ride in a
     * transit writeback would snapshot stale. Serial engine only (the
     * sharded lanes never coexist with checkpointing).
     */
    long inflight() const { return _inflight; }

    /**
     * Messages swallowed by the dead-node gate ("declared-lost" in
     * PROTOCOLS.md's conservation terms). A plain member, not a
     * StatSet counter: registering one would add a stats-json line to
     * every crash-free run and break bit-identity with the seed. The
     * recovery coordinator publishes it under rec.* when armed.
     */
    std::uint64_t crashDrops() const { return _crashDrops; }

    /**
     * Canonicalize fabric timing state (checkpoint/rollback): both
     * sides of a checkpoint set the injection/ejection occupancies to
     * the epoch tick, so a just-departed burst in the original run
     * cannot leave it ahead of the restored run.
     */
    void
    resetForRecovery()
    {
        const Tick now = _eq.now();
        std::fill(_linkFree.begin(), _linkFree.end(), now);
        std::fill(_ejectFree.begin(), _ejectFree.end(), now);
        std::fill(_lastArrive.begin(), _lastArrive.end(), 0);
        // A crash rollback clears the event queue wholesale, killing
        // scheduled deliver closures before they can decrement.
        _inflight = 0;
    }

    /**
     * Send @p msg, departing the source at absolute tick @p when
     * (callers inside events pass the current charged time). Local
     * (src == dst) messages short-circuit the fabric: they are
     * delivered after the injection cost only.
     */
    void
    send(Message msg, Tick when)
    {
        // The transaction id is stamped before the transport retains
        // its window copy, so retransmissions inherit it for free
        // (txnFor returns 0 whenever transaction tracing is off).
        if (_obs)
            msg.txn = _obs->txnFor(msg.src);
        // The transport sequences protocol messages once, at their
        // first physical send; retransmissions and acks enter below
        // via sendFromTransport. Local messages short-circuit the
        // fabric and are never sequenced (nor subject to faults).
        if (_transport && msg.src != msg.dst)
            _transport->onSend(msg, when);
        sendPhysical(std::move(msg), when, /*fromTransport=*/false);
    }

    /**
     * Transport-internal entry: inject a retransmission or an ack.
     * Subject to injection occupancy and fault injection like any
     * other message, but never re-sequenced, and invisible to the
     * coherence sanitizer (the checker tracks each logical message
     * once — see the conservation notes in PROTOCOLS.md).
     */
    void
    sendFromTransport(Message msg, Tick when)
    {
        sendPhysical(std::move(msg), when, /*fromTransport=*/true);
    }

  private:
    void
    sendPhysical(Message msg, Tick when, bool fromTransport)
    {
        // Every sender is a node-resident NP or directory controller,
        // so src must name a real node: injection occupancy is charged
        // to the source's outbound link. There is no host/broadcast
        // injection convention — a kNoNode src is a protocol bug.
        tt_assert(msg.src >= 0 && msg.src < nodes(),
                  "message from bad node ", msg.src);
        tt_assert(msg.dst >= 0 && msg.dst < nodes(),
                  "message to bad node ", msg.dst);
        tt_assert(_receivers[msg.dst], "no receiver at node ", msg.dst);

        // Crash-stop gate: traffic touching a dead node vanishes at
        // the fabric boundary, before any stats/checker/recorder side
        // effect — the message was never "really sent". (The
        // transport's window copy, retained in send() before this
        // point, is what eventually times out and declares the link
        // dead.)
        if (_recoveryArmed && (_dead[msg.src] || _dead[msg.dst])) {
            ++_crashDrops;
            return;
        }

        const std::uint32_t pkts = msg.packets();
        if (_sharded) {
            // A lane may only send as itself: the injection port state
            // and the stat shard below are owned by the source lane.
            tt_assert(!_engine->inLaneContext() ||
                          _engine->currentLane() == msg.src,
                      "lane ", _engine->currentLane(),
                      " sending as node ", msg.src);
            LaneNetStats& ls = _laneStats[msg.src];
            ++ls.msgs;
            ls.packets += pkts;
            ls.words += msg.sizeWords();
            ++(msg.vnet == VNet::Request ? ls.reqMsgs : ls.respMsgs);
        } else {
            _msgs.inc();
            _packets.inc(pkts);
            _words.inc(msg.sizeWords());
            (msg.vnet == VNet::Request ? _reqMsgs : _respMsgs).inc();
        }

        // Injection serialization at the source.
        Tick& free = _linkFree[msg.src];
        const Tick depart =
            std::max(when, free) + _params.injectPerPacket * pkts;
        free = depart;

        Tick arrive =
            msg.src == msg.dst ? depart : depart + _params.latency;

        if (_params.jitterMax && msg.src != msg.dst) {
            // Deterministic latency jitter, clamped to keep each
            // (src,dst) channel strictly FIFO.
            arrive += _jitter.below(_params.jitterMax + 1);
            Tick& last = _lastArrive[static_cast<std::size_t>(msg.src) *
                                         nodes() +
                                     msg.dst];
            if (arrive <= last)
                arrive = last + 1;
            last = arrive;
        }

        if (_params.ejectPerPacket) {
            // Finite ejection bandwidth: packets queue at the
            // destination port.
            Tick& efree = _ejectFree[msg.dst];
            if (efree > arrive)
                _ejectQueued.inc();
            arrive = std::max(arrive, efree) +
                     _params.ejectPerPacket * pkts;
            if (arrive > efree)
                efree = arrive;
        }

        // Fault injection (null-pointer pattern: the lossless path is
        // untouched). Verdicts are drawn after the arrival time is
        // fixed so delays compose with occupancy/jitter modeling.
        bool dropped = false;
        Tick dupArrive = 0;
        if (_faults && msg.src != msg.dst) {
            FaultModel::Verdict v = _faults->onMessage(msg, when, arrive);
            dropped = v.drop;
            arrive = v.arrive;
            dupArrive = v.dupArrive;
        }

        // The sanitizer tracks each logical message exactly once: at
        // its original protocol send (even if that copy is then lost —
        // with a transport attached it logically stays in flight in
        // the retransmission buffer; without one, a loss is a real
        // conservation violation and must be reported) and at the one
        // accepted delivery (the handler-dispatch onMsgDeliver).
        if (_checker && !fromTransport)
            _checker->onMsgSend(msg);
        if (_obs) {
            // Flag transport re-injections of Data messages (= go-
            // back-N retransmissions; acks are fresh sends) and lost
            // physical copies so the TxnTracer can attribute loss-
            // repair latency (DESIGN.md §14).
            const std::uint8_t flags =
                static_cast<std::uint8_t>(
                    (fromTransport && msg.tkind == TKind::Data
                         ? kRecRetransmit
                         : 0) |
                    (dropped ? kRecDropped : 0));
            _obs->msgSend(msg, depart, dropped ? depart : arrive,
                          flags);
        }

        if (dupArrive) {
            Message copy = msg;
            if (!_sharded)
                ++_inflight;
            _eq.schedule(dupArrive,
                         [this, m = std::move(copy)]() mutable {
                             deliver(std::move(m));
                         });
        }
        if (dropped)
            return;

        // The closure owns the message. Under the sharded engine a
        // parallel-safe destination's delivery runs on its own lane;
        // everything else stays on the global queue (a lane-context
        // sender can never reach a non-lane destination — asserted —
        // because scheduling into the global queue from a worker
        // thread would race).
        if (_sharded && _laneSafe[msg.dst]) {
            const NodeId dst = msg.dst;
            _engine->scheduleLane(dst, arrive,
                                  [this, m = std::move(msg)]() mutable {
                                      deliver(std::move(m));
                                  });
            return;
        }
        tt_assert(!_engine || !_engine->inLaneContext(),
                  "lane-context send to non-lane receiver ", msg.dst);
        if (!_sharded)
            ++_inflight;
        _eq.schedule(arrive,
                     [this, m = std::move(msg)]() mutable {
                         deliver(std::move(m));
                     });
    }

    void
    deliver(Message&& m)
    {
        // Host-time attribution: delivery filtering plus everything
        // the receiver does downstream starts as Net; the handler
        // sites re-scope to Handler (DESIGN.md §16). No-op unless the
        // current event is a timed sample.
        TelemScope ts(_telem, HostTimer::Cat::Net);
        // Lane deliveries never incremented (sharded mode has no
        // checkpointing), so the counter is serial-path only.
        if (!_sharded)
            --_inflight;
        // Traffic already in flight when the crash struck: the
        // victim's outstanding sends and its inbound traffic vanish.
        if (_recoveryArmed && (_dead[m.src] || _dead[m.dst])) {
            ++_crashDrops;
            return;
        }
        // The transport filters arrivals: acks are consumed, duplicate
        // and out-of-order data suppressed, in-order data released.
        if (_transport && !_transport->onArrive(m)) {
            // Suppressed data arrivals (dup / out-of-order) still link
            // to their transaction in the trace; consumed acks stay
            // invisible as before.
            if (_obs && _obs->wantTxn() && m.tkind == TKind::Data)
                _obs->msgSup(m.dst, m, _eq.now());
            return;
        }
        _receivers[m.dst](std::move(m));
    }
    /** Per-source-node counter shard (sharded mode; no false sharing). */
    struct alignas(64) LaneNetStats
    {
        std::uint64_t msgs = 0;
        std::uint64_t packets = 0;
        std::uint64_t words = 0;
        std::uint64_t reqMsgs = 0;
        std::uint64_t respMsgs = 0;
    };

    /** Fold the lane shards into the StatSet (engine finalizer). */
    void
    flushLaneStats()
    {
        for (LaneNetStats& ls : _laneStats) {
            _msgs.inc(ls.msgs);
            _packets.inc(ls.packets);
            _words.inc(ls.words);
            _reqMsgs.inc(ls.reqMsgs);
            _respMsgs.inc(ls.respMsgs);
            ls = LaneNetStats{};
        }
    }

    EventQueue& _eq;
    NetworkParams _params;
    std::vector<Receiver> _receivers;
    std::vector<Tick> _linkFree;
    std::vector<Tick> _ejectFree;
    ParallelEngine* _engine = nullptr;      ///< sharded engine, opt-in
    std::vector<std::uint8_t> _laneSafe;    ///< per-node lane delivery
    std::vector<LaneNetStats> _laneStats;   ///< per-src counter shards
    bool _sharded = false; ///< any parallel-safe receiver registered
    CheckHooks* _checker = nullptr; ///< coherence sanitizer, opt-in
    FlightRecorder* _obs = nullptr; ///< flight recorder, opt-in
    FaultModel* _faults = nullptr;  ///< unreliable fabric, opt-in
    TransportHooks* _transport = nullptr; ///< reliable delivery, opt-in
    HostTimer* _telem = nullptr;    ///< self-telemetry timer, opt-in
    Rng _jitter;                    ///< perturbation jitter stream
    std::vector<Tick> _lastArrive;  ///< per-(src,dst) FIFO clamp
    std::vector<std::uint8_t> _dead; ///< crash-stopped nodes, opt-in
    bool _recoveryArmed = false;     ///< armRecovery() called
    long _inflight = 0;              ///< scheduled deliveries (serial)
    std::uint64_t _crashDrops = 0;   ///< dead-node gate drops

    // Stat handles resolved once at construction (Counter& from a
    // StatSet is reference-stable) — send() is per-message hot.
    Counter& _msgs;
    Counter& _packets;
    Counter& _words;
    Counter& _reqMsgs;
    Counter& _respMsgs;
    Counter& _ejectQueued;
};

} // namespace tt

#endif // TT_NET_NETWORK_HH
