/**
 * @file
 * TransportHooks — the interposition interface between the network
 * and a user-level reliable-delivery transport (src/core/transport.hh,
 * DESIGN.md §10).
 *
 * Like CheckHooks, this header is deliberately dependency-light so
 * src/net never acquires a link-time dependency on the transport
 * implementation: a Network holds a `TransportHooks* _transport =
 * nullptr` and guards each call with `if (_transport)`; detached, the
 * hooks cost one never-taken branch and the hot path stays
 * bit-identical.
 */

#ifndef TT_NET_TRANSPORT_HOOKS_HH
#define TT_NET_TRANSPORT_HOOKS_HH

#include "net/message.hh"
#include "sim/types.hh"

namespace tt
{

class TransportHooks
{
  public:
    virtual ~TransportHooks() = default;

    /**
     * A protocol message is about to enter the fabric at tick
     * @p when (called from Network::send for remote messages only,
     * never for the transport's own retransmissions or acks). The
     * transport stamps its header (seq, tkind) and retains a
     * retransmission copy.
     */
    virtual void onSend(Message& m, Tick when) = 0;

    /**
     * A message arrived at its destination. Return true to hand it to
     * the registered receiver; false if the transport consumed it (an
     * ack, a suppressed duplicate, or an out-of-order arrival).
     */
    virtual bool onArrive(Message& m) = 0;
};

} // namespace tt

#endif // TT_NET_TRANSPORT_HOOKS_HH
