#include "obs/perfetto.hh"

#include "obs/recorder.hh"
#include "sim/logging.hh"

namespace tt
{

namespace
{

/**
 * Access-tag names for TagChange instants. Kept local so tt_obs does
 * not depend on tt_core (which sits above tt_net in the link order);
 * values mirror core/tempest.hh's AccessTag.
 */
const char* const kTagNames[] = {"Invalid", "ReadOnly", "ReadWrite",
                                 "Busy"};

const char*
tagName(std::uint8_t tag)
{
    return tag < 4 ? kTagNames[tag] : "?";
}

} // namespace

PerfettoWriter::PerfettoWriter(const std::string& path, int nodes)
    : _f(path), _nodes(nodes)
{
    if (!_f) {
        tt_warn("cannot open trace file ", path);
        return;
    }
    _f << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    emitMeta(-1, "ttsim");
    for (int n = 0; n < nodes; ++n)
        emitMeta(n, "node " + std::to_string(n));
    emitMeta(nodes + 0, "vnet request");
    emitMeta(nodes + 1, "vnet response");
}

void
PerfettoWriter::emitMeta(int tid, const std::string& name)
{
    const bool process = tid < 0;
    _f << (_firstEvent ? "\n" : ",\n");
    _firstEvent = false;
    _f << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << (process ? 0 : tid)
       << ", \"name\": \""
       << (process ? "process_name" : "thread_name")
       << "\", \"args\": {\"name\": \"" << name << "\"}}";
    if (!process) {
        // Sort node tracks before vnet tracks, in id order.
        _f << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << tid
           << ", \"name\": \"thread_sort_index\", \"args\": "
              "{\"sort_index\": "
           << tid << "}}";
    }
}

std::ofstream&
PerfettoWriter::begin(const char* ph, Tick ts, int tid, const char* cat,
                      const std::string& name)
{
    _f << (_firstEvent ? "\n" : ",\n");
    _firstEvent = false;
    _f << "{\"ph\": \"" << ph << "\", \"pid\": 0, \"tid\": " << tid
       << ", \"ts\": " << ts << ", \"cat\": \"" << cat
       << "\", \"name\": \"" << name << "\"";
    return _f;
}

void
PerfettoWriter::instant(Tick ts, int tid, const char* cat,
                        const std::string& name)
{
    begin("i", ts, tid, cat, name) << ", \"s\": \"t\"}";
}

void
PerfettoWriter::flow(const char* ph, Tick ts, int tid,
                     std::uint32_t txn)
{
    begin(ph, ts, tid, "txn", "txn");
    if (ph[0] == 'f')
        _f << ", \"bp\": \"e\"";
    _f << ", \"id\": " << txn << "}";
}

void
PerfettoWriter::write(const TraceRecord& r, const FlightRecorder& rec)
{
    if (!_f || _closed)
        return;
    switch (r.kind) {
      case RecKind::MsgSend: {
        // One slice per message on its virtual-network track,
        // spanning depart..arrive. Transaction / retransmission /
        // drop args only appear when nonzero, so txn-off and
        // fault-off traces stay byte-identical.
        const Tick dur = r.t2 > r.tick ? r.t2 - r.tick : 1;
        begin("X", r.tick, _nodes + r.sub, "msg",
              rec.handlerName(static_cast<HandlerId>(r.addr)))
            << ", \"dur\": " << dur << ", \"args\": {\"msg\": " << r.id
            << ", \"src\": " << r.node << ", \"dst\": " << r.arg;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        if (r.flags & kRecRetransmit)
            _f << ", \"retx\": 1";
        if (r.flags & kRecDropped)
            _f << ", \"drop\": 1";
        _f << "}}";
        break;
      }
      case RecKind::MsgDeliver:
        begin("i", r.tick, r.node, "deliver",
              rec.handlerName(static_cast<HandlerId>(r.addr)))
            << ", \"s\": \"t\", \"args\": {\"msg\": " << r.id;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        if (r.txn)
            flow("t", r.tick, r.node, r.txn);
        break;
      case RecKind::HandlerDone: {
        const Tick dur = r.t2 > 0 ? r.t2 : 1;
        const char* cat = "handler";
        std::string name;
        switch (static_cast<ActKind>(r.sub)) {
          case ActKind::Msg:
            name = rec.handlerName(static_cast<HandlerId>(r.addr));
            break;
          case ActKind::Baf:
            cat = "fault";
            name = "baf_handler";
            break;
          case ActKind::Page:
            cat = "fault";
            name = "page_fault";
            break;
        }
        begin("X", r.tick, r.node, cat, name)
            << ", \"dur\": " << dur << ", \"args\": {\"msg\": " << r.id;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        break;
      }
      case RecKind::BlockFault:
        begin("i", r.tick, r.node, "fault",
              r.sub ? "fault.write" : "fault.read")
            << ", \"s\": \"t\", \"args\": {\"va\": " << r.addr
            << ", \"tag\": \"" << tagName(static_cast<std::uint8_t>(r.arg))
            << "\"";
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        if (r.txn && _flowStarted.insert(r.txn).second)
            flow("s", r.tick, r.node, r.txn);
        break;
      case RecKind::MissStart:
        begin("i", r.tick, r.node, "miss",
              r.sub ? "miss.begin.write" : "miss.begin.read")
            << ", \"s\": \"t\", \"args\": {\"blk\": " << r.addr;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        if (r.txn && _flowStarted.insert(r.txn).second)
            flow("s", r.tick, r.node, r.txn);
        break;
      case RecKind::MissEnd:
        begin("i", r.tick, r.node, "miss",
              r.sub ? "miss.end.write" : "miss.end.read")
            << ", \"s\": \"t\", \"args\": {\"va\": " << r.addr;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        if (r.txn)
            flow("f", r.tick, r.node, r.txn);
        break;
      case RecKind::Resume:
        instant(r.tick, r.node, "cpu", "resume");
        break;
      case RecKind::TagChange:
        begin("i", r.tick, r.node, "tag",
              std::string("tag.") + tagName(r.sub))
            << ", \"s\": \"t\", \"args\": {\"blk\": " << r.addr << "}}";
        break;
      case RecKind::PageMap:
        begin("i", r.tick, r.node, "page", "page.map")
            << ", \"s\": \"t\", \"args\": {\"va\": " << r.addr
            << ", \"mode\": " << r.arg << "}}";
        break;
      case RecKind::PageUnmap:
        begin("i", r.tick, r.node, "page", "page.unmap")
            << ", \"s\": \"t\", \"args\": {\"va\": " << r.addr << "}}";
        break;
      case RecKind::BulkPacket:
        begin("X", r.tick, r.node, "bulk", "bulk_packet")
            << ", \"dur\": " << (r.t2 > 0 ? r.t2 : 1)
            << ", \"args\": {\"bytes\": " << r.arg << "}}";
        break;
      // Sharing-analysis kinds (only present when --analyze is on;
      // BlockAccess is too dense for a useful trace, so only the
      // coherence rounds are exported).
      case RecKind::BlockAccess:
        break;
      case RecKind::InvalSent:
        begin("i", r.tick, r.node, "share",
              r.sub == 3 ? "share.update" : "share.inval")
            << ", \"s\": \"t\", \"args\": {\"blk\": " << r.addr
            << ", \"fanout\": " << r.arg;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        break;
      case RecKind::DirTrans:
        begin("i", r.tick, r.node, "share", "share.dir")
            << ", \"s\": \"t\", \"args\": {\"blk\": " << r.addr
            << ", \"from\": " << r.arg
            << ", \"to\": " << int(r.sub) << "}}";
        break;
      // Transaction-tracing kind (only present when --trace-critical
      // is on): a suppressed arrival still links to its transaction.
      case RecKind::MsgSup:
        begin("i", r.tick, r.node, "txn", "msg.suppressed")
            << ", \"s\": \"t\", \"args\": {\"msg\": " << r.id
            << ", \"src\": " << r.arg;
        if (r.txn)
            _f << ", \"txn\": " << r.txn;
        _f << "}}";
        break;
    }
}

void
PerfettoWriter::counter(Tick ts, const std::string& name,
                        std::uint64_t value)
{
    if (!_f || _closed)
        return;
    begin("C", ts, 0, "stat", name)
        << ", \"args\": {\"value\": " << value << "}}";
}

void
PerfettoWriter::close()
{
    if (!_f || _closed)
        return;
    _f << "\n]}\n";
    _f.close();
    _closed = true;
}

} // namespace tt
