/**
 * @file
 * Streaming Chrome-trace-event exporter (the "JSON trace format"
 * Perfetto ingests; open the output at https://ui.perfetto.dev).
 *
 * Layout: everything lives in one process (pid 0); each node gets a
 * named thread track (tid = node id) carrying handler slices and
 * fault/tag/page instants, and each virtual network gets a track
 * (tid = nodes + vnet) carrying one slice per in-flight message.
 * Sim ticks map 1:1 onto trace microseconds.
 *
 * Events are written through as they are recorded — memory use is
 * O(1) in trace length — and the byte stream is a pure function of
 * the record stream, which tests/obs relies on for byte-identical
 * reruns.
 */

#ifndef TT_OBS_PERFETTO_HH
#define TT_OBS_PERFETTO_HH

#include <fstream>
#include <string>
#include <unordered_set>

#include "obs/record.hh"
#include "sim/types.hh"

namespace tt
{

class FlightRecorder;

class PerfettoWriter
{
  public:
    /** Opens @p path and emits the trace header + track metadata. */
    PerfettoWriter(const std::string& path, int nodes);

    ~PerfettoWriter() { close(); }

    bool ok() const { return static_cast<bool>(_f); }

    /** Emit the trace event(s) for one record. */
    void write(const TraceRecord& r, const FlightRecorder& rec);

    /** Emit a counter sample ("ph":"C") at @p ts. */
    void counter(Tick ts, const std::string& name, std::uint64_t value);

    /** Terminate the JSON document. Idempotent. */
    void close();

  private:
    void emitMeta(int tid, const std::string& name);
    void instant(Tick ts, int tid, const char* cat,
                 const std::string& name);
    /** Open an event object; caller appends ",..." args and calls end. */
    std::ofstream& begin(const char* ph, Tick ts, int tid,
                         const char* cat, const std::string& name);

    /** Emit a transaction flow event ("s"/"t"/"f", cat "txn"). */
    void flow(const char* ph, Tick ts, int tid, std::uint32_t txn);

    std::ofstream _f;
    int _nodes;
    bool _closed = false;
    bool _firstEvent = true;
    /// txn ids whose flow-start has been emitted (a re-fault records
    /// a second BlockFault for the same transaction; the flow gets
    /// exactly one "s")
    std::unordered_set<std::uint32_t> _flowStarted;
};

} // namespace tt

#endif // TT_OBS_PERFETTO_HH
