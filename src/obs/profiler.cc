#include "obs/profiler.hh"

namespace tt
{

namespace
{

constexpr double kMissWidth = 16.0; ///< ticks per bucket
constexpr std::size_t kMissBuckets = 64;

} // namespace

LatencyProfiler::LatencyProfiler(StatSet& stats, int nodes)
    : _miss(static_cast<std::size_t>(nodes)),
      _actOwner(static_cast<std::size_t>(nodes), kNoNode),
      _read{stats.histogram("obs.miss.read.total", kMissWidth,
                            kMissBuckets),
            stats.histogram("obs.miss.read.request", kMissWidth,
                            kMissBuckets),
            stats.histogram("obs.miss.read.network", kMissWidth,
                            kMissBuckets),
            stats.histogram("obs.miss.read.dir_occupancy", kMissWidth,
                            kMissBuckets),
            stats.histogram("obs.miss.read.handler", kMissWidth,
                            kMissBuckets)},
      _write{stats.histogram("obs.miss.write.total", kMissWidth,
                             kMissBuckets),
             stats.histogram("obs.miss.write.request", kMissWidth,
                             kMissBuckets),
             stats.histogram("obs.miss.write.network", kMissWidth,
                             kMissBuckets),
             stats.histogram("obs.miss.write.dir_occupancy", kMissWidth,
                             kMissBuckets),
             stats.histogram("obs.miss.write.handler", kMissWidth,
                             kMissBuckets)},
      _reqLat(stats.average("obs.msg.request.latency")),
      _respLat(stats.average("obs.msg.response.latency")),
      _chained(stats.counter("obs.msg.chained")),
      _unchained(stats.counter("obs.msg.unchained"))
{
}

void
LatencyProfiler::openMiss(NodeId n, Tick when, bool write)
{
    Miss& m = _miss[static_cast<std::size_t>(n)];
    if (m.open)
        return; // CPU re-faulted on the same suspended access
    m = Miss{};
    m.start = when;
    m.write = write;
    m.open = true;
}

void
LatencyProfiler::closeMiss(NodeId n, Tick when)
{
    Miss& m = _miss[static_cast<std::size_t>(n)];
    if (!m.open)
        return;
    MissStats& s = m.write ? _write : _read;
    const Tick total = when > m.start ? when - m.start : 0;
    s.total.sample(static_cast<double>(total));
    s.request.sample(
        static_cast<double>(m.sent && m.firstSend > m.start
                                ? m.firstSend - m.start
                                : 0));
    s.network.sample(static_cast<double>(m.net));
    s.dir.sample(static_cast<double>(m.dirOcc));
    s.handler.sample(static_cast<double>(m.handler));
    m.open = false;
}

void
LatencyProfiler::fold(const TraceRecord& r)
{
    switch (r.kind) {
      case RecKind::MsgSend: {
        const NodeId src = r.node;
        const Tick flight = r.t2 > r.tick ? r.t2 - r.tick : 0;
        (r.sub == 0 ? _reqLat : _respLat)
            .sample(static_cast<double>(flight));

        // Chain the message: a send from inside a chained handler
        // activation inherits its owner; otherwise a send by a node
        // with an open miss is that miss's own request traffic.
        NodeId owner = _actOwner[static_cast<std::size_t>(src)];
        if (owner == kNoNode &&
            _miss[static_cast<std::size_t>(src)].open) {
            owner = src;
        }
        if (owner == kNoNode) {
            _unchained.inc();
            break;
        }
        _chained.inc();
        _msgs[r.id] = MsgInfo{owner, r.t2};
        Miss& m = _miss[static_cast<std::size_t>(owner)];
        m.net += flight;
        if (owner == src && !m.sent) {
            m.sent = true;
            m.firstSend = r.tick;
        }
        break;
      }
      case RecKind::MsgDeliver: {
        auto it = _msgs.find(r.id);
        if (it == _msgs.end()) {
            _actOwner[static_cast<std::size_t>(r.node)] = kNoNode;
            break;
        }
        const MsgInfo info = it->second;
        _msgs.erase(it);
        Miss& m = _miss[static_cast<std::size_t>(info.owner)];
        if (!m.open) {
            // Trailing traffic (e.g. late acks) after the miss closed.
            _actOwner[static_cast<std::size_t>(r.node)] = kNoNode;
            break;
        }
        const Tick wait = r.tick > info.arrive ? r.tick - info.arrive : 0;
        (r.node == info.owner ? m.handler : m.dirOcc) += wait;
        _actOwner[static_cast<std::size_t>(r.node)] = info.owner;
        break;
      }
      case RecKind::HandlerDone: {
        const auto node = static_cast<std::size_t>(r.node);
        switch (static_cast<ActKind>(r.sub)) {
          case ActKind::Msg: {
            const NodeId owner = _actOwner[node];
            _actOwner[node] = kNoNode;
            if (owner == kNoNode)
                break;
            Miss& m = _miss[static_cast<std::size_t>(owner)];
            if (m.open)
                (r.node == owner ? m.handler : m.dirOcc) += r.t2;
            break;
          }
          case ActKind::Baf:
          case ActKind::Page:
            // Fault handlers run on the faulting node's NP/CPU.
            if (_miss[node].open)
                _miss[node].handler += r.t2;
            break;
        }
        break;
      }
      case RecKind::BlockFault:
        openMiss(r.node, r.tick, r.sub != 0);
        break;
      case RecKind::MissStart:
        openMiss(r.node, r.tick, r.sub != 0);
        break;
      case RecKind::MissEnd:
        closeMiss(r.node, r.tick);
        break;
      case RecKind::Resume:
      case RecKind::TagChange:
      case RecKind::PageMap:
      case RecKind::PageUnmap:
      case RecKind::BulkPacket:
      case RecKind::BlockAccess:
      case RecKind::InvalSent:
      case RecKind::DirTrans:
        break;
    }
}

std::uint64_t
LatencyProfiler::openMisses() const
{
    std::uint64_t n = 0;
    for (const Miss& m : _miss)
        n += m.open ? 1 : 0;
    return n;
}

} // namespace tt
