/**
 * @file
 * LatencyProfiler — folds the flight-recorder stream into the paper's
 * miss-cost accounting: remote read/write miss latency split into
 * request, network, directory-occupancy, and handler components, per
 * protocol action (DESIGN.md §9.3).
 *
 * The fold is online (no record retention) and exploits a structural
 * property of the simulated machines: a CPU suspends on a miss, so
 * each node has at most one miss open at a time. Protocol activity is
 * chained back to the miss that caused it:
 *
 *  - a miss opens at BlockFault (Typhoon-family: the tag fault that
 *    suspends the CPU) or MissStart (DirNNB: a pending-miss entry);
 *  - a message sent by the missing node while its miss is open is
 *    chained to that miss; the first such send closes the *request*
 *    component (miss start .. first request departure);
 *  - a handler activation whose triggering message is chained
 *    inherits the chain, so messages it sends (forwards,
 *    invalidations, data replies) chain transitively;
 *  - per chained message, arrive - depart accrues to *network*, and
 *    dispatch wait + handler occupancy accrue to *handler* at the
 *    missing node or *directory occupancy* elsewhere;
 *  - MissEnd closes the miss and samples the component histograms.
 *
 * Components are attributions, not a partition: overlapping protocol
 * activity (e.g. both halves of an invalidation fan-out) can make the
 * component sum exceed the end-to-end total, and idle wait between
 * chained events is attributed to none.
 */

#ifndef TT_OBS_PROFILER_HH
#define TT_OBS_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

class LatencyProfiler
{
  public:
    LatencyProfiler(StatSet& stats, int nodes);

    /** Fold one record into the running accounting. */
    void fold(const TraceRecord& r);

    /** Misses whose MissEnd never arrived (app ended mid-miss). */
    std::uint64_t openMisses() const;

  private:
    struct Miss
    {
        Tick start = 0;
        Tick firstSend = 0;
        Tick net = 0;     ///< summed chained-message flight time
        Tick dirOcc = 0;  ///< wait + occupancy at non-missing nodes
        Tick handler = 0; ///< wait + occupancy at the missing node
        bool open = false;
        bool write = false;
        bool sent = false; ///< firstSend is valid
    };

    /** A chained in-flight message. */
    struct MsgInfo
    {
        NodeId owner = kNoNode; ///< the missing node
        Tick arrive = 0;
    };

    void openMiss(NodeId n, Tick when, bool write);
    void closeMiss(NodeId n, Tick when);

    std::vector<Miss> _miss;        ///< per node: the open miss
    std::vector<NodeId> _actOwner;  ///< per node: current activation's
                                    ///< chain owner (kNoNode = none)
    std::unordered_map<std::uint32_t, MsgInfo> _msgs;

    // Component histograms, read/write × component (ticks, cached
    // handles — fold() runs per record).
    struct MissStats
    {
        Histogram& total;
        Histogram& request;
        Histogram& network;
        Histogram& dir;
        Histogram& handler;
    };
    MissStats _read;
    MissStats _write;
    Average& _reqLat;  ///< all request-vnet message latencies
    Average& _respLat; ///< all response-vnet message latencies
    Counter& _chained; ///< messages attributed to some miss
    Counter& _unchained;
};

} // namespace tt

#endif // TT_OBS_PROFILER_HH
