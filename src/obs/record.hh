/**
 * @file
 * The flight-recorder trace record: one fixed-size POD per observed
 * event, stamped with sim-time. Records are produced by the
 * instrumented subsystems (Network, TyphoonMemSystem, DirMemSystem)
 * through FlightRecorder's inline record methods and consumed by the
 * per-node crash rings, the Perfetto exporter, and the latency
 * profiler (DESIGN.md §9).
 *
 * This header is deliberately dependency-light (sim/types.hh only) so
 * that src/net can include the recorder without acquiring protocol
 * dependencies.
 */

#ifndef TT_OBS_RECORD_HH
#define TT_OBS_RECORD_HH

#include <cstdint>

#include "sim/types.hh"

namespace tt
{

/** What a TraceRecord describes. */
enum class RecKind : std::uint8_t
{
    MsgSend,     ///< message departed the source (Network::send)
    MsgDeliver,  ///< a protocol handler began executing the message
    HandlerDone, ///< a handler activation finished (msg/BAF/page fault)
    BlockFault,  ///< a tag-checked access faulted and suspended the CPU
    MissStart,   ///< a hardware-protocol remote/conflict miss opened
    MissEnd,     ///< the suspended access finally completed
    Resume,      ///< the NP restarted the suspended thread
    TagChange,   ///< a block's Tempest access tag changed
    PageMap,     ///< a page was mapped into a node's page table
    PageUnmap,   ///< a page was unmapped
    BulkPacket,  ///< the bulk-transfer engine injected a packet

    // Sharing-analysis kinds (DESIGN.md §11). Only emitted when the
    // SharingAnalyzer is attached (FlightRecorder::wantSharing()), so
    // plain --trace runs stay byte-identical to pre-analyzer traces.
    BlockAccess, ///< a CPU access completed (full va + size + op)
    InvalSent,   ///< a home sent an invalidation/recall/update round
    DirTrans,    ///< a directory entry changed state at its home

    // Transaction-tracing kind (DESIGN.md §14). Only emitted when the
    // TxnTracer is attached (FlightRecorder::wantTxn()), so plain
    // --trace runs stay byte-identical to pre-tracer traces.
    MsgSup,      ///< the transport suppressed an arrival (dup / ooo)
};

/** TraceRecord::flags bits (MsgSend / MsgSup). */
enum RecFlags : std::uint8_t
{
    kRecRetransmit = 1 << 0, ///< transport retransmission of a Data msg
    kRecDropped = 1 << 1,    ///< the fabric dropped this physical copy
};

/** Sub-kind for InvalSent records (what kind of round went out). */
enum class InvKind : std::uint8_t
{
    Inval = 0,     ///< invalidate shared copies
    Recall = 1,    ///< recall an exclusive copy (to invalid)
    Downgrade = 2, ///< demote an exclusive copy to read-only
    Update = 3,    ///< push new data to registered copies (no inval)
};

/** Sub-kind for HandlerDone records (what kind of activation ran). */
enum class ActKind : std::uint8_t
{
    Msg = 0,  ///< active-message handler (id = handler id)
    Baf = 1,  ///< block-access-fault handler (id = fault mode)
    Page = 2, ///< page-fault handler on the CPU
};

/**
 * One trace record. Field use is kind-specific:
 *
 * | kind        | tick      | t2       | addr    | id      | arg   | node | sub    |
 * |-------------|-----------|----------|---------|---------|-------|------|--------|
 * | MsgSend     | depart    | arrive   | handler | msg id  | dst   | src  | vnet   |
 * | MsgDeliver  | dispatch  | --       | handler | msg id  | --    | self | vnet   |
 * | HandlerDone | start     | charged  | handler | msg id  | --    | self | ActKind|
 * | BlockFault  | post tick | --       | va      | --      | tag   | self | MemOp  |
 * | MissStart   | issue     | --       | blk     | --      | --    | self | MemOp  |
 * | MissEnd     | complete  | --       | va      | --      | --    | self | MemOp  |
 * | Resume      | tick      | --       | --      | --      | --    | self | --     |
 * | TagChange   | tick      | --       | blk     | --      | --    | self | tag    |
 * | PageMap     | tick      | --       | pageVa  | --      | mode  | self | --     |
 * | PageUnmap   | tick      | --       | pageVa  | --      | --    | self | --     |
 * | BulkPacket  | tick      | cost     | --      | --      | bytes | self | --     |
 * | BlockAccess | complete  | --       | va      | --      | size  | self | write? |
 * | InvalSent   | tick      | --       | blk     | req nd  | fanout| home | InvKind|
 * | DirTrans    | tick      | --       | blk     | --      | old st| home | new st |
 * | MsgSup      | arrive    | --       | handler | msg id  | src   | self | vnet   |
 *
 * DirTrans states use a protocol-independent encoding (0 = Idle,
 * 1 = Shared, 2 = Excl), matching both StacheDirEntry::State and
 * DirMemSystem::DirState.
 *
 * `id` is the causal message id: Network::send stamps a fresh id onto
 * every message when tracing is on, and the MsgDeliver / HandlerDone
 * records at the destination carry the same id, linking the pair
 * across the trace.
 *
 * `txn` is the coherence-transaction id (DESIGN.md §14): nonzero only
 * when the TxnTracer is attached, stamped at the faulting/missing
 * origin (BlockFault / MissStart) and piggybacked onto every derived
 * record — message flights, handler activations, invalidation rounds
 * — until the MissEnd that closes the transaction. `flags` carries
 * the RecFlags bits for message records (retransmit / dropped).
 */
struct TraceRecord
{
    Tick tick = 0;
    Tick t2 = 0;
    std::uint64_t addr = 0;
    std::uint32_t id = 0;   ///< causal message id (0 = none)
    std::uint32_t arg = 0;  ///< kind-specific small argument
    std::uint32_t txn = 0;  ///< coherence-transaction id (0 = none)
    NodeId node = kNoNode;
    RecKind kind = RecKind::MsgSend;
    std::uint8_t sub = 0;
    std::uint8_t flags = 0; ///< RecFlags bits (message records)
};

} // namespace tt

#endif // TT_OBS_RECORD_HH
