/**
 * @file
 * The flight-recorder trace record: one fixed-size POD per observed
 * event, stamped with sim-time. Records are produced by the
 * instrumented subsystems (Network, TyphoonMemSystem, DirMemSystem)
 * through FlightRecorder's inline record methods and consumed by the
 * per-node crash rings, the Perfetto exporter, and the latency
 * profiler (DESIGN.md §9).
 *
 * This header is deliberately dependency-light (sim/types.hh only) so
 * that src/net can include the recorder without acquiring protocol
 * dependencies.
 */

#ifndef TT_OBS_RECORD_HH
#define TT_OBS_RECORD_HH

#include <cstdint>

#include "sim/types.hh"

namespace tt
{

/** What a TraceRecord describes. */
enum class RecKind : std::uint8_t
{
    MsgSend,     ///< message departed the source (Network::send)
    MsgDeliver,  ///< a protocol handler began executing the message
    HandlerDone, ///< a handler activation finished (msg/BAF/page fault)
    BlockFault,  ///< a tag-checked access faulted and suspended the CPU
    MissStart,   ///< a hardware-protocol remote/conflict miss opened
    MissEnd,     ///< the suspended access finally completed
    Resume,      ///< the NP restarted the suspended thread
    TagChange,   ///< a block's Tempest access tag changed
    PageMap,     ///< a page was mapped into a node's page table
    PageUnmap,   ///< a page was unmapped
    BulkPacket,  ///< the bulk-transfer engine injected a packet
};

/** Sub-kind for HandlerDone records (what kind of activation ran). */
enum class ActKind : std::uint8_t
{
    Msg = 0,  ///< active-message handler (id = handler id)
    Baf = 1,  ///< block-access-fault handler (id = fault mode)
    Page = 2, ///< page-fault handler on the CPU
};

/**
 * One trace record. Field use is kind-specific:
 *
 * | kind        | tick      | t2       | addr    | id      | arg   | node | sub    |
 * |-------------|-----------|----------|---------|---------|-------|------|--------|
 * | MsgSend     | depart    | arrive   | handler | msg id  | dst   | src  | vnet   |
 * | MsgDeliver  | dispatch  | --       | handler | msg id  | --    | self | vnet   |
 * | HandlerDone | start     | charged  | handler | msg id  | --    | self | ActKind|
 * | BlockFault  | post tick | --       | va      | --      | tag   | self | MemOp  |
 * | MissStart   | issue     | --       | blk     | --      | --    | self | MemOp  |
 * | MissEnd     | complete  | --       | va      | --      | --    | self | MemOp  |
 * | Resume      | tick      | --       | --      | --      | --    | self | --     |
 * | TagChange   | tick      | --       | blk     | --      | --    | self | tag    |
 * | PageMap     | tick      | --       | pageVa  | --      | mode  | self | --     |
 * | PageUnmap   | tick      | --       | pageVa  | --      | --    | self | --     |
 * | BulkPacket  | tick      | cost     | --      | --      | bytes | self | --     |
 *
 * `id` is the causal message id: Network::send stamps a fresh id onto
 * every message when tracing is on, and the MsgDeliver / HandlerDone
 * records at the destination carry the same id, linking the pair
 * across the trace.
 */
struct TraceRecord
{
    Tick tick = 0;
    Tick t2 = 0;
    std::uint64_t addr = 0;
    std::uint32_t id = 0;  ///< causal message id (0 = none)
    std::uint32_t arg = 0; ///< kind-specific small argument
    NodeId node = kNoNode;
    RecKind kind = RecKind::MsgSend;
    std::uint8_t sub = 0;
};

} // namespace tt

#endif // TT_OBS_RECORD_HH
