#include "obs/recorder.hh"

#include <algorithm>
#include <iomanip>

#include "obs/perfetto.hh"
#include "obs/profiler.hh"
#include "obs/sharing.hh"
#include "obs/txn.hh"
#include "sim/stats.hh"

namespace tt
{

namespace
{

/** The process-wide crash recorder (installCrashDump). */
FlightRecorder* g_crashRecorder = nullptr;

void
crashDumpHook()
{
    if (g_crashRecorder) {
        std::ostringstream oss;
        oss << "--- flight recorder tail ---\n";
        g_crashRecorder->dumpTail(oss);
        std::fputs(oss.str().c_str(), stderr);
    }
}

const char*
recKindName(RecKind k)
{
    switch (k) {
      case RecKind::MsgSend:
        return "send";
      case RecKind::MsgDeliver:
        return "deliver";
      case RecKind::HandlerDone:
        return "handler";
      case RecKind::BlockFault:
        return "fault";
      case RecKind::MissStart:
        return "miss+";
      case RecKind::MissEnd:
        return "miss-";
      case RecKind::Resume:
        return "resume";
      case RecKind::TagChange:
        return "tag";
      case RecKind::PageMap:
        return "map";
      case RecKind::PageUnmap:
        return "unmap";
      case RecKind::BulkPacket:
        return "bulk";
      case RecKind::BlockAccess:
        return "access";
      case RecKind::InvalSent:
        return "inval";
      case RecKind::DirTrans:
        return "dir";
      case RecKind::MsgSup:
        return "sup";
    }
    return "?";
}

} // namespace

FlightRecorder::FlightRecorder(int nodes, std::size_t ringCap)
{
    tt_assert(nodes > 0 && ringCap > 0, "bad recorder configuration");
    _rings.resize(static_cast<std::size_t>(nodes));
    for (Ring& r : _rings)
        r.buf.resize(ringCap);
}

FlightRecorder::~FlightRecorder()
{
    finalize();
    if (_crashHooked && g_crashRecorder == this) {
        g_crashRecorder = nullptr;
        setPanicHook(nullptr);
    }
}

void
FlightRecorder::openTrace(const std::string& path)
{
    _writer = std::make_unique<PerfettoWriter>(path, nodes());
    _haveConsumers = true;
}

void
FlightRecorder::enableProfiler(StatSet& stats)
{
    _profiler = std::make_unique<LatencyProfiler>(stats, nodes());
    _haveConsumers = true;
}

void
FlightRecorder::enableSharing(std::uint32_t block_size,
                              std::uint32_t page_size)
{
    SharingParams p;
    p.blockSize = block_size;
    p.pageSize = page_size;
    _sharing = std::make_unique<SharingAnalyzer>(nodes(), p);
    _haveConsumers = true;
}

void
FlightRecorder::enableTxn(StatSet& stats, std::uint32_t block_size,
                          std::uint32_t page_size)
{
    TxnParams p;
    p.blockSize = block_size;
    p.pageSize = page_size;
    _txn = std::make_unique<TxnTracer>(nodes(), stats, p);
    _wantTxn = true;
    _openTxn.assign(static_cast<std::size_t>(nodes()), 0);
    _actTxn.assign(static_cast<std::size_t>(nodes()), 0);
    _haveConsumers = true;
}

void
FlightRecorder::enableSampler(StatSet& stats, Tick period)
{
    tt_assert(period > 0, "sampler period must be positive");
    _sampleStats = &stats;
    _samplePeriod = period;
    _nextSample = period;
    _haveConsumers = true;
}

void
FlightRecorder::installCrashDump()
{
    // Latest wins: tests and benches build machines back to back, and
    // the most recently built one is the interesting crash context.
    g_crashRecorder = this;
    _crashHooked = true;
    setPanicHook(&crashDumpHook);
}

void
FlightRecorder::nameHandler(HandlerId id, const char* name)
{
    _handlerNames[id] = name;
}

const char*
FlightRecorder::handlerName(HandlerId id) const
{
    auto it = _handlerNames.find(id);
    if (it != _handlerNames.end())
        return it->second;
    // Stable fallback for unregistered ids; storage must outlive the
    // caller's use, so cache the formatted name.
    auto [fit, inserted] =
        _fallbackNames.emplace(id, "handler_" + std::to_string(id));
    return fit->second.c_str();
}

void
FlightRecorder::consume(const TraceRecord& r)
{
    // Interval sampler: snapshot counters whenever sim-time crosses a
    // period boundary. Driven off the record stream (never off the
    // event queue, which would perturb event sequence numbers).
    if (_samplePeriod && r.tick >= _nextSample) {
        const Tick boundary = r.tick - (r.tick % _samplePeriod);
        sampleCounters(boundary);
        _nextSample = boundary + _samplePeriod;
    }
    if (_writer)
        _writer->write(r, *this);
    if (_profiler)
        _profiler->fold(r);
    if (_sharing)
        _sharing->fold(r);
    if (_txn)
        _txn->fold(r);
}

void
FlightRecorder::sampleCounters(Tick boundary)
{
    if (!_writer || !_sampleStats)
        return;
    for (const auto& [name, c] : _sampleStats->counters())
        _writer->counter(boundary, name, c.value());
    // Gauges that are not StatSet counters: the number of misses open
    // right now (a live queue-depth track in the Perfetto UI).
    if (_profiler)
        _writer->counter(boundary, "obs.miss.open",
                         _profiler->openMisses());
}

void
FlightRecorder::finalize()
{
    if (_finalized)
        return;
    _finalized = true;
    if (_txn)
        _txn->finalize(_sharing.get());
    if (_writer)
        _writer->close();
}

std::vector<TraceRecord>
FlightRecorder::mergedRecords() const
{
    std::vector<TraceRecord> out;
    for (int n = 0; n < nodes(); ++n) {
        std::vector<TraceRecord> ring = ringOf(n);
        out.insert(out.end(), ring.begin(), ring.end());
    }
    // Stable on tick alone: same-tick records keep node-ascending,
    // then per-ring (= per-lane deterministic) order.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                         return a.tick < b.tick;
                     });
    return out;
}

std::vector<TraceRecord>
FlightRecorder::ringOf(NodeId n) const
{
    const Ring& ring = _rings.at(static_cast<std::size_t>(n));
    std::vector<TraceRecord> out;
    const std::size_t kept =
        ring.total < ring.buf.size()
            ? static_cast<std::size_t>(ring.total)
            : ring.buf.size();
    out.reserve(kept);
    // Oldest retained record sits at `next` once the ring has wrapped.
    std::size_t pos =
        ring.total < ring.buf.size() ? 0 : ring.next;
    for (std::size_t i = 0; i < kept; ++i) {
        out.push_back(ring.buf[pos]);
        pos = (pos + 1) % ring.buf.size();
    }
    return out;
}

void
FlightRecorder::formatRecord(std::ostream& os,
                             const TraceRecord& r) const
{
    os << "  [" << std::setw(10) << r.tick << "] n" << r.node << " "
       << recKindName(r.kind);
    switch (r.kind) {
      case RecKind::MsgSend:
        os << " msg=" << r.id << " "
           << handlerName(static_cast<HandlerId>(r.addr)) << " ->n"
           << r.arg << " vnet=" << int(r.sub) << " arrive=" << r.t2;
        break;
      case RecKind::MsgDeliver:
        os << " msg=" << r.id << " "
           << handlerName(static_cast<HandlerId>(r.addr))
           << " vnet=" << int(r.sub);
        break;
      case RecKind::HandlerDone:
        os << (r.sub == 0 ? " msg" : r.sub == 1 ? " baf" : " page")
           << "=" << r.id << " charged=" << r.t2;
        if (r.sub == 0)
            os << " " << handlerName(static_cast<HandlerId>(r.addr));
        break;
      case RecKind::BlockFault:
        os << (r.sub ? " wr" : " rd") << " va=0x" << std::hex << r.addr
           << std::dec << " tag=" << r.arg;
        break;
      case RecKind::MissStart:
      case RecKind::MissEnd:
        os << (r.sub ? " wr" : " rd") << " addr=0x" << std::hex
           << r.addr << std::dec;
        break;
      case RecKind::Resume:
        break;
      case RecKind::TagChange:
        os << " blk=0x" << std::hex << r.addr << std::dec << " tag="
           << int(r.sub);
        break;
      case RecKind::PageMap:
        os << " va=0x" << std::hex << r.addr << std::dec
           << " mode=" << r.arg;
        break;
      case RecKind::PageUnmap:
        os << " va=0x" << std::hex << r.addr << std::dec;
        break;
      case RecKind::BulkPacket:
        os << " bytes=" << r.arg << " cost=" << r.t2;
        break;
      case RecKind::BlockAccess:
        os << (r.sub ? " wr" : " rd") << " va=0x" << std::hex << r.addr
           << std::dec << " size=" << r.arg;
        break;
      case RecKind::InvalSent:
        os << " blk=0x" << std::hex << r.addr << std::dec << " kind="
           << int(r.sub) << " fanout=" << r.arg << " req=n"
           << static_cast<NodeId>(r.id);
        break;
      case RecKind::DirTrans:
        os << " blk=0x" << std::hex << r.addr << std::dec << " "
           << r.arg << "->" << int(r.sub);
        break;
      case RecKind::MsgSup:
        os << " msg=" << r.id << " "
           << handlerName(static_cast<HandlerId>(r.addr)) << " from=n"
           << static_cast<NodeId>(r.arg) << " vnet=" << int(r.sub);
        break;
    }
    if (r.txn)
        os << " txn=" << r.txn;
    if (r.flags & kRecRetransmit)
        os << " retx";
    if (r.flags & kRecDropped)
        os << " drop";
    os << "\n";
}

void
FlightRecorder::dumpTail(std::ostream& os, std::size_t perNode) const
{
    for (NodeId n = 0; n < nodes(); ++n) {
        const std::vector<TraceRecord> ring = ringOf(n);
        if (ring.empty())
            continue;
        const std::size_t keep =
            ring.size() < perNode ? ring.size() : perNode;
        os << "node " << n << " (last " << keep << " of "
           << _rings[static_cast<std::size_t>(n)].total
           << " records):\n";
        for (std::size_t i = ring.size() - keep; i < ring.size(); ++i)
            formatRecord(os, ring[i]);
    }
}

} // namespace tt
