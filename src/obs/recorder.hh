/**
 * @file
 * FlightRecorder — the opt-in, zero-cost-when-off tracing and
 * profiling front end (DESIGN.md §9).
 *
 * Every instrumented subsystem (Network, TyphoonMemSystem,
 * DirMemSystem) holds a `FlightRecorder* _obs = nullptr` and guards
 * each notification with `if (_obs)` — the same null-pointer pattern
 * as the coherence sanitizer's CheckHooks (src/check/hooks.hh), so a
 * detached recorder costs one never-taken branch per hook site and
 * the trace-off hot path stays bit-identical (bench_simcore holds the
 * regression; see BENCH_simcore.json "trace_overhead").
 *
 * An attached recorder does three things per record:
 *  - appends it to a per-node fixed-capacity ring (the crash flight
 *    recorder: the tail is dumped into tt_assert panic reports and
 *    into ProtocolChecker failure reports);
 *  - streams it to the Perfetto/Chrome-trace exporter when a trace
 *    file is open (`ttsim --trace=FILE`), including periodic stat
 *    snapshots from the interval sampler;
 *  - folds it into the latency profiler, which accounts remote-miss
 *    cost into request / network / directory-occupancy / handler
 *    components per protocol action (`obs.miss.*` statistics).
 */

#ifndef TT_OBS_RECORDER_HH
#define TT_OBS_RECORDER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "net/message.hh"
#include "obs/record.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

class LatencyProfiler;
class PerfettoWriter;
class SharingAnalyzer;
class StatSet;
class TxnTracer;

class FlightRecorder
{
  public:
    /**
     * @param nodes   node count of the machine being observed.
     * @param ringCap per-node crash-ring capacity (records kept for
     *                the failure-report tail).
     */
    explicit FlightRecorder(int nodes, std::size_t ringCap = 256);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    // --- configuration (call before the run) --------------------------

    /**
     * Stream the trace to @p path as Chrome-trace-event JSON (open it
     * at https://ui.perfetto.dev). One track per node plus one per
     * virtual network. Records are written through as they happen, so
     * trace size is bounded by the file, not by memory.
     */
    void openTrace(const std::string& path);

    /** Fold records into per-action miss-latency histograms. */
    void enableProfiler(StatSet& stats);

    /**
     * Emit a snapshot of every counter in @p stats into the trace as
     * Perfetto counter tracks whenever sim-time crosses a multiple of
     * @p period ticks, plus the obs.miss.open gauge (profiler open
     * misses). No-op unless a trace file is open.
     */
    void enableSampler(StatSet& stats, Tick period);

    /**
     * Attach a SharingAnalyzer (ttsim --analyze, DESIGN.md §11).
     * Turning it on makes wantSharing() true, which is the switch the
     * instrumented protocols consult before emitting the sharing-
     * analysis record kinds — so analyze-off runs (including plain
     * --trace runs) see a record stream byte-identical to before.
     */
    void enableSharing(std::uint32_t block_size,
                       std::uint32_t page_size);

    /**
     * Attach the coherence-transaction tracer (ttsim --trace-critical,
     * DESIGN.md §14). Turning it on makes wantTxn() true: BlockFault /
     * MissStart records open a per-node transaction id, Network::send
     * piggybacks the current id onto every outgoing message, and the
     * derived deliver / handler / invalidation records carry it until
     * the MissEnd that closes the transaction. Txn-off runs (including
     * plain --trace) see a record stream byte-identical to before.
     * @p stats receives the obs.txn.* aggregate counters at finalize.
     */
    void enableTxn(StatSet& stats, std::uint32_t block_size,
                   std::uint32_t page_size);

    /**
     * Dump the ring tails to stderr from inside tt_panic, so an
     * assertion failure comes with the causal event history. One
     * recorder per process is the crash recorder (latest install
     * wins); the hook is released by the destructor.
     */
    void installCrashDump();

    /**
     * Sharded mode for the parallel engine (DESIGN.md §12): record()
     * may then be called concurrently from lane workers, each writing
     * only its own node's ring. Causal message ids switch from the
     * global counter to per-source-node id spaces (src in the top
     * byte), keeping them unique and thread-count invariant. Stream
     * consumers (trace writer, profiler, sampler) serialize the whole
     * machine and are rejected; use mergedRecords() to export.
     */
    void
    enableSharded()
    {
        tt_assert(!_haveConsumers,
                  "sharded recorder cannot have stream consumers "
                  "(trace/profiler/sampler)");
        tt_assert(nodes() <= 0xff,
                  "sharded msg-id space encodes node in 8 bits");
        _sharded = true;
        _laneMsgId.assign(_rings.size(), 0);
    }

    bool sharded() const { return _sharded; }

    /**
     * Associate a human-readable name with an active-message handler
     * id (shown in Perfetto slices and ring dumps). @p name must be a
     * string literal or otherwise outlive the recorder.
     */
    void nameHandler(HandlerId id, const char* name);
    const char* handlerName(HandlerId id) const;

    // --- hot-path record methods (inline; callers hold `if (_obs)`) ---

    /** Stamp a fresh causal id onto @p m and record its departure. */
    void
    msgSend(Message& m, Tick depart, Tick arrive,
            std::uint8_t flags = 0)
    {
        if (_sharded) {
            std::uint32_t& id = _laneMsgId[m.src];
            tt_assert(id < 0x00ff'ffff, "sharded msg-id space "
                                        "exhausted for node ", m.src);
            m.obsId = (static_cast<std::uint32_t>(m.src) << 24) | ++id;
        } else {
            m.obsId = ++_lastMsgId;
        }
        TraceRecord r;
        r.kind = RecKind::MsgSend;
        r.tick = depart;
        r.t2 = arrive;
        r.addr = m.handler;
        r.id = m.obsId;
        r.arg = static_cast<std::uint32_t>(m.dst);
        r.txn = m.txn;
        r.node = m.src;
        r.sub = static_cast<std::uint8_t>(m.vnet);
        r.flags = flags;
        record(r);
    }

    /** A handler begins executing @p m at @p node. */
    void
    msgDeliver(NodeId node, const Message& m, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::MsgDeliver;
        r.tick = when;
        r.addr = m.handler;
        r.id = m.obsId;
        r.txn = m.txn;
        r.node = node;
        r.sub = static_cast<std::uint8_t>(m.vnet);
        record(r);
    }

    /** A handler activation finished; @p charged is its occupancy. */
    void
    handlerDone(NodeId node, ActKind act, std::uint64_t handler,
                std::uint32_t msgId, Tick start, Tick charged)
    {
        TraceRecord r;
        r.kind = RecKind::HandlerDone;
        r.tick = start;
        r.t2 = charged;
        r.addr = handler;
        r.id = msgId;
        r.txn = txnFor(node);
        r.node = node;
        r.sub = static_cast<std::uint8_t>(act);
        record(r);
    }

    /** A tag-checked access faulted (Typhoon BAF post). */
    void
    blockFault(NodeId node, Addr va, bool isWrite, std::uint8_t tag,
               Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::BlockFault;
        r.tick = when;
        r.addr = va;
        r.arg = tag;
        r.txn = openTxn(node);
        r.node = node;
        r.sub = isWrite ? 1 : 0;
        record(r);
    }

    /** A hardware-protocol miss opened (DirNNB remote/conflict path). */
    void
    missStart(NodeId node, Addr blk, bool isWrite, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::MissStart;
        r.tick = when;
        r.addr = blk;
        r.txn = openTxn(node);
        r.node = node;
        r.sub = isWrite ? 1 : 0;
        record(r);
    }

    /** The suspended access completed. */
    void
    missEnd(NodeId node, Addr va, bool isWrite, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::MissEnd;
        r.tick = when;
        r.addr = va;
        r.node = node;
        r.sub = isWrite ? 1 : 0;
        if (_wantTxn) {
            r.txn = _openTxn[static_cast<std::size_t>(node)];
            _openTxn[static_cast<std::size_t>(node)] = 0;
        }
        record(r);
    }

    void
    resume(NodeId node, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::Resume;
        r.tick = when;
        r.node = node;
        record(r);
    }

    void
    tagChange(NodeId node, Addr blk, std::uint8_t tag, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::TagChange;
        r.tick = when;
        r.addr = blk;
        r.node = node;
        r.sub = tag;
        record(r);
    }

    void
    pageMap(NodeId node, Addr pageVa, std::uint8_t mode, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::PageMap;
        r.tick = when;
        r.addr = pageVa;
        r.arg = mode;
        r.node = node;
        record(r);
    }

    void
    pageUnmap(NodeId node, Addr pageVa, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::PageUnmap;
        r.tick = when;
        r.addr = pageVa;
        r.node = node;
        record(r);
    }

    void
    bulkPacket(NodeId node, std::uint32_t bytes, Tick when, Tick cost)
    {
        TraceRecord r;
        r.kind = RecKind::BulkPacket;
        r.tick = when;
        r.t2 = cost;
        r.arg = bytes;
        r.node = node;
        record(r);
    }

    // Sharing-analysis records (DESIGN.md §11). Callers must hold
    // `if (_obs && _obs->wantSharing())` so analyze-off runs keep a
    // byte-identical record stream.

    /** A CPU access completed at @p node (full va, not aligned). */
    void
    blockAccess(NodeId node, Addr va, std::uint32_t size, bool isWrite,
                Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::BlockAccess;
        r.tick = when;
        r.addr = va;
        r.arg = size;
        r.node = node;
        r.sub = isWrite ? 1 : 0;
        record(r);
    }

    /** A home sent a coherence round (inval/recall/downgrade/update). */
    void
    invalSent(NodeId home, Addr blk, NodeId requester,
              std::uint32_t fanout, InvKind kind, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::InvalSent;
        r.tick = when;
        r.addr = blk;
        r.id = static_cast<std::uint32_t>(requester);
        r.arg = fanout;
        r.txn = txnFor(home);
        r.node = home;
        r.sub = static_cast<std::uint8_t>(kind);
        record(r);
    }

    // Transaction-tracing records and context (DESIGN.md §14).
    // msgSup callers must hold `if (_obs && _obs->wantTxn())` so
    // txn-off runs keep a byte-identical record stream.

    /** The transport suppressed @p m's arrival at @p node (dup/ooo). */
    void
    msgSup(NodeId node, const Message& m, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::MsgSup;
        r.tick = when;
        r.addr = m.handler;
        r.id = m.obsId;
        r.arg = static_cast<std::uint32_t>(m.src);
        r.txn = m.txn;
        r.node = node;
        r.sub = static_cast<std::uint8_t>(m.vnet);
        record(r);
    }

    /**
     * The transaction id context at @p node: the handler-activation
     * context when one is live (beginAct), else the node's open demand
     * miss, else 0. Always 0 when transaction tracing is off, so
     * unconditional callers (Network::send) stay byte-identical.
     */
    std::uint32_t
    txnFor(NodeId node) const
    {
        if (!_wantTxn)
            return 0;
        const auto n = static_cast<std::size_t>(node);
        return _actTxn[n] ? _actTxn[n] : _openTxn[n];
    }

    /**
     * Enter a handler-activation transaction context at @p node:
     * messages the handler sends inherit @p txn (the context of the
     * message being handled, or of a deferred request being replayed).
     * No-op when transaction tracing is off. Pair with endAct().
     */
    void
    beginAct(NodeId node, std::uint32_t txn)
    {
        if (_wantTxn)
            _actTxn[static_cast<std::size_t>(node)] = txn;
    }

    void
    endAct(NodeId node)
    {
        if (_wantTxn)
            _actTxn[static_cast<std::size_t>(node)] = 0;
    }

    /** The raw activation context at @p node (save/restore around
     *  synchronous deferred-request replays inside a handler). */
    std::uint32_t
    actOf(NodeId node) const
    {
        return _wantTxn ? _actTxn[static_cast<std::size_t>(node)] : 0;
    }

    /** A directory entry changed state at its home (0/1/2 encoding). */
    void
    dirTrans(NodeId home, Addr blk, std::uint8_t oldState,
             std::uint8_t newState, Tick when)
    {
        TraceRecord r;
        r.kind = RecKind::DirTrans;
        r.tick = when;
        r.addr = blk;
        r.arg = oldState;
        r.node = home;
        r.sub = newState;
        record(r);
    }

    // --- end of run / failure reporting -------------------------------

    /**
     * Close the trace file and write the profiler's aggregate
     * counters. Idempotent; call after Machine::run().
     */
    void finalize();

    /**
     * Deterministic human-readable dump of the last (up to)
     * @p perNode retained records of every node — the crash flight
     * recorder's contribution to a minimized failure report.
     */
    void dumpTail(std::ostream& os, std::size_t perNode = 16) const;

    // --- introspection (tests) ----------------------------------------

    int nodes() const { return static_cast<int>(_rings.size()); }

    /**
     * Records ever written, summed over the per-node rings (safe to
     * call once lanes are quiesced; rings are lane-owned in sharded
     * mode).
     */
    std::uint64_t
    recordCount() const
    {
        std::uint64_t n = 0;
        for (const Ring& r : _rings)
            n += r.total;
        return n;
    }

    std::uint32_t lastMsgId() const { return _lastMsgId; }

    /**
     * Deterministic export of every retained record: the per-node
     * rings concatenated oldest-first and stably sorted by tick (ties
     * keep node order), so the result is identical for every thread
     * count. Call only with lanes quiesced.
     */
    std::vector<TraceRecord> mergedRecords() const;
    LatencyProfiler* profiler() { return _profiler.get(); }
    SharingAnalyzer* sharing() { return _sharing.get(); }
    TxnTracer* txn() { return _txn.get(); }

    /** True iff a SharingAnalyzer consumes the stream (gates the
     *  sharing-analysis record kinds at their emission sites). */
    bool wantSharing() const { return _sharing != nullptr; }

    /** True iff the TxnTracer consumes the stream (gates MsgSup and
     *  the extra invalSent sites at their emission points). */
    bool wantTxn() const { return _wantTxn; }

    /** Oldest-first copy of node @p n's retained ring records. */
    std::vector<TraceRecord> ringOf(NodeId n) const;

    /**
     * Resident bytes of the per-node crash rings and txn-context
     * vectors (telemetry memory probe, DESIGN.md §16).
     */
    std::size_t
    footprintBytes() const
    {
        std::size_t b = _rings.capacity() * sizeof(Ring) +
                        _laneMsgId.capacity() * sizeof(std::uint32_t) +
                        _openTxn.capacity() * sizeof(std::uint32_t) +
                        _actTxn.capacity() * sizeof(std::uint32_t);
        for (const Ring& r : _rings)
            b += r.buf.capacity() * sizeof(TraceRecord);
        return b;
    }

  private:
    struct Ring
    {
        std::vector<TraceRecord> buf; ///< capacity-sized, circular
        std::size_t next = 0;         ///< next write position
        std::uint64_t total = 0;      ///< records ever written
    };

    void
    record(const TraceRecord& r)
    {
        // In sharded mode every record targets the emitting lane's own
        // ring, so all state touched here is lane-owned (no _recorded
        // global: recordCount() sums the per-ring totals).
        Ring& ring = _rings[static_cast<std::size_t>(
            r.node >= 0 && r.node < nodes() ? r.node : 0)];
        ring.buf[ring.next] = r;
        ring.next = (ring.next + 1) % ring.buf.size();
        ++ring.total;
        if (_haveConsumers)
            consume(r); // out of line: exporter / profiler / sampler
    }

    void consume(const TraceRecord& r);
    void sampleCounters(Tick boundary);
    void formatRecord(std::ostream& os, const TraceRecord& r) const;

    /**
     * The transaction id a BlockFault/MissStart record opens at
     * @p node: a fresh id when none is open, else the already-open one
     * (re-faults of the same suspended access stay one transaction).
     */
    std::uint32_t
    openTxn(NodeId node)
    {
        if (!_wantTxn)
            return 0;
        std::uint32_t& open = _openTxn[static_cast<std::size_t>(node)];
        if (!open)
            open = ++_lastTxnId;
        return open;
    }

    std::vector<Ring> _rings;
    std::uint32_t _lastMsgId = 0;
    bool _sharded = false;
    /// per-source-node causal-id counters (sharded mode)
    std::vector<std::uint32_t> _laneMsgId;
    bool _haveConsumers = false;
    bool _finalized = false;
    bool _crashHooked = false;

    std::unique_ptr<PerfettoWriter> _writer;
    std::unique_ptr<LatencyProfiler> _profiler;
    std::unique_ptr<SharingAnalyzer> _sharing;
    std::unique_ptr<TxnTracer> _txn;

    // Transaction-tracing state (DESIGN.md §14; serial engine only —
    // enableTxn makes _haveConsumers true, which rejects sharding).
    bool _wantTxn = false;
    std::uint32_t _lastTxnId = 0;
    std::vector<std::uint32_t> _openTxn; ///< per-node open demand miss
    std::vector<std::uint32_t> _actTxn;  ///< per-node activation ctx

    StatSet* _sampleStats = nullptr;
    Tick _samplePeriod = 0;
    Tick _nextSample = 0;

    std::map<HandlerId, const char*> _handlerNames;
    /// lazily formatted "handler_<id>" names for unregistered ids
    mutable std::map<HandlerId, std::string> _fallbackNames;
};

} // namespace tt

#endif // TT_OBS_RECORDER_HH
