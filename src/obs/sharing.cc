#include "obs/sharing.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iomanip>

#include "mem/addr.hh"

namespace tt
{

namespace
{

constexpr std::uint64_t
nodeBit(NodeId n)
{
    return 1ULL << (static_cast<std::uint64_t>(n) & 63);
}

int
popcount(std::uint64_t v)
{
    return std::popcount(v);
}

/** Fixed-point percentage with one decimal, deterministic. */
std::string
pct1(std::uint64_t part, std::uint64_t whole)
{
    char buf[16];
    const double p =
        whole ? 100.0 * static_cast<double>(part) /
                    static_cast<double>(whole)
              : 0.0;
    std::snprintf(buf, sizeof buf, "%.1f", p);
    return buf;
}

std::string
hexAddr(Addr a)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, a);
    return buf;
}

void
jsonHistogram(std::ostream& os, const Histogram& h)
{
    os << "{\"width\": " << h.width() << ", \"buckets\": [";
    const auto& b = h.buckets();
    for (std::size_t i = 0; i < b.size(); ++i)
        os << (i ? ", " : "") << b[i];
    os << "], \"underflow\": " << h.underflow()
       << ", \"overflow\": " << h.overflow() << "}";
}

/** Stable snake_case pattern keys for JSON. */
const char* const kPatternKeys[kSharePatterns] = {
    "untouched",        "private",   "read_only",
    "producer_consumer", "migratory", "write_shared",
};

} // namespace

const char*
sharePatternKey(SharePattern p)
{
    const int i = static_cast<int>(p);
    return i >= 0 && i < kSharePatterns ? kPatternKeys[i] : "?";
}

const char*
sharePatternName(SharePattern p)
{
    switch (p) {
      case SharePattern::Untouched:
        return "untouched";
      case SharePattern::Private:
        return "private";
      case SharePattern::ReadOnly:
        return "read-only";
      case SharePattern::ProducerConsumer:
        return "producer-consumer";
      case SharePattern::Migratory:
        return "migratory";
      case SharePattern::WriteShared:
        return "write-shared";
    }
    return "?";
}

SharingAnalyzer::SharingAnalyzer(int nodes, SharingParams p)
    : _nodes(nodes), _p(p), _homes(static_cast<std::size_t>(nodes))
{
    tt_assert(nodes > 0, "analyzer needs at least one node");
    tt_assert(isPow2(p.blockSize) && isPow2(p.pageSize),
              "analyzer needs power-of-two geometry");
    // Footprint masks have 64 slots; blocks wider than 64 bytes get
    // multi-byte slots so the mask still spans the whole block.
    _footShift =
        p.blockSize > 64 ? log2i(p.blockSize / 64) : 0;
}

void
SharingAnalyzer::fold(const TraceRecord& r)
{
    switch (r.kind) {
      case RecKind::BlockAccess:
        foldAccess(r);
        break;
      case RecKind::InvalSent:
        foldInval(r);
        break;
      case RecKind::DirTrans:
        if (r.node >= 0 && r.node < _nodes) {
            ++_homes[static_cast<std::size_t>(r.node)].dirTransitions;
            _pageHome[pageNum(r.addr, _p.pageSize)] = r.node;
        }
        break;
      case RecKind::HandlerDone:
        // Per-node handler/controller occupancy: the heatmap's
        // "how busy is this directory" column.
        if (r.node >= 0 && r.node < _nodes) {
            HomeStats& h = _homes[static_cast<std::size_t>(r.node)];
            h.occupancy += r.t2;
            h.busy.sample(static_cast<double>(r.t2));
        }
        break;
      default:
        break;
    }
}

void
SharingAnalyzer::foldAccess(const TraceRecord& r)
{
    const Addr blk = blockAlign(r.addr, _p.blockSize);
    BlockStats& b = _blocks[blk];
    const NodeId node = r.node;
    const bool write = r.sub != 0;

    // Sub-block footprint for the false-sharing detector.
    const std::uint64_t off = r.addr - blk;
    const std::uint32_t size = r.arg ? r.arg : 1;
    std::uint64_t first = off >> _footShift;
    std::uint64_t last = (off + size - 1) >> _footShift;
    first = std::min<std::uint64_t>(first, 63);
    last = std::min<std::uint64_t>(last, 63);
    const std::uint64_t span = last - first + 1;
    const std::uint64_t mask =
        (span >= 64 ? ~0ULL : ((1ULL << span) - 1)) << first;

    auto it = std::lower_bound(
        b.footprints.begin(), b.footprints.end(), node,
        [](const NodeFoot& f, NodeId n) { return f.node < n; });
    if (it == b.footprints.end() || it->node != node)
        it = b.footprints.insert(it, NodeFoot{node, 0, 0});
    (write ? it->writeMask : it->readMask) |= mask;

    // Last-writer / reader-set state machine.
    if (write) {
        ++b.writes;
        b.writerSet |= nodeBit(node);
        if (b.lastWriter != node) {
            if (b.lastWriter != kNoNode) {
                ++b.ownerChanges;
                // A migratory handoff: nobody but the next writer
                // read the block since the previous write.
                if ((b.readersSinceWrite & ~nodeBit(node)) == 0)
                    ++b.migratorySteps;
            }
            b.lastWriter = node;
        }
        b.readersSinceWrite = 0;
    } else {
        ++b.reads;
        b.readerSet |= nodeBit(node);
        b.readersSinceWrite |= nodeBit(node);
    }
}

void
SharingAnalyzer::foldInval(const TraceRecord& r)
{
    const Addr blk = blockAlign(r.addr, _p.blockSize);
    BlockStats& b = _blocks[blk];
    const auto fanout = r.arg;
    bool invalidating = true;
    switch (static_cast<InvKind>(r.sub)) {
      case InvKind::Inval:
        ++b.invals;
        b.fanoutSum += fanout;
        break;
      case InvKind::Recall:
      case InvKind::Downgrade:
        ++b.recalls;
        b.fanoutSum += fanout;
        break;
      case InvKind::Update:
        ++b.updates;
        invalidating = false;
        break;
    }
    if (r.node >= 0 && r.node < _nodes) {
        HomeStats& h = _homes[static_cast<std::size_t>(r.node)];
        if (invalidating) {
            ++h.invalRounds;
            h.fanoutSum += fanout;
            h.fanoutMax = std::max<std::uint64_t>(h.fanoutMax, fanout);
        }
        // Updates still fan out traffic; the heatmap histogram tracks
        // every coherence round's fan-out, invalidating or not.
        h.fanout.sample(static_cast<double>(fanout));
        _pageHome[pageNum(blk, _p.pageSize)] = r.node;
    }
}

SharePattern
SharingAnalyzer::classify(const BlockStats& b) const
{
    if (b.reads + b.writes == 0)
        return SharePattern::Untouched;
    const std::uint64_t all = b.readerSet | b.writerSet;
    if (popcount(all) <= 1)
        return SharePattern::Private;
    if (b.writes == 0)
        return SharePattern::ReadOnly;
    if (popcount(b.writerSet) == 1) {
        // One writer, foreign readers. Producer-consumer if each
        // produced value fans out to several consumers (or is pushed
        // by an update protocol); a single bouncing consumer is
        // pairwise read-write interleaving — write-shared traffic,
        // an update push per write would not amortize.
        const std::uint32_t conflicts = b.invals + b.recalls;
        if (b.updates > 0 || conflicts == 0)
            return SharePattern::ProducerConsumer;
        return b.fanoutSum >= 2 * conflicts
                   ? SharePattern::ProducerConsumer
                   : SharePattern::WriteShared;
    }
    // Multiple writers: migratory iff ownership actually hopped and
    // at least 3/4 of the handoffs looked migratory (the reader set
    // between writes was contained in the next writer).
    if (b.ownerChanges >= 2 &&
        b.migratorySteps * 4 >= b.ownerChanges * 3)
        return SharePattern::Migratory;
    return SharePattern::WriteShared;
}

SharePattern
SharingAnalyzer::classifyBlock(Addr blk) const
{
    const BlockStats* b = blockOf(blk);
    return b ? classify(*b) : SharePattern::Untouched;
}

const SharingAnalyzer::BlockStats*
SharingAnalyzer::blockOf(Addr blk) const
{
    auto it = _blocks.find(blockAlign(blk, _p.blockSize));
    return it == _blocks.end() ? nullptr : &it->second;
}

bool
SharingAnalyzer::falselyShared(const BlockStats& b) const
{
    // A false-sharing block had coherence conflicts (invalidations or
    // recalls), was touched by at least two nodes, at least one of
    // which wrote — yet no node's writes overlap any other node's
    // footprint: every conflict was over bytes the victim never used.
    if (b.invals + b.recalls == 0)
        return false;
    if (b.footprints.size() < 2)
        return false;
    bool anyWrite = false;
    for (std::size_t i = 0; i < b.footprints.size(); ++i) {
        const NodeFoot& a = b.footprints[i];
        anyWrite = anyWrite || a.writeMask != 0;
        for (std::size_t j = i + 1; j < b.footprints.size(); ++j) {
            const NodeFoot& c = b.footprints[j];
            if ((a.writeMask & (c.readMask | c.writeMask)) != 0 ||
                (c.writeMask & (a.readMask | a.writeMask)) != 0)
                return false;
        }
    }
    return anyWrite;
}

const SharingAnalyzer::HomeStats&
SharingAnalyzer::homeOf(NodeId n) const
{
    return _homes.at(static_cast<std::size_t>(n));
}

SharingAnalyzer::Summary
SharingAnalyzer::summarize() const
{
    Summary s;
    for (const auto& [blk, b] : _blocks) {
        (void)blk;
        ++s.blocks;
        s.reads += b.reads;
        s.writes += b.writes;
        s.invalRounds += b.invals + b.recalls;
        s.invalFanout += b.fanoutSum;
        s.recalls += b.recalls;
        s.updates += b.updates;
        const SharePattern p = classify(b);
        ++s.blocksByPattern[static_cast<std::size_t>(p)];
        if (falselyShared(b)) {
            ++s.falseSharingBlocks;
            s.falseSharingInvals += b.invals + b.recalls;
        }
    }
    return s;
}

SharePattern
SharingAnalyzer::Summary::dominant() const
{
    SharePattern best = SharePattern::Untouched;
    std::uint64_t bestCount = 0;
    for (int i = static_cast<int>(SharePattern::ReadOnly);
         i < kSharePatterns; ++i) {
        const std::uint64_t c =
            blocksByPattern[static_cast<std::size_t>(i)];
        if (c > bestCount) {
            bestCount = c;
            best = static_cast<SharePattern>(i);
        }
    }
    if (bestCount > 0)
        return best;
    if (blocksByPattern[static_cast<std::size_t>(
            SharePattern::Private)] > 0)
        return SharePattern::Private;
    return SharePattern::Untouched;
}

// ---------------------------------------------------------------------
// Per-page roll-up and the advisor
// ---------------------------------------------------------------------

struct SharingAnalyzer::PageAgg
{
    NodeId home = kNoNode;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t invalRounds = 0;
    std::uint64_t fanout = 0;
    std::uint64_t updates = 0;
    std::uint64_t ownerChanges = 0;
    std::uint64_t recalls = 0;
    std::uint64_t blocks = 0;
    std::uint64_t falseBlocks = 0;
    std::uint64_t falseInvals = 0;
    std::array<std::uint64_t, kSharePatterns> byPattern{};

    SharePattern
    dominant() const
    {
        SharePattern best = SharePattern::Untouched;
        std::uint64_t bestCount = 0;
        for (int i = static_cast<int>(SharePattern::Private);
             i < kSharePatterns; ++i) {
            const std::uint64_t c =
                byPattern[static_cast<std::size_t>(i)];
            if (c > bestCount) {
                bestCount = c;
                best = static_cast<SharePattern>(i);
            }
        }
        return best;
    }
};

std::map<std::uint64_t, SharingAnalyzer::PageAgg>
SharingAnalyzer::pageTable() const
{
    std::map<std::uint64_t, PageAgg> pages;
    for (const auto& [blk, b] : _blocks) {
        PageAgg& pa = pages[pageNum(blk, _p.pageSize)];
        pa.reads += b.reads;
        pa.writes += b.writes;
        pa.invalRounds += b.invals + b.recalls;
        pa.fanout += b.fanoutSum;
        pa.updates += b.updates;
        pa.ownerChanges += b.ownerChanges;
        pa.recalls += b.recalls;
        ++pa.blocks;
        ++pa.byPattern[static_cast<std::size_t>(classify(b))];
        if (falselyShared(b)) {
            ++pa.falseBlocks;
            pa.falseInvals += b.invals + b.recalls;
        }
    }
    for (auto& [vpn, pa] : pages) {
        auto it = _pageHome.find(vpn);
        if (it != _pageHome.end())
            pa.home = it->second;
    }
    return pages;
}

std::vector<SharingAnalyzer::Advice>
SharingAnalyzer::advise() const
{
    const auto pages = pageTable();
    std::vector<Advice> out;

    // Merge contiguous pages with the same dominant pattern.
    struct Region
    {
        std::uint64_t firstVpn = 0;
        std::uint64_t lastVpn = 0;
        SharePattern pattern = SharePattern::Untouched;
        PageAgg sum;
        std::uint64_t agree = 0;
    };
    std::vector<Region> regions;
    for (const auto& [vpn, pa] : pages) {
        const SharePattern p = pa.dominant();
        if (p == SharePattern::Untouched)
            continue;
        if (!regions.empty() && regions.back().lastVpn + 1 == vpn &&
            regions.back().pattern == p) {
            Region& r = regions.back();
            r.lastVpn = vpn;
            r.agree += pa.byPattern[static_cast<std::size_t>(p)];
            r.sum.reads += pa.reads;
            r.sum.writes += pa.writes;
            r.sum.invalRounds += pa.invalRounds;
            r.sum.fanout += pa.fanout;
            r.sum.updates += pa.updates;
            r.sum.ownerChanges += pa.ownerChanges;
            r.sum.recalls += pa.recalls;
            r.sum.blocks += pa.blocks;
            r.sum.falseBlocks += pa.falseBlocks;
            r.sum.falseInvals += pa.falseInvals;
        } else {
            Region r;
            r.firstVpn = r.lastVpn = vpn;
            r.pattern = p;
            r.sum = pa;
            r.agree = pa.byPattern[static_cast<std::size_t>(p)];
            regions.push_back(std::move(r));
        }
    }

    for (const Region& r : regions) {
        Advice a;
        a.firstPage = r.firstVpn * _p.pageSize;
        a.lastPage = r.lastVpn * _p.pageSize;
        a.pages = r.lastVpn - r.firstVpn + 1;
        a.pattern = r.pattern;
        a.percent = r.sum.blocks
                        ? static_cast<int>(100 * r.agree /
                                           r.sum.blocks)
                        : 0;
        a.falseSharing = r.sum.falseBlocks > 0;
        // Message-savings heuristics, all counted against the default
        // invalidation protocol's cost for the observed traffic:
        switch (r.pattern) {
          case SharePattern::Migratory:
            // Every ownership hop costs a recall round (recall + put
            // + re-grant) that a migratory protocol's writable-on-
            // first-read grant avoids: ~2 messages per hop.
            a.estSavedMsgs = 2 * r.sum.ownerChanges;
            a.action = "use the custom migratory protocol "
                       "(grant writable on first read)";
            break;
          case SharePattern::ProducerConsumer:
            // Each invalidation (inval + ack + consumer re-fetch) is
            // replaced by one pushed update: ~3 messages saved per
            // invalidated copy, ~2 per recall round.
            a.estSavedMsgs =
                3 * r.sum.fanout + 2 * r.sum.recalls;
            a.action = "use an update-based protocol "
                       "(push new values to consumers)";
            break;
          case SharePattern::WriteShared:
            if (a.falseSharing) {
                a.estSavedMsgs = 3 * r.sum.falseInvals;
                a.action = "false sharing: pad or realign data so "
                           "nodes write disjoint blocks";
            } else {
                a.estSavedMsgs = 0;
                a.action = "true write sharing: keep the default "
                           "invalidation protocol";
            }
            break;
          case SharePattern::ReadOnly:
            a.estSavedMsgs = 0;
            a.action = "read-mostly: default protocol is already "
                       "quiet after the first fetch";
            break;
          case SharePattern::Private:
            a.estSavedMsgs = 0;
            a.action = "node-private: no coherence traffic to save";
            break;
          case SharePattern::Untouched:
            break;
        }
        out.push_back(std::move(a));
    }

    std::sort(out.begin(), out.end(),
              [](const Advice& a, const Advice& b) {
                  if (a.estSavedMsgs != b.estSavedMsgs)
                      return a.estSavedMsgs > b.estSavedMsgs;
                  return a.firstPage < b.firstPage;
              });
    return out;
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

void
SharingAnalyzer::writeReport(std::ostream& os) const
{
    const Summary s = summarize();

    os << "=== sharing analysis (" << _p.blockSize << " B blocks, "
       << _p.pageSize << " B pages, " << _nodes << " nodes) ===\n";
    os << "blocks    : " << s.blocks << " touched, " << s.reads
       << " reads / " << s.writes << " writes\n";
    os << "patterns  :";
    bool any = false;
    for (int i = 1; i < kSharePatterns; ++i) {
        const std::uint64_t c =
            s.blocksByPattern[static_cast<std::size_t>(i)];
        if (!c)
            continue;
        os << (any ? "," : "") << " "
           << sharePatternName(static_cast<SharePattern>(i)) << " "
           << c << " (" << pct1(c, s.blocks) << "%)";
        any = true;
    }
    if (!any)
        os << " none";
    os << "\n";
    os << "dominant sharing pattern: "
       << sharePatternName(s.dominant()) << "\n";
    os << "coherence : " << s.invalRounds
       << " invalidation/recall rounds (fan-out " << s.invalFanout
       << "), " << s.recalls << " recalls, " << s.updates
       << " update pushes\n";
    os << "false sharing: " << s.falseSharingBlocks << " blocks, "
       << s.falseSharingInvals
       << " conflict rounds from disjoint per-node footprints\n";
    if (s.falseSharingBlocks) {
        constexpr std::size_t kMaxListed = 16;
        std::vector<std::pair<Addr, const BlockStats*>> flagged;
        for (const auto& [blk, b] : _blocks)
            if (falselyShared(b))
                flagged.emplace_back(blk, &b);
        std::sort(flagged.begin(), flagged.end(),
                  [](const auto& a, const auto& b) {
                      const std::uint32_t ca =
                          a.second->invals + a.second->recalls;
                      const std::uint32_t cb =
                          b.second->invals + b.second->recalls;
                      if (ca != cb)
                          return ca > cb;
                      return a.first < b.first;
                  });
        const std::size_t show =
            std::min(flagged.size(), kMaxListed);
        for (std::size_t i = 0; i < show; ++i) {
            const auto& [blk, b] = flagged[i];
            os << "    blk " << hexAddr(blk) << ": "
               << b->footprints.size() << " nodes, "
               << b->invals + b->recalls << " conflict rounds\n";
        }
        if (flagged.size() > show)
            os << "    (" << flagged.size() - show
               << " more not shown)\n";
    }

    os << "=== directory heatmap (per home node) ===\n";
    os << "home   dir-ops  inv-rounds  fanout(sum/max)  occupancy\n";
    for (NodeId n = 0; n < _nodes; ++n) {
        const HomeStats& h = _homes[static_cast<std::size_t>(n)];
        if (h.dirTransitions + h.invalRounds + h.occupancy == 0)
            continue;
        os << std::setw(4) << n << std::setw(10) << h.dirTransitions
           << std::setw(12) << h.invalRounds << std::setw(12)
           << h.fanoutSum << "/" << h.fanoutMax << std::setw(11)
           << h.occupancy << "\n";
    }

    const auto pages = pageTable();
    std::vector<std::pair<std::uint64_t, const PageAgg*>> hot;
    for (const auto& [vpn, pa] : pages)
        if (pa.invalRounds + pa.fanout + pa.updates > 0)
            hot.emplace_back(vpn, &pa);
    std::sort(hot.begin(), hot.end(),
              [](const auto& a, const auto& b) {
                  const std::uint64_t ta =
                      a.second->fanout + a.second->invalRounds;
                  const std::uint64_t tb =
                      b.second->fanout + b.second->invalRounds;
                  if (ta != tb)
                      return ta > tb;
                  return a.first < b.first;
              });
    constexpr std::size_t kHotPages = 8;
    const std::size_t show = std::min(hot.size(), kHotPages);
    os << "hot pages (top " << show << " of " << hot.size()
       << " with coherence traffic):\n";
    for (std::size_t i = 0; i < show; ++i) {
        const auto& [vpn, pa] = hot[i];
        os << "    page " << hexAddr(vpn * _p.pageSize) << " home ";
        if (pa->home == kNoNode)
            os << "-";
        else
            os << pa->home;
        os << ": " << pa->reads + pa->writes << " accesses, "
           << pa->invalRounds << " inval rounds (fan-out "
           << pa->fanout << "), pattern "
           << sharePatternName(pa->dominant()) << "\n";
    }

    os << "=== protocol advisor ===\n";
    const auto advice = advise();
    if (advice.empty())
        os << "    no shared regions observed\n";
    std::size_t rank = 1;
    for (const Advice& a : advice) {
        os << std::setw(3) << rank++ << ". pages "
           << hexAddr(a.firstPage) << "-" << hexAddr(a.lastPage)
           << " (" << a.pages << (a.pages == 1 ? " page" : " pages")
           << "): " << a.percent << "% "
           << sharePatternName(a.pattern) << " -> " << a.action;
        if (a.estSavedMsgs)
            os << " (est. " << a.estSavedMsgs << " msgs saved)";
        os << "\n";
    }
}

void
SharingAnalyzer::writeJson(std::ostream& os) const
{
    const Summary s = summarize();

    os << "{\n";
    os << "  \"block_size\": " << _p.blockSize << ",\n";
    os << "  \"page_size\": " << _p.pageSize << ",\n";
    os << "  \"nodes\": " << _nodes << ",\n";

    os << "  \"summary\": {";
    os << "\"blocks\": " << s.blocks;
    os << ", \"reads\": " << s.reads;
    os << ", \"writes\": " << s.writes;
    os << ", \"inval_rounds\": " << s.invalRounds;
    os << ", \"inval_fanout\": " << s.invalFanout;
    os << ", \"recalls\": " << s.recalls;
    os << ", \"updates\": " << s.updates;
    os << ", \"dominant\": \"" << kPatternKeys[static_cast<int>(
              s.dominant())]
       << "\"";
    os << ", \"patterns\": {";
    for (int i = 0; i < kSharePatterns; ++i) {
        os << (i ? ", " : "") << "\"" << kPatternKeys[i] << "\": "
           << s.blocksByPattern[static_cast<std::size_t>(i)];
    }
    os << "}, \"false_sharing\": {\"blocks\": " << s.falseSharingBlocks
       << ", \"conflict_rounds\": " << s.falseSharingInvals << "}},\n";

    os << "  \"false_sharing_blocks\": [";
    bool first = true;
    for (const auto& [blk, b] : _blocks) {
        if (!falselyShared(b))
            continue;
        os << (first ? "\n" : ",\n") << "    {\"blk\": \""
           << hexAddr(blk) << "\", \"nodes\": " << b.footprints.size()
           << ", \"conflict_rounds\": " << b.invals + b.recalls << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n";

    os << "  \"homes\": [\n";
    for (NodeId n = 0; n < _nodes; ++n) {
        const HomeStats& h = _homes[static_cast<std::size_t>(n)];
        os << "    {\"node\": " << n
           << ", \"dir_transitions\": " << h.dirTransitions
           << ", \"inval_rounds\": " << h.invalRounds
           << ", \"fanout_sum\": " << h.fanoutSum
           << ", \"fanout_max\": " << h.fanoutMax
           << ", \"occupancy\": " << h.occupancy
           << ", \"fanout_hist\": ";
        jsonHistogram(os, h.fanout);
        os << ", \"occupancy_hist\": ";
        jsonHistogram(os, h.busy);
        os << "}" << (n + 1 < _nodes ? "," : "") << "\n";
    }
    os << "  ],\n";

    const auto pages = pageTable();
    os << "  \"pages\": [\n";
    std::size_t pi = 0;
    for (const auto& [vpn, pa] : pages) {
        os << "    {\"page\": \"" << hexAddr(vpn * _p.pageSize)
           << "\", \"home\": " << pa.home
           << ", \"reads\": " << pa.reads
           << ", \"writes\": " << pa.writes
           << ", \"inval_rounds\": " << pa.invalRounds
           << ", \"fanout\": " << pa.fanout
           << ", \"updates\": " << pa.updates << ", \"pattern\": \""
           << kPatternKeys[static_cast<int>(pa.dominant())] << "\"}"
           << (++pi < pages.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    const auto advice = advise();
    os << "  \"advice\": [\n";
    for (std::size_t i = 0; i < advice.size(); ++i) {
        const Advice& a = advice[i];
        os << "    {\"first_page\": \"" << hexAddr(a.firstPage)
           << "\", \"last_page\": \"" << hexAddr(a.lastPage)
           << "\", \"pages\": " << a.pages << ", \"pattern\": \""
           << kPatternKeys[static_cast<int>(a.pattern)]
           << "\", \"percent\": " << a.percent
           << ", \"est_msgs_saved\": " << a.estSavedMsgs
           << ", \"false_sharing\": "
           << (a.falseSharing ? "true" : "false")
           << ", \"action\": \"" << a.action << "\"}"
           << (i + 1 < advice.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

bool
SharingAnalyzer::writeJsonFile(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f);
    return f.good();
}

} // namespace tt
