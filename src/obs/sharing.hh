/**
 * @file
 * SharingAnalyzer — online sharing-pattern analysis over the flight-
 * recorder stream (DESIGN.md §11, ttsim --analyze).
 *
 * The analyzer folds the sharing-analysis record kinds (BlockAccess,
 * InvalSent, DirTrans — emitted by the instrumented protocols only
 * when FlightRecorder::wantSharing() is true) into three products:
 *
 *  - a per-block access-pattern classifier at block grain, using the
 *    standard last-writer/reader-set state machine: untouched,
 *    private (one node), read-only, producer-consumer (single writer,
 *    foreign readers), migratory (ownership hops where the readers
 *    between two writes are just the next writer), write-shared;
 *  - a false-sharing detector tracking per-node sub-block byte
 *    footprints and flagging blocks whose invalidations were caused
 *    entirely by disjoint footprints from different nodes;
 *  - directory hot-spot heatmaps: per-home-node invalidation fan-out
 *    and handler-occupancy histograms plus per-page traffic tables.
 *
 * Reports end in a protocol advisor: contiguous pages with the same
 * dominant classification are merged into regions and ranked by the
 * estimated message savings of switching them to a better-suited
 * Tempest protocol (PAPER.md §6). All output — JSON and human — is
 * deterministic and byte-stable: map iteration is over sorted keys
 * and nothing depends on wall-clock.
 */

#ifndef TT_OBS_SHARING_HH
#define TT_OBS_SHARING_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

/** The classifier's verdict for one block. */
enum class SharePattern : std::uint8_t
{
    Untouched = 0,    ///< no completed CPU access observed
    Private,          ///< exactly one node ever touched it
    ReadOnly,         ///< shared, never written
    ProducerConsumer, ///< one writer, foreign readers
    Migratory,        ///< ownership hops; reader == next writer
    WriteShared,      ///< multiple writers, interleaved readers
};

constexpr int kSharePatterns = 6;

const char* sharePatternName(SharePattern p);

/** Stable snake_case key for JSON reports ("producer_consumer"). */
const char* sharePatternKey(SharePattern p);

/** Geometry the analyzer needs (mirrors CoreParams). */
struct SharingParams
{
    std::uint32_t blockSize = 32;
    std::uint32_t pageSize = 4096;
};

class SharingAnalyzer
{
  public:
    SharingAnalyzer(int nodes, SharingParams p = {});

    /** Fold one record (called from FlightRecorder::consume). */
    void fold(const TraceRecord& r);

    // --- per-block state ----------------------------------------------

    /** One node's byte-range footprint within a block. */
    struct NodeFoot
    {
        NodeId node = kNoNode;
        std::uint64_t readMask = 0;  ///< sub-block slots read
        std::uint64_t writeMask = 0; ///< sub-block slots written
    };

    struct BlockStats
    {
        std::uint32_t reads = 0;
        std::uint32_t writes = 0;
        /// Node sets as bitmasks (node & 63: machines beyond 64 nodes
        /// alias, which can only merge patterns, never invent nodes).
        std::uint64_t readerSet = 0;
        std::uint64_t writerSet = 0;
        NodeId lastWriter = kNoNode;
        std::uint64_t readersSinceWrite = 0;
        std::uint32_t ownerChanges = 0;    ///< writer handoffs
        std::uint32_t migratorySteps = 0;  ///< handoffs that look migratory
        std::uint32_t invals = 0;          ///< invalidation rounds
        std::uint32_t recalls = 0;         ///< recalls + downgrades
        std::uint32_t updates = 0;         ///< update pushes
        std::uint32_t fanoutSum = 0;
        std::vector<NodeFoot> footprints;  ///< sorted by node
    };

    /** Classify one block's folded stats (pure). */
    SharePattern classify(const BlockStats& b) const;

    /** Classify the block holding @p blk (Untouched if never seen). */
    SharePattern classifyBlock(Addr blk) const;

    /** True iff the block's conflicts came from disjoint footprints. */
    bool falselyShared(const BlockStats& b) const;

    const BlockStats* blockOf(Addr blk) const;
    std::size_t blockCount() const { return _blocks.size(); }

    // --- aggregates ---------------------------------------------------

    struct Summary
    {
        std::array<std::uint64_t, kSharePatterns> blocksByPattern{};
        std::uint64_t blocks = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t invalRounds = 0;
        std::uint64_t invalFanout = 0;
        std::uint64_t recalls = 0;
        std::uint64_t updates = 0;
        std::uint64_t falseSharingBlocks = 0;
        std::uint64_t falseSharingInvals = 0;

        /**
         * The dominant pattern among blocks shared by more than one
         * node (read-only / producer-consumer / migratory /
         * write-shared); Private if nothing is shared, Untouched if
         * nothing was accessed. Ties break toward the lower enum.
         */
        SharePattern dominant() const;
    };

    Summary summarize() const;

    /** Per-home-node hot-spot aggregates (the heatmap rows). */
    struct HomeStats
    {
        std::uint64_t dirTransitions = 0; ///< DirTrans records
        std::uint64_t invalRounds = 0;
        std::uint64_t fanoutSum = 0;
        std::uint64_t fanoutMax = 0;
        std::uint64_t occupancy = 0;      ///< handler ticks charged
        Histogram fanout{1.0, 16};        ///< per-round fan-out
        Histogram busy{8.0, 32};          ///< per-activation occupancy
    };

    const HomeStats& homeOf(NodeId n) const;

    // --- the protocol advisor -----------------------------------------

    struct Advice
    {
        Addr firstPage = 0;      ///< page base VA of the region
        Addr lastPage = 0;       ///< inclusive
        std::uint64_t pages = 0;
        SharePattern pattern = SharePattern::Untouched;
        int percent = 0;         ///< blocks agreeing with the pattern
        std::uint64_t estSavedMsgs = 0;
        bool falseSharing = false;
        std::string action;      ///< human-readable recommendation
    };

    /** Ranked per-region recommendations (savings desc, VA asc). */
    std::vector<Advice> advise() const;

    // --- reporting ----------------------------------------------------

    /** Deterministic human-readable report (the --analyze output). */
    void writeReport(std::ostream& os) const;

    /** Deterministic, byte-stable JSON (--analyze=PATH). */
    void writeJson(std::ostream& os) const;
    bool writeJsonFile(const std::string& path) const;

  private:
    struct PageAgg; ///< per-page roll-up built at report time

    void foldAccess(const TraceRecord& r);
    void foldInval(const TraceRecord& r);
    std::map<std::uint64_t, PageAgg> pageTable() const;

    int _nodes;
    SharingParams _p;
    unsigned _footShift = 0; ///< bytes per footprint slot, log2
    std::map<Addr, BlockStats> _blocks;       ///< blk base -> stats
    std::map<std::uint64_t, NodeId> _pageHome; ///< vpn -> home (learned)
    std::vector<HomeStats> _homes;
};

} // namespace tt

#endif // TT_OBS_SHARING_HH
