#include "obs/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"
#include "sim/parallel_engine.hh"
#include "sim/stats.hh"

namespace tt
{

namespace
{

const char*
catName(HostTimer::Cat c)
{
    switch (c) {
      case HostTimer::Cat::Dispatch:
        return "dispatch";
      case HostTimer::Cat::Handler:
        return "handler";
      case HostTimer::Cat::Net:
        return "net";
      case HostTimer::Cat::Checker:
        return "checker";
      case HostTimer::Cat::Transport:
        return "transport";
    }
    return "?";
}

void
jsonNum(std::ostream& os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

constexpr HostTimer::Cat kAllCats[] = {
    HostTimer::Cat::Dispatch,  HostTimer::Cat::Handler,
    HostTimer::Cat::Net,       HostTimer::Cat::Checker,
    HostTimer::Cat::Transport,
};

} // namespace

Telemetry::Telemetry(StatSet& stats, int nodes)
    : _stats(stats), _nodes(nodes)
{
    _timer.setMemSampleFn([this] { sampleMemory(); });
}

void
Telemetry::addMemProbe(const std::string& name, MemProbe probe)
{
    tt_assert(!_ran, "memory probes must be registered before run()");
    _probes.push_back(Probe{name, std::move(probe), 0, 0});
}

void
Telemetry::registerStats()
{
    // Eager registration: checkpoint restore asserts that both sides
    // of a restore hold identical stat key sets, so every handle this
    // run may write must exist before the run starts.
    for (const Probe& p : _probes) {
        _stats.counter("obs.telemetry.mem." + p.name + ".cur_bytes");
        _stats.counter("obs.telemetry.mem." + p.name + ".peak_bytes");
    }
    _stats.counter("obs.telemetry.mem.total_peak_bytes");
    _stats.counter("obs.telemetry.mem.peak_bytes_per_node");
    _stats.counter("obs.telemetry.mem.samples");
    for (HostTimer::Cat c : kAllCats)
        _stats.counter(std::string("obs.host.") + catName(c) + "_us");
    _stats.counter("obs.host.engine_us");
    _stats.counter("obs.host.wall_us");
    _stats.counter("obs.host.attributed_pct");
    _stats.counter("obs.host.timed_events");
    _stats.counter("obs.host.sample_every");
    if (_engine) {
        _stats.counter("obs.telemetry.engine.windows");
        _stats.counter("obs.telemetry.engine.serial_windows");
        _stats.counter("obs.telemetry.engine.lane_events");
        _stats.counter("obs.telemetry.engine.global_events");
        _stats.counter("obs.telemetry.engine.worker_stall_us");
        _stats.counter("obs.telemetry.engine.mailbox_hwm");
    }
}

void
Telemetry::sampleMemory()
{
    std::size_t total = 0;
    for (Probe& p : _probes) {
        p.cur = p.fn ? p.fn() : 0;
        p.peak = std::max(p.peak, p.cur);
        total += p.cur;
    }
    _totalPeak = std::max(_totalPeak, total);
    ++_memSamples;
    refreshCounters();
}

void
Telemetry::refreshCounters()
{
    // Keep the registered counters current at every sample point so
    // the flight recorder's interval sampler exports them as Perfetto
    // counter tracks on the --trace stream.
    for (const Probe& p : _probes) {
        _stats.counter("obs.telemetry.mem." + p.name + ".cur_bytes")
            .set(p.cur);
        _stats.counter("obs.telemetry.mem." + p.name + ".peak_bytes")
            .set(p.peak);
    }
    _stats.counter("obs.telemetry.mem.total_peak_bytes").set(_totalPeak);
    _stats.counter("obs.telemetry.mem.samples").set(_memSamples);
    // Provisional host-time tracks: calibrate against the wall clock
    // elapsed so far (exact calibration happens at runEnd()).
    if (_tsc0) {
        const auto nowT = std::chrono::steady_clock::now();
        const std::uint64_t tsc = HostTimer::nowTsc();
        const double wall = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                nowT - _t0)
                .count());
        if (tsc > _tsc0 && wall > 0) {
            const double npt =
                wall / static_cast<double>(tsc - _tsc0);
            for (HostTimer::Cat c : kAllCats) {
                const double ns = static_cast<double>(
                                      _timer.catTsc(c)) *
                                  npt * HostTimer::kTimeSample;
                _stats
                    .counter(std::string("obs.host.") + catName(c) +
                             "_us")
                    .set(static_cast<std::uint64_t>(ns / 1e3));
            }
        }
    }
}

void
Telemetry::runBegin()
{
    _ran = true;
    _t0 = std::chrono::steady_clock::now();
    _tsc0 = HostTimer::nowTsc();
    sampleMemory();
}

void
Telemetry::runEnd()
{
    _tsc1 = HostTimer::nowTsc();
    _wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - _t0)
            .count());
    sampleMemory();
    _results.clear();
    for (const Probe& p : _probes)
        _results.push_back(ProbeResult{p.name, p.cur, p.peak});
    _eng = EngineSnap{};
    if (_engine) {
        _eng.present = true;
        _eng.threads = _engine->threads();
        _eng.lanes = _engine->lanes();
        _eng.windows = _engine->windows();
        _eng.serialWindows = _engine->serialWindows();
        _eng.laneEvents = _engine->laneExecuted();
        _eng.globalEvents = _engine->executed() - _eng.laneEvents;
        for (int i = 0; i < _eng.lanes; ++i)
            _eng.laneExecuted.push_back(_engine->laneExecutedAt(i));
        for (int w = 0; w < _eng.threads; ++w) {
            _eng.mailboxHwm.push_back(_engine->workerDrainHwm(w));
            _eng.workerStallNs.push_back(_engine->workerStallNs(w));
        }
    }
}

double
Telemetry::nsPerTsc() const
{
    if (_tsc1 <= _tsc0 || _wallNs == 0)
        return 0.0;
    return static_cast<double>(_wallNs) /
           static_cast<double>(_tsc1 - _tsc0);
}

double
Telemetry::catScale() const
{
    // Sampling every Nth event and multiplying by N can extrapolate
    // past the measured wall time (the timed events need not be a
    // perfectly representative sample). Clamp so the categories never
    // claim more than the whole run: attribution tops out at 100%.
    const double ev = static_cast<double>(_timer.eventTsc()) *
                      nsPerTsc() * HostTimer::kTimeSample;
    if (ev <= 0.0 || static_cast<double>(_wallNs) >= ev)
        return 1.0;
    return static_cast<double>(_wallNs) / ev;
}

double
Telemetry::catNs(HostTimer::Cat c) const
{
    return static_cast<double>(_timer.catTsc(c)) * nsPerTsc() *
           HostTimer::kTimeSample * catScale();
}

double
Telemetry::engineNs() const
{
    // Residual: wall time not inside (extrapolated) event callbacks —
    // queue management, window barriers, promotion, worker idling.
    double ev = static_cast<double>(_timer.eventTsc()) * nsPerTsc() *
                HostTimer::kTimeSample * catScale();
    return std::max(0.0, static_cast<double>(_wallNs) - ev);
}

double
Telemetry::attributedPct() const
{
    if (_wallNs == 0)
        return 0.0;
    double sum = engineNs();
    for (HostTimer::Cat c : kAllCats)
        sum += catNs(c);
    return 100.0 * sum / static_cast<double>(_wallNs);
}

void
Telemetry::finalize()
{
    refreshCounters();
    _stats.counter("obs.telemetry.mem.peak_bytes_per_node")
        .set(static_cast<std::uint64_t>(peakBytesPerNode()));
    for (HostTimer::Cat c : kAllCats) {
        _stats
            .counter(std::string("obs.host.") + catName(c) + "_us")
            .set(static_cast<std::uint64_t>(catNs(c) / 1e3));
    }
    _stats.counter("obs.host.engine_us")
        .set(static_cast<std::uint64_t>(engineNs() / 1e3));
    _stats.counter("obs.host.wall_us").set(_wallNs / 1000);
    _stats.counter("obs.host.attributed_pct")
        .set(static_cast<std::uint64_t>(attributedPct()));
    _stats.counter("obs.host.timed_events").set(_timer.timedEvents());
    _stats.counter("obs.host.sample_every").set(HostTimer::kTimeSample);
    if (_eng.present) {
        _stats.counter("obs.telemetry.engine.windows")
            .set(_eng.windows);
        _stats.counter("obs.telemetry.engine.serial_windows")
            .set(_eng.serialWindows);
        _stats.counter("obs.telemetry.engine.lane_events")
            .set(_eng.laneEvents);
        _stats.counter("obs.telemetry.engine.global_events")
            .set(_eng.globalEvents);
        std::uint64_t stall = 0, hwm = 0;
        for (std::uint64_t s : _eng.workerStallNs)
            stall += s;
        for (std::uint64_t h : _eng.mailboxHwm)
            hwm = std::max(hwm, h);
        _stats.counter("obs.telemetry.engine.worker_stall_us")
            .set(stall / 1000);
        _stats.counter("obs.telemetry.engine.mailbox_hwm").set(hwm);
    }
}

void
Telemetry::writeReport(std::ostream& os) const
{
    os << "{\n  \"nodes\": " << _nodes << ",\n";
    os << "  \"mem\": {\n";
    os << "    \"samples\": " << _memSamples << ",\n";
    os << "    \"total_peak_bytes\": " << _totalPeak << ",\n";
    os << "    \"peak_bytes_per_node\": ";
    jsonNum(os, peakBytesPerNode());
    os << ",\n    \"subsystems\": {";
    bool first = true;
    for (const ProbeResult& r : _results) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "      \"" << r.name << "\": {\"final_bytes\": "
           << r.finalBytes << ", \"peak_bytes\": " << r.peakBytes
           << "}";
    }
    os << (first ? "}" : "\n    }") << "\n  },\n";

    os << "  \"host\": {\n";
    os << "    \"wall_ms\": ";
    jsonNum(os, _wallNs / 1e6);
    os << ",\n    \"sample_every\": " << HostTimer::kTimeSample;
    os << ",\n    \"events\": " << _timer.events();
    os << ",\n    \"timed_events\": " << _timer.timedEvents();
    os << ",\n    \"attributed_pct\": ";
    jsonNum(os, attributedPct());
    os << ",\n    \"categories_ms\": {";
    first = true;
    for (HostTimer::Cat c : kAllCats) {
        os << (first ? "" : ", ");
        first = false;
        os << "\"" << catName(c) << "\": ";
        jsonNum(os, catNs(c) / 1e6);
    }
    os << ", \"engine\": ";
    jsonNum(os, engineNs() / 1e6);
    os << "}\n  }";

    if (_eng.present) {
        os << ",\n  \"engine\": {\n";
        os << "    \"threads\": " << _eng.threads << ",\n";
        os << "    \"lanes\": " << _eng.lanes << ",\n";
        os << "    \"windows\": " << _eng.windows << ",\n";
        os << "    \"serial_windows\": " << _eng.serialWindows << ",\n";
        os << "    \"lane_events\": " << _eng.laneEvents << ",\n";
        os << "    \"global_events\": " << _eng.globalEvents << ",\n";
        os << "    \"lane_executed\": [";
        for (std::size_t i = 0; i < _eng.laneExecuted.size(); ++i)
            os << (i ? ", " : "") << _eng.laneExecuted[i];
        os << "],\n    \"mailbox_hwm\": [";
        for (std::size_t i = 0; i < _eng.mailboxHwm.size(); ++i)
            os << (i ? ", " : "") << _eng.mailboxHwm[i];
        os << "],\n    \"worker_stall_ms\": [";
        for (std::size_t i = 0; i < _eng.workerStallNs.size(); ++i) {
            os << (i ? ", " : "");
            jsonNum(os, _eng.workerStallNs[i] / 1e6);
        }
        os << "]\n  }";
    }
    os << "\n}\n";
}

bool
Telemetry::writeReportFile(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeReport(f);
    return f.good();
}

void
Telemetry::printSummary(std::ostream& os) const
{
    char buf[128];
    os << "telemetry      : peak " << _totalPeak << " bytes across "
       << _probes.size() << " subsystems ("
       << static_cast<std::uint64_t>(peakBytesPerNode())
       << " B/node, " << _memSamples << " samples)\n";
    std::snprintf(buf, sizeof buf,
                  "telemetry      : host %.1f ms, attributed %.0f%%"
                  " (1/%u events timed)",
                  _wallNs / 1e6, attributedPct(),
                  static_cast<unsigned>(HostTimer::kTimeSample));
    os << buf << "\n";
    for (HostTimer::Cat c : kAllCats) {
        std::snprintf(buf, sizeof buf,
                      "telemetry      :   %-9s %8.2f ms", catName(c),
                      catNs(c) / 1e6);
        os << buf << "\n";
    }
    std::snprintf(buf, sizeof buf,
                  "telemetry      :   %-9s %8.2f ms", "engine",
                  engineNs() / 1e6);
    os << buf << "\n";
    if (_eng.present) {
        os << "telemetry      : engine " << _eng.threads
           << " threads, " << _eng.lanes << " lanes, " << _eng.windows
           << " windows (" << _eng.serialWindows << " serial), "
           << _eng.laneEvents << " lane / " << _eng.globalEvents
           << " global events\n";
    }
}

} // namespace tt
