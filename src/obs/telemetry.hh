/**
 * @file
 * Simulator self-telemetry (DESIGN.md §16): per-subsystem memory
 * accounting, host-time attribution, and parallel-lane utilization,
 * assembled behind `ttsim --telemetry[=FILE]`.
 *
 * Three data sources feed one report:
 *
 *  - *Memory probes*: each subsystem exposes a deterministic
 *    footprintBytes() computed from its container capacities; the
 *    builders register one named probe per subsystem here. Probes are
 *    polled at deterministic points (run begin/end plus every
 *    HostTimer::kMemSample executed events), tracking current and
 *    peak bytes per probe and the peak of the total.
 *
 *  - *Host-time attribution*: the HostTimer (src/sim/host_timer.hh)
 *    times every kTimeSample-th event with scoped TSC counters; this
 *    layer calibrates TSC->ns against steady_clock over the run,
 *    extrapolates by the sampling factor, and charges the residual
 *    (wall minus extrapolated event time) to the engine itself, so
 *    the categories sum to the measured wall time.
 *
 *  - *Engine counters*: per-lane events executed, window/serial-window
 *    counts, per-worker mailbox high-water marks and barrier-stall
 *    time, pulled from the ParallelEngine after the run.
 *
 * Determinism: everything under `obs.telemetry.*` (event/mem/lane
 * counters) is deterministic for a fixed configuration; everything
 * under `obs.host.*` and the per-worker stall times are host
 * measurements and are excluded from determinism comparisons (the
 * check.sh identity legs compare simulated results only).
 */

#ifndef TT_OBS_TELEMETRY_HH
#define TT_OBS_TELEMETRY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/host_timer.hh"
#include "sim/types.hh"

namespace tt
{

class StatSet;
class ParallelEngine;

class Telemetry
{
  public:
    /**
     * @param stats the machine's StatSet; telemetry stat handles are
     *              registered eagerly at construction-time callers
     *              (registerStats()) so checkpoint restore sees
     *              identical key sets on both sides
     * @param nodes simulated node count, for bytes-per-node
     */
    Telemetry(StatSet& stats, int nodes);

    /** The sampled scoped timer handed to the event kernel + hooks. */
    HostTimer& timer() { return _timer; }

    // --- memory accounting -------------------------------------------

    using MemProbe = std::function<std::size_t()>;

    /** Register a named subsystem probe (builders, before run). */
    void addMemProbe(const std::string& name, MemProbe probe);

    /** Attach the parallel engine for lane telemetry (may be null). */
    void setEngine(ParallelEngine* engine) { _engine = engine; }

    /**
     * Register every stat handle this run will write. Must be called
     * after the last addMemProbe()/setEngine() and before run(), so
     * the StatSet key set is fixed up front (checkpoint restore
     * asserts matching key sets).
     */
    void registerStats();

    /** Poll all probes; update current/peak and the counter tracks. */
    void sampleMemory();

    // --- run lifecycle -----------------------------------------------

    /** Capture the wall/TSC origin and take the first memory sample. */
    void runBegin();

    /** Capture the wall/TSC end, final memory sample, engine pull. */
    void runEnd();

    /**
     * Fold results into the StatSet (idempotent: values are set, not
     * accumulated). Call after runEnd(), before any --stats-json
     * write.
     */
    void finalize();

    // --- report -------------------------------------------------------

    /** Write the telemetry report as a JSON document. */
    void writeReport(std::ostream& os) const;
    bool writeReportFile(const std::string& path) const;

    /** One-paragraph human summary for stdout. */
    void printSummary(std::ostream& os) const;

    // --- read-out for the bench harness ------------------------------

    struct ProbeResult
    {
        std::string name;
        std::size_t finalBytes = 0;
        std::size_t peakBytes = 0;
    };

    const std::vector<ProbeResult>& probeResults() const
    {
        return _results;
    }
    std::size_t totalPeakBytes() const { return _totalPeak; }
    double
    peakBytesPerNode() const
    {
        return _nodes ? static_cast<double>(_totalPeak) / _nodes : 0.0;
    }
    std::uint64_t memSamples() const { return _memSamples; }
    double wallMs() const { return _wallNs / 1e6; }

    /** Extrapolated ns charged to @p c (valid after runEnd()). */
    double catNs(HostTimer::Cat c) const;
    /** Residual ns charged to the engine (wall - event time, >= 0). */
    double engineNs() const;
    /** Attributed time (categories + engine) over wall, in percent. */
    double attributedPct() const;

  private:
    struct Probe
    {
        std::string name;
        MemProbe fn;
        std::size_t cur = 0;
        std::size_t peak = 0;
    };

    double nsPerTsc() const;
    double catScale() const;
    void refreshCounters();

    StatSet& _stats;
    int _nodes;
    HostTimer _timer;
    ParallelEngine* _engine = nullptr;

    std::vector<Probe> _probes;
    std::size_t _totalPeak = 0;
    std::uint64_t _memSamples = 0;

    // Wall/TSC calibration endpoints.
    std::uint64_t _tsc0 = 0;
    std::uint64_t _tsc1 = 0;
    std::uint64_t _wallNs = 0;
    bool _ran = false;

    // Engine pull (populated by runEnd when an engine is attached).
    struct EngineSnap
    {
        bool present = false;
        int threads = 0;
        int lanes = 0;
        std::uint64_t windows = 0;
        std::uint64_t serialWindows = 0;
        std::uint64_t laneEvents = 0;
        std::uint64_t globalEvents = 0;
        std::vector<std::uint64_t> laneExecuted;
        std::vector<std::uint64_t> mailboxHwm;   ///< per worker
        std::vector<std::uint64_t> workerStallNs; ///< per worker
    };
    EngineSnap _eng;

    std::vector<ProbeResult> _results;

    std::chrono::steady_clock::time_point _t0;
};

} // namespace tt

#endif // TT_OBS_TELEMETRY_HH
