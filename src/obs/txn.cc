#include "obs/txn.hh"

#include <algorithm>

#include "obs/sharing.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tt
{

namespace
{

/**
 * Overlap priority of each segment class (higher wins where spans
 * overlap): directory occupancy is the protocol's serialization point,
 * request-side handler time is next, then loss repair, then raw
 * flight time, and invalidation-wait only claims time nothing else
 * explains. "Other" never appears as a span — it is the uncovered
 * remainder of the sweep.
 */
int
priOf(TxnCat c)
{
    switch (c) {
      case TxnCat::Directory:
        return 5;
      case TxnCat::Request:
        return 4;
      case TxnCat::Retransmit:
        return 3;
      case TxnCat::Network:
        return 2;
      case TxnCat::InvalWait:
        return 1;
      case TxnCat::Other:
        return 0;
    }
    return 0;
}

struct Interval
{
    Tick a;
    Tick b;
    TxnCat cat;
};

} // namespace

const char*
txnCatName(TxnCat c)
{
    switch (c) {
      case TxnCat::Request:
        return "request";
      case TxnCat::Network:
        return "network";
      case TxnCat::Directory:
        return "directory";
      case TxnCat::InvalWait:
        return "inval_wait";
      case TxnCat::Retransmit:
        return "retransmit";
      case TxnCat::Other:
        return "other";
    }
    return "?";
}

TxnTracer::TxnTracer(int nodes, StatSet& stats, TxnParams p)
    : _nodes(nodes), _p(p), _stats(stats)
{
    tt_assert(_p.blockSize > 0 && _p.pageSize >= _p.blockSize,
              "bad txn tracer geometry");
}

void
TxnTracer::fold(const TraceRecord& r)
{
    if (!r.txn)
        return;

    switch (r.kind) {
      case RecKind::BlockFault:
      case RecKind::MissStart: {
          Txn& t = _txns[r.txn];
          if (t.origin == kNoNode) {
              t.origin = r.node;
              t.addr = r.addr;
              t.write = r.sub != 0;
              t.start = r.tick;
          }
          break;
      }
      case RecKind::MissEnd: {
          Txn& t = _txns[r.txn];
          if (t.origin == kNoNode) { // defensive: end without start
              t.origin = r.node;
              t.addr = r.addr;
              t.start = r.tick;
          }
          t.done = true;
          t.end = r.tick;
          break;
      }
      case RecKind::MsgSend: {
          Txn& t = _txns[r.txn];
          ++t.sends;
          if (r.flags & kRecRetransmit)
              ++t.retx;
          if (r.flags & kRecDropped) {
              // Lost physical copy: no flight; remember it so the
              // eventual successful retransmission can span the whole
              // loss-repair episode.
              t.dropped.push_back({r.node,
                                   static_cast<NodeId>(r.arg), r.addr,
                                   r.tick});
              break;
          }
          if (r.flags & kRecRetransmit) {
              // Successful retransmission: charge the episode from
              // the earliest matching drop to this copy's arrival and
              // retire every drop it repairs (go-back-N can lose the
              // same head several times). A retransmission with no
              // recorded drop (lost-ack resend, dup-suppressed twin)
              // is charged its own flight.
              Tick from = r.tick;
              bool matched = false;
              for (const DroppedSend& d : t.dropped) {
                  if (d.src == r.node &&
                      d.dst == static_cast<NodeId>(r.arg) &&
                      d.handler == r.addr && d.tick <= r.tick) {
                      from = matched ? std::min(from, d.tick) : d.tick;
                      matched = true;
                  }
              }
              if (matched) {
                  t.dropped.erase(
                      std::remove_if(
                          t.dropped.begin(), t.dropped.end(),
                          [&](const DroppedSend& d) {
                              return d.src == r.node &&
                                     d.dst ==
                                         static_cast<NodeId>(r.arg) &&
                                     d.handler == r.addr &&
                                     d.tick <= r.tick;
                          }),
                      t.dropped.end());
              }
              t.flights.push_back({from, r.t2, true});
          } else {
              t.flights.push_back({r.tick, r.t2, false});
          }
          break;
      }
      case RecKind::HandlerDone: {
          Txn& t = _txns[r.txn];
          t.handlers.push_back({r.node, r.tick, r.tick + r.t2});
          break;
      }
      case RecKind::InvalSent: {
          _txns[r.txn].invals.push_back({r.node, r.tick});
          break;
      }
      case RecKind::MsgSup: {
          ++_txns[r.txn].sups;
          break;
      }
      default:
        break;
    }
}

void
TxnTracer::partition(const Txn& t, Result& out) const
{
    tt_assert(t.end >= t.start, "transaction ends before it starts");
    const Tick start = t.start;
    const Tick end = t.end;

    std::vector<Interval> ivs;
    ivs.reserve(t.handlers.size() + t.flights.size() +
                t.invals.size());
    auto add = [&](Tick a, Tick b, TxnCat cat) {
        a = std::max(a, start);
        b = std::min(b, end);
        if (b > a)
            ivs.push_back({a, b, cat});
    };

    for (const HandlerSpan& h : t.handlers)
        add(h.start, h.end,
            h.node == t.origin ? TxnCat::Request : TxnCat::Directory);
    for (const Flight& f : t.flights)
        add(f.start, f.end,
            f.retx ? TxnCat::Retransmit : TxnCat::Network);
    for (const InvalRound& iv : t.invals) {
        // The round is open from its send until the last handler
        // activation back at the issuing home (the final InvAck),
        // clamped to the transaction end when the acks outlive it.
        Tick close = end;
        Tick last = 0;
        for (const HandlerSpan& h : t.handlers)
            if (h.node == iv.home && h.start > iv.tick)
                last = std::max(last, h.start);
        if (last)
            close = last;
        add(iv.tick, close, TxnCat::InvalWait);
    }

    // Priority sweep over the elementary segments between span
    // boundaries: each segment is claimed by the highest-priority
    // covering span, or falls into Other. The result is an exact
    // partition of [start, end] by construction.
    std::vector<Tick> pts;
    pts.reserve(2 * ivs.size() + 2);
    pts.push_back(start);
    pts.push_back(end);
    for (const Interval& iv : ivs) {
        pts.push_back(iv.a);
        pts.push_back(iv.b);
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

    out.cat.fill(0);
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        const Tick p = pts[i];
        const Tick q = pts[i + 1];
        int best = -1;
        TxnCat cat = TxnCat::Other;
        for (const Interval& iv : ivs) {
            if (iv.a <= p && q <= iv.b && priOf(iv.cat) > best) {
                best = priOf(iv.cat);
                cat = iv.cat;
            }
        }
        out.cat[static_cast<std::size_t>(cat)] += q - p;
    }

    Tick sum = 0;
    for (Tick c : out.cat)
        sum += c;
    tt_assert(sum == end - start,
              "critical-path partition does not sum to wall latency");

    out.origin = t.origin;
    out.addr = t.addr;
    out.write = t.write;
    out.start = start;
    out.end = end;
    out.sends = t.sends;
    out.retx = t.retx;
    out.sups = t.sups;
}

void
TxnTracer::finalize(const SharingAnalyzer* sharing)
{
    if (_finalized)
        return;
    _finalized = true;

    _byPattern.assign(kSharePatterns, PatternAgg{});
    _results.clear();
    _results.reserve(_txns.size());

    for (const auto& [id, t] : _txns) {
        ++_summary.opened;
        if (!t.done)
            continue;
        Result res;
        res.id = id;
        partition(t, res);
        ++_summary.completed;
        if (res.retx)
            ++_summary.retxTxns;
        _summary.supArrivals += res.sups;
        _summary.wallTicks += res.wall();

        const Addr blk = res.addr - res.addr % _p.blockSize;
        const Addr page = res.addr - res.addr % _p.pageSize;
        const int pat =
            sharing ? static_cast<int>(sharing->classifyBlock(blk)) : 0;
        PatternAgg& pa = _byPattern[static_cast<std::size_t>(pat)];
        ++pa.txns;
        pa.wallTicks += res.wall();
        PageAgg& pg = _byPage[page];
        ++pg.txns;
        pg.wallTicks += res.wall();
        for (int c = 0; c < kTxnCats; ++c) {
            _summary.catTicks[c] += res.cat[c];
            pa.catTicks[c] += res.cat[c];
            pg.catTicks[c] += res.cat[c];
        }
        _results.push_back(res);
    }

    _stats.counter("obs.txn.opened").inc(_summary.opened);
    _stats.counter("obs.txn.completed").inc(_summary.completed);
    _stats.counter("obs.txn.retx_txns").inc(_summary.retxTxns);
    _stats.counter("obs.txn.sup_arrivals").inc(_summary.supArrivals);
    _stats.counter("obs.txn.wall_ticks").inc(_summary.wallTicks);
    for (int c = 0; c < kTxnCats; ++c)
        _stats
            .counter(std::string("obs.txn.") +
                     txnCatName(static_cast<TxnCat>(c)) + "_ticks")
            .inc(_summary.catTicks[c]);
}

int
TxnTracer::dominantPattern() const
{
    int best = -1;
    std::uint64_t bestWall = 0;
    for (int p = 0; p < static_cast<int>(_byPattern.size()); ++p) {
        const PatternAgg& pa = _byPattern[static_cast<std::size_t>(p)];
        if (pa.txns && pa.wallTicks > bestWall) {
            best = p;
            bestWall = pa.wallTicks;
        }
    }
    return best;
}

namespace
{

int
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? static_cast<int>(part * 100 / whole) : 0;
}

void
writeBreakdown(std::ostream& os,
               const std::array<std::uint64_t, kTxnCats>& cat,
               std::uint64_t wall)
{
    for (int c = 0; c < kTxnCats; ++c) {
        if (c)
            os << " | ";
        os << txnCatName(static_cast<TxnCat>(c)) << " "
           << cat[static_cast<std::size_t>(c)] << " ("
           << pct(cat[static_cast<std::size_t>(c)], wall) << "%)";
    }
}

} // namespace

void
TxnTracer::writeReport(std::ostream& os) const
{
    os << "=== coherence-transaction critical path ===\n";
    os << "transactions: " << _summary.opened << " opened, "
       << _summary.completed << " completed, " << _summary.retxTxns
       << " retransmit-affected, " << _summary.supArrivals
       << " suppressed arrivals\n";
    os << "wall ticks (completed): " << _summary.wallTicks << "\n";
    os << "breakdown: ";
    writeBreakdown(os, _summary.catTicks, _summary.wallTicks);
    os << "\n";

    const int dom = dominantPattern();
    os << "dominant pattern by wall time: "
       << (dom < 0 ? "none"
                   : sharePatternName(static_cast<SharePattern>(dom)))
       << "\n";

    os << "by sharing pattern:\n";
    for (int p = 0; p < static_cast<int>(_byPattern.size()); ++p) {
        const PatternAgg& pa = _byPattern[static_cast<std::size_t>(p)];
        if (!pa.txns)
            continue;
        os << "  " << sharePatternName(static_cast<SharePattern>(p))
           << ": " << pa.txns << " txns, " << pa.wallTicks
           << " wall ticks, ";
        writeBreakdown(os, pa.catTicks, pa.wallTicks);
        os << "\n";
    }

    // Top pages by attributed wall time (wall desc, va asc).
    std::vector<std::pair<Addr, const PageAgg*>> pages;
    pages.reserve(_byPage.size());
    for (const auto& [va, pg] : _byPage)
        pages.emplace_back(va, &pg);
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) {
                  if (a.second->wallTicks != b.second->wallTicks)
                      return a.second->wallTicks > b.second->wallTicks;
                  return a.first < b.first;
              });
    const std::size_t keep = std::min<std::size_t>(pages.size(), 8);
    os << "top pages by wall time (" << keep << " of " << pages.size()
       << "):\n";
    for (std::size_t i = 0; i < keep; ++i) {
        os << "  0x" << std::hex << pages[i].first << std::dec << ": "
           << pages[i].second->txns << " txns, "
           << pages[i].second->wallTicks << " wall ticks, ";
        writeBreakdown(os, pages[i].second->catTicks,
                       pages[i].second->wallTicks);
        os << "\n";
    }
}

void
TxnTracer::writeJson(std::ostream& os, int indent) const
{
    const std::string in(static_cast<std::size_t>(indent), ' ');
    const std::string in1 = in + "  ";
    const std::string in2 = in1 + "  ";
    const std::string in3 = in2 + "  ";

    auto breakdown = [&](const std::array<std::uint64_t, kTxnCats>& c,
                         const std::string& pad) {
        os << "{";
        for (int i = 0; i < kTxnCats; ++i) {
            if (i)
                os << ",";
            os << "\n"
               << pad << "  \"" << txnCatName(static_cast<TxnCat>(i))
               << "\": " << c[static_cast<std::size_t>(i)];
        }
        os << "\n" << pad << "}";
    };

    os << "{\n";
    os << in1 << "\"opened\": " << _summary.opened << ",\n";
    os << in1 << "\"completed\": " << _summary.completed << ",\n";
    os << in1 << "\"retx_txns\": " << _summary.retxTxns << ",\n";
    os << in1 << "\"sup_arrivals\": " << _summary.supArrivals << ",\n";
    os << in1 << "\"wall_ticks\": " << _summary.wallTicks << ",\n";
    os << in1 << "\"breakdown\": ";
    breakdown(_summary.catTicks, in1);
    os << ",\n";

    const int dom = dominantPattern();
    os << in1 << "\"dominant_pattern\": \""
       << (dom < 0 ? "none"
                   : sharePatternKey(static_cast<SharePattern>(dom)))
       << "\",\n";

    os << in1 << "\"patterns\": {";
    bool first = true;
    for (int p = 0; p < static_cast<int>(_byPattern.size()); ++p) {
        const PatternAgg& pa = _byPattern[static_cast<std::size_t>(p)];
        if (!pa.txns)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n"
           << in2 << "\"" << sharePatternKey(static_cast<SharePattern>(p))
           << "\": {\n";
        os << in3 << "\"txns\": " << pa.txns << ",\n";
        os << in3 << "\"wall_ticks\": " << pa.wallTicks << ",\n";
        os << in3 << "\"breakdown\": ";
        breakdown(pa.catTicks, in3);
        os << "\n" << in2 << "}";
    }
    os << (first ? "" : "\n" + in1) << "},\n";

    // Top pages (wall desc, va asc), capped to keep the JSON bounded.
    std::vector<std::pair<Addr, const PageAgg*>> pages;
    pages.reserve(_byPage.size());
    for (const auto& [va, pg] : _byPage)
        pages.emplace_back(va, &pg);
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) {
                  if (a.second->wallTicks != b.second->wallTicks)
                      return a.second->wallTicks > b.second->wallTicks;
                  return a.first < b.first;
              });
    const std::size_t keep = std::min<std::size_t>(pages.size(), 16);
    os << in1 << "\"pages\": [";
    for (std::size_t i = 0; i < keep; ++i) {
        if (i)
            os << ",";
        os << "\n" << in2 << "{\n";
        os << in3 << "\"va\": " << pages[i].first << ",\n";
        os << in3 << "\"txns\": " << pages[i].second->txns << ",\n";
        os << in3 << "\"wall_ticks\": " << pages[i].second->wallTicks
           << ",\n";
        os << in3 << "\"breakdown\": ";
        breakdown(pages[i].second->catTicks, in3);
        os << "\n" << in2 << "}";
    }
    os << (keep ? "\n" + in1 : "") << "]\n";
    os << in << "}";
}

} // namespace tt
