/**
 * @file
 * TxnTracer — causal coherence-transaction tracing with critical-path
 * attribution (DESIGN.md §14, ttsim --trace-critical).
 *
 * Every demand miss / upgrade opens a transaction at its origin
 * (FlightRecorder stamps the id onto the BlockFault / MissStart
 * record and Network::send piggybacks it onto every derived message,
 * including transport retransmissions and acks). The tracer folds the
 * transaction-stamped record stream into per-transaction span sets —
 * handler activations, message flights, invalidation rounds,
 * loss-repair episodes — and at finalize walks each completed
 * transaction's spans with a priority sweep that partitions its wall
 * latency exactly into six segments:
 *
 *   directory > request > retransmit > network > inval_wait > other
 *
 * (higher priority wins where spans overlap; "other" is the uncovered
 * remainder, so the six segments always sum to the measured wall
 * latency — asserted per transaction). Aggregates roll up per page,
 * per sharing-pattern class (joining the SharingAnalyzer's per-block
 * classification when one ran), and machine-wide into obs.txn.*
 * counters. All output is deterministic and byte-stable.
 */

#ifndef TT_OBS_TXN_HH
#define TT_OBS_TXN_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/record.hh"
#include "sim/types.hh"

namespace tt
{

class SharingAnalyzer;
class StatSet;

/** Critical-path latency segment of one transaction. */
enum class TxnCat : std::uint8_t
{
    Request = 0, ///< handler occupancy at the faulting node
    Network,     ///< message flight time (excluding loss repair)
    Directory,   ///< handler occupancy away from the faulting node
    InvalWait,   ///< invalidation/recall round to last ack handled
    Retransmit,  ///< loss-repair: dropped send to retransmit arrival
    Other,       ///< uncovered remainder (CPU restart, queueing, ...)
};

constexpr int kTxnCats = 6;

const char* txnCatName(TxnCat c);

/** Geometry the tracer needs (mirrors CoreParams). */
struct TxnParams
{
    std::uint32_t blockSize = 32;
    std::uint32_t pageSize = 4096;
};

class TxnTracer
{
  public:
    TxnTracer(int nodes, StatSet& stats, TxnParams p = {});

    /** Fold one record (called from FlightRecorder::consume). */
    void fold(const TraceRecord& r);

    /**
     * Close the books: partition every completed transaction, build
     * the per-page / per-pattern aggregates (joined against
     * @p sharing's block classifier when non-null), and register the
     * obs.txn.* counters. Idempotent.
     */
    void finalize(const SharingAnalyzer* sharing);

    // --- per-transaction results (tests) ------------------------------

    struct Result
    {
        std::uint32_t id = 0;
        NodeId origin = kNoNode;
        Addr addr = 0;           ///< faulting va / missing block
        bool write = false;
        Tick start = 0;
        Tick end = 0;
        std::uint32_t sends = 0;
        std::uint32_t retx = 0;  ///< retransmitted physical copies
        std::uint32_t sups = 0;  ///< suppressed (dup/ooo) arrivals
        std::array<Tick, kTxnCats> cat{}; ///< sums to end - start

        Tick wall() const { return end - start; }
    };

    /** Completed transactions, id-ascending (valid after finalize). */
    const std::vector<Result>& results() const { return _results; }

    // --- aggregates ---------------------------------------------------

    struct Summary
    {
        std::uint64_t opened = 0;    ///< transactions ever opened
        std::uint64_t completed = 0; ///< saw their MissEnd
        std::uint64_t retxTxns = 0;  ///< completed, with ≥1 retransmit
        std::uint64_t supArrivals = 0;
        std::uint64_t wallTicks = 0; ///< sum of completed wall time
        std::array<std::uint64_t, kTxnCats> catTicks{};
    };

    Summary summarize() const { return _summary; }

    /** Per-sharing-pattern roll-up (index = SharePattern value). */
    struct PatternAgg
    {
        std::uint64_t txns = 0;
        std::uint64_t wallTicks = 0;
        std::array<std::uint64_t, kTxnCats> catTicks{};
    };

    const std::vector<PatternAgg>& byPattern() const
    {
        return _byPattern;
    }

    /**
     * The dominant pattern class by attributed wall time among
     * completed transactions (ties break toward the lower pattern
     * index); -1 when nothing completed. Indexes SharePattern.
     */
    int dominantPattern() const;

    // --- reporting ----------------------------------------------------

    /** Deterministic human report (the --trace-critical output). */
    void writeReport(std::ostream& os) const;

    /**
     * The "transactions" object for --stats-json / campaign JSON:
     * a single JSON value (object), no trailing newline.
     */
    void writeJson(std::ostream& os, int indent = 0) const;

  private:
    struct HandlerSpan
    {
        NodeId node;
        Tick start;
        Tick end;
    };

    struct Flight
    {
        Tick start;
        Tick end;
        bool retx;
    };

    struct DroppedSend
    {
        NodeId src;
        NodeId dst;
        std::uint64_t handler;
        Tick tick;
    };

    struct InvalRound
    {
        NodeId home;
        Tick tick;
    };

    struct Txn
    {
        NodeId origin = kNoNode;
        Addr addr = 0;
        bool write = false;
        bool done = false;
        Tick start = 0;
        Tick end = 0;
        std::uint32_t sends = 0;
        std::uint32_t retx = 0;
        std::uint32_t sups = 0;
        std::vector<HandlerSpan> handlers;
        std::vector<Flight> flights;
        std::vector<DroppedSend> dropped;
        std::vector<InvalRound> invals;
    };

    /** Per-page roll-up (page base va -> aggregate). */
    struct PageAgg
    {
        std::uint64_t txns = 0;
        std::uint64_t wallTicks = 0;
        std::array<std::uint64_t, kTxnCats> catTicks{};
    };

    void partition(const Txn& t, Result& out) const;

    int _nodes;
    TxnParams _p;
    StatSet& _stats;
    bool _finalized = false;

    std::map<std::uint32_t, Txn> _txns; ///< id -> in-flight state

    // Built at finalize:
    Summary _summary;
    std::vector<Result> _results;
    std::vector<PatternAgg> _byPattern; ///< indexed by SharePattern
    std::map<Addr, PageAgg> _byPage;    ///< page base va -> aggregate
};

} // namespace tt

#endif // TT_OBS_TXN_HH
