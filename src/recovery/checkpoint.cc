#include "recovery/checkpoint.hh"

#include "check/protocol_checker.hh"
#include "core/transport.hh"
#include "net/network.hh"
#include "sim/logging.hh"

namespace tt
{

CheckpointManager::CheckpointManager(
    Machine& m, Network& net, MemorySystem& ms,
    ProtocolChecker* checker, ReliableTransport* tr,
    std::uint64_t epoch, std::string path, std::uint64_t fingerprint)
    : _m(m),
      _net(net),
      _ms(ms),
      _checker(checker),
      _tr(tr),
      _epoch(epoch),
      _path(std::move(path)),
      _fingerprint(fingerprint)
{
    tt_assert(_epoch > 0, "checkpoint epoch must be >= 1");
    tt_assert(!_path.empty(), "checkpoint with no file path");
}

void
CheckpointManager::arm()
{
    _m.barrier().setEpochHook(
        [this](std::uint64_t ep, Tick tick,
               const std::vector<int>& order) {
            onEpoch(ep, tick, order);
        });
}

void
CheckpointManager::onEpoch(std::uint64_t ep, Tick tick,
                           const std::vector<int>& order)
{
    if (_written || ep < _epoch)
        return;
    const bool quiet =
        _net.inflight() == 0 && _ms.quiescent() &&
        (!_tr || _tr->oldestUnackedSince() == kTickMax);
    if (!quiet) {
        if (!_deferred) {
            tt_warn("checkpoint: epoch ", ep,
                    " is not quiescent (", _net.inflight(),
                    " in flight, memsys ",
                    _ms.quiescent() ? "idle" : "busy",
                    "); deferring to the next quiescent barrier "
                    "release");
            _deferred = true;
        }
        return;
    }

    // The order below is the identity argument (file header comment):
    // canonicalize, then capture, then poke the captured bytes back
    // so the shadow checker's data oracle is rebuilt through the same
    // onBackdoorWrite path the restored run will use, then record
    // stats *after* the pokes so both sides agree on every counter.
    _ms.canonicalize(ep);
    if (_checker)
        _checker->canonicalize();

    Snapshot snap;
    snap.fingerprint = _fingerprint;
    snap.episodes = ep;
    snap.tick = tick;
    snap.order = order;
    captureMem(_ms, snap, /*coherent=*/false);
    pokeMem(_ms, snap);
    _net.resetForRecovery();
    captureStats(_m.stats(), snap);
    saveSnapshot(snap, _path);
    _written = true;
    tt_inform("checkpoint: epoch ", ep, " at tick ", tick,
           " written to '", _path, "'");
}

Machine::RestartPlan
restorePlan(const Snapshot& snap, Machine& m, Network& net,
            MemorySystem& ms, ProtocolChecker* checker)
{
    Machine::RestartPlan plan;
    plan.tick = snap.tick;
    plan.episodes = snap.episodes;
    plan.order = snap.order;
    plan.applyState = [&snap, &m, &net, &ms, checker] {
        ms.canonicalize(snap.episodes);
        if (checker)
            checker->canonicalize();
        pokeMem(ms, snap);
        net.resetForRecovery();
        restoreStats(m.stats(), snap);
    };
    return plan;
}

} // namespace tt
