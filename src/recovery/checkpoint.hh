/**
 * @file
 * Epoch-based checkpoint/restart (DESIGN.md §15). The manager hooks
 * the global barrier: at the first fully quiescent release epoch at
 * or after the requested one, it (1) canonicalizes the memory system
 * and the shadow checker to the post-setup picture, (2) peeks every
 * shared byte into a Snapshot, (3) pokes the same bytes straight
 * back — a no-op for memory, but it rebuilds the checker's data
 * shadow through onBackdoorWrite exactly the way the restored run's
 * pokes will — (4) records the statistics registry and writes the
 * file, and then lets the run continue from the canonical state.
 *
 * A restore (restorePlan) performs the same canonicalize + poke +
 * stats-restore on a freshly built machine after setup, jumps
 * simulated time to the snapshot tick, and respawns bodies in the
 * recorded barrier arrival order. Because both runs pass through the
 * *same* canonical state at the *same* tick with the *same* event
 * order, everything downstream — timing, statistics, traces — is
 * byte-identical; the checkpointing run vs. its restored continuation
 * is compared in tests/recovery/test_checkpoint.cc.
 *
 * Requested on a non-quiescent epoch (a message still in flight, an
 * operation still open), the checkpoint defers — deterministically —
 * to the next quiescent release, with a warning.
 */

#ifndef TT_RECOVERY_CHECKPOINT_HH
#define TT_RECOVERY_CHECKPOINT_HH

#include <string>
#include <vector>

#include "core/machine.hh"
#include "recovery/snapshot.hh"
#include "sim/types.hh"

namespace tt
{

class Network;
class ProtocolChecker;
class ReliableTransport;

class CheckpointManager
{
  public:
    CheckpointManager(Machine& m, Network& net, MemorySystem& ms,
                      ProtocolChecker* checker, ReliableTransport* tr,
                      std::uint64_t epoch, std::string path,
                      std::uint64_t fingerprint);

    /** Install the barrier epoch hook. Call once, before run(). */
    void arm();

    bool written() const { return _written; }
    const std::string& path() const { return _path; }

  private:
    void onEpoch(std::uint64_t ep, Tick tick,
                 const std::vector<int>& order);

    Machine& _m;
    Network& _net;
    MemorySystem& _ms;
    ProtocolChecker* _checker;
    ReliableTransport* _tr;
    std::uint64_t _epoch;
    std::string _path;
    std::uint64_t _fingerprint;
    bool _written = false;
    bool _deferred = false;
};

/**
 * Build the Machine::run() plan continuing @p snap on a freshly
 * built, same-configuration machine. @p snap must outlive the run.
 */
Machine::RestartPlan restorePlan(const Snapshot& snap, Machine& m,
                                 Network& net, MemorySystem& ms,
                                 ProtocolChecker* checker);

} // namespace tt

#endif // TT_RECOVERY_CHECKPOINT_HH
