#include "recovery/coordinator.hh"

#include <algorithm>
#include <ostream>

#include "check/protocol_checker.hh"
#include "core/machine.hh"
#include "core/transport.hh"
#include "dir/dir_mem_system.hh"
#include "net/fault_model.hh"
#include "net/network.hh"
#include "sim/logging.hh"
#include "sim/watchdog.hh"
#include "typhoon/typhoon_mem_system.hh"

namespace tt
{

namespace
{

/**
 * Deterministic crash-detection backstop: if no survivor happens to
 * be retrying into the dead node (so the transport never declares a
 * dead link — e.g. everyone is parked at a barrier the victim will
 * never reach), the coordinator notices the crash this many ticks
 * after injection. A fixed constant keeps replay deterministic.
 */
constexpr Tick kDetectDelay = 2000;

} // namespace

RecoveryCoordinator::RecoveryCoordinator(
    Machine& m, Network& net, MemorySystem& ms, ReliableTransport& tr,
    SeededFaultModel* faults, ProtocolChecker* checker,
    std::vector<std::pair<Tick, NodeId>> crashes)
    : _m(m),
      _net(net),
      _ms(ms),
      _tr(tr),
      _faults(faults),
      _checker(checker),
      _crashes(std::move(crashes)),
      _cCrashes(m.stats().counter("rec.crashes")),
      _cRecoveries(m.stats().counter("rec.recoveries")),
      _cSnapshots(m.stats().counter("rec.snapshots")),
      _cSnapshotsSkipped(m.stats().counter("rec.snapshots_skipped")),
      _cCrashDrops(m.stats().counter("rec.crash_drops"))
{
    tt_assert(!_crashes.empty(),
              "RecoveryCoordinator without a crash schedule");
    for (const auto& [tick, node] : _crashes) {
        (void)tick;
        tt_assert(node >= 0 && node < _m.nodes(),
                  "crash schedule names node ", node, " on a ",
                  _m.nodes(), "-node machine");
    }
}

void
RecoveryCoordinator::attachTyphoon(TyphoonMemSystem& tms)
{
    tt_assert(!_tms && !_dms, "recovery coordinator already attached");
    _tms = &tms;
    for (int n = 0; n < _m.nodes(); ++n) {
        Tempest& t = tms.tempest(n);
        t.registerMsgHandler(
            kRecQuiesce, [this, n](TempestCtx&, const Message& msg) {
                onRecMessage(n, msg);
            });
        t.registerMsgHandler(
            kRecAck, [this, n](TempestCtx&, const Message& msg) {
                onRecMessage(n, msg);
            });
    }
}

void
RecoveryCoordinator::attachDirnnb(DirMemSystem& dms)
{
    tt_assert(!_tms && !_dms, "recovery coordinator already attached");
    _dms = &dms;
    dms.setExtraHandler([this](NodeId self, Message&& msg) {
        onRecMessage(self, msg);
    });
}

void
RecoveryCoordinator::arm()
{
    tt_assert(_tms || _dms,
              "arm() before attaching a memory system");
    _net.armRecovery();
    _tr.setDeadLinkListener([this](NodeId, NodeId dst) {
        onDeadLink(dst);
    });
    _m.barrier().setEpochHook(
        [this](std::uint64_t ep, Tick, const std::vector<int>& order) {
            takeSnapshot(ep, order);
        });
    // Snapshot #0, the post-setup state: scheduled before run() spawns
    // any body, so it executes first in the tick-0 drain and a crash
    // before the first barrier still has a rollback target.
    EventQueue& eq = _m.eq();
    eq.schedule(eq.now(), [this] {
        std::vector<int> identity(
            static_cast<std::size_t>(_m.nodes()));
        for (int i = 0; i < _m.nodes(); ++i)
            identity[static_cast<std::size_t>(i)] = i;
        takeSnapshot(0, identity);
    });
    for (const auto& [tick, node] : _crashes)
        scheduleCrash(tick, node);
}

void
RecoveryCoordinator::takeSnapshot(std::uint64_t episodes,
                                  const std::vector<int>& order)
{
    if (_recovering || _victim != kNoNode)
        return;
    // Only a fully quiescent epoch snapshots: with a message in
    // flight, a block's latest bytes may be riding the fabric and a
    // peek would capture stale data. A busy epoch simply keeps the
    // previous snapshot — rollback reaches further back, correctness
    // is unaffected.
    if (_net.inflight() != 0 || !_ms.quiescent()) {
        _cSnapshotsSkipped.inc();
        return;
    }
    _snap.episodes = episodes;
    _snap.order = order;
    captureMem(_ms, _snap, /*coherent=*/true);
    _haveSnap = true;
    _cSnapshots.inc();
}

void
RecoveryCoordinator::scheduleCrash(Tick tick, NodeId victim)
{
    EventQueue& eq = _m.eq();
    eq.schedule(tick, [this, victim] { doCrash(victim); });
}

void
RecoveryCoordinator::doCrash(NodeId victim)
{
    const Tick now = _m.eq().now();
    if (_m.allFinished()) {
        // The crash tick landed past the application's end; the event
        // fires in the final queue drain. A finished run has nothing
        // to roll back — ignore the crash rather than respawn bodies
        // into a completed computation.
        tt_warn("crash: ignoring crash of node ", victim, " at tick ",
                now, " (application already finished)");
        return;
    }
    if (_m.nodes() < 2)
        throw UnrecoverableCrash(now, victim,
                                 "no surviving node remains");
    if (_recovering)
        throw UnrecoverableCrash(
            now, victim, "crashed while a recovery was in progress");
    if (_victim != kNoNode)
        throw UnrecoverableCrash(
            now, victim,
            "node " + std::to_string(_victim) +
                " is already down and not yet recovered");
    tt_warn("crash: node ", victim, " fails at tick ", now);
    _victim = victim;
    _net.markDead(victim);
    _cCrashes.inc();
    _m.eq().schedule(now + kDetectDelay, [this, victim] {
        if (!_recovering && _victim == victim)
            startRecovery(victim);
    });
}

void
RecoveryCoordinator::onDeadLink(NodeId dst)
{
    // The transport also declares dead links for long partitions and
    // pre-recovery stragglers; only a known crash starts a recovery
    // (late-ack revival handles the rest).
    if (!_recovering && dst == _victim)
        startRecovery(dst);
}

void
RecoveryCoordinator::startRecovery(NodeId victim)
{
    tt_assert(_haveSnap, "recovery with no snapshot taken");
    _recovering = true;
    _recoveryStart = _m.eq().now();
    _coord = kNoNode;
    for (int n = 0; n < _m.nodes(); ++n) {
        if (n != victim) {
            _coord = n;
            break;
        }
    }
    _acksLeft = 0;
    for (int n = 0; n < _m.nodes(); ++n) {
        if (n == victim || n == _coord)
            continue;
        sendRec(_coord, n, kRecQuiesce);
        ++_acksLeft;
    }
    tt_warn("recovery: node ", _coord, " coordinates recovery of node ",
            victim, " at tick ", _recoveryStart, " (", _acksLeft,
            " survivor(s) to quiesce, rollback to episode ",
            _snap.episodes, ")");
    if (_acksLeft == 0) {
        _m.eq().schedule(_m.eq().now() + 1, [this] { rollback(); });
    }
}

void
RecoveryCoordinator::onRecMessage(NodeId self, const Message& msg)
{
    switch (msg.handler) {
    case kRecQuiesce:
        // A survivor acknowledges the quiesce request. Channels are
        // FIFO (go-back-N), so the ack's arrival bounds everything
        // the survivor sent to the coordinator before it quiesced.
        sendRec(self, msg.src, kRecAck);
        break;
    case kRecAck:
        tt_assert(_recovering && self == _coord,
                  "stray recovery ack at node ", self);
        if (--_acksLeft == 0) {
            _m.eq().schedule(_m.eq().now() + 1,
                             [this] { rollback(); });
        }
        break;
    default:
        tt_panic("unknown recovery message handler ", msg.handler,
                 " at node ", self);
    }
}

void
RecoveryCoordinator::sendRec(NodeId src, NodeId dst,
                             std::uint32_t handler)
{
    // An ordinary active message on the normal checked, reliable
    // path. The dummy address + extra argument keep every decode
    // prologue (checker conservation keying, DirNNB's addr/extra
    // reads) in bounds.
    Message m;
    m.src = src;
    m.dst = dst;
    m.vnet = handler == kRecAck ? VNet::Response : VNet::Request;
    m.handler = handler;
    m.args = {0, 0, 0};
    _net.send(std::move(m), _m.eq().now());
}

void
RecoveryCoordinator::rollback()
{
    const NodeId victim = _victim;
    EventQueue& eq = _m.eq();
    const Tick now = eq.now();

    // 1. Every pending event dies: in-flight deliveries, retry
    //    timers, watchdog checks, body continuations. Nothing may
    //    reference the coroutine frames about to be destroyed.
    eq.clearPending();

    // 2. Fresh bodies at the snapshot's episode count, spawned in the
    //    recorded barrier arrival order.
    _m.respawnBodies(_snap.episodes, _snap.order);

    // 3. Mechanism state back to the canonical post-setup picture;
    //    the shadow checker resets its oracle the same way (before
    //    the pokes, so the pokes rebuild its data shadow).
    _ms.canonicalize(_snap.episodes);
    if (_checker)
        _checker->canonicalize();
    pokeMem(_ms, _snap);

    // 4. The victim rejoins; fabric occupancies, transport windows,
    //    and transient fault state reset.
    _net.revive(victim);
    _net.resetForRecovery();
    _tr.reset();
    if (_faults)
        _faults->resetTransient(_snap.episodes);

    // 5. Re-arm what clearPending killed: later scheduled crashes and
    //    the watchdog's periodic check.
    for (const auto& [tick, node] : _crashes) {
        if (tick > now)
            scheduleCrash(tick, node);
    }
    if (_watchdog)
        _watchdog->arm();

    _victim = kNoNode;
    _recovering = false;
    _cRecoveries.inc();
    tt_warn("recovery: node ", victim, " recovered at tick ", now,
            " (", now - _recoveryStart,
            " ticks after detection); resuming from episode ",
            _snap.episodes);
}

void
RecoveryCoordinator::finalizeStats()
{
    _cCrashDrops.set(_net.crashDrops());
}

std::uint64_t
RecoveryCoordinator::crashesInjected() const
{
    return _cCrashes.value();
}

std::uint64_t
RecoveryCoordinator::recoveriesDone() const
{
    return _cRecoveries.value();
}

void
RecoveryCoordinator::describeRecovery(std::ostream& os) const
{
    if (!_recovering && _victim == kNoNode) {
        os << "recovery: idle\n";
        return;
    }
    if (!_recovering) {
        os << "recovery: node " << _victim
           << " is down, crash not yet detected\n";
        return;
    }
    os << "recovery: recovering node " << _victim << " since tick "
       << _recoveryStart << " (coordinator " << _coord << ", "
       << _acksLeft << " ack(s) outstanding)\n";
}

} // namespace tt
