/**
 * @file
 * Crash-stop failure injection and user-level recovery (DESIGN.md
 * §15). The paper's thesis — coherence policy belongs in user-level
 * software — extends to failure policy: everything here is built from
 * the same Tempest primitives the protocols use, not engine magic.
 *
 * Failure model: `crash@TICK:NODE` in the --faults grammar. At TICK
 * the victim's caches, in-flight handlers, and transport sessions
 * vanish; the simulator models this by gating the victim off the
 * network (Network::markDead — every message to or from it is
 * dropped), which makes the victim a harmless zombie until rollback
 * reclaims it. Survivors observe the crash through the reliable
 * transport's dead-link declaration (retry cap), backstopped by a
 * deterministic detection probe.
 *
 * Recovery protocol, run by the lowest surviving node:
 *
 *   1. Quiesce: the coordinator sends kRecQuiesce to every other
 *      survivor as an ordinary charged Tempest active message (the
 *      same checked, reliable path protocol traffic rides); each
 *      replies kRecAck.
 *   2. Rollback, one tick after the last ack: pending events are
 *      dropped, bodies are respawned at the last snapshot's episode
 *      count, the memory system canonicalizes to the post-setup
 *      state, the shadow checker resets its oracle, snapshot bytes
 *      are poked back, the victim is revived, and the transport
 *      windows reset. Survivor copies that were ahead of the
 *      snapshot are invalidated wholesale by the canonicalize — the
 *      "roll back and invalidate stale copies" recovery scheme.
 *
 * Snapshots are taken in memory at every fully quiescent barrier
 * release (no message in flight anywhere, memory system idle) via
 * coherentPeek — a pure read, so a run that never crashes is
 * bit-identical to one without the subsystem. The post-setup state
 * is snapshot #0, so a crash before the first barrier still
 * recovers. A second crash before a recovery completes is an
 * UnrecoverableCrash (ttsim exit code 5).
 */

#ifndef TT_RECOVERY_COORDINATOR_HH
#define TT_RECOVERY_COORDINATOR_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "recovery/snapshot.hh"
#include "sim/types.hh"

namespace tt
{

class DirMemSystem;
class Machine;
class MemorySystem;
class Message;
class Network;
class ProtocolChecker;
class ReliableTransport;
class SeededFaultModel;
class TyphoonMemSystem;
class Watchdog;

/** Thrown when a crash cannot be recovered from (ttsim exit 5). */
struct UnrecoverableCrash : std::runtime_error
{
    UnrecoverableCrash(Tick tick_, NodeId node_, const std::string& why)
        : std::runtime_error("unrecoverable crash of node " +
                             std::to_string(node_) + " at tick " +
                             std::to_string(tick_) + ": " + why),
          tick(tick_),
          node(node_)
    {
    }

    Tick tick;
    NodeId node;
};

class RecoveryCoordinator
{
  public:
    /** Recovery-protocol active-message handler ids, far above every
     *  protocol's own id space. */
    enum Handlers : std::uint32_t
    {
        kRecQuiesce = 0x300, ///< coordinator -> survivor: stop + ack
        kRecAck,             ///< survivor -> coordinator
    };

    RecoveryCoordinator(
        Machine& m, Network& net, MemorySystem& ms,
        ReliableTransport& tr, SeededFaultModel* faults,
        ProtocolChecker* checker,
        std::vector<std::pair<Tick, NodeId>> crashes);

    /** The watchdog is built after the coordinator (its trip dump
     *  wants the coordinator's status); wire it back in here so
     *  rollback can re-arm the periodic check clearPending killed. */
    void setWatchdog(Watchdog* w) { _watchdog = w; }

    // Exactly one attach is called, matching the built target.
    void attachTyphoon(TyphoonMemSystem& tms);
    void attachDirnnb(DirMemSystem& dms);

    /** Arm the subsystem: dead-node gating, snapshot hooks, crash
     *  events, dead-link detection. Call once, before run(). */
    void arm();

    /** Publish end-of-run recovery stats (rec.crash_drops). */
    void finalizeStats();

    bool recovering() const { return _recovering; }
    std::uint64_t crashesInjected() const;
    std::uint64_t recoveriesDone() const;

    /** One-line recovery status for the watchdog trip dump. */
    void describeRecovery(std::ostream& os) const;

  private:
    void takeSnapshot(std::uint64_t episodes,
                      const std::vector<int>& order);
    void scheduleCrash(Tick tick, NodeId victim);
    void doCrash(NodeId victim);
    void onDeadLink(NodeId dst);
    void startRecovery(NodeId victim);
    void onRecMessage(NodeId self, const Message& msg);
    void sendRec(NodeId src, NodeId dst, std::uint32_t handler);
    void rollback();

    Machine& _m;
    Network& _net;
    MemorySystem& _ms;
    ReliableTransport& _tr;
    SeededFaultModel* _faults;
    ProtocolChecker* _checker;
    Watchdog* _watchdog = nullptr;
    TyphoonMemSystem* _tms = nullptr;
    DirMemSystem* _dms = nullptr;

    std::vector<std::pair<Tick, NodeId>> _crashes;
    Snapshot _snap;        ///< last quiescent-epoch snapshot
    bool _haveSnap = false;
    bool _recovering = false;
    NodeId _victim = kNoNode;
    NodeId _coord = kNoNode;
    int _acksLeft = 0;
    Tick _recoveryStart = 0;

    // Stat handles; these names exist only when crashes are
    // configured, keeping crash-free runs bit-identical to seed.
    Counter& _cCrashes;
    Counter& _cRecoveries;
    Counter& _cSnapshots;
    Counter& _cSnapshotsSkipped;
    Counter& _cCrashDrops;
};

} // namespace tt

#endif // TT_RECOVERY_COORDINATOR_HH
