#include "recovery/snapshot.hh"

#include <fstream>

#include "core/memsys.hh"
#include "sim/logging.hh"

namespace tt
{

std::uint64_t
configFingerprint(const std::string& key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
captureMem(MemorySystem& ms, Snapshot& s, bool coherent)
{
    s.mem.clear();
    for (const MemorySystem::SharedRange& r : ms.sharedAllocs()) {
        Snapshot::MemRange mr;
        mr.va = r.va;
        mr.bytes.resize(r.bytes);
        if (coherent)
            ms.coherentPeek(r.va, mr.bytes.data(), r.bytes);
        else
            ms.peek(r.va, mr.bytes.data(), r.bytes);
        s.mem.push_back(std::move(mr));
    }
}

void
pokeMem(MemorySystem& ms, const Snapshot& s)
{
    for (const Snapshot::MemRange& mr : s.mem)
        ms.poke(mr.va, mr.bytes.data(), mr.bytes.size());
}

void
captureStats(const StatSet& stats, Snapshot& s)
{
    s.counters.clear();
    s.averages.clear();
    s.histograms.clear();
    for (const auto& [name, c] : stats.counters())
        s.counters.emplace_back(name, c.value());
    for (const auto& [name, a] : stats.averages())
        s.averages.emplace_back(name, a.state());
    for (const auto& [name, h] : stats.histograms())
        s.histograms.push_back({name, h.buckets(), h.underflow(),
                                h.overflow(), h.summary().state()});
}

void
restoreStats(StatSet& stats, const Snapshot& s)
{
    // Counters and averages are created on first use, so the restored
    // run may not have materialized all of them yet (per-handler
    // occupancy averages, for instance); operator[] inserts those.
    for (const auto& [name, v] : s.counters)
        stats.mutableCounters()[name].set(v);
    for (const auto& [name, st] : s.averages)
        stats.mutableAverages()[name].setState(st);
    for (const Snapshot::HistState& hs : s.histograms) {
        auto it = stats.mutableHistograms().find(hs.name);
        tt_assert(it != stats.mutableHistograms().end(),
                  "checkpoint restores histogram '", hs.name,
                  "' that this run never created");
        it->second.setState(hs.buckets, hs.underflow, hs.overflow,
                            hs.summary);
    }
}

// --------------------------------------------------------------------
// File format
// --------------------------------------------------------------------

namespace
{

constexpr char kMagic[8] = {'T', 'T', 'C', 'K', 'P', 'T', '1', '\0'};

void
putU64(std::ostream& os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t
getU64(std::istream& is)
{
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof v);
    return v;
}

void
putF64(std::ostream& os, double v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

double
getF64(std::istream& is)
{
    double v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof v);
    return v;
}

void
putStr(std::ostream& os, const std::string& s)
{
    putU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getStr(std::istream& is)
{
    std::string s(getU64(is), '\0');
    is.read(s.data(), static_cast<std::streamsize>(s.size()));
    return s;
}

void
putAvg(std::ostream& os, const Average::State& a)
{
    putF64(os, a.sum);
    putU64(os, a.count);
    putF64(os, a.min);
    putF64(os, a.max);
    putF64(os, a.wmean);
    putF64(os, a.m2);
}

Average::State
getAvg(std::istream& is)
{
    Average::State a;
    a.sum = getF64(is);
    a.count = getU64(is);
    a.min = getF64(is);
    a.max = getF64(is);
    a.wmean = getF64(is);
    a.m2 = getF64(is);
    return a;
}

} // namespace

void
saveSnapshot(const Snapshot& s, const std::string& path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        tt_fatal("cannot write checkpoint file '", path, "'");
    os.write(kMagic, sizeof kMagic);
    putU64(os, s.fingerprint);
    putU64(os, s.episodes);
    putU64(os, s.tick);
    putU64(os, s.order.size());
    for (const int id : s.order)
        putU64(os, static_cast<std::uint64_t>(id));
    putU64(os, s.mem.size());
    for (const Snapshot::MemRange& mr : s.mem) {
        putU64(os, mr.va);
        putU64(os, mr.bytes.size());
        os.write(reinterpret_cast<const char*>(mr.bytes.data()),
                 static_cast<std::streamsize>(mr.bytes.size()));
    }
    putU64(os, s.counters.size());
    for (const auto& [name, v] : s.counters) {
        putStr(os, name);
        putU64(os, v);
    }
    putU64(os, s.averages.size());
    for (const auto& [name, a] : s.averages) {
        putStr(os, name);
        putAvg(os, a);
    }
    putU64(os, s.histograms.size());
    for (const Snapshot::HistState& hs : s.histograms) {
        putStr(os, hs.name);
        putU64(os, hs.buckets.size());
        for (const std::uint64_t b : hs.buckets)
            putU64(os, b);
        putU64(os, hs.underflow);
        putU64(os, hs.overflow);
        putAvg(os, hs.summary);
    }
    if (!os)
        tt_fatal("short write to checkpoint file '", path, "'");
}

Snapshot
loadSnapshot(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        tt_fatal("cannot read checkpoint file '", path, "'");
    char magic[sizeof kMagic] = {};
    is.read(magic, sizeof magic);
    if (!is || std::string(magic, sizeof magic) !=
                   std::string(kMagic, sizeof kMagic))
        tt_fatal("'", path, "' is not a TTCKPT1 checkpoint");
    Snapshot s;
    s.fingerprint = getU64(is);
    s.episodes = getU64(is);
    s.tick = getU64(is);
    s.order.resize(getU64(is));
    for (int& id : s.order)
        id = static_cast<int>(getU64(is));
    s.mem.resize(getU64(is));
    for (Snapshot::MemRange& mr : s.mem) {
        mr.va = getU64(is);
        mr.bytes.resize(getU64(is));
        is.read(reinterpret_cast<char*>(mr.bytes.data()),
                static_cast<std::streamsize>(mr.bytes.size()));
    }
    s.counters.resize(getU64(is));
    for (auto& [name, v] : s.counters) {
        name = getStr(is);
        v = getU64(is);
    }
    s.averages.resize(getU64(is));
    for (auto& [name, a] : s.averages) {
        name = getStr(is);
        a = getAvg(is);
    }
    s.histograms.resize(getU64(is));
    for (Snapshot::HistState& hs : s.histograms) {
        hs.name = getStr(is);
        hs.buckets.resize(getU64(is));
        for (std::uint64_t& b : hs.buckets)
            b = getU64(is);
        hs.underflow = getU64(is);
        hs.overflow = getU64(is);
        hs.summary = getAvg(is);
    }
    if (!is)
        tt_fatal("truncated checkpoint file '", path, "'");
    return s;
}

} // namespace tt
