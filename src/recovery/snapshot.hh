/**
 * @file
 * The snapshot at the heart of checkpoint/restart and crash recovery
 * (DESIGN.md §15). One Snapshot is everything a run needs to continue
 * from a quiescent barrier-release epoch: the episode count, the
 * release tick, the barrier arrival order (same-tick event order is
 * insertion order, so the order fully determines how restored bodies
 * interleave), the bytes of every shared allocation, and — for file
 * checkpoints only — the statistics registry, so a restored run's
 * final report is byte-identical to the checkpointing run's.
 *
 * Machine state outside the snapshot (caches, TLBs, directory and
 * stache metadata, transport windows, pending events) is *not*
 * serialized: both sides of a restore canonicalize it away instead
 * (MemorySystem::canonicalize), which is what makes the format this
 * small and the identity argument this short.
 */

#ifndef TT_RECOVERY_SNAPSHOT_HH
#define TT_RECOVERY_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace tt
{

class MemorySystem;

struct Snapshot
{
    /// Config identity (fnv1a of the assembled config key); a restore
    /// under a different configuration is refused.
    std::uint64_t fingerprint = 0;
    std::uint64_t episodes = 0; ///< completed barrier episodes
    Tick tick = 0;              ///< barrier release tick
    std::vector<int> order;     ///< CPU ids in barrier arrival order

    struct MemRange
    {
        Addr va = 0;
        std::vector<std::uint8_t> bytes;
    };
    std::vector<MemRange> mem; ///< one range per shared allocation

    // Statistics (file checkpoints only; in-memory crash-recovery
    // snapshots leave these empty — rolled-back work stays counted).
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, Average::State>> averages;
    struct HistState
    {
        std::string name;
        std::vector<std::uint64_t> buckets;
        std::uint64_t underflow = 0;
        std::uint64_t overflow = 0;
        Average::State summary;
    };
    std::vector<HistState> histograms;
};

/** FNV-1a over a config-identity string. */
std::uint64_t configFingerprint(const std::string& key);

/**
 * Capture the bytes of every shared allocation. @p coherent reads
 * through the protocol's current-copy view without perturbing any
 * state (crash-recovery snapshots); otherwise a plain peek, which is
 * exact once the memory system has been canonicalized (checkpoints).
 */
void captureMem(MemorySystem& ms, Snapshot& s, bool coherent);

/** Poke every captured range back (backdoor: no tags move). */
void pokeMem(MemorySystem& ms, const Snapshot& s);

void captureStats(const StatSet& stats, Snapshot& s);
/** Restore by name; creates counters/averages, histograms must
 *  already exist (they are all construction-time). */
void restoreStats(StatSet& stats, const Snapshot& s);

/** Binary file format "TTCKPT1"; tt_fatal on IO or format errors. */
void saveSnapshot(const Snapshot& s, const std::string& path);
Snapshot loadSnapshot(const std::string& path);

} // namespace tt

#endif // TT_RECOVERY_SNAPSHOT_HH
