/**
 * @file
 * Two purpose-built replacements for std::unordered_map on the
 * protocol hot paths.
 *
 * DenseMap: protocol metadata keyed by a page or block *index* (vpn,
 * ppn, block number). Shared segments are bump-allocated from a few
 * fixed virtual bases (0x4000'0000 for Stache, 0x7000'0000 for custom
 * EM3D pages, 0x1000'0000 for the DirNNB store), so the key space is
 * a handful of dense runs. Each run gets a bank: a base index plus a
 * flat vector of slots, giving O(1) lookups with no hashing and no
 * pointer chasing. Gap slots hold a default-constructed value, so V
 * must be cheap to default-construct (an empty vector, a null
 * pointer); sparse expensive values belong in OpenMap instead.
 *
 * OpenMap: sparse, short-lived state keyed by address (in-flight
 * coherence transactions, sharing-pattern records). Open addressing
 * with linear probing and backward-shift deletion; values are
 * constructed only when present, so an entry with heavyweight members
 * (a deque allocates even when empty) costs nothing until it exists.
 */

#ifndef TT_SIM_DENSE_MAP_HH
#define TT_SIM_DENSE_MAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace tt
{

/**
 * Banked dense map: uint64 index -> V. Lookups scan the (few) banks
 * linearly and index into the matching one. Inserting below a bank's
 * base re-bases it (the allocators bump upward, so this is rare);
 * inserting far from every bank opens a new one.
 */
template <typename V>
class DenseMap
{
  public:
    V*
    find(std::uint64_t idx)
    {
        for (Bank& b : _banks) {
            const std::uint64_t off = idx - b.base;
            if (off < b.slots.size() && b.slots[off].present)
                return &b.slots[off].val;
        }
        return nullptr;
    }

    const V*
    find(std::uint64_t idx) const
    {
        return const_cast<DenseMap*>(this)->find(idx);
    }

    bool contains(std::uint64_t idx) const { return find(idx); }

    V&
    at(std::uint64_t idx)
    {
        V* p = find(idx);
        tt_assert(p, "DenseMap::at of absent key ", idx);
        return *p;
    }

    const V&
    at(std::uint64_t idx) const
    {
        return const_cast<DenseMap*>(this)->at(idx);
    }

    /** Find, or default-insert if absent; second = inserted. */
    std::pair<V&, bool>
    findOrInsert(std::uint64_t idx)
    {
        if (V* p = find(idx))
            return {*p, false};
        Slot& s = slotFor(idx);
        s.present = true;
        ++_size;
        return {s.val, true};
    }

    V& operator[](std::uint64_t idx)
    {
        return findOrInsert(idx).first;
    }

    /** Insert a value; the key must be absent. */
    V&
    insert(std::uint64_t idx, V&& v)
    {
        auto [ref, inserted] = findOrInsert(idx);
        tt_assert(inserted, "DenseMap::insert of present key ", idx);
        ref = std::move(v);
        return ref;
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /** Visit (key, value) for every entry, ascending within a bank. */
    template <typename F>
    void
    forEach(F&& f) const
    {
        for (const Bank& b : _banks) {
            for (std::size_t i = 0; i < b.slots.size(); ++i) {
                if (b.slots[i].present)
                    f(b.base + i, b.slots[i].val);
            }
        }
    }

    /** Mutable visit (canonicalize walks that rewrite entries). */
    template <typename F>
    void
    forEachMut(F&& f)
    {
        for (Bank& b : _banks) {
            for (std::size_t i = 0; i < b.slots.size(); ++i) {
                if (b.slots[i].present)
                    f(b.base + i, b.slots[i].val);
            }
        }
    }

    /** Drop every entry (and the banks: allocation bases re-form). */
    void
    clear()
    {
        _banks.clear();
        _size = 0;
    }

    /**
     * Resident bytes of the bank structures (slot-vector capacities,
     * not just present entries) — the telemetry memory-probe view
     * (DESIGN.md §16). Excludes heap memory owned by the values
     * themselves; callers add that where it matters.
     */
    std::size_t
    footprintBytes() const
    {
        std::size_t b = _banks.capacity() * sizeof(Bank);
        for (const Bank& bank : _banks)
            b += bank.slots.capacity() * sizeof(Slot);
        return b;
    }

  private:
    struct Slot
    {
        V val{};
        bool present = false;
    };

    struct Bank
    {
        std::uint64_t base = 0;
        std::vector<Slot> slots;
    };

    /** Max distance from a bank's base before a new bank opens. */
    static constexpr std::uint64_t kBankSpan = 1ull << 16;

    Slot&
    slotFor(std::uint64_t idx)
    {
        for (Bank& b : _banks) {
            if (idx >= b.base && idx - b.base < kBankSpan) {
                const std::uint64_t off = idx - b.base;
                if (off >= b.slots.size())
                    b.slots.resize(off + 1);
                return b.slots[off];
            }
            if (idx < b.base && b.base - idx < kBankSpan) {
                // Re-base: shift existing slots up to make room.
                const std::uint64_t shift = b.base - idx;
                b.slots.resize(b.slots.size() + shift);
                std::move_backward(b.slots.begin(),
                                   b.slots.end() - shift,
                                   b.slots.end());
                for (std::uint64_t i = 0; i < shift; ++i)
                    b.slots[i] = Slot{};
                b.base = idx;
                return b.slots[0];
            }
        }
        _banks.push_back(Bank{idx, {}});
        _banks.back().slots.resize(1);
        return _banks.back().slots[0];
    }

    std::vector<Bank> _banks;
    std::size_t _size = 0;
};

/**
 * Open-addressed hash map: integral key -> V, Fibonacci hashing,
 * linear probing, backward-shift deletion (no tombstones). Values are
 * constructed in place only for present entries.
 */
template <typename K, typename V>
class OpenMap
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "OpenMap requires an integral key");

  public:
    OpenMap() = default;
    OpenMap(const OpenMap&) = delete;
    OpenMap& operator=(const OpenMap&) = delete;

    ~OpenMap()
    {
        for (Slot& s : _slots) {
            if (s.full)
                s.value()->~V();
        }
    }

    V*
    find(K k)
    {
        if (_slots.empty())
            return nullptr;
        std::size_t i = ideal(k);
        while (_slots[i].full) {
            if (_slots[i].key == k)
                return _slots[i].value();
            i = (i + 1) & _mask;
        }
        return nullptr;
    }

    const V*
    find(K k) const
    {
        return const_cast<OpenMap*>(this)->find(k);
    }

    bool contains(K k) const { return find(k); }

    V&
    at(K k)
    {
        V* p = find(k);
        tt_assert(p, "OpenMap::at of absent key ", std::uint64_t(k));
        return *p;
    }

    const V&
    at(K k) const
    {
        return const_cast<OpenMap*>(this)->at(k);
    }

    /** Insert a value; the key must be absent. */
    V&
    insert(K k, V&& v)
    {
        tt_assert(!contains(k), "OpenMap::insert of present key ",
                  std::uint64_t(k));
        maybeGrow();
        std::size_t i = ideal(k);
        while (_slots[i].full)
            i = (i + 1) & _mask;
        _slots[i].key = k;
        ::new (static_cast<void*>(_slots[i].raw)) V(std::move(v));
        _slots[i].full = true;
        ++_size;
        return *_slots[i].value();
    }

    V& operator[](K k)
    {
        if (V* p = find(k))
            return *p;
        return insert(k, V{});
    }

    void
    erase(K k)
    {
        tt_assert(!_slots.empty(), "OpenMap::erase of absent key ",
                  std::uint64_t(k));
        std::size_t i = ideal(k);
        while (true) {
            tt_assert(_slots[i].full, "OpenMap::erase of absent key ",
                      std::uint64_t(k));
            if (_slots[i].key == k)
                break;
            i = (i + 1) & _mask;
        }
        _slots[i].value()->~V();
        _slots[i].full = false;
        --_size;
        // Backward-shift: pull displaced entries into the hole so
        // probe chains stay unbroken without tombstones.
        std::size_t hole = i, j = i;
        while (true) {
            j = (j + 1) & _mask;
            if (!_slots[j].full)
                return;
            const std::size_t h = ideal(_slots[j].key);
            if (((j - h) & _mask) >= ((j - hole) & _mask)) {
                _slots[hole].key = _slots[j].key;
                ::new (static_cast<void*>(_slots[hole].raw))
                    V(std::move(*_slots[j].value()));
                _slots[j].value()->~V();
                _slots[hole].full = true;
                _slots[j].full = false;
                hole = j;
            }
        }
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /**
     * Destroy every entry and release the table, returning the map to
     * its freshly-constructed state. Full release (not capacity
     * retention) keeps a canonicalized map bit-identical to one that
     * never held the dropped entries (DESIGN.md §15).
     */
    void
    clear()
    {
        for (Slot& s : _slots) {
            if (s.full) {
                s.value()->~V();
                s.full = false;
            }
        }
        _slots.clear();
        _slots.shrink_to_fit();
        _size = 0;
        _mask = 0;
        _shift = 64;
    }

    /** Visit (key, value) for every entry, in table order. */
    template <typename F>
    void
    forEach(F&& f) const
    {
        for (const Slot& s : _slots) {
            if (s.full)
                f(s.key, *s.value());
        }
    }

    /** Resident bytes of the slot table (telemetry memory probes). */
    std::size_t
    footprintBytes() const
    {
        return _slots.capacity() * sizeof(Slot);
    }

  private:
    struct Slot
    {
        K key{};
        alignas(V) unsigned char raw[sizeof(V)];
        bool full = false;

        V* value()
        {
            return std::launder(reinterpret_cast<V*>(raw));
        }
        const V* value() const
        {
            return std::launder(reinterpret_cast<const V*>(raw));
        }
    };

    std::size_t
    ideal(K k) const
    {
        return static_cast<std::size_t>(
                   static_cast<std::uint64_t>(k) *
                   0x9E3779B97F4A7C15ull) >>
               _shift;
    }

    void
    maybeGrow()
    {
        if (!_slots.empty() && (_size + 1) * 10 <= _slots.size() * 7)
            return;
        const std::size_t cap =
            _slots.empty() ? 16 : _slots.size() * 2;
        std::vector<Slot> old = std::move(_slots);
        _slots.clear();
        _slots.resize(cap);
        _mask = cap - 1;
        int log2cap = 0;
        while ((std::size_t{1} << log2cap) < cap)
            ++log2cap;
        _shift = 64 - log2cap;
        for (Slot& s : old) {
            if (!s.full)
                continue;
            std::size_t i = ideal(s.key);
            while (_slots[i].full)
                i = (i + 1) & _mask;
            _slots[i].key = s.key;
            ::new (static_cast<void*>(_slots[i].raw))
                V(std::move(*s.value()));
            _slots[i].full = true;
            s.value()->~V();
            s.full = false;
        }
    }

    std::vector<Slot> _slots;
    std::size_t _size = 0;
    std::size_t _mask = 0;
    int _shift = 64;
};

} // namespace tt

#endif // TT_SIM_DENSE_MAP_HH
