#include "sim/event_queue.hh"

#include <utility>

namespace tt
{

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    // Move the closure out before popping so the entry can safely
    // schedule new events (which may reallocate the heap).
    Entry e = std::move(const_cast<Entry&>(_heap.top()));
    _heap.pop();
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

Tick
EventQueue::run()
{
    _stopRequested = false;
    while (!_stopRequested && step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    _stopRequested = false;
    while (!_stopRequested && !_heap.empty() && _heap.top().when <= limit) {
        step();
    }
    return _now;
}

void
EventQueue::reset()
{
    while (!_heap.empty())
        _heap.pop();
    _now = 0;
    _nextSeq = 0;
    _executed = 0;
    _stopRequested = false;
}

} // namespace tt
