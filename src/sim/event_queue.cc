#include "sim/event_queue.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace tt
{

namespace
{

EventQueue::Mode&
defaultModeStorage()
{
    static EventQueue::Mode mode = [] {
        const char* env = std::getenv("TT_EVENTQ_REFERENCE");
        const bool ref = env && env[0] && env[0] != '0';
        return ref ? EventQueue::Mode::ReferenceHeap
                   : EventQueue::Mode::Calendar;
    }();
    return mode;
}

} // namespace

EventQueue::Mode
EventQueue::defaultMode()
{
    return defaultModeStorage();
}

void
EventQueue::setDefaultMode(Mode m)
{
    defaultModeStorage() = m;
}

int
EventQueue::findOccupied(std::uint32_t from) const
{
    if (from >= kWindow)
        return -1;
    std::uint32_t w = from >> 6;
    std::uint64_t bits = _occ[w] & (~0ull << (from & 63));
    for (;;) {
        if (bits)
            return static_cast<int>((w << 6) + __builtin_ctzll(bits));
        if (++w >= _occ.size())
            return -1;
        bits = _occ[w];
    }
}

bool
EventQueue::nextWhen(Tick* when)
{
    for (;;) {
        if (_inBucket) {
            auto& b = _buckets[_cursor];
            if (_bucketPos < b.size()) {
                *when = _windowBase + _cursor;
                return true;
            }
            // Finalize the drained bucket lazily: a callback at tick t
            // may have appended more same-tick work while we were
            // iterating, so the bucket is only retired once a fresh
            // scan confirms it is exhausted.
            b.clear();
            _occ[_cursor >> 6] &= ~(1ull << (_cursor & 63));
            _inBucket = false;
            ++_cursor;
        }
        const int next = findOccupied(_cursor);
        if (next >= 0) {
            _cursor = static_cast<std::uint32_t>(next);
            _inBucket = true;
            _bucketPos = 0;
            continue;
        }
        if (_heap.empty())
            return false;
        // Window fully drained; the far heap holds the next event.
        // Report it without rebasing — rebasing here would move
        // _windowBase past _now while no event executes, breaking the
        // invariant that schedule() offsets never underflow (e.g. a
        // runUntil() caller scheduling near-past-limit work next).
        *when = _heap.front().when;
        return true;
    }
}

EventQueue::FarEntry
EventQueue::popHeap()
{
    std::pop_heap(_heap.begin(), _heap.end(), FarAfter{});
    FarEntry e = std::move(_heap.back());
    _heap.pop_back();
    return e;
}

void
EventQueue::rebase()
{
    _windowBase = _heap.front().when;
    _cursor = 0;
    _bucketPos = 0;
    _inBucket = false;
    while (!_heap.empty() && _heap.front().when < _windowBase + kWindow) {
        FarEntry e = popHeap();
        const Tick off = e.when - _windowBase;
        _buckets[off].push_back(std::move(e.cb));
        _occ[off >> 6] |= 1ull << (off & 63);
    }
}

bool
EventQueue::step()
{
    Tick when;
    if (!nextWhen(&when))
        return false;
    if (!_inBucket) {
        if (_useCalendar) {
            // Promote far-heap events into the (empty) window, then
            // re-scan; the earliest promoted bucket is at offset 0.
            rebase();
            nextWhen(&when);
        } else {
            FarEntry e = popHeap();
            --_pending;
            _now = e.when;
            ++_executed;
            if (_telem) {
                _telem->eventStart();
                e.cb();
                _telem->eventEnd();
            } else {
                e.cb();
            }
            return true;
        }
    }
    // Move the closure out before invoking it so the event can safely
    // schedule new work into this very bucket (which may reallocate).
    Callback cb = std::move(_buckets[_cursor][_bucketPos++]);
    --_pending;
    _now = when;
    ++_executed;
    if (_telem) {
        _telem->eventStart();
        cb();
        _telem->eventEnd();
    } else {
        cb();
    }
    return true;
}

Tick
EventQueue::run()
{
    _stopRequested = false;
    while (!_stopRequested && step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    _stopRequested = false;
    Tick when;
    while (!_stopRequested && nextWhen(&when) && when <= limit)
        step();
    return _now;
}

void
EventQueue::clearPending()
{
    for (std::size_t w = 0; w < _occ.size(); ++w) {
        std::uint64_t bits = _occ[w];
        while (bits) {
            const int b = __builtin_ctzll(bits);
            _buckets[(w << 6) + b].clear();
            bits &= bits - 1;
        }
        _occ[w] = 0;
    }
    _heap.clear();
    // Keep _now/_nextSeq/_executed: time continues forward across a
    // rollback; only the pending work is discarded.
    _windowBase = _now;
    _cursor = 0;
    _bucketPos = 0;
    _inBucket = false;
    _pending = 0;
}

void
EventQueue::reset()
{
    // Clear containers wholesale instead of popping entry by entry.
    for (std::size_t w = 0; w < _occ.size(); ++w) {
        std::uint64_t bits = _occ[w];
        while (bits) {
            const int b = __builtin_ctzll(bits);
            _buckets[(w << 6) + b].clear();
            bits &= bits - 1;
        }
        _occ[w] = 0;
    }
    _heap.clear();
    _windowBase = 0;
    _cursor = 0;
    _bucketPos = 0;
    _inBucket = false;
    _pending = 0;
    _now = 0;
    _nextSeq = 0;
    _executed = 0;
    _stopRequested = false;
}

} // namespace tt
