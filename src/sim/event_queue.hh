/**
 * @file
 * Discrete-event simulation core. A single global-ordered queue of
 * (tick, sequence, closure) triples drives the whole target machine;
 * ties break deterministically on insertion order so every run is
 * exactly reproducible.
 *
 * The queue is two-level. Nearly every event a memory-system
 * simulation schedules lands within a few hundred ticks of now
 * (link latencies, cache occupancies, quantum boundaries), so those
 * go into a calendar of one-tick buckets covering a kWindow-tick
 * window; insertion is an append and the (tick, seq) order falls out
 * of append order. Far-future events (and, before the window next
 * drains, anything past its edge) go to a conventional binary
 * min-heap on (tick, seq) and are promoted in bulk — only ever into
 * a fully drained window, which is what keeps the two structures'
 * orderings from interleaving. A heap-only reference mode
 * (Mode::ReferenceHeap, or env TT_EVENTQ_REFERENCE=1) runs the same
 * workload through just the heap so tests can cross-check that both
 * paths execute the identical event sequence.
 */

#ifndef TT_SIM_EVENT_QUEUE_HH
#define TT_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/host_timer.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/small_function.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * A deterministic discrete-event queue.
 *
 * Events are closures scheduled at absolute ticks. run() pops events in
 * (tick, insertion-sequence) order until the queue drains or a stop is
 * requested. Scheduling in the past is a simulator bug (panic).
 */
class EventQueue
{
  public:
    using Callback = SmallFunction;

    /** Which queue structure executes events (same order either way). */
    enum class Mode
    {
        Calendar,      ///< bucketed near window + far heap (fast path)
        ReferenceHeap, ///< single binary heap (reference for testing)
    };

    explicit EventQueue(Mode mode = defaultMode())
        : _useCalendar(mode == Mode::Calendar),
          _buckets(kWindow),
          _occ(kWindow / 64, 0)
    {
    }

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Process-wide default mode for new queues; initialized from the
     * TT_EVENTQ_REFERENCE environment variable on first use.
     */
    static Mode defaultMode();

    /** Override the process-wide default (tests, ablations). */
    static void setDefaultMode(Mode m);

    Mode
    mode() const
    {
        return _useCalendar ? Mode::Calendar : Mode::ReferenceHeap;
    }

    /** Current simulated time (tick of the most recently popped event). */
    Tick now() const { return _now; }

    /** Schedule @p cb to run at absolute tick @p when. */
    void
    schedule(Tick when, Callback cb)
    {
        tt_assert(when >= _now, "scheduling event in the past: ", when,
                  " < ", _now);
        const std::uint64_t seq = _nextSeq++;
        ++_pending;
        // _windowBase <= _now whenever user code runs (see rebase()),
        // so the offset below cannot underflow.
        const Tick off = when - _windowBase;
        if (_useCalendar && off < kWindow) {
            _buckets[off].push_back(std::move(cb));
            _occ[off >> 6] |= 1ull << (off & 63);
            if (off < _cursor) {
                // runUntil() scanned past this (then-empty) bucket, or
                // parked on a later one without consuming from it (a
                // partially drained bucket implies _now has reached it,
                // which contradicts off >= _now - _windowBase < _cursor).
                tt_assert(!_inBucket || _bucketPos == 0,
                          "schedule behind a partially drained bucket");
                _cursor = static_cast<std::uint32_t>(off);
                _inBucket = false;
            }
        } else {
            const std::uint64_t prio = _perturb ? _prng.next() : 0;
            _heap.push_back(FarEntry{when, prio, seq, std::move(cb)});
            std::push_heap(_heap.begin(), _heap.end(), FarAfter{});
        }
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb)
    {
        schedule(_now + delta, std::move(cb));
    }

    /** Number of pending events. */
    std::size_t pending() const { return _pending; }

    bool empty() const { return _pending == 0; }

    /**
     * Run until the queue drains or stop() is called.
     * @return the tick of the last executed event.
     */
    Tick run();

    /**
     * Run events with tick <= @p limit.
     * @return the tick of the last executed event.
     */
    Tick runUntil(Tick limit);

    /** Execute at most one event. @return false if the queue was empty. */
    bool step();

    /** Request that run() return after the current event completes. */
    void stop() { _stopRequested = true; }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Tick of the next pending event without consuming it (kTickMax
     * when the queue is empty). Advances lazy bucket finalization,
     * like step() would.
     */
    Tick
    nextEventTick()
    {
        Tick when;
        return nextWhen(&when) ? when : kTickMax;
    }

    /**
     * Reset time and drop all pending events (containers are cleared
     * wholesale, not popped entry by entry). Only meaningful between
     * complete simulations.
     */
    void reset();

    /**
     * Drop every pending event while keeping simulated time, sequence
     * numbering, and the executed count. This is the crash-recovery
     * rollback primitive (DESIGN.md §15): after a crash-stop failure
     * the coordinator discards all in-flight work — message
     * deliveries, retransmit timers, suspended-coroutine resumes —
     * wholesale, then reconstructs machine state from the last
     * checkpoint and respawns the computation. Dropping the events
     * (rather than guarding every closure with a generation check) is
     * what makes the rollback safe: no stale closure can ever run
     * against rolled-back state or a destroyed coroutine frame.
     */
    void clearPending();

    /**
     * Jump simulated time forward to @p t (checkpoint restore). The
     * queue must be empty; the restore event is then scheduled at the
     * checkpoint tick so everything resumes exactly there.
     */
    void
    jumpTo(Tick t)
    {
        tt_assert(_pending == 0, "jumpTo with pending events");
        tt_assert(t >= _now, "jumpTo into the past: ", t, " < ", _now);
        _now = t;
        _windowBase = t;
        _cursor = 0;
        _bucketPos = 0;
        _inBucket = false;
    }

    /**
     * Schedule-perturbation mode (the --perturb harness): same-tick
     * events execute in a pseudo-random permutation drawn from
     * @p seed instead of insertion order. Any legal interleaving a
     * real machine could exhibit within a tick is fair game, so
     * protocol invariants must hold under every permutation; the
     * seed makes any failure exactly replayable. Only supported in
     * ReferenceHeap mode (the calendar fast path derives same-tick
     * order from bucket append order, which cannot be permuted
     * without rebuilding buckets).
     */
    void
    setPerturb(std::uint64_t seed)
    {
        tt_assert(!_useCalendar,
                  "perturbation requires ReferenceHeap mode");
        _perturb = true;
        _prng = Rng(seed);
    }

    bool perturbed() const { return _perturb; }

    /**
     * Attach the self-telemetry timer (DESIGN.md §16). step() then
     * brackets every callback with eventStart()/eventEnd(); null (the
     * default) costs one branch per event.
     */
    void setTelemetry(HostTimer* t) { _telem = t; }

    /**
     * Resident bytes of the queue structures themselves (capacities,
     * not live entries — what the host actually holds). Deterministic
     * for a fixed workload; feeds the telemetry memory probes.
     */
    std::size_t
    footprintBytes() const
    {
        std::size_t b = _buckets.capacity() * sizeof(_buckets[0]) +
                        _occ.capacity() * sizeof(std::uint64_t) +
                        _heap.capacity() * sizeof(FarEntry);
        for (const auto& bucket : _buckets)
            b += bucket.capacity() * sizeof(Callback);
        return b;
    }

  private:
    /** Ticks covered by the calendar window; one bucket per tick. */
    static constexpr std::uint32_t kWindow = 4096;

    struct FarEntry
    {
        Tick when;
        std::uint64_t prio; ///< 0 normally; random under perturbation
        std::uint64_t seq;
        Callback cb;
    };

    /** Heap comparator: true if a executes after b (min-heap order). */
    struct FarAfter
    {
        bool
        operator()(const FarEntry& a, const FarEntry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /**
     * Advance lazy bucket finalization and report the tick of the next
     * event without consuming it. Leaves the cursor parked on that
     * bucket when the next event is calendar-resident.
     * @return false iff the queue is empty.
     */
    bool nextWhen(Tick* when);

    /**
     * Move the window to the earliest far-heap event and promote every
     * heap entry that now falls inside it. Pops arrive in (when, seq)
     * order, so per-bucket append order remains seq order. Only legal
     * when the window is fully drained.
     */
    void rebase();

    /** Pop the heap minimum (reference mode / promotion). */
    FarEntry popHeap();

    /** Index of the first occupied bucket at or after @p from; -1 if none. */
    int findOccupied(std::uint32_t from) const;

    const bool _useCalendar;

    // Calendar level: window [_windowBase, _windowBase + kWindow), one
    // vector of callbacks per tick, plus an occupancy bitmap so the
    // scan for the next non-empty bucket is a word walk + ctz.
    std::vector<std::vector<Callback>> _buckets;
    std::vector<std::uint64_t> _occ;
    Tick _windowBase = 0;
    std::uint32_t _cursor = 0;    ///< scan position within the window
    std::uint32_t _bucketPos = 0; ///< next entry within current bucket
    bool _inBucket = false;       ///< cursor parked on an occupied bucket

    // Far level: binary min-heap on (when, seq).
    std::vector<FarEntry> _heap;

    std::size_t _pending = 0;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    bool _stopRequested = false;

    // Perturbation (heap mode only; see setPerturb()).
    bool _perturb = false;
    Rng _prng;

    // Self-telemetry timer; null unless --telemetry (DESIGN.md §16).
    HostTimer* _telem = nullptr;
};

} // namespace tt

#endif // TT_SIM_EVENT_QUEUE_HH
