/**
 * @file
 * Discrete-event simulation core. A single global-ordered queue of
 * (tick, sequence, closure) triples drives the whole target machine;
 * ties break deterministically on insertion order so every run is
 * exactly reproducible.
 */

#ifndef TT_SIM_EVENT_QUEUE_HH
#define TT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/**
 * A deterministic discrete-event queue.
 *
 * Events are closures scheduled at absolute ticks. run() pops events in
 * (tick, insertion-sequence) order until the queue drains or a stop is
 * requested. Scheduling in the past is a simulator bug (panic).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time (tick of the most recently popped event). */
    Tick now() const { return _now; }

    /** Schedule @p cb to run at absolute tick @p when. */
    void
    schedule(Tick when, Callback cb)
    {
        tt_assert(when >= _now, "scheduling event in the past: ", when,
                  " < ", _now);
        _heap.push(Entry{when, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb)
    {
        schedule(_now + delta, std::move(cb));
    }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    bool empty() const { return _heap.empty(); }

    /**
     * Run until the queue drains or stop() is called.
     * @return the tick of the last executed event.
     */
    Tick run();

    /**
     * Run events with tick <= @p limit.
     * @return the tick of the last executed event.
     */
    Tick runUntil(Tick limit);

    /** Execute at most one event. @return false if the queue was empty. */
    bool step();

    /** Request that run() return after the current event completes. */
    void stop() { _stopRequested = true; }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Reset time and drop all pending events. Only meaningful between
     * complete simulations.
     */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    bool _stopRequested = false;
};

} // namespace tt

#endif // TT_SIM_EVENT_QUEUE_HH
