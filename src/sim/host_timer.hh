/**
 * @file
 * Hot-path primitive of the simulator self-telemetry subsystem
 * (DESIGN.md §16): a sampled, scoped host-time attribution timer.
 *
 * The full telemetry layer (memory probes, report writer, stat fold)
 * lives in src/obs/telemetry; this header holds only the state machine
 * that the event kernel and the instrumented subsystems touch, so that
 * src/net, src/core, and the protocol libraries can carry timing
 * scopes without depending on tt_obs.
 *
 * Cost model: when telemetry is off no HostTimer exists and every hook
 * site is a single null-pointer branch. When on, eventStart() is a
 * counter increment plus two predictable modulo tests; only every
 * kTimeSample-th event enters *timing mode*, where category scopes
 * read the TSC. Sampling keeps the measured overhead under the 5%
 * budget while the x(kTimeSample) extrapolation stays statistically
 * faithful for runs of millions of events.
 *
 * Threading: timing mode is entered and left only by the global
 * EventQueue's step(), which executes on the coordinating thread —
 * either the serial engine, the parallel engine's pure-global fast
 * path, or a serial window (workers parked at the epoch barrier in all
 * three). Worker-lane events may construct TelemScopes concurrently,
 * but they observe timing() == false: the engine's epoch/arrival
 * acquire-release pairs order every _timing write before any worker
 * resumes, so the plain bool read is race-free.
 */

#ifndef TT_SIM_HOST_TIMER_HH
#define TT_SIM_HOST_TIMER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace tt
{

class HostTimer
{
  public:
    /** Host-time attribution categories (DESIGN.md §16). */
    enum class Cat : std::uint8_t {
        Dispatch = 0, ///< event callback outside any tagged scope
        Handler,      ///< protocol handler work (NP / directory / Stache)
        Net,          ///< network delivery
        Checker,      ///< coherence-sanitizer hooks
        Transport,    ///< reliable-transport send/arrive/timeout
    };
    static constexpr std::size_t kCats = 5;

    /** Every kTimeSample-th executed event is timed with the TSC. */
    static constexpr std::uint64_t kTimeSample = 8;
    /** Memory probes are polled every kMemSample executed events. */
    static constexpr std::uint64_t kMemSample = 4096;

    /** Raw timestamp: TSC on x86, steady_clock ns elsewhere. */
    static std::uint64_t
    nowTsc()
    {
#if defined(__x86_64__) || defined(__i386__)
        return __rdtsc();
#else
        return static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch()
                .count());
#endif
    }

    /**
     * Called by the event kernel before each callback. Deterministic
     * in what it counts: the event ordinal alone decides whether this
     * event is timed and whether the memory probes fire.
     */
    void
    eventStart()
    {
        const std::uint64_t n = ++_events;
        if (n % kMemSample == 0 && _memSample)
            _memSample();
        if (n % kTimeSample == 0) {
            _cat = Cat::Dispatch;
            _evTsc = _lastTsc = nowTsc();
            _timing = true;
        }
    }

    /** Called by the event kernel after each callback. */
    void
    eventEnd()
    {
        if (!_timing)
            return;
        const std::uint64_t t = nowTsc();
        _catTsc[idx(_cat)] += t - _lastTsc;
        _evElapsed += t - _evTsc;
        ++_timedEvents;
        _timing = false;
    }

    /** True while the current event is being timed. */
    bool timing() const { return _timing; }

    /**
     * Charge the interval since the last switch to the current
     * category and make @p c current. @return the previous category,
     * so a scope can restore it.
     */
    Cat
    switchCat(Cat c)
    {
        const std::uint64_t t = nowTsc();
        _catTsc[idx(_cat)] += t - _lastTsc;
        _lastTsc = t;
        const Cat prev = _cat;
        _cat = c;
        return prev;
    }

    /** Installed by the telemetry layer; fired every kMemSample events. */
    void setMemSampleFn(std::function<void()> f)
    {
        _memSample = std::move(f);
    }

    // Read-out for the telemetry layer.
    std::uint64_t events() const { return _events; }
    std::uint64_t timedEvents() const { return _timedEvents; }
    std::uint64_t eventTsc() const { return _evElapsed; }
    std::uint64_t catTsc(Cat c) const { return _catTsc[idx(c)]; }

  private:
    static std::size_t idx(Cat c)
    {
        return static_cast<std::size_t>(c);
    }

    std::uint64_t _events = 0;
    std::uint64_t _timedEvents = 0;
    std::uint64_t _evTsc = 0;      ///< timed event's start stamp
    std::uint64_t _lastTsc = 0;    ///< last category-switch stamp
    std::uint64_t _evElapsed = 0;  ///< total tsc inside timed events
    std::uint64_t _catTsc[kCats] = {};
    bool _timing = false;
    Cat _cat = Cat::Dispatch;
    std::function<void()> _memSample;
};

/**
 * RAII category scope. Free when the timer is null (telemetry off) or
 * the current event is not sampled; otherwise charges enclosed time to
 * @p c and restores the enclosing category on destruction, so nested
 * scopes (e.g. checker hooks inside a handler) attribute correctly.
 */
class TelemScope
{
  public:
    TelemScope(HostTimer* t, HostTimer::Cat c)
    {
        if (t && t->timing()) {
            _t = t;
            _prev = t->switchCat(c);
        }
    }

    TelemScope(const TelemScope&) = delete;
    TelemScope& operator=(const TelemScope&) = delete;

    ~TelemScope()
    {
        if (_t)
            _t->switchCat(_prev);
    }

  private:
    HostTimer* _t = nullptr;
    HostTimer::Cat _prev = HostTimer::Cat::Dispatch;
};

} // namespace tt

#endif // TT_SIM_HOST_TIMER_HH
