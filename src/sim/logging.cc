#include "sim/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace tt
{
namespace log_detail
{

namespace
{
int g_verbosity = 1;
tt::PanicHook g_panicHook = nullptr;
bool g_inPanicHook = false;
} // namespace

int
verbosity()
{
    return g_verbosity;
}

void
setVerbosity(int level)
{
    g_verbosity = level;
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    if (g_panicHook && !g_inPanicHook) {
        g_inPanicHook = true;
        g_panicHook();
        g_inPanicHook = false;
        std::fflush(stderr);
    }
    // Throwing (rather than abort()) lets unit tests assert on panics;
    // uncaught, it still terminates the process with a core-style trace.
    throw std::logic_error("tt panic: " + msg);
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("tt fatal: " + msg);
}

void
warnImpl(const std::string& msg)
{
    if (g_verbosity >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (g_verbosity >= 2)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace log_detail

PanicHook
setPanicHook(PanicHook hook)
{
    PanicHook prev = log_detail::g_panicHook;
    log_detail::g_panicHook = hook;
    return prev;
}

} // namespace tt
