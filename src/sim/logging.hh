/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef TT_SIM_LOGGING_HH
#define TT_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tt
{

namespace log_detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** Global verbosity: 0 = silent, 1 = warn, 2 = inform. */
int verbosity();
void setVerbosity(int level);

} // namespace log_detail

/** Set global log verbosity (0 silent, 1 warnings, 2 everything). */
inline void
setLogVerbosity(int level)
{
    log_detail::setVerbosity(level);
}

/**
 * Hook invoked (once, recursion-guarded) by tt_panic after printing
 * the panic message and before throwing — the crash flight recorder
 * uses it to dump its ring tails into the failure report. Pass
 * nullptr to clear. Returns the previous hook.
 */
using PanicHook = void (*)();
PanicHook setPanicHook(PanicHook hook);

} // namespace tt

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * can never happen regardless of user input.
 */
#define tt_panic(...)                                                      \
    ::tt::log_detail::panicImpl(__FILE__, __LINE__,                        \
                                ::tt::log_detail::concat(__VA_ARGS__))

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
#define tt_fatal(...)                                                      \
    ::tt::log_detail::fatalImpl(__FILE__, __LINE__,                        \
                                ::tt::log_detail::concat(__VA_ARGS__))

/** Non-fatal warning about possibly incorrect behaviour. */
#define tt_warn(...)                                                       \
    ::tt::log_detail::warnImpl(::tt::log_detail::concat(__VA_ARGS__))

/** Informational status message. */
#define tt_inform(...)                                                     \
    ::tt::log_detail::informImpl(::tt::log_detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define tt_assert(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            tt_panic("assertion failed: ", #cond, " ",                     \
                     ::tt::log_detail::concat(__VA_ARGS__));               \
        }                                                                  \
    } while (0)

#endif // TT_SIM_LOGGING_HH
