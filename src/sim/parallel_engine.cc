#include "sim/parallel_engine.hh"

#include <algorithm>
#include <chrono>

#include "sim/logging.hh"

namespace tt
{

namespace
{

/**
 * Per-thread execution context. `engine` and `worker` identify the
 * engine a thread belongs to while a run is active; `lane` is >= 0
 * only while a lane event executes (and `when` is that event's tick).
 */
struct TlsCtx
{
    ParallelEngine* engine = nullptr;
    int worker = -1;
    int lane = -1;
    Tick when = 0;
};

thread_local TlsCtx t_ctx;

} // namespace

ParallelEngine::ParallelEngine(EventQueue& gq, int lanes,
                               Tick lookahead, int threads)
    : _gq(gq), _lookahead(lookahead), _nthreads(threads), _lanes(lanes)
{
    tt_assert(lanes > 0, "engine needs at least one lane");
    tt_assert(lookahead > 0, "lookahead window must be > 0");
    tt_assert(threads > 0, "thread count must be > 0");
    // More workers than lanes would only park idle threads at every
    // barrier.
    if (_nthreads > lanes)
        _nthreads = lanes;
    _workers.reserve(_nthreads);
    for (int w = 0; w < _nthreads; ++w)
        _workers.push_back(std::make_unique<Worker>());
    for (int w = 1; w < _nthreads; ++w)
        _workers[w]->th = std::thread([this, w] { workerLoop(w); });
}

ParallelEngine::~ParallelEngine()
{
    _shutdown.store(true, std::memory_order_relaxed);
    _epoch.fetch_add(1, std::memory_order_release);
    _epoch.notify_all();
    for (auto& w : _workers) {
        if (w->th.joinable())
            w->th.join();
    }
}

Tick
ParallelEngine::now() const
{
    if (t_ctx.engine == this && t_ctx.lane >= 0)
        return t_ctx.when;
    return _gq.now();
}

bool
ParallelEngine::inLaneContext() const
{
    return t_ctx.engine == this && t_ctx.lane >= 0;
}

int
ParallelEngine::currentLane() const
{
    return t_ctx.engine == this ? t_ctx.lane : -1;
}

std::uint64_t
ParallelEngine::laneExecuted() const
{
    std::uint64_t n = 0;
    for (const Lane& l : _lanes)
        n += l.executed;
    return n;
}

bool
ParallelEngine::empty() const
{
    return _gq.empty() && _staged.empty() && !anyLanePending();
}

void
ParallelEngine::pushLane(Lane& lane, Tick when, Callback cb)
{
    lane.heap.push_back(LaneEvent{when, lane.nextSeq++, std::move(cb)});
    std::push_heap(lane.heap.begin(), lane.heap.end(), LaneAfter{});
}

void
ParallelEngine::scheduleLane(int lane, Tick when, Callback cb)
{
    tt_assert(lane >= 0 && lane < lanes(), "bad lane ", lane);
    if (t_ctx.engine == this && t_ctx.lane >= 0) {
        if (t_ctx.lane == lane) {
            // Same-lane: direct insert, ordered by the lane's own
            // sequence counter.
            Lane& l = _lanes[lane];
            tt_assert(when >= l.now, "lane ", lane,
                      " scheduling in the past: ", when, " < ", l.now);
            pushLane(l, when, std::move(cb));
            return;
        }
        // Cross-lane: the lookahead contract — the target tick must
        // lie at or beyond the window's end so the destination lane
        // cannot have advanced past it. Staged until the barrier.
        tt_assert(when >= _windowEnd, "cross-lane schedule from lane ",
                  t_ctx.lane, " to lane ", lane, " at tick ", when,
                  " inside the lookahead window ending at ",
                  _windowEnd);
        Lane& src = _lanes[t_ctx.lane];
        _workers[t_ctx.worker]->outbox.push(CrossEvent{
            when, t_ctx.lane, lane, src.outSeq++, std::move(cb)});
        return;
    }
    // Coordinator/global context: before the run, between windows, or
    // from an event on the global queue. Merged at the next barrier.
    tt_assert(t_ctx.engine == this || !_running,
              "scheduleLane from a thread outside the engine");
    tt_assert(when >= _gq.now(), "scheduling lane event in the past: ",
              when, " < ", _gq.now());
    tt_assert(!_running || when >= _windowEnd,
              "global-context lane schedule at tick ", when,
              " inside the window ending at ", _windowEnd);
    _staged.push_back(
        CrossEvent{when, kGlobalSrc, lane, _globalOutSeq++,
                   std::move(cb)});
    if (_inFastRun) {
        // Interrupt the pure-global fast path: lane work exists again,
        // so the run loop must go back to windowed execution.
        _laneWake = true;
        _gq.stop();
    }
}

void
ParallelEngine::drainCross()
{
    _crossBuf.clear();
    for (auto& w : _workers) {
        CrossEvent e;
        std::uint64_t drained = 0;
        while (w->outbox.tryPop(&e)) {
            _crossBuf.push_back(std::move(e));
            ++drained;
        }
        // Mailbox high-water mark: the most cross-events one worker
        // staged in a single window. Deterministic (a property of the
        // event schedule, not of timing), but only tracked when
        // telemetry asks for it.
        if (_telem && drained > w->drainHwm)
            w->drainHwm = drained;
    }
    for (auto& e : _staged)
        _crossBuf.push_back(std::move(e));
    _staged.clear();
    if (_crossBuf.empty())
        return;
    // (when, srcLane, srcSeq) is a total order independent of which
    // worker carried which lane, so destination sequence numbers come
    // out identical for every thread count.
    std::sort(_crossBuf.begin(), _crossBuf.end(),
              [](const CrossEvent& a, const CrossEvent& b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.srcLane != b.srcLane)
                      return a.srcLane < b.srcLane;
                  return a.srcSeq < b.srcSeq;
              });
    for (auto& e : _crossBuf) {
        Lane& l = _lanes[e.dstLane];
        tt_assert(e.when >= l.now, "cross-lane event for lane ",
                  e.dstLane, " arrived in its past: ", e.when, " < ",
                  l.now);
        pushLane(l, e.when, std::move(e.cb));
    }
    _crossBuf.clear();
}

bool
ParallelEngine::anyLanePending() const
{
    for (const Lane& l : _lanes)
        if (!l.heap.empty())
            return true;
    return false;
}

Tick
ParallelEngine::minLaneTick(int* lane) const
{
    Tick best = kTickMax;
    int bestLane = -1;
    for (int i = 0; i < lanes(); ++i) {
        const Lane& l = _lanes[i];
        if (!l.heap.empty() && l.heap.front().when < best) {
            best = l.heap.front().when;
            bestLane = i;
        }
    }
    if (lane)
        *lane = bestLane;
    return best;
}

void
ParallelEngine::drainLane(int lane, Tick windowEnd)
{
    Lane& l = _lanes[lane];
    if (l.heap.empty() || l.heap.front().when >= windowEnd)
        return;
    t_ctx.lane = lane;
    do {
        std::pop_heap(l.heap.begin(), l.heap.end(), LaneAfter{});
        LaneEvent ev = std::move(l.heap.back());
        l.heap.pop_back();
        l.now = ev.when;
        t_ctx.when = ev.when;
        ++l.executed;
        ev.cb();
    } while (!l.heap.empty() && l.heap.front().when < windowEnd);
    t_ctx.lane = -1;
}

void
ParallelEngine::execOneLaneEvent(int lane)
{
    Lane& l = _lanes[lane];
    std::pop_heap(l.heap.begin(), l.heap.end(), LaneAfter{});
    LaneEvent ev = std::move(l.heap.back());
    l.heap.pop_back();
    l.now = ev.when;
    t_ctx.lane = lane;
    t_ctx.when = ev.when;
    ++l.executed;
    ev.cb();
    t_ctx.lane = -1;
}

void
ParallelEngine::runLanes(int w, Tick windowEnd)
{
    for (int lane = w; lane < lanes(); lane += _nthreads)
        drainLane(lane, windowEnd);
}

void
ParallelEngine::workerLoop(int w)
{
    t_ctx.engine = this;
    t_ctx.worker = w;
    std::uint64_t seen = 0;
    for (;;) {
        // Window-stall attribution: host time parked waiting for the
        // next window (includes serial windows and coordinator-side
        // merge work — exactly the serialization the lane-utilization
        // telemetry is after).
        std::chrono::steady_clock::time_point ws{};
        if (_telem)
            ws = std::chrono::steady_clock::now();
        _epoch.wait(seen, std::memory_order_acquire);
        if (_telem) {
            _workers[w]->stallNs += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - ws)
                    .count());
        }
        const std::uint64_t e = _epoch.load(std::memory_order_acquire);
        if (e == seen)
            continue; // spurious wake
        seen = e;
        if (_shutdown.load(std::memory_order_relaxed))
            return;
        try {
            runLanes(w, _windowEnd);
        } catch (...) {
            t_ctx.lane = -1;
            _workers[w]->error = std::current_exception();
        }
        if (_arrivals.fetch_sub(1, std::memory_order_acq_rel) == 1)
            _arrivals.notify_one();
    }
}

void
ParallelEngine::runSerialWindow(Tick windowEnd)
{
    // Windows containing global-queue work run entirely on the
    // coordinator, merging the global queue and the lanes in
    // (tick, global-first, lane-ascending) order — exactly the serial
    // engine's semantics for non-node-local events.
    for (;;) {
        const Tick gt = _gq.nextEventTick();
        int lane = -1;
        const Tick lt = minLaneTick(&lane);
        const Tick next = std::min(gt, lt);
        if (next >= windowEnd)
            return;
        if (gt <= lt)
            _gq.step();
        else
            execOneLaneEvent(lane);
    }
}

void
ParallelEngine::runParallelWindow(Tick windowEnd)
{
    const int spawned = _nthreads - 1;
    if (spawned > 0) {
        _arrivals.store(spawned, std::memory_order_relaxed);
        _epoch.fetch_add(1, std::memory_order_release);
        _epoch.notify_all();
    }
    std::exception_ptr myError;
    try {
        runLanes(0, windowEnd);
    } catch (...) {
        t_ctx.lane = -1;
        myError = std::current_exception();
    }
    // Barrier: wait until every spawned worker has drained its lanes.
    std::chrono::steady_clock::time_point ws{};
    if (_telem)
        ws = std::chrono::steady_clock::now();
    for (;;) {
        const int left = _arrivals.load(std::memory_order_acquire);
        if (left == 0)
            break;
        _arrivals.wait(left, std::memory_order_acquire);
    }
    if (_telem) {
        // Coordinator stall: time spent waiting for the slowest worker
        // at the window barrier (charged to worker slot 0).
        _workers[0]->stallNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - ws)
                .count());
    }
    if (myError)
        std::rethrow_exception(myError);
    for (auto& w : _workers) {
        if (w->error) {
            std::exception_ptr e = w->error;
            w->error = nullptr;
            std::rethrow_exception(e);
        }
    }
}

Tick
ParallelEngine::run()
{
    tt_assert(!_running, "engine run() is not reentrant");
    const TlsCtx saved = t_ctx;
    t_ctx = TlsCtx{this, 0, -1, 0};
    _running = true;
    Tick lastGlobal = _gq.now();
    auto finish = [&] {
        _inFastRun = false;
        _running = false;
        for (auto& f : _finalizers)
            f();
        t_ctx = saved;
    };
    try {
        drainCross(); // pre-run staged lane events
        for (;;) {
            if (!anyLanePending()) {
                if (_gq.empty())
                    break;
                // Pure-global fast path: no lane work anywhere, so the
                // serial queue runs flat out (this is the whole-app
                // path when no subsystem uses lanes). scheduleLane
                // interrupts it via stop() if lane work appears.
                _laneWake = false;
                _inFastRun = true;
                lastGlobal = _gq.run();
                _inFastRun = false;
                if (!_laneWake)
                    break;
                drainCross();
                continue;
            }
            const Tick gt = _gq.nextEventTick();
            const Tick lt = minLaneTick();
            const Tick next = std::min(gt, lt);
            const Tick windowEnd = next >= kTickMax - _lookahead
                                       ? kTickMax
                                       : next + _lookahead;
            _windowEnd = windowEnd;
            ++_windows;
            if (gt < windowEnd) {
                ++_serialWindows;
                runSerialWindow(windowEnd);
                lastGlobal = _gq.now();
            } else {
                runParallelWindow(windowEnd);
            }
            drainCross();
        }
    } catch (...) {
        finish();
        throw;
    }
    Tick last = lastGlobal;
    for (const Lane& l : _lanes)
        if (l.executed && l.now > last)
            last = l.now;
    finish();
    return last;
}

} // namespace tt
