/**
 * @file
 * Sharded discrete-event engine with conservative lookahead
 * (DESIGN.md §12). The simulation is decomposed into per-node event
 * *lanes* plus the original global EventQueue; lanes advance together
 * through lockstep tick-windows sized by the minimum network latency
 * (the classic null-message/window PDES lookahead argument: a lane
 * event at tick t can only affect another lane at t + latency or
 * later, so a window of `lookahead` ticks is causally closed). Within
 * a window each worker thread drains its lanes independently;
 * cross-lane events travel through single-producer/single-consumer
 * mailboxes and are merged at the window barrier.
 *
 * Determinism is thread-count invariant by construction:
 *  - the decomposition is per *lane* (a fixed property of the model),
 *    never per worker, and each lane carries its own enqueue sequence
 *    counter, so (tick, lane, laneSeq) totally orders all lane events;
 *  - cross-lane events are never inserted mid-window: they are staged
 *    in mailboxes, collected at the barrier, sorted by the
 *    thread-independent key (when, srcLane, srcSeq), and only then
 *    assigned destination-lane sequence numbers in that sorted order;
 *  - events that are not provably single-lane (application coroutines,
 *    barriers, locks, transport timers, the watchdog — anything
 *    scheduled on the global EventQueue) retain the serial engine's
 *    exact semantics: any window containing global work is executed
 *    serially on the coordinating thread, merging the global queue and
 *    the lanes in (tick, global-first, lane-ascending) order.
 *
 * The plain EventQueue remains the serial cross-check mode (analogous
 * to EventQueue::Mode::ReferenceHeap): the same workload run through
 * it and through this engine at any thread count must produce
 * identical simulated results, which the tests assert.
 */

#ifndef TT_SIM_PARALLEL_ENGINE_HH
#define TT_SIM_PARALLEL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/small_function.hh"
#include "sim/spsc.hh"
#include "sim/types.hh"

namespace tt
{

class ParallelEngine
{
  public:
    using Callback = SmallFunction;

    /**
     * @param gq        the machine's global EventQueue (not owned);
     *                  events scheduled there stay serially ordered
     * @param lanes     number of event lanes (one per simulated node)
     * @param lookahead window size in ticks; must not exceed the
     *                  minimum cross-lane scheduling distance (the
     *                  minimum network latency)
     * @param threads   worker count; the calling thread is worker 0,
     *                  threads-1 additional threads are spawned
     */
    ParallelEngine(EventQueue& gq, int lanes, Tick lookahead,
                   int threads);

    ParallelEngine(const ParallelEngine&) = delete;
    ParallelEngine& operator=(const ParallelEngine&) = delete;

    ~ParallelEngine();

    int lanes() const { return static_cast<int>(_lanes.size()); }
    int threads() const { return _nthreads; }
    Tick lookahead() const { return _lookahead; }

    /**
     * Schedule @p cb at absolute tick @p when on @p lane. Legal from
     * three contexts with different constraints:
     *  - same-lane (a lane event scheduling on its own lane): any
     *    when >= the lane's current tick;
     *  - cross-lane (a lane event scheduling on another lane): must
     *    land at or beyond the current window's end — the lookahead
     *    contract; staged in the worker's mailbox until the barrier;
     *  - global/coordinator context (before run(), or from an event on
     *    the global queue): staged and merged at the next barrier.
     */
    void scheduleLane(int lane, Tick when, Callback cb);

    /**
     * Drive the simulation until both the global queue and every lane
     * drain. @return the tick of the last executed event.
     */
    Tick run();

    /**
     * Current simulated time in the calling context: the executing
     * lane event's tick on a worker, the global queue's tick
     * otherwise.
     */
    Tick now() const;

    /** True while the calling thread is executing a lane event. */
    bool inLaneContext() const;

    /** Lane of the currently executing lane event, or -1. */
    int currentLane() const;

    /** Events executed by lanes (the global queue counts its own). */
    std::uint64_t laneExecuted() const;

    /** Total events executed: global queue + lanes. */
    std::uint64_t
    executed() const
    {
        return _gq.executed() + laneExecuted();
    }

    /** True when neither the lanes nor the global queue hold events. */
    bool empty() const;

    /**
     * Register a callback invoked (on the coordinating thread, lanes
     * quiesced) at the end of every run() — even one that ended in an
     * exception. Used to fold per-lane stat shards into the shared
     * StatSet.
     */
    void
    addFinalizer(std::function<void()> f)
    {
        _finalizers.push_back(std::move(f));
    }

    // Introspection for tests and the bench harness.
    std::uint64_t windows() const { return _windows; }
    std::uint64_t serialWindows() const { return _serialWindows; }
    std::uint64_t
    parallelWindows() const
    {
        return _windows - _serialWindows;
    }

    /**
     * Enable lane telemetry (DESIGN.md §16): per-worker mailbox
     * high-water marks and barrier-stall time. Call before run();
     * the epoch release/acquire pair publishes the flag to workers.
     * Simulated results are unaffected — only host-side counters are
     * recorded.
     */
    void enableTelemetry() { _telem = true; }

    /** Events executed by one lane (telemetry read-out). */
    std::uint64_t
    laneExecutedAt(int lane) const
    {
        return _lanes.at(static_cast<std::size_t>(lane)).executed;
    }

    /** Max cross-events drained from worker @p w at one barrier. */
    std::uint64_t
    workerDrainHwm(int w) const
    {
        return _workers.at(static_cast<std::size_t>(w))->drainHwm;
    }

    /**
     * Host ns worker @p w spent parked: at the epoch wait for spawned
     * workers, at the arrival barrier for the coordinator (w == 0).
     * Host-time measurement — nondeterministic, excluded from
     * determinism comparisons.
     */
    std::uint64_t
    workerStallNs(int w) const
    {
        return _workers.at(static_cast<std::size_t>(w))->stallNs;
    }

  private:
    struct LaneEvent
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Min-heap comparator on (when, seq). */
    struct LaneAfter
    {
        bool
        operator()(const LaneEvent& a, const LaneEvent& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One event lane. Everything here is touched only by the lane's
     * owning worker inside a window and only by the coordinator at
     * barriers (synchronized through the epoch/arrival atomics);
     * alignment keeps adjacent lanes off each other's cache lines.
     */
    struct alignas(64) Lane
    {
        std::vector<LaneEvent> heap;
        Tick now = 0;
        std::uint64_t nextSeq = 0; ///< enqueue order within the lane
        std::uint64_t outSeq = 0;  ///< order of cross-lane emissions
        std::uint64_t executed = 0;
    };

    /** A staged cross-lane (or global-context) schedule request. */
    struct CrossEvent
    {
        Tick when = 0;
        std::int32_t srcLane = 0; ///< kGlobalSrc for coordinator ctx
        std::int32_t dstLane = 0;
        std::uint64_t srcSeq = 0;
        Callback cb;
    };

    static constexpr std::int32_t kGlobalSrc = -1;

    struct Worker
    {
        SpscChannel<CrossEvent> outbox;
        std::exception_ptr error;
        std::thread th; ///< empty for worker 0 (the coordinator)
        // Telemetry (DESIGN.md §16). drainHwm is written only by the
        // coordinator at barriers; stallNs only by the owning thread
        // between barriers — the epoch/arrival atomics order both
        // against the post-run read.
        std::uint64_t drainHwm = 0;
        std::uint64_t stallNs = 0;
    };

    void workerLoop(int w);
    void runLanes(int w, Tick windowEnd);
    void drainLane(int lane, Tick windowEnd);
    void execOneLaneEvent(int lane);
    void runSerialWindow(Tick windowEnd);
    void runParallelWindow(Tick windowEnd);
    void drainCross();
    void pushLane(Lane& lane, Tick when, Callback cb);
    bool anyLanePending() const;
    Tick minLaneTick(int* lane = nullptr) const;

    EventQueue& _gq;
    const Tick _lookahead;
    int _nthreads;
    std::vector<Lane> _lanes;
    std::vector<std::unique_ptr<Worker>> _workers;

    // Coordinator-only state.
    std::vector<CrossEvent> _staged;   ///< global-context schedules
    std::vector<CrossEvent> _crossBuf; ///< barrier merge scratch
    std::uint64_t _globalOutSeq = 0;
    std::vector<std::function<void()>> _finalizers;
    bool _running = false;
    bool _telem = false;     ///< lane telemetry on (DESIGN.md §16)
    bool _inFastRun = false; ///< inside the pure-global _gq.run() path
    bool _laneWake = false;  ///< lane work appeared during fast run
    std::uint64_t _windows = 0;
    std::uint64_t _serialWindows = 0;

    // Written by the coordinator before it publishes an epoch (the
    // epoch release/acquire pair orders it), read by workers.
    Tick _windowEnd = 0;

    // Window hand-off: the coordinator bumps _epoch to release the
    // workers, each worker decrements _arrivals when its lanes are
    // drained, and the coordinator waits for zero.
    std::atomic<std::uint64_t> _epoch{0};
    std::atomic<int> _arrivals{0};
    std::atomic<bool> _shutdown{false};
};

} // namespace tt

#endif // TT_SIM_PARALLEL_ENGINE_HH
