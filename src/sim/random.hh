/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic model component (random cache replacement, workload
 * generators) owns its own Rng seeded from the machine seed, so results
 * are bit-reproducible regardless of module execution order.
 */

#ifndef TT_SIM_RANDOM_HH
#define TT_SIM_RANDOM_HH

#include <cstdint>

namespace tt
{

/**
 * xoshiro256** generator with a SplitMix64 seeder. Small, fast, and
 * high quality; good enough for replacement policies and synthetic
 * workloads.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1995'0421'beefcafeULL)
    {
        // SplitMix64 expansion of the seed into four lanes.
        std::uint64_t x = seed;
        for (auto& lane : _s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            lane = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace tt

#endif // TT_SIM_RANDOM_HH
