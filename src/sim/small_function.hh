/**
 * @file
 * A move-only, small-buffer-optimized `void()` callable for event
 * closures. The simulator schedules millions of short-lived lambdas
 * whose captures (a `this` pointer, a tick or two, often a Message by
 * value) fit comfortably inline; std::function's small-buffer window
 * (16 bytes on libstdc++) forces a heap allocation per event. This
 * type keeps kInlineSize bytes of in-object storage so the hot
 * capture sizes in network.hh, typhoon_mem_system.cc, and stache.cc
 * never touch the allocator; larger captures transparently spill to
 * the heap.
 */

#ifndef TT_SIM_SMALL_FUNCTION_HH
#define TT_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tt
{

/**
 * Type-erased move-only `void()` callable with a large inline buffer.
 *
 * Dispatch goes through a static per-type vtable (invoke / relocate /
 * destroy) rather than a virtual base, so an engaged SmallFunction is
 * exactly the buffer plus one pointer and relocation of inline
 * targets is a move-construct + destroy pair (noexcept-move targets
 * only; throwing-move types go to the heap where relocation is a
 * pointer copy).
 */
class SmallFunction
{
  public:
    /** In-object storage; sized for a captured Message plus change. */
    static constexpr std::size_t kInlineSize = 120;

    SmallFunction() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunction> &&
                  std::is_invocable_r_v<void, D&>>>
    SmallFunction(F&& f)
    {
        construct<D>(std::forward<F>(f));
    }

    SmallFunction(SmallFunction&& o) noexcept { moveFrom(o); }

    SmallFunction&
    operator=(SmallFunction&& o) noexcept
    {
        if (this != &o) {
            destroy();
            moveFrom(o);
        }
        return *this;
    }

    SmallFunction(const SmallFunction&) = delete;
    SmallFunction& operator=(const SmallFunction&) = delete;

    ~SmallFunction() { destroy(); }

    explicit operator bool() const { return _vt != nullptr; }

    void
    operator()()
    {
        _vt->invoke(_buf);
    }

  private:
    struct VTable
    {
        void (*invoke)(void* storage);
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* storage) noexcept;
    };

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= kInlineSize &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    struct InlineOps
    {
        static void
        invoke(void* storage)
        {
            (*std::launder(reinterpret_cast<D*>(storage)))();
        }

        static void
        relocate(void* dst, void* src) noexcept
        {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        }

        static void
        destroy(void* storage) noexcept
        {
            std::launder(reinterpret_cast<D*>(storage))->~D();
        }

        static constexpr VTable vt{invoke, relocate, destroy};
    };

    template <typename D>
    struct HeapOps
    {
        static D*&
        slot(void* storage)
        {
            return *std::launder(reinterpret_cast<D**>(storage));
        }

        static void invoke(void* storage) { (*slot(storage))(); }

        static void
        relocate(void* dst, void* src) noexcept
        {
            ::new (dst) (D*)(slot(src));
        }

        static void destroy(void* storage) noexcept { delete slot(storage); }

        static constexpr VTable vt{invoke, relocate, destroy};
    };

    template <typename D, typename F>
    void
    construct(F&& f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void*>(_buf)) D(std::forward<F>(f));
            _vt = &InlineOps<D>::vt;
        } else {
            ::new (static_cast<void*>(_buf)) (D*)(
                new D(std::forward<F>(f)));
            _vt = &HeapOps<D>::vt;
        }
    }

    void
    moveFrom(SmallFunction& o) noexcept
    {
        _vt = o._vt;
        if (_vt) {
            _vt->relocate(_buf, o._buf);
            o._vt = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (_vt) {
            _vt->destroy(_buf);
            _vt = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[kInlineSize];
    const VTable* _vt = nullptr;
};

} // namespace tt

#endif // TT_SIM_SMALL_FUNCTION_HH
