/**
 * @file
 * A small-buffer-optimized vector for message payloads. Active
 * messages carry at most a handful of argument words and one cache
 * block of data, so storing them in std::vector meant two heap
 * allocations per Message — per miss, per invalidation, per ack. A
 * SmallVec keeps up to N elements in-object and only spills to the
 * heap for oversized payloads (128-byte-block configs, bulk-transfer
 * chunks).
 *
 * Only the slice of the std::vector interface that Message and its
 * users need is provided; elements must be trivially copyable, which
 * Word and std::uint8_t are.
 */

#ifndef TT_SIM_SMALL_VEC_HH
#define TT_SIM_SMALL_VEC_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace tt
{

/**
 * Inline-storage vector of trivially copyable elements. Capacity N
 * lives inside the object; growth beyond N moves to a heap buffer.
 */
template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec requires trivially copyable elements");
    static_assert(N > 0, "SmallVec needs inline capacity");

  public:
    using value_type = T;

    SmallVec() = default;

    SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

    template <typename It,
              typename = std::enable_if_t<!std::is_integral_v<It>>>
    SmallVec(It first, It last)
    {
        assign(first, last);
    }

    SmallVec(const SmallVec& o) { assign(o.begin(), o.end()); }

    SmallVec(SmallVec&& o) noexcept { stealFrom(o); }

    SmallVec&
    operator=(const SmallVec& o)
    {
        if (this != &o)
            assign(o.begin(), o.end());
        return *this;
    }

    SmallVec&
    operator=(SmallVec&& o) noexcept
    {
        if (this != &o) {
            releaseHeap();
            stealFrom(o);
        }
        return *this;
    }

    SmallVec&
    operator=(std::initializer_list<T> init)
    {
        assign(init.begin(), init.end());
        return *this;
    }

    ~SmallVec() { releaseHeap(); }

    T* data() { return _data; }
    const T* data() const { return _data; }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _cap; }

    T* begin() { return _data; }
    T* end() { return _data + _size; }
    const T* begin() const { return _data; }
    const T* end() const { return _data + _size; }

    T& operator[](std::size_t i) { return _data[i]; }
    const T& operator[](std::size_t i) const { return _data[i]; }

    T&
    at(std::size_t i)
    {
        tt_assert(i < _size, "SmallVec::at out of range: ", i);
        return _data[i];
    }

    const T&
    at(std::size_t i) const
    {
        tt_assert(i < _size, "SmallVec::at out of range: ", i);
        return _data[i];
    }

    T& back() { return _data[_size - 1]; }
    const T& back() const { return _data[_size - 1]; }

    void
    push_back(const T& v)
    {
        if (_size == _cap)
            grow(_size + 1);
        _data[_size++] = v;
    }

    /** Resize; new elements (if any) are value-initialized. */
    void
    resize(std::size_t n)
    {
        if (n > _cap)
            grow(n);
        if (n > _size)
            std::memset(_data + _size, 0, (n - _size) * sizeof(T));
        _size = n;
    }

    void clear() { _size = 0; }

    void
    assign(std::size_t n, const T& v)
    {
        if (n > _cap)
            grow(n);
        std::fill_n(_data, n, v);
        _size = n;
    }

    template <typename It,
              typename = std::enable_if_t<!std::is_integral_v<It>>>
    void
    assign(It first, It last)
    {
        const auto n = static_cast<std::size_t>(std::distance(first, last));
        if (n > _cap)
            grow(n);
        std::copy(first, last, _data);
        _size = n;
    }

    friend bool
    operator==(const SmallVec& a, const SmallVec& b)
    {
        return a._size == b._size &&
               std::equal(a.begin(), a.end(), b.begin());
    }

  private:
    bool onHeap() const { return _data != inlineData(); }

    T* inlineData() { return reinterpret_cast<T*>(_inline); }
    const T* inlineData() const
    {
        return reinterpret_cast<const T*>(_inline);
    }

    void
    grow(std::size_t need)
    {
        std::size_t cap = _cap * 2;
        if (cap < need)
            cap = need;
        T* buf = new T[cap];
        std::memcpy(buf, _data, _size * sizeof(T));
        releaseHeap();
        _data = buf;
        _cap = cap;
    }

    void
    releaseHeap() noexcept
    {
        if (onHeap())
            delete[] _data;
    }

    /** Take o's contents; o is left empty. Caller owns no heap. */
    void
    stealFrom(SmallVec& o) noexcept
    {
        if (o.onHeap()) {
            _data = o._data;
            _cap = o._cap;
            _size = o._size;
        } else {
            _data = inlineData();
            _cap = N;
            _size = o._size;
            std::memcpy(_inline, o._inline, o._size * sizeof(T));
        }
        o._data = o.inlineData();
        o._cap = N;
        o._size = 0;
    }

    alignas(T) unsigned char _inline[N * sizeof(T)];
    T* _data = inlineData();
    std::size_t _size = 0;
    std::size_t _cap = N;
};

} // namespace tt

#endif // TT_SIM_SMALL_VEC_HH
