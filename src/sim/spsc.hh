/**
 * @file
 * Unbounded single-producer/single-consumer channel (DESIGN.md §12).
 * The parallel engine's cross-shard mailboxes: one worker thread
 * appends staged cross-lane events, the coordinating thread drains
 * them at the window barrier. The hot path is lock-free — a chunked
 * linked list where the producer publishes with one release store per
 * push and the consumer acquires it; no CAS, no shared indices.
 *
 * Memory reclamation is safe without hazard pointers because of the
 * SPSC discipline: the producer only abandons a chunk after linking
 * its successor (release), and the consumer only frees a chunk after
 * observing that successor (acquire) and fully draining the chunk —
 * at which point the producer can never touch it again.
 */

#ifndef TT_SIM_SPSC_HH
#define TT_SIM_SPSC_HH

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

namespace tt
{

template <typename T>
class SpscChannel
{
  public:
    SpscChannel() : _head(new Chunk), _tail(_head) {}

    SpscChannel(const SpscChannel&) = delete;
    SpscChannel& operator=(const SpscChannel&) = delete;

    /** Destruction requires both sides quiesced (no concurrent access). */
    ~SpscChannel()
    {
        Chunk* c = _head;
        std::uint32_t i = _consumed;
        while (c) {
            const std::uint32_t pub =
                c->published.load(std::memory_order_relaxed);
            for (; i < pub; ++i)
                c->slot(i)->~T();
            Chunk* n = c->next.load(std::memory_order_relaxed);
            delete c;
            c = n;
            i = 0;
        }
    }

    /** Producer side only. */
    void
    push(T v)
    {
        if (_written == kChunkCap) {
            Chunk* fresh = new Chunk;
            // Publish the link before moving off the old chunk; the
            // consumer frees the old chunk only after seeing this.
            _tail->next.store(fresh, std::memory_order_release);
            _tail = fresh;
            _written = 0;
        }
        new (_tail->slot(_written)) T(std::move(v));
        _tail->published.store(_written + 1, std::memory_order_release);
        ++_written;
    }

    /**
     * Consumer side only. @return false when no published element is
     * visible (the producer may still be mid-push).
     */
    bool
    tryPop(T* out)
    {
        for (;;) {
            Chunk* c = _head;
            const std::uint32_t pub =
                c->published.load(std::memory_order_acquire);
            if (_consumed < pub) {
                T* s = c->slot(_consumed);
                *out = std::move(*s);
                s->~T();
                ++_consumed;
                return true;
            }
            if (_consumed < kChunkCap)
                return false; // current chunk not yet full: truly empty
            Chunk* n = c->next.load(std::memory_order_acquire);
            if (!n)
                return false; // producer has not linked the next chunk
            _head = n;
            _consumed = 0;
            delete c;
        }
    }

  private:
    static constexpr std::uint32_t kChunkCap = 128;

    struct Chunk
    {
        alignas(T) unsigned char storage[kChunkCap * sizeof(T)];
        /** Producer-release count of constructed slots (0..kChunkCap). */
        std::atomic<std::uint32_t> published{0};
        std::atomic<Chunk*> next{nullptr};

        T* slot(std::uint32_t i)
        {
            return std::launder(
                reinterpret_cast<T*>(storage + i * sizeof(T)));
        }
    };

    // Consumer-owned cursor.
    Chunk* _head;
    std::uint32_t _consumed = 0;
    // Producer-owned cursor.
    Chunk* _tail;
    std::uint32_t _written = 0;
};

} // namespace tt

#endif // TT_SIM_SPSC_HH
