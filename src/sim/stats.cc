#include "sim/stats.hh"

#include <cstdio>
#include <fstream>
#include <iomanip>

namespace tt
{

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [name, c] : _counters)
        os << std::left << std::setw(48) << name << c.value() << "\n";
    for (const auto& [name, a] : _averages) {
        os << std::left << std::setw(48) << name << "mean=" << a.mean()
           << " n=" << a.count() << " min=" << a.min()
           << " max=" << a.max() << "\n";
    }
    for (const auto& [name, h] : _histograms) {
        os << std::left << std::setw(48) << name
           << "mean=" << h.summary().mean()
           << " n=" << h.summary().count()
           << " overflow=" << h.overflow() << "\n";
    }
}

namespace
{

void
jsonString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            os << '\\';
        os << ch;
    }
    os << '"';
}

void
jsonNumber(std::ostream& os, double v)
{
    // JSON has no NaN/Infinity literals; "%.17g" would print "nan" or
    // "inf" and corrupt the document. Emit null so consumers see a
    // well-formed value they can test for.
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

void
jsonAverageBody(std::ostream& os, const Average& a)
{
    os << "{\"mean\": ";
    jsonNumber(os, a.mean());
    os << ", \"count\": " << a.count();
    os << ", \"min\": ";
    jsonNumber(os, a.min());
    os << ", \"max\": ";
    jsonNumber(os, a.max());
    os << ", \"variance\": ";
    jsonNumber(os, a.variance());
    os << ", \"stddev\": ";
    jsonNumber(os, a.stddev());
    os << "}";
}

} // namespace

void
StatSet::writeJson(std::ostream& os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : _counters) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        jsonString(os, name);
        os << ": " << c.value();
    }
    os << (first ? "}" : "\n  }") << ",\n  \"averages\": {";
    first = true;
    for (const auto& [name, a] : _averages) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        jsonString(os, name);
        os << ": ";
        jsonAverageBody(os, a);
    }
    os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : _histograms) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        jsonString(os, name);
        os << ": {\"width\": ";
        jsonNumber(os, h.width());
        os << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets().size(); ++i)
            os << (i ? ", " : "") << h.buckets()[i];
        os << "], \"underflow\": " << h.underflow();
        os << ", \"overflow\": " << h.overflow();
        os << ", \"summary\": ";
        jsonAverageBody(os, h.summary());
        os << "}";
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
}

bool
StatSet::writeJsonFile(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f);
    return f.good();
}

void
StatSet::reset()
{
    for (auto& [name, c] : _counters)
        c.reset();
    for (auto& [name, a] : _averages)
        a.reset();
    for (auto& [name, h] : _histograms)
        h.reset();
}

} // namespace tt
