#include "sim/stats.hh"

#include <iomanip>

namespace tt
{

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [name, c] : _counters)
        os << std::left << std::setw(48) << name << c.value() << "\n";
    for (const auto& [name, a] : _averages) {
        os << std::left << std::setw(48) << name << "mean=" << a.mean()
           << " n=" << a.count() << " min=" << a.min()
           << " max=" << a.max() << "\n";
    }
    for (const auto& [name, h] : _histograms) {
        os << std::left << std::setw(48) << name
           << "mean=" << h.summary().mean()
           << " n=" << h.summary().count()
           << " overflow=" << h.overflow() << "\n";
    }
}

void
StatSet::reset()
{
    for (auto& [name, c] : _counters)
        c.reset();
    for (auto& [name, a] : _averages)
        a.reset();
    for (auto& [name, h] : _histograms)
        h.reset();
}

} // namespace tt
