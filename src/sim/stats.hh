/**
 * @file
 * Lightweight named-statistics registry, in the spirit of gem5's stats
 * package. Components register scalar counters, averages, and
 * histograms under hierarchical dotted names; a StatSet can be dumped
 * as text or queried programmatically by tests and benches.
 */

#ifndef TT_SIM_STATS_HH
#define TT_SIM_STATS_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tt
{

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1) { _value += delta; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }
    /** Restore a checkpointed value (recovery only). */
    void set(std::uint64_t v) { _value = v; }

  private:
    std::uint64_t _value = 0;
};

/** Running sample mean/min/max/variance over observed values. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        if (v < _min || _count == 1)
            _min = v;
        if (v > _max || _count == 1)
            _max = v;
        // Welford update for the second moment. mean() stays _sum/_count
        // so pre-existing consumers see bit-identical values.
        const double d1 = v - _wmean;
        _wmean += d1 / _count;
        _m2 += d1 * (v - _wmean);
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double min() const { return _min; }
    double max() const { return _max; }

    /** Unbiased (n-1) sample variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        return _count > 1 ? _m2 / static_cast<double>(_count - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        _sum = 0;
        _count = 0;
        _min = 0;
        _max = 0;
        _wmean = 0;
        _m2 = 0;
    }

    /**
     * Full internal state, at native precision, for checkpointing.
     * mean()/variance() are derived quantities; restoring anything
     * less than (_sum, _count, _min, _max, _wmean, _m2) would break
     * the bit-identical-continuation guarantee.
     */
    struct State
    {
        double sum = 0;
        std::uint64_t count = 0;
        double min = 0;
        double max = 0;
        double wmean = 0;
        double m2 = 0;
    };

    State
    state() const
    {
        return {_sum, _count, _min, _max, _wmean, _m2};
    }

    void
    setState(const State& s)
    {
        _sum = s.sum;
        _count = s.count;
        _min = s.min;
        _max = s.max;
        _wmean = s.wmean;
        _m2 = s.m2;
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = 0;
    double _max = 0;
    double _wmean = 0;
    double _m2 = 0;
};

/**
 * Fixed-width linear histogram with underflow and overflow buckets.
 *
 * Bucket i counts samples in the half-open interval
 * [i*width, (i+1)*width): a value exactly on a boundary always lands
 * in the bucket *starting* at that boundary. Negative samples go to
 * the underflow count, samples at or above buckets*width go to the
 * overflow count; both still contribute to summary(). Boundary
 * comparisons are made against i*width computed in double, so the
 * placement is deterministic even when v/width rounds across a bucket
 * edge (e.g. 0.3/0.1 == 2.999...96).
 */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t buckets = 32)
        : _width(bucket_width), _buckets(buckets, 0)
    {
        tt_assert(bucket_width > 0 && buckets > 0,
                  "bad histogram configuration");
    }

    void
    sample(double v)
    {
        // Non-finite samples have no bucket, and casting NaN/Inf to an
        // index below is undefined behaviour. Count them as underflow
        // and keep them out of the summary so mean/min/max stay
        // meaningful (a single NaN would otherwise poison all three).
        if (!std::isfinite(v)) {
            ++_underflow;
            return;
        }
        _avg.sample(v);
        if (v < 0) {
            ++_underflow;
            return;
        }
        auto idx = static_cast<std::size_t>(v / _width);
        // Correct FP rounding in the division against the actual
        // bucket boundaries so [i*w, (i+1)*w) holds exactly.
        if (idx > 0 && v < static_cast<double>(idx) * _width)
            --idx;
        else if (v >= static_cast<double>(idx + 1) * _width)
            ++idx;
        if (idx >= _buckets.size())
            ++_overflow;
        else
            ++_buckets[idx];
    }

    const std::vector<std::uint64_t>& buckets() const { return _buckets; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t underflow() const { return _underflow; }
    double width() const { return _width; }
    std::size_t bucketCount() const { return _buckets.size(); }
    const Average& summary() const { return _avg; }

    void
    reset()
    {
        for (auto& b : _buckets)
            b = 0;
        _overflow = 0;
        _underflow = 0;
        _avg.reset();
    }

    /** Checkpoint restore: bucket counts + summary state. */
    void
    setState(const std::vector<std::uint64_t>& buckets,
             std::uint64_t underflow, std::uint64_t overflow,
             const Average::State& summary)
    {
        tt_assert(buckets.size() == _buckets.size(),
                  "histogram restore shape mismatch");
        _buckets = buckets;
        _underflow = underflow;
        _overflow = overflow;
        _avg.setState(summary);
    }

  private:
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _overflow = 0;
    std::uint64_t _underflow = 0;
    Average _avg;
};

/**
 * A registry of named statistics. Components ask for counters by name;
 * repeated requests return the same object, so parallel components can
 * share aggregate stats or use per-node name prefixes.
 */
class StatSet
{
  public:
    Counter& counter(const std::string& name) { return _counters[name]; }
    Average& average(const std::string& name) { return _averages[name]; }

    Histogram&
    histogram(const std::string& name, double width = 1.0,
              std::size_t buckets = 32)
    {
        auto it = _histograms.find(name);
        if (it == _histograms.end()) {
            it = _histograms
                     .emplace(name, Histogram(width, buckets))
                     .first;
        }
        return it->second;
    }

    /** Look up a counter value; 0 if never registered. */
    std::uint64_t
    get(const std::string& name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second.value();
    }

    bool
    hasCounter(const std::string& name) const
    {
        return _counters.count(name) != 0;
    }

    /** Dump everything, sorted by name, one stat per line. */
    void dump(std::ostream& os) const;

    /**
     * Dump everything as JSON with stable key order (the underlying
     * maps are name-sorted): counters as integers, averages with
     * mean/count/min/max/variance/stddev, histograms with width,
     * bucket array, and underflow/overflow counts.
     */
    void writeJson(std::ostream& os) const;
    bool writeJsonFile(const std::string& path) const;

    const std::map<std::string, Counter>& counters() const
    {
        return _counters;
    }
    const std::map<std::string, Average>& averages() const
    {
        return _averages;
    }
    const std::map<std::string, Histogram>& histograms() const
    {
        return _histograms;
    }

    // Mutable views for checkpoint restore (src/recovery). Restoring
    // matches stats by name; both sides of a restore assemble the
    // identical machine, so the key sets agree (asserted there).
    std::map<std::string, Counter>& mutableCounters()
    {
        return _counters;
    }
    std::map<std::string, Average>& mutableAverages()
    {
        return _averages;
    }
    std::map<std::string, Histogram>& mutableHistograms()
    {
        return _histograms;
    }

    void reset();

  private:
    std::map<std::string, Counter> _counters;
    std::map<std::string, Average> _averages;
    std::map<std::string, Histogram> _histograms;
};

} // namespace tt

#endif // TT_SIM_STATS_HH
