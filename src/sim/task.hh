/**
 * @file
 * C++20 coroutine plumbing for execution-driven simulation.
 *
 * Application code for the simulated machine is written as ordinary
 * C++ algorithms in coroutines returning Task<T>. Awaiting a Task uses
 * symmetric transfer, so arbitrarily deep call chains (e.g. recursive
 * Barnes-Hut tree walks) run without growing the native stack.
 *
 * A Task is lazy and single-shot: it starts when first awaited and
 * resumes its awaiter when it completes. The root of each simulated
 * processor's call tree is driven by spawnDetached(), which hands
 * completion (or a captured exception) to a callback.
 */

#ifndef TT_SIM_TASK_HH
#define TT_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "sim/logging.hh"

namespace tt
{

template <typename T>
class Task;

namespace coro_detail
{

struct PromiseBase
{
    std::coroutine_handle<> continuation = std::noop_coroutine();
    std::exception_ptr exception;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            // Symmetric transfer back to whoever awaited us.
            return h.promise().continuation;
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase
{
    // Storage for the result; T must be default-constructible or we
    // could use aligned storage — default-constructible is fine for
    // the simulator's value types.
    T value{};

    Task<T> get_return_object();

    template <typename U>
    void
    return_value(U&& v)
    {
        value = std::forward<U>(v);
    }
};

template <>
struct Promise<void> : PromiseBase
{
    Task<void> get_return_object();
    void return_void() {}
};

} // namespace coro_detail

/**
 * A lazily-started coroutine returning T. Await it exactly once.
 */
template <typename T>
class [[nodiscard]] Task
{
  public:
    using promise_type = coro_detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : _h(h) {}

    Task(Task&& o) noexcept : _h(std::exchange(o._h, nullptr)) {}

    Task&
    operator=(Task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, nullptr);
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    ~Task() { destroy(); }

    bool valid() const { return _h != nullptr; }
    bool done() const { return _h && _h.done(); }

    /**
     * Start a lazy task from its initial suspend point without
     * awaiting it: the continuation stays the noop coroutine, so when
     * the task completes (or suspends) control simply returns to the
     * resumer. The owner observes completion via done() and a captured
     * exception via error(). Unlike spawnDetached(), the frame stays
     * owned by this Task, so destroying the Task cancels the whole
     * suspended call tree — the recovery rollback relies on this.
     */
    void
    start()
    {
        tt_assert(_h && !_h.done(), "Task::start of finished task");
        _h.resume();
    }

    /** Exception captured by the task body, if any (else nullptr). */
    std::exception_ptr
    error() const
    {
        return _h ? _h.promise().exception : nullptr;
    }

    /** Awaiter implementing symmetric transfer into the child task. */
    struct Awaiter
    {
        Handle h;

        bool await_ready() const noexcept { return !h || h.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> awaiting) noexcept
        {
            h.promise().continuation = awaiting;
            return h;
        }

        T
        await_resume()
        {
            auto& p = h.promise();
            if (p.exception)
                std::rethrow_exception(p.exception);
            if constexpr (!std::is_void_v<T>)
                return std::move(p.value);
        }
    };

    Awaiter
    operator co_await() const& noexcept
    {
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = nullptr;
        }
    }

    Handle _h = nullptr;
};

namespace coro_detail
{

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

/**
 * Fire-and-forget driver coroutine; the frame self-destructs on
 * completion because final_suspend never suspends.
 */
struct Detached
{
    struct promise_type
    {
        Detached get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };
};

inline Detached
drive(Task<void> t, std::function<void(std::exception_ptr)> done)
{
    std::exception_ptr ep;
    try {
        co_await t;
    } catch (...) {
        ep = std::current_exception();
    }
    done(ep);
}

} // namespace coro_detail

/**
 * Start @p t immediately (on the current native stack) and invoke
 * @p done when it finishes — with the captured exception, if any.
 * Ownership of the task moves into the driver frame.
 */
inline void
spawnDetached(Task<void> t, std::function<void(std::exception_ptr)> done)
{
    coro_detail::drive(std::move(t), std::move(done));
}

} // namespace tt

#endif // TT_SIM_TASK_HH
