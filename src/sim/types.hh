/**
 * @file
 * Fundamental scalar types shared by every subsystem of the
 * Tempest/Typhoon simulator.
 */

#ifndef TT_SIM_TYPES_HH
#define TT_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace tt
{

/** Simulated time, in target processor cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Virtual address in the simulated (per-process, SPMD) address space. */
using Addr = std::uint64_t;

/** Physical address within one node's local memory. */
using PAddr = std::uint64_t;

/** Identity of a processing node (CPU + NP + memory). */
using NodeId = std::int32_t;

/** Sentinel node id: "no node" / "let the system choose". */
constexpr NodeId kNoNode = -1;

/** A 32-bit network/NP word, matching the CM-5-style network. */
using Word = std::uint32_t;

} // namespace tt

#endif // TT_SIM_TYPES_HH
