/**
 * @file
 * Progress watchdog (DESIGN.md §10). Under an unreliable network a
 * wedged protocol no longer reliably drains the event queue (the
 * reliable transport's retransmission timers can tick forever), so
 * Machine::run's drained-queue deadlock panic is not enough. The
 * watchdog periodically probes for the oldest still-open operation
 * (suspended miss, pending BAF, unacked transport message) and fails
 * fast — with a WatchdogTimeout the campaign runner can catch, after
 * an on-trip callback that dumps the flight-recorder tail — when one
 * has been open past a configurable horizon, or when the queue has no
 * events left that could ever close it.
 *
 * The watchdog is opt-in and lives entirely off the hot path: nothing
 * references it unless a builder arms it, and its periodic check is
 * one probe call every horizon/4 ticks.
 *
 * Parallel-engine contract (DESIGN.md §12): the watchdog's own check
 * events live on the global queue, but its probes must still be safe
 * to run while engine lanes own the probed subsystems' state. Every
 * shipped probe (ReliableTransport::oldestUnackedSince,
 * {Typhoon,Dir}MemSystem::oldestPendingSince) therefore reads only
 * relaxed-atomic snapshot cells maintained O(1) at the mutation
 * sites, never the underlying windows/maps — wait-free, identical
 * values, no behavior change in serial mode.
 */

#ifndef TT_SIM_WATCHDOG_HH
#define TT_SIM_WATCHDOG_HH

#include <functional>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/** Thrown out of EventQueue::run() when the watchdog trips. */
struct WatchdogTimeout : std::runtime_error
{
    WatchdogTimeout(Tick oldest_, Tick now_)
        : std::runtime_error(
              "watchdog: no progress — operation open since tick " +
              std::to_string(oldest_) + ", now " + std::to_string(now_)),
          oldest(oldest_),
          now(now_)
    {
    }

    Tick oldest; ///< tick the oldest stalled operation opened at
    Tick now;    ///< tick the watchdog tripped at
};

class Watchdog
{
  public:
    /**
     * @return the tick at which the oldest still-open operation
     * started, or kTickMax when nothing is pending.
     */
    using Probe = std::function<Tick()>;

    /** Invoked once just before WatchdogTimeout is thrown. */
    using TripFn = std::function<void(Tick oldest, Tick now)>;

    Watchdog(EventQueue& eq, Tick horizon, Probe probe,
             TripFn onTrip = {})
        : _eq(eq),
          _horizon(horizon),
          _period(std::max<Tick>(1, horizon / 4)),
          _probe(std::move(probe)),
          _onTrip(std::move(onTrip))
    {
        tt_assert(horizon > 0, "watchdog horizon must be > 0");
    }

    Tick horizon() const { return _horizon; }
    std::uint64_t trips() const { return _trips; }

    /** Schedule the first check; call once, before the run. */
    void
    arm()
    {
        _eq.schedule(_eq.now() + _period, [this] { check(); });
    }

  private:
    void
    check()
    {
        const Tick oldest = _probe();
        if (oldest != kTickMax) {
            // Trip on age — or immediately when no event remains that
            // could ever complete the operation (the queue would
            // otherwise drain into Machine::run's deadlock panic with
            // no forensics). pending() excludes this running event.
            const bool tooOld =
                _eq.now() >= oldest && _eq.now() - oldest >= _horizon;
            if (tooOld || _eq.empty()) {
                ++_trips;
                if (_onTrip)
                    _onTrip(oldest, _eq.now());
                throw WatchdogTimeout(oldest, _eq.now());
            }
        }
        // Keep watching while anything else is scheduled; once the
        // queue is otherwise empty with nothing open, the run is over
        // and rescheduling would keep it alive artificially.
        if (!_eq.empty())
            _eq.schedule(_eq.now() + _period, [this] { check(); });
    }

    EventQueue& _eq;
    Tick _horizon;
    Tick _period;
    Probe _probe;
    TripFn _onTrip;
    std::uint64_t _trips = 0;
};

} // namespace tt

#endif // TT_SIM_WATCHDOG_HH
