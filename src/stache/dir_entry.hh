/**
 * @file
 * The Stache software directory entry — bit-faithful to section 3:
 * 64 bits per block, "two bytes for state and six one-byte pointers.
 * If more than six pointers are required, the current implementation
 * uses the first four pointers as a bit vector. For systems larger
 * than 32 nodes, the four node pointers contain the address of a
 * larger auxiliary data structure."
 *
 * Layout of the 64-bit word:
 *   bits 63..48  state halfword:
 *     63..62  stable state (Idle / Shared / Excl)
 *     61      bit-vector mode
 *     60      aux-structure mode
 *     59..48  sharer count (pointer/bitvec modes) or owner id (Excl)
 *   bits 47..0  six 8-bit pointers (pointer mode),
 *               or bits 31..0 = sharer bit vector (bitvec mode),
 *               or bits 31..0 = aux structure index (aux mode)
 */

#ifndef TT_STACHE_DIR_ENTRY_HH
#define TT_STACHE_DIR_ENTRY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dir/node_set.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tt
{

/** Side table for entries that overflow the inline formats. */
struct StacheAuxTable
{
    std::unordered_map<std::uint32_t, NodeSet> sets;
    std::uint32_t next = 1;
};

class StacheDirEntry
{
  public:
    enum class State : std::uint8_t { Idle = 0, Shared = 1, Excl = 2 };

    StacheDirEntry() = default;

    /** Raw 64-bit image (tests assert on the packing). */
    std::uint64_t raw() const { return _bits; }

    State
    state() const
    {
        return static_cast<State>(_bits >> 62);
    }

    bool bitvecMode() const { return (_bits >> 61) & 1; }
    bool auxMode() const { return (_bits >> 60) & 1; }

    /** Owner node (Excl state only). */
    NodeId
    owner() const
    {
        tt_assert(state() == State::Excl, "owner() on non-Excl entry");
        return static_cast<NodeId>((_bits >> 48) & 0xFFF);
    }

    /** Become exclusively owned by @p n; drops all sharer info. */
    void
    setExcl(NodeId n, StacheAuxTable& aux)
    {
        releaseAux(aux);
        _bits = (std::uint64_t{2} << 62) |
                ((static_cast<std::uint64_t>(n) & 0xFFF) << 48);
    }

    /** Become Idle (home-only); drops all sharer info. */
    void
    setIdle(StacheAuxTable& aux)
    {
        releaseAux(aux);
        _bits = 0;
    }

    int
    sharerCount(const StacheAuxTable& aux) const
    {
        if (state() != State::Shared)
            return 0;
        if (auxMode())
            return auxSet(aux).count();
        return static_cast<int>((_bits >> 48) & 0xFFF);
    }

    /**
     * Add @p n as a sharer (transitioning Idle->Shared if needed).
     * @p max_pointers is the inline pointer budget (paper: 6);
     * @p nodes the machine size, which picks the overflow format.
     */
    void
    addSharer(NodeId n, int max_pointers, int nodes,
              StacheAuxTable& aux)
    {
        tt_assert(state() != State::Excl,
                  "addSharer on exclusive entry");
        if (state() == State::Idle)
            _bits = std::uint64_t{1} << 62; // Shared, count 0

        if (auxMode()) {
            auxSetMut(aux).add(n);
            return;
        }
        if (bitvecMode()) {
            if (contains(n, aux))
                return;
            _bits |= std::uint64_t{1} << n;
            setCount(count() + 1);
            return;
        }
        // Pointer mode.
        if (contains(n, aux))
            return;
        const int c = count();
        const bool fits_ptr = c < max_pointers && n <= 0xFF &&
                              max_pointers <= 6;
        if (fits_ptr) {
            _bits = (_bits & ~(std::uint64_t{0xFF} << (8 * c))) |
                    (static_cast<std::uint64_t>(n) << (8 * c));
            setCount(c + 1);
            return;
        }
        // Overflow: to bit vector when the machine fits in 32 bits,
        // else to the auxiliary structure.
        std::vector<NodeId> current = members(aux);
        current.push_back(n);
        if (nodes <= 32) {
            std::uint64_t bv = 0;
            for (NodeId s : current)
                bv |= std::uint64_t{1} << s;
            _bits = (std::uint64_t{1} << 62) | (std::uint64_t{1} << 61) |
                    bv;
            setCount(static_cast<int>(current.size()));
        } else {
            const std::uint32_t idx = aux.next++;
            NodeSet set(nodes);
            for (NodeId s : current)
                set.add(s);
            aux.sets.emplace(idx, std::move(set));
            _bits = (std::uint64_t{1} << 62) | (std::uint64_t{1} << 60) |
                    idx;
        }
    }

    /** Remove a sharer if present; collapses Shared->Idle when empty. */
    void
    removeSharer(NodeId n, StacheAuxTable& aux)
    {
        // An exclusive entry has no sharer list; shrinking one is a
        // protocol bug, never a legal stale message.
        tt_assert(state() != State::Excl,
                  "removeSharer on exclusive entry");
        // Stale-message no-ops, kept deliberately: an ack can arrive
        // after the entry already collapsed to Idle, or name a node
        // whose clean copy dropped silently and was already pruned.
        if (state() == State::Idle || !contains(n, aux))
            return;
        if (auxMode()) {
            auxSetMut(aux).remove(n);
            if (auxSet(aux).empty())
                setIdle(aux);
            return;
        }
        if (bitvecMode()) {
            _bits &= ~(std::uint64_t{1} << n);
            setCount(count() - 1);
            if (count() == 0)
                setIdle(aux);
            return;
        }
        // Pointer mode: compact the pointer list.
        std::vector<NodeId> current = members(aux);
        std::erase(current, n);
        _bits = current.empty() ? 0 : (std::uint64_t{1} << 62);
        int i = 0;
        for (NodeId s : current)
            _bits |= static_cast<std::uint64_t>(s) << (8 * i++);
        if (!current.empty())
            setCount(static_cast<int>(current.size()));
    }

    bool
    contains(NodeId n, const StacheAuxTable& aux) const
    {
        if (state() != State::Shared)
            return false;
        if (auxMode())
            return auxSet(aux).contains(n);
        if (bitvecMode())
            return (_bits >> n) & 1;
        const int c = count();
        for (int i = 0; i < c; ++i) {
            if (static_cast<NodeId>((_bits >> (8 * i)) & 0xFF) == n)
                return true;
        }
        return false;
    }

    std::vector<NodeId>
    members(const StacheAuxTable& aux) const
    {
        std::vector<NodeId> out;
        if (state() != State::Shared)
            return out;
        if (auxMode())
            return auxSet(aux).members();
        if (bitvecMode()) {
            for (int i = 0; i < 32; ++i)
                if ((_bits >> i) & 1)
                    out.push_back(i);
            return out;
        }
        const int c = count();
        for (int i = 0; i < c; ++i)
            out.push_back(
                static_cast<NodeId>((_bits >> (8 * i)) & 0xFF));
        return out;
    }

  private:
    int count() const { return static_cast<int>((_bits >> 48) & 0xFFF); }

    void
    setCount(int c)
    {
        _bits = (_bits & ~(std::uint64_t{0xFFF} << 48)) |
                (static_cast<std::uint64_t>(c & 0xFFF) << 48);
    }

    const NodeSet&
    auxSet(const StacheAuxTable& aux) const
    {
        auto it = aux.sets.find(static_cast<std::uint32_t>(
            _bits & 0xFFFF'FFFF));
        tt_assert(it != aux.sets.end(), "dangling aux index");
        return it->second;
    }

    NodeSet&
    auxSetMut(StacheAuxTable& aux)
    {
        return const_cast<NodeSet&>(auxSet(aux));
    }

    void
    releaseAux(StacheAuxTable& aux)
    {
        if (state() == State::Shared && auxMode())
            aux.sets.erase(
                static_cast<std::uint32_t>(_bits & 0xFFFF'FFFF));
    }

    std::uint64_t _bits = 0;
};

} // namespace tt

#endif // TT_STACHE_DIR_ENTRY_HH
