/**
 * @file
 * Stache configuration. The protocol itself (section 3) preallocates
 * 64 bits of directory state per block — two bytes of state plus six
 * one-byte pointers, overflowing to a 32-bit bit vector and then to
 * an auxiliary structure — and replaces stache pages FIFO.
 */

#ifndef TT_STACHE_PARAMS_HH
#define TT_STACHE_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace tt
{

struct StacheParams
{
    /**
     * Directory pointers per entry before overflowing to the bit
     * vector (paper: six one-byte pointers). Ablation A3 sweeps this.
     */
    int dirPointers = 6;

    /**
     * Stache page pool per node: how many local pages may cache
     * remote data before FIFO replacement kicks in. The paper uses
     * "as much of local memory as an application chooses"; the
     * default is effectively unbounded.
     */
    std::uint32_t maxStachePages = 1u << 20;

    // Handler instruction budgets for protocol bookkeeping beyond the
    // primitives (tuned so the fast paths match the paper's 14/30/20
    // instruction counts; see bench/table1_tag_ops).
    std::uint32_t faultHandlerWork = 2;  ///< BAF handler bookkeeping
    std::uint32_t homeHandlerWork = 4;   ///< home request decode/update
    std::uint32_t dataHandlerWork = 2;   ///< data-arrival bookkeeping
    std::uint32_t pageFaultWork = 10;    ///< page-fault handler logic

    /**
     * Test-only fault injection (tests/check/test_mutations.cc):
     * drop the owner-side ReadOnly downgrade on a recall, leaving a
     * stale writable copy behind. Proves the coherence sanitizer
     * fires; never set outside tests.
     */
    bool faultSkipDowngrade = false;

    /**
     * Seeded-mutation fault injection for the differential
     * no-false-negative suite (tests/check/test_differential.cc):
     * each counter breaks exactly the Nth occurrence (1-based) of its
     * protocol action; 0 = never. Never set outside tests.
     */
    std::uint32_t faultSkipDowngradeNth = 0; ///< keep RW on Nth recall
    std::uint32_t faultSkipInvalNth = 0; ///< ack Nth kInval, keep copy
    std::uint32_t faultCorruptPutNth = 0; ///< flip a byte in Nth PutData
};

} // namespace tt

#endif // TT_STACHE_PARAMS_HH
