#include "stache/stache.hh"

#include <cstring>

#include "check/hooks.hh"
#include "mem/addr.hh"
#include "obs/recorder.hh"
#include "sim/logging.hh"

namespace tt
{

Stache::Stache(Machine& m, TyphoonMemSystem& ms, StacheParams p)
    : _m(m),
      _ms(ms),
      _p(p),
      _cp(m.params()),
      _stats(m.stats()),
      _nodes(m.params().nodes),
      _cPageFaults(m.stats().counter("stache.page_faults")),
      _cPageReplacements(m.stats().counter("stache.page_replacements")),
      _cWritebacks(m.stats().counter("stache.writebacks")),
      _cWritebacksReceived(
          m.stats().counter("stache.writebacks_received")),
      _cPrefetchHitsInFlight(
          m.stats().counter("stache.prefetch_hits_in_flight")),
      _cGetRo(m.stats().counter("stache.get_ro")),
      _cGetRw(m.stats().counter("stache.get_rw")),
      _cHomeFaults(m.stats().counter("stache.home_faults")),
      _cHomeRequests(m.stats().counter("stache.home_requests")),
      _cDeferred(m.stats().counter("stache.deferred")),
      _cInvalsSent(m.stats().counter("stache.invals_sent")),
      _cRecalls(m.stats().counter("stache.recalls")),
      _cUpgradeGrants(m.stats().counter("stache.upgrade_grants")),
      _cDataReceived(m.stats().counter("stache.data_received")),
      _cPrefetches(m.stats().counter("stache.prefetches"))
{
    _ms.setProtocol(this);
    for (NodeId i = 0; i < _cp.nodes; ++i) {
        Tempest& t = _ms.tempest(i);

        t.registerPageFaultHandler(
            [this](TempestCtx& ctx, Addr va, MemOp op) {
                onPageFault(ctx, va, op);
            });

        t.registerFaultHandler(kModeStache, MemOp::Read,
                               [this](TempestCtx& ctx,
                                      const BlockFault& f) {
                                   onStacheFault(ctx, f);
                               });
        t.registerFaultHandler(kModeStache, MemOp::Write,
                               [this](TempestCtx& ctx,
                                      const BlockFault& f) {
                                   onStacheFault(ctx, f);
                               });
        t.registerFaultHandler(kModeHome, MemOp::Read,
                               [this](TempestCtx& ctx,
                                      const BlockFault& f) {
                                   onHomeFault(ctx, f);
                               });
        t.registerFaultHandler(kModeHome, MemOp::Write,
                               [this](TempestCtx& ctx,
                                      const BlockFault& f) {
                                   onHomeFault(ctx, f);
                               });

        t.registerMsgHandler(kGetRO, [this](TempestCtx& ctx,
                                            const Message& m2) {
            onGet(ctx, m2, false);
        });
        t.registerMsgHandler(kGetRW, [this](TempestCtx& ctx,
                                            const Message& m2) {
            onGet(ctx, m2, true);
        });
        t.registerMsgHandler(kDataRO, [this](TempestCtx& ctx,
                                             const Message& m2) {
            onData(ctx, m2, false);
        });
        t.registerMsgHandler(kDataRW, [this](TempestCtx& ctx,
                                             const Message& m2) {
            onData(ctx, m2, true);
        });
        t.registerMsgHandler(kInval, [this](TempestCtx& ctx,
                                            const Message& m2) {
            onInval(ctx, m2);
        });
        t.registerMsgHandler(kInvAck, [this](TempestCtx& ctx,
                                             const Message& m2) {
            onInvAck(ctx, m2);
        });
        t.registerMsgHandler(kRecallRW, [this](TempestCtx& ctx,
                                               const Message& m2) {
            onRecall(ctx, m2, false);
        });
        t.registerMsgHandler(kDowngrade, [this](TempestCtx& ctx,
                                                const Message& m2) {
            onRecall(ctx, m2, true);
        });
        t.registerMsgHandler(kPutData, [this](TempestCtx& ctx,
                                              const Message& m2) {
            onPutData(ctx, m2);
        });
        t.registerMsgHandler(kPutNack, [this](TempestCtx& ctx,
                                              const Message& m2) {
            onPutNack(ctx, m2);
        });
        t.registerMsgHandler(kWriteback, [this](TempestCtx& ctx,
                                                const Message& m2) {
            onWriteback(ctx, m2);
        });
        t.registerMsgHandler(kPrefetch, [this](TempestCtx& ctx,
                                               const Message& m2) {
            onPrefetch(ctx, m2);
        });
    }
}

// ---------------------------------------------------------------------
// Allocation / ShmProtocol
// ---------------------------------------------------------------------

std::uint32_t
Stache::blocksPerPage() const
{
    return _cp.pageSize / _cp.blockSize;
}

void
Stache::describeHandlers(FlightRecorder& rec) const
{
    rec.nameHandler(kGetRO, "stache.get_ro");
    rec.nameHandler(kGetRW, "stache.get_rw");
    rec.nameHandler(kDataRO, "stache.data_ro");
    rec.nameHandler(kDataRW, "stache.data_rw");
    rec.nameHandler(kInval, "stache.inval");
    rec.nameHandler(kInvAck, "stache.inv_ack");
    rec.nameHandler(kRecallRW, "stache.recall_rw");
    rec.nameHandler(kDowngrade, "stache.downgrade");
    rec.nameHandler(kPutData, "stache.put_data");
    rec.nameHandler(kPutNack, "stache.put_nack");
    rec.nameHandler(kWriteback, "stache.writeback");
    rec.nameHandler(kPrefetch, "stache.prefetch");
}

Addr
Stache::shmalloc(std::size_t bytes, NodeId home)
{
    tt_assert(bytes > 0, "shmalloc of zero bytes");
    const std::uint32_t ps = _cp.pageSize;
    const std::size_t npages = (bytes + ps - 1) / ps;
    const Addr base = _nextVa;
    for (std::size_t i = 0; i < npages; ++i) {
        const Addr va = base + i * ps;
        const NodeId h = home != kNoNode ? home : _rr;
        if (home == kNoNode)
            _rr = (_rr + 1) % _cp.nodes;
        _pageHome[pageNum(va, ps)] = h;

        TempestCtx& ctx = _ms.tempest(h).setupCtx();
        const PAddr pa = ctx.allocPhysPage();
        ctx.mapPage(va, pa, kModeHome);
        ctx.setPageTags(va, AccessTag::ReadWrite);

        HomeDir hd;
        hd.entries.resize(blocksPerPage());
        _homeDirs.insert(pageNum(va, ps), std::move(hd));
        ctx.setPageUserWord(va, pageNum(va, ps));
    }
    _nextVa = base + npages * ps;
    _allocs.push_back({base, bytes});
    return base;
}

void
Stache::canonicalize(std::uint64_t epochSeed)
{
    const std::uint32_t ps = _cp.pageSize;
    std::vector<std::uint8_t> blockBuf(_cp.blockSize);

    // 1. Flush dirty-remote bytes to the home frame and rebuild every
    //    directory entry fresh (home owns every block again), with
    //    the home tags back at the post-setup canonical ReadWrite.
    _homeDirs.forEachMut([&](std::uint64_t vpn, HomeDir& hd) {
        const NodeId home = _pageHome.at(vpn);
        const Addr pageVa = static_cast<Addr>(vpn) * ps;
        for (std::uint32_t b = 0; b < blocksPerPage(); ++b) {
            const Addr blk = pageVa + b * _cp.blockSize;
            StacheDirEntry& e = hd.entries[b];
            if (e.state() == StacheDirEntry::State::Excl &&
                e.owner() != home &&
                _ms.pageTableOf(e.owner()).lookup(blk)) {
                readBlockHost(e.owner(), blk, blockBuf.data());
                _ms.physOf(home).write(
                    _ms.pageTableOf(home).translate(blk),
                    blockBuf.data(), _cp.blockSize);
            }
            e = StacheDirEntry{};
        }
        hd.aux = StacheAuxTable{};
        _ms.recSetPageTags(home, pageVa, AccessTag::ReadWrite);
    });

    // 2. Unwind every stache page mapping and free its frame. The
    //    unordered iteration order is irrelevant: the physical-page
    //    allocator is rewound to its setup watermark right after
    //    (TyphoonMemSystem::canonicalize), so no allocation decision
    //    can observe the free order.
    for (int i = 0; i < _cp.nodes; ++i) {
        NodeState& ns = _nodes[i];
        for (std::uint64_t vpn : ns.stacheVpns) {
            const Addr va = static_cast<Addr>(vpn) * ps;
            const PageMapping* pm = _ms.pageTableOf(i).lookup(va);
            tt_assert(pm, "stache page vanished before unwind at ", va);
            const PAddr pa = pm->ppage;
            _ms.recUnmapPage(i, va);
            _ms.recFreePhysPage(i, pa);
        }
        ns.stacheVpns.clear();
        ns.stacheFifo.clear();
        ns.homeCache.clear();
    }

    // 3. In-flight transactions die without dereferencing anything (a
    //    crash rollback already destroyed the waiting frames), and the
    //    fault-mutation occurrence counters rewind.
    _transients.clear();
    _faultDowngrades = 0;
    _faultInvals = 0;
    _faultPuts = 0;

    onCanonicalize(epochSeed);
}

NodeId
Stache::homeOf(Addr va) const
{
    const NodeId* h = _pageHome.find(pageNum(va, _cp.pageSize));
    return h ? *h : kNoNode;
}

void
Stache::readBlockHost(NodeId node, Addr blk, void* buf)
{
    const PAddr pa = _ms.pageTableOf(node).translate(blk);
    _ms.physOf(node).read(pa, buf, _cp.blockSize);
}

void
Stache::peek(Addr va, void* buf, std::size_t len)
{
    // Authoritative copy: the exclusive owner's stache page if the
    // block is dirty-remote, otherwise the home page.
    const NodeId home = homeOf(va);
    tt_assert(home != kNoNode, "peek of unallocated va ", va);
    const Addr blk = blockAlign(va, _cp.blockSize);
    NodeId src = home;
    const HomeDir* hd = findHomeDir(va);
    if (hd) {
        const StacheDirEntry& e =
            hd->entries[blockInPage(va, _cp.pageSize, _cp.blockSize)];
        if (e.state() == StacheDirEntry::State::Excl)
            src = e.owner();
    }
    (void)blk;
    const PAddr pa = _ms.pageTableOf(src).translate(va);
    _ms.physOf(src).read(pa, buf, len);
}

void
Stache::poke(Addr va, const void* buf, std::size_t len)
{
    // Write the home copy plus any live replicas so setup-time
    // initialization is coherent everywhere.
    const NodeId home = homeOf(va);
    tt_assert(home != kNoNode, "poke of unallocated va ", va);
    _ms.physOf(home).write(_ms.pageTableOf(home).translate(va), buf,
                           len);
    const HomeDir* hd = findHomeDir(va);
    if (!hd)
        return;
    const StacheDirEntry& e =
        hd->entries[blockInPage(va, _cp.pageSize, _cp.blockSize)];
    std::vector<NodeId> copies;
    if (e.state() == StacheDirEntry::State::Excl)
        copies.push_back(e.owner());
    else if (e.state() == StacheDirEntry::State::Shared)
        copies = e.members(hd->aux);
    for (NodeId n : copies) {
        if (n == home)
            continue;
        const PageMapping* pm = _ms.pageTableOf(n).lookup(va);
        if (pm) {
            _ms.physOf(n).write(pm->ppage +
                                    pageOffset(va, _cp.pageSize),
                                buf, len);
        }
    }
}

// ---------------------------------------------------------------------
// Directory helpers
// ---------------------------------------------------------------------

Stache::HomeDir&
Stache::homeDirOf(Addr va)
{
    HomeDir* hd = _homeDirs.find(pageNum(va, _cp.pageSize));
    tt_assert(hd, "no home directory for va ", va);
    return *hd;
}

const Stache::HomeDir*
Stache::findHomeDir(Addr va) const
{
    return _homeDirs.find(pageNum(va, _cp.pageSize));
}

StacheDirEntry&
Stache::entryOf(Addr blk)
{
    return homeDirOf(blk)
        .entries[blockInPage(blk, _cp.pageSize, _cp.blockSize)];
}

std::uint64_t
Stache::entryKey(Addr blk) const
{
    // Synthetic NP-D-cache address of the 8-byte directory entry.
    return 0xD000'0000'0000ULL + (blk / _cp.blockSize) * 8;
}

Stache::BlockView
Stache::inspect(Addr va) const
{
    BlockView v;
    const HomeDir* hd = findHomeDir(va);
    if (!hd)
        return v;
    const StacheDirEntry& e =
        hd->entries[blockInPage(va, _cp.pageSize, _cp.blockSize)];
    v.state = e.state();
    v.raw = e.raw();
    if (e.state() == StacheDirEntry::State::Excl)
        v.owner = e.owner();
    else
        v.sharers = e.members(hd->aux);
    v.busy = _transients.contains(blockAlign(va, _cp.blockSize));
    return v;
}

Stache::BlockPeek
Stache::peekEntry(Addr va) const
{
    BlockPeek p;
    p.busy = _transients.contains(blockAlign(va, _cp.blockSize));
    const HomeDir* hd = findHomeDir(va);
    if (!hd)
        return p;
    const StacheDirEntry& e =
        hd->entries[blockInPage(va, _cp.pageSize, _cp.blockSize)];
    p.state = e.state();
    if (e.state() == StacheDirEntry::State::Excl)
        p.owner = e.owner();
    p.entry = &e;
    p.aux = &hd->aux;
    return p;
}

std::size_t
Stache::stachePagesAt(NodeId node) const
{
    return _nodes.at(node).stacheFifo.size();
}

std::size_t
Stache::footprintBytes() const
{
    std::size_t b = _pageHome.footprintBytes();
    b += _homeDirs.footprintBytes();
    _homeDirs.forEach([&](std::uint64_t, const HomeDir& hd) {
        b += hd.entries.capacity() * sizeof(StacheDirEntry);
        b += hd.aux.sets.size() *
             (sizeof(std::uint32_t) + sizeof(NodeSet));
    });
    b += _transients.footprintBytes();
    _transients.forEach([&](Addr, const Transient& t) {
        b += t.deferred.size() * sizeof(Deferred);
    });
    for (const NodeState& ns : _nodes) {
        b += ns.homeCache.footprintBytes();
        b += ns.stacheFifo.size() * sizeof(Addr);
        b += ns.stacheVpns.size() * sizeof(std::uint64_t);
    }
    b += _allocs.capacity() * sizeof(MemorySystem::SharedRange);
    return b;
}

// ---------------------------------------------------------------------
// CPU-side handlers: page fault and block access faults
// ---------------------------------------------------------------------

void
Stache::onPageFault(TempestCtx& ctx, Addr va, MemOp op)
{
    (void)op;
    const NodeId self = ctx.nodeId();
    NodeState& ns = _nodes[self];
    const Addr pageVa = alignDown(va, _cp.pageSize);
    const std::uint64_t vpn = pageNum(va, _cp.pageSize);
    ctx.charge(_p.pageFaultWork);
    _cPageFaults.inc();

    // The trap is asynchronous: an NP-side prefetch may have mapped
    // the page while the fault was being delivered. Re-check and
    // return; the restarted access proceeds normally. Stache never
    // write-protects pages, so a protection fault here is a bug.
    if (ctx.pageMapped(va)) {
        tt_assert(ctx.pageWritable(va),
                  "write-protected page under Stache at ", va);
        return;
    }

    // Find the home in the distributed mapping table and cache it in
    // the local table (section 3).
    const NodeId* home = _pageHome.find(vpn);
    tt_assert(home, "access to unallocated shared va ", va);
    ctx.structAccess(0xE000'0000'0000ULL + vpn * 8);
    ns.homeCache[vpn] = *home;

    if (ns.stacheFifo.size() >= _p.maxStachePages) {
        // FIFO replacement: flush a victim page, writing modified
        // blocks home, then remap its frame at the new address.
        const Addr victim = ns.stacheFifo.front();
        ns.stacheFifo.pop_front();
        ns.stacheVpns.erase(pageNum(victim, _cp.pageSize));
        _cPageReplacements.inc();

        const NodeId vhome = _pageHome.at(pageNum(victim, _cp.pageSize));
        std::vector<std::uint8_t> buf(_cp.blockSize);
        for (Addr b = victim; b < victim + _cp.pageSize;
             b += _cp.blockSize) {
            const AccessTag tag = ctx.readTag(b);
            if (tag == AccessTag::ReadWrite) {
                // Modified: send the data home.
                readBlockHost(self, b, buf.data());
                Word args[3];
                args[0] = static_cast<Word>(b);
                args[1] = static_cast<Word>(b >> 32);
                args[2] = 0;
                ctx.send(vhome, kWriteback, std::span<const Word>(args),
                         buf.data(), _cp.blockSize, VNet::Request);
                ctx.invalidate(b);
                _cWritebacks.inc();
            } else if (tag == AccessTag::ReadOnly) {
                // Clean copy: drop silently (home keeps a stale
                // sharer pointer; invalidations tolerate that).
                ctx.invalidate(b);
            } else {
                tt_assert(tag == AccessTag::Invalid,
                          "Busy block during page replacement");
            }
        }
        ctx.remapPage(victim, pageVa, kModeStache);
    } else {
        const PAddr pa = ctx.allocPhysPage();
        ctx.mapPage(pageVa, pa, kModeStache);
    }
    // Tags default to Invalid: the restarted access will take a block
    // access fault and fetch the block (section 3).
    ns.stacheFifo.push_back(pageVa);
    ns.stacheVpns.insert(vpn);
}

void
Stache::onStacheFault(TempestCtx& ctx, const BlockFault& f)
{
    const NodeId self = ctx.nodeId();
    const Addr blk = blockAlign(f.va, _cp.blockSize);
    ctx.charge(_p.faultHandlerWork);

    // Busy: a prefetch for this block is already in flight (section
    // 5.4) — terminate without a duplicate request; the data-arrival
    // handler resumes the suspended thread. A write fault then
    // retries against the landed ReadOnly copy and escalates as a
    // normal upgrade, keeping a single outstanding request per block.
    if (f.tag == AccessTag::Busy) {
        _cPrefetchHitsInFlight.inc();
        return;
    }

    // Home lookup in the local table.
    const std::uint64_t vpn = pageNum(f.va, _cp.pageSize);
    const NodeId* cached = _nodes[self].homeCache.find(vpn);
    tt_assert(cached, "stache page without cached home at node ",
              self);
    ctx.structAccess(0xE800'0000'0000ULL + vpn * 8);
    const NodeId home = *cached;

    // A write fault on a ReadOnly copy is an upgrade: the block data
    // is already here, so the home may grant without resending it.
    const bool upgrade = f.op == MemOp::Write &&
                         f.tag == AccessTag::ReadOnly;
    ctx.setBusy(blk);
    Word args[3] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32),
                    upgrade ? 1u : 0u};
    const bool wantRW = f.op == MemOp::Write;
    (wantRW ? _cGetRw : _cGetRo).inc();
    ctx.send(home, wantRW ? kGetRW : kGetRO,
             std::span<const Word>(args), nullptr, 0, VNet::Request);
    // The handler terminates; the data-arrival handler resumes the
    // CPU (section 3).
}

void
Stache::onHomeFault(TempestCtx& ctx, const BlockFault& f)
{
    // Home-node fault: bypass messaging, access directory directly.
    const Addr blk = blockAlign(f.va, _cp.blockSize);
    ctx.charge(_p.faultHandlerWork);
    _cHomeFaults.inc();
    homeRequest(ctx, blk, ctx.nodeId(), f.op == MemOp::Write);
}

// ---------------------------------------------------------------------
// Home-side protocol machine
// ---------------------------------------------------------------------

void
Stache::homeRequest(TempestCtx& ctx, Addr blk, NodeId requester,
                    bool wantRW, bool upgrade)
{
    ctx.charge(_p.homeHandlerWork);
    ctx.structAccess(entryKey(blk));
    _cHomeRequests.inc();

    if (Transient* tr = _transients.find(blk)) {
        // Capture the requester's transaction context so the replay
        // inside finishTransient (which runs under the final ack's
        // activation) can re-enter it.
        FlightRecorder* obs = _ms.recorder();
        tr->deferred.push_back(Deferred{
            requester, wantRW, upgrade,
            obs ? obs->txnFor(ctx.nodeId()) : 0});
        _cDeferred.inc();
        return;
    }

    HomeDir& hd = homeDirOf(blk);
    StacheDirEntry& e = entryOf(blk);
    using St = StacheDirEntry::State;

    // An upgrade is grantable without data only while the requester
    // is still listed as a sharer (its copy is current).
    const bool dataless =
        upgrade && e.state() == St::Shared &&
        e.contains(requester, hd.aux);

    switch (e.state()) {
      case St::Idle:
        grantFromHome(ctx, blk, requester, wantRW, kNoNode);
        break;

      case St::Shared: {
        if (!wantRW) {
            grantFromHome(ctx, blk, requester, wantRW, kNoNode);
            break;
        }
        auto targets = e.members(hd.aux);
        std::erase(targets, requester);
        if (targets.empty()) {
            grantFromHome(ctx, blk, requester, wantRW, kNoNode,
                          dataless);
            break;
        }
        Transient t;
        t.requester = requester;
        t.wantRW = true;
        t.dataless = dataless;
        t.acksLeft = static_cast<int>(targets.size());
        _transients.insert(blk, std::move(t));
        if (_checker)
            _checker->onBlockEvent(ctx.nodeId(), blk,
                                   "dir:inval-round");
        Word args[2] = {static_cast<Word>(blk),
                        static_cast<Word>(blk >> 32)};
        _cInvalsSent.inc(targets.size());
        if (FlightRecorder* obs = _ms.recorder();
            obs && (obs->wantSharing() || obs->wantTxn())) {
            obs->invalSent(ctx.nodeId(), blk, requester,
                           static_cast<std::uint32_t>(targets.size()),
                           InvKind::Inval, _m.eq().now());
        }
        for (NodeId s : targets)
            ctx.send(s, kInval, std::span<const Word>(args), nullptr,
                     0, VNet::Request);
        break;
      }

      case St::Excl: {
        const NodeId owner = e.owner();
        tt_assert(owner != requester,
                  "stache owner re-requesting its block");
        Transient t;
        t.requester = requester;
        t.wantRW = wantRW;
        t.awaitingData = true;
        t.owner = owner;
        t.wasDowngrade = !wantRW;
        _transients.insert(blk, std::move(t));
        if (_checker)
            _checker->onBlockEvent(ctx.nodeId(), blk, "dir:recall");
        Word args[2] = {static_cast<Word>(blk),
                        static_cast<Word>(blk >> 32)};
        _cRecalls.inc();
        if (FlightRecorder* obs = _ms.recorder();
            obs && (obs->wantSharing() || obs->wantTxn())) {
            obs->invalSent(ctx.nodeId(), blk, requester, 1,
                           wantRW ? InvKind::Recall : InvKind::Downgrade,
                           _m.eq().now());
        }
        ctx.send(owner, wantRW ? kRecallRW : kDowngrade,
                 std::span<const Word>(args), nullptr, 0,
                 VNet::Request);
        break;
      }
    }
}

void
Stache::sendBlockData(TempestCtx& ctx, NodeId dst, HandlerId kind,
                      Addr blk)
{
    std::vector<std::uint8_t> buf(_cp.blockSize);
    // The BXB streams memory into the send queue; the movement cost
    // is charged by send() per 32 bytes of payload.
    readBlockHost(ctx.nodeId(), blk, buf.data());
    Word args[2] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32)};
    ctx.send(dst, kind, std::span<const Word>(args), buf.data(),
             _cp.blockSize, VNet::Response);
}

void
Stache::grantFromHome(TempestCtx& ctx, Addr blk, NodeId requester,
                      bool wantRW, NodeId keep_sharer, bool dataless)
{
    HomeDir& hd = homeDirOf(blk);
    StacheDirEntry& e = entryOf(blk);
    const NodeId home = ctx.nodeId();
    using St = StacheDirEntry::State;
    const St oldState = e.state();
    auto dirTrans = [&](St to) {
        if (FlightRecorder* obs = _ms.recorder();
            obs && obs->wantSharing() && to != oldState) {
            obs->dirTrans(home, blk,
                          static_cast<std::uint8_t>(oldState),
                          static_cast<std::uint8_t>(to),
                          _m.eq().now());
        }
    };

    if (_checker)
        _checker->onBlockEvent(home, blk, "dir:grant");

    if (wantRW) {
        if (requester == home) {
            e.setIdle(hd.aux);
            dirTrans(St::Idle);
            ctx.setRW(blk);
            ctx.resume();
        } else if (dataless) {
            // Upgrade grant: the requester's read-only copy is
            // current; skip the block payload entirely.
            e.setExcl(requester, hd.aux);
            dirTrans(St::Excl);
            ctx.invalidate(blk);
            Word args[3] = {static_cast<Word>(blk),
                            static_cast<Word>(blk >> 32), 1u};
            _cUpgradeGrants.inc();
            ctx.send(requester, kDataRW, std::span<const Word>(args),
                     nullptr, 0, VNet::Response);
        } else {
            e.setExcl(requester, hd.aux);
            dirTrans(St::Excl);
            ctx.invalidate(blk); // home copy (tag + CPU cache) dies
            sendBlockData(ctx, requester, kDataRW, blk);
        }
        return;
    }

    // Read grant.
    if (keep_sharer != kNoNode && keep_sharer != requester)
        e.addSharer(keep_sharer, _p.dirPointers, _cp.nodes, hd.aux);
    if (requester == home) {
        // Home re-reads its own block after a recall or writeback.
        if (e.state() == StacheDirEntry::State::Idle)
            ctx.setRW(blk);
        else
            ctx.setRO(blk);
        ctx.resume();
    } else {
        e.addSharer(requester, _p.dirPointers, _cp.nodes, hd.aux);
        ctx.setRO(blk); // home keeps read access only
        sendBlockData(ctx, requester, kDataRO, blk);
    }
    dirTrans(e.state());
}

void
Stache::finishTransient(TempestCtx& ctx, Addr blk, NodeId keep_sharer)
{
    Transient* tr = _transients.find(blk);
    tt_assert(tr, "finishTransient without one");
    Transient t = std::move(*tr);
    _transients.erase(blk);
    grantFromHome(ctx, blk, t.requester, t.wantRW, keep_sharer,
                  t.dataless);
    // Replay deferred requests in arrival order, each under its own
    // captured transaction context (we are inside the final ack's
    // handler activation, whose context belongs to the transaction
    // just finished — restore it afterward so the activation's own
    // records stay correctly stamped).
    FlightRecorder* obs = _ms.recorder();
    const std::uint32_t prevAct =
        obs ? obs->actOf(ctx.nodeId()) : 0;
    for (auto& d : t.deferred) {
        if (obs)
            obs->beginAct(ctx.nodeId(), d.txn);
        homeRequest(ctx, blk, d.requester, d.wantRW, d.upgrade);
    }
    if (obs)
        obs->beginAct(ctx.nodeId(), prevAct);
}

// ---------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------

void
Stache::onGet(TempestCtx& ctx, const Message& msg, bool wantRW)
{
    const bool upgrade = msg.args.size() > 2 && msg.args[2] != 0;
    homeRequest(ctx, static_cast<Addr>(msg.addrArg(0)), msg.src,
                wantRW, upgrade);
}

void
Stache::onData(TempestCtx& ctx, const Message& msg, bool rw)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    const bool dataless = msg.args.size() > 2 && msg.args[2] != 0;
    ctx.charge(_p.dataHandlerWork);
    if (!dataless) {
        ctx.forceWrite(blk, msg.data.data(),
                       static_cast<std::uint32_t>(msg.data.size()));
    }
    if (rw)
        ctx.setRW(blk);
    else
        ctx.setRO(blk);
    _cDataReceived.inc();
    // Prefetched data may land with no thread waiting on it.
    if (ctx.threadSuspendedOn(blk))
        ctx.resume();
}

void
Stache::onInval(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(2);
    if (ctx.pageMapped(blk)) {
        const AccessTag tag = ctx.readTag(blk);
        tt_assert(tag != AccessTag::ReadWrite,
                  "sharer holds a writable copy");
        if (tag == AccessTag::ReadOnly) {
            // Seeded mutation: ack the Nth invalidation but keep the
            // readable copy (tests/check/test_differential.cc).
            const bool skip = _p.faultSkipInvalNth != 0 &&
                              ++_faultInvals == _p.faultSkipInvalNth;
            if (!skip)
                ctx.invalidate(blk);
        }
        // Busy: an upgrade is in flight; fresh data will arrive.
        // Invalid: stale sharer pointer (silent replacement).
    }
    Word args[2] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32)};
    ctx.send(msg.src, kInvAck, std::span<const Word>(args), nullptr, 0,
             VNet::Response);
}

void
Stache::onInvAck(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(2);
    Transient* tr = _transients.find(blk);
    tt_assert(tr && tr->acksLeft > 0, "stray InvAck for block ", blk);
    if (--tr->acksLeft > 0)
        return;
    // "The handler for the final invalidation acknowledgment actually
    // sends the data" (section 3).
    finishTransient(ctx, blk, kNoNode);
}

void
Stache::onRecall(TempestCtx& ctx, const Message& msg, bool downgrade)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(2);
    Word args[2] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32)};
    const bool have = ctx.pageMapped(blk) &&
                      ctx.readTag(blk) == AccessTag::ReadWrite;
    if (!have) {
        // Our copy left via a replacement writeback that is already
        // ahead of this reply in FIFO order.
        ctx.send(msg.src, kPutNack, std::span<const Word>(args),
                 nullptr, 0, VNet::Response);
        return;
    }
    // Observe (via the bus) whether the CPU modified its copy since
    // the grant — adaptive protocols use this to classify sharing.
    const bool modified = ctx.cpuCopyDirty(blk);
    std::vector<std::uint8_t> buf(_cp.blockSize);
    readBlockHost(ctx.nodeId(), blk, buf.data());
    if (downgrade) {
        // Test-only fault injection: keep the stale writable copy so
        // the coherence sanitizer must catch it (test_mutations.cc,
        // test_differential.cc).
        const bool skip =
            _p.faultSkipDowngrade ||
            (_p.faultSkipDowngradeNth != 0 &&
             ++_faultDowngrades == _p.faultSkipDowngradeNth);
        if (!skip)
            ctx.setRO(blk);
    } else {
        ctx.invalidate(blk);
    }
    // Seeded mutation: corrupt the Nth returned data payload so the
    // home's memory diverges from the write history.
    if (_p.faultCorruptPutNth != 0 &&
        ++_faultPuts == _p.faultCorruptPutNth)
        buf[0] ^= 0xff;
    Word args3[3] = {args[0], args[1], modified ? 1u : 0u};
    ctx.send(msg.src, kPutData, std::span<const Word>(args3),
             buf.data(), _cp.blockSize, VNet::Response);
}

void
Stache::onPutData(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(2);
    onOwnerDataReturned(blk, msg.src,
                        msg.args.size() > 2 && msg.args[2] != 0);
    Transient* tr = _transients.find(blk);
    tt_assert(tr && tr->awaitingData, "unexpected PutData for block ",
              blk);
    // The home page becomes current before anyone else sees the data.
    ctx.forceWrite(blk, msg.data.data(),
                   static_cast<std::uint32_t>(msg.data.size()));
    HomeDir& hd = homeDirOf(blk);
    StacheDirEntry& e = entryOf(blk);
    const auto oldState = e.state();
    e.setIdle(hd.aux);
    if (FlightRecorder* obs = _ms.recorder();
        obs && obs->wantSharing() &&
        oldState != StacheDirEntry::State::Idle) {
        obs->dirTrans(ctx.nodeId(), blk,
                      static_cast<std::uint8_t>(oldState),
                      static_cast<std::uint8_t>(
                          StacheDirEntry::State::Idle),
                      _m.eq().now());
    }
    const NodeId keep = tr->wasDowngrade ? tr->owner : kNoNode;
    finishTransient(ctx, blk, keep);
}

void
Stache::onPutNack(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(2);
    Transient* tr = _transients.find(blk);
    tt_assert(tr && tr->awaitingData, "unexpected PutNack for block ",
              blk);
    tt_assert(tr->sawWb,
              "PutNack without a preceding writeback for block ", blk);
    // A replacement writeback implies the owner modified the block.
    onOwnerDataReturned(blk, msg.src, true);
    finishTransient(ctx, blk, kNoNode);
}

std::size_t
Stache::auditCoherence()
{
    std::size_t violations = 0;
    std::vector<std::uint8_t> homeData(_cp.blockSize);
    std::vector<std::uint8_t> copyData(_cp.blockSize);

    auto complain = [&](Addr blk, const char* what) {
        ++violations;
        tt_warn("coherence audit: block ", blk, ": ", what);
    };

    _homeDirs.forEach([&](std::uint64_t vpn, const HomeDir& hd) {
        const NodeId home = _pageHome.at(vpn);
        const Addr pageVa = static_cast<Addr>(vpn) * _cp.pageSize;
        for (std::uint32_t b = 0; b < blocksPerPage(); ++b) {
            const Addr blk = pageVa + b * _cp.blockSize;
            const StacheDirEntry& e = hd.entries[b];
            const AccessTag homeTag =
                _ms.tagOf(home, blk);

            switch (e.state()) {
              case StacheDirEntry::State::Idle:
                if (homeTag != AccessTag::ReadWrite)
                    complain(blk, "Idle block without RW home tag");
                break;

              case StacheDirEntry::State::Shared: {
                if (homeTag != AccessTag::ReadOnly)
                    complain(blk, "Shared block without RO home tag");
                readBlockHost(home, blk, homeData.data());
                for (NodeId s : e.members(hd.aux)) {
                    const PageMapping* pm =
                        _ms.pageTableOf(s).lookup(blk);
                    if (!pm)
                        continue; // silent drop: stale sharer
                    const AccessTag t = _ms.tagOf(s, blk);
                    if (t == AccessTag::Invalid)
                        continue; // stale pointer after remap
                    if (t != AccessTag::ReadOnly) {
                        complain(blk, "sharer copy not ReadOnly");
                        continue;
                    }
                    readBlockHost(s, blk, copyData.data());
                    if (copyData != homeData)
                        complain(blk, "sharer data diverges from home");
                }
                break;
              }

              case StacheDirEntry::State::Excl: {
                if (homeTag != AccessTag::Invalid)
                    complain(blk,
                             "Excl block without Invalid home tag");
                const NodeId owner = e.owner();
                const PageMapping* pm =
                    _ms.pageTableOf(owner).lookup(blk);
                if (!pm) {
                    complain(blk, "owner page unmapped");
                    break;
                }
                if (_ms.tagOf(owner, blk) != AccessTag::ReadWrite)
                    complain(blk, "owner copy not ReadWrite");
                break;
              }
            }
        }
    });
    return violations;
}

void
Stache::prefetch(Cpu& cpu, Addr va)
{
    const Addr blk = blockAlign(va, _cp.blockSize);
    Word args[2] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32)};
    _cPrefetches.inc();
    _ms.cpuSend(cpu, cpu.id(), kPrefetch,
                {args[0], args[1]});
}

void
Stache::onPrefetch(TempestCtx& ctx, const Message& msg)
{
    const NodeId self = ctx.nodeId();
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(_p.faultHandlerWork);

    if (!ctx.pageMapped(blk)) {
        // The NP performs the page-grain setup the CPU's page-fault
        // handler would have done.
        if (!_pageHome.contains(pageNum(blk, _cp.pageSize)))
            return; // unallocated: nonbinding, drop
        const NodeId home = _pageHome.at(pageNum(blk, _cp.pageSize));
        if (home == self)
            return; // local page: nothing to prefetch
        onPageFault(ctx, blk, MemOp::Read);
    }
    if (ctx.readTag(blk) != AccessTag::Invalid)
        return; // already present or in flight: nonbinding, drop

    const std::uint64_t vpn = pageNum(blk, _cp.pageSize);
    const NodeId* home = _nodes[self].homeCache.find(vpn);
    if (!home)
        return; // home page or unknown: drop
    ctx.setBusy(blk);
    Word args[3] = {static_cast<Word>(blk),
                    static_cast<Word>(blk >> 32), 0};
    _cGetRo.inc();
    ctx.send(*home, kGetRO, std::span<const Word>(args), nullptr, 0,
             VNet::Request);
}

void
Stache::onWriteback(TempestCtx& ctx, const Message& msg)
{
    const Addr blk = static_cast<Addr>(msg.addrArg(0));
    ctx.charge(2);
    _cWritebacksReceived.inc();
    if (_checker)
        _checker->onBlockEvent(ctx.nodeId(), blk, "dir:writeback");
    ctx.forceWrite(blk, msg.data.data(),
                   static_cast<std::uint32_t>(msg.data.size()));
    HomeDir& hd = homeDirOf(blk);
    StacheDirEntry& e = entryOf(blk);

    Transient* tr = _transients.find(blk);
    if (tr && tr->awaitingData && tr->owner == msg.src) {
        // Crossed with our recall; the PutNack will finish the
        // transaction.
        tr->sawWb = true;
        const auto oldState = e.state();
        e.setIdle(hd.aux);
        if (FlightRecorder* obs = _ms.recorder();
            obs && obs->wantSharing() &&
            oldState != StacheDirEntry::State::Idle) {
            obs->dirTrans(ctx.nodeId(), blk,
                          static_cast<std::uint8_t>(oldState),
                          static_cast<std::uint8_t>(
                              StacheDirEntry::State::Idle),
                          _m.eq().now());
        }
        ctx.setRW(blk);
        return;
    }
    tt_assert(e.state() == StacheDirEntry::State::Excl &&
                  e.owner() == msg.src,
              "stale writeback for block ", blk, " from ", msg.src);
    e.setIdle(hd.aux);
    if (FlightRecorder* obs = _ms.recorder();
        obs && obs->wantSharing()) {
        obs->dirTrans(ctx.nodeId(), blk,
                      static_cast<std::uint8_t>(
                          StacheDirEntry::State::Excl),
                      static_cast<std::uint8_t>(
                          StacheDirEntry::State::Idle),
                      _m.eq().now());
    }
    ctx.setRW(blk); // home regains the writable copy
}

} // namespace tt
