/**
 * @file
 * Stache: user-level transparent shared memory on Tempest (paper
 * section 3).
 *
 * Stache turns part of each node's local memory into a large,
 * fully-associative cache of remote data ("level-3 cache"): pages are
 * allocated and mapped at page grain by a user-level page-fault
 * handler; coherence is maintained at block grain by block-access-
 * fault handlers and active-message handlers running on the NP. The
 * default coherence protocol is a home-based invalidation protocol in
 * the LimitLESS style, implemented entirely in software: 64-bit
 * directory entries (six pointers -> 32-bit bit vector -> auxiliary
 * structure), request deferral at busy entries, and the paper's
 * signature move — the handler for the final invalidation
 * acknowledgment is the one that sends the data. Stache pages are
 * replaced FIFO; modified blocks are written back to their home,
 * clean blocks drop silently (so invalidations tolerate stale
 * sharers).
 */

#ifndef TT_STACHE_STACHE_HH
#define TT_STACHE_STACHE_HH

#include <deque>
#include <unordered_set>
#include <vector>

#include "sim/dense_map.hh"
#include "stache/dir_entry.hh"
#include "stache/params.hh"
#include "typhoon/typhoon_mem_system.hh"

namespace tt
{

class Stache : public ShmProtocol
{
  public:
    /** Page modes (select the fault-handler set; section 5.4). */
    static constexpr std::uint8_t kModeHome = 1;
    static constexpr std::uint8_t kModeStache = 2;

    /** Active-message handler ids of the Stache protocol. */
    enum Handlers : HandlerId
    {
        kGetRO = 0x100, ///< requester -> home: read copy request
        kGetRW,         ///< requester -> home: exclusive request
        kDataRO,        ///< home -> requester: read-only data
        kDataRW,        ///< home -> requester: writable data
        kInval,         ///< home -> sharer: invalidate
        kInvAck,        ///< sharer -> home
        kRecallRW,      ///< home -> owner: give up exclusive copy
        kDowngrade,     ///< home -> owner: demote to read-only
        kPutData,       ///< owner -> home: recalled/downgraded data
        kPutNack,       ///< owner -> home: copy already written back
        kWriteback,     ///< owner -> home: replacement writeback
        kPrefetch,      ///< CPU -> own NP: nonbinding block prefetch
    };

    Stache(Machine& m, TyphoonMemSystem& ms, StacheParams p = {});

    // --- ShmProtocol ------------------------------------------------------
    Addr shmalloc(std::size_t bytes, NodeId home = kNoNode) override;
    NodeId homeOf(Addr va) const override;
    void peek(Addr va, void* buf, std::size_t len) override;
    void poke(Addr va, const void* buf, std::size_t len) override;
    std::string protocolName() const override { return "Stache"; }
    void describeHandlers(FlightRecorder& rec) const override;
    std::vector<MemorySystem::SharedRange> sharedAllocs() const override
    {
        return _allocs;
    }
    // coherentPeek: default (= peek). Stache::peek already reads the
    // exclusive owner's frame when a block is dirty-remote.
    void canonicalize(std::uint64_t epochSeed) override;

    // --- introspection -----------------------------------------------------
    struct BlockView
    {
        StacheDirEntry::State state = StacheDirEntry::State::Idle;
        std::vector<NodeId> sharers;
        NodeId owner = kNoNode;
        bool busy = false;        ///< transaction in flight
        std::uint64_t raw = 0;    ///< the packed 64-bit entry
    };
    BlockView inspect(Addr va) const;

    /**
     * Non-allocating directory peek for the fast checker's audit hot
     * path (DESIGN.md §13): like inspect(), but exposes the entry and
     * aux-table pointers instead of copying the sharer list into a
     * vector. The pointers are only valid until the next protocol
     * event.
     */
    struct BlockPeek
    {
        StacheDirEntry::State state = StacheDirEntry::State::Idle;
        NodeId owner = kNoNode;
        bool busy = false;
        const StacheDirEntry* entry = nullptr;
        const StacheAuxTable* aux = nullptr;
    };
    BlockPeek peekEntry(Addr va) const;

    /** No transient protocol state anywhere. */
    bool quiescent() const { return _transients.empty(); }

    /** Attach the coherence sanitizer (nullptr = disabled). */
    void setChecker(CheckHooks* c) { _checker = c; }

    /**
     * Whole-protocol coherence audit (host-side, zero simulated
     * cost; call only at quiescence). Checks, for every allocated
     * block: the home-tag discipline (Idle=>RW, Shared=>RO,
     * Excl=>Invalid), that every *mapped* sharer holds a ReadOnly
     * copy whose bytes equal the home copy, and that the exclusive
     * owner holds a ReadWrite copy. Returns the number of
     * violations (0 = coherent) and warns on each.
     */
    std::size_t auditCoherence();

    /**
     * Software prefetch (section 5.4's motivating use of the Busy
     * tag): ask the local NP to fetch a read-only copy of the block
     * containing @p va ahead of use. Nonbinding and asynchronous:
     * the block is tagged Busy while outstanding, a later demand
     * fault on a Busy block just waits for the in-flight data, and
     * the arrival handler resumes the CPU only if it is actually
     * suspended on that block. Unmapped pages are mapped by the NP.
     */
    void prefetch(Cpu& cpu, Addr va);
    /** Stache pages currently mapped at @p node. */
    std::size_t stachePagesAt(NodeId node) const;
    const StacheParams& params() const { return _p; }

    /**
     * Resident bytes of the protocol state (telemetry memory probe,
     * DESIGN.md §16): home directories (entry vectors + aux tables),
     * page-home maps, per-node local tables / FIFO / vpn sets, and
     * the in-flight transient table.
     */
    std::size_t footprintBytes() const;

  protected:
    // The custom EM3D protocol (src/custom) subclasses Stache and
    // reuses its home-side machinery for custom page modes.
    struct HomeDir
    {
        std::vector<StacheDirEntry> entries; ///< one per block
        StacheAuxTable aux;
    };

    struct Deferred
    {
        NodeId requester;
        bool wantRW;
        bool upgrade;
        std::uint32_t txn = 0; ///< requester's transaction context
    };

    struct Transient
    {
        NodeId requester = kNoNode;
        bool wantRW = false;
        bool dataless = false; ///< grantable as an upgrade (no block)
        int acksLeft = 0;
        bool awaitingData = false;
        NodeId owner = kNoNode; ///< recall/downgrade target
        bool wasDowngrade = false;
        bool sawWb = false;
        std::deque<Deferred> deferred;
    };

    struct NodeState
    {
        /** The "local table" caching page -> home (section 3). */
        DenseMap<NodeId> homeCache; ///< vpn -> home
        std::deque<Addr> stacheFifo; ///< page base VAs, FIFO order
        std::unordered_set<std::uint64_t> stacheVpns;
    };

    // Handler bodies.
    void onStacheFault(TempestCtx& ctx, const BlockFault& f);
    void onHomeFault(TempestCtx& ctx, const BlockFault& f);
    void onPageFault(TempestCtx& ctx, Addr va, MemOp op);
    void onGet(TempestCtx& ctx, const Message& msg, bool wantRW);
    void onData(TempestCtx& ctx, const Message& msg, bool rw);
    void onInval(TempestCtx& ctx, const Message& msg);
    void onInvAck(TempestCtx& ctx, const Message& msg);
    void onRecall(TempestCtx& ctx, const Message& msg, bool downgrade);
    void onPutData(TempestCtx& ctx, const Message& msg);
    void onPutNack(TempestCtx& ctx, const Message& msg);
    void onWriteback(TempestCtx& ctx, const Message& msg);
    void onPrefetch(TempestCtx& ctx, const Message& msg);

    // Home-side machinery. homeRequest is virtual so custom
    // protocols can reshape requests (e.g. migratory promotion)
    // before the base coherence machine runs.
    virtual void homeRequest(TempestCtx& ctx, Addr blk,
                             NodeId requester, bool wantRW,
                             bool upgrade = false);
    void grantFromHome(TempestCtx& ctx, Addr blk, NodeId requester,
                       bool wantRW, NodeId keep_sharer,
                       bool dataless = false);
    void finishTransient(TempestCtx& ctx, Addr blk,
                         NodeId keep_sharer);

    /**
     * Hook for adaptive subclasses: an owner returned its copy of
     * @p blk; @p modified reports whether the owner's CPU wrote it
     * since the grant (bus-observed; false negatives possible after
     * cache eviction).
     */
    virtual void
    onOwnerDataReturned(Addr blk, NodeId from, bool modified)
    {
        (void)blk;
        (void)from;
        (void)modified;
    }
    void sendBlockData(TempestCtx& ctx, NodeId dst, HandlerId kind,
                       Addr blk);

    /**
     * Subclass extension point for canonicalize (DESIGN.md §15):
     * called at the end of Stache::canonicalize so custom protocols
     * (EM3D update, Migratory) reset their own state the same way.
     */
    virtual void onCanonicalize(std::uint64_t epochSeed)
    {
        (void)epochSeed;
    }

    // Helpers.
    HomeDir& homeDirOf(Addr va);
    const HomeDir* findHomeDir(Addr va) const;
    StacheDirEntry& entryOf(Addr blk);
    std::uint64_t entryKey(Addr blk) const;
    void readBlockHost(NodeId node, Addr blk, void* buf);
    std::uint32_t blocksPerPage() const;

    Machine& _m;
    TyphoonMemSystem& _ms;
    StacheParams _p;
    CheckHooks* _checker = nullptr; ///< coherence sanitizer, opt-in
    const CoreParams& _cp;
    StatSet& _stats;

    DenseMap<NodeId> _pageHome;   ///< vpn -> home
    DenseMap<HomeDir> _homeDirs;  ///< vpn -> dir
    OpenMap<Addr, Transient> _transients; ///< blk -> state
    std::vector<NodeState> _nodes;
    Addr _nextVa = 0x4000'0000;
    NodeId _rr = 0;
    std::vector<MemorySystem::SharedRange> _allocs; ///< shmalloc log

    // Occurrence counters for the Nth-occurrence mutation knobs
    // (StacheParams::faultSkip*Nth / faultCorruptPutNth).
    std::uint32_t _faultDowngrades = 0;
    std::uint32_t _faultInvals = 0;
    std::uint32_t _faultPuts = 0;

    // Hot-path stat handles, resolved once at construction (StatSet
    // hands out stable references).
    Counter& _cPageFaults;
    Counter& _cPageReplacements;
    Counter& _cWritebacks;
    Counter& _cWritebacksReceived;
    Counter& _cPrefetchHitsInFlight;
    Counter& _cGetRo;
    Counter& _cGetRw;
    Counter& _cHomeFaults;
    Counter& _cHomeRequests;
    Counter& _cDeferred;
    Counter& _cInvalsSent;
    Counter& _cRecalls;
    Counter& _cUpgradeGrants;
    Counter& _cDataReceived;
    Counter& _cPrefetches;
};

} // namespace tt

#endif // TT_STACHE_STACHE_HH
