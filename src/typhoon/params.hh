/**
 * @file
 * Typhoon hardware parameters (Table 2, "Typhoon Only") plus the
 * per-primitive NP charging model. The NP is a previous-generation
 * integer core charged one cycle per instruction (section 6), so each
 * Tempest primitive has a small fixed instruction cost; protocol
 * handlers add their own computation via TempestCtx::charge().
 */

#ifndef TT_TYPHOON_PARAMS_HH
#define TT_TYPHOON_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace tt
{

struct TyphoonParams
{
    // Table 2 values.
    std::uint64_t npDcacheSize = 16 * 1024; ///< 16 KB, 2-way
    std::uint32_t npDcacheAssoc = 2;
    std::uint32_t npTlbEntries = 64;  ///< fully assoc., FIFO
    std::uint32_t rtlbEntries = 64;   ///< fully assoc., FIFO
    Tick npTlbMissLatency = 25;       ///< NP TLB and RTLB miss

    // NP dispatch and bus interaction model.
    Tick dispatchCost = 3;    ///< hardware-assisted dispatch loop
    Tick bafDetectCost = 6;   ///< inhibit + nack + BAF buffer fill
    Tick resumeCost = 2;      ///< unmask CPU bus request
    Tick busUpgradeCost = 5;  ///< CPU invalidate transaction on MBus

    // Per-primitive charges (NP instructions / bus cycles).
    Tick tagOpCost = 2;        ///< RTLB memory-mapped tag read/write
    Tick cpuCacheInvCost = 5;  ///< invalidating a CPU cached copy
    Tick blockXferCost = 11;   ///< BXB 32-byte MBus block transfer
    Tick sendSetupCost = 2;    ///< dest register + end-of-message flag
    Tick perWordCost = 1;      ///< queue load/store per 32-bit word
    Tick structHitCost = 1;    ///< protocol structure, NP D-cache hit
    Tick structMissCost = 29;  ///< protocol structure, NP D-cache miss
    Tick mapOpCost = 10;       ///< page map/unmap/alloc operation
    Tick pageTagInitCost = 16; ///< bulk-initialize a page's tags
    Tick pageFaultTrapCost = 50; ///< CPU trap to a user-level handler

    // Bulk transfer engine (section 5.2).
    Tick bulkPacketCost = 8;       ///< NP occupancy per packet
    std::uint32_t bulkChunkBytes = 64; ///< data bytes per packet

    /**
     * Record per-handler instruction averages (stats
     * "np.handler.<id>" / "np.handler.baf"). Off by default: it adds
     * a map lookup per handler activation.
     */
    bool perHandlerStats = false;

    /**
     * Software fine-grain access control model (the "native" CM-5
     * Tempest of section 2, later Blizzard-S): every tag-checked
     * shared access pays this many extra CPU cycles for an inline
     * software check inserted by executable rewriting. 0 (default)
     * models Typhoon's hardware RTLB, which checks for free by
     * snooping the bus. See bench/ablation_sw_tempest.
     */
    Tick swCheckCost = 0;

    /**
     * Protocol trace: keep the last N NP events (handler
     * activations, faults, resumes, bulk packets) in a ring buffer
     * for debugging and sequence-asserting tests. 0 (default) = off.
     */
    std::size_t traceCapacity = 0;
};

} // namespace tt

#endif // TT_TYPHOON_PARAMS_HH
