#include "typhoon/typhoon_mem_system.hh"

#include "check/hooks.hh"
#include "core/cpu.hh"
#include "mem/addr.hh"
#include "sim/logging.hh"

namespace tt
{

// ---------------------------------------------------------------------
// Tempest registration adapter
// ---------------------------------------------------------------------

class TyphoonTempest : public Tempest
{
  public:
    TyphoonTempest(TyphoonMemSystem& ms, NodeId id)
        : _ms(ms), _id(id), _setupCtx(ms, id, 0, /*setup=*/true)
    {
    }

    NodeId nodeId() const override { return _id; }

    void
    registerMsgHandler(HandlerId id, MsgHandler h) override
    {
        auto& handlers = _ms._nodes[_id].msgHandlers;
        tt_assert(!handlers.count(id), "handler ", id,
                  " registered twice at node ", _id);
        handlers.emplace(id, std::move(h));
    }

    void
    registerFaultHandler(std::uint8_t mode, MemOp op,
                         FaultHandler h) override
    {
        auto& handlers = _ms._nodes[_id].faultHandlers;
        const auto key = TyphoonMemSystem::faultKey(mode, op);
        tt_assert(key < handlers.size(),
                  "fault mode out of range: ", int(mode));
        handlers[key] = std::move(h);
    }

    void
    registerPageFaultHandler(PageFaultHandler h) override
    {
        _ms._nodes[_id].pageFaultHandler = std::move(h);
    }

    TempestCtx& setupCtx() override { return _setupCtx; }

  private:
    TyphoonMemSystem& _ms;
    NodeId _id;
    NpCtx _setupCtx;
};

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

TyphoonMemSystem::TyphoonMemSystem(Machine& m, Network& net,
                                   TyphoonParams params)
    : _m(m),
      _net(net),
      _p(params),
      _cp(m.params()),
      _stats(m.stats()),
      _cTlbMisses(m.stats().counter("typhoon.tlb_misses")),
      _cCacheHits(m.stats().counter("typhoon.cache_hits")),
      _cRtlbMisses(m.stats().counter("typhoon.rtlb_misses")),
      _cLocalMisses(m.stats().counter("typhoon.local_misses")),
      _cPageFaults(m.stats().counter("typhoon.page_faults")),
      _cBlockFaults(m.stats().counter("typhoon.block_faults")),
      _cCpuSends(m.stats().counter("typhoon.cpu_sends")),
      _cNpMsgHandled(m.stats().counter("np.msg_handled")),
      _cNpBafHandled(m.stats().counter("np.baf_handled")),
      _cNpInstructions(m.stats().counter("np.instructions")),
      _cNpBulkPackets(m.stats().counter("np.bulk_packets")),
      _cNpTagInvalidates(m.stats().counter("np.tag_invalidates")),
      _cNpResumes(m.stats().counter("np.resumes")),
      _cNpSends(m.stats().counter("np.sends")),
      _cNpBulkTransfers(m.stats().counter("np.bulk_transfers"))
{
    _nodes.resize(_cp.nodes);
    _openSince =
        std::make_unique<std::atomic<Tick>[]>(_cp.nodes);
    for (int i = 0; i < _cp.nodes; ++i)
        _openSince[i].store(kTickMax, std::memory_order_relaxed);
    for (int i = 0; i < _cp.nodes; ++i) {
        Node& n = _nodes[i];
        n.cpuCache = std::make_unique<CacheModel>(
            _cp.cacheSize, _cp.cacheAssoc, _cp.blockSize,
            _cp.seed * 7919 + i);
        n.cpuTlb = std::make_unique<TlbModel>(_cp.tlbEntries);
        n.phys = std::make_unique<PhysMem>(_cp.pageSize);
        n.pt = std::make_unique<PageTable>(_cp.pageSize);
        n.npDcache = std::make_unique<CacheModel>(
            _p.npDcacheSize, _p.npDcacheAssoc, 32,
            _cp.seed * 104729 + i);
        n.npTlb = std::make_unique<TlbModel>(_p.npTlbEntries);
        n.rtlb = std::make_unique<TlbModel>(_p.rtlbEntries);
    }
    _tempest.reserve(_cp.nodes);
    for (NodeId i = 0; i < _cp.nodes; ++i) {
        _tempest.push_back(std::make_unique<TyphoonTempest>(*this, i));
        _net.setReceiver(i, [this, i](Message&& msg) {
            npDeliver(i, std::move(msg));
        });
        registerBuiltinHandlers(i);
    }
}

TyphoonMemSystem::~TyphoonMemSystem() = default;

Tempest&
TyphoonMemSystem::tempest(NodeId n)
{
    return *_tempest.at(n);
}

CacheModel&
TyphoonMemSystem::cpuCacheOf(NodeId n)
{
    return *_nodes.at(n).cpuCache;
}

PhysMem&
TyphoonMemSystem::physOf(NodeId n)
{
    return *_nodes.at(n).phys;
}

PageTable&
TyphoonMemSystem::pageTableOf(NodeId n)
{
    return *_nodes.at(n).pt;
}

AccessTag
TyphoonMemSystem::tagOf(NodeId n, Addr va) const
{
    const Node& node = _nodes.at(n);
    const PageMapping* pm = node.pt->lookup(va);
    tt_assert(pm, "tagOf on unmapped page");
    return blockTag(n, pm->ppage + pageOffset(va, _cp.pageSize));
}

bool
TyphoonMemSystem::npIdle(NodeId n) const
{
    const Node& node = _nodes.at(n);
    return !node.npBusy && node.respQ.empty() && node.reqQ.empty() &&
           !node.baf && node.bulkQ.empty();
}

bool
TyphoonMemSystem::quiescent() const
{
    // npBusy alone is NOT disqualifying: with every queue empty, a
    // set busy flag is just the charged-cycles tail of a handler that
    // already ran — the only pending effect is the busy-clear timer,
    // which canonicalize() neutralizes via the npGen generation. The
    // update protocol's producers routinely carry such a tail into
    // the barrier, and requiring it to drain would make its epochs
    // never checkpointable.
    for (int i = 0; i < _cp.nodes; ++i) {
        const Node& n = _nodes[i];
        if (!n.respQ.empty() || !n.reqQ.empty() || n.baf ||
            !n.bulkQ.empty() || n.suspended)
            return false;
    }
    return true;
}

Tick
TyphoonMemSystem::oldestPendingSince() const
{
    // Watchdog probe: a CPU suspended on a block-access fault, or a
    // posted BAF the NP has not yet serviced, is an open operation.
    // Handler activations and queued messages are excluded — they only
    // matter if they fail to eventually resume a suspended thread, and
    // that failure is exactly what the suspended/baf ages capture.
    // Wait-free scan over the per-node relaxed-atomic snapshots (kept
    // current by noteOpenSince at every suspend/resume/BAF mutation),
    // so the probe never dereferences Node state that another engine
    // lane could be mutating.
    Tick oldest = kTickMax;
    for (int i = 0; i < _cp.nodes; ++i)
        oldest = std::min(
            oldest, _openSince[i].load(std::memory_order_relaxed));
    return oldest;
}

std::string
TyphoonMemSystem::name() const
{
    return "Typhoon/" +
           (_protocol ? _protocol->protocolName() : std::string("none"));
}

std::vector<MemorySystem::SharedRange>
TyphoonMemSystem::sharedAllocs() const
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    return _protocol->sharedAllocs();
}

void
TyphoonMemSystem::coherentPeek(Addr va, void* buf, std::size_t len)
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    _protocol->coherentPeek(va, buf, len);
}

void
TyphoonMemSystem::setupComplete()
{
    // Record the post-shmalloc canonical extents canonicalize()
    // rewinds to (DESIGN.md §15).
    _setupPpn.clear();
    _setupTags.clear();
    for (int i = 0; i < _cp.nodes; ++i) {
        _setupPpn.push_back(_nodes[i].phys->nextPpn());
        _setupTags.push_back(_nodes[i].tags.size());
    }
}

void
TyphoonMemSystem::canonicalize(std::uint64_t epochSeed)
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    tt_assert(!_setupPpn.empty(),
              "canonicalize before setupComplete recorded watermarks");
    // Protocol first: it flushes dirty remote bytes home and unwinds
    // every runtime page mapping (via the rec* backdoors) while the
    // page tables still describe them.
    _protocol->canonicalize(epochSeed);
    for (int i = 0; i < _cp.nodes; ++i) {
        Node& n = _nodes[i];
        n.cpuCache->flushAll();
        n.cpuCache->reseed(epochSeed * 7919 + i);
        n.cpuTlb->flush();
        n.npDcache->flushAll();
        n.npDcache->reseed(epochSeed * 104729 + i);
        n.npTlb->flush();
        n.rtlb->flush();
        // A crash rollback has already destroyed the suspended
        // coroutine frames: clear without dereferencing.
        n.suspended = nullptr;
        n.baf.reset();
        n.respQ.clear();
        n.reqQ.clear();
        n.bulkQ.clear();
        n.npBusy = false;
        ++n.npGen; // neutralize any pending busy-clear timer
        n.tags.resize(_setupTags[static_cast<std::size_t>(i)]);
        n.phys->canonicalizeAllocator(
            _setupPpn[static_cast<std::size_t>(i)]);
        noteOpenSince(i);
    }
}

// ---------------------------------------------------------------------
// Protocol delegation
// ---------------------------------------------------------------------

Addr
TyphoonMemSystem::shmalloc(std::size_t bytes, NodeId home)
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    return _protocol->shmalloc(bytes, home);
}

NodeId
TyphoonMemSystem::homeOf(Addr va) const
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    return _protocol->homeOf(va);
}

void
TyphoonMemSystem::peek(Addr va, void* buf, std::size_t len)
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    _protocol->peek(va, buf, len);
}

void
TyphoonMemSystem::poke(Addr va, const void* buf, std::size_t len)
{
    tt_assert(_protocol, "no protocol installed on Typhoon");
    _protocol->poke(va, buf, len);
    if (_checker)
        _checker->onBackdoorWrite(va, buf, len);
}

// ---------------------------------------------------------------------
// Tag state
// ---------------------------------------------------------------------

TyphoonMemSystem::PageTags&
TyphoonMemSystem::pageTags(NodeId node, std::uint64_t ppn)
{
    auto& tags = _nodes[node].tags;
    tt_assert(ppn < tags.size() && !tags[ppn].tags.empty(),
              "no tag state for physical page ", ppn, " at node ",
              node);
    return tags[ppn];
}

AccessTag
TyphoonMemSystem::blockTag(NodeId node, PAddr pa) const
{
    const auto& tags = _nodes[node].tags;
    const std::uint64_t ppn = pageNum(pa, _cp.pageSize);
    tt_assert(ppn < tags.size() && !tags[ppn].tags.empty(),
              "no tag state for pa ", pa, " at node ", node);
    return tags[ppn]
        .tags[blockInPage(pa, _cp.pageSize, _cp.blockSize)];
}

void
TyphoonMemSystem::setBlockTag(NodeId node, PAddr pa, AccessTag t)
{
    pageTags(node, pageNum(pa, _cp.pageSize))
        .tags[blockInPage(pa, _cp.pageSize, _cp.blockSize)] = t;
}

// ---------------------------------------------------------------------
// Canonicalize backdoors (DESIGN.md §15)
// ---------------------------------------------------------------------
//
// Host-level equivalents of the NpCtx page operations for the
// protocol canonicalize walks: no charging, no checker/observer
// hooks (the checker canonicalizes on its own), no per-block cache
// invalidation (the mechanism-level wholesale flush follows).

void
TyphoonMemSystem::recUnmapPage(NodeId node, Addr va)
{
    Node& n = _nodes[node];
    const PageMapping* pm = n.pt->lookup(va);
    tt_assert(pm, "recUnmapPage of unmapped va ", va);
    const std::uint64_t ppn = pageNum(pm->ppage, _cp.pageSize);
    n.cpuTlb->invalidate(pageNum(va, _cp.pageSize));
    n.npTlb->invalidate(pageNum(va, _cp.pageSize));
    n.rtlb->invalidate(ppn);
    if (ppn < n.tags.size())
        n.tags[ppn] = PageTags{};
    n.pt->unmap(va);
}

void
TyphoonMemSystem::recSetPageTags(NodeId node, Addr va, AccessTag t)
{
    const PageMapping* pm = _nodes[node].pt->lookup(va);
    tt_assert(pm, "recSetPageTags of unmapped va ", va);
    auto& tags =
        pageTags(node, pageNum(pm->ppage, _cp.pageSize)).tags;
    for (auto& tag : tags)
        tag = t;
}

void
TyphoonMemSystem::recFreePhysPage(NodeId node, PAddr pa)
{
    _nodes[node].phys->freePage(pa);
}

// ---------------------------------------------------------------------
// CPU access pipeline
// ---------------------------------------------------------------------

TyphoonMemSystem::PipeResult
TyphoonMemSystem::pipeline(NodeId id, MemRequest* req)
{
    Node& n = _nodes[id];
    const Addr va = req->vaddr;
    tt_assert(withinOneBlock(va, req->size, _cp.blockSize),
              "access crosses a block boundary at ", va);

    PipeResult pr{PipeResult::Kind::Done, 0, {}};
    // Software access-control model: the inline check runs on every
    // shared access, hits included (Typhoon's RTLB makes this 0).
    pr.cost += _p.swCheckCost;
    if (!n.cpuTlb->access(pageNum(va, _cp.pageSize))) {
        pr.cost += _cp.tlbMissLatency;
        _cTlbMisses.inc();
    }

    const PageMapping* pm = n.pt->lookup(va);
    if (!pm || (req->op == MemOp::Write && !pm->writable)) {
        pr.kind = PipeResult::Kind::PageFault;
        return pr;
    }
    const PAddr pa = pm->ppage + pageOffset(va, _cp.pageSize);

    // CPU cache hit: tags are enforced on bus transactions only, and
    // every tag downgrade also purges CPU-cached copies, so a hit is
    // always legal.
    const bool hit = req->op == MemOp::Read ? n.cpuCache->probeRead(va)
                                            : n.cpuCache->probeWrite(va);
    if (hit) {
        _cCacheHits.inc();
        if (req->op == MemOp::Read)
            n.phys->read(pa, req->buf, req->size);
        else
            n.phys->write(pa, req->buf, req->size);
        return pr;
    }

    // Bus transaction: the NP's RTLB observes the physical address.
    if (!n.rtlb->access(pageNum(pa, _cp.pageSize))) {
        pr.cost += _p.npTlbMissLatency; // relinquish-and-retry refetch
        _cRtlbMisses.inc();
    }
    const AccessTag tag = blockTag(id, pa);

    if (req->op == MemOp::Read &&
        (tag == AccessTag::ReadWrite || tag == AccessTag::ReadOnly)) {
        n.cpuCache->fill(va, tag == AccessTag::ReadWrite
                                 ? LineState::Owned
                                 : LineState::Shared);
        pr.cost += _cp.localMissLatency;
        n.phys->read(pa, req->buf, req->size);
        _cLocalMisses.inc();
        return pr;
    }
    if (req->op == MemOp::Write && tag == AccessTag::ReadWrite) {
        if (n.cpuCache->presentShared(va)) {
            n.cpuCache->upgrade(va, true);
            pr.cost += _p.busUpgradeCost;
        } else {
            n.cpuCache->fill(va, LineState::Owned);
            n.cpuCache->probeWrite(va); // dirty
            pr.cost += _cp.localMissLatency;
            _cLocalMisses.inc();
        }
        n.phys->write(pa, req->buf, req->size);
        return pr;
    }

    // Block access fault.
    pr.kind = PipeResult::Kind::BlockFault;
    pr.fault = BlockFault{va, req->op, tag, pm->mode};
    return pr;
}

AccessOutcome
TyphoonMemSystem::access(MemRequest* req)
{
    const NodeId id = req->cpu->id();
    Node& n = _nodes[id];
    PipeResult pr = pipeline(id, req);
    switch (pr.kind) {
      case PipeResult::Kind::Done:
        if (_checker)
            _checker->onAccess(id, req->vaddr, req->size,
                               req->op == MemOp::Write, req->buf);
        if (_obs && _obs->wantSharing())
            _obs->blockAccess(id, req->vaddr, req->size,
                              req->op == MemOp::Write,
                              req->issueTime + pr.cost);
        return {true, pr.cost};
      case PipeResult::Kind::PageFault:
        tt_assert(!n.suspended, "second fault while suspended at ", id);
        n.suspended = req;
        noteOpenSince(id);
        deliverPageFault(id, req, req->issueTime + pr.cost);
        return {false, 0};
      case PipeResult::Kind::BlockFault:
        tt_assert(!n.suspended, "second fault while suspended at ", id);
        n.suspended = req;
        noteOpenSince(id);
        postBaf(id, pr.fault, req->issueTime + pr.cost + _p.bafDetectCost);
        return {false, 0};
    }
    tt_panic("unreachable");
}

void
TyphoonMemSystem::deliverPageFault(NodeId id, MemRequest* req,
                                   Tick when)
{
    _cPageFaults.inc();
    const Tick start = when + _p.pageFaultTrapCost;
    _m.eq().schedule(std::max(start, _m.eq().now()), [this, id, req] {
        Node& n = _nodes[id];
        tt_assert(n.pageFaultHandler,
                  "page fault with no handler at node ", id,
                  " va=", req->vaddr);
        const Tick start2 = _m.eq().now();
        NpCtx ctx(*this, id, start2);
        n.pageFaultHandler(ctx, req->vaddr, req->op);
        traceEvent(id, TraceEvent::Kind::PageFault, 0, ctx.charged());
        if (_obs)
            _obs->handlerDone(id, ActKind::Page, 0, 0, start2,
                              ctx.charged());
        if (_checker)
            _checker->onEventEnd();
        // The handler ran on the CPU; retry the access afterwards.
        retryAccess(id, start2 + ctx.charged());
    });
}

void
TyphoonMemSystem::postBaf(NodeId id, const BlockFault& f, Tick when)
{
    _cBlockFaults.inc();
    _m.eq().schedule(std::max(when, _m.eq().now()), [this, id, f] {
        Node& n = _nodes[id];
        tt_assert(!n.baf, "BAF buffer overflow at node ", id);
        n.baf = Baf{f, _m.eq().now()};
        noteOpenSince(id);
        if (_obs)
            _obs->blockFault(id, f.va, f.op == MemOp::Write,
                             static_cast<std::uint8_t>(f.tag),
                             _m.eq().now());
        npPump(id, _m.eq().now());
    });
}

void
TyphoonMemSystem::retryAccess(NodeId id, Tick when)
{
    _m.eq().schedule(std::max(when, _m.eq().now()), [this, id] {
        Node& n = _nodes[id];
        MemRequest* req = n.suspended;
        tt_assert(req, "resume with no suspended access at node ", id);
        const Tick now = _m.eq().now();
        PipeResult pr = pipeline(id, req);
        switch (pr.kind) {
          case PipeResult::Kind::Done: {
            n.suspended = nullptr;
            noteOpenSince(id);
            if (_checker)
                _checker->onAccess(id, req->vaddr, req->size,
                                   req->op == MemOp::Write, req->buf);
            if (_obs) {
                _obs->missEnd(id, req->vaddr,
                              req->op == MemOp::Write, now + pr.cost);
                if (_obs->wantSharing())
                    _obs->blockAccess(id, req->vaddr, req->size,
                                      req->op == MemOp::Write,
                                      now + pr.cost);
            }
            _m.eq().schedule(now + pr.cost, [req] {
                req->cpu->completeAccess(*req);
            });
            break;
          }
          case PipeResult::Kind::PageFault:
            deliverPageFault(id, req, now + pr.cost);
            break;
          case PipeResult::Kind::BlockFault:
            postBaf(id, pr.fault, now + pr.cost + _p.bafDetectCost);
            break;
        }
    });
}

// ---------------------------------------------------------------------
// NP engine
// ---------------------------------------------------------------------

void
TyphoonMemSystem::traceEvent(NodeId node, TraceEvent::Kind kind,
                             std::uint32_t id, Tick charged)
{
    if (_p.traceCapacity == 0)
        return;
    if (_trace.size() >= _p.traceCapacity)
        _trace.pop_front();
    _trace.push_back(
        TraceEvent{_m.eq().now(), node, kind, id, charged});
}

Average&
TyphoonMemSystem::handlerAverage(bool baf, HandlerId h)
{
    const std::uint64_t key = baf ? ~std::uint64_t{0} : h;
    auto it = _handlerAvg.find(key);
    if (it == _handlerAvg.end()) {
        Average& a = _stats.average(
            baf ? std::string("np.handler.baf")
                : "np.handler." + std::to_string(h));
        it = _handlerAvg.emplace(key, &a).first;
    }
    return *it->second;
}

std::size_t
TyphoonMemSystem::footprintBytes() const
{
    std::size_t b = _nodes.capacity() * sizeof(Node);
    for (const Node& n : _nodes) {
        b += n.cpuCache->footprintBytes();
        b += n.cpuTlb->footprintBytes();
        b += n.phys->footprintBytes();
        b += n.pt->footprintBytes();
        b += n.npDcache->footprintBytes();
        b += n.npTlb->footprintBytes();
        b += n.rtlb->footprintBytes();
        b += n.tags.capacity() * sizeof(PageTags);
        for (const PageTags& pt : n.tags)
            b += pt.tags.capacity() * sizeof(AccessTag);
        b += n.respQ.size() * sizeof(Message);
        b += n.reqQ.size() * sizeof(Message);
        b += n.bulkQ.size() * sizeof(Node::Bulk);
        b += n.msgHandlers.size() *
             (sizeof(HandlerId) + sizeof(MsgHandler));
    }
    b += _trace.size() * sizeof(TraceEvent);
    return b;
}

void
TyphoonMemSystem::npDeliver(NodeId id, Message&& msg)
{
    Node& n = _nodes[id];
    if (msg.vnet == VNet::Response)
        n.respQ.push_back(std::move(msg));
    else
        n.reqQ.push_back(std::move(msg));
    npPump(id, _m.eq().now());
}

void
TyphoonMemSystem::npPump(NodeId id, Tick when)
{
    TelemScope ts(_telem, HostTimer::Cat::Handler);
    Node& n = _nodes[id];
    if (n.npBusy)
        return;

    // Dispatch priority: response net > BAF > request net > bulk.
    Message msg;
    bool haveMsg = false;
    std::optional<Baf> baf;
    if (!n.respQ.empty()) {
        msg = std::move(n.respQ.front());
        n.respQ.pop_front();
        haveMsg = true;
    } else if (n.baf) {
        baf = std::move(n.baf);
        n.baf.reset();
        noteOpenSince(id);
    } else if (!n.reqQ.empty()) {
        msg = std::move(n.reqQ.front());
        n.reqQ.pop_front();
        haveMsg = true;
    } else if (!n.bulkQ.empty()) {
        npRunBulkStep(id, when);
        return;
    } else {
        return; // idle
    }

    NpCtx ctx(*this, id, when);
    ctx.charge(static_cast<std::uint32_t>(_p.dispatchCost));

    if (haveMsg) {
        // Pull the header words from the receive queue: one cycle per
        // word. Data payload stays queued until the handler's
        // force-write, when the BXB moves it queue -> memory in one
        // 32-byte MBus transfer (section 5.1) — charged there.
        ctx.charge(static_cast<std::uint32_t>(
            _p.perWordCost * (1 + msg.args.size())));
        auto it = n.msgHandlers.find(msg.handler);
        tt_assert(it != n.msgHandlers.end(),
                  "no handler registered for message id ", msg.handler,
                  " at node ", id);
        _cNpMsgHandled.inc();
        if (_checker)
            _checker->onMsgDeliver(msg);
        if (_obs) {
            _obs->msgDeliver(id, msg, when);
            // Handler-activation transaction context: messages this
            // handler sends inherit the incoming message's txn
            // (DESIGN.md §14). Ends after handlerDone so the
            // activation record itself carries the id too.
            _obs->beginAct(id, msg.txn);
        }
        it->second(ctx, msg);
        traceEvent(id, TraceEvent::Kind::MsgHandler, msg.handler,
                   ctx.charged());
        if (_obs) {
            _obs->handlerDone(id, ActKind::Msg, msg.handler, msg.obsId,
                              when, ctx.charged());
            _obs->endAct(id);
        }
    } else {
        const auto key = faultKey(baf->fault.mode, baf->fault.op);
        tt_assert(key < n.faultHandlers.size() && n.faultHandlers[key],
                  "no fault handler for mode ",
                  int(baf->fault.mode), " op ",
                  baf->fault.op == MemOp::Write ? "write" : "read",
                  " at node ", id);
        _cNpBafHandled.inc();
        n.faultHandlers[key](ctx, baf->fault);
        traceEvent(id, TraceEvent::Kind::FaultHandler,
                   baf->fault.mode, ctx.charged());
        if (_obs)
            _obs->handlerDone(id, ActKind::Baf, baf->fault.mode, 0,
                              when, ctx.charged());
    }

    if (_checker)
        _checker->onEventEnd();
    _cNpInstructions.inc(ctx.charged());
    if (_p.perHandlerStats) {
        handlerAverage(!haveMsg, haveMsg ? msg.handler : 0)
            .sample(static_cast<double>(ctx.charged()));
    }
    const Tick end = when + ctx.charged();
    n.npBusy = true;
    const std::uint64_t gen = ++n.npGen;
    _m.eq().schedule(end, [this, id, gen] {
        if (_nodes[id].npGen != gen)
            return; // canonicalized away (checkpoint busy tail)
        _nodes[id].npBusy = false;
        npPump(id, _m.eq().now());
    });
}

void
TyphoonMemSystem::npRunBulkStep(NodeId id, Tick start)
{
    Node& n = _nodes[id];
    Node::Bulk& b = n.bulkQ.front();
    const std::uint32_t chunk =
        std::min(b.remaining, _p.bulkChunkBytes);

    Message m;
    m.src = id;
    m.dst = b.dst;
    m.vnet = VNet::Request;
    m.handler = kBulkDataHandler;
    m.pushAddr(b.dstVa);
    const bool last = chunk == b.remaining;
    m.args.push_back(last ? 1 : 0);
    m.args.push_back(b.doneHandler);
    m.data.resize(chunk);
    // Gather the data from local memory through the page table.
    for (std::uint32_t off = 0; off < chunk;) {
        const Addr va = b.srcVa + off;
        const std::uint32_t in_page = static_cast<std::uint32_t>(
            _cp.pageSize - pageOffset(va, _cp.pageSize));
        const std::uint32_t len = std::min(chunk - off, in_page);
        n.phys->read(n.pt->translate(va), m.data.data() + off, len);
        off += len;
    }
    _net.send(std::move(m), start + _p.bulkPacketCost);
    _cNpBulkPackets.inc();
    traceEvent(id, TraceEvent::Kind::BulkPacket, chunk,
               _p.bulkPacketCost);
    if (_obs)
        _obs->bulkPacket(id, chunk, start, _p.bulkPacketCost);

    b.srcVa += chunk;
    b.dstVa += chunk;
    b.remaining -= chunk;
    if (b.remaining == 0)
        n.bulkQ.pop_front();

    n.npBusy = true;
    const std::uint64_t gen = ++n.npGen;
    _m.eq().schedule(start + _p.bulkPacketCost, [this, id, gen] {
        if (_nodes[id].npGen != gen)
            return; // canonicalized away (checkpoint busy tail)
        _nodes[id].npBusy = false;
        npPump(id, _m.eq().now());
    });
}

void
TyphoonMemSystem::registerBuiltinHandlers(NodeId id)
{
    Node& n = _nodes[id];
    n.msgHandlers[kBulkDataHandler] = [this](TempestCtx& ctx,
                                             const Message& msg) {
        const Addr dstVa = msg.addrArg(0);
        const bool last = msg.args.at(2) != 0;
        const HandlerId done = msg.args.at(3);
        ctx.charge(4); // header decode
        ctx.forceWrite(dstVa, msg.data.data(),
                       static_cast<std::uint32_t>(msg.data.size()));
        if (last && done != 0) {
            auto it = _nodes[ctx.nodeId()].msgHandlers.find(done);
            tt_assert(it != _nodes[ctx.nodeId()].msgHandlers.end(),
                      "bulk done-handler ", done, " not registered");
            it->second(ctx, msg);
        }
    };
}

void
TyphoonMemSystem::cpuSend(Cpu& cpu, NodeId dst, HandlerId h,
                          Message::Args args, Message::Data data)
{
    // Memory-mapped stores across the MBus: destination register, one
    // store per word, end-of-message flag.
    Message m;
    m.src = cpu.id();
    m.dst = dst;
    m.vnet = VNet::Request;
    m.handler = h;
    m.args = std::move(args);
    m.data = std::move(data);
    cpu.advance(_p.sendSetupCost + _p.perWordCost * m.sizeWords());
    _cCpuSends.inc();
    _net.send(std::move(m), cpu.localTime());
}

// ---------------------------------------------------------------------
// NpCtx: the Tempest operations with Typhoon charging
// ---------------------------------------------------------------------

void
NpCtx::charge(std::uint32_t instructions)
{
    if (!_setup)
        _t += instructions;
}

PAddr
NpCtx::translate(Addr va) const
{
    return _ms._nodes[_node].pt->translate(va);
}

void
NpCtx::tagTiming(Addr va)
{
    if (_setup)
        return;
    auto& n = _ms._nodes[_node];
    if (!n.npTlb->access(pageNum(va, _ms._cp.pageSize)))
        _t += _ms._p.npTlbMissLatency;
    _t += _ms._p.tagOpCost;
}

AccessTag
NpCtx::readTag(Addr va)
{
    tagTiming(va);
    return _ms.blockTag(_node, translate(va));
}

void
NpCtx::setRW(Addr va)
{
    tagTiming(va);
    _ms.setBlockTag(_node, translate(va), AccessTag::ReadWrite);
    if (_ms._checker)
        _ms._checker->onTagChange(_node,
                                  blockAlign(va, _ms._cp.blockSize),
                                  AccessTag::ReadWrite);
    if (_ms._obs)
        _ms._obs->tagChange(
            _node, blockAlign(va, _ms._cp.blockSize),
            static_cast<std::uint8_t>(AccessTag::ReadWrite),
            _start + _t);
}

void
NpCtx::setRO(Addr va)
{
    tagTiming(va);
    _ms.setBlockTag(_node, translate(va), AccessTag::ReadOnly);
    // Any exclusively-held CPU copy loses ownership (bus shared line).
    if (_ms._nodes[_node].cpuCache->downgrade(va))
        charge(static_cast<std::uint32_t>(_ms._p.cpuCacheInvCost));
    if (_ms._checker)
        _ms._checker->onTagChange(_node,
                                  blockAlign(va, _ms._cp.blockSize),
                                  AccessTag::ReadOnly);
    if (_ms._obs)
        _ms._obs->tagChange(
            _node, blockAlign(va, _ms._cp.blockSize),
            static_cast<std::uint8_t>(AccessTag::ReadOnly),
            _start + _t);
}

void
NpCtx::setBusy(Addr va)
{
    tagTiming(va);
    _ms.setBlockTag(_node, translate(va), AccessTag::Busy);
    if (_ms._nodes[_node].cpuCache->invalidate(va) != LineState::Invalid)
        charge(static_cast<std::uint32_t>(_ms._p.cpuCacheInvCost));
    if (_ms._checker)
        _ms._checker->onTagChange(_node,
                                  blockAlign(va, _ms._cp.blockSize),
                                  AccessTag::Busy);
    if (_ms._obs)
        _ms._obs->tagChange(_node, blockAlign(va, _ms._cp.blockSize),
                            static_cast<std::uint8_t>(AccessTag::Busy),
                            _start + _t);
}

void
NpCtx::invalidate(Addr va)
{
    tagTiming(va);
    _ms.setBlockTag(_node, translate(va), AccessTag::Invalid);
    // Invalidate any local CPU-cached copy via the bus (section 5.4).
    if (_ms._nodes[_node].cpuCache->invalidate(va) != LineState::Invalid)
        charge(static_cast<std::uint32_t>(_ms._p.cpuCacheInvCost));
    _ms._cNpTagInvalidates.inc();
    if (_ms._checker)
        _ms._checker->onTagChange(_node,
                                  blockAlign(va, _ms._cp.blockSize),
                                  AccessTag::Invalid);
    if (_ms._obs)
        _ms._obs->tagChange(
            _node, blockAlign(va, _ms._cp.blockSize),
            static_cast<std::uint8_t>(AccessTag::Invalid), _start + _t);
}

void
NpCtx::forceRead(Addr va, void* buf, std::uint32_t len)
{
    auto& n = _ms._nodes[_node];
    if (!_setup) {
        if (!n.npTlb->access(pageNum(va, _ms._cp.pageSize)))
            _t += _ms._p.npTlbMissLatency;
        // Whole blocks ride the BXB; smaller accesses go through the
        // NP data cache.
        if (len >= 32) {
            _t += _ms._p.blockXferCost * ((len + 31) / 32);
        } else if (n.npDcache->probeRead(va)) {
            _t += _ms._p.structHitCost;
        } else {
            n.npDcache->fill(va, LineState::Shared);
            _t += _ms._p.structMissCost;
        }
    }
    n.phys->read(translate(va), buf, len);
}

void
NpCtx::forceWrite(Addr va, const void* buf, std::uint32_t len)
{
    auto& n = _ms._nodes[_node];
    if (!_setup) {
        if (!n.npTlb->access(pageNum(va, _ms._cp.pageSize)))
            _t += _ms._p.npTlbMissLatency;
        if (len >= 32) {
            _t += _ms._p.blockXferCost * ((len + 31) / 32);
        } else {
            _t += _ms._p.structHitCost;
        }
    }
    n.phys->write(translate(va), buf, len);
    // BXB writes stay coherent with the CPU cache: purge stale copies.
    const Addr first = blockAlign(va, _ms._cp.blockSize);
    const Addr last = blockAlign(va + (len ? len - 1 : 0),
                                 _ms._cp.blockSize);
    for (Addr b = first; b <= last; b += _ms._cp.blockSize) {
        if (n.cpuCache->invalidate(b) != LineState::Invalid)
            charge(static_cast<std::uint32_t>(_ms._p.cpuCacheInvCost));
    }
}

void
NpCtx::resume()
{
    charge(static_cast<std::uint32_t>(_ms._p.resumeCost));
    _ms._cNpResumes.inc();
    _ms.traceEvent(_node, TyphoonMemSystem::TraceEvent::Kind::Resume,
                   0, _t);
    if (_ms._obs)
        _ms._obs->resume(_node, _start + _t);
    _ms.retryAccess(_node, _start + _t);
}

bool
NpCtx::threadSuspendedOn(Addr block_va) const
{
    const MemRequest* req = _ms._nodes[_node].suspended;
    if (!req)
        return false;
    return blockAlign(req->vaddr, _ms._cp.blockSize) ==
           blockAlign(block_va, _ms._cp.blockSize);
}

bool
NpCtx::cpuCopyDirty(Addr va)
{
    charge(2); // bus probe
    return _ms._nodes[_node].cpuCache->probeDirty(va);
}

void
NpCtx::send(NodeId dst, HandlerId handler, std::span<const Word> args,
            const void* data, std::uint32_t data_len, VNet vnet)
{
    Message m;
    m.src = _node;
    m.dst = dst;
    m.vnet = vnet;
    m.handler = handler;
    m.args.assign(args.begin(), args.end());
    if (data_len) {
        m.data.resize(data_len);
        std::memcpy(m.data.data(), data, data_len);
    }
    charge(static_cast<std::uint32_t>(
        _ms._p.sendSetupCost +
        _ms._p.perWordCost * (1 + args.size())));
    if (data_len)
        charge(static_cast<std::uint32_t>(
            _ms._p.blockXferCost * ((data_len + 31) / 32)));
    _ms._cNpSends.inc();
    _ms._net.send(std::move(m), _setup ? _ms._m.eq().now()
                                       : _start + _t);
}

PAddr
NpCtx::allocPhysPage()
{
    charge(static_cast<std::uint32_t>(_ms._p.mapOpCost));
    return _ms._nodes[_node].phys->allocPage();
}

void
NpCtx::freePhysPage(PAddr pa)
{
    charge(static_cast<std::uint32_t>(_ms._p.mapOpCost));
    _ms._nodes[_node].phys->freePage(pa);
}

void
NpCtx::mapPage(Addr va, PAddr pa, std::uint8_t mode)
{
    charge(static_cast<std::uint32_t>(_ms._p.mapOpCost));
    auto& n = _ms._nodes[_node];
    n.pt->map(va, pa, mode);
    // Fresh tag state: everything Invalid until the protocol says
    // otherwise.
    TyphoonMemSystem::PageTags fresh;
    fresh.tags.assign(_ms._cp.pageSize / _ms._cp.blockSize,
                      AccessTag::Invalid);
    const std::uint64_t ppn = pageNum(pa, _ms._cp.pageSize);
    if (ppn >= n.tags.size())
        n.tags.resize(ppn + 1);
    n.tags[ppn] = std::move(fresh);
    if (_ms._checker)
        _ms._checker->onPageMap(_node,
                                alignDown(va, _ms._cp.pageSize), mode);
    if (_ms._obs)
        _ms._obs->pageMap(_node, alignDown(va, _ms._cp.pageSize), mode,
                          _start + _t);
}

void
NpCtx::unmapPage(Addr va)
{
    charge(static_cast<std::uint32_t>(_ms._p.mapOpCost));
    auto& n = _ms._nodes[_node];
    const PageMapping* pm = n.pt->lookup(va);
    tt_assert(pm, "unmapPage of unmapped va ", va);
    const std::uint64_t ppn = pageNum(pm->ppage, _ms._cp.pageSize);
    // Purge every cached copy and translation of the dying page.
    const Addr page = alignDown(va, _ms._cp.pageSize);
    for (Addr b = page; b < page + _ms._cp.pageSize;
         b += _ms._cp.blockSize)
        n.cpuCache->invalidate(b);
    n.cpuTlb->invalidate(pageNum(va, _ms._cp.pageSize));
    n.npTlb->invalidate(pageNum(va, _ms._cp.pageSize));
    n.rtlb->invalidate(ppn);
    n.tags[ppn] = TyphoonMemSystem::PageTags{};
    n.pt->unmap(va);
    if (_ms._checker)
        _ms._checker->onPageUnmap(_node, page);
    if (_ms._obs)
        _ms._obs->pageUnmap(_node, page, _start + _t);
}

void
NpCtx::remapPage(Addr old_va, Addr new_va, std::uint8_t mode)
{
    const PageMapping* pm = _ms._nodes[_node].pt->lookup(old_va);
    tt_assert(pm, "remapPage of unmapped va ", old_va);
    const PAddr pa = pm->ppage;
    unmapPage(old_va);
    mapPage(new_va, pa, mode);
}

bool
NpCtx::pageMapped(Addr va) const
{
    return _ms._nodes[_node].pt->lookup(va) != nullptr;
}

bool
NpCtx::pageWritable(Addr va) const
{
    const PageMapping* pm = _ms._nodes[_node].pt->lookup(va);
    tt_assert(pm, "pageWritable of unmapped va ", va);
    return pm->writable;
}

void
NpCtx::setPageWritable(Addr va, bool writable)
{
    charge(static_cast<std::uint32_t>(_ms._p.mapOpCost));
    auto& n = _ms._nodes[_node];
    const PageMapping* pm = n.pt->lookup(va);
    tt_assert(pm, "setPageWritable of unmapped va ", va);
    const_cast<PageMapping*>(pm)->writable = writable;
    // Permission tightening must be visible to the running CPU.
    if (!writable)
        n.cpuTlb->invalidate(pageNum(va, _ms._cp.pageSize));
}

std::uint64_t
NpCtx::pageUserWord(Addr va) const
{
    const PageMapping* pm = _ms._nodes[_node].pt->lookup(va);
    tt_assert(pm, "pageUserWord of unmapped va ", va);
    return const_cast<NpCtx*>(this)
        ->_ms.pageTags(_node, pageNum(pm->ppage, _ms._cp.pageSize))
        .userWord;
}

void
NpCtx::setPageUserWord(Addr va, std::uint64_t w)
{
    charge(static_cast<std::uint32_t>(_ms._p.tagOpCost));
    const PageMapping* pm = _ms._nodes[_node].pt->lookup(va);
    tt_assert(pm, "setPageUserWord of unmapped va ", va);
    _ms.pageTags(_node, pageNum(pm->ppage, _ms._cp.pageSize))
        .userWord = w;
}

void
NpCtx::structAccess(std::uint64_t key)
{
    if (_setup)
        return;
    auto& n = _ms._nodes[_node];
    if (n.npDcache->probeRead(key)) {
        _t += _ms._p.structHitCost;
    } else {
        n.npDcache->fill(key, LineState::Owned);
        _t += _ms._p.structMissCost;
    }
}

void
NpCtx::bulkTransfer(Addr src_va, NodeId dst, Addr dst_va,
                    std::uint32_t len, HandlerId done_handler)
{
    charge(6); // stage the transfer descriptor
    auto& n = _ms._nodes[_node];
    n.bulkQ.push_back(
        TyphoonMemSystem::Node::Bulk{src_va, dst, dst_va, len,
                                     done_handler});
    _ms._cNpBulkTransfers.inc();
    // Kick the engine if the NP is otherwise idle: the transfer
    // thread runs when the dispatch loop has nothing better to do.
    const Tick at = _setup ? _ms._m.eq().now() : _start + _t;
    _ms._m.eq().schedule(std::max(at, _ms._m.eq().now()),
                         [ms = &_ms, node = _node] {
                             ms->npPump(node, ms->_m.eq().now());
                         });
}

void
NpCtx::setPageTags(Addr va, AccessTag t)
{
    charge(static_cast<std::uint32_t>(_ms._p.pageTagInitCost));
    const PageMapping* pm = _ms._nodes[_node].pt->lookup(va);
    tt_assert(pm, "setPageTags of unmapped va ", va);
    auto& tags =
        _ms.pageTags(_node, pageNum(pm->ppage, _ms._cp.pageSize)).tags;
    for (auto& tag : tags)
        tag = t;
    if (_ms._checker)
        _ms._checker->onPageTags(_node,
                                 alignDown(va, _ms._cp.pageSize), t);
}

} // namespace tt
