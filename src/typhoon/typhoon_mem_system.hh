/**
 * @file
 * Typhoon: the hardware implementation of the Tempest interface
 * (paper section 5).
 *
 * Each node couples a commodity CPU (cache + TLB timing models, local
 * physical memory, a user-managed page table) with a network
 * interface processor (NP). The NP snoops the memory bus to enforce
 * per-block access tags held in a reverse TLB (RTLB): permitted
 * accesses complete at memory speed; violations suspend the CPU
 * ("relinquish and retry" + masked bus request) and enter the NP's
 * block-access-fault (BAF) buffer. A hardware-assisted dispatch loop
 * runs user-level handlers to completion — priority order: response
 * virtual network, BAF, request virtual network — charging one cycle
 * per NP instruction.
 *
 * The policy layer (Stache, custom protocols) is installed as a
 * ShmProtocol and a set of registered message/fault handlers; Typhoon
 * itself implements mechanism only.
 */

#ifndef TT_TYPHOON_TYPHOON_MEM_SYSTEM_HH
#define TT_TYPHOON_TYPHOON_MEM_SYSTEM_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/machine.hh"
#include "core/memsys.hh"
#include "core/tempest.hh"
#include "sim/host_timer.hh"
#include "mem/cache_model.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb_model.hh"
#include "net/network.hh"
#include "typhoon/params.hh"

namespace tt
{

class CheckHooks;
class TyphoonMemSystem;

/**
 * The protocol library installed on Typhoon: owns shared-segment
 * allocation policy and the authoritative-copy backdoors.
 */
class ShmProtocol
{
  public:
    virtual ~ShmProtocol() = default;
    virtual Addr shmalloc(std::size_t bytes, NodeId home) = 0;
    virtual NodeId homeOf(Addr va) const = 0;
    virtual void peek(Addr va, void* buf, std::size_t len) = 0;
    virtual void poke(Addr va, const void* buf, std::size_t len) = 0;
    virtual std::string protocolName() const = 0;

    /**
     * Every shared segment ever allocated, in allocation order — the
     * checkpoint universe (DESIGN.md §15). Default: none (the
     * protocol does not support checkpointing).
     */
    virtual std::vector<MemorySystem::SharedRange>
    sharedAllocs() const
    {
        return {};
    }

    /**
     * Like coherentPeek on MemorySystem: read the latest coherent
     * bytes even while a remote copy is dirty. Default: peek (the
     * home copy is authoritative).
     */
    virtual void
    coherentPeek(Addr va, void* buf, std::size_t len)
    {
        peek(va, buf, len);
    }

    /**
     * Protocol-side canonicalize (DESIGN.md §15): rebuild directory /
     * pattern state to the post-shmalloc canonical form and undo every
     * runtime page mapping via the host backdoors. Called by
     * TyphoonMemSystem::canonicalize before the mechanism-level reset.
     * Default: unsupported.
     */
    virtual void
    canonicalize(std::uint64_t epochSeed)
    {
        (void)epochSeed;
        tt_panic("protocol '", protocolName(),
                 "' does not support canonicalize");
    }

    /**
     * Register this protocol's handler-id -> name table with a flight
     * recorder (names show up in Perfetto slices and ring dumps).
     */
    virtual void describeHandlers(FlightRecorder& rec) const
    {
        (void)rec;
    }
};

class TyphoonMemSystem : public MemorySystem
{
  public:
    TyphoonMemSystem(Machine& m, Network& net, TyphoonParams params);
    ~TyphoonMemSystem() override;

    // --- MemorySystem ---------------------------------------------------
    AccessOutcome access(MemRequest* req) override;
    Addr shmalloc(std::size_t bytes, NodeId home = kNoNode) override;
    NodeId homeOf(Addr va) const override;
    void peek(Addr va, void* buf, std::size_t len) override;
    void poke(Addr va, const void* buf, std::size_t len) override;
    Tick oldestPendingSince() const override;
    std::vector<SharedRange> sharedAllocs() const override;
    void coherentPeek(Addr va, void* buf, std::size_t len) override;
    void setupComplete() override;
    void canonicalize(std::uint64_t epochSeed) override;
    std::string name() const override;

    /** Install the user-level protocol (Stache etc.); not owned. */
    void setProtocol(ShmProtocol* p) { _protocol = p; }

    /** The per-node Tempest registration interface. */
    Tempest& tempest(NodeId n);

    /**
     * App-level operation: the computation processor sends an active
     * message via memory-mapped stores (section 5.1), charging the
     * CPU one cycle per word. dst == self short-circuits the network
     * into the local NP. Fire-and-forget: no suspension.
     */
    void cpuSend(Cpu& cpu, NodeId dst, HandlerId h,
                 Message::Args args, Message::Data data = {});

    // --- introspection (tests/benches) -----------------------------------
    CacheModel& cpuCacheOf(NodeId n);
    PhysMem& physOf(NodeId n);
    PageTable& pageTableOf(NodeId n);
    AccessTag tagOf(NodeId n, Addr va) const;
    bool npIdle(NodeId n) const;

    /** One protocol trace record (enabled via traceCapacity). */
    struct TraceEvent
    {
        enum class Kind : std::uint8_t
        {
            MsgHandler,  ///< active-message handler ran; id = handler
            FaultHandler,///< BAF handler ran; id = fault mode
            PageFault,   ///< page-fault handler ran on the CPU
            Resume,      ///< the suspended thread was restarted
            BulkPacket,  ///< bulk engine injected a packet
        };
        Tick tick = 0;
        NodeId node = kNoNode;
        Kind kind = Kind::MsgHandler;
        std::uint32_t id = 0;
        Tick charged = 0;
    };

    /** The trace ring (oldest first). Empty unless traceCapacity>0. */
    const std::deque<TraceEvent>& trace() const { return _trace; }
    void clearTrace() { _trace.clear(); }
    /** True iff all NPs are idle with empty queues and no BAF. */
    bool quiescent() const override;
    const TyphoonParams& params() const { return _p; }

    /**
     * Canonicalize backdoors (DESIGN.md §15): host-level page
     * operations for the protocol-side canonicalize walks. Unlike the
     * NpCtx equivalents they charge nothing, fire no checker/observer
     * hooks (the checker canonicalizes separately), and skip
     * per-block cache invalidation (a wholesale flush follows).
     */
    void recUnmapPage(NodeId n, Addr va);
    void recSetPageTags(NodeId n, Addr va, AccessTag t);
    void recFreePhysPage(NodeId n, PAddr pa);

    /** Attach the coherence sanitizer (nullptr = disabled). */
    void setChecker(CheckHooks* c) { _checker = c; }

    /** Attach the self-telemetry timer (nullptr = off, DESIGN.md §16). */
    void setTelemetry(HostTimer* t) { _telem = t; }

    /**
     * Resident bytes of the mechanism state (telemetry memory probe):
     * per-node timing models, physical memory backing, page tables,
     * tag blocks, NP queues, and the protocol trace ring.
     */
    std::size_t footprintBytes() const;

    /** Attach the flight recorder (nullptr = disabled). */
    void
    setRecorder(FlightRecorder* r)
    {
        _obs = r;
        if (r)
            r->nameHandler(kBulkDataHandler, "bulk_data");
    }

    /** The attached recorder (protocols emit sharing records via it). */
    FlightRecorder* recorder() const { return _obs; }

  private:
    friend class NpCtx;
    friend class TyphoonTempest;

    /** Per-page tag block (the RTLB's backing state). */
    struct PageTags
    {
        std::vector<AccessTag> tags; ///< one per block in the page
        std::uint64_t userWord = 0;  ///< 48-bit uninterpreted state
    };

    /** Block access fault record (the BAF buffer entry). */
    struct Baf
    {
        BlockFault fault;
        Tick postedAt = 0;
    };

    struct Node
    {
        // CPU side.
        std::unique_ptr<CacheModel> cpuCache;
        std::unique_ptr<TlbModel> cpuTlb;
        std::unique_ptr<PhysMem> phys;
        std::unique_ptr<PageTable> pt;
        MemRequest* suspended = nullptr;

        // NP side.
        std::unique_ptr<CacheModel> npDcache;
        std::unique_ptr<TlbModel> npTlb;
        std::unique_ptr<TlbModel> rtlb;
        /**
         * Tag state, indexed by ppn. Node physical pages are
         * bump-allocated from ppn 1, so the vector stays dense; a
         * page with no per-block tags vector is unbacked.
         */
        std::vector<PageTags> tags;
        std::deque<Message> respQ;
        std::deque<Message> reqQ;
        std::optional<Baf> baf;
        bool npBusy = false;
        /**
         * Busy-clear event generation (DESIGN.md §15): each scheduled
         * npBusy-clear captures the generation at schedule time and
         * becomes a no-op if canonicalize() bumped it meanwhile — a
         * checkpoint taken during a handler's charged-cycles tail
         * must not let the stale timer clear a fresh activation.
         */
        std::uint64_t npGen = 0;
        std::unordered_map<HandlerId, MsgHandler> msgHandlers;
        /** Indexed by faultKey(); modes are small (<= 15). */
        std::array<FaultHandler, 32> faultHandlers;
        PageFaultHandler pageFaultHandler;

        // Bulk transfer engine.
        struct Bulk
        {
            Addr srcVa;
            NodeId dst;
            Addr dstVa;
            std::uint32_t remaining;
            HandlerId doneHandler;
        };
        std::deque<Bulk> bulkQ;
    };

    static std::uint16_t
    faultKey(std::uint8_t mode, MemOp op)
    {
        return static_cast<std::uint16_t>(mode) << 1 |
               (op == MemOp::Write ? 1 : 0);
    }

    // CPU access pipeline.
    struct PipeResult
    {
        enum class Kind { Done, PageFault, BlockFault } kind;
        Tick cost = 0;
        BlockFault fault{};
    };
    PipeResult pipeline(NodeId node, MemRequest* req);
    void retryAccess(NodeId node, Tick when);
    void deliverPageFault(NodeId node, MemRequest* req, Tick when);
    void postBaf(NodeId node, const BlockFault& f, Tick when);

    // NP engine.
    void npDeliver(NodeId node, Message&& msg);
    void npPump(NodeId node, Tick when);
    void npRunBulkStep(NodeId node, Tick start);
    void registerBuiltinHandlers(NodeId node);

    // Tag access helpers (zero-cost; timing charged by callers).
    PageTags& pageTags(NodeId node, std::uint64_t ppn);
    AccessTag blockTag(NodeId node, PAddr pa) const;
    void setBlockTag(NodeId node, PAddr pa, AccessTag t);

    void traceEvent(NodeId node, TraceEvent::Kind kind,
                    std::uint32_t id, Tick charged);

    /** Cached per-handler Average (only when perHandlerStats). */
    Average& handlerAverage(bool baf, HandlerId h);

    Machine& _m;
    Network& _net;
    TyphoonParams _p;
    const CoreParams& _cp;
    StatSet& _stats;
    ShmProtocol* _protocol = nullptr;
    CheckHooks* _checker = nullptr; ///< coherence sanitizer, opt-in
    FlightRecorder* _obs = nullptr; ///< flight recorder, opt-in
    HostTimer* _telem = nullptr;    ///< self-telemetry timer, opt-in
    std::vector<Node> _nodes;
    std::vector<std::unique_ptr<Tempest>> _tempest;
    std::deque<TraceEvent> _trace;

    /**
     * Post-setup canonical extents, recorded by setupComplete(): the
     * per-node physical-page allocator watermark and tags-vector size
     * canonicalize() rewinds to (DESIGN.md §15).
     */
    std::vector<std::uint64_t> _setupPpn;
    std::vector<std::size_t> _setupTags;

    /**
     * Per-node open-operation snapshot for the watchdog probe:
     * min(suspended->issueTime, baf->postedAt), kTickMax when idle.
     * Maintained O(1) at the suspend/resume/BAF mutation sites so
     * oldestPendingSince() is a wait-free relaxed-atomic scan that
     * never chases the Node pointers (safe under the parallel
     * engine — DESIGN.md §12).
     */
    std::unique_ptr<std::atomic<Tick>[]> _openSince;

    /** Recompute node @p id's _openSince cell (after any mutation). */
    void
    noteOpenSince(NodeId id)
    {
        const Node& n = _nodes[id];
        Tick t = kTickMax;
        if (n.suspended)
            t = std::min(t, n.suspended->issueTime);
        if (n.baf)
            t = std::min(t, n.baf->postedAt);
        _openSince[id].store(t, std::memory_order_relaxed);
    }

    // Hot-path stat handles, resolved once at construction (StatSet
    // hands out stable references).
    Counter& _cTlbMisses;
    Counter& _cCacheHits;
    Counter& _cRtlbMisses;
    Counter& _cLocalMisses;
    Counter& _cPageFaults;
    Counter& _cBlockFaults;
    Counter& _cCpuSends;
    Counter& _cNpMsgHandled;
    Counter& _cNpBafHandled;
    Counter& _cNpInstructions;
    Counter& _cNpBulkPackets;
    Counter& _cNpTagInvalidates;
    Counter& _cNpResumes;
    Counter& _cNpSends;
    Counter& _cNpBulkTransfers;
    std::unordered_map<std::uint64_t, Average*> _handlerAvg;

    /** Built-in handler ids (top of the id space). */
    static constexpr HandlerId kBulkDataHandler = 0xFFFF'0001;
};

/**
 * Handler execution context: implements TempestCtx with Typhoon's
 * charging model. One is created per handler activation (or per
 * setup-time call via Tempest::setupCtx(), where charges are
 * discarded).
 */
class NpCtx : public TempestCtx
{
  public:
    NpCtx(TyphoonMemSystem& ms, NodeId node, Tick start,
          bool setup = false)
        : _ms(ms), _node(node), _start(start), _setup(setup)
    {
    }

    NodeId nodeId() const override { return _node; }
    void charge(std::uint32_t instructions) override;
    Tick charged() const override { return _t; }

    AccessTag readTag(Addr va) override;
    void setRW(Addr va) override;
    void setRO(Addr va) override;
    void setBusy(Addr va) override;
    void invalidate(Addr va) override;
    void forceRead(Addr va, void* buf, std::uint32_t len) override;
    void forceWrite(Addr va, const void* buf,
                    std::uint32_t len) override;
    void resume() override;
    bool threadSuspendedOn(Addr block_va) const override;
    bool cpuCopyDirty(Addr va) override;

    void send(NodeId dst, HandlerId handler,
              std::span<const Word> args, const void* data,
              std::uint32_t data_len, VNet vnet) override;

    PAddr allocPhysPage() override;
    void freePhysPage(PAddr pa) override;
    void mapPage(Addr va, PAddr pa, std::uint8_t mode) override;
    void unmapPage(Addr va) override;
    void remapPage(Addr old_va, Addr new_va,
                   std::uint8_t mode) override;
    bool pageMapped(Addr va) const override;
    bool pageWritable(Addr va) const override;
    void setPageWritable(Addr va, bool writable) override;
    std::uint64_t pageUserWord(Addr va) const override;
    void setPageUserWord(Addr va, std::uint64_t w) override;
    void structAccess(std::uint64_t key) override;
    void bulkTransfer(Addr src_va, NodeId dst, Addr dst_va,
                      std::uint32_t len,
                      HandlerId done_handler = 0) override;
    void setPageTags(Addr va, AccessTag t) override;

  private:
    void tagTiming(Addr va);
    PAddr translate(Addr va) const;

    TyphoonMemSystem& _ms;
    NodeId _node;
    Tick _start;
    bool _setup;
    Tick _t = 0;
};

} // namespace tt

#endif // TT_TYPHOON_TYPHOON_MEM_SYSTEM_HH
