/**
 * @file
 * Unit/property tests of the application kernels themselves:
 * partitioning helpers, ChunkedArray addressing, and per-app physics
 * invariants (Barnes against a brute-force O(N^2) oracle, MP3D
 * conservation and wall behaviour, Ocean boundary invariance and
 * convergence, EM3D linearity, Appbt determinism).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "sim/random.hh"

namespace tt
{
namespace
{

// --------------------------------------------------------------------
// Partitioning helpers
// --------------------------------------------------------------------

struct RangeCase
{
    std::size_t count;
    int nproc;
};

class BlockRangeProperty : public ::testing::TestWithParam<RangeCase>
{
};

TEST_P(BlockRangeProperty, RangesPartitionExactly)
{
    const auto [count, nproc] = GetParam();
    std::size_t covered = 0;
    std::size_t prevEnd = 0;
    for (int p = 0; p < nproc; ++p) {
        const IndexRange r = blockRange(count, nproc, p);
        EXPECT_EQ(r.begin, prevEnd) << "gap before proc " << p;
        EXPECT_LE(r.begin, r.end);
        covered += r.size();
        prevEnd = r.end;
        // Balance: sizes differ by at most one.
        EXPECT_LE(r.size(), count / nproc + 1);
    }
    EXPECT_EQ(covered, count);
    EXPECT_EQ(prevEnd, count);
}

TEST_P(BlockRangeProperty, OwnerOfMatchesRanges)
{
    const auto [count, nproc] = GetParam();
    for (int p = 0; p < nproc; ++p) {
        const IndexRange r = blockRange(count, nproc, p);
        for (std::size_t i = r.begin; i < r.end; ++i)
            ASSERT_EQ(ownerOf(i, count, nproc), p) << "index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockRangeProperty,
    ::testing::Values(RangeCase{100, 4}, RangeCase{7, 3},
                      RangeCase{32, 32}, RangeCase{33, 32},
                      RangeCase{1000, 7}, RangeCase{5, 8},
                      RangeCase{192000, 32}));

TEST(ChunkedArray, AddressesAreDisjointAndOwnerContiguous)
{
    // A fake allocator handing out page-aligned chunks.
    Addr next = 0x1000;
    std::vector<std::pair<Addr, std::size_t>> chunks;
    auto alloc = [&](std::size_t bytes, int) {
        const Addr base = next;
        next += (bytes + 4095) & ~4095ull;
        chunks.emplace_back(base, bytes);
        return base;
    };
    ChunkedArray<double> arr(103, 4, alloc);
    EXPECT_EQ(chunks.size(), 4u);

    std::set<Addr> seen;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const Addr a = arr.addrOf(i);
        EXPECT_TRUE(seen.insert(a).second) << "duplicate address";
        // The address lies inside the owner's chunk.
        const int owner = ownerOf(i, 103, 4);
        EXPECT_GE(a, chunks[owner].first);
        EXPECT_LT(a, chunks[owner].first + chunks[owner].second);
    }
    // Consecutive indices of one owner are 8 bytes apart.
    EXPECT_EQ(arr.addrOf(1), arr.addrOf(0) + 8);
}

TEST(ChunkedArray, OutOfRangePanics)
{
    auto alloc = [](std::size_t, int) { return Addr{0x1000}; };
    ChunkedArray<int> arr(4, 1, alloc);
    EXPECT_ANY_THROW(arr.addrOf(4));
}

// --------------------------------------------------------------------
// Barnes vs. a brute-force oracle
// --------------------------------------------------------------------

TEST(BarnesKernel, MatchesDirectSummationForTinyTheta)
{
    // theta ~ 0 forces the tree walk to open every cell, so the
    // result must equal direct O(N^2) summation (modulo FP order).
    BarnesApp::Params p;
    p.nbodies = 64;
    p.iterations = 1;
    p.theta = 1e-6;
    p.seed = 99;

    MachineConfig cfg;
    cfg.core.nodes = 4;
    auto t = buildDirNNB(cfg);
    BarnesApp app(p);
    t.run(app);

    // Re-derive the initial conditions with the same RNG stream.
    Rng rng(p.seed);
    const int n = p.nbodies;
    std::vector<double> px(n), py(n), pz(n), vx(n), vy(n), vz(n);
    for (int i = 0; i < n; ++i) {
        const double r = 0.1 + 2.0 * rng.uniform();
        const double phi = 6.2831853 * rng.uniform();
        const double cz = 2.0 * rng.uniform() - 1.0;
        const double sz = std::sqrt(1.0 - cz * cz);
        px[i] = r * sz * std::cos(phi);
        py[i] = r * sz * std::sin(phi);
        pz[i] = r * cz;
        vx[i] = 0.1 * (rng.uniform() - 0.5);
        vy[i] = 0.1 * (rng.uniform() - 0.5);
        vz[i] = 0.1 * (rng.uniform() - 0.5);
    }
    // All forces from the initial positions, then a separate update
    // pass (the app's phases are barrier-separated the same way).
    const double mass = 1.0 / n;
    std::vector<double> fx(n, 0), fy(n, 0), fz(n, 0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const double dx = px[j] - px[i], dy = py[j] - py[i],
                         dz = pz[j] - pz[i];
            const double d2 = dx * dx + dy * dy + dz * dz + 1e-4;
            const double inv = 1.0 / std::sqrt(d2);
            const double f = mass * inv * inv * inv;
            fx[i] += f * dx;
            fy[i] += f * dy;
            fz[i] += f * dz;
        }
    }
    for (int i = 0; i < n; ++i) {
        vx[i] += fx[i] * p.dt;
        vy[i] += fy[i] * p.dt;
        vz[i] += fz[i] * p.dt;
        px[i] += vx[i] * p.dt;
        py[i] += vy[i] * p.dt;
        pz[i] += vz[i] * p.dt;
    }

    for (int i = 0; i < n; ++i) {
        const auto b = app.bodyState(t.m().memsys(), i);
        EXPECT_NEAR(b.px, px[i], 1e-9) << "body " << i;
        EXPECT_NEAR(b.py, py[i], 1e-9);
        EXPECT_NEAR(b.pz, pz[i], 1e-9);
        EXPECT_NEAR(b.vx, vx[i], 1e-9);
    }
}

TEST(BarnesKernel, LargerThetaApproximatesButStaysClose)
{
    BarnesApp::Params exact;
    exact.nbodies = 128;
    exact.iterations = 1;
    exact.theta = 1e-6;
    BarnesApp::Params approx = exact;
    approx.theta = 0.8;

    MachineConfig cfg;
    cfg.core.nodes = 4;
    double csExact, csApprox;
    {
        auto t = buildDirNNB(cfg);
        BarnesApp a(exact);
        t.run(a);
        csExact = a.checksum();
    }
    {
        auto t = buildDirNNB(cfg);
        BarnesApp a(approx);
        t.run(a);
        csApprox = a.checksum();
    }
    EXPECT_NE(csExact, csApprox) << "theta must actually prune";
    EXPECT_NEAR(csApprox, csExact,
                std::abs(csExact) * 0.01 + 0.05);
}

// --------------------------------------------------------------------
// MP3D invariants
// --------------------------------------------------------------------

TEST(Mp3dKernel, MoleculesStayInBounds)
{
    Mp3dApp::Params p;
    p.nmol = 400;
    p.cellDim = 4;
    p.iterations = 5;
    MachineConfig cfg;
    cfg.core.nodes = 4;
    auto t = buildDirNNB(cfg);
    Mp3dApp app(p);
    t.run(app);
    for (int i = 0; i < p.nmol; ++i) {
        const auto m = app.molecule(t.m().memsys(), i);
        EXPECT_GE(m.x, 0);
        EXPECT_LT(m.x, Mp3dApp::spaceSpan());
        EXPECT_GE(m.y, 0);
        EXPECT_LT(m.y, Mp3dApp::spaceSpan());
        EXPECT_GE(m.z, 0);
        EXPECT_LT(m.z, Mp3dApp::spaceSpan());
    }
}

TEST(Mp3dKernel, CollisionsActuallyMixVelocities)
{
    // With many molecules per cell, post-run velocities must show
    // collision mixing (the per-cell relaxation toward the mean),
    // i.e. the velocity spread shrinks versus the initial spread.
    Mp3dApp::Params p;
    p.nmol = 800;
    p.cellDim = 2; // few cells -> guaranteed crowding
    p.iterations = 6;
    MachineConfig cfg;
    cfg.core.nodes = 4;
    auto t = buildDirNNB(cfg);
    Mp3dApp app(p);
    t.run(app);

    double spread = 0;
    double mean = 0;
    for (int i = 0; i < p.nmol; ++i)
        mean += static_cast<double>(
            app.molecule(t.m().memsys(), i).vx);
    mean /= p.nmol;
    for (int i = 0; i < p.nmol; ++i) {
        const double d =
            static_cast<double>(app.molecule(t.m().memsys(), i).vx) -
            mean;
        spread += d * d;
    }
    spread = std::sqrt(spread / p.nmol);
    // Initial vx spread is ~uniform(-4096,4096): sigma ~ 2365.
    EXPECT_LT(spread, 1500.0) << "no collision damping observed";
}

// --------------------------------------------------------------------
// Ocean invariants
// --------------------------------------------------------------------

TEST(OceanKernel, BoundariesAreInvariant)
{
    OceanApp::Params p;
    p.n = 18;
    p.iterations = 3;
    MachineConfig cfg;
    cfg.core.nodes = 4;
    auto t = buildDirNNB(cfg);
    OceanApp app(p);
    t.run(app);
    MemorySystem& ms = t.m().memsys();
    for (int c = 0; c <= p.n + 1; ++c) {
        EXPECT_DOUBLE_EQ(app.gridAt(ms, 0, c),
                         std::sin(0.0) + std::cos(0.07 * c));
        EXPECT_DOUBLE_EQ(app.gridAt(ms, p.n + 1, c),
                         std::sin(0.1 * (p.n + 1)) +
                             std::cos(0.07 * c));
    }
}

TEST(OceanKernel, RelaxationContracts)
{
    // The interior must move toward the harmonic interpolation of the
    // boundary: the residual |v - avg(neighbors)| shrinks with more
    // sweeps.
    auto residualAfter = [](int iters) {
        OceanApp::Params p;
        p.n = 18;
        p.iterations = iters;
        MachineConfig cfg;
        cfg.core.nodes = 4;
        auto t = buildDirNNB(cfg);
        OceanApp app(p);
        t.run(app);
        MemorySystem& ms = t.m().memsys();
        double res = 0;
        for (int r = 1; r <= p.n; ++r) {
            for (int c = 1; c <= p.n; ++c) {
                const double v = app.gridAt(ms, r, c);
                const double avg =
                    0.25 * (app.gridAt(ms, r - 1, c) +
                            app.gridAt(ms, r + 1, c) +
                            app.gridAt(ms, r, c - 1) +
                            app.gridAt(ms, r, c + 1));
                res += std::abs(v - avg);
            }
        }
        return res;
    };
    const double r2 = residualAfter(2);
    const double r8 = residualAfter(8);
    EXPECT_LT(r8, r2 * 0.5);
}

// --------------------------------------------------------------------
// EM3D and Appbt
// --------------------------------------------------------------------

TEST(Em3dKernel, ZeroRemoteEdgesMeansZeroProtocolTraffic)
{
    Em3dApp::Params p = em3dParams(DataSet::Tiny, 0.0);
    MachineConfig cfg;
    cfg.core.nodes = 8;
    auto t = buildTyphoonEm3dUpdate(cfg);
    Em3dApp app(p, Em3dApp::Mode::Update, t.em3d);
    t.run(app);
    EXPECT_EQ(t.m().stats().get("em3d.get_ro"), 0u);
    EXPECT_EQ(t.m().stats().get("em3d.updates_sent"), 0u);
}

TEST(Em3dKernel, ValuesEvolveEveryIteration)
{
    Em3dApp::Params p = em3dParams(DataSet::Tiny, 0.2);
    p.iterations = 1;
    MachineConfig cfg;
    cfg.core.nodes = 4;
    double cs1, cs2;
    {
        auto t = buildDirNNB(cfg);
        Em3dApp a(p);
        t.run(a);
        cs1 = a.checksum();
    }
    p.iterations = 2;
    {
        auto t = buildDirNNB(cfg);
        Em3dApp a(p);
        t.run(a);
        cs2 = a.checksum();
    }
    EXPECT_NE(cs1, cs2);
    EXPECT_TRUE(std::isfinite(cs1) && std::isfinite(cs2));
}

TEST(AppbtKernel, DeterministicAndFinite)
{
    AppbtApp::Params p;
    p.n = 6;
    p.iterations = 2;
    MachineConfig cfg;
    cfg.core.nodes = 4;
    double cs[2];
    for (int run = 0; run < 2; ++run) {
        auto t = buildDirNNB(cfg);
        AppbtApp a(p);
        t.run(a);
        cs[run] = a.checksum();
        // Spot-check interior values are finite and changed.
        const double v =
            a.solutionAt(t.m().memsys(), 3, 3, 3, 2);
        EXPECT_TRUE(std::isfinite(v));
    }
    EXPECT_DOUBLE_EQ(cs[0], cs[1]);
}

TEST(AppbtKernel, ZSolveCouplesSlabs)
{
    // With z-slab partitioning, the pipelined z-solve must move
    // information across processor boundaries: the solution with 4
    // procs equals the 1-proc solution (already covered), and the
    // bottom plane must influence the top plane.
    AppbtApp::Params p;
    p.n = 6;
    p.iterations = 1;
    MachineConfig cfg;
    cfg.core.nodes = 6; // one plane per proc
    auto t = buildDirNNB(cfg);
    AppbtApp a(p);
    t.run(a);
    double top = a.solutionAt(t.m().memsys(), 2, 2, 5, 0);
    EXPECT_TRUE(std::isfinite(top));
    EXPECT_GT(t.m().stats().get("dir.remote_misses"), 0u)
        << "slab coupling must generate cross-node traffic";
}

} // namespace
} // namespace tt
