/**
 * @file
 * Integration tests: every benchmark application runs to completion
 * on both targets (tiny data sets) and computes the identical
 * checksum — the end-to-end proof that both coherence
 * implementations deliver the same memory semantics. Under
 * Typhoon/Stache the data physically moves between per-node
 * memories, so equality is a strong protocol check.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "config/builders.hh"

namespace tt
{
namespace
{

struct RunOutcome
{
    double checksum;
    Tick execTime;
};

RunOutcome
runOn(const std::string& app, bool stache, int nodes,
      std::uint64_t cache = 0)
{
    MachineConfig cfg;
    cfg.core.nodes = nodes;
    if (cache)
        cfg.core.cacheSize = cache;
    TargetMachine t =
        stache ? buildTyphoonStache(cfg) : buildDirNNB(cfg);
    auto a = makeWorkload(app, DataSet::Tiny);
    const RunResult r = t.run(*a);
    if (stache) {
        // Every full application run must leave the protocol
        // quiescent and the machine block-for-block coherent.
        EXPECT_TRUE(t.protocol->quiescent()) << app;
        EXPECT_EQ(t.protocol->auditCoherence(), 0u) << app;
    }
    return RunOutcome{a->checksum(), r.execTime};
}

class AppEquivalence
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(AppEquivalence, DirNNBAndStacheComputeIdenticalResults)
{
    const std::string app = GetParam();
    const RunOutcome d = runOn(app, false, 8);
    const RunOutcome s = runOn(app, true, 8);
    EXPECT_EQ(d.checksum, s.checksum) << app;
    EXPECT_GT(d.execTime, 0u);
    EXPECT_GT(s.execTime, 0u);
}

TEST_P(AppEquivalence, ResultsStableAcrossNodeCounts)
{
    // Barriers make the computation independent of the partitioning;
    // integer apps must match exactly, FP apps bitwise too since
    // per-location operation order is fixed by the algorithm. EM3D is
    // excluded: its graph is *defined* relative to the partitioning
    // (remote-edge fraction), so different node counts legitimately
    // build different graphs.
    const std::string app = GetParam();
    if (app == std::string("em3d"))
        GTEST_SKIP() << "graph construction is partition-dependent";
    const RunOutcome a = runOn(app, true, 4);
    const RunOutcome b = runOn(app, true, 8);
    EXPECT_EQ(a.checksum, b.checksum) << app;
}

TEST_P(AppEquivalence, TinyCacheStressStillCorrect)
{
    // A 2 KB CPU cache forces constant eviction/writeback traffic.
    const std::string app = GetParam();
    const RunOutcome d = runOn(app, false, 4, 2048);
    const RunOutcome s = runOn(app, true, 4, 2048);
    EXPECT_EQ(d.checksum, s.checksum) << app;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppEquivalence,
                         ::testing::Values("em3d", "ocean", "appbt",
                                           "barnes", "mp3d"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST(AppsIntegration, WorkloadTableListsFiveApps)
{
    auto t = workloadTable();
    ASSERT_EQ(t.size(), 5u);
    EXPECT_EQ(t[0].app, "appbt");
    EXPECT_EQ(t[4].app, "em3d");
    for (const auto& w : t) {
        auto a = makeWorkload(w.app, DataSet::Tiny);
        EXPECT_EQ(a->name().substr(0, 4), w.app.substr(0, 4));
        EXPECT_GT(a->workUnits(), 0u);
    }
}

TEST(AppsIntegration, UnknownWorkloadIsFatal)
{
    EXPECT_ANY_THROW(makeWorkload("doom", DataSet::Tiny));
}

TEST(AppsIntegration, StacheBeatsDirNNBWhenWorkingSetExceedsCache)
{
    // The paper's headline (Figure 3): with a small CPU cache and a
    // read-heavy working set, Typhoon/Stache converts remote misses
    // into local stache hits and wins despite software handlers.
    Em3dApp::Params p = em3dParams(DataSet::Tiny, 0.3);
    p.nNodes = 4096;
    p.degree = 6;
    p.iterations = 4;
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.core.cacheSize = 4096;

    Tick dirTime, stacheTime;
    {
        auto t = buildDirNNB(cfg);
        Em3dApp app(p);
        dirTime = t.run(app).execTime;
    }
    {
        auto t = buildTyphoonStache(cfg);
        Em3dApp app(p);
        stacheTime = t.run(app).execTime;
    }
    EXPECT_LT(static_cast<double>(stacheTime),
              1.05 * static_cast<double>(dirTime))
        << "Stache should at least break even when capacity misses "
           "dominate";
}

} // namespace
} // namespace tt
