/**
 * @file
 * Parameterized app-level protocol coverage: every application must
 * compute identical results on DirNNB and Typhoon/Stache across the
 * paper's block-size range and under pathological machine shapes
 * (tiny caches, tiny stache pools, contended networks). These drive
 * the protocols through the real kernels' reference streams rather
 * than synthetic ops.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "config/builders.hh"

namespace tt
{
namespace
{

struct AppCfg
{
    const char* app;
    std::uint32_t blockSize;

    friend std::ostream&
    operator<<(std::ostream& os, const AppCfg& c)
    {
        return os << c.app << "_b" << c.blockSize;
    }
};

class AppBlockSweep : public ::testing::TestWithParam<AppCfg>
{
};

TEST_P(AppBlockSweep, TargetsAgreeAtEveryBlockSize)
{
    const AppCfg cfg = GetParam();
    MachineConfig mc;
    mc.core.nodes = 8;
    mc.core.blockSize = cfg.blockSize;
    mc.core.cacheSize = 8192;

    double dir, stache;
    {
        auto t = buildDirNNB(mc);
        auto a = makeWorkload(cfg.app, DataSet::Tiny);
        t.run(*a);
        dir = a->checksum();
    }
    {
        auto t = buildTyphoonStache(mc);
        auto a = makeWorkload(cfg.app, DataSet::Tiny);
        t.run(*a);
        stache = a->checksum();
    }
    EXPECT_EQ(dir, stache);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AppBlockSweep,
    ::testing::Values(AppCfg{"em3d", 64}, AppCfg{"em3d", 128},
                      AppCfg{"ocean", 64}, AppCfg{"ocean", 128},
                      AppCfg{"mp3d", 64}, AppCfg{"barnes", 64},
                      AppCfg{"appbt", 64}),
    [](const auto& info) {
        std::ostringstream oss;
        oss << info.param;
        return oss.str();
    });

TEST(AppStress, TinyStachePoolForcesReplacementUnderRealApps)
{
    // 4 stache pages per node: constant FIFO replacement under em3d.
    MachineConfig mc;
    mc.core.nodes = 8;
    mc.stache.maxStachePages = 4;
    double dir, stache;
    {
        MachineConfig dmc;
        dmc.core.nodes = 8;
        auto t = buildDirNNB(dmc);
        auto a = makeWorkload("em3d", DataSet::Tiny);
        t.run(*a);
        dir = a->checksum();
    }
    {
        auto t = buildTyphoonStache(mc);
        auto a = makeWorkload("em3d", DataSet::Tiny);
        const RunResult r = t.run(*a);
        stache = a->checksum();
        EXPECT_GT(t.m().stats().get("stache.page_replacements"), 0u);
        EXPECT_GT(r.execTime, 0u);
    }
    EXPECT_EQ(dir, stache);
}

TEST(AppStress, ContendedNetworkUnderRealApps)
{
    MachineConfig mc;
    mc.core.nodes = 8;
    mc.net.ejectPerPacket = 4;
    mc.net.latency = 40;
    double dir, stache;
    {
        auto t = buildDirNNB(mc);
        auto a = makeWorkload("mp3d", DataSet::Tiny);
        t.run(*a);
        dir = a->checksum();
    }
    {
        auto t = buildTyphoonStache(mc);
        auto a = makeWorkload("mp3d", DataSet::Tiny);
        t.run(*a);
        stache = a->checksum();
    }
    EXPECT_EQ(dir, stache);
}

TEST(AppStress, SingleNodeMachineDegeneratesGracefully)
{
    // P=1: no remote traffic at all; both systems reduce to the
    // local memory hierarchy.
    MachineConfig mc;
    mc.core.nodes = 1;
    for (const char* app : {"ocean", "em3d"}) {
        auto t = buildTyphoonStache(mc);
        auto a = makeWorkload(app, DataSet::Tiny);
        t.run(*a);
        EXPECT_EQ(t.m().stats().get("net.messages"), 0u) << app;
        EXPECT_EQ(t.m().stats().get("stache.page_faults"), 0u) << app;
    }
}

} // namespace
} // namespace tt
