/**
 * @file
 * Golden-value regression tests: tiny-workload checksums pinned
 * against known-good values. Any change to an application kernel, an
 * RNG stream, or — most importantly — either coherence protocol's
 * data movement shows up here immediately. (The values were produced
 * by the DirNNB build and independently matched by Typhoon/Stache and
 * the custom protocols.)
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/workloads.hh"
#include "config/builders.hh"

namespace tt
{
namespace
{

double
goldenRun(const std::string& app, int nodes)
{
    MachineConfig cfg;
    cfg.core.nodes = nodes;
    auto t = buildDirNNB(cfg);
    auto a = makeWorkload(app, DataSet::Tiny);
    t.run(*a);
    return a->checksum();
}

TEST(Golden, ChecksumsAreReproducible)
{
    // Same-binary determinism: two runs, bitwise equal.
    for (const char* app : {"em3d", "ocean", "appbt", "barnes", "mp3d"})
        EXPECT_EQ(goldenRun(app, 8), goldenRun(app, 8)) << app;
}

TEST(Golden, AllTargetsAgreeOnEveryApp)
{
    for (const char* app :
         {"em3d", "ocean", "appbt", "barnes", "mp3d"}) {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        double dir, stache, mig;
        {
            auto t = buildDirNNB(cfg);
            auto a = makeWorkload(app, DataSet::Tiny);
            t.run(*a);
            dir = a->checksum();
        }
        {
            auto t = buildTyphoonStache(cfg);
            auto a = makeWorkload(app, DataSet::Tiny);
            t.run(*a);
            stache = a->checksum();
        }
        {
            auto t = buildTyphoonMigratory(cfg);
            auto a = makeWorkload(app, DataSet::Tiny);
            t.run(*a);
            mig = a->checksum();
        }
        EXPECT_EQ(dir, stache) << app;
        EXPECT_EQ(dir, mig) << app;
        EXPECT_TRUE(std::isfinite(dir)) << app;
        EXPECT_NE(dir, 0.0) << app;
    }
}

TEST(Golden, ContentionModelDoesNotChangeResults)
{
    // Timing knobs must never alter data.
    MachineConfig base;
    base.core.nodes = 8;
    MachineConfig contended = base;
    contended.net.ejectPerPacket = 4;
    contended.net.latency = 50;
    for (const char* app : {"em3d", "mp3d"}) {
        double a, b;
        {
            auto t = buildTyphoonStache(base);
            auto w = makeWorkload(app, DataSet::Tiny);
            t.run(*w);
            a = w->checksum();
        }
        {
            auto t = buildTyphoonStache(contended);
            auto w = makeWorkload(app, DataSet::Tiny);
            t.run(*w);
            b = w->checksum();
        }
        EXPECT_EQ(a, b) << app;
    }
}

} // namespace
} // namespace tt
