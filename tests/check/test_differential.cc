/**
 * @file
 * Differential no-false-negative suite (DESIGN.md §13): every
 * violation the byte-granular paranoid oracle reports on a seeded
 * protocol mutation must also be reported by the fast shadow engine.
 * The corpus spans ≥20 mutations: Nth-occurrence skip/corrupt knobs
 * in the Stache handlers (recall-downgrade, invalidation, returned
 * data) and the DirNNB handlers (invalidate, recall-downgrade).
 *
 * The simulation is deterministic and the checker is a pure observer,
 * so running the identical machine twice — once per checker mode —
 * compares the two engines on the exact same event stream.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/protocol_checker.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::DirRig;
using test::StacheRig;

constexpr int kNodes = 3;
constexpr int kRounds = 12;

/** Rotating writer + all-readers: a steady diet of grants, upgrades,
 *  invalidations, recalls and downgrades on one contended block. */
test::FnApp::Body
contendedBody(Machine& m, Addr a)
{
    return [&m, a](Cpu& cpu) -> Task<void> {
        for (int r = 0; r < kRounds; ++r) {
            if (cpu.id() == r % kNodes)
                co_await cpu.write<int>(a, r * 100 + cpu.id());
            co_await m.barrier().wait(cpu);
            co_await cpu.read<int>(a);
            co_await m.barrier().wait(cpu);
        }
    };
}

std::set<std::string>
invariants(const ProtocolChecker& chk)
{
    std::set<std::string> s;
    for (const auto& v : chk.violations())
        s.insert(v.invariant);
    return s;
}

/**
 * Run the Stache rig under one checker mode; return the invariants.
 * A planted mutation may eventually trip one of the protocol's own
 * internal asserts (e.g. onInval finding a writable copy); that panic
 * is deterministic — identical in both modes — so the violations the
 * checker recorded at the event boundaries before it remain a fair
 * differential comparison. Only a completed run is finalized.
 */
std::set<std::string>
runStache(const StacheParams& sp, ProtocolChecker::Mode mode)
{
    test::ExpectLeaksInScope allowAbandonedFrames;
    StacheRig rig(kNodes, {}, {}, sp);
    ProtocolChecker chk(*rig.machine, mode);
    chk.attachTyphoon(*rig.mem, *rig.stache);
    rig.mem->setChecker(&chk);
    rig.stache->setChecker(&chk);
    rig.net->setChecker(&chk);

    Addr a = rig.stache->shmalloc(4096, /*home=*/0);
    try {
        rig.run(contendedBody(*rig.machine, a));
        chk.finalize();
    } catch (const std::exception&) {
        // Panic unwound out of Machine::run; keep what was recorded.
    }
    return invariants(chk);
}

std::set<std::string>
runDir(const DirParams& dp, ProtocolChecker::Mode mode)
{
    test::ExpectLeaksInScope allowAbandonedFrames;
    DirRig rig(kNodes, {}, dp);
    ProtocolChecker chk(*rig.machine, mode);
    chk.attachDirnnb(*rig.mem);
    rig.mem->setChecker(&chk);
    rig.net->setChecker(&chk);

    Addr a = rig.mem->shmalloc(4096, /*home=*/0);
    try {
        rig.run(contendedBody(*rig.machine, a));
        chk.finalize();
    } catch (const std::exception&) {
        // Panic unwound out of Machine::run; keep what was recorded.
    }
    return invariants(chk);
}

/** The core assertion: fast misses nothing the oracle catches. */
void
expectNoFalseNegatives(const std::set<std::string>& paranoid,
                       const std::set<std::string>& fast,
                       const std::string& label)
{
    for (const auto& inv : paranoid) {
        EXPECT_TRUE(fast.count(inv))
            << label << ": paranoid reported '" << inv
            << "' but the fast engine stayed silent (false negative)";
    }
}

TEST(CheckDifferential, HealthyRunsAreCleanInBothModes)
{
    EXPECT_TRUE(runStache({}, ProtocolChecker::Mode::Paranoid).empty());
    EXPECT_TRUE(runStache({}, ProtocolChecker::Mode::Fast).empty());
    EXPECT_TRUE(runDir({}, ProtocolChecker::Mode::Paranoid).empty());
    EXPECT_TRUE(runDir({}, ProtocolChecker::Mode::Fast).empty());
}

TEST(CheckDifferential, StacheSkippedDowngradeCorpus)
{
    int caught = 0;
    for (std::uint32_t nth = 1; nth <= 4; ++nth) {
        StacheParams sp;
        sp.faultSkipDowngradeNth = nth;
        const auto paranoid =
            runStache(sp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runStache(sp, ProtocolChecker::Mode::Fast);
        const std::string label =
            "stache skip-downgrade nth=" + std::to_string(nth);
        expectNoFalseNegatives(paranoid, fast, label);
        if (!paranoid.empty()) {
            ++caught;
            EXPECT_FALSE(fast.empty()) << label;
        }
    }
    // The corpus must actually bite: the knob range covers occurring
    // downgrades, so the oracle must fire on (at least most of) them.
    EXPECT_GE(caught, 3) << "mutation corpus too weak";
}

TEST(CheckDifferential, StacheSkippedInvalidationCorpus)
{
    int caught = 0;
    for (std::uint32_t nth = 1; nth <= 4; ++nth) {
        StacheParams sp;
        sp.faultSkipInvalNth = nth;
        const auto paranoid =
            runStache(sp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runStache(sp, ProtocolChecker::Mode::Fast);
        const std::string label =
            "stache skip-inval nth=" + std::to_string(nth);
        expectNoFalseNegatives(paranoid, fast, label);
        if (!paranoid.empty()) {
            ++caught;
            EXPECT_FALSE(fast.empty()) << label;
        }
    }
    EXPECT_GE(caught, 3) << "mutation corpus too weak";
}

TEST(CheckDifferential, StacheCorruptedPutDataCorpus)
{
    int caught = 0;
    for (std::uint32_t nth = 1; nth <= 4; ++nth) {
        StacheParams sp;
        sp.faultCorruptPutNth = nth;
        const auto paranoid =
            runStache(sp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runStache(sp, ProtocolChecker::Mode::Fast);
        const std::string label =
            "stache corrupt-put nth=" + std::to_string(nth);
        expectNoFalseNegatives(paranoid, fast, label);
        if (!paranoid.empty()) {
            ++caught;
            EXPECT_FALSE(fast.empty()) << label;
        }
    }
    EXPECT_GE(caught, 3) << "mutation corpus too weak";
}

TEST(CheckDifferential, DirnnbSkippedInvalidateCorpus)
{
    int caught = 0;
    for (std::uint32_t nth = 1; nth <= 4; ++nth) {
        DirParams dp;
        dp.faultSkipInvalidateNth = nth;
        const auto paranoid = runDir(dp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runDir(dp, ProtocolChecker::Mode::Fast);
        const std::string label =
            "dirnnb skip-invalidate nth=" + std::to_string(nth);
        expectNoFalseNegatives(paranoid, fast, label);
        if (!paranoid.empty()) {
            ++caught;
            EXPECT_FALSE(fast.empty()) << label;
        }
    }
    EXPECT_GE(caught, 3) << "mutation corpus too weak";
}

TEST(CheckDifferential, DirnnbSkippedDowngradeCorpus)
{
    int caught = 0;
    for (std::uint32_t nth = 1; nth <= 4; ++nth) {
        DirParams dp;
        dp.faultSkipDowngradeNth = nth;
        const auto paranoid = runDir(dp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runDir(dp, ProtocolChecker::Mode::Fast);
        const std::string label =
            "dirnnb skip-downgrade nth=" + std::to_string(nth);
        expectNoFalseNegatives(paranoid, fast, label);
        if (!paranoid.empty()) {
            ++caught;
            EXPECT_FALSE(fast.empty()) << label;
        }
    }
    EXPECT_GE(caught, 3) << "mutation corpus too weak";
}

/** The two legacy boolean knobs stay in the corpus (every occurrence
 *  broken, not just the Nth). */
TEST(CheckDifferential, LegacyBooleanKnobs)
{
    {
        StacheParams sp;
        sp.faultSkipDowngrade = true;
        const auto paranoid =
            runStache(sp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runStache(sp, ProtocolChecker::Mode::Fast);
        expectNoFalseNegatives(paranoid, fast, "stache legacy bool");
        EXPECT_FALSE(paranoid.empty());
        EXPECT_FALSE(fast.empty());
    }
    {
        DirParams dp;
        dp.faultSkipInvalidate = true;
        const auto paranoid = runDir(dp, ProtocolChecker::Mode::Paranoid);
        const auto fast = runDir(dp, ProtocolChecker::Mode::Fast);
        expectNoFalseNegatives(paranoid, fast, "dirnnb legacy bool");
        EXPECT_FALSE(paranoid.empty());
        EXPECT_FALSE(fast.empty());
    }
}

} // namespace
} // namespace tt
