/**
 * @file
 * Mutation tests for the coherence sanitizer: deliberately break one
 * protocol transition via the test-only fault-injection params and
 * assert the checker names the precise invariant. These are the
 * checker's own tests-of-the-tests — a sanitizer that cannot catch a
 * planted bug is worse than none.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/protocol_checker.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::DirRig;
using test::StacheRig;

bool
reported(const ProtocolChecker& chk, const char* invariant)
{
    const auto& vs = chk.violations();
    return std::any_of(vs.begin(), vs.end(), [&](const auto& v) {
        return v.invariant == invariant;
    });
}

/**
 * Break Stache's downgrade path: the owner acknowledges a kDowngrade
 * (returns the data) but keeps its ReadWrite tag. The directory then
 * believes the block is Shared while a writable copy survives —
 * exactly what "swmr" and "dir-agreement" exist to catch.
 */
TEST(CheckMutations, StacheSkippedDowngradeTripsSwmr)
{
    StacheParams sp;
    sp.faultSkipDowngrade = true;
    StacheRig rig(2, {}, {}, sp);

    ProtocolChecker chk(*rig.machine);
    chk.attachTyphoon(*rig.mem, *rig.stache);
    rig.mem->setChecker(&chk);
    rig.stache->setChecker(&chk);
    rig.net->setChecker(&chk);

    Addr a = rig.stache->shmalloc(4096, /*home=*/0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 42); // node 1 takes exclusive
        co_await rig.machine->barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.read<int>(a); // home read => downgrade owner
    });
    chk.finalize();

    ASSERT_FALSE(chk.violations().empty())
        << "planted downgrade bug went undetected";
    EXPECT_TRUE(reported(chk, "swmr")) << chk.report();
    EXPECT_TRUE(reported(chk, "dir-agreement")) << chk.report();
    // The report is self-contained: names the invariant and shows the
    // per-block event trace.
    EXPECT_NE(chk.report().find("invariant=swmr"), std::string::npos);
    EXPECT_NE(chk.report().find("trace for block"), std::string::npos);
}

/** The same run with the fault off must be silent. */
TEST(CheckMutations, StacheHealthyDowngradeIsClean)
{
    StacheRig rig(2);
    ProtocolChecker chk(*rig.machine);
    chk.attachTyphoon(*rig.mem, *rig.stache);
    rig.mem->setChecker(&chk);
    rig.stache->setChecker(&chk);
    rig.net->setChecker(&chk);

    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 42);
        co_await rig.machine->barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.read<int>(a);
    });
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty()) << chk.report();
    EXPECT_GT(chk.eventsChecked(), 0u);
}

/**
 * Break DirNNB's invalidation-ack path: a sharer acks kInv without
 * dropping its line. After the home's write upgrade completes, a
 * stale readable line coexists with the writer.
 */
TEST(CheckMutations, DirnnbSkippedInvalidateTripsAgreement)
{
    DirParams dp;
    dp.faultSkipInvalidate = true;
    DirRig rig(2, {}, dp);

    ProtocolChecker chk(*rig.machine);
    chk.attachDirnnb(*rig.mem);
    rig.mem->setChecker(&chk);
    rig.net->setChecker(&chk);

    Addr a = rig.mem->shmalloc(4096, /*home=*/0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.read<int>(a); // node 1 becomes a sharer
        co_await rig.machine->barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.write<int>(a, 7); // home upgrade invalidates
    });
    chk.finalize();

    ASSERT_FALSE(chk.violations().empty())
        << "planted invalidation bug went undetected";
    EXPECT_TRUE(reported(chk, "dir-agreement")) << chk.report();
    EXPECT_NE(chk.report().find("invariant="), std::string::npos);
}

/** The same run with the fault off must be silent. */
TEST(CheckMutations, DirnnbHealthyInvalidateIsClean)
{
    DirRig rig(2);
    ProtocolChecker chk(*rig.machine);
    chk.attachDirnnb(*rig.mem);
    rig.mem->setChecker(&chk);
    rig.net->setChecker(&chk);

    Addr a = rig.mem->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.read<int>(a);
        co_await rig.machine->barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.write<int>(a, 7);
    });
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty()) << chk.report();
    EXPECT_GT(chk.eventsChecked(), 0u);
}

} // namespace
} // namespace tt
