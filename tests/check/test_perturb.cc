/**
 * @file
 * Schedule-perturbation harness tests: determinism of the perturbed
 * event order, reproducibility of failure reports from a seed, and
 * the guarantee that an attached (but quiet) checker never changes
 * simulated timing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "config/builders.hh"
#include "sim/event_queue.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::FnApp;

/** RAII: force a queue mode for one test, restore on exit. */
struct ScopedQueueMode
{
    EventQueue::Mode saved;
    explicit ScopedQueueMode(EventQueue::Mode m)
        : saved(EventQueue::defaultMode())
    {
        EventQueue::setDefaultMode(m);
    }
    ~ScopedQueueMode() { EventQueue::setDefaultMode(saved); }
};

/** Order in which same-tick events ran, by label. */
std::vector<int>
sameTickOrder(bool perturb, std::uint64_t seed)
{
    EventQueue eq(EventQueue::Mode::ReferenceHeap);
    if (perturb)
        eq.setPerturb(seed);
    std::vector<int> order;
    // A warm-up event so 'now' is defined, then 16 same-tick events.
    eq.schedule(0, [] {});
    for (int i = 0; i < 16; ++i)
        eq.schedule(10, [i, &order] { order.push_back(i); });
    eq.run();
    return order;
}

TEST(CheckPerturb, UnperturbedHeapKeepsInsertionOrder)
{
    const std::vector<int> got = sameTickOrder(false, 0);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(CheckPerturb, SameSeedSamePermutationDifferentSeedDiffers)
{
    const auto a = sameTickOrder(true, 1234);
    const auto b = sameTickOrder(true, 1234);
    const auto c = sameTickOrder(true, 99);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c); // 16! orderings; equal only by astronomic luck
    // Perturbation actually permutes (not the identity for this seed).
    const auto plain = sameTickOrder(false, 0);
    EXPECT_NE(a, plain);
}

/** A 4-node workload with real sharing: write own slice, read next. */
FnApp::Body
shareBody(TargetMachine& t, Addr base)
{
    return [&t, base](Cpu& cpu) -> Task<void> {
        const int n = 4;
        const Addr mine = base + static_cast<Addr>(cpu.id()) * 256;
        for (int i = 0; i < 8; ++i)
            co_await cpu.write<int>(mine + static_cast<Addr>(i) * 4,
                                    cpu.id() * 100 + i);
        co_await t.m().barrier().wait(cpu);
        const Addr next =
            base + static_cast<Addr>((cpu.id() + 1) % n) * 256;
        int sum = 0;
        for (int i = 0; i < 8; ++i)
            sum += co_await cpu.read<int>(next +
                                          static_cast<Addr>(i) * 4);
        co_await t.m().barrier().wait(cpu);
        for (int i = 0; i < 4; ++i)
            co_await cpu.write<int>(next + static_cast<Addr>(i) * 4,
                                    sum + i);
    };
}

MachineConfig
perturbedConfig(std::uint64_t seed)
{
    MachineConfig cfg;
    cfg.core.nodes = 4;
    cfg.check.enable = true;
    cfg.check.perturb = true;
    cfg.check.perturbSeed = seed;
    cfg.net.jitterMax = 3;
    cfg.net.jitterSeed = seed ^ 0xabcdef;
    return cfg;
}

TEST(CheckPerturb, PerturbedStacheRunsStayCoherent)
{
    ScopedQueueMode heap(EventQueue::Mode::ReferenceHeap);
    for (std::uint64_t seed : {1ull, 42ull, 1995ull}) {
        TargetMachine t = buildTyphoonStache(perturbedConfig(seed));
        Addr a = t.protocol->shmalloc(4 * 4096, 0);
        FnApp app(shareBody(t, a));
        t.run(app);
        t.checker->finalize();
        EXPECT_TRUE(t.checker->violations().empty())
            << "seed " << seed << ":\n"
            << t.checker->report();
    }
}

TEST(CheckPerturb, PerturbedDirnnbRunsStayCoherent)
{
    ScopedQueueMode heap(EventQueue::Mode::ReferenceHeap);
    for (std::uint64_t seed : {1ull, 42ull}) {
        TargetMachine t = buildDirNNB(perturbedConfig(seed));
        Addr a = t.dir->shmalloc(4 * 4096, 0);
        FnApp app(shareBody(t, a));
        t.run(app);
        t.checker->finalize();
        EXPECT_TRUE(t.checker->violations().empty())
            << "seed " << seed << ":\n"
            << t.checker->report();
    }
}

/**
 * Failure reproducibility: under a planted bug, the same perturbation
 * seed must yield the byte-identical minimized failure report (seed,
 * first invariant, per-block trace).
 */
TEST(CheckPerturb, SameSeedSameViolationReport)
{
    ScopedQueueMode heap(EventQueue::Mode::ReferenceHeap);
    auto runOnce = [](std::uint64_t seed) {
        MachineConfig cfg = perturbedConfig(seed);
        cfg.stache.faultSkipDowngrade = true;
        TargetMachine t = buildTyphoonStache(cfg);
        Addr a = t.protocol->shmalloc(4096, 0);
        FnApp app([&t, a](Cpu& cpu) -> Task<void> {
            if (cpu.id() == 1)
                co_await cpu.write<int>(a, 42);
            co_await t.m().barrier().wait(cpu);
            if (cpu.id() == 0)
                co_await cpu.read<int>(a);
        });
        t.run(app);
        t.checker->finalize();
        return t.checker->report();
    };
    const std::string r1 = runOnce(7);
    const std::string r2 = runOnce(7);
    EXPECT_FALSE(r1.find("FAIL") == std::string::npos) << r1;
    EXPECT_EQ(r1, r2);
    EXPECT_NE(r1.find("seed: 7"), std::string::npos) << r1;
}

/**
 * The zero-cost-when-disabled and no-timing-impact-when-enabled
 * guarantees: a run with the checker attached (no perturbation)
 * produces exactly the timing and results of a bare run.
 */
TEST(CheckPerturb, CheckerDoesNotChangeSimulatedTiming)
{
    auto runOnce = [](bool check) {
        MachineConfig cfg;
        cfg.core.nodes = 4;
        cfg.check.enable = check;
        TargetMachine t = buildTyphoonStache(cfg);
        Addr a = t.protocol->shmalloc(4 * 4096, 0);
        FnApp app(shareBody(t, a));
        const RunResult r = t.run(app);
        if (t.checker) {
            t.checker->finalize();
            EXPECT_TRUE(t.checker->violations().empty())
                << t.checker->report();
        }
        return r;
    };
    const RunResult off = runOnce(false);
    const RunResult on = runOnce(true);
    EXPECT_EQ(off.execTime, on.execTime);
    EXPECT_EQ(off.events, on.events);
}

} // namespace
} // namespace tt
