/**
 * @file
 * Unit tests for the shadow-engine containers (DESIGN.md §13):
 * distinguished-leaf copy-on-write in the two-level ShadowTable,
 * chunk-boundary addressing across the primary/aux split, and the
 * packed copy-word stamp encoding incl. 16-bit epoch wraparound.
 */

#include <gtest/gtest.h>

#include "check/shadow_map.hh"

namespace tt
{
namespace
{

struct CounterLeaf
{
    int v = 0;
};

TEST(ShadowTable, UntouchedKeysAliasTheDistinguishedLeaf)
{
    ShadowTable<CounterLeaf> t;
    EXPECT_EQ(t.leavesMaterialized(), 0u);
    // Reads never materialize: every untouched key is the same leaf.
    EXPECT_EQ(&t.get(0), &t.distinguished());
    EXPECT_EQ(&t.get(12345), &t.distinguished());
    EXPECT_EQ(&t.get(~0ull), &t.distinguished());
    EXPECT_EQ(t.leavesMaterialized(), 0u);
    EXPECT_FALSE(t.materialized(12345));
}

TEST(ShadowTable, GetWritableCopiesTheDistinguishedState)
{
    ShadowTable<CounterLeaf> t;
    // Seed the distinguished leaf indirectly: a default-constructed
    // CounterLeaf holds 0, so every materialized copy starts at 0.
    CounterLeaf& a = t.getWritable(7);
    EXPECT_EQ(a.v, 0);
    a.v = 42;
    EXPECT_EQ(t.leavesMaterialized(), 1u);
    EXPECT_TRUE(t.materialized(7));
    // The write stayed private: neighbours and the distinguished leaf
    // are untouched.
    EXPECT_EQ(t.get(8).v, 0);
    EXPECT_EQ(t.distinguished().v, 0);
    EXPECT_EQ(t.get(7).v, 42);
    // Second getWritable returns the same materialized leaf.
    EXPECT_EQ(&t.getWritable(7), &a);
    EXPECT_EQ(t.leavesMaterialized(), 1u);
}

TEST(ShadowTable, ChunkBoundaryAddressing)
{
    // kChunkBits=6: keys 63 and 64 land in different chunks; both
    // must resolve independently with no aliasing.
    ShadowTable<CounterLeaf, 6, 20> t;
    t.getWritable(63).v = 63;
    t.getWritable(64).v = 64;
    t.getWritable(0).v = 1;
    EXPECT_EQ(t.get(63).v, 63);
    EXPECT_EQ(t.get(64).v, 64);
    EXPECT_EQ(t.get(0).v, 1);
    EXPECT_EQ(t.get(62).v, 0);
    EXPECT_EQ(t.get(65).v, 0);
}

TEST(ShadowTable, AuxRegionBeyondThePrimaryWindow)
{
    // Keys past 2^(kPrimaryBits + kChunkBits) fall into the auxiliary
    // hash map — junk message address args must neither crash nor
    // blow up the primary vector.
    ShadowTable<CounterLeaf, 6, 10> t; // small window: 2^16 keys
    const std::uint64_t far = 1ull << 40;
    EXPECT_EQ(&t.get(far), &t.distinguished());
    t.getWritable(far).v = 9;
    EXPECT_EQ(t.get(far).v, 9);
    EXPECT_TRUE(t.materialized(far));
    // A key in the unmaterialized gap between primary and aux.
    EXPECT_EQ(&t.get(1ull << 17), &t.distinguished());
}

TEST(ShadowTable, ForEachLeafVisitsPrimaryAndAux)
{
    ShadowTable<CounterLeaf, 6, 10> t;
    t.getWritable(1).v = 1;
    t.getWritable(1ull << 40).v = 1;
    int sum = 0;
    t.forEachLeaf([&](CounterLeaf& l) { sum += l.v; });
    EXPECT_EQ(sum, 2);
}

TEST(ShadowWord, StampPackingRoundTrips)
{
    using namespace shadow;
    const std::uint64_t w =
        packStamp(/*writerPlus1=*/5, /*epoch=*/0x1234'5678) |
        kValidatedMask | 0x2 /*tag*/;
    EXPECT_EQ(tagOf(w), 2u);
    EXPECT_TRUE(validated(w));
    // The stamp occupies [63:16] and survives masking.
    EXPECT_EQ(stampOf(w), packStamp(5, 0x1234'5678));
    // Distinct writers and epochs give distinct stamps.
    EXPECT_NE(packStamp(5, 1), packStamp(6, 1));
    EXPECT_NE(packStamp(5, 1), packStamp(5, 2));
}

TEST(ShadowWord, EpochWraparoundAt16Bits)
{
    using namespace shadow;
    // The low 16 bits wrap every 65536 writes; the gen16 field keeps
    // the stamps distinct across the next 2^16 wraps.
    const std::uint64_t e = 0xffff;
    EXPECT_NE(packStamp(1, e), packStamp(1, e + 0x10000));
    EXPECT_NE(packStamp(1, 1), packStamp(1, 1 + 0x10000));
    // Only at a full 32-bit boundary can stamps alias — exactly the
    // point where epochWrapped() demands a clearValidated() walk.
    EXPECT_EQ(packStamp(1, 1), packStamp(1, 1 + (1ull << 32)));
    EXPECT_FALSE(epochWrapped(1));
    EXPECT_FALSE(epochWrapped(0x10000));
    EXPECT_TRUE(epochWrapped(1ull << 32));
    EXPECT_TRUE(epochWrapped(2ull << 32));
}

TEST(ShadowWord, ClearValidatedDropsOnlyTheValidatedBit)
{
    using namespace shadow;
    ShadowTable<CopyLeaf> t;
    CopyLeaf& l = t.getWritable(3);
    l.word[17] = packStamp(2, 99) | kValidatedMask | 0x1;
    l.word[18] = packStamp(2, 100) | 0x2;
    clearValidated(t);
    EXPECT_FALSE(validated(l.word[17]));
    EXPECT_EQ(tagOf(l.word[17]), 1u);
    EXPECT_EQ(stampOf(l.word[17]), packStamp(2, 99));
    EXPECT_EQ(l.word[18], packStamp(2, 100) | 0x2);
}

TEST(ShadowData, ValidBitsArePerByte)
{
    shadow::DataLeaf leaf;
    EXPECT_FALSE(leaf.validAt(100));
    leaf.setValid(100);
    EXPECT_TRUE(leaf.validAt(100));
    EXPECT_FALSE(leaf.validAt(99));
    EXPECT_FALSE(leaf.validAt(101));
    leaf.setValid(0);
    leaf.setValid(shadow::DataLeaf::kBytes - 1);
    EXPECT_TRUE(leaf.validAt(0));
    EXPECT_TRUE(leaf.validAt(shadow::DataLeaf::kBytes - 1));
}

} // namespace
} // namespace tt
