/**
 * @file
 * Tests of the machine builders and Table 2 configuration printing:
 * each builder wires a complete, runnable target; parameter knobs
 * reach the right subsystems.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

Task<void>
touchSomeMemory(Cpu& cpu, Addr a)
{
    co_await cpu.write<int>(a + cpu.id() * 64, cpu.id());
    int v = co_await cpu.read<int>(a + cpu.id() * 64);
    EXPECT_EQ(v, cpu.id());
}

TEST(Builders, AllFourTargetsRun)
{
    MachineConfig cfg;
    cfg.core.nodes = 4;
    for (int which = 0; which < 4; ++which) {
        TargetMachine t;
        switch (which) {
          case 0:
            t = buildDirNNB(cfg);
            break;
          case 1:
            t = buildTyphoonStache(cfg);
            break;
          case 2:
            t = buildTyphoonMigratory(cfg);
            break;
          case 3:
            t = buildTyphoonEm3dUpdate(cfg);
            break;
        }
        Addr a = t.m().memsys().shmalloc(4096, 0);
        test::FnApp app([a](Cpu& cpu) -> Task<void> {
            return touchSomeMemory(cpu, a);
        });
        const RunResult r = t.run(app);
        EXPECT_GT(r.execTime, 0u) << "target " << which;
    }
}

TEST(Builders, TargetNamesIdentifyProtocol)
{
    MachineConfig cfg;
    cfg.core.nodes = 2;
    EXPECT_EQ(buildDirNNB(cfg).m().memsys().name(), "DirNNB");
    EXPECT_EQ(buildTyphoonStache(cfg).m().memsys().name(),
              "Typhoon/Stache");
    EXPECT_EQ(buildTyphoonMigratory(cfg).m().memsys().name(),
              "Typhoon/Migratory");
    EXPECT_EQ(buildTyphoonEm3dUpdate(cfg).m().memsys().name(),
              "Typhoon/Em3dUpdate");
}

TEST(Builders, ConfigKnobsReachSubsystems)
{
    MachineConfig cfg;
    cfg.core.nodes = 3;
    cfg.core.cacheSize = 8192;
    cfg.core.blockSize = 64;
    auto t = buildTyphoonStache(cfg);
    EXPECT_EQ(t.typhoon->cpuCacheOf(0).sizeBytes(), 8192u);
    EXPECT_EQ(t.typhoon->cpuCacheOf(2).blockSize(), 64u);
    EXPECT_EQ(t.m().nodes(), 3);
}

TEST(Builders, NetworkLatencyKnobChangesRemoteMissCost)
{
    auto missAt = [](Tick latency) {
        MachineConfig cfg;
        cfg.core.nodes = 2;
        cfg.net.latency = latency;
        auto t = buildDirNNB(cfg);
        Addr a = t.m().memsys().shmalloc(4096, 1);
        Tick cost = 0;
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            if (cpu.id() != 0)
                co_return;
            const Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a);
            cost = cpu.localTime() - t0;
        });
        t.run(app);
        return cost;
    };
    // Two network hops: doubling latency adds exactly 2x the delta.
    EXPECT_EQ(missAt(22) - missAt(11), 2u * 11);
}

TEST(Builders, Table2PrinterMentionsEveryParameterGroup)
{
    std::ostringstream oss;
    MachineConfig cfg;
    printTable2(oss, cfg);
    const std::string out = oss.str();
    for (const char* needle :
         {"Common", "DirNNB only", "Typhoon only", "Network latency",
          "Barrier latency", "Directory op base", "NP D-cache",
          "RTLB"}) {
        EXPECT_NE(out.find(needle), std::string::npos) << needle;
    }
}

TEST(Builders, SeedChangesNothingObservableButIsHonored)
{
    // Different seeds change random replacement decisions; with a
    // direct-mapped-ish tiny cache the timing may shift, but results
    // must not.
    auto checksumAt = [](std::uint64_t seed) {
        MachineConfig cfg;
        cfg.core.nodes = 4;
        cfg.core.seed = seed;
        cfg.core.cacheSize = 512;
        auto t = buildTyphoonStache(cfg);
        auto a = makeWorkload("ocean", DataSet::Tiny);
        t.run(*a);
        return a->checksum();
    };
    EXPECT_EQ(checksumAt(1), checksumAt(999));
}

} // namespace
} // namespace tt
